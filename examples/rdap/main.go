// RDAP example: the structured-data endgame the paper's background
// section points at (§2.2). The same registration data is served twice —
// as free-text WHOIS (which needs the trained statistical parser) and as
// RDAP JSON over HTTP (which needs nothing but encoding/json) — and both
// extraction paths are compared against ground truth.
//
//	go run ./examples/rdap
package main

import (
	"fmt"
	"log"

	"repro/internal/rdap"
	"repro/internal/synth"

	whoisparse "repro"
)

func main() {
	domains := synth.Generate(synth.Config{N: 300, Seed: 404})

	// Path 1: free-text WHOIS through the statistical parser.
	train := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 400, Seed: 405})
	parser, _, err := whoisparse.Train(train, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Path 2: RDAP over HTTP.
	srv := rdap.NewServer(domains)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	client := &rdap.Client{BaseURL: "http://" + addr}
	fmt.Printf("RDAP endpoint up at http://%s/domain/{name}\n\n", addr)

	var whoisExact, rdapExact, total int
	for _, d := range domains {
		if d.Reg.Privacy {
			continue
		}
		total++

		pr := parser.Parse(d.Render().Text)
		if pr.Registrant.Name == d.Reg.Registrant.Name {
			whoisExact++
		}

		obj, err := client.Lookup(d.Reg.Domain)
		if err != nil {
			log.Fatal(err)
		}
		if c, ok := obj.ContactByRole("registrant"); ok && c.Name == d.Reg.Registrant.Name {
			rdapExact++
		}
	}

	fmt.Printf("registrant-name extraction over %d records:\n", total)
	fmt.Printf("  free-text WHOIS + trained CRF parser: %d/%d (%.1f%%)\n",
		whoisExact, total, 100*float64(whoisExact)/float64(total))
	fmt.Printf("  RDAP JSON + encoding/json:            %d/%d (%.1f%%)\n\n",
		rdapExact, total, 100*float64(rdapExact)/float64(total))
	fmt.Println("The statistical parser closes most of the gap that free-text formats")
	fmt.Println("open up; a structured protocol never opens it. That is the paper's")
	fmt.Println("closing argument for RDAP — and why, until com serves it, a learned")
	fmt.Println("parser is the practical path.")
}
