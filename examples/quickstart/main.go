// Quickstart: train a statistical WHOIS parser from labeled examples and
// parse a raw record.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	whoisparse "repro"
)

// rawRecord is a thick WHOIS record in a format the parser has never seen
// verbatim — the training corpus only teaches it the *vocabulary* of WHOIS
// records.
const rawRecord = `Domain Name: quickstart-demo.com
Registrar WHOIS Server: whois.example-registrar.com
Registrar URL: http://www.example-registrar.com
Updated Date: 2014-11-02T08:30:00Z
Creation Date: 2011-06-15T08:30:00Z
Registrar Registration Expiration Date: 2016-06-15T08:30:00Z
Registrar: Example Registrar, Inc.
Domain Status: clientTransferProhibited
Registrant Name: Ada Lovelace
Registrant Organization: Analytical Engines Ltd.
Registrant Street: 12 Byron Terrace
Registrant City: London
Registrant Postal Code: W1J 7NT
Registrant Country: GB
Registrant Phone: +44.2079460000
Registrant Email: ada@analytical-engines.example
Admin Name: Charles Babbage
Admin Email: charles@analytical-engines.example
Name Server: ns1.example-registrar.com
Name Server: ns2.example-registrar.com

The data in this record is provided for information purposes only.`

func main() {
	// 1. Get labeled training data. Real deployments label a few hundred
	// records by hand (§5: 100 examples -> >98% accuracy); here the
	// synthetic corpus generator provides them pre-labeled.
	corpus := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 300, Seed: 42})

	// 2. Train the two-level CRF parser.
	parser, stats, err := whoisparse.Train(corpus, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d records: %d first-level features, %d second-level features\n\n",
		len(corpus), stats.BlockFeatures, stats.FieldFeatures)

	// 3. Parse a record.
	parsed := parser.Parse(rawRecord)

	fmt.Println("per-line labels:")
	for i, ln := range parsed.Lines {
		label := parsed.Blocks[i].String()
		if parsed.Blocks[i] == whoisparse.BlockRegistrant {
			label += "/" + parsed.Fields[i].String()
		}
		fmt.Printf("  %-20s %s\n", label, ln.Raw)
	}

	fmt.Println("\nextracted fields:")
	fmt.Printf("  domain:     %s\n", parsed.DomainName)
	fmt.Printf("  registrar:  %s\n", parsed.Registrar)
	fmt.Printf("  created:    %s\n", parsed.CreatedDate)
	fmt.Printf("  registrant: %s (%s)\n", parsed.Registrant.Name, parsed.Registrant.Org)
	fmt.Printf("  address:    %s, %s %s, %s\n",
		parsed.Registrant.Street, parsed.Registrant.City,
		parsed.Registrant.Postcode, parsed.Registrant.Country)
	fmt.Printf("  email:      %s\n", parsed.Registrant.Email)
}
