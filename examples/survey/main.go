// Survey example: the §6 analysis in miniature. Generate a com corpus,
// parse every record with a trained statistical parser, and aggregate
// registrant countries, registrars and privacy-protection usage.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"

	"repro/internal/survey"
	"repro/internal/synth"

	whoisparse "repro"
)

func main() {
	// Train on a small labeled sample.
	train := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 500, Seed: 11})
	parser, _, err := whoisparse.Train(train, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// "Crawl" a larger corpus and parse every record. The parser sees
	// only rendered text; the generator's ground truth is used solely for
	// the DBL blacklist bit, which in the paper also comes from an
	// external feed.
	domains := synth.Generate(synth.Config{N: 4000, Seed: 12, BrandFraction: 0.02})
	facts := make([]survey.Facts, 0, len(domains))
	for _, d := range domains {
		pr := parser.Parse(d.Render().Text)
		facts = append(facts, survey.FactsFrom(pr, d.Blacklisted))
	}
	s := survey.New(facts)
	fmt.Printf("surveyed %d parsed com records\n\n", s.Len())

	t3all, t3new := s.Table3()
	fmt.Println(survey.RenderRows("Registrant countries (all time)", t3all))
	fmt.Println(survey.RenderRows("Registrant countries (created 2014)", t3new))
	t5all, _ := s.Table5()
	fmt.Println(survey.RenderRows("Registrars (all time)", t5all))
	fmt.Println(survey.RenderRows("Privacy protection services", s.Table7()))
	fmt.Println(survey.RenderRegistrarMixes("Top registrant countries per registrar (Figure 5)",
		s.Figure5([]string{"eNom", "HiChina", "GMO", "Melbourne"})))
}
