// Crawl example: stand up the simulated com WHOIS ecosystem on loopback
// TCP sockets, crawl it with the rate-limit-inferring crawler, and parse
// the thick records with a trained statistical parser — the paper's full
// §4 pipeline end to end.
//
//	go run ./examples/crawl
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/crawler"
	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/whoisd"

	whoisparse "repro"
)

func main() {
	// 1. A small com ecosystem: thin registry + rate-limited registrars.
	// 7.5% of domains have lost their thick record (the §4.1 failure
	// tail).
	domains := synth.Generate(synth.Config{N: 300, Seed: 2015})
	eco := registry.BuildEcosystem(domains, 0.075)
	cluster, err := whoisd.StartCluster(eco, whoisd.ClusterConfig{
		RegistryLimit:  400,
		RegistrarLimit: 25,
		Window:         500 * time.Millisecond,
		Penalty:        time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("ecosystem up: 1 registry + %d registrar servers on loopback TCP\n", len(eco.Servers))

	// 2. Crawl it: thin lookup, referral extraction, thick lookup, with
	// adaptive pacing and three source addresses to rotate across.
	c, err := crawler.New(crawler.Config{
		Resolver:        cluster.Directory,
		Sources:         []string{"127.0.0.2", "127.0.0.3", "127.0.0.4"},
		Workers:         16,
		InitialInterval: 2 * time.Millisecond,
		MaxInterval:     600 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(domains))
	for i, d := range domains {
		names[i] = d.Reg.Domain
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, stats := c.Crawl(ctx, names)
	fmt.Printf("crawl done in %v: coverage %.1f%%, failures %.1f%%, rate-limit refusals %d\n",
		stats.Elapsed.Round(time.Millisecond), 100*stats.Coverage(), 100*stats.FailureRate(), stats.RateLimitHits)
	for _, s := range c.LimitedServers() {
		fmt.Printf("  inferred budget at %s: %.1f q/s\n", s, c.InferredRate(s))
	}

	// 3. Train a parser on labeled examples and parse the crawl.
	train := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 400, Seed: 77})
	parser, _, err := whoisparse.Train(train, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	countries := make(map[string]int)
	parsed := 0
	for _, r := range results {
		if r.Thick == "" {
			continue
		}
		pr := parser.Parse(r.Thick)
		parsed++
		if pr.Registrant.Country != "" {
			countries[pr.Registrant.Country]++
		}
	}
	fmt.Printf("\nparsed %d thick records; registrant countries seen:\n", parsed)
	for c, n := range countries {
		if n >= 5 {
			fmt.Printf("  %-4s %d\n", c, n)
		}
	}
}
