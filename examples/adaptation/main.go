// Adaptation example: the §5.2–5.3 maintainability story. A parser
// trained only on com meets records from 12 new TLDs it has never seen.
// The statistical parser mostly generalizes; where it errs, adding a
// single labeled example per failing TLD and retraining fixes it — no
// hand-written rule surgery required.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"

	"repro/internal/synth"

	whoisparse "repro"
)

func countErrors(p *whoisparse.Parser, rec *whoisparse.LabeledRecord) int {
	_, blocks := p.ParseBlocks(rec.Text)
	bad := 0
	for i := range rec.Lines {
		if blocks[i] != rec.Lines[i].Block {
			bad++
		}
	}
	return bad
}

func main() {
	// Train on com only.
	com := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: 1500, Seed: 3})
	parser, _, err := whoisparse.Train(com, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate one sample record per new TLD (formats within a TLD are
	// uniform, so one record suffices — §5.2).
	fmt.Println("before adaptation (trained on com only):")
	var failing []string
	tests := make(map[string]*whoisparse.LabeledRecord)
	for _, tld := range synth.NewTLDs() {
		rec := synth.GenerateNewTLD(tld, 1, 555)[0].Labeled()
		tests[tld] = rec
		errs := countErrors(parser, rec)
		fmt.Printf("  %-8s %2d/%d lines mislabeled\n", tld, errs, len(rec.Lines))
		if errs > 0 {
			failing = append(failing, tld)
		}
	}

	if len(failing) == 0 {
		fmt.Println("\nno failures — nothing to adapt")
		return
	}

	// §5.3: add ONE labeled example from each failing TLD and retrain.
	// (The added records are different domains than the test records.)
	train := append([]*whoisparse.LabeledRecord{}, com...)
	for _, tld := range failing {
		train = append(train, synth.GenerateNewTLD(tld, 1, 999)[0].Labeled())
	}
	fmt.Printf("\nretraining with %d additional labeled example(s) from: %v\n", len(failing), failing)
	// Retrain warm-starts from the existing parser's weights, so the
	// optimizer only has to learn the new formats' features.
	adapted, stats, err := whoisparse.Retrain(parser, train, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(warm-started retrain converged in %d iterations)\n\n", stats.Block.Iterations)

	fmt.Println("after adaptation:")
	total := 0
	for _, tld := range synth.NewTLDs() {
		errs := countErrors(adapted, tests[tld])
		total += errs
		fmt.Printf("  %-8s %2d/%d lines mislabeled\n", tld, errs, len(tests[tld].Lines))
	}
	fmt.Printf("\ntotal errors after adaptation: %d (paper: 0)\n", total)
}
