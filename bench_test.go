package whoisparse

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index) and measures the hot paths
// of the parser itself. Accuracy-shaped results are reported as custom
// benchmark metrics (lineerr, docerr, coverage, ...) so `go test -bench`
// doubles as the reproduction record.
//
// One bench per paper artifact:
//
//	BenchmarkSec23Baselines  — §2.3 coverage/fragility numbers
//	BenchmarkTable1          — heavily weighted features
//	BenchmarkFigure1         — transition features
//	BenchmarkFigure2         — line error vs training size (rule vs CRF)
//	BenchmarkFigure3         — document error vs training size
//	BenchmarkTable2          — new-TLD generalization + §5.3 adaptation
//	BenchmarkTable3/4/5/6/7/8/9 — §6 survey tables
//	BenchmarkFigure4 / BenchmarkFigure5 — §6 survey figures
//	BenchmarkCrawl           — §4.1 crawl over loopback TCP
//
// plus microbenchmarks (tokenize, decode, train, parse) and the ablation
// suite over the design choices DESIGN.md calls out.

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/labels"
	"repro/internal/rulebased"
	"repro/internal/survey"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// benchOptions are smaller than experiments.Quick so the full bench suite
// stays in the minutes range.
func benchOptions() experiments.Options {
	return experiments.Options{
		CorpusSize: 400, TrainSizes: []int{20, 100}, Folds: 2,
		SurveySize: 1500, CrawlSize: 120, MaxIterations: 40,
	}.Defaults()
}

var (
	benchSetup  sync.Once
	benchCorpus []*labels.LabeledRecord
	benchParser *core.Parser
	benchText   string
	benchInst   crf.Instance
)

func setupBench(b *testing.B) {
	b.Helper()
	benchSetup.Do(func() {
		benchCorpus = synth.GenerateLabeled(synth.Config{N: 600, Seed: 401})
		p, _, err := experiments.TrainParser(benchCorpus[:200], benchOptions())
		if err != nil {
			panic(err)
		}
		benchParser = p
		benchText = benchCorpus[300].Text
		lines := tokenize.Tokenize(benchText, tokenize.Options{})
		benchInst = p.BlockModel().MapLines(lines)
	})
}

// ---- Microbenchmarks ----

func BenchmarkTokenizeRecord(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tokenize.Tokenize(benchText, tokenize.Options{})
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchParser.BlockModel().Decode(benchInst)
	}
}

func BenchmarkForwardBackwardMarginals(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchParser.BlockModel().Marginals(benchInst)
	}
}

// BenchmarkPosterior measures the fused Viterbi + forward-backward pass
// that Confidence and the active-learning loop sit on; compare against
// BenchmarkDecodeRecord + BenchmarkForwardBackwardMarginals, which is what
// the unfused code paid per record.
func BenchmarkPosterior(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchParser.BlockModel().Posterior(benchInst)
	}
}

// BenchmarkParseAllWorkers measures the §6 bulk-survey path at several
// worker-pool widths over a mixed batch of records.
func BenchmarkParseAllWorkers(b *testing.B) {
	setupBench(b)
	texts := make([]string, 200)
	for i := range texts {
		texts[i] = benchCorpus[300+i%300].Text
	}
	widths := []struct {
		name string
		n    int
	}{{"1", 1}, {"4", 4}, {"max", runtime.GOMAXPROCS(0)}}
	for _, w := range widths {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchParser.ParseAll(texts, w.n)
			}
		})
	}
}

func BenchmarkParseRecord(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchParser.Parse(benchText)
	}
}

func BenchmarkTrainBlockCRF100(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.TrainParser(benchCorpus[:100], benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateCorpus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		synth.Generate(synth.Config{N: 100, Seed: int64(i + 1)})
	}
}

// ---- Paper artifact benches ----

func BenchmarkSec23Baselines(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Sec23(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DeftCoverage, "deft-coverage")
		b.ReportMetric(res.RubyCoverage, "ruby-coverage")
		b.ReportMetric(res.DriftSuccess, "drift-success")
		b.ReportMetric(res.GenericRuleRegistrant, "generic-registrant")
	}
}

func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figures23(o)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Statistical) - 1
		b.ReportMetric(res.Statistical[last].LineMean, "stat-lineerr")
		b.ReportMetric(res.RuleBased[last].LineMean, "rule-lineerr")
	}
}

func BenchmarkFigure3(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figures23(o)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Statistical) - 1
		b.ReportMetric(res.Statistical[last].DocMean, "stat-docerr")
		b.ReportMetric(res.RuleBased[last].DocMean, "rule-docerr")
	}
}

func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table2(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.StatTLDsWithErrors), "stat-tlds-err")
		b.ReportMetric(float64(res.RuleTLDsWithErrors), "rule-tlds-err")
		b.ReportMetric(float64(res.AfterAdaptErrors), "post-adapt-errs")
	}
}

// benchSurvey memoizes the parsed survey for the Table 3-9 benches, which
// then measure aggregation speed over the parsed facts.
var (
	surveyOnce sync.Once
	surveyData *survey.Survey
)

func surveyFacts(b *testing.B) *survey.Survey {
	b.Helper()
	setupBench(b)
	surveyOnce.Do(func() {
		domains := synth.Generate(synth.Config{N: 2500, Seed: 402, BrandFraction: 0.02})
		facts := make([]survey.Facts, 0, len(domains))
		for _, d := range domains {
			pr := benchParser.Parse(d.Render().Text)
			facts = append(facts, survey.FactsFrom(pr, d.Blacklisted))
		}
		surveyData = survey.New(facts)
	})
	return surveyData
}

func BenchmarkTable3(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, _ := s.Table3()
		if all[0].Key != "United States" {
			b.Fatalf("top country %q", all[0].Key)
		}
		b.ReportMetric(all[0].Pct, "us-pct")
	}
}

func BenchmarkTable4(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	brands := experiments.BrandNames()
	for i := 0; i < b.N; i++ {
		rows := s.Table4(brands)
		b.ReportMetric(float64(len(rows)), "brands-seen")
	}
}

func BenchmarkTable5(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all, _ := s.Table5()
		b.ReportMetric(all[0].Pct, "top-registrar-pct")
	}
}

func BenchmarkTable6(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table6()
		if len(rows) > 0 {
			b.ReportMetric(rows[0].Pct, "top-pct")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Table7()
		if len(rows) > 0 {
			b.ReportMetric(rows[0].Pct, "top-svc-pct")
		}
	}
}

func BenchmarkTable8(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Table8()
	}
}

func BenchmarkTable9(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Table9()
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := s.Figure4a()
		mixes := s.Figure4b(1995)
		if len(hist) == 0 || len(mixes) == 0 {
			b.Fatal("empty figure data")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := surveyFacts(b)
	b.ResetTimer()
	regs := []string{"eNom", "HiChina", "GMO", "Melbourne"}
	for i := 0; i < b.N; i++ {
		mixes := s.Figure5(regs)
		if len(mixes) != 4 {
			b.Fatal("missing registrar mixes")
		}
	}
}

func BenchmarkCrawl(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunCrawl(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Coverage, "coverage")
		b.ReportMetric(res.FailureRate, "failrate")
	}
}

// ---- Ablations (DESIGN.md §5) ----

// ablationError trains with the given configuration and reports held-out
// line error, the metric the design choices trade against.
func ablationError(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	setupBench(b)
	train := benchCorpus[:150]
	test := benchCorpus[300:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Train.LBFGS.MaxIterations = 40
		mutate(&cfg)
		p, _, err := core.Train(train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		m, err := eval.EvalBlocks(p, test)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.LineErrorRate(), "lineerr")
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationError(b, func(cfg *core.Config) {})
}

func BenchmarkAblationNoTitleValue(b *testing.B) {
	ablationError(b, func(cfg *core.Config) { cfg.Tokenize.DisableTitleValue = true })
}

func BenchmarkAblationNoLayoutMarkers(b *testing.B) {
	ablationError(b, func(cfg *core.Config) { cfg.Tokenize.DisableLayout = true })
}

func BenchmarkAblationNoWordClasses(b *testing.B) {
	ablationError(b, func(cfg *core.Config) { cfg.Tokenize.DisableClasses = true })
}

func BenchmarkAblationNoTransObs(b *testing.B) {
	// Label-bigram-only transitions: shrink the feature space by gating
	// every observation out of the transition block.
	setupBench(b)
	train := benchCorpus[:150]
	test := benchCorpus[300:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := train
		tok := make([][]tokenize.Line, len(recs))
		for j, rec := range recs {
			tok[j] = tokenize.Tokenize(rec.Text, tokenize.Options{})
		}
		dict := tokenize.BuildDictionary(tok, 2)
		m := crf.New(dict, crf.Config{NumStates: labels.NumBlocks, DisableTransObs: true, L2: 1})
		insts := make([]crf.Instance, len(recs))
		for j := range recs {
			inst := m.MapLines(tok[j])
			inst.Labels = make([]int, len(recs[j].Lines))
			for k, ln := range recs[j].Lines {
				inst.Labels[k] = int(ln.Block)
			}
			insts[j] = inst
		}
		if _, err := m.Train(insts, crf.TrainConfig{}); err != nil {
			b.Fatal(err)
		}
		var errCount, lines int
		for _, rec := range test {
			inst := m.MapLines(tokenize.Tokenize(rec.Text, tokenize.Options{}))
			path, _ := m.Decode(inst)
			for k := range rec.Lines {
				lines++
				if labels.Block(path[k]) != rec.Lines[k].Block {
					errCount++
				}
			}
		}
		b.ReportMetric(float64(errCount)/float64(lines), "lineerr")
	}
}

func BenchmarkAblationSGD(b *testing.B) {
	ablationError(b, func(cfg *core.Config) { cfg.Train.Method = "sgd" })
}

func BenchmarkAblationHighDictionaryTrim(b *testing.B) {
	ablationError(b, func(cfg *core.Config) { cfg.MinCount = 20 })
}

func BenchmarkAblationRuleBaseline(b *testing.B) {
	// The non-statistical baseline at the same training size, for scale.
	setupBench(b)
	train := benchCorpus[:150]
	test := benchCorpus[300:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := rulebased.Build(train, tokenize.Options{})
		m, err := eval.EvalBlocks(p, test)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.LineErrorRate(), "lineerr")
	}
}
