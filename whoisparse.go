// Package whoisparse is a statistical WHOIS-record parser: a Go
// reproduction of "Who is .com? Learning to Parse WHOIS Records"
// (Liu, Foster, Savage, Voelker, Saul — IMC 2015).
//
// WHOIS records are human-readable but follow no consistent schema, so
// parsing them at scale with hand-written rules or per-registrar templates
// is fragile. This package instead labels each line of a record with a
// two-level conditional random field trained from labeled examples:
//
//	parser, _, err := whoisparse.Train(labeledRecords, whoisparse.DefaultConfig())
//	...
//	parsed := parser.Parse(rawRecordText)
//	fmt.Println(parsed.Registrant.Name, parsed.Registrant.Country)
//
// The first level segments a record into registrar / domain / date /
// registrant / other-contact / boilerplate blocks; the second level splits
// the registrant block into name, org, street, city, state, postcode,
// country, phone, fax and email. A few hundred labeled records are enough
// for >99% line accuracy, and new formats are absorbed by adding a single
// labeled example and retraining.
//
// Subpackages under internal/ provide everything else the paper's system
// needs: the CRF machinery (internal/crf, internal/optimize), the feature
// pipeline (internal/tokenize), rule-based and template-based baseline
// parsers, an RFC 3912 client/server and rate-limit-aware crawler, a
// synthetic .com ecosystem standing in for the paper's 102M-record crawl,
// and the §5–§6 evaluation and survey harnesses.
package whoisparse

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// Re-exported core types. See the respective internal packages for full
// documentation.
type (
	// Parser is a trained two-level statistical WHOIS parser.
	Parser = core.Parser
	// Config controls feature generation and training.
	Config = core.Config
	// ParsedRecord is the output of Parser.Parse.
	ParsedRecord = core.ParsedRecord
	// Contact holds extracted registrant subfields.
	Contact = core.Contact
	// TrainStats reports optimizer outcomes.
	TrainStats = core.TrainStats

	// LabeledRecord is a WHOIS record with per-line ground-truth labels.
	LabeledRecord = labels.LabeledRecord
	// LabeledLine is one labeled line.
	LabeledLine = labels.LabeledLine
	// Block is a first-level label (registrar, domain, date, registrant,
	// other, null).
	Block = labels.Block
	// Field is a second-level registrant label (name, org, street, ...).
	Field = labels.Field

	// TokenizeOptions selects observation families for feature extraction.
	TokenizeOptions = tokenize.Options
)

// First-level label values.
const (
	BlockRegistrar  = labels.Registrar
	BlockDomain     = labels.Domain
	BlockDate       = labels.Date
	BlockRegistrant = labels.Registrant
	BlockOther      = labels.Other
	BlockNull       = labels.Null
)

// DefaultConfig returns the training configuration used in the paper
// reproduction experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// Train fits a two-level parser from labeled records.
func Train(records []*LabeledRecord, cfg Config) (*Parser, TrainStats, error) {
	return core.Train(records, cfg)
}

// Retrain fits a parser on records, warm-starting from prev where the
// feature spaces overlap — the fast path for the paper's §5.3 workflow of
// absorbing a new record format by adding a handful of labeled examples.
func Retrain(prev *Parser, records []*LabeledRecord, cfg Config) (*Parser, TrainStats, error) {
	return core.Retrain(prev, records, cfg)
}

// Save writes a trained parser to path as a versioned model artifact
// (magic header, format version, feature dimensions, and a payload
// checksum; see internal/store). The write is atomic: a temp file is
// fsynced and renamed into place.
func Save(p *Parser, path string) error {
	return store.SaveModel(p, path)
}

// Load reads a parser written by Save. Versioned artifacts are verified
// (magic, version, checksum, dimensions) before deserializing; files
// from the pre-artifact era — bare parser gobs — still load via a
// legacy fallback path.
func Load(path string) (*Parser, error) {
	if store.IsModelArtifact(path) {
		return store.LoadModel(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("whoisparse: load: %w", err)
	}
	defer f.Close()
	return core.Read(f)
}

// ReadParser reads a parser from a stream.
func ReadParser(r io.Reader) (*Parser, error) { return core.Read(r) }

// ReadLabeled parses labeled records from the sectioned text format.
func ReadLabeled(r io.Reader) ([]*LabeledRecord, error) { return labels.ReadRecords(r) }

// WriteLabeled serializes labeled records in the sectioned text format.
func WriteLabeled(w io.Writer, records []*LabeledRecord) error {
	return labels.WriteRecords(w, records)
}

// CorpusConfig re-exports the synthetic-corpus generator configuration.
type CorpusConfig = synth.Config

// GenerateCorpus produces a labeled synthetic .com corpus. It stands in
// for the paper's crawled ground-truth data; see DESIGN.md for the
// substitution rationale.
func GenerateCorpus(cfg CorpusConfig) []*LabeledRecord {
	return synth.GenerateLabeled(cfg)
}
