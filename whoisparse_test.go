package whoisparse

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	corpus := GenerateCorpus(CorpusConfig{N: 200, Seed: 301})
	if len(corpus) != 200 {
		t.Fatalf("generated %d records", len(corpus))
	}
	parser, stats, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlockFeatures == 0 {
		t.Error("no block features")
	}

	// Parse a held-out record and check the labels against ground truth.
	held := GenerateCorpus(CorpusConfig{N: 10, Seed: 302})
	rec := held[0]
	parsed := parser.Parse(rec.Text)
	if len(parsed.Blocks) != len(rec.Lines) {
		t.Fatalf("parsed %d lines, record has %d", len(parsed.Blocks), len(rec.Lines))
	}
	errs := 0
	for i := range rec.Lines {
		if parsed.Blocks[i] != rec.Lines[i].Block {
			errs++
		}
	}
	if errs > 2 {
		t.Errorf("%d/%d lines mislabeled on held-out record", errs, len(rec.Lines))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	corpus := GenerateCorpus(CorpusConfig{N: 120, Seed: 303})
	parser, _, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "parser.model")
	if err := Save(parser, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	text := corpus[0].Text
	a := parser.Parse(text)
	b := loaded.Parse(text)
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatal("labels differ after save/load")
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.model")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLabeledIO(t *testing.T) {
	corpus := GenerateCorpus(CorpusConfig{N: 25, Seed: 304})
	var buf bytes.Buffer
	if err := WriteLabeled(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLabeled(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(corpus) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(corpus))
	}
	for i := range got {
		if got[i].Text != corpus[i].Text || len(got[i].Lines) != len(corpus[i].Lines) {
			t.Fatalf("record %d corrupted in round trip", i)
		}
	}
}

func TestBlockConstants(t *testing.T) {
	if BlockRegistrant.String() != "registrant" || BlockNull.String() != "null" {
		t.Error("block constants miswired")
	}
}

// Save now writes the versioned artifact format; Load must verify it and
// still accept the bare-gob files the pre-artifact Save produced.
func TestSaveWritesVersionedArtifactAndLoadsLegacy(t *testing.T) {
	corpus := GenerateCorpus(CorpusConfig{N: 120, Seed: 305})
	parser, _, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	artifact := filepath.Join(t.TempDir(), "parser.model")
	if err := Save(parser, artifact); err != nil {
		t.Fatal(err)
	}
	head, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) < 4 || string(head[:4]) != "WMDL" {
		t.Fatalf("Save did not write the versioned artifact magic, got % x", head[:4])
	}

	// Legacy format: a bare parser gob, exactly what the old Save wrote.
	legacy := filepath.Join(t.TempDir(), "legacy.model")
	var buf bytes.Buffer
	if _, err := parser.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	text := corpus[0].Text
	want := parser.Parse(text)
	for _, path := range []string{artifact, legacy} {
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", filepath.Base(path), err)
		}
		got := loaded.Parse(text)
		for i := range want.Blocks {
			if want.Blocks[i] != got.Blocks[i] {
				t.Fatalf("Load(%s): labels differ from trained parser", filepath.Base(path))
			}
		}
	}
}

func TestLoadRejectsCorruptArtifact(t *testing.T) {
	corpus := GenerateCorpus(CorpusConfig{N: 120, Seed: 306})
	parser, _, err := Train(corpus, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "parser.model")
	if err := Save(parser, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF // flip a payload byte; the checksum must catch it
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an artifact with a corrupted payload")
	}
}
