// Command experiments regenerates the paper's tables and figures on the
// synthetic ecosystem.
//
// Usage:
//
//	experiments [-run all|sec23|table1|figure1|figure2|figure3|table2|adapt|survey|crawl] [-quick] [-corpus N] [-survey N]
//
// Each experiment prints a section mirroring the corresponding paper
// table/figure; see EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "experiment to run: all, sec23, table1, figure1, figure2, figure3, table2, adapt, fields, survey, crawl")
	quick := flag.Bool("quick", false, "use small sizes (seconds instead of minutes)")
	corpus := flag.Int("corpus", 0, "labeled corpus size (default 4000; paper used 86K)")
	surveyN := flag.Int("survey", 0, "survey corpus size (default 30000; paper used 102M)")
	crawlN := flag.Int("crawl", 0, "crawl size (default 1200)")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	flag.Parse()

	o := experiments.Options{}
	if *quick {
		o = experiments.Quick()
	}
	if *corpus > 0 {
		o.CorpusSize = *corpus
	}
	if *surveyN > 0 {
		o.SurveySize = *surveyN
	}
	if *crawlN > 0 {
		o.CrawlSize = *crawlN
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o = o.Defaults()

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	emit := func(text string, err error) {
		ran = true
		if err != nil {
			log.Fatalf("experiments: %v", err)
		}
		fmt.Println(text)
	}

	if want("sec23") {
		_, text, err := experiments.Sec23(o)
		emit(text, err)
	}
	if want("table1") {
		text, err := experiments.Table1(o)
		emit(text, err)
	}
	if want("figure1") {
		text, err := experiments.Figure1(o)
		emit(text, err)
	}
	if want("figure2") || want("figure3") {
		_, text, err := experiments.Figures23(o)
		emit(text, err)
	}
	if want("table2") || want("adapt") {
		_, text, err := experiments.Table2(o)
		emit(text, err)
	}
	if want("fields") {
		_, text, err := experiments.FieldsSweep(o)
		emit(text, err)
	}
	if want("survey") || anyTable(*run) {
		_, text, err := experiments.RunSurvey(o)
		emit(text, err)
	}
	if want("crawl") {
		_, text, err := experiments.RunCrawl(o)
		emit(text, err)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

// anyTable maps table3..table9, figure4a/4b/5 to the survey experiment.
func anyTable(run string) bool {
	switch strings.ToLower(run) {
	case "table3", "table4", "table5", "table6", "table7", "table8", "table9",
		"figure4", "figure4a", "figure4b", "figure5":
		return true
	}
	return false
}
