// Command whoisparse trains, evaluates, and applies the statistical WHOIS
// parser.
//
// Subcommands:
//
//	whoisparse gen   -n 2000 -seed 1 -out corpus.labeled
//	whoisparse train -in corpus.labeled -out parser.model [-train 1000]
//	whoisparse eval  -model parser.model -in corpus.labeled [-baseline]
//	whoisparse parse -model parser.model [record.txt]   (stdin if no file)
//	whoisparse consistency -model parser.model -rdap http://host:port example.com
//	whoisparse model <publish|list|inspect|verify|diff|promote|rollback|gc> -registry DIR
//
// The consistency subcommand is the one-shot cross-protocol check: it
// obtains a domain over both WHOIS (parsed by the model) and RDAP,
// projects both answers onto the common field set, and prints the
// per-field agreement verdicts. -whois-file and -rdap-file swap either
// live lookup for a canned fixture, so the check also runs offline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/consistency"
	"repro/internal/eval"
	"repro/internal/rdap"
	"repro/internal/rulebased"
	"repro/internal/tokenize"
	"repro/internal/whoisclient"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoisparse: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "train":
		cmdTrain(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "parse":
		cmdParse(os.Args[2:])
	case "triage":
		cmdTriage(os.Args[2:])
	case "xval":
		cmdXval(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "consistency":
		cmdConsistency(os.Args[2:])
	case "model":
		cmdModel(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: whoisparse <gen|train|eval|parse|triage|inspect|xval|consistency|model> [flags]")
	os.Exit(2)
}

// cmdXval runs the §5.1 cross-validation protocol from the command line:
// statistical vs rule-based error as a function of training-set size.
func cmdXval(args []string) {
	fs := flag.NewFlagSet("xval", flag.ExitOnError)
	in := fs.String("in", "corpus.labeled", "labeled corpus")
	sizesArg := fs.String("sizes", "20,100,1000", "comma-separated training sizes")
	folds := fs.Int("folds", 5, "cross-validation folds")
	seed := fs.Int64("seed", 1, "fold-assignment seed")
	fs.Parse(args)

	recs := readLabeled(*in)
	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	statFactory := func(train []*whoisparse.LabeledRecord) (eval.BlockParser, error) {
		p, _, err := whoisparse.Train(train, whoisparse.DefaultConfig())
		return p, err
	}
	ruleFactory := func(train []*whoisparse.LabeledRecord) (eval.BlockParser, error) {
		return rulebased.Build(train, tokenize.Options{}), nil
	}
	stat, err := eval.CrossValidate(recs, sizes, *folds, *seed, statFactory)
	if err != nil {
		log.Fatal(err)
	}
	rule, err := eval.CrossValidate(recs, sizes, *folds, *seed, ruleFactory)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s | %25s | %25s\n", "train size", "line error (rule / stat)", "doc error (rule / stat)")
	for i := range stat {
		fmt.Printf("%10d | %.4f±%.4f  %.4f±%.4f | %.4f±%.4f  %.4f±%.4f\n",
			stat[i].TrainSize,
			rule[i].LineMean, rule[i].LineStd, stat[i].LineMean, stat[i].LineStd,
			rule[i].DocMean, rule[i].DocStd, stat[i].DocMean, stat[i].DocStd)
	}
}

// cmdTriage ranks a labeled corpus by decoding uncertainty — the records
// most worth labeling next when adapting the parser to new formats (§5.3).
func cmdTriage(args []string) {
	fs := flag.NewFlagSet("triage", flag.ExitOnError)
	model := fs.String("model", "parser.model", "trained model file")
	in := fs.String("in", "corpus.labeled", "labeled corpus to triage")
	topN := fs.Int("top", 10, "how many uncertain records to show")
	fs.Parse(args)

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	recs := readLabeled(*in)
	texts := make([]string, len(recs))
	for i, r := range recs {
		texts[i] = r.Text
	}
	order := p.RankByUncertainty(texts)
	if *topN > len(order) {
		*topN = len(order)
	}
	fmt.Printf("most uncertain records (label these next):\n")
	for _, idx := range order[:*topN] {
		_, min := p.Confidence(texts[idx])
		fmt.Printf("  %-30s registrar=%-40s min-confidence=%.4f\n",
			recs[idx].Domain, recs[idx].Registrar, min)
	}
}

// cmdInspect prints the trained model's heaviest features (Table 1 /
// Figure 1 style introspection).
func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	model := fs.String("model", "parser.model", "trained model file")
	topN := fs.Int("top", 8, "features per label")
	fs.Parse(args)

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-level CRF: %d features over %d observations\n\n",
		p.BlockModel().NumFeatures(), p.BlockModel().Dict().Len())
	for _, name := range []string{"registrar", "domain", "date", "registrant", "other", "null"} {
		b, _ := parseBlockName(name)
		top := p.BlockModel().TopStateFeatures(b, *topN)
		fmt.Printf("%-11s", name)
		for _, w := range top {
			fmt.Printf(" %s", w.Obs)
		}
		fmt.Println()
	}
	fmt.Println("\nstrongest block transitions:")
	for _, tr := range p.BlockModel().TopTransitionFeatures(12) {
		fmt.Printf("  %-11s -> %-11s %-20s %+.3f\n",
			blockName(tr.From), blockName(tr.To), tr.Obs, tr.Weight)
	}
}

func parseBlockName(name string) (int, bool) {
	for i, n := range []string{"registrar", "domain", "date", "registrant", "other", "null"} {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

func blockName(i int) string {
	names := []string{"registrar", "domain", "date", "registrant", "other", "null"}
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "?"
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 2000, "number of labeled records")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "corpus.labeled", "output file")
	drift := fs.Float64("drift", 0, "fraction of records with format drift")
	fs.Parse(args)

	recs := whoisparse.GenerateCorpus(whoisparse.CorpusConfig{N: *n, Seed: *seed, DriftFraction: *drift})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := whoisparse.WriteLabeled(f, recs); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d labeled records to %s", len(recs), *out)
}

func readLabeled(path string) []*whoisparse.LabeledRecord {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs, err := whoisparse.ReadLabeled(f)
	if err != nil {
		log.Fatal(err)
	}
	return recs
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "corpus.labeled", "labeled training corpus")
	out := fs.String("out", "parser.model", "output model file")
	limit := fs.Int("train", 0, "train on only the first N records (0 = all)")
	fs.Parse(args)

	recs := readLabeled(*in)
	if *limit > 0 && *limit < len(recs) {
		recs = recs[:*limit]
	}
	p, stats, err := whoisparse.Train(recs, whoisparse.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := whoisparse.Save(p, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("trained on %d records: first-level %d features (%d iters), second-level %d features (%d iters); model in %s",
		len(recs), stats.BlockFeatures, stats.Block.Iterations,
		stats.FieldFeatures, stats.Field.Iterations, *out)
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	model := fs.String("model", "parser.model", "trained model file")
	in := fs.String("in", "corpus.labeled", "labeled evaluation corpus")
	baseline := fs.Bool("baseline", false, "also evaluate a rule-based parser built from the same corpus")
	confusion := fs.Bool("confusion", false, "print the first-level confusion matrix")
	fs.Parse(args)

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	recs := readLabeled(*in)
	m, err := eval.EvalBlocks(p, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical: line error %.4f (%d/%d), document error %.4f (%d/%d)\n",
		m.LineErrorRate(), m.LineErrors, m.Lines, m.DocErrorRate(), m.DocErrors, m.Docs)
	mf, err := eval.EvalFields(p, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical registrant fields: line error %.4f over %d lines\n", mf.LineErrorRate(), mf.Lines)
	if *baseline {
		rb := rulebased.Build(recs, tokenize.Options{})
		mr, err := eval.EvalBlocks(rb, recs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rule-based (trained on eval corpus): line error %.4f, document error %.4f\n",
			mr.LineErrorRate(), mr.DocErrorRate())
	}
	if *confusion {
		c, err := eval.ConfusionBlocks(p, recs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(c.Render())
	}
}

// cmdConsistency runs the one-shot WHOIS↔RDAP check for a single
// domain: fetch both sides (live, or from fixture files), parse the
// WHOIS text with the model, and print the per-field verdicts.
func cmdConsistency(args []string) {
	fs := flag.NewFlagSet("consistency", flag.ExitOnError)
	model := fs.String("model", "parser.model", "trained model file")
	whoisFile := fs.String("whois-file", "", "read the WHOIS record text from this file instead of a live lookup")
	rdapFile := fs.String("rdap-file", "", "read the RDAP domain object (JSON) from this file instead of a live lookup")
	rdapURL := fs.String("rdap", "", "RDAP service base URL for the live lookup (e.g. a running rdapd)")
	rdapBootstrap := fs.String("rdap-bootstrap", "", "IANA RDAP bootstrap registry (dns.json): an http(s) URL or a local file; resolves the RDAP base per TLD, with -rdap as fallback")
	server := fs.String("server", "whois.verisign-grs.com", "registry WHOIS server for the live thick lookup")
	timeout := fs.Duration("timeout", 15*time.Second, "overall deadline for the live lookups")
	jsonOut := fs.Bool("json", false, "emit the full comparison as JSON instead of the table")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: whoisparse consistency [flags] <domain>")
	}
	domain := fs.Arg(0)

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	c := &consistency.Checker{Parse: p.Parse}
	if *whoisFile != "" {
		c.FetchWHOIS = fileWHOISFetcher(*whoisFile)
	} else {
		wc := &whoisclient.Client{
			Resolver: whoisclient.ResolverFunc(resolveWHOISAddr),
			Timeout:  *timeout,
		}
		reg := *server
		c.FetchWHOIS = func(ctx context.Context, domain string) (string, error) {
			return wc.LookupText(ctx, reg, domain)
		}
	}
	if *rdapFile != "" {
		c.FetchRDAP = fileRDAPFetcher(*rdapFile)
	} else if *rdapURL != "" || *rdapBootstrap != "" {
		rc := &rdap.Client{BaseURL: strings.TrimRight(*rdapURL, "/")}
		if *rdapBootstrap != "" {
			src := &rdap.BootstrapSource{}
			if strings.HasPrefix(*rdapBootstrap, "http://") || strings.HasPrefix(*rdapBootstrap, "https://") {
				src.URL = *rdapBootstrap
			} else {
				src.Path = *rdapBootstrap
			}
			rc.Bootstrap = src
		}
		c.FetchRDAP = func(ctx context.Context, domain string) (*rdap.Domain, error) {
			return rc.Lookup(domain)
		}
	} else {
		log.Fatal("consistency needs an RDAP side: give -rdap (base URL), -rdap-bootstrap, or -rdap-file")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := runConsistencyCheck(ctx, os.Stdout, c, domain, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

// resolveWHOISAddr maps a WHOIS server name to a dialable address,
// appending the protocol's port 43 when none is given.
func resolveWHOISAddr(name string) (string, error) {
	if _, _, err := net.SplitHostPort(name); err == nil {
		return name, nil
	}
	return net.JoinHostPort(name, "43"), nil
}

// fileWHOISFetcher answers every fetch with the file's text — the
// offline WHOIS side of the check.
func fileWHOISFetcher(path string) func(context.Context, string) (string, error) {
	return func(context.Context, string) (string, error) {
		data, err := os.ReadFile(path)
		return string(data), err
	}
}

// fileRDAPFetcher answers every fetch with the file's RDAP domain
// object — the offline RDAP side of the check.
func fileRDAPFetcher(path string) func(context.Context, string) (*rdap.Domain, error) {
	return func(context.Context, string) (*rdap.Domain, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var d rdap.Domain
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &d, nil
	}
}

// runConsistencyCheck performs the check and renders it — factored so
// tests drive it with stub fetchers.
func runConsistencyCheck(ctx context.Context, w io.Writer, c *consistency.Checker, domain string, asJSON bool) error {
	res, err := c.Check(ctx, domain)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	renderConsistency(w, res)
	return nil
}

// renderConsistency prints the per-field verdict table and the
// agreement roll-up for one checked domain.
func renderConsistency(w io.Writer, res *consistency.Result) {
	fmt.Fprintf(w, "domain: %s\n", res.Domain)
	fmt.Fprintf(w, "  %-19s %-14s %-36s %s\n", "field", "verdict", "whois", "rdap")
	for f := consistency.Field(0); f < consistency.NumFields; f++ {
		fmt.Fprintf(w, "  %-19s %-14s %-36s %s\n",
			f.String(), res.Comparison.Verdicts[f].String(),
			orDash(res.WHOIS.Value(f)), orDash(res.RDAP.Value(f)))
	}
	var counts [consistency.NumVerdicts]int
	for _, v := range res.Comparison.Verdicts {
		counts[v]++
	}
	missing := counts[consistency.MissingWHOIS] + counts[consistency.MissingRDAP] + counts[consistency.MissingBoth]
	fmt.Fprintf(w, "agreement: %d equal, %d equivalent, %d missing, %d conflicting (disagreement rate %.1f%%)\n",
		counts[consistency.Equal], counts[consistency.Equivalent], missing,
		res.Comparison.Conflicts(), 100*res.Comparison.Rate())
	if fields := res.Comparison.ConflictFields(); len(fields) > 0 {
		names := make([]string, len(fields))
		for i, f := range fields {
			names[i] = f.String()
		}
		fmt.Fprintf(w, "conflicting fields: %s\n", strings.Join(names, ", "))
	}
}

// orDash substitutes a dash for empty values so the table's columns
// stay readable.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	model := fs.String("model", "parser.model", "trained model file")
	showLines := fs.Bool("lines", false, "print the per-line labels")
	fs.Parse(args)

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	var text []byte
	if fs.NArg() > 0 {
		text, err = os.ReadFile(fs.Arg(0))
	} else {
		text, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}
	pr := p.Parse(string(text))
	if *showLines {
		for i, ln := range pr.Lines {
			lbl := pr.Blocks[i].String()
			if pr.Blocks[i] == whoisparse.BlockRegistrant {
				lbl += "/" + pr.Fields[i].String()
			}
			fmt.Printf("%-18s %s\n", lbl, ln.Raw)
		}
		fmt.Println()
	}
	fmt.Printf("Domain:      %s\n", pr.DomainName)
	fmt.Printf("Registrar:   %s\n", pr.Registrar)
	fmt.Printf("Created:     %s\n", pr.CreatedDate)
	fmt.Printf("Expires:     %s\n", pr.ExpiresDate)
	fmt.Printf("Registrant:  %s\n", pr.Registrant.Name)
	fmt.Printf("  Org:       %s\n", pr.Registrant.Org)
	fmt.Printf("  Street:    %s\n", pr.Registrant.Street)
	fmt.Printf("  City:      %s / %s / %s\n", pr.Registrant.City, pr.Registrant.State, pr.Registrant.Postcode)
	fmt.Printf("  Country:   %s\n", pr.Registrant.Country)
	fmt.Printf("  Phone:     %s\n", pr.Registrant.Phone)
	fmt.Printf("  Email:     %s\n", pr.Registrant.Email)
}
