package main

import "testing"

func TestParseBlockName(t *testing.T) {
	i, ok := parseBlockName("registrant")
	if !ok || i != 3 {
		t.Errorf("registrant -> (%d, %v)", i, ok)
	}
	if _, ok := parseBlockName("bogus"); ok {
		t.Error("bogus name resolved")
	}
}

func TestBlockName(t *testing.T) {
	if blockName(0) != "registrar" || blockName(5) != "null" {
		t.Error("block names miswired")
	}
	if blockName(99) != "?" {
		t.Error("out of range should be ?")
	}
}
