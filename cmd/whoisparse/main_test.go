package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/rdap"
	"repro/internal/synth"
)

func TestParseBlockName(t *testing.T) {
	i, ok := parseBlockName("registrant")
	if !ok || i != 3 {
		t.Errorf("registrant -> (%d, %v)", i, ok)
	}
	if _, ok := parseBlockName("bogus"); ok {
		t.Error("bogus name resolved")
	}
}

func TestBlockName(t *testing.T) {
	if blockName(0) != "registrar" || blockName(5) != "null" {
		t.Error("block names miswired")
	}
	if blockName(99) != "?" {
		t.Error("out of range should be ?")
	}
}

// TestConsistencyCheckOffline drives the consistency subcommand's
// factored core with the file fetchers: a rendered WHOIS fixture on one
// side, the same registration's RDAP object (as JSON on disk) on the
// other, and a faithful stub parse in between.
func TestConsistencyCheckOffline(t *testing.T) {
	d := synth.Generate(synth.Config{N: 1, Seed: 11})[0]
	reg := &d.Reg
	dir := t.TempDir()

	whoisPath := filepath.Join(dir, "record.txt")
	if err := os.WriteFile(whoisPath, []byte(d.Render().Text), 0o644); err != nil {
		t.Fatal(err)
	}
	rdapPath := filepath.Join(dir, "domain.json")
	blob, err := json.Marshal(rdap.FromRegistration(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rdapPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	parse := func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{
			DomainName:  strings.ToLower(reg.Domain),
			Registrar:   reg.RegistrarName,
			CreatedDate: reg.Created.Format("02-Jan-2006"),
			UpdatedDate: reg.Updated.Format("02-Jan-2006"),
			ExpiresDate: reg.Expires.Format("02-Jan-2006"),
			Registrant: core.Contact{
				Name:    reg.Registrant.Name,
				Email:   reg.Registrant.Email,
				Country: reg.Registrant.CountryName,
			},
			NameServers: append([]string(nil), reg.NameServers...),
			Statuses:    append([]string(nil), reg.Statuses...),
		}
	}
	c := &consistency.Checker{
		FetchWHOIS: fileWHOISFetcher(whoisPath),
		FetchRDAP:  fileRDAPFetcher(rdapPath),
		Parse:      parse,
	}

	var buf bytes.Buffer
	if err := runConsistencyCheck(context.Background(), &buf, c, reg.Domain, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "domain: "+reg.Domain) {
		t.Errorf("missing domain header:\n%s", out)
	}
	for _, field := range []string{"registrar", "created", "expires", "nameservers", "statuses"} {
		if !strings.Contains(out, field) {
			t.Errorf("field table missing %q:\n%s", field, out)
		}
	}
	if strings.Contains(out, "conflicting fields:") {
		t.Errorf("faithful fixture produced conflicts:\n%s", out)
	}
	if !strings.Contains(out, " 0 conflicting ") {
		t.Errorf("agreement roll-up should report 0 conflicts:\n%s", out)
	}

	// The JSON form round-trips into a Result with the same verdicts.
	buf.Reset()
	if err := runConsistencyCheck(context.Background(), &buf, c, reg.Domain, true); err != nil {
		t.Fatal(err)
	}
	var res consistency.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("json output unparseable: %v\n%s", err, buf.String())
	}
	if res.Domain != reg.Domain || res.Comparison.Conflicts() != 0 {
		t.Errorf("json result = %+v", res.Comparison)
	}

	// A divergent parse surfaces its conflicts in the rendering.
	c.Parse = func(text string) *core.ParsedRecord {
		pr := parse(text)
		pr.Registrar = "Somebody Else, Inc."
		return pr
	}
	buf.Reset()
	if err := runConsistencyCheck(context.Background(), &buf, c, reg.Domain, false); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "conflicting fields: registrar") {
		t.Errorf("divergent registrar not reported:\n%s", out)
	}

	// Broken fixtures fail the check rather than scoring it.
	c.FetchRDAP = fileRDAPFetcher(filepath.Join(dir, "missing.json"))
	if err := runConsistencyCheck(context.Background(), &buf, c, reg.Domain, false); err == nil {
		t.Error("missing RDAP fixture accepted")
	}
}

func TestResolveWHOISAddr(t *testing.T) {
	if got, _ := resolveWHOISAddr("whois.example.com"); got != "whois.example.com:43" {
		t.Errorf("bare name -> %q", got)
	}
	if got, _ := resolveWHOISAddr("127.0.0.1:4343"); got != "127.0.0.1:4343" {
		t.Errorf("host:port -> %q", got)
	}
}
