package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/modelreg"
	"repro/internal/store"
	"repro/internal/synth"
)

// TestModelCLIRoundTrip drives the operator workflow end to end through
// runModel: publish → list → verify → promote ×2 → publish a successor →
// promote it → rollback → gc.
func TestModelCLIRoundTrip(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 60, Seed: 17})
	p, _, err := core.Train(recs[:40], core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	art := filepath.Join(t.TempDir(), "m.wmdl")
	if err := store.SaveModel(p, art); err != nil {
		t.Fatal(err)
	}
	regDir := t.TempDir()
	run := func(sub string, args ...string) (string, error) {
		var sb strings.Builder
		err := runModel(&sb, sub, append([]string{"-registry", regDir}, args...))
		return sb.String(), err
	}
	mustRun := func(sub string, args ...string) string {
		t.Helper()
		out, err := run(sub, args...)
		if err != nil {
			t.Fatalf("model %s: %v\n%s", sub, err, out)
		}
		return out
	}

	out := mustRun("publish", "-artifact", art, "-corpus", "/data/c.labeled", "-candidate")
	if !strings.Contains(out, "published default/1.0.0") || !strings.Contains(out, "as candidate") {
		t.Fatalf("publish output:\n%s", out)
	}
	out = mustRun("list")
	for _, want := range []string{"default:", "1.0.0", "candidate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}

	out = mustRun("inspect", "-version", "1.0.0")
	for _, want := range []string{`"corpus_path": "/data/c.labeled"`, "whoisparse model publish", "stage: candidate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}

	out = mustRun("verify")
	if !strings.Contains(out, "all 1 versions verified") {
		t.Fatalf("verify output:\n%s", out)
	}

	mustRun("promote", "-version", "1.0.0") // -> shadow
	out = mustRun("promote", "-version", "1.0.0")
	if !strings.Contains(out, "to serving") {
		t.Fatalf("promote output:\n%s", out)
	}
	// An unstaged version cannot jump the pipeline.
	mustRun("publish", "-artifact", art, "-version", "1.1.0", "-parent", "1.0.0")
	if _, err := run("promote", "-version", "1.1.0"); err == nil {
		t.Fatal("promote of unstaged version succeeded")
	}
	// Rolling back to a never-served version fails loudly.
	if _, err := run("rollback", "-version", "1.1.0"); err == nil {
		t.Fatal("rollback to never-served version succeeded")
	}

	out = mustRun("diff", "1.0.0", "1.1.0")
	if !strings.Contains(out, "1.0.0 -> 1.1.0") || !strings.Contains(out, "byte-identical") {
		t.Fatalf("diff output:\n%s", out)
	}

	// Walk the successor through properly, then roll back to 1.0.0.
	reg, err := modelreg.Open(regDir, modelreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetCandidate("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}
	mustRun("promote", "-version", "1.1.0")
	mustRun("promote", "-version", "1.1.0")
	out = mustRun("rollback", "-version", "1.0.0")
	if !strings.Contains(out, "rolled back") {
		t.Fatalf("rollback output:\n%s", out)
	}

	out = mustRun("gc", "-keep", "0")
	if !strings.Contains(out, "removed default/1.1.0") {
		t.Fatalf("gc output:\n%s", out)
	}

	// Missing -registry is an error, as is an unknown subcommand.
	var sb strings.Builder
	if err := runModel(&sb, "list", nil); err == nil {
		t.Fatal("runModel without -registry succeeded")
	}
	if err := runModel(&sb, "frobnicate", []string{"-registry", regDir}); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}

	res, err := reg.ResolveServing("default")
	if err != nil || res.Version != "1.0.0" {
		t.Fatalf("final serving = %+v, %v", res, err)
	}
}
