package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/modelreg"
)

// cmdModel is the registry operator surface: publish artifacts, walk
// them through the promotion state machine, and audit what is (or ever
// was) serving.
//
//	whoisparse model publish  -registry DIR [-family F] -artifact M.wmdl [-version V] [-parent P] [-candidate]
//	whoisparse model list     -registry DIR [-json]
//	whoisparse model inspect  -registry DIR [-family F] -version V [-json]
//	whoisparse model verify   -registry DIR [-family F [-version V]]
//	whoisparse model diff     -registry DIR [-family F] <verA> <verB>
//	whoisparse model promote  -registry DIR [-family F] -version V
//	whoisparse model rollback -registry DIR [-family F] -version V
//	whoisparse model gc       -registry DIR [-family F] [-keep N]
func cmdModel(args []string) {
	if len(args) < 1 {
		log.Fatal(modelUsage)
	}
	if err := runModel(os.Stdout, args[0], args[1:]); err != nil {
		log.Fatal(err)
	}
}

const modelUsage = "usage: whoisparse model <publish|list|inspect|verify|diff|promote|rollback|gc> [flags]"

// runModel dispatches one model subcommand; factored over an io.Writer
// so tests capture output.
func runModel(w io.Writer, sub string, args []string) error {
	fs := flag.NewFlagSet("model "+sub, flag.ExitOnError)
	regDir := fs.String("registry", "", "model registry root directory (required)")
	family := fs.String("family", modelreg.DefaultFamily, "model family")

	var (
		artifact  = fs.String("artifact", "", "WMDL artifact to publish")
		version   = fs.String("version", "", "version (publish: explicit semver, default auto; inspect/promote/rollback/verify: target)")
		parent    = fs.String("parent", "", "parent version recorded in the manifest")
		corpus    = fs.String("corpus", "", "training corpus path recorded in the manifest")
		note      = fs.String("note", "", "free-form note recorded in the manifest")
		candidate = fs.Bool("candidate", false, "stage the published version as the family candidate")
		keep      = fs.Int("keep", 3, "unstaged versions to retain per family")
		jsonOut   = fs.Bool("json", false, "emit JSON instead of text")
	)
	fs.Parse(args)
	if *regDir == "" {
		return fmt.Errorf("model %s: -registry is required", sub)
	}
	reg, err := modelreg.Open(*regDir, modelreg.Options{})
	if err != nil {
		return err
	}

	switch sub {
	case "publish":
		if *artifact == "" {
			return fmt.Errorf("model publish: -artifact is required")
		}
		m, err := reg.Publish(modelreg.PublishRequest{
			Family:       *family,
			Version:      *version,
			Parent:       *parent,
			ArtifactPath: *artifact,
			Provenance: modelreg.Provenance{
				CorpusPath: *corpus,
				Note:       *note,
				Trainer:    "whoisparse model publish",
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "published %s/%s crc32c=%08x (%d bytes)\n",
			m.Family, m.Version, m.Artifact.CRC32C, m.Artifact.SizeBytes)
		if *candidate {
			if err := reg.SetCandidate(*family, m.Version); err != nil {
				return err
			}
			fmt.Fprintf(w, "staged %s/%s as candidate\n", m.Family, m.Version)
		}
		return nil

	case "list":
		listings, err := reg.List()
		if err != nil {
			return err
		}
		if *jsonOut {
			return json.NewEncoder(w).Encode(listings)
		}
		for _, l := range listings {
			fmt.Fprintf(w, "%s:\n", l.Family)
			for _, v := range l.Versions {
				stage := v.Stage
				if stage == "" {
					stage = "-"
				}
				fmt.Fprintf(w, "  %-10s %-10s crc32c=%s  %s",
					v.Version, stage, v.CRC32C,
					time.Unix(v.CreatedUnix, 0).UTC().Format("2006-01-02T15:04:05Z"))
				if v.ShadowTokenAccuracy > 0 {
					fmt.Fprintf(w, "  tokacc=%.4f", v.ShadowTokenAccuracy)
				}
				fmt.Fprintln(w)
			}
		}
		return nil

	case "inspect":
		if *version == "" {
			return fmt.Errorf("model inspect: -version is required")
		}
		m, err := reg.Manifest(*family, *version)
		if err != nil {
			return err
		}
		if *jsonOut {
			return json.NewEncoder(w).Encode(m)
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\n", data)
		st, err := reg.StageOf(*family, *version)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "stage: %s\n", st)
		return nil

	case "verify":
		if *version != "" {
			if _, err := reg.Verify(*family, *version); err != nil {
				return err
			}
			fmt.Fprintf(w, "ok %s/%s\n", *family, *version)
			return nil
		}
		results, err := reg.VerifyAll()
		if err != nil {
			return err
		}
		bad := 0
		for _, res := range results {
			if res.OK {
				fmt.Fprintf(w, "ok   %s/%s\n", res.Family, res.Version)
			} else {
				bad++
				fmt.Fprintf(w, "FAIL %s/%s: %s\n", res.Family, res.Version, res.Error)
			}
		}
		if bad > 0 {
			return fmt.Errorf("model verify: %d of %d versions failed", bad, len(results))
		}
		fmt.Fprintf(w, "all %d versions verified\n", len(results))
		return nil

	case "diff":
		if fs.NArg() != 2 {
			return fmt.Errorf("model diff: want two version arguments")
		}
		d, err := reg.Diff(*family, fs.Arg(0), fs.Arg(1))
		if err != nil {
			return err
		}
		if *jsonOut {
			return json.NewEncoder(w).Encode(d)
		}
		fmt.Fprint(w, d.Render())
		return nil

	case "promote":
		if *version == "" {
			return fmt.Errorf("model promote: -version is required")
		}
		st, err := reg.Promote(*family, *version)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "promoted %s/%s to %s\n", *family, *version, st)
		return nil

	case "rollback":
		if *version == "" {
			return fmt.Errorf("model rollback: -version is required")
		}
		if err := reg.Rollback(*family, *version); err != nil {
			return err
		}
		fmt.Fprintf(w, "rolled back %s serving to %s\n", *family, *version)
		return nil

	case "gc":
		removed, err := reg.GCAll(*keep)
		if err != nil {
			return err
		}
		fams := make([]string, 0, len(removed))
		for fam := range removed {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		n := 0
		for _, fam := range fams {
			for _, v := range removed[fam] {
				fmt.Fprintf(w, "removed %s/%s\n", fam, v)
				n++
			}
		}
		fmt.Fprintf(w, "gc removed %d versions (keep %d)\n", n, *keep)
		return nil
	}
	return fmt.Errorf("%s", modelUsage)
}
