package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadRecords(t *testing.T) {
	content := `%% DOMAIN a.com SERVER whois.x.com REGISTRAR GoDaddy.com, LLC
Domain Name: a.com
Registrant Name: John

%% END
%% DOMAIN b.com SERVER whois.y.com REGISTRAR eNom, Inc.
Domain Name: b.com
%% END
`
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	a := recs["a.com"]
	if a.registrar != "GoDaddy.com, LLC" {
		t.Errorf("registrar %q", a.registrar)
	}
	if a.text == "" || a.text[:12] != "Domain Name:" {
		t.Errorf("text %q", a.text)
	}
	b := recs["b.com"]
	if b.registrar != "eNom, Inc." {
		t.Errorf("registrar %q", b.registrar)
	}
}

func TestReadRecordsLegacyHeaderWithoutRegistrar(t *testing.T) {
	content := "%% DOMAIN c.com SERVER whois.z.com\nline\n%% END\n"
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs["c.com"].registrar != "" {
		t.Errorf("registrar %q, want empty", recs["c.com"].registrar)
	}
}
