package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/rdap"
	"repro/internal/store"
	"repro/internal/survey"
	"repro/internal/synth"
	"repro/internal/templates"
)

func TestReadRecords(t *testing.T) {
	content := `%% DOMAIN a.com SERVER whois.x.com REGISTRAR GoDaddy.com, LLC
Domain Name: a.com
Registrant Name: John

%% END
%% DOMAIN b.com SERVER whois.y.com REGISTRAR eNom, Inc.
Domain Name: b.com
%% END
`
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	a := recs["a.com"]
	if a.registrar != "GoDaddy.com, LLC" {
		t.Errorf("registrar %q", a.registrar)
	}
	if a.text == "" || a.text[:12] != "Domain Name:" {
		t.Errorf("text %q", a.text)
	}
	b := recs["b.com"]
	if b.registrar != "eNom, Inc." {
		t.Errorf("registrar %q", b.registrar)
	}
}

func TestReadRecordsLegacyHeaderWithoutRegistrar(t *testing.T) {
	content := "%% DOMAIN c.com SERVER whois.z.com\nline\n%% END\n"
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs["c.com"].registrar != "" {
		t.Errorf("registrar %q, want empty", recs["c.com"].registrar)
	}
}

// faithfulParse builds the parsed record a perfect pipeline would
// extract for a registration, for consistency-mode tests that need a
// store without training a CRF.
func faithfulParse(reg *templates.Registration) *core.ParsedRecord {
	return &core.ParsedRecord{
		DomainName:  strings.ToLower(reg.Domain),
		Registrar:   reg.RegistrarName,
		CreatedDate: reg.Created.Format("02-Jan-2006"),
		UpdatedDate: reg.Updated.Format("02-Jan-2006"),
		ExpiresDate: reg.Expires.Format("02-Jan-2006"),
		Registrant: core.Contact{
			Name:    reg.Registrant.Name,
			Email:   reg.Registrant.Email,
			Country: reg.Registrant.CountryName,
		},
		NameServers: append([]string(nil), reg.NameServers...),
		Statuses:    append([]string(nil), reg.Statuses...),
	}
}

// TestRunConsistency drives the -consistency mode end to end over a
// synthetic store: a faithful RDAP source audits clean, a divergent one
// surfaces conflicts, flags the drifting registrar, and honors -where.
func TestRunConsistency(t *testing.T) {
	const n, seed = 200, 5
	domains := synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02})
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range domains {
		pr := faithfulParse(&d.Reg)
		if err := st.Append(&store.Record{Domain: d.Reg.Domain, Parsed: pr, Facts: survey.FactsFrom(pr, false)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var clean bytes.Buffer
	if err := runConsistency(&clean, dir, "", consistency.SyntheticSource(n, seed), nil); err != nil {
		t.Fatal(err)
	}
	out := clean.String()
	if !strings.Contains(out, fmt.Sprintf("%d records, 0 with conflicts", n)) {
		t.Errorf("clean audit output:\n%s", out)
	}
	if strings.Contains(out, "drift-flagged") {
		t.Errorf("clean audit flagged registrars:\n%s", out)
	}
	for _, want := range []string{"Cross-protocol conflicts by field", "Agreement taxonomy", "Cross-protocol conflicts by registrar"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Divergent RDAP: the busiest registrar's expiry slips a year.
	counts := map[string]int{}
	for _, d := range domains {
		counts[d.Reg.RegistrarName]++
	}
	target, best := "", 0
	for name, c := range counts {
		if c > best {
			target, best = name, c
		}
	}
	base := consistency.SyntheticSource(n, seed)
	divergent := consistency.RDAPSource(func(domain string) (*rdap.Domain, bool) {
		d, ok := base(domain)
		if !ok || d.RegistrarName() != target {
			return d, ok
		}
		mut := *d
		mut.Events = append([]rdap.Event(nil), d.Events...)
		for i := range mut.Events {
			if mut.Events[i].EventAction == "expiration" {
				mut.Events[i].EventDate = mut.Events[i].EventDate.AddDate(1, 0, 0)
			}
		}
		return &mut, true
	})
	var drift bytes.Buffer
	if err := runConsistency(&drift, dir, "", divergent, nil); err != nil {
		t.Fatal(err)
	}
	out = drift.String()
	if !strings.Contains(out, "drift-flagged registrars: "+target) {
		t.Errorf("divergent audit did not flag %s:\n%s", target, out)
	}
	if strings.Contains(out, " 0 with conflicts") {
		t.Errorf("divergent audit reported no conflicts:\n%s", out)
	}

	// A -where cohort excluding the divergent registrar audits clean.
	other := ""
	for name := range counts {
		if name != target {
			other = name
			break
		}
	}
	var cohort bytes.Buffer
	if err := runConsistency(&cohort, dir, "registrar="+other, divergent, nil); err != nil {
		t.Fatal(err)
	}
	if out := cohort.String(); !strings.Contains(out, " 0 with conflicts") {
		t.Errorf("cohort audit of %s found conflicts:\n%s", other, out)
	}

	// Bad predicates and unreadable RDAP sides surface as errors.
	if err := runConsistency(&cohort, dir, "bogus=1", divergent, nil); err == nil {
		t.Error("bad predicate accepted")
	}
}

// syntheticFacts builds a deterministic facts corpus covering every
// aggregate: countries (incl. unknown), 2014 cohorts, privacy services,
// blacklisted domains, brand orgs, and the Figure 5 registrars.
func syntheticFacts(n int) []survey.Facts {
	countries := []string{"United States", "China", "United Kingdom", "Germany", "France", "Japan", ""}
	registrars := []string{"GoDaddy.com, LLC", "eNom, Inc.", "HiChina Zhicheng", "GMO Internet", "Melbourne IT", "Tucows"}
	orgs := []string{"Google Inc.", "HugeDomains.com", "", "Microsoft Corporation", "Sedo GmbH"}
	svcs := []string{"WhoisGuard", "Domains By Proxy", "Whois Privacy Protection"}
	out := make([]survey.Facts, 0, n)
	for i := 0; i < n; i++ {
		f := survey.Facts{
			Domain:      fmt.Sprintf("domain%05d.com", i),
			Registrar:   registrars[i%len(registrars)],
			Country:     countries[i%len(countries)],
			CreatedYear: 1996 + i%20,
			Org:         orgs[i%len(orgs)],
			Blacklisted: i%13 == 0,
		}
		if i%7 == 3 {
			f.Privacy = true
			f.PrivacySvc = svcs[i%len(svcs)]
		}
		if i%19 == 0 {
			f.CreatedYear = 0 // unparseable date
		}
		out = append(out, f)
	}
	return out
}

// TestStoreSurveyMatchesInMemory is the acceptance check for the
// persistence layer: the survey rendered by streaming a store directory
// must be byte-identical to the survey computed directly over the same
// facts in memory.
func TestStoreSurveyMatchesInMemory(t *testing.T) {
	facts := syntheticFacts(3000)

	// In-memory path.
	direct := survey.New(facts)
	var wantBuf bytes.Buffer
	renderSurvey(&wantBuf, direct, true)

	// Store round-trip path: persist, reopen, stream.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SegmentBytes: 16 << 10}) // force multi-segment
	if err != nil {
		t.Fatal(err)
	}
	for i := range facts {
		if err := st.Append(&store.Record{Domain: facts[i].Domain, Facts: facts[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	streamed := survey.New(nil)
	n, err := surveyFromStore(dir, streamed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(facts)) {
		t.Fatalf("streamed %d records, want %d", n, len(facts))
	}
	var gotBuf bytes.Buffer
	renderSurvey(&gotBuf, streamed, true)

	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("store-streamed survey differs from in-memory survey:\n--- in-memory ---\n%s\n--- streamed ---\n%s",
			wantBuf.String(), gotBuf.String())
	}
	if wantBuf.Len() == 0 {
		t.Fatal("rendered survey is empty")
	}
}
