package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/survey"
)

func TestReadRecords(t *testing.T) {
	content := `%% DOMAIN a.com SERVER whois.x.com REGISTRAR GoDaddy.com, LLC
Domain Name: a.com
Registrant Name: John

%% END
%% DOMAIN b.com SERVER whois.y.com REGISTRAR eNom, Inc.
Domain Name: b.com
%% END
`
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	a := recs["a.com"]
	if a.registrar != "GoDaddy.com, LLC" {
		t.Errorf("registrar %q", a.registrar)
	}
	if a.text == "" || a.text[:12] != "Domain Name:" {
		t.Errorf("text %q", a.text)
	}
	b := recs["b.com"]
	if b.registrar != "eNom, Inc." {
		t.Errorf("registrar %q", b.registrar)
	}
}

func TestReadRecordsLegacyHeaderWithoutRegistrar(t *testing.T) {
	content := "%% DOMAIN c.com SERVER whois.z.com\nline\n%% END\n"
	path := filepath.Join(t.TempDir(), "records.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs["c.com"].registrar != "" {
		t.Errorf("registrar %q, want empty", recs["c.com"].registrar)
	}
}

// syntheticFacts builds a deterministic facts corpus covering every
// aggregate: countries (incl. unknown), 2014 cohorts, privacy services,
// blacklisted domains, brand orgs, and the Figure 5 registrars.
func syntheticFacts(n int) []survey.Facts {
	countries := []string{"United States", "China", "United Kingdom", "Germany", "France", "Japan", ""}
	registrars := []string{"GoDaddy.com, LLC", "eNom, Inc.", "HiChina Zhicheng", "GMO Internet", "Melbourne IT", "Tucows"}
	orgs := []string{"Google Inc.", "HugeDomains.com", "", "Microsoft Corporation", "Sedo GmbH"}
	svcs := []string{"WhoisGuard", "Domains By Proxy", "Whois Privacy Protection"}
	out := make([]survey.Facts, 0, n)
	for i := 0; i < n; i++ {
		f := survey.Facts{
			Domain:      fmt.Sprintf("domain%05d.com", i),
			Registrar:   registrars[i%len(registrars)],
			Country:     countries[i%len(countries)],
			CreatedYear: 1996 + i%20,
			Org:         orgs[i%len(orgs)],
			Blacklisted: i%13 == 0,
		}
		if i%7 == 3 {
			f.Privacy = true
			f.PrivacySvc = svcs[i%len(svcs)]
		}
		if i%19 == 0 {
			f.CreatedYear = 0 // unparseable date
		}
		out = append(out, f)
	}
	return out
}

// TestStoreSurveyMatchesInMemory is the acceptance check for the
// persistence layer: the survey rendered by streaming a store directory
// must be byte-identical to the survey computed directly over the same
// facts in memory.
func TestStoreSurveyMatchesInMemory(t *testing.T) {
	facts := syntheticFacts(3000)

	// In-memory path.
	direct := survey.New(facts)
	var wantBuf bytes.Buffer
	renderSurvey(&wantBuf, direct, true)

	// Store round-trip path: persist, reopen, stream.
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SegmentBytes: 16 << 10}) // force multi-segment
	if err != nil {
		t.Fatal(err)
	}
	for i := range facts {
		if err := st.Append(&store.Record{Domain: facts[i].Domain, Facts: facts[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	streamed := survey.New(nil)
	n, err := surveyFromStore(dir, streamed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(facts)) {
		t.Fatalf("streamed %d records, want %d", n, len(facts))
	}
	var gotBuf bytes.Buffer
	renderSurvey(&gotBuf, streamed, true)

	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("store-streamed survey differs from in-memory survey:\n--- in-memory ---\n%s\n--- streamed ---\n%s",
			wantBuf.String(), gotBuf.String())
	}
	if wantBuf.Len() == 0 {
		t.Fatal("rendered survey is empty")
	}
}
