// Command whoissurvey parses a corpus of raw WHOIS records with a trained
// model and prints the §6 survey tables (registrant countries, registrars,
// privacy protection, and per-year trends).
//
// Input is a crawl output file from whoiscrawl (-in records.txt), a freshly
// generated synthetic corpus (-synthetic N), or a persisted record store
// directory written by whoiscrawl -store / a previous -store-out run
// (-store dir). The store path streams: facts fold into the survey
// aggregates one record at a time, so surveying a 102M-record store never
// materializes the corpus in memory.
//
// A -store survey accepts -where to restrict it to a predicate
// (registrar=X, country=Y, year=N, since=N, comma-conjoined). Predicated
// surveys run through internal/query: per-segment zone maps prune
// segments that cannot match and posting indexes seek straight to the
// rows that might, so a selective survey reads a small fraction of the
// corpus instead of all of it — with byte-identical tables to the full
// scan (the query-differential CI gate holds it to that).
//
// Usage:
//
//	whoissurvey -model parser.model -in records.txt [-dbl dbl.txt]
//	whoissurvey -model parser.model -synthetic 30000 [-store-out dir]
//	whoissurvey -store dir
//	whoissurvey -store dir -where 'registrar=GoDaddy.com, LLC,since=2014'
//	whoissurvey -store dir -consistency -rdap-synthetic 30000 -seed 2
//	whoissurvey -store dir -consistency -rdap http://127.0.0.1:8080 -where 'year=2012..2014'
//
// -consistency switches a -store run from surveying to cross-protocol
// auditing: every stored WHOIS parse is compared field-by-field against
// the domain's RDAP answer (live from -rdap URL, or regenerated ground
// truth with -rdap-synthetic N) and the per-field / per-registrar
// disagreement tables are printed. -where restricts the audited cohort
// through the same pruned query engine as predicated surveys.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rdap"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/survey"
	"repro/internal/synth"
	"repro/internal/tiered"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoissurvey: ")
	model := flag.String("model", "parser.model", "trained model file")
	in := flag.String("in", "", "records file from whoiscrawl")
	dblFile := flag.String("dbl", "", "optional blacklist file (one domain per line)")
	synthetic := flag.Int("synthetic", 0, "generate and survey N synthetic records instead of -in")
	seed := flag.Int64("seed", 2, "seed for -synthetic")
	workers := flag.Int("workers", 0, "parse worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "stream the survey from this record store directory (no parsing; -model unused)")
	where := flag.String("where", "", "with -store: survey only records matching this predicate (registrar=X,country=Y,year=N,since=N) via the pruned query engine")
	storeOut := flag.String("store-out", "", "also persist every parsed record into this store directory")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics registry as JSON on this address while the survey runs (empty disables)")
	tieredMode := flag.Bool("tiered", false,
		"parse via the L0 compiled-template fast path with CRF fallback (tiered.* in the final stats dump)")
	consistencyMode := flag.Bool("consistency", false,
		"with -store: audit stored WHOIS parses against RDAP instead of surveying (needs -rdap or -rdap-synthetic)")
	rdapURL := flag.String("rdap", "", "with -consistency: fetch RDAP answers from this base URL")
	rdapSynthetic := flag.Int("rdap-synthetic", 0,
		"with -consistency: answer RDAP from the regenerated synthetic population of this size (pairs with -seed)")
	flag.Parse()

	// One registry for the whole run: CRF decode latency, parse-serving
	// cache behaviour, store appends, and batch progress all land here.
	// -metrics-addr exports it live (useful on long crawls); the final
	// snapshot is dumped to stderr either way.
	reg := obs.NewRegistry()
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		msrv := &http.Server{Handler: reg}
		go func() { _ = msrv.Serve(ml) }()
		defer msrv.Close()
		log.Printf("metrics at http://%s/", ml.Addr())
	}
	defer func() {
		log.Printf("final stats:")
		if err := reg.WriteJSON(os.Stderr); err != nil {
			log.Printf("stats dump failed: %v", err)
		}
		fmt.Fprintln(os.Stderr)
	}()

	s := survey.New(nil)
	showBlacklist := false

	if *consistencyMode && *storeDir == "" {
		log.Fatal("-consistency needs -store (the WHOIS side comes from a persisted record store)")
	}

	if *storeDir != "" {
		if *consistencyMode {
			var src consistency.RDAPSource
			switch {
			case *rdapURL != "" && *rdapSynthetic > 0:
				log.Fatal("-rdap and -rdap-synthetic are mutually exclusive")
			case *rdapURL != "":
				src = consistency.ClientSource(&rdap.Client{BaseURL: strings.TrimRight(*rdapURL, "/")})
			case *rdapSynthetic > 0:
				src = consistency.SyntheticSource(*rdapSynthetic, *seed)
			default:
				log.Fatal("-consistency needs an RDAP side: -rdap URL or -rdap-synthetic N")
			}
			if err := runConsistency(os.Stdout, *storeDir, *where, src, reg); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *where != "" {
			if err := surveyWhere(*storeDir, *where, reg); err != nil {
				log.Fatal(err)
			}
			return
		}
		n, err := surveyFromStore(*storeDir, s, reg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("surveyed %d records streamed from %s", n, *storeDir)
		showBlacklist = true // the store carries the DBL bit per record
		renderSurvey(os.Stdout, s, showBlacklist)
		return
	}
	if *where != "" {
		log.Fatal("-where needs -store (predicates run against a persisted record store)")
	}

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}
	p.Instrument(reg)

	// The shared parse-serving layer is the batch driver: blocking
	// admission gives backpressure against the bounded worker pool, and
	// the cache/coalescing path deduplicates repeated record texts
	// (registrars reuse templates, so real crawls repeat themselves).
	ps := serve.New(p, serve.Options{Workers: *workers, CacheCapacity: 1 << 15, Metrics: reg})
	defer ps.Close()
	// With -tiered, registrars whose format the template tier knows are
	// parsed by L0 at template speed; the CRF only runs on the tail. The
	// tiered.* counters report the head/tail split in the final stats dump.
	var router *tiered.Router
	if *tieredMode {
		trecs := synth.GenerateLabeled(synth.Config{N: 200, Seed: *seed + 7919})
		router = tiered.NewFromRecords(trecs, core.DefaultConfig().Tokenize, tiered.Options{Metrics: reg})
		ps.SetParseFunc(router.Bind(p.Parse))
		log.Printf("tiered: %d registrar templates compiled (L0 fast path on)", router.Status().Templates)
	}
	parseAll := func(texts []string) []*whoisparse.ParsedRecord {
		out, err := ps.ParseBatch(context.Background(), texts)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	var sink *store.Store
	if *storeOut != "" {
		sink, err = store.Open(*storeOut, store.Options{Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
	}
	persist := func(domain, text string, pr *whoisparse.ParsedRecord, f survey.Facts) {
		if sink == nil {
			return
		}
		if err := sink.Append(&store.Record{Domain: domain, Text: text, Parsed: pr, Facts: f}); err != nil {
			log.Fatal(err)
		}
	}

	dbl := make(map[string]bool)
	if *dblFile != "" {
		for _, d := range mustLines(*dblFile) {
			dbl[strings.ToLower(d)] = true
		}
	}

	switch {
	case *synthetic > 0:
		domains := synth.Generate(synth.Config{N: *synthetic, Seed: *seed, BrandFraction: 0.02})
		texts := make([]string, len(domains))
		for i, d := range domains {
			texts[i] = d.Render().Text
		}
		for i, pr := range parseAll(texts) {
			f := survey.FactsFrom(pr, domains[i].Blacklisted)
			if f.Domain == "" {
				f.Domain = domains[i].Reg.Domain
			}
			s.Add(f)
			persist(f.Domain, texts[i], pr, f)
		}
		showBlacklist = true
	case *in != "":
		records, err := readRecords(*in)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		var texts []string
		var registrars []string
		for domain, rec := range records {
			names = append(names, domain)
			texts = append(texts, rec.text)
			registrars = append(registrars, rec.registrar)
		}
		for i, pr := range parseAll(texts) {
			f := survey.FactsFrom(pr, dbl[names[i]])
			if f.Registrar == "" {
				f.Registrar = registrars[i] // thin-record fallback
			}
			if f.Domain == "" {
				f.Domain = names[i]
			}
			s.Add(f)
			persist(names[i], texts[i], pr, f)
		}
		showBlacklist = len(dbl) > 0
	default:
		log.Fatal("need -in records.txt, -synthetic N, or -store dir")
	}

	log.Printf("surveying %d parsed records", s.Len())
	log.Printf("parse serving: %s", ps.Stats())
	if router != nil {
		st := router.Status()
		log.Printf("tiered: %d templates (%d demoted), l0 hits %d, demoted serves %d, l1 fallbacks %d",
			st.Templates, len(st.Demoted), st.L0Hits, st.L0Demoted, st.L1Fallbacks)
	}
	renderSurvey(os.Stdout, s, showBlacklist)
}

// runConsistency is the -consistency mode: audit the store's WHOIS
// parses against src, restricted to the -where cohort, and print the
// survey-style disagreement tables. The sentinel runs over the batch so
// registrars whose windowed disagreement rate crosses the ceiling are
// reported (and consistency.drift.* lands in the final stats dump).
func runConsistency(w io.Writer, dir, where string, src consistency.RDAPSource, reg *obs.Registry) error {
	var p query.Pred
	if where != "" {
		var err error
		if p, err = query.ParsePred(where); err != nil {
			return err
		}
	}
	st, err := store.Open(dir, store.Options{Metrics: reg})
	if err != nil {
		return err
	}
	defer st.Close()
	e := query.New(st, query.Options{Metrics: reg})
	if _, err := e.BuildAll(); err != nil {
		log.Printf("sidecar build: %v (scan will fall back where needed)", err)
	}

	sen := consistency.NewSentinel(consistency.SentinelOptions{})
	if reg != nil {
		sen.Instrument(reg)
	}
	a := consistency.NewAuditor()
	a.Sentinel = sen
	scored, err := a.AuditStore(e, p, src)
	if err != nil {
		return err
	}
	s := a.Summary()
	log.Printf("where %s: audited %d records, skipped %d (no parse or no RDAP answer)", p, scored, s.Skipped)

	fmt.Fprintf(w, "Cross-protocol audit — %d records, %d with conflicts, disagreement rate %.2f%%\n\n",
		s.Records, s.Conflicted, 100*s.Rate)
	fmt.Fprintln(w, s.FieldTable())
	fmt.Fprintln(w, s.VerdictTable())
	fmt.Fprintln(w, s.RegistrarTable(10))
	if len(s.Flagged) > 0 {
		fmt.Fprintf(w, "drift-flagged registrars: %s\n", strings.Join(s.Flagged, ", "))
	}
	return nil
}

// surveyWhere surveys the subset of a store matching a predicate through
// the query engine: zone maps prune segments that cannot match, posting
// indexes seek the rest, and missing or stale sidecars are rebuilt
// in-line (first predicated survey over a fresh store pays the build;
// later ones ride it).
func surveyWhere(dir, where string, reg *obs.Registry) error {
	p, err := query.ParsePred(where)
	if err != nil {
		return err
	}
	st, err := store.Open(dir, store.Options{Metrics: reg})
	if err != nil {
		return err
	}
	defer st.Close()
	e := query.New(st, query.Options{Metrics: reg})
	if built, err := e.BuildAll(); err != nil {
		// Not fatal: the scan rebuilds per segment, or falls back.
		log.Printf("sidecar build: %v (scan will fall back where needed)", err)
	} else if built > 0 {
		log.Printf("built sidecars for %d segments", built)
	}
	sv, stats, err := e.Survey(p)
	if err != nil {
		return err
	}
	log.Printf("where %s: %s", p, stats)
	renderSurvey(os.Stdout, sv, true)
	return nil
}

// surveyFromStore streams every record of a store directory into the
// survey aggregates, holding one record in memory at a time.
func surveyFromStore(dir string, s *survey.Survey, reg *obs.Registry) (uint64, error) {
	st, err := store.Open(dir, store.Options{Metrics: reg})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	it := st.Iter()
	defer it.Close()
	var n uint64
	for it.Next() {
		s.Add(it.Record().Facts)
		n++
	}
	return n, it.Err()
}

// renderSurvey prints the full table/figure set. Output is a pure
// function of the survey aggregates, so a store-streamed survey and an
// in-memory one over the same facts render byte-identically.
func renderSurvey(w io.Writer, s *survey.Survey, showBlacklist bool) {
	t3all, t3new := s.Table3()
	fmt.Fprintln(w, survey.RenderRows("Table 3 (left) — registrant countries, all time", t3all))
	fmt.Fprintln(w, survey.RenderRows("Table 3 (right) — registrant countries, created 2014", t3new))
	t5all, t5new := s.Table5()
	fmt.Fprintln(w, survey.RenderRows("Table 5 (left) — registrars, all time", t5all))
	fmt.Fprintln(w, survey.RenderRows("Table 5 (right) — registrars, created 2014", t5new))
	fmt.Fprintln(w, survey.RenderRows("Table 6 — registrars of privacy-protected domains", s.Table6()))
	fmt.Fprintln(w, survey.RenderRows("Table 7 — privacy protection services", s.Table7()))
	if showBlacklist {
		fmt.Fprintln(w, survey.RenderRows("Table 8 — registrant countries of blacklisted 2014 domains", s.Table8()))
		fmt.Fprintln(w, survey.RenderRows("Table 9 — registrars of blacklisted 2014 domains", s.Table9()))
	}
	fmt.Fprintln(w, survey.RenderHistogram("Figure 4a — domains created per year", s.Figure4a()))
	fmt.Fprintln(w, survey.RenderMixes("Figure 4b — proportions by creation year", s.Figure4b(1995), survey.Figure4bLabels()))
	fmt.Fprintln(w, survey.RenderRegistrarMixes("Figure 5 — top registrant countries for selected registrars",
		s.Figure5([]string{"eNom", "HiChina", "GMO", "Melbourne"})))
}

// crawledRecord is one thick record plus the thin record's registrar.
type crawledRecord struct {
	text      string
	registrar string
}

// readRecords parses whoiscrawl output:
// "%% DOMAIN name SERVER s REGISTRAR r" ... "%% END" sections.
func readRecords(path string) (map[string]crawledRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]crawledRecord)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var domain, registrar string
	var body []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "%% DOMAIN "):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				domain = fields[2]
			}
			registrar = ""
			if i := strings.Index(line, " REGISTRAR "); i >= 0 {
				registrar = strings.TrimSpace(line[i+len(" REGISTRAR "):])
			}
			body = body[:0]
		case line == "%% END":
			if domain != "" {
				out[strings.ToLower(domain)] = crawledRecord{text: strings.Join(body, "\n"), registrar: registrar}
			}
			domain = ""
		default:
			if domain != "" {
				body = append(body, line)
			}
		}
	}
	return out, sc.Err()
}

func mustLines(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			out = append(out, l)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}
