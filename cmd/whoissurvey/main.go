// Command whoissurvey parses a corpus of raw WHOIS records with a trained
// model and prints the §6 survey tables (registrant countries, registrars,
// privacy protection, and per-year trends).
//
// Input is either a crawl output file from whoiscrawl (-in records.txt) or
// a freshly generated synthetic corpus (-synthetic N).
//
// Usage:
//
//	whoissurvey -model parser.model -in records.txt [-dbl dbl.txt]
//	whoissurvey -model parser.model -synthetic 30000
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/survey"
	"repro/internal/synth"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoissurvey: ")
	model := flag.String("model", "parser.model", "trained model file")
	in := flag.String("in", "", "records file from whoiscrawl")
	dblFile := flag.String("dbl", "", "optional blacklist file (one domain per line)")
	synthetic := flag.Int("synthetic", 0, "generate and survey N synthetic records instead of -in")
	seed := flag.Int64("seed", 2, "seed for -synthetic")
	workers := flag.Int("workers", 0, "parse worker pool size (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics registry as JSON on this address while the survey runs (empty disables)")
	flag.Parse()

	p, err := whoisparse.Load(*model)
	if err != nil {
		log.Fatal(err)
	}

	// One registry for the whole run: CRF decode latency, parse-serving
	// cache behaviour, and batch progress all land here. -metrics-addr
	// exports it live (useful on long crawls); the final snapshot is
	// dumped to stderr either way.
	reg := obs.NewRegistry()
	p.Instrument(reg)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		msrv := &http.Server{Handler: reg}
		go func() { _ = msrv.Serve(ml) }()
		defer msrv.Close()
		log.Printf("metrics at http://%s/", ml.Addr())
	}

	// The shared parse-serving layer is the batch driver: blocking
	// admission gives backpressure against the bounded worker pool, and
	// the cache/coalescing path deduplicates repeated record texts
	// (registrars reuse templates, so real crawls repeat themselves).
	ps := serve.New(p, serve.Options{Workers: *workers, CacheCapacity: 1 << 15, Metrics: reg})
	defer ps.Close()
	defer func() {
		log.Printf("final stats:")
		if err := reg.WriteJSON(os.Stderr); err != nil {
			log.Printf("stats dump failed: %v", err)
		}
		fmt.Fprintln(os.Stderr)
	}()
	parseAll := func(texts []string) []*whoisparse.ParsedRecord {
		out, err := ps.ParseBatch(context.Background(), texts)
		if err != nil {
			log.Fatal(err)
		}
		return out
	}

	dbl := make(map[string]bool)
	if *dblFile != "" {
		for _, d := range mustLines(*dblFile) {
			dbl[strings.ToLower(d)] = true
		}
	}

	var facts []survey.Facts
	switch {
	case *synthetic > 0:
		domains := synth.Generate(synth.Config{N: *synthetic, Seed: *seed, BrandFraction: 0.02})
		texts := make([]string, len(domains))
		for i, d := range domains {
			texts[i] = d.Render().Text
		}
		for i, pr := range parseAll(texts) {
			facts = append(facts, survey.FactsFrom(pr, domains[i].Blacklisted))
		}
	case *in != "":
		records, err := readRecords(*in)
		if err != nil {
			log.Fatal(err)
		}
		var names []string
		var texts []string
		var registrars []string
		for domain, rec := range records {
			names = append(names, domain)
			texts = append(texts, rec.text)
			registrars = append(registrars, rec.registrar)
		}
		for i, pr := range parseAll(texts) {
			f := survey.FactsFrom(pr, dbl[names[i]])
			if f.Registrar == "" {
				f.Registrar = registrars[i] // thin-record fallback
			}
			facts = append(facts, f)
		}
	default:
		log.Fatal("need -in records.txt or -synthetic N")
	}

	s := survey.New(facts)
	log.Printf("surveying %d parsed records", s.Len())
	log.Printf("parse serving: %s", ps.Stats())

	t3all, t3new := s.Table3()
	fmt.Println(survey.RenderRows("Table 3 (left) — registrant countries, all time", t3all))
	fmt.Println(survey.RenderRows("Table 3 (right) — registrant countries, created 2014", t3new))
	t5all, t5new := s.Table5()
	fmt.Println(survey.RenderRows("Table 5 (left) — registrars, all time", t5all))
	fmt.Println(survey.RenderRows("Table 5 (right) — registrars, created 2014", t5new))
	fmt.Println(survey.RenderRows("Table 6 — registrars of privacy-protected domains", s.Table6()))
	fmt.Println(survey.RenderRows("Table 7 — privacy protection services", s.Table7()))
	if len(dbl) > 0 || *synthetic > 0 {
		fmt.Println(survey.RenderRows("Table 8 — registrant countries of blacklisted 2014 domains", s.Table8()))
		fmt.Println(survey.RenderRows("Table 9 — registrars of blacklisted 2014 domains", s.Table9()))
	}
	fmt.Println(survey.RenderHistogram("Figure 4a — domains created per year", s.Figure4a()))
	fmt.Println(survey.RenderMixes("Figure 4b — proportions by creation year", s.Figure4b(1995), survey.Figure4bLabels()))
	fmt.Println(survey.RenderRegistrarMixes("Figure 5 — top registrant countries for selected registrars",
		s.Figure5([]string{"eNom", "HiChina", "GMO", "Melbourne"})))
}

// crawledRecord is one thick record plus the thin record's registrar.
type crawledRecord struct {
	text      string
	registrar string
}

// readRecords parses whoiscrawl output:
// "%% DOMAIN name SERVER s REGISTRAR r" ... "%% END" sections.
func readRecords(path string) (map[string]crawledRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]crawledRecord)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var domain, registrar string
	var body []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "%% DOMAIN "):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				domain = fields[2]
			}
			registrar = ""
			if i := strings.Index(line, " REGISTRAR "); i >= 0 {
				registrar = strings.TrimSpace(line[i+len(" REGISTRAR "):])
			}
			body = body[:0]
		case line == "%% END":
			if domain != "" {
				out[strings.ToLower(domain)] = crawledRecord{text: strings.Join(body, "\n"), registrar: registrar}
			}
			domain = ""
		default:
			if domain != "" {
				body = append(body, line)
			}
		}
	}
	return out, sc.Err()
}

func mustLines(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			out = append(out, l)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}
