package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestThinRegistrar(t *testing.T) {
	thin := "   Domain Name: X.COM\n   Registrar: GoDaddy.com, LLC\n   Whois Server: whois.godaddy.com\n"
	if got := thinRegistrar(thin); got != "GoDaddy.com, LLC" {
		t.Errorf("thinRegistrar = %q", got)
	}
	if got := thinRegistrar("no registrar line"); got != "" {
		t.Errorf("thinRegistrar on empty = %q", got)
	}
}

func TestReadLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zone.txt")
	if err := os.WriteFile(path, []byte("a.com\n\n  b.com  \nc.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	lines, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.com", "b.com", "c.com"}
	if len(lines) != len(want) {
		t.Fatalf("got %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: %q", i, lines[i])
		}
	}
	if _, err := readLines(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dir.txt")
	if err := os.WriteFile(path, []byte("whois.a.com 127.0.0.1:43\nwhois.b.com 127.0.0.1:44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir, err := readDirectory(path)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := dir.Resolve("whois.b.com")
	if err != nil || addr != "127.0.0.1:44" {
		t.Errorf("resolve: %q, %v", addr, err)
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("oneword\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDirectory(bad); err == nil {
		t.Error("expected format error")
	}
}
