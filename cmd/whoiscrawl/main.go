// Command whoiscrawl crawls a running whoisd ecosystem: for every domain
// in the zone file it performs the two-step thin→thick lookup with
// rate-limit inference and source rotation, then writes the raw thick
// records to a corpus file.
//
// With -store the crawl also streams every thick record into a persistent
// record store as it completes (checkpointed, crash-safe); -resume skips
// domains already in that store, so an interrupted crawl picks up where
// its last checkpoint left off instead of starting over. With -model the
// records are parsed before persisting, so the store is survey-ready.
//
// Usage:
//
//	whoiscrawl [-dir whois_servers.txt] [-zone zone.txt] [-out records.txt]
//	           [-workers 16] [-sources 127.0.0.2,127.0.0.3,127.0.0.4]
//	           [-store storedir] [-resume] [-model parser.model]
//	           [-model-registry DIR [-model-family default]]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/crawler"
	"repro/internal/modelreg"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/whoisclient"
	"repro/internal/whoisd"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoiscrawl: ")
	dirFile := flag.String("dir", "whois_servers.txt", "directory file written by whoisd")
	zoneFile := flag.String("zone", "zone.txt", "zone file written by whoisd")
	outFile := flag.String("out", "records.txt", "output corpus file (empty disables)")
	workers := flag.Int("workers", 16, "concurrent crawl workers")
	sources := flag.String("sources", "127.0.0.2,127.0.0.3,127.0.0.4", "comma-separated source IPs")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall crawl deadline")
	storeDir := flag.String("store", "", "stream crawled records into this persistent store directory")
	resume := flag.Bool("resume", false, "skip domains already persisted in -store (resume an interrupted crawl)")
	modelFile := flag.String("model", "", "parse records with this trained model before persisting (requires -store)")
	modelRegDir := flag.String("model-registry", "",
		"parse with the model this registry directory marks 'serving' (requires -store; overrides -model)")
	modelFamily := flag.String("model-family", modelreg.DefaultFamily,
		"registry model family to resolve (with -model-registry)")
	verbose := flag.Bool("v", false, "log per-query diagnostics (rate limits, retries)")
	flag.Parse()

	dir, err := readDirectory(*dirFile)
	if err != nil {
		log.Fatal(err)
	}
	domains, err := readLines(*zoneFile)
	if err != nil {
		log.Fatal(err)
	}
	if *resume && *storeDir == "" {
		log.Fatal("-resume requires -store")
	}
	if (*modelFile != "" || *modelRegDir != "") && *storeDir == "" {
		log.Fatal("-model/-model-registry requires -store")
	}

	// The crawl registry accumulates per-host retry/rate-limit/byte
	// counters alongside the aggregate stats; it is dumped after the run.
	reg := obs.NewRegistry()
	logger := obs.NewLogger("whoiscrawl", os.Stderr)
	if !*verbose {
		logger.SetLevel(obs.LevelError)
	}

	// Persistent sink: records land in the store as their domains finish,
	// fsynced on the sink's checkpoint cadence, so a crash loses at most
	// one checkpoint's worth of crawling.
	var sink *store.Sink
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
		if *resume {
			done := make(map[string]bool)
			if err := st.Domains(func(d string) bool {
				done[strings.ToLower(d)] = true
				return true
			}); err != nil {
				log.Fatal(err)
			}
			kept := domains[:0]
			for _, d := range domains {
				if !done[strings.ToLower(d)] {
					kept = append(kept, d)
				}
			}
			log.Printf("resume: skipping %d already-persisted domains, %d remain", len(domains)-len(kept), len(kept))
			domains = kept
		}
		opts := store.SinkOptions{}
		if *modelRegDir != "" {
			// Resolve the registry's serving pointer and stamp records
			// with the canonical "<family>/<semver>+<crc32c>" string —
			// the same identity registry-backed daemons stamp, so the
			// crawled corpus segments cleanly against served traffic.
			mreg, err := modelreg.Open(*modelRegDir, modelreg.Options{Metrics: reg})
			if err != nil {
				log.Fatal(err)
			}
			res, err := mreg.ResolveServing(*modelFamily)
			if err != nil {
				log.Fatal(err)
			}
			p, err := store.LoadModel(res.Path)
			if err != nil {
				log.Fatal(err)
			}
			opts.Parse = p.Parse
			opts.ModelVersion = res.VersionString()
			log.Printf("parsing with registry model %s (%s); records stamped with that identity",
				res.VersionString(), res.Info)
		} else if *modelFile != "" {
			p, err := whoisparse.Load(*modelFile)
			if err != nil {
				log.Fatal(err)
			}
			opts.Parse = p.Parse
			// Stamp every persisted record with the parsing model's
			// WMDL identity, so later drift analysis can segment the
			// corpus by the model that read it. Legacy bare-gob models
			// have no identity to stamp.
			if info, err := store.StatModel(*modelFile); err == nil {
				opts.ModelVersion = info.String()
				log.Printf("parsing with %s (%s); records stamped with that identity",
					*modelFile, info)
			} else {
				log.Printf("parsing with legacy model %s (no WMDL identity: %v)", *modelFile, err)
			}
		}
		sink = store.NewSink(st, opts)
	}

	c, err := crawler.New(crawler.Config{
		Resolver:        dir,
		Sources:         strings.Split(*sources, ","),
		Workers:         *workers,
		InitialInterval: 2 * time.Millisecond,
		MaxInterval:     600 * time.Millisecond,
		Log:             logger,
		Metrics:         reg,
		OnResult: func(r crawler.Result) {
			if sink == nil || r.Thick == "" {
				return
			}
			if err := sink.Put(r.Domain, thinRegistrar(r.Thin), r.Thick); err != nil {
				log.Printf("store put %s: %v", r.Domain, err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	log.Printf("crawling %d domains with %d workers", len(domains), *workers)
	results, stats := c.Crawl(ctx, domains)

	if sink != nil {
		if err := sink.Flush(); err != nil {
			log.Fatal(err)
		}
		log.Printf("persisted %d records to %s", sink.Written(), *storeDir)
	}

	written := 0
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, r := range results {
			if r.Thick == "" {
				continue
			}
			// The thin record's registrar is carried along: legacy thick
			// formats omit it, and the survey needs it (§2.2).
			fmt.Fprintf(w, "%%%% DOMAIN %s SERVER %s REGISTRAR %s\n%s\n%%%% END\n",
				r.Domain, r.WhoisServer, thinRegistrar(r.Thin), r.Thick)
			written++
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	log.Printf("thick records: %d/%d (coverage %.1f%%), failures %.1f%%, rate-limit hits %d, elapsed %v",
		stats.ThickOK, stats.Total, 100*stats.Coverage(), 100*stats.FailureRate(),
		stats.RateLimitHits, stats.Elapsed.Round(time.Millisecond))
	if limited := c.LimitedServers(); len(limited) > 0 {
		for _, s := range limited {
			log.Printf("inferred limit at %s: %.1f q/s", s, c.InferredRate(s))
		}
	}
	if *outFile != "" {
		log.Printf("wrote %d records to %s", written, *outFile)
	}
	log.Printf("final stats:")
	if err := reg.WriteJSON(os.Stderr); err != nil {
		log.Printf("stats dump failed: %v", err)
	}
	fmt.Fprintln(os.Stderr)
}

// thinRegistrar extracts the "Registrar:" value from a thin record.
func thinRegistrar(thin string) string {
	return whoisclient.ParseThin(thin).Registrar
}

func readDirectory(path string) (whoisclient.Resolver, error) {
	lines, err := readLines(path)
	if err != nil {
		return nil, err
	}
	dir := whoisd.NewDirectory()
	for i, line := range lines {
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"name addr\", got %q", path, i+1, line)
		}
		dir.Register(parts[0], parts[1])
	}
	return dir, nil
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}
