// Command whoisd runs the simulated com WHOIS ecosystem on real TCP
// sockets: a thin registry plus one rate-limited RFC 3912 server per
// registrar. It writes a directory file mapping server names to bound
// addresses (the simulation's stand-in for DNS) and a zone file listing
// the registered domains, then serves until interrupted.
//
// Usage:
//
//	whoisd [-n 5000] [-seed 1] [-limit 25] [-window 500ms] [-penalty 1s]
//	       [-dir whois_servers.txt] [-zone zone.txt] [-fail 0.075]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/whoisd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoisd: ")
	n := flag.Int("n", 5000, "number of domains to serve")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	limit := flag.Int("limit", 25, "per-source queries per window at each registrar (0 = unlimited)")
	window := flag.Duration("window", 500*time.Millisecond, "rate-limit window")
	penalty := flag.Duration("penalty", time.Second, "rate-limit penalty period")
	dirFile := flag.String("dir", "whois_servers.txt", "directory file to write (name addr per line)")
	zoneFile := flag.String("zone", "zone.txt", "zone file to write (one domain per line)")
	failFrac := flag.Float64("fail", 0.075, "fraction of domains whose thick record is withheld")
	flag.Parse()

	log.Printf("generating %d domains (seed %d)", *n, *seed)
	domains := synth.Generate(synth.Config{N: *n, Seed: *seed, BrandFraction: 0.02})
	eco := registry.BuildEcosystem(domains, *failFrac)

	cluster, err := whoisd.StartCluster(eco, whoisd.ClusterConfig{
		RegistryLimit:  (*limit) * 16,
		RegistrarLimit: *limit,
		Window:         *window,
		Penalty:        *penalty,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := writeDirectory(*dirFile, cluster); err != nil {
		log.Fatal(err)
	}
	if err := writeZone(*zoneFile, domains); err != nil {
		log.Fatal(err)
	}

	addr, _ := cluster.Directory.Resolve(registry.RegistryServerName)
	log.Printf("registry %s listening on %s", registry.RegistryServerName, addr)
	log.Printf("%d registrar servers up; directory in %s, zone in %s",
		len(eco.Servers), *dirFile, *zoneFile)
	log.Printf("try: printf 'example.com\\r\\n' | nc %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}

func writeDirectory(path string, cluster *whoisd.Cluster) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write directory: %w", err)
	}
	defer f.Close()
	names := cluster.Directory.Names()
	sort.Strings(names)
	for _, name := range names {
		addr, err := cluster.Directory.Resolve(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "%s %s\n", name, addr)
	}
	return f.Close()
}

func writeZone(path string, domains []*synth.Domain) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write zone: %w", err)
	}
	defer f.Close()
	for _, d := range domains {
		fmt.Fprintln(f, d.Reg.Domain)
	}
	return f.Close()
}
