// Command whoisd runs the simulated com WHOIS ecosystem on real TCP
// sockets: a thin registry plus one rate-limited RFC 3912 server per
// registrar. It writes a directory file mapping server names to bound
// addresses (the simulation's stand-in for DNS) and a zone file listing
// the registered domains, then serves until interrupted.
//
// With -parse (default on) every server also answers "--parse <domain>"
// queries: the record is run through the shared parse-serving layer
// (internal/serve: cache + coalescing + bounded workers) and returned as
// a labeled field summary instead of raw text. The parser comes from
// -model, or is trained on a small synthetic corpus at startup.
//
// Usage:
//
//	whoisd [-n 5000] [-seed 1] [-limit 25] [-window 500ms] [-penalty 1s]
//	       [-dir whois_servers.txt] [-zone zone.txt] [-fail 0.075]
//	       [-parse] [-model parser.model] [-parse-workers 0] [-parse-cache 4096]
//	       [-model-registry DIR [-model-family default]]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifecycle"
	"repro/internal/modelreg"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/tiered"
	"repro/internal/whoisd"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("whoisd: ")
	n := flag.Int("n", 5000, "number of domains to serve")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	limit := flag.Int("limit", 25, "per-source queries per window at each registrar (0 = unlimited)")
	window := flag.Duration("window", 500*time.Millisecond, "rate-limit window")
	penalty := flag.Duration("penalty", time.Second, "rate-limit penalty period")
	dirFile := flag.String("dir", "whois_servers.txt", "directory file to write (name addr per line)")
	zoneFile := flag.String("zone", "zone.txt", "zone file to write (one domain per line)")
	failFrac := flag.Float64("fail", 0.075, "fraction of domains whose thick record is withheld")
	parseMode := flag.Bool("parse", true, "answer '--parse <domain>' queries with the parsed-field summary")
	model := flag.String("model", "", "trained parser model for -parse (empty = train a small one at startup)")
	parseWorkers := flag.Int("parse-workers", 0, "parse worker pool size (0 = GOMAXPROCS)")
	parseCache := flag.Int("parse-cache", 4096, "parsed-record cache capacity (negative disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve the metrics registry as JSON on this address (empty disables)")
	lifecycleMode := flag.Bool("lifecycle", false,
		"manage -model through internal/lifecycle: hot-reload on SIGHUP (requires a WMDL -model)")
	modelRegDir := flag.String("model-registry", "",
		"serve the model this registry directory marks 'serving' (implies -lifecycle; SIGHUP re-resolves the pointer)")
	modelFamily := flag.String("model-family", modelreg.DefaultFamily,
		"registry model family to serve (with -model-registry)")
	tieredMode := flag.Bool("tiered", false,
		"answer '--parse' via the L0 compiled-template fast path with CRF fallback (tiered.* in the stats dump)")
	flag.Parse()

	// One registry across the cluster: per-server query counters, the
	// parse-serving layer, and the CRF decoders all report here. It is
	// exported live on -metrics-addr and dumped at shutdown either way.
	reg := obs.NewRegistry()
	logger := obs.NewLogger("whoisd", os.Stderr)

	var modelRegistry *modelreg.Registry
	if *modelRegDir != "" {
		var err error
		modelRegistry, err = modelreg.Open(*modelRegDir, modelreg.Options{
			Metrics: reg, Log: obs.NewLogger("modelreg", os.Stderr),
		})
		if err != nil {
			log.Fatal(err)
		}
		*lifecycleMode = true
	}

	log.Printf("generating %d domains (seed %d)", *n, *seed)
	domains := synth.Generate(synth.Config{N: *n, Seed: *seed, BrandFraction: 0.02})
	eco := registry.BuildEcosystem(domains, *failFrac)

	var ps *serve.Server
	var mgr *lifecycle.Manager
	var router *tiered.Router
	if *parseMode {
		// With -tiered, in-template registrars are answered by compiled
		// templates (L0); everything else — unknown registrar, mismatch,
		// low confidence, demoted — falls back to the CRF (L1). Per-tier
		// counters land in the shared registry and the shutdown dump.
		if *tieredMode {
			trecs := synth.GenerateLabeled(synth.Config{N: 200, Seed: *seed + 7919})
			router = tiered.NewFromRecords(trecs, core.DefaultConfig().Tokenize,
				tiered.Options{Metrics: reg})
			log.Printf("tiered: %d registrar templates compiled (L0 fast path on)",
				router.Status().Templates)
		}
		var p *core.Parser
		if modelRegistry != nil {
			var err error
			mgr, err = lifecycle.NewFromRegistry(modelRegistry, *modelFamily,
				lifecycle.Options{Metrics: reg, Log: logger, Tiered: router})
			if err != nil {
				log.Fatal(err)
			}
			snap := mgr.Current()
			log.Printf("modelreg: serving %s (%s) from %s; SIGHUP re-resolves the serving pointer",
				snap.Version, snap.Info, *modelRegDir)
			p = snap.Parser
		} else if *lifecycleMode {
			if *model == "" {
				log.Fatal("-lifecycle requires -model (a WMDL artifact to reload from)")
			}
			var err error
			mgr, err = lifecycle.NewFromFile(*model, lifecycle.Options{Metrics: reg, Log: logger, Tiered: router})
			if err != nil {
				log.Fatal(err)
			}
			snap := mgr.Current()
			log.Printf("lifecycle: serving model %s (%s); SIGHUP hot-reloads %s",
				snap.Version, snap.Info, *model)
			p = snap.Parser
		} else {
			var err error
			p, err = loadOrTrainParser(*model, *seed)
			if err != nil {
				log.Fatal(err)
			}
			p.Instrument(reg)
		}
		ps = serve.New(p, serve.Options{Workers: *parseWorkers, CacheCapacity: *parseCache, Metrics: reg})
		defer func() {
			ps.Close() // drain in-flight parses before exit
			log.Printf("parse serving: %s", ps.Stats())
		}()
		if mgr != nil {
			mgr.Attach(ps)
		} else if router != nil {
			ps.SetParseFunc(router.Bind(p.Parse))
		}
		log.Printf("parse mode on: try '--parse <domain>' against any server")
	}

	cluster, err := whoisd.StartCluster(eco, whoisd.ClusterConfig{
		RegistryLimit:  (*limit) * 16,
		RegistrarLimit: *limit,
		Window:         *window,
		Penalty:        *penalty,
		Parse:          ps,
		Log:            logger,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := writeDirectory(*dirFile, cluster); err != nil {
		log.Fatal(err)
	}
	if err := writeZone(*zoneFile, domains); err != nil {
		log.Fatal(err)
	}

	addr, _ := cluster.Directory.Resolve(registry.RegistryServerName)
	log.Printf("registry %s listening on %s", registry.RegistryServerName, addr)
	log.Printf("%d registrar servers up; directory in %s, zone in %s",
		len(eco.Servers), *dirFile, *zoneFile)
	log.Printf("try: printf 'example.com\\r\\n' | nc %s", addr)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		msrv := &http.Server{Handler: reg}
		go func() { _ = msrv.Serve(ml) }()
		defer msrv.Close()
		log.Printf("metrics at http://%s/", ml.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if mgr != nil {
		// SIGHUP re-resolves the registry's serving pointer (registry
		// mode) or re-reads -model, and swaps the result into every
		// registrar server at once (they share the serving layer); a bad
		// artifact is rejected with the old model still live.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				var snap *lifecycle.Snapshot
				var err error
				if modelRegistry != nil {
					var changed bool
					snap, changed, err = mgr.ReloadServing()
					if err == nil && !changed {
						log.Printf("SIGHUP: registry pointer unchanged, still serving %s", snap.Version)
						continue
					}
				} else {
					snap, err = mgr.ReloadFromFile(*model)
				}
				if err != nil {
					log.Printf("SIGHUP reload failed (still serving %s): %v",
						mgr.Current().Version, err)
					continue
				}
				log.Printf("SIGHUP reload: now serving %s (%s)", snap.Version, snap.Info)
			}
		}()
	}
	<-sig
	log.Printf("shutting down")
	if router != nil {
		st := router.Status()
		log.Printf("tiered: %d templates (%d demoted), l0 hits %d, demoted serves %d, l1 fallbacks %d",
			st.Templates, len(st.Demoted), st.L0Hits, st.L0Demoted, st.L1Fallbacks)
	}
	dumpStats(reg)
}

// dumpStats writes the final registry snapshot to stderr, one metric per
// line — the end-of-run accounting for batch use and smoke tests.
func dumpStats(reg *obs.Registry) {
	log.Printf("final stats:")
	if err := reg.WriteJSON(os.Stderr); err != nil {
		log.Printf("stats dump failed: %v", err)
	}
	fmt.Fprintln(os.Stderr)
}

func writeDirectory(path string, cluster *whoisd.Cluster) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write directory: %w", err)
	}
	defer f.Close()
	names := cluster.Directory.Names()
	sort.Strings(names)
	for _, name := range names {
		addr, err := cluster.Directory.Resolve(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "%s %s\n", name, addr)
	}
	return f.Close()
}

// loadOrTrainParser loads a saved model, or — so parse mode works out of
// the box — trains a small parser on a labeled synthetic corpus drawn
// from a seed distinct from the served ecosystem's.
func loadOrTrainParser(model string, seed int64) (*core.Parser, error) {
	if model != "" {
		log.Printf("loading parser from %s", model)
		return whoisparse.Load(model)
	}
	log.Printf("no -model given; training a small parser (use -model for a full one)")
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: seed + 7919})
	p, _, err := experiments.TrainParser(recs, experiments.Quick())
	return p, err
}

func writeZone(path string, domains []*synth.Domain) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write zone: %w", err)
	}
	defer f.Close()
	for _, d := range domains {
		fmt.Fprintln(f, d.Reg.Domain)
	}
	return f.Close()
}
