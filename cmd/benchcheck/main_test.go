package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeHot-4        	     200	       900 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-4        	     200	       850 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-4        	     200	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkPosterior-4       	     200	     27000 ns/op
BenchmarkParseAllWorkers/4-4	      10	  27000000 ns/op
PASS
ok  	repro/internal/serve	1.234s
`

func TestParseBenchOutputKeepsMinAndStripsProcSuffix(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkServeHot"] != 850 {
		t.Errorf("ServeHot = %v, want min sample 850", got["BenchmarkServeHot"])
	}
	if got["BenchmarkPosterior"] != 27000 {
		t.Errorf("Posterior = %v", got["BenchmarkPosterior"])
	}
	// Sub-benchmark path survives; only the -GOMAXPROCS suffix is cut.
	if got["BenchmarkParseAllWorkers/4"] != 27000000 {
		t.Errorf("sub-benchmark: %v", got)
	}
}

func TestMergeBaselinesBothShapes(t *testing.T) {
	dst := make(map[string]float64)
	flat := `{"benchmarks": {"BenchmarkServeHot": {"ns_op": 856, "allocs_op": 0}}}`
	nested := `{"benchmarks": {
		"BenchmarkPosterior": {"before": null, "after": {"ns_op": 26106}},
		"BenchmarkDecodeRecord": {"before": {"ns_op": 13775}, "after": {"ns_op": 2231}}}}`
	if err := mergeBaselines(dst, []byte(flat)); err != nil {
		t.Fatal(err)
	}
	if err := mergeBaselines(dst, []byte(nested)); err != nil {
		t.Fatal(err)
	}
	if dst["BenchmarkServeHot"] != 856 {
		t.Errorf("flat shape: %v", dst)
	}
	if dst["BenchmarkPosterior"] != 26106 {
		t.Errorf("after-only shape: %v", dst)
	}
	if dst["BenchmarkDecodeRecord"] != 2231 {
		t.Errorf("before/after shape must prefer after: %v", dst)
	}
}

func TestMergeBaselinesRejectsMissingBenchmarks(t *testing.T) {
	if err := mergeBaselines(map[string]float64{}, []byte(`{"description": "x"}`)); err == nil {
		t.Error("want error for document without benchmarks object")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	measured := map[string]float64{
		"BenchmarkServeHot":  900,   // +5% of 856: ok at 30%
		"BenchmarkPosterior": 40000, // +53% of 26106: regression
		"BenchmarkNew":       1,     // no baseline: skipped
	}
	baselines := map[string]float64{
		"BenchmarkServeHot":  856,
		"BenchmarkPosterior": 26106,
		"BenchmarkUnrun":     123, // not measured: skipped
	}
	lines, regressions := compare(measured, baselines, 0.30)
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (skip unmatched both ways): %v", len(lines), lines)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1", regressions)
	}
	// Sorted by name: Posterior first, ServeHot second.
	if !strings.Contains(lines[0], "REGRESSION") || !strings.Contains(lines[0], "BenchmarkPosterior") {
		t.Errorf("posterior line: %q", lines[0])
	}
	if strings.Contains(lines[1], "REGRESSION") {
		t.Errorf("servehot line: %q", lines[1])
	}

	// A faster run is never a regression.
	_, n := compare(map[string]float64{"BenchmarkServeHot": 400}, baselines, 0.30)
	if n != 0 {
		t.Errorf("speedup counted as regression")
	}
}
