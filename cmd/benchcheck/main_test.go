package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/serve
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkServeHot-4        	     200	       900 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-4        	     200	       850 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeHot-4        	     200	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkPosterior-4       	     200	     27000 ns/op
BenchmarkParseAllWorkers/4-4	      10	  27000000 ns/op
BenchmarkServeCoalesced-4  	      50	    990000 ns/op	         3.50 coalesced/parse	         8.00 requests/op	  256892 B/op	    5719 allocs/op
PASS
ok  	repro/internal/serve	1.234s
`

func TestParseBenchOutputKeepsMinAndStripsProcSuffix(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkServeHot"]["ns_op"] != 850 {
		t.Errorf("ServeHot ns_op = %v, want min sample 850", got["BenchmarkServeHot"])
	}
	if got["BenchmarkServeHot"]["allocs_op"] != 0 || got["BenchmarkServeHot"]["b_op"] != 0 {
		t.Errorf("ServeHot allocs/bytes: %v", got["BenchmarkServeHot"])
	}
	if got["BenchmarkPosterior"]["ns_op"] != 27000 {
		t.Errorf("Posterior = %v", got["BenchmarkPosterior"])
	}
	// Sub-benchmark path survives; only the -GOMAXPROCS suffix is cut.
	if got["BenchmarkParseAllWorkers/4"]["ns_op"] != 27000000 {
		t.Errorf("sub-benchmark: %v", got)
	}
	// Custom ReportMetric units canonicalize to the JSON field spelling.
	co := got["BenchmarkServeCoalesced"]
	if co["coalesced_per_parse"] != 3.5 || co["requests_op"] != 8 {
		t.Errorf("custom metrics: %v", co)
	}
}

func TestCanonicalMetric(t *testing.T) {
	cases := map[string]string{
		"ns/op":           "ns_op",
		"B/op":            "b_op",
		"allocs/op":       "allocs_op",
		"requests/op":     "requests_op",
		"coalesced/parse": "coalesced_per_parse",
		"deft-coverage":   "deft_coverage",
	}
	for unit, want := range cases {
		if got := canonicalMetric(unit); got != want {
			t.Errorf("canonicalMetric(%q) = %q, want %q", unit, got, want)
		}
	}
}

func TestMergeBaselinesBothShapes(t *testing.T) {
	dst := make(map[string]*baseline)
	flat := `{"benchmarks": {"BenchmarkServeHot": {"ns_op": 856, "allocs_op": 0, "note": "x"}}}`
	nested := `{"benchmarks": {
		"BenchmarkPosterior": {"before": null, "after": {"ns_op": 26106}},
		"BenchmarkDecodeRecord": {"before": {"ns_op": 13775}, "after": {"ns_op": 2231, "allocs_op": 1}}}}`
	if err := mergeBaselines(dst, []byte(flat)); err != nil {
		t.Fatal(err)
	}
	if err := mergeBaselines(dst, []byte(nested)); err != nil {
		t.Fatal(err)
	}
	if dst["BenchmarkServeHot"].metrics["ns_op"] != 856 {
		t.Errorf("flat shape: %v", dst["BenchmarkServeHot"].metrics)
	}
	if _, ok := dst["BenchmarkServeHot"].metrics["note"]; ok {
		t.Error("note treated as a metric")
	}
	if dst["BenchmarkPosterior"].metrics["ns_op"] != 26106 {
		t.Errorf("after-only shape: %v", dst["BenchmarkPosterior"].metrics)
	}
	m := dst["BenchmarkDecodeRecord"].metrics
	if m["ns_op"] != 2231 || m["allocs_op"] != 1 {
		t.Errorf("before/after shape must prefer after: %v", m)
	}
}

func TestMergeBaselinesEnvDependentAndCeiling(t *testing.T) {
	dst := make(map[string]*baseline)
	doc := `{"benchmarks": {
		"BenchmarkServeCoalesced": {
			"ns_op": 974646, "coalesced_per_parse": 0,
			"environment_dependent": ["coalesced_per_parse"]},
		"BenchmarkTieredHead": {
			"ns_op": 12000, "allocs_op": 30,
			"ceiling": {"ns_op": 20000, "allocs_op": 40}}}}`
	if err := mergeBaselines(dst, []byte(doc)); err != nil {
		t.Fatal(err)
	}
	co := dst["BenchmarkServeCoalesced"]
	if !co.envDependent["coalesced_per_parse"] || co.envDependent["ns_op"] {
		t.Errorf("environment_dependent: %v", co.envDependent)
	}
	if _, ok := co.metrics["environment_dependent"]; ok {
		t.Error("environment_dependent list leaked into metrics")
	}
	th := dst["BenchmarkTieredHead"]
	if th.ceilings["ns_op"] != 20000 || th.ceilings["allocs_op"] != 40 {
		t.Errorf("ceilings: %v", th.ceilings)
	}
}

func TestMergeBaselinesRejectsMissingBenchmarks(t *testing.T) {
	if err := mergeBaselines(map[string]*baseline{}, []byte(`{"description": "x"}`)); err == nil {
		t.Error("want error for document without benchmarks object")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	measured := map[string]map[string]float64{
		"BenchmarkServeHot":  {"ns_op": 900},   // +5% of 856: ok at 30%
		"BenchmarkPosterior": {"ns_op": 40000}, // +53% of 26106: regression
		"BenchmarkNew":       {"ns_op": 1},     // no baseline: skipped
	}
	baselines := map[string]*baseline{
		"BenchmarkServeHot":  {metrics: map[string]float64{"ns_op": 856}},
		"BenchmarkPosterior": {metrics: map[string]float64{"ns_op": 26106}},
		"BenchmarkUnrun":     {metrics: map[string]float64{"ns_op": 123}}, // not measured: skipped
	}
	lines, checked, regressions := compare(measured, baselines, 0.30)
	if len(lines) != 2 || checked != 2 {
		t.Fatalf("lines = %d checked = %d, want 2 (skip unmatched both ways): %v", len(lines), checked, lines)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1", regressions)
	}
	// Sorted by name: Posterior first, ServeHot second.
	if !strings.Contains(lines[0], "REGRESSION") || !strings.Contains(lines[0], "BenchmarkPosterior") {
		t.Errorf("posterior line: %q", lines[0])
	}
	if strings.Contains(lines[1], "REGRESSION") {
		t.Errorf("servehot line: %q", lines[1])
	}

	// A faster run is never a regression.
	_, _, n := compare(map[string]map[string]float64{"BenchmarkServeHot": {"ns_op": 400}}, baselines, 0.30)
	if n != 0 {
		t.Errorf("speedup counted as regression")
	}
}

func TestCompareChecksEveryMetric(t *testing.T) {
	measured := map[string]map[string]float64{
		"BenchmarkX": {"ns_op": 1000, "allocs_op": 99, "b_op": 500},
	}
	baselines := map[string]*baseline{
		"BenchmarkX": {metrics: map[string]float64{"ns_op": 1000, "allocs_op": 10}},
	}
	lines, checked, regressions := compare(measured, baselines, 0.30)
	// b_op has no baseline → skipped; allocs_op regressed 10 → 99.
	if checked != 2 {
		t.Fatalf("checked = %d, want 2: %v", checked, lines)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1 (allocs_op): %v", regressions, lines)
	}
}

func TestCompareSkipsEnvironmentDependent(t *testing.T) {
	measured := map[string]map[string]float64{
		// On a multi-core runner coalescing triggers, so the measured
		// value dwarfs the 1-CPU baseline of 0 — still not a regression.
		"BenchmarkServeCoalesced": {"ns_op": 900000, "coalesced_per_parse": 7},
	}
	baselines := map[string]*baseline{
		"BenchmarkServeCoalesced": {
			metrics:      map[string]float64{"ns_op": 974646, "coalesced_per_parse": 0},
			envDependent: map[string]bool{"coalesced_per_parse": true},
		},
	}
	lines, checked, regressions := compare(measured, baselines, 0.30)
	if regressions != 0 {
		t.Fatalf("environment-dependent metric gated: %v", lines)
	}
	if checked != 1 {
		t.Errorf("checked = %d, want 1 (ns_op only)", checked)
	}
	var skipped bool
	for _, l := range lines {
		if strings.Contains(l, "coalesced_per_parse") && strings.Contains(l, "skipped") {
			skipped = true
		}
	}
	if !skipped {
		t.Errorf("no skip line for the environment-dependent metric: %v", lines)
	}
}

func TestMergeBaselinesMinRatioOver(t *testing.T) {
	dst := make(map[string]*baseline)
	doc := `{"benchmarks": {
		"BenchmarkQueryPruned": {
			"ns_op": 500000,
			"min_ratio_over": {"BenchmarkQueryFullScan": {"ns_op": 5}}},
		"BenchmarkQueryFullScan": {"ns_op": 5000000}}}`
	if err := mergeBaselines(dst, []byte(doc)); err != nil {
		t.Fatal(err)
	}
	pr := dst["BenchmarkQueryPruned"]
	if pr.ratioOver["BenchmarkQueryFullScan"]["ns_op"] != 5 {
		t.Errorf("ratioOver: %v", pr.ratioOver)
	}
	if _, ok := pr.metrics["min_ratio_over"]; ok {
		t.Error("min_ratio_over leaked into metrics")
	}
}

func TestCompareEnforcesRatioFloors(t *testing.T) {
	baselines := map[string]*baseline{
		"BenchmarkQueryPruned": {
			metrics:   map[string]float64{"ns_op": 500000},
			ratioOver: map[string]map[string]float64{"BenchmarkQueryFullScan": {"ns_op": 5}},
		},
		"BenchmarkQueryFullScan": {metrics: map[string]float64{"ns_op": 5000000}},
	}
	// 10x over the reference: clean.
	lines, checked, n := compare(map[string]map[string]float64{
		"BenchmarkQueryPruned":   {"ns_op": 500000},
		"BenchmarkQueryFullScan": {"ns_op": 5000000},
	}, baselines, 0.30)
	if n != 0 {
		t.Fatalf("clean 10x run flagged: %v", lines)
	}
	if checked != 3 { // two ns_op drift checks + one ratio check
		t.Fatalf("checked = %d, want 3: %v", checked, lines)
	}
	// Only 2x over the reference: the ratio floor fires even though the
	// drift gate (vs the pruned benchmark's own baseline) stays quiet.
	lines, _, n = compare(map[string]map[string]float64{
		"BenchmarkQueryPruned":   {"ns_op": 500000},
		"BenchmarkQueryFullScan": {"ns_op": 1000000},
	}, baselines, 10.0)
	if n != 1 {
		t.Fatalf("2x run under a 5x floor, want 1 regression: %v", lines)
	}
	var ratioLine bool
	for _, l := range lines {
		if strings.Contains(l, "vs BenchmarkQueryFullScan") && strings.Contains(l, "REGRESSION") {
			ratioLine = true
		}
	}
	if !ratioLine {
		t.Errorf("no failing ratio line: %v", lines)
	}
	// Reference benchmark missing from the run: unverifiable = failure.
	_, _, n = compare(map[string]map[string]float64{
		"BenchmarkQueryPruned": {"ns_op": 500000},
	}, baselines, 0.30)
	if n != 1 {
		t.Errorf("missing reference not flagged: %d regressions", n)
	}
}

func TestCompareEnforcesCeilings(t *testing.T) {
	baselines := map[string]*baseline{
		"BenchmarkTieredHead": {
			metrics:  map[string]float64{"ns_op": 12000, "allocs_op": 30},
			ceilings: map[string]float64{"ns_op": 20000, "allocs_op": 40},
		},
	}
	// Within tolerance of baseline AND under the ceilings: clean.
	_, _, n := compare(map[string]map[string]float64{
		"BenchmarkTieredHead": {"ns_op": 13000, "allocs_op": 32},
	}, baselines, 0.30)
	if n != 0 {
		t.Fatalf("clean run flagged: %d regressions", n)
	}
	// 19µs is within the 20µs ceiling but +58% over baseline: the drift
	// gate still fires even where the absolute bar would not.
	_, _, n = compare(map[string]map[string]float64{
		"BenchmarkTieredHead": {"ns_op": 19000, "allocs_op": 30},
	}, baselines, 0.30)
	if n != 1 {
		t.Fatalf("tolerance gate did not fire under the ceiling: %d", n)
	}
	// 45 allocs busts the 40 ceiling (and the 30-baseline tolerance).
	lines, _, n := compare(map[string]map[string]float64{
		"BenchmarkTieredHead": {"ns_op": 12000, "allocs_op": 45},
	}, baselines, 0.30)
	if n != 2 {
		t.Fatalf("ceiling + tolerance both busted, want 2 regressions, got %d: %v", n, lines)
	}
}
