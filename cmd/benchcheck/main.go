// Command benchcheck guards against performance regressions: it reads
// `go test -bench` output on stdin, compares every measured benchmark
// against the committed baselines in BENCH_*.json, and exits nonzero on
// any regression.
//
// Every numeric metric a benchmark reports is checked, not just ns/op:
// allocs/op, B/op, and custom b.ReportMetric figures all compare against
// the matching baseline field (unit names canonicalize to the JSON
// spelling: "ns/op" → ns_op, "B/op" → b_op, "coalesced/parse" →
// coalesced_per_parse). A baseline entry can also carry
//
//   - "environment_dependent": ["coalesced_per_parse", ...] — metrics
//     whose value is a property of the runner, not the code (coalescing
//     never triggers on a 1-CPU machine; parallel speedup needs cores).
//     These are reported but never gate.
//   - "ceiling": {"ns_op": 20000, "allocs_op": 40} — absolute bars with
//     no tolerance, for acceptance criteria ("the fast path stays under
//     20µs and 40 allocs") rather than drift detection.
//   - "min_ratio_over": {"BenchmarkQueryFullScan": {"ns_op": 5}} — a
//     cross-benchmark floor: this benchmark's ns_op must be at least 5x
//     smaller than BenchmarkQueryFullScan's, both measured in the same
//     run. Machine-independent, so it gates acceptance criteria of the
//     form "the optimized path beats the baseline path by Nx". Both
//     benchmarks must appear in the input or the check fails.
//
// Run `-count 3` (or more) benchmarks and benchcheck keeps the minimum
// per metric — the least-noisy estimate of the true cost on a shared
// runner. The tolerance defaults to 30% and can be widened for noisy CI
// machines via BENCH_TOL (a fraction, e.g. "0.5").
//
// Usage:
//
//	go test -run '^$' -bench 'Posterior|ServeHot' -benchtime 200x -count 3 \
//	    ./internal/serve ./internal/crf . | benchcheck BENCH_serve.json BENCH_inference.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tol := 0.30
	if s := os.Getenv("BENCH_TOL"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: bad BENCH_TOL %q\n", s)
			os.Exit(2)
		}
		tol = v
	}

	baselineFiles := os.Args[1:]
	if len(baselineFiles) == 0 {
		baselineFiles = []string{"BENCH_serve.json", "BENCH_inference.json", "BENCH_tiered.json"}
	}
	baselines := make(map[string]*baseline)
	for _, path := range baselineFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		if err := mergeBaselines(baselines, data); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
	}

	measured, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	results, checked, regressions := compare(measured, baselines, tol)
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no measured benchmark matched a baseline — nothing was checked")
		os.Exit(2)
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) beyond %.0f%% tolerance\n", regressions, tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d metric(s) within %.0f%% of baseline\n", checked, tol*100)
}

// baseline is one benchmark's committed expectations.
type baseline struct {
	// metrics are the recorded values, keyed by canonical metric name
	// (ns_op, allocs_op, b_op, coalesced_per_parse, ...).
	metrics map[string]float64
	// envDependent marks metrics that describe the runner rather than
	// the code: reported, never gating.
	envDependent map[string]bool
	// ceilings are absolute no-tolerance bars per metric.
	ceilings map[string]float64
	// ratioOver are cross-benchmark floors: for each referenced
	// benchmark, per metric, the minimum factor by which this benchmark
	// must beat it (reference/this >= floor) in the same run.
	ratioOver map[string]map[string]float64
}

// metadata fields of a baseline entry that are not comparable metrics.
var nonMetricFields = map[string]bool{
	"note": true, "before": true, "after": true,
	"environment_dependent": true, "ceiling": true,
	"min_ratio_over": true,
	"speedup":        true, "speedup_vs_cold": true,
}

// mergeBaselines pulls per-metric figures out of a BENCH_*.json
// document. Two entry shapes exist in-tree: flat ({name: {"ns_op": N,
// "allocs_op": M}}) and before/after ({name: {"after": {"ns_op": N}}});
// "after" (the current implementation) wins when both are present.
// "environment_dependent" and "ceiling" are read from the entry's top
// level in either shape.
func mergeBaselines(dst map[string]*baseline, data []byte) error {
	var doc struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Benchmarks == nil {
		return fmt.Errorf("no \"benchmarks\" object")
	}
	for name, raw := range doc.Benchmarks {
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		b := &baseline{
			metrics:      make(map[string]float64),
			envDependent: make(map[string]bool),
			ceilings:     make(map[string]float64),
		}
		src := fields
		if after, ok := fields["after"]; ok && string(after) != "null" {
			var nested map[string]json.RawMessage
			if err := json.Unmarshal(after, &nested); err != nil {
				return fmt.Errorf("%s: after: %w", name, err)
			}
			src = nested
		}
		for key, rv := range src {
			if nonMetricFields[key] {
				continue
			}
			var v float64
			if err := json.Unmarshal(rv, &v); err != nil {
				continue // non-numeric annotation, not a metric
			}
			b.metrics[key] = v
		}
		if ed, ok := fields["environment_dependent"]; ok {
			var names []string
			if err := json.Unmarshal(ed, &names); err != nil {
				return fmt.Errorf("%s: environment_dependent: %w", name, err)
			}
			for _, m := range names {
				b.envDependent[m] = true
			}
		}
		if c, ok := fields["ceiling"]; ok {
			if err := json.Unmarshal(c, &b.ceilings); err != nil {
				return fmt.Errorf("%s: ceiling: %w", name, err)
			}
		}
		if ro, ok := fields["min_ratio_over"]; ok {
			if err := json.Unmarshal(ro, &b.ratioOver); err != nil {
				return fmt.Errorf("%s: min_ratio_over: %w", name, err)
			}
		}
		dst[name] = b
	}
	return nil
}

// canonicalMetric maps a `go test -bench` unit to its BENCH_*.json field
// name: the "/op" suffix becomes "_op" ("ns/op" → ns_op, "B/op" → b_op),
// any other "/" becomes "_per_" ("coalesced/parse" → coalesced_per_parse),
// dashes become underscores, all lowercase.
func canonicalMetric(unit string) string {
	unit = strings.ToLower(unit)
	if s, ok := strings.CutSuffix(unit, "/op"); ok {
		unit = s + "_op"
	}
	unit = strings.ReplaceAll(unit, "/", "_per_")
	return strings.ReplaceAll(unit, "-", "_")
}

// parseBenchOutput extracts per-benchmark metrics from `go test -bench`
// output. Benchmark names keep their sub-benchmark path but drop the
// trailing -GOMAXPROCS suffix; with -count N the minimum of the N
// samples is kept per metric.
func parseBenchOutput(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8  200  856 ns/op  37 B/op  7 allocs/op  0.5 custom/unit"
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// Everything after the iteration count is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a metric tail (e.g. a test log line)
			}
			metric := canonicalMetric(fields[i+1])
			m := out[name]
			if m == nil {
				m = make(map[string]float64)
				out[name] = m
			}
			if old, ok := m[metric]; !ok || v < old {
				m[metric] = v
			}
		}
	}
	return out, sc.Err()
}

// compare lines up measured minima against baselines, metric by metric.
// Benchmarks or metrics with no baseline are skipped (new measurements
// are not regressions); baselines with no measurement are skipped too
// (the caller picks the -bench set). Environment-dependent metrics are
// reported but never gate; ceiling metrics gate absolutely.
func compare(measured map[string]map[string]float64, baselines map[string]*baseline, tol float64) (lines []string, checked, regressions int) {
	names := make([]string, 0, len(measured))
	for name := range measured {
		if _, ok := baselines[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		base := baselines[name]
		metrics := make([]string, 0, len(measured[name]))
		for metric := range measured[name] {
			_, hasBase := base.metrics[metric]
			_, hasCeil := base.ceilings[metric]
			if hasBase || hasCeil {
				metrics = append(metrics, metric)
			}
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			got := measured[name][metric]
			id := fmt.Sprintf("%s %s", name, metric)
			if base.envDependent[metric] {
				lines = append(lines, fmt.Sprintf("%-56s measured %12.2f  skipped (environment-dependent)", id, got))
				continue
			}
			if ceil, ok := base.ceilings[metric]; ok {
				status := "ok"
				if got > ceil {
					status = "REGRESSION"
					regressions++
				}
				checked++
				lines = append(lines, fmt.Sprintf("%-56s ceiling  %12.4g, measured %12.4g           %s", id, ceil, got, status))
			}
			want, ok := base.metrics[metric]
			if !ok {
				continue // ceiling-only metric
			}
			status := "ok"
			if got > want*(1+tol) {
				status = "REGRESSION"
				regressions++
			}
			checked++
			delta := 0.0
			if want != 0 {
				delta = (got/want - 1) * 100
			}
			lines = append(lines, fmt.Sprintf("%-56s baseline %12.2f, measured %12.2f (%+.1f%%)  %s", id, want, got, delta, status))
		}

		// Cross-benchmark floors: this benchmark must beat the referenced
		// one by the recorded factor, both measured in this run. A missing
		// measurement fails — a ratio gate that silently skips is no gate.
		refs := make([]string, 0, len(base.ratioOver))
		for ref := range base.ratioOver {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		for _, ref := range refs {
			floors := make([]string, 0, len(base.ratioOver[ref]))
			for metric := range base.ratioOver[ref] {
				floors = append(floors, metric)
			}
			sort.Strings(floors)
			for _, metric := range floors {
				floor := base.ratioOver[ref][metric]
				id := fmt.Sprintf("%s %s vs %s", name, metric, ref)
				checked++
				got, gotOK := measured[name][metric]
				refV, refOK := measured[ref][metric]
				if !gotOK || !refOK || got <= 0 {
					regressions++
					lines = append(lines, fmt.Sprintf("%-56s floor %gx unverifiable (benchmark not measured)  REGRESSION", id, floor))
					continue
				}
				ratio := refV / got
				status := "ok"
				if ratio < floor {
					status = "REGRESSION"
					regressions++
				}
				lines = append(lines, fmt.Sprintf("%-56s ratio %9.2fx, floor %gx                    %s", id, ratio, floor, status))
			}
		}
	}
	return lines, checked, regressions
}
