// Command benchcheck guards against performance regressions: it reads
// `go test -bench` output on stdin, compares every measured benchmark
// against the committed baselines in BENCH_*.json, and exits nonzero if
// any ns/op exceeds its baseline by more than the tolerance.
//
// Run `-count 3` (or more) benchmarks and benchcheck keeps the minimum
// per benchmark — the least-noisy estimate of the true cost on a shared
// runner. The tolerance defaults to 30% and can be widened for noisy CI
// machines via BENCH_TOL (a fraction, e.g. "0.5").
//
// Usage:
//
//	go test -run '^$' -bench 'Posterior|ServeHot' -benchtime 200x -count 3 \
//	    ./internal/serve ./internal/crf . | benchcheck BENCH_serve.json BENCH_inference.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tol := 0.30
	if s := os.Getenv("BENCH_TOL"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: bad BENCH_TOL %q\n", s)
			os.Exit(2)
		}
		tol = v
	}

	baselineFiles := os.Args[1:]
	if len(baselineFiles) == 0 {
		baselineFiles = []string{"BENCH_serve.json", "BENCH_inference.json"}
	}
	baselines := make(map[string]float64)
	for _, path := range baselineFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		if err := mergeBaselines(baselines, data); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
	}

	measured, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	results, regressions := compare(measured, baselines, tol)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no measured benchmark matched a baseline — nothing was checked")
		os.Exit(2)
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) beyond %.0f%% tolerance\n", regressions, tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within %.0f%% of baseline\n", len(results), tol*100)
}

// mergeBaselines pulls ns_op figures out of a BENCH_*.json document.
// Two shapes exist in-tree: {"benchmarks": {name: {"ns_op": N}}} and the
// before/after shape {"benchmarks": {name: {"after": {"ns_op": N}}}};
// "after" (the current implementation) wins when both are present.
func mergeBaselines(dst map[string]float64, data []byte) error {
	var doc struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Benchmarks == nil {
		return fmt.Errorf("no \"benchmarks\" object")
	}
	for name, raw := range doc.Benchmarks {
		var entry struct {
			NsOp  *float64 `json:"ns_op"`
			After *struct {
				NsOp *float64 `json:"ns_op"`
			} `json:"after"`
		}
		if err := json.Unmarshal(raw, &entry); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch {
		case entry.After != nil && entry.After.NsOp != nil:
			dst[name] = *entry.After.NsOp
		case entry.NsOp != nil:
			dst[name] = *entry.NsOp
		}
	}
	return nil
}

// parseBenchOutput extracts per-benchmark minimum ns/op from `go test
// -bench` output. Benchmark names keep their sub-benchmark path but drop
// the trailing -GOMAXPROCS suffix; with -count N the minimum of the N
// samples is kept.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// "BenchmarkX-8  200  856 ns/op  ..."
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if old, ok := out[name]; !ok || ns < old {
			out[name] = ns
		}
	}
	return out, sc.Err()
}

// compare lines up measured minima against baselines. Benchmarks with no
// baseline are skipped (new benchmarks are not regressions); baselines
// with no measurement are skipped too (the caller picks the -bench set).
func compare(measured, baselines map[string]float64, tol float64) (lines []string, regressions int) {
	names := make([]string, 0, len(measured))
	for name := range measured {
		if _, ok := baselines[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		got, want := measured[name], baselines[name]
		ratio := got / want
		status := "ok"
		if got > want*(1+tol) {
			status = "REGRESSION"
			regressions++
		}
		lines = append(lines, fmt.Sprintf("%-40s baseline %12.0f ns/op, measured %12.0f ns/op (%+.1f%%)  %s",
			name, want, got, (ratio-1)*100, status))
	}
	return lines, regressions
}
