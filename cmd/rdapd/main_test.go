package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/templates"
)

// faithfulParseFn builds a stub parse function that answers each
// domain's rendered WHOIS text with the parse a perfect pipeline would
// produce — the handler under test, not the CRF, is what these tests
// exercise.
func faithfulParseFn(domains []*synth.Domain) func(string) *core.ParsedRecord {
	byText := make(map[string]*core.ParsedRecord, len(domains))
	for _, d := range domains {
		byText[d.Render().Text] = faithfulParse(&d.Reg)
	}
	return func(text string) *core.ParsedRecord { return byText[text] }
}

func faithfulParse(reg *templates.Registration) *core.ParsedRecord {
	return &core.ParsedRecord{
		DomainName:  strings.ToLower(reg.Domain),
		Registrar:   reg.RegistrarName,
		CreatedDate: reg.Created.Format("02-Jan-2006"),
		UpdatedDate: reg.Updated.Format("02-Jan-2006"),
		ExpiresDate: reg.Expires.Format("02-Jan-2006"),
		Registrant: core.Contact{
			Name:    reg.Registrant.Name,
			Email:   reg.Registrant.Email,
			Country: reg.Registrant.CountryName,
		},
		NameServers: append([]string(nil), reg.NameServers...),
		Statuses:    append([]string(nil), reg.Statuses...),
	}
}

func getSummary(t *testing.T, h http.Handler, target string) consistency.Summary {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", target, rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s consistency.Summary
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal summary: %v\n%s", err, rr.Body.String())
	}
	return s
}

// TestAdminConsistencySelfAudit drives the /admin/consistency handler: a
// faithful parse audits clean, a divergent one surfaces its registrar,
// and ?limit bounds the work.
func TestAdminConsistencySelfAudit(t *testing.T) {
	const n = 40
	domains := synth.Generate(synth.Config{N: n, Seed: 3})
	h := adminConsistency(domains, faithfulParseFn(domains))

	s := getSummary(t, h, "/admin/consistency")
	if s.Records != n || s.Skipped != 0 {
		t.Fatalf("records=%d skipped=%d, want %d/0", s.Records, s.Skipped, n)
	}
	if s.Conflicted != 0 || s.Rate != 0 {
		t.Fatalf("faithful self-audit shows conflicts: %+v", s)
	}
	if len(s.Fields) == 0 || len(s.Registrars) == 0 {
		t.Fatalf("summary missing breakdowns: %+v", s)
	}

	if s := getSummary(t, h, "/admin/consistency?limit=10"); s.Records != 10 {
		t.Errorf("limit=10 audited %d records", s.Records)
	}

	// A parse whose expiry slips a year for one registrar's domains must
	// put that registrar at the top of the disagreement ranking.
	target := domains[0].Reg.RegistrarName
	base := faithfulParseFn(domains)
	divergent := func(text string) *core.ParsedRecord {
		pr := base(text)
		if pr == nil || pr.Registrar != target {
			return pr
		}
		mut := *pr
		if exp, err := time.Parse("02-Jan-2006", pr.ExpiresDate); err == nil {
			mut.ExpiresDate = exp.AddDate(1, 0, 0).Format("02-Jan-2006")
		}
		return &mut
	}
	s = getSummary(t, adminConsistency(domains, divergent), "/admin/consistency")
	if s.Conflicted == 0 || s.Rate == 0 {
		t.Fatalf("divergent parse audited clean: %+v", s)
	}
	if len(s.Registrars) == 0 || s.Registrars[0].Registrar != target {
		t.Fatalf("top disagreeing registrar = %+v, want %s", s.Registrars[:1], target)
	}
	if tf := s.Registrars[0].TopFields; len(tf) == 0 || tf[0] != "expires" {
		t.Errorf("top conflicting fields = %v, want expires first", tf)
	}

	// Texts the parser cannot answer are skipped, not scored.
	none := func(string) *core.ParsedRecord { return nil }
	if s := getSummary(t, adminConsistency(domains, none), "/admin/consistency"); s.Records != 0 || s.Skipped != n {
		t.Errorf("nil parse: records=%d skipped=%d, want 0/%d", s.Records, s.Skipped, n)
	}
}

// TestAdminConsistencyMethodsAndLimits pins the endpoint's read-only
// contract: non-GET/HEAD answers 405 with an Allow header, HEAD is
// accepted, and malformed limits answer 400.
func TestAdminConsistencyMethodsAndLimits(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 8, Seed: 3})
	h := adminConsistency(domains, faithfulParseFn(domains))

	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(method, "/admin/consistency", strings.NewReader("{}")))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s = %d, want 405", method, rr.Code)
		}
		if allow := rr.Header().Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("%s Allow = %q, want %q", method, allow, "GET, HEAD")
		}
		var body map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body["error"] == nil {
			t.Errorf("%s body is not a JSON error: %s", method, rr.Body.String())
		}
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodHead, "/admin/consistency", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("HEAD = %d, want 200", rr.Code)
	}

	for _, target := range []string{"/admin/consistency?limit=0", "/admin/consistency?limit=-3", "/admin/consistency?limit=abc"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", target, rr.Code)
		}
	}
}
