package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/modelreg"
	"repro/internal/store"
	"repro/internal/synth"
)

// registryFixture publishes two versions into a fresh registry —
// 1.0.0 promoted to serving, 1.1.0 staged as candidate — and returns a
// registry-backed Manager serving 1.0.0.
func registryFixture(t *testing.T) (*modelreg.Registry, *lifecycle.Manager) {
	t.Helper()
	recs := synth.GenerateLabeled(synth.Config{N: 80, Seed: 29})
	pA, _, err := core.Train(recs[:40], core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pB, _, err := core.Retrain(pA, recs, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	artA := filepath.Join(dir, "a.wmdl")
	artB := filepath.Join(dir, "b.wmdl")
	if err := store.SaveModel(pA, artA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveModel(pB, artB); err != nil {
		t.Fatal(err)
	}

	reg, err := modelreg.Open(t.TempDir(), modelreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fam := modelreg.DefaultFamily
	mustPublish := func(path, version, parent string) {
		t.Helper()
		if _, err := reg.Publish(modelreg.PublishRequest{
			Family: fam, Version: version, Parent: parent, ArtifactPath: path,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustPublish(artA, "1.0.0", "")
	if err := reg.SetCandidate(fam, "1.0.0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reg.Promote(fam, "1.0.0"); err != nil {
			t.Fatal(err)
		}
	}
	mustPublish(artB, "1.1.0", "1.0.0")
	if err := reg.SetCandidate(fam, "1.1.0"); err != nil {
		t.Fatal(err)
	}

	mgr, err := lifecycle.NewFromRegistry(reg, fam, lifecycle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reg, mgr
}

func postJSON(t *testing.T, h http.Handler, target string) (int, map[string]any) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, target, nil))
	var body map[string]any
	if rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", target, err, rr.Body.String())
		}
	}
	return rr.Code, body
}

// TestAdminStageMoveDrivesRegistry walks the staged candidate to
// serving through the promote endpoint, confirms the daemon swapped to
// it, and rolls back — the prior serving version must still be on disk,
// verify clean, and come back live.
func TestAdminStageMoveDrivesRegistry(t *testing.T) {
	reg, mgr := registryFixture(t)
	fam := modelreg.DefaultFamily
	promote := adminStageMove(reg, mgr, nil, fam, false)
	rollback := adminStageMove(reg, mgr, nil, fam, true)

	if !strings.HasPrefix(mgr.Current().Version, fam+"/1.0.0+") {
		t.Fatalf("fixture serving %q", mgr.Current().Version)
	}

	// candidate -> shadow: the daemon keeps serving 1.0.0.
	code, body := postJSON(t, promote, "/admin/model/promote?version=1.1.0")
	if code != http.StatusOK || body["stage"] != "shadow" {
		t.Fatalf("promote to shadow: %d %v", code, body)
	}
	if !strings.HasPrefix(mgr.Current().Version, fam+"/1.0.0+") {
		t.Fatalf("shadow promote moved serving to %q", mgr.Current().Version)
	}

	// shadow -> serving: the daemon swaps in the same request.
	code, body = postJSON(t, promote, "/admin/model/promote?version=1.1.0")
	if code != http.StatusOK || body["stage"] != "serving" || body["swapped"] != true {
		t.Fatalf("promote to serving: %d %v", code, body)
	}
	if !strings.HasPrefix(mgr.Current().Version, fam+"/1.1.0+") {
		t.Fatalf("serving promote left daemon on %q", mgr.Current().Version)
	}

	// The displaced version is still on disk and verifies.
	if _, err := reg.Verify(fam, "1.0.0"); err != nil {
		t.Fatalf("old serving version no longer verifies: %v", err)
	}

	// Rollback restores it, live.
	code, body = postJSON(t, rollback, "/admin/model/rollback?version=1.0.0")
	if code != http.StatusOK || body["swapped"] != true {
		t.Fatalf("rollback: %d %v", code, body)
	}
	if !strings.HasPrefix(mgr.Current().Version, fam+"/1.0.0+") {
		t.Fatalf("rollback left daemon on %q", mgr.Current().Version)
	}

	// Guard rails: GET is rejected, a missing version is a 400, an
	// illegal transition surfaces as 422.
	rr := httptest.NewRecorder()
	promote.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/admin/model/promote?version=1.1.0", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET promote = %d", rr.Code)
	}
	if code, _ := postJSON(t, promote, "/admin/model/promote"); code != http.StatusBadRequest {
		t.Errorf("promote without version = %d", code)
	}
	if code, _ := postJSON(t, promote, "/admin/model/promote?version=9.9.9"); code != http.StatusUnprocessableEntity {
		t.Errorf("promote of absent version = %d", code)
	}
}

// TestAdminReloadServingAndModels pins the read side: reload is a
// POST-only no-op while the pointer is unchanged, and /admin/models
// lists every version with its stage.
func TestAdminReloadServingAndModels(t *testing.T) {
	reg, mgr := registryFixture(t)

	reload := adminReloadServing(mgr)
	code, body := postJSON(t, reload, "/admin/reload")
	if code != http.StatusOK || body["changed"] != false {
		t.Fatalf("idle reload: %d %v", code, body)
	}
	if body["version"] != mgr.Current().Version {
		t.Fatalf("reload reported %v, serving %q", body["version"], mgr.Current().Version)
	}
	rr := httptest.NewRecorder()
	reload.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/admin/reload", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload = %d", rr.Code)
	}

	// An out-of-band promote (CLI, another process) becomes visible.
	for i := 0; i < 2; i++ {
		if _, err := reg.Promote(modelreg.DefaultFamily, "1.1.0"); err != nil {
			t.Fatal(err)
		}
	}
	code, body = postJSON(t, reload, "/admin/reload")
	if code != http.StatusOK || body["changed"] != true {
		t.Fatalf("post-promote reload: %d %v", code, body)
	}
	if v, _ := body["version"].(string); !strings.Contains(v, "/1.1.0+") {
		t.Fatalf("reload landed on %v", body["version"])
	}

	rr = httptest.NewRecorder()
	adminModels(reg).ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/admin/models", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET models = %d: %s", rr.Code, rr.Body.String())
	}
	var listings []modelreg.FamilyListing
	if err := json.Unmarshal(rr.Body.Bytes(), &listings); err != nil {
		t.Fatalf("models JSON: %v\n%s", err, rr.Body.String())
	}
	if len(listings) != 1 || len(listings[0].Versions) != 2 {
		t.Fatalf("listings = %+v", listings)
	}
	stages := map[string]string{}
	for _, v := range listings[0].Versions {
		stages[v.Version] = v.Stage
	}
	if stages["1.1.0"] != "serving" {
		t.Fatalf("stages = %v", stages)
	}
}
