// Command rdapd serves the synthetic registration corpus over RDAP — the
// structured-data protocol the paper's background section (§2.2) expects
// to eventually replace free-text WHOIS. Two views of every domain:
//
//   - /domain/{name}: registry ground truth as an RDAP domain object;
//   - /parsed/{name}: the statistical parser's reading of the domain's
//     raw WHOIS text, served through the shared parse-serving layer
//     (internal/serve: cache + singleflight coalescing + bounded worker
//     pool with load shedding) and shaped as RDAP-flavored JSON.
//
// Comparing the two is the "WHOIS Right?" consistency experiment in
// miniature: structured truth vs. learned parse, same schema. With
// -debug-addr the daemon runs that comparison on demand: GET
// /admin/consistency self-audits the corpus through internal/consistency
// — every domain's WHOIS text goes through the live parser, the result
// is compared field by field against the RDAP truth, and the reply is
// the aggregate agreement summary (per-field and per-registrar
// disagreement breakdowns).
//
//	rdapd -n 2000 -listen 127.0.0.1:8083 -debug-addr 127.0.0.1:8084 &
//	curl -s http://127.0.0.1:8083/domain/<name> | jq .
//	curl -s http://127.0.0.1:8083/parsed/<name> | jq .
//	curl -s http://127.0.0.1:8084/admin/consistency?limit=500 | jq .
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifecycle"
	"repro/internal/modelreg"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rdap"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tiered"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdapd: ")
	n := flag.Int("n", 2000, "number of domains to serve")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	parseMode := flag.Bool("parse", true, "serve /parsed/{name} via the statistical parser")
	model := flag.String("model", "", "trained parser model for -parse (empty = train a small one at startup)")
	parseWorkers := flag.Int("parse-workers", 0, "parse worker pool size (0 = GOMAXPROCS)")
	parseQueue := flag.Int("parse-queue", 0, "admission queue depth (0 = 8x workers); overflow answers 503")
	parseCache := flag.Int("parse-cache", 4096, "parsed-record cache capacity (negative disables)")
	storeDir := flag.String("store", "", "open this record store for the daemon's lifetime: warm-start the parse cache from its newest segment and serve predicated queries at /admin/query on -debug-addr")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (empty disables)")
	lifecycleMode := flag.Bool("lifecycle", false,
		"manage -model through internal/lifecycle: hot-reload on SIGHUP or POST /admin/reload (requires a WMDL -model)")
	modelRegDir := flag.String("model-registry", "",
		"serve the model the registry at this directory marks 'serving' (implies -lifecycle; SIGHUP or POST /admin/reload re-resolves the pointer, POST /admin/model/promote|rollback move it, GET /admin/models lists the registry)")
	modelFamily := flag.String("model-family", modelreg.DefaultFamily,
		"registry model family to serve (with -model-registry)")
	tieredMode := flag.Bool("tiered", false,
		"serve /parsed/ through the L0 compiled-template fast path with CRF fallback (status at /admin/tiered)")
	clusterListen := flag.String("cluster-listen", "",
		"serve the shard protocol on this address and route /parsed/ through the consistent-hash ring (empty disables clustering)")
	clusterID := flag.String("cluster-id", "",
		"stable ring identity of this node (default: the bound -cluster-listen address)")
	peersFlag := flag.String("peers", "",
		"comma-separated peer shards, each id=addr (or a bare addr, doubling as the id)")
	clusterJoin := flag.String("cluster-join", "",
		"fetch the serving model from the shard at this address (verified by CRC32C) before admitting traffic")
	flag.Parse()

	// One registry shared by every layer: the RDAP handler, the
	// parse-serving layer, and the CRF decoders below it all report here,
	// and --debug-addr exports the lot.
	reg := obs.NewRegistry()

	domains := synth.Generate(synth.Config{N: *n, Seed: *seed, BrandFraction: 0.02})
	srv := rdap.NewServer(domains)
	srv.Instrument(reg)

	// -store opens the record store once for the whole run: the warm
	// start streams from it at boot, and the query engine serves
	// /admin/query over it for as long as the daemon lives, deriving
	// sidecars in the background whenever a segment seals.
	var recStore *store.Store
	var qe *query.Engine
	if *storeDir != "" {
		var err error
		recStore, err = store.Open(*storeDir, store.Options{Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer recStore.Close()
		qe = query.New(recStore, query.Options{Metrics: reg})
		qe.AutoBuild()
		go func() {
			if built, err := qe.BuildAll(); err != nil {
				log.Printf("query: sidecar build: %v (queries fall back where needed)", err)
			} else if built > 0 {
				log.Printf("query: built sidecars for %d segments", built)
			}
		}()
	}

	// With -lifecycle the model is owned by a lifecycle.Manager: every
	// response is stamped with the model version that produced it, the
	// drift sentinel watches live parses, and the model can be hot-swapped
	// (SIGHUP, or POST /admin/reload on -debug-addr) with the serving
	// cache invalidated in the same atomic step.
	var mgr *lifecycle.Manager
	var router *tiered.Router
	var node *cluster.Node
	// With -model-registry the serving model is whatever the registry's
	// serving pointer names: boot resolves it, SIGHUP re-resolves it, and
	// the promote/rollback admin endpoints move it.
	var modelRegistry *modelreg.Registry
	if *modelRegDir != "" {
		var err error
		modelRegistry, err = modelreg.Open(*modelRegDir, modelreg.Options{
			Metrics: reg,
			Log:     obs.NewLogger("modelreg", os.Stderr),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	// parseFn is the same parse the serving layer would run for a cache
	// miss, kept for the /admin/consistency self-audit: under -lifecycle
	// it re-resolves the live model on every call so an audit after a
	// hot-swap scores the model actually serving.
	var parseFn func(text string) *core.ParsedRecord
	if *parseMode {
		// With -tiered, head-of-distribution registrars are served by
		// compiled templates (L0) and everything L0 cannot vouch for —
		// unknown registrar, template mismatch, low match confidence,
		// demoted template — falls back to the CRF (L1). Templates come
		// from the same labeled training distribution the default parser
		// trains on.
		if *tieredMode {
			trecs := synth.GenerateLabeled(synth.Config{N: 200, Seed: *seed + 7919})
			router = tiered.NewFromRecords(trecs, core.DefaultConfig().Tokenize,
				tiered.Options{Metrics: reg})
			log.Printf("tiered: %d registrar templates compiled (L0 fast path on)",
				router.Status().Templates)
		}
		var p *core.Parser
		if modelRegistry != nil {
			var err error
			mgr, err = lifecycle.NewFromRegistry(modelRegistry, *modelFamily, lifecycle.Options{
				Metrics: reg,
				Log:     obs.NewLogger("lifecycle", os.Stderr),
				Tiered:  router,
			})
			if err != nil {
				log.Fatal(err)
			}
			snap := mgr.Current()
			log.Printf("modelreg: serving %s (%s) from %s", snap.Version, snap.Info, *modelRegDir)
			p = snap.Parser
		} else if *lifecycleMode {
			if *model == "" {
				log.Fatal("-lifecycle requires -model (a WMDL artifact to reload from)")
			}
			var err error
			mgr, err = lifecycle.NewFromFile(*model, lifecycle.Options{
				Metrics: reg,
				Log:     obs.NewLogger("lifecycle", os.Stderr),
				Tiered:  router,
			})
			if err != nil {
				log.Fatal(err)
			}
			snap := mgr.Current()
			log.Printf("lifecycle: serving model %s (%s)", snap.Version, snap.Info)
			p = snap.Parser
		} else {
			var err error
			p, err = loadOrTrainParser(*model, *seed)
			if err != nil {
				log.Fatal(err)
			}
			p.Instrument(reg)
		}
		ps := serve.New(p, serve.Options{
			Workers:       *parseWorkers,
			QueueDepth:    *parseQueue,
			CacheCapacity: *parseCache,
			Metrics:       reg,
		})
		defer func() {
			ps.Close() // drain in-flight parses after the listener stops
			log.Printf("parse serving: %s", ps.Stats())
		}()
		if mgr != nil {
			mgr.Attach(ps)
			parseFn = mgr.Parse
		} else if router != nil {
			// Without lifecycle, bind the router directly over the plain
			// parser; the lifecycle path routes via Options.Tiered.
			ps.SetParseFunc(router.Bind(p.Parse))
			parseFn = router.Bind(p.Parse)
		} else {
			parseFn = p.Parse
		}
		if recStore != nil {
			// Under -lifecycle only records stamped by the exact model
			// being served may seed the cache; anything else would be
			// unattributable (or misattributed) after the first reload.
			wantVersion := ""
			if mgr != nil {
				wantVersion = mgr.Current().Version
			}
			n, err := warmStart(ps, recStore, wantVersion)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("warm start: preloaded %d parsed records from %s", n, *storeDir)
		}
		if *clusterListen != "" {
			// Cluster mode: every /parsed/ request routes through the
			// consistent-hash ring — this node serves its own slice of the
			// domain space and forwards the rest to the owning shard.
			ln, err := net.Listen("tcp", *clusterListen)
			if err != nil {
				log.Fatal(err)
			}
			id := *clusterID
			if id == "" {
				id = ln.Addr().String()
			}
			node, err = cluster.NewNode(ps, mgr, cluster.Options{
				ID:      id,
				Addr:    ln.Addr().String(),
				Metrics: reg,
				Log:     obs.NewLogger("cluster", os.Stderr),
			})
			if err != nil {
				log.Fatal(err)
			}
			defer node.Close()
			for _, spec := range strings.Split(*peersFlag, ",") {
				spec = strings.TrimSpace(spec)
				if spec == "" {
					continue
				}
				pid, paddr, ok := strings.Cut(spec, "=")
				if !ok {
					pid, paddr = spec, spec
				}
				node.AddPeer(pid, cluster.DialTCP(paddr))
			}
			if modelRegistry != nil {
				// Joining peers always fetch whatever the registry says is
				// serving right now — a promote between joins changes what
				// the next peer receives, with no daemon restart.
				fam := *modelFamily
				node.SetModelProvider(func() ([]byte, error) {
					res, err := modelRegistry.ResolveServing(fam)
					if err != nil {
						return nil, err
					}
					return os.ReadFile(res.Path)
				})
			} else if *model != "" {
				// Serve our on-disk artifact to joining peers.
				data, err := os.ReadFile(*model)
				if err != nil {
					log.Fatal(err)
				}
				node.SetModelArtifact(data)
			}
			if *clusterJoin != "" {
				// Join path: pull the fleet's serving model and verify its
				// CRC before this node answers anyone.
				jc := cluster.DialTCP(*clusterJoin)
				jctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				version, err := node.JoinFetchModel(jctx, jc)
				cancel()
				jc.Close()
				if err != nil {
					log.Fatal(err)
				}
				log.Printf("cluster: joined via %s, serving model %s", *clusterJoin, version)
			}
			shardSrv := cluster.ServeTCP(ln, node, obs.NewLogger("cluster", os.Stderr))
			defer shardSrv.Close()
			log.Printf("cluster: shard %s on %s, %d ring members", id, ln.Addr(), node.Ring().Len())
			srv.EnableParsedBackend(node, domains)
		} else {
			srv.EnableParsed(ps, domains)
		}
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := obs.DebugMux(reg)
		if mgr != nil {
			if modelRegistry != nil {
				mux.HandleFunc("/admin/reload", adminReloadServing(mgr))
			} else {
				mux.HandleFunc("/admin/reload", adminReload(mgr, *model))
			}
			mux.HandleFunc("/admin/model", adminModel(mgr))
		}
		if modelRegistry != nil {
			mux.HandleFunc("/admin/models", adminModels(modelRegistry))
			mux.HandleFunc("/admin/model/promote", adminStageMove(modelRegistry, mgr, node, *modelFamily, false))
			mux.HandleFunc("/admin/model/rollback", adminStageMove(modelRegistry, mgr, node, *modelFamily, true))
		}
		if router != nil {
			mux.HandleFunc("/admin/tiered", adminTiered(router))
		}
		if node != nil {
			mux.HandleFunc("/admin/cluster", adminCluster(node))
		}
		if qe != nil {
			mux.HandleFunc("/admin/query", adminQuery(qe))
		}
		if parseFn != nil {
			mux.HandleFunc("/admin/consistency", adminConsistency(domains, parseFn))
		}
		dbg := &http.Server{Handler: mux}
		go func() { _ = dbg.Serve(dl) }()
		defer dbg.Close()
		log.Printf("debug endpoints at http://%s/debug/vars and /debug/pprof/", dl.Addr())
		if mgr != nil {
			log.Printf("model admin at http://%s/admin/model (POST /admin/reload to hot-swap)", dl.Addr())
		}
		if modelRegistry != nil {
			log.Printf("model registry at http://%s/admin/models (POST /admin/model/promote|rollback?version=...)", dl.Addr())
		}
		if router != nil {
			log.Printf("tier status at http://%s/admin/tiered", dl.Addr())
		}
		if node != nil {
			log.Printf("cluster status at http://%s/admin/cluster", dl.Addr())
		}
		if qe != nil {
			log.Printf("store queries at http://%s/admin/query?registrar=...&country=...&year=...&since=...", dl.Addr())
		}
		if parseFn != nil {
			log.Printf("cross-protocol self-audit at http://%s/admin/consistency?limit=...", dl.Addr())
		}
	}
	log.Printf("serving %d domains at http://%s/domain/{name}", *n, addr)
	if *parseMode {
		log.Printf("parsed view at http://%s/parsed/{name}", addr)
	}
	log.Printf("example: curl -s http://%s/domain/%s", addr, domains[0].Reg.Domain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if mgr != nil {
		// SIGHUP = "re-read the model source and swap it live", the
		// classic daemon reload contract: with -model-registry that means
		// re-resolving the serving pointer (a promote on another process
		// becomes visible), otherwise re-reading -model from disk. A bad
		// artifact is rejected with the old model still serving.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				var snap *lifecycle.Snapshot
				var err error
				if modelRegistry != nil {
					var changed bool
					snap, changed, err = mgr.ReloadServing()
					if err == nil && !changed {
						log.Printf("SIGHUP reload: %s still serving (registry pointer unchanged)", snap.Version)
						continue
					}
				} else {
					snap, err = mgr.ReloadFromFile(*model)
				}
				if err != nil {
					log.Printf("SIGHUP reload failed (still serving %s): %v",
						mgr.Current().Version, err)
					continue
				}
				log.Printf("SIGHUP reload: now serving %s (%s)", snap.Version, snap.Info)
			}
		}()
	}
	<-sig
	log.Printf("shutting down")
}

// adminReload hot-swaps the model from the artifact path on POST — the
// HTTP twin of SIGHUP, for orchestrators that would rather curl than
// signal.
func adminReload(mgr *lifecycle.Manager, model string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		snap, err := mgr.ReloadFromFile(model)
		if err != nil {
			log.Printf("admin reload failed (still serving %s): %v", mgr.Current().Version, err)
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		log.Printf("admin reload: now serving %s (%s)", snap.Version, snap.Info)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"version": snap.Version, "seq": snap.Seq, "artifact": snap.Info.String(),
		})
	}
}

// adminReloadServing re-resolves the registry's serving pointer on POST
// — the HTTP twin of SIGHUP for registry-backed daemons.
func adminReloadServing(mgr *lifecycle.Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		snap, changed, err := mgr.ReloadServing()
		if err != nil {
			log.Printf("admin reload failed (still serving %s): %v", mgr.Current().Version, err)
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if changed {
			log.Printf("admin reload: now serving %s (%s)", snap.Version, snap.Info)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"version": snap.Version, "seq": snap.Seq,
			"artifact": snap.Info.String(), "changed": changed,
		})
	}
}

// adminModels lists the registry: every family's stages and versions,
// with provenance highlights — the fleet-wide "what could we serve"
// view next to /admin/model's "what are we serving".
func adminModels(reg *modelreg.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		listings, err := reg.List()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(listings)
	}
}

// adminStageMove advances (?version=V one stage: candidate → shadow →
// serving) or rolls back the family's serving pointer on POST, then
// makes the daemon converge on the registry's new serving version:
// ReloadServing swaps this process, and — when clustered — a Rollout
// pushes the artifact to every peer so the ring moves together.
func adminStageMove(reg *modelreg.Registry, mgr *lifecycle.Manager, node *cluster.Node, defaultFamily string, rollback bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		family := r.URL.Query().Get("family")
		if family == "" {
			family = defaultFamily
		}
		version := r.URL.Query().Get("version")
		if version == "" {
			http.Error(w, "version query parameter required", http.StatusBadRequest)
			return
		}
		var stage modelreg.Stage
		var err error
		if rollback {
			stage, err = modelreg.StageServing, reg.Rollback(family, version)
		} else {
			stage, err = reg.Promote(family, version)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp := map[string]any{"family": family, "version": version, "stage": stage.String()}
		if stage == modelreg.StageServing && mgr != nil {
			snap, changed, rerr := mgr.ReloadServing()
			if rerr != nil {
				http.Error(w, rerr.Error(), http.StatusUnprocessableEntity)
				return
			}
			resp["serving"], resp["swapped"] = snap.Version, changed
			if node != nil && changed {
				res, rerr := reg.ResolveServing(family)
				if rerr == nil {
					if data, ferr := os.ReadFile(res.Path); ferr == nil {
						ctx, cancel := context.WithTimeout(r.Context(), time.Minute)
						report, roerr := node.Rollout(ctx, data, 0)
						cancel()
						if roerr != nil {
							log.Printf("admin %s: cluster rollout: %v", stage, roerr)
						}
						resp["rollout"] = report
					}
				}
			}
		}
		log.Printf("admin stage move: %s/%s -> %s", family, version, stage)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// adminModel reports which model is live and what the drift sentinel
// thinks of it.
func adminModel(mgr *lifecycle.Manager) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		snap := mgr.Current()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"version":  snap.Version,
			"seq":      snap.Seq,
			"artifact": snap.Info.String(),
			"path":     snap.Path,
			"state":    mgr.State().String(),
			"flagged":  mgr.Flagged(),
		})
	}
}

// adminCluster reports the node's view of the ring: its own status,
// per-member ownership fractions, and a live poll of every peer.
func adminCluster(node *cluster.Node) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(node.ClusterStatus(ctx))
	}
}

// adminTiered reports the L0 router's template and counter state: how
// many templates compiled, which are demoted, and the per-tier serve
// counts (also exported as tiered.* in /debug/vars).
func adminTiered(router *tiered.Router) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(router.Status())
	}
}

// adminQuery answers a predicate over the opened record store through
// the query engine: ?where= takes a full predicate expression, and/or
// ?registrar= ?country= ?year= ?since= add single dimensions. The JSON
// reply carries the match count, the top registrars/countries and the
// per-year histogram of the matching rows, and the planner's execution
// stats (how many segments were pruned, seeked, scanned, rebuilt).
func adminQuery(e *query.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		parts := make([]string, 0, 5)
		if s := q.Get("where"); s != "" {
			parts = append(parts, s)
		}
		for _, k := range []string{"registrar", "country", "year", "since"} {
			if v := q.Get(k); v != "" {
				parts = append(parts, k+"="+v)
			}
		}
		p, err := query.ParsePred(strings.Join(parts, ","))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		registrars := make(map[string]int)
		countries := make(map[string]int)
		years := make(map[int]int)
		stats, err := e.Scan(p, func(rec *store.Record) error {
			if rec.Facts.Registrar != "" {
				registrars[rec.Facts.Registrar]++
			}
			if rec.Facts.Country != "" {
				countries[rec.Facts.Country]++
			}
			years[rec.Facts.CreatedYear]++
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"predicate":      p.String(),
			"matched":        stats.Matched,
			"stats":          stats,
			"top_registrars": topCounts(registrars, 10),
			"top_countries":  topCounts(countries, 10),
			"years":          yearCounts(years),
		})
	}
}

// adminConsistency self-audits the served corpus through
// internal/consistency: each domain's raw WHOIS text goes through the
// live parse function and the result is compared field by field against
// the RDAP ground truth the daemon serves at /domain/{name}. The reply
// is the auditor's aggregate summary — agreement-taxonomy counts,
// per-field conflict totals, and the per-registrar disagreement ranking.
// ?limit=N audits only the first N domains (the corpus order is the
// deterministic generation order). Like the RDAP surface itself the
// endpoint is read-only: anything but GET/HEAD is answered 405 with an
// Allow header.
func adminConsistency(domains []*synth.Domain, parse func(text string) *core.ParsedRecord) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMethodNotAllowed)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": r.Method + " is not supported; use GET or HEAD",
			})
			return
		}
		limit := len(domains)
		if s := r.URL.Query().Get("limit"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			if v < limit {
				limit = v
			}
		}
		a := consistency.NewAuditor()
		for _, d := range domains[:limit] {
			pr := parse(d.Render().Text)
			if pr == nil {
				a.Skip()
				continue
			}
			wv := consistency.FromWHOIS(pr)
			if wv.Domain == "" {
				wv.Domain = strings.ToLower(d.Reg.Domain)
			}
			rv := consistency.FromRDAP(rdap.FromRegistration(&d.Reg))
			a.Observe(consistency.Compare(wv, rv))
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(a.Summary())
	}
}

// keyCount is one row of a ranked JSON breakdown.
type keyCount struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

// topCounts ranks a breakdown by count (ties by key) and keeps the top k.
func topCounts(m map[string]int, k int) []keyCount {
	out := make([]keyCount, 0, len(m))
	for key, n := range m {
		out = append(out, keyCount{key, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// yearCount is one bar of the per-year JSON histogram; year 0 counts the
// records whose creation year did not parse.
type yearCount struct {
	Year int `json:"year"`
	N    int `json:"n"`
}

func yearCounts(m map[int]int) []yearCount {
	out := make([]yearCount, 0, len(m))
	for y, n := range m {
		out = append(out, yearCount{y, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// warmStart replays the newest store segment (the records written
// closest to the previous shutdown) into the serving cache: records that
// carry both their raw text and a parsed view preload under the same
// cache key a live request for that text would compute. When wantVersion
// is non-empty, only records stamped by that exact model version are
// admitted.
func warmStart(ps *serve.Server, st *store.Store, wantVersion string) (int, error) {
	it := st.IterNewestSegment()
	defer it.Close()
	n := 0
	for it.Next() {
		rec := it.Record()
		if rec.Text == "" || rec.Parsed == nil {
			continue // thin or unparsed records cannot seed the cache
		}
		if wantVersion != "" && rec.Parsed.ModelVersion != wantVersion {
			continue // parsed by a different (or unknown) model
		}
		ps.Preload(rec.Text, rec.Parsed)
		n++
	}
	return n, it.Err()
}

// loadOrTrainParser loads a saved model, or — so /parsed/ works out of
// the box — trains a small parser on a labeled synthetic corpus drawn
// from a seed distinct from the served ecosystem's.
func loadOrTrainParser(model string, seed int64) (*core.Parser, error) {
	if model != "" {
		log.Printf("loading parser from %s", model)
		return whoisparse.Load(model)
	}
	log.Printf("no -model given; training a small parser (use -model for a full one)")
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: seed + 7919})
	p, _, err := experiments.TrainParser(recs, experiments.Quick())
	return p, err
}
