// Command rdapd serves the synthetic registration corpus over RDAP — the
// structured-data protocol the paper's background section (§2.2) expects
// to eventually replace free-text WHOIS. Useful for poking at the
// structured counterfactual:
//
//	rdapd -n 2000 -listen 127.0.0.1:8083 &
//	curl -s http://127.0.0.1:8083/domain/<name> | jq .
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/rdap"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdapd: ")
	n := flag.Int("n", 2000, "number of domains to serve")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	flag.Parse()

	domains := synth.Generate(synth.Config{N: *n, Seed: *seed, BrandFraction: 0.02})
	srv := rdap.NewServer(domains)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serving %d domains at http://%s/domain/{name}", *n, addr)
	log.Printf("example: curl -s http://%s/domain/%s", addr, domains[0].Reg.Domain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
