// Command rdapd serves the synthetic registration corpus over RDAP — the
// structured-data protocol the paper's background section (§2.2) expects
// to eventually replace free-text WHOIS. Two views of every domain:
//
//   - /domain/{name}: registry ground truth as an RDAP domain object;
//   - /parsed/{name}: the statistical parser's reading of the domain's
//     raw WHOIS text, served through the shared parse-serving layer
//     (internal/serve: cache + singleflight coalescing + bounded worker
//     pool with load shedding) and shaped as RDAP-flavored JSON.
//
// Comparing the two is the "WHOIS Right?" consistency experiment in
// miniature: structured truth vs. learned parse, same schema.
//
//	rdapd -n 2000 -listen 127.0.0.1:8083 &
//	curl -s http://127.0.0.1:8083/domain/<name> | jq .
//	curl -s http://127.0.0.1:8083/parsed/<name> | jq .
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/rdap"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"

	whoisparse "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rdapd: ")
	n := flag.Int("n", 2000, "number of domains to serve")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	parseMode := flag.Bool("parse", true, "serve /parsed/{name} via the statistical parser")
	model := flag.String("model", "", "trained parser model for -parse (empty = train a small one at startup)")
	parseWorkers := flag.Int("parse-workers", 0, "parse worker pool size (0 = GOMAXPROCS)")
	parseQueue := flag.Int("parse-queue", 0, "admission queue depth (0 = 8x workers); overflow answers 503")
	parseCache := flag.Int("parse-cache", 4096, "parsed-record cache capacity (negative disables)")
	storeDir := flag.String("store", "", "warm-start the parse cache from this record store's newest segment")
	debugAddr := flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (empty disables)")
	flag.Parse()

	// One registry shared by every layer: the RDAP handler, the
	// parse-serving layer, and the CRF decoders below it all report here,
	// and --debug-addr exports the lot.
	reg := obs.NewRegistry()

	domains := synth.Generate(synth.Config{N: *n, Seed: *seed, BrandFraction: 0.02})
	srv := rdap.NewServer(domains)
	srv.Instrument(reg)

	if *parseMode {
		p, err := loadOrTrainParser(*model, *seed)
		if err != nil {
			log.Fatal(err)
		}
		p.Instrument(reg)
		ps := serve.New(p, serve.Options{
			Workers:       *parseWorkers,
			QueueDepth:    *parseQueue,
			CacheCapacity: *parseCache,
			Metrics:       reg,
		})
		defer func() {
			ps.Close() // drain in-flight parses after the listener stops
			log.Printf("parse serving: %s", ps.Stats())
		}()
		if *storeDir != "" {
			n, err := warmStart(ps, *storeDir, reg)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("warm start: preloaded %d parsed records from %s", n, *storeDir)
		}
		srv.EnableParsed(ps, domains)
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dbg := &http.Server{Handler: obs.DebugMux(reg)}
		go func() { _ = dbg.Serve(dl) }()
		defer dbg.Close()
		log.Printf("debug endpoints at http://%s/debug/vars and /debug/pprof/", dl.Addr())
	}
	log.Printf("serving %d domains at http://%s/domain/{name}", *n, addr)
	if *parseMode {
		log.Printf("parsed view at http://%s/parsed/{name}", addr)
	}
	log.Printf("example: curl -s http://%s/domain/%s", addr, domains[0].Reg.Domain)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}

// warmStart replays the newest store segment (the records written
// closest to the previous shutdown) into the serving cache: records that
// carry both their raw text and a parsed view preload under the same
// cache key a live request for that text would compute.
func warmStart(ps *serve.Server, dir string, reg *obs.Registry) (int, error) {
	st, err := store.Open(dir, store.Options{Metrics: reg})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	it := st.IterNewestSegment()
	defer it.Close()
	n := 0
	for it.Next() {
		rec := it.Record()
		if rec.Text == "" || rec.Parsed == nil {
			continue // thin or unparsed records cannot seed the cache
		}
		ps.Preload(rec.Text, rec.Parsed)
		n++
	}
	return n, it.Err()
}

// loadOrTrainParser loads a saved model, or — so /parsed/ works out of
// the box — trains a small parser on a labeled synthetic corpus drawn
// from a seed distinct from the served ecosystem's.
func loadOrTrainParser(model string, seed int64) (*core.Parser, error) {
	if model != "" {
		log.Printf("loading parser from %s", model)
		return whoisparse.Load(model)
	}
	log.Printf("no -model given; training a small parser (use -model for a full one)")
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: seed + 7919})
	p, _, err := experiments.TrainParser(recs, experiments.Quick())
	return p, err
}
