# Verification targets. `make verify` is the CI entry point: tier-1
# build+test plus vet and a race-detector pass over the concurrent
# serving paths (internal/serve, internal/obs, and the frontends that
# sit on them). `make lint`, `make cover`, and `make benchcheck` are the
# CI quality gates that run alongside it.

GO ?= go

# Minimum total statement coverage (percent) for the packages gated by
# `make cover`.
COVER_FLOOR ?= 70

# Packages whose coverage is gated. internal/obs is the observability
# layer everything reports through; internal/serve is the hot serving
# path; internal/store is the persistence layer under both;
# internal/lifecycle owns hot reload and model promotion;
# internal/tiered is the L0/L1 routing layer in front of the CRF;
# internal/cluster is the sharded-serving coordination layer;
# internal/query is the pruned survey-scale query engine over the store;
# internal/consistency is the WHOIS<->RDAP cross-protocol audit engine;
# internal/modelreg is the content-addressed model registry under the
# promotion state machine.
COVER_PKGS = repro/internal/serve repro/internal/obs repro/internal/store repro/internal/lifecycle repro/internal/tiered repro/internal/cluster repro/internal/query repro/internal/consistency repro/internal/modelreg

# Corpus size and seed for the query-differential gate. The seed
# defaults to today's date so CI explores a fresh corpus every day;
# failures log both values, so any corpus is one env var away from a
# local repro.
QUERYDIFF_N ?= 2000
QUERYDIFF_SEED ?= $(shell date +%Y%m%d)

.PHONY: verify vet build test race bench-serve bench-tiered lint importcheck benchcheck cover fuzz-smoke query-diff model-verify

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/whoisd/... ./internal/rdap/... ./internal/obs/... ./internal/crawler/... ./internal/store/... ./internal/lifecycle/... ./internal/tiered/... ./internal/cluster/... ./internal/query/... ./internal/consistency/... ./internal/modelreg/...

bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkServe|BenchmarkParseDirect' -benchtime 1000x ./internal/serve/

bench-tiered:
	$(GO) test -run xxx -bench 'BenchmarkTiered' -benchtime 1000x ./internal/tiered/

# lint: formatting, vet, and import hygiene. Fails if any file needs
# gofmt, if vet complains, or if an internal package imports cmd.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) importcheck

# importcheck: library code must never depend on binaries. Checks the
# full transitive deps of every internal package for repro/cmd/*.
importcheck:
	@bad=$$($(GO) list -f '{{.ImportPath}}: {{join .Deps " "}}' ./internal/... | grep 'repro/cmd' || true); \
	if [ -n "$$bad" ]; then \
		echo "internal packages must not depend on cmd:"; echo "$$bad"; exit 1; \
	fi
	@echo "importcheck: ok"

# benchcheck: run the smoke benchmarks (-count 3, min is kept) and
# compare against the committed BENCH_*.json baselines. Tolerance is
# 30%; widen with BENCH_TOL=0.5 on noisy machines.
benchcheck:
	$(GO) build -o /tmp/benchcheck ./cmd/benchcheck
	( $(GO) test -run '^$$' -bench 'BenchmarkPosterior$$|BenchmarkServeHot$$' -benchtime 200x -count 3 ./internal/serve . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkStoreAppend$$|BenchmarkStoreScan$$' -benchtime 4096x -count 3 ./internal/store && \
	  $(GO) test -run '^$$' -bench 'BenchmarkHotSwap$$|BenchmarkParseDuringSwap$$' -benchtime 4096x -count 3 ./internal/lifecycle && \
	  $(GO) test -run '^$$' -bench 'BenchmarkTiered' -benchtime 200x -count 3 ./internal/tiered && \
	  $(GO) test -run '^$$' -bench 'BenchmarkRingLookup$$|BenchmarkRingLookupBounded$$|BenchmarkShardForward$$|BenchmarkShardForwardRemoteHit$$|BenchmarkShardForwardTCP$$' -benchtime 20000x -count 3 ./internal/cluster && \
	  $(GO) test -run '^$$' -bench 'BenchmarkQueryPruned$$|BenchmarkQueryFullScan$$|BenchmarkZoneMapBuild$$' -benchtime 20x -count 3 ./internal/query && \
	  $(GO) test -run '^$$' -bench 'BenchmarkConsistencyCheck$$|BenchmarkConsistencyBatch$$' -benchtime 20000x -count 3 ./internal/consistency && \
	  $(GO) test -run '^$$' -bench 'BenchmarkPublish$$|BenchmarkResolveServing$$' -benchtime 50x -count 3 ./internal/modelreg ) \
	  | /tmp/benchcheck BENCH_serve.json BENCH_inference.json BENCH_store.json BENCH_lifecycle.json BENCH_tiered.json BENCH_cluster.json BENCH_query.json BENCH_consistency.json BENCH_modelreg.json

# fuzz-smoke: replay the checked-in seed corpora and fuzz the record
# decoder briefly. Not part of verify; run before touching encoding.go.
fuzz-smoke:
	$(GO) test -run TestFuzzSeeds ./internal/store/ ./internal/query/
	$(GO) test -run TestFuzzSeedsAsRegressions ./internal/norm/
	$(GO) test -run '^$$' -fuzz FuzzRecordDecode -fuzztime 10s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzFrameScan -fuzztime 10s ./internal/store/
	$(GO) test -run '^$$' -fuzz FuzzIndexDecode -fuzztime 10s ./internal/query/
	$(GO) test -run '^$$' -fuzz FuzzNorm -fuzztime 10s ./internal/norm/

# query-diff: the differential gate for the query engine. A randomized
# store (fresh seed daily in CI) is queried with every supported
# predicate through both the index-pruned planner and the brute-force
# full scan; any byte of difference fails. The corrupt-sidecar variant
# re-runs the comparison with each sidecar failure mode injected.
query-diff:
	@echo "query-diff: QUERYDIFF_N=$(QUERYDIFF_N) QUERYDIFF_SEED=$(QUERYDIFF_SEED)"
	QUERYDIFF_N=$(QUERYDIFF_N) QUERYDIFF_SEED=$(QUERYDIFF_SEED) \
	  $(GO) test -run 'TestQueryDifferential' -count=1 ./internal/query/

# model-verify: end-to-end registry smoke over the real CLI — generate
# a small corpus, train a model, publish it into a scratch registry,
# walk it candidate -> shadow -> serving, publish a successor, and run
# a full checksum verification over everything. This is the runbook in
# README.md, executed.
model-verify:
	$(GO) build -o /tmp/whoisparse ./cmd/whoisparse
	@dir=$$(mktemp -d /tmp/modelreg.XXXXXX); set -e; \
	/tmp/whoisparse gen -n 200 -seed 7 -out $$dir/corpus.labeled; \
	/tmp/whoisparse train -in $$dir/corpus.labeled -out $$dir/parser.wmdl; \
	/tmp/whoisparse model publish -registry $$dir/reg -artifact $$dir/parser.wmdl -corpus $$dir/corpus.labeled -candidate; \
	/tmp/whoisparse model promote -registry $$dir/reg -version 1.0.0; \
	/tmp/whoisparse model promote -registry $$dir/reg -version 1.0.0; \
	/tmp/whoisparse model publish -registry $$dir/reg -artifact $$dir/parser.wmdl -version 1.1.0 -parent 1.0.0; \
	/tmp/whoisparse model verify -registry $$dir/reg; \
	/tmp/whoisparse model list -registry $$dir/reg; \
	rm -rf $$dir; \
	echo "model-verify: ok"

# cover: per-package coverage floor. Writes cover.<pkg>.out profiles
# (uploaded as CI artifacts) and fails if any gated package is below
# COVER_FLOOR percent.
cover:
	@for pkg in $(COVER_PKGS); do \
		out=cover.$$(basename $$pkg).out; \
		$(GO) test -coverprofile=$$out $$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		echo "$$pkg total coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN {exit (p+0 < f+0) ? 1 : 0}' || \
			{ echo "$$pkg is below the $(COVER_FLOOR)% coverage floor"; exit 1; }; \
	done
