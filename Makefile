# Verification targets. `make verify` is the CI entry point: tier-1
# build+test plus vet and a race-detector pass over the concurrent
# serving paths (internal/serve and the frontends that sit on it).

GO ?= go

.PHONY: verify vet build test race bench-serve

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/whoisd/... ./internal/rdap/...

bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkServe|BenchmarkParseDirect' -benchtime 1000x ./internal/serve/
