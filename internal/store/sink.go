package store

import (
	"sync"

	"repro/internal/core"
	"repro/internal/survey"
)

// SinkOptions configures a crawl sink.
type SinkOptions struct {
	// Parse, when non-nil, runs the statistical parser over each thick
	// record before persisting; nil stores the raw text with thin-record
	// facts only (domain + registrar), to be parsed later.
	Parse func(text string) *core.ParsedRecord
	// Blacklist, when non-nil, supplies the DBL membership bit for the
	// derived facts.
	Blacklist func(domain string) bool
	// ModelVersion identifies the parser behind Parse (the WMDL
	// envelope's version/CRC, e.g. "wmdl v1 crc32c=9a1b2c3d" or a
	// lifecycle version string). It is stamped into every appended
	// record's facts so later drift analysis can segment the corpus by
	// the model that parsed it. Ignored when Parse is nil.
	ModelVersion string
	// CheckpointEvery fsyncs the store after every N records (<= 0
	// means 256) — the checkpoint cadence that bounds how much a crash
	// can lose to the unsynced tail.
	CheckpointEvery int
}

// Sink is the checkpointed bridge between a crawl and a Store: workers
// hand it raw thick records concurrently; it parses (optionally),
// derives survey facts, appends, and periodically syncs, so an
// interrupted crawl resumes from its last checkpoint instead of from
// zero.
type Sink struct {
	st   *Store
	opts SinkOptions

	mu      sync.Mutex
	since   int // appends since the last checkpoint
	written uint64
}

// NewSink builds a sink over st.
func NewSink(st *Store, opts SinkOptions) *Sink {
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 256
	}
	return &Sink{st: st, opts: opts}
}

// Put persists one crawled record. registrar is the thin record's
// registrar, used as the facts fallback when the thick record does not
// carry one (§2.2: legacy thick formats omit it). Safe for concurrent
// use by crawl workers.
func (k *Sink) Put(domain, registrar, text string) error {
	rec := &Record{Domain: domain, Text: text}
	blacklisted := k.opts.Blacklist != nil && k.opts.Blacklist(domain)
	if k.opts.Parse != nil {
		rec.Parsed = k.opts.Parse(text)
		rec.Facts = survey.FactsFrom(rec.Parsed, blacklisted)
		rec.Facts.Domain = domain
		if k.opts.ModelVersion != "" {
			rec.Facts.ModelVersion = k.opts.ModelVersion
		}
	} else {
		rec.Facts = survey.Facts{Domain: domain, Blacklisted: blacklisted}
	}
	if rec.Facts.Registrar == "" {
		rec.Facts.Registrar = registrar
	}

	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.st.Append(rec); err != nil {
		return err
	}
	k.written++
	k.since++
	if k.since >= k.opts.CheckpointEvery {
		if err := k.st.Sync(); err != nil {
			return err
		}
		k.since = 0
	}
	return nil
}

// Written reports how many records the sink has appended.
func (k *Sink) Written() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.written
}

// Flush forces a final checkpoint; call once the crawl finishes.
func (k *Sink) Flush() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.since = 0
	return k.st.Sync()
}
