package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryTruncatedTailEveryOffset is the crash-recovery contract:
// write N records, then simulate a crash mid-append by truncating the
// last frame at every possible byte offset. Every reopen must recover
// exactly N-1 records and leave a tail clean enough that new appends
// land and survive a further reopen.
func TestRecoveryTruncatedTailEveryOffset(t *testing.T) {
	const n = 8
	base := t.TempDir()

	// Build a pristine store once and note where the last frame begins.
	pristine := filepath.Join(base, "pristine")
	st, err := Open(pristine, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var lastFrameStart int64
	for i := 0; i < n; i++ {
		lastFrameStart = st.Bytes()
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	fullSize := st.Bytes()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segName := "00000001.seg"
	orig, err := os.ReadFile(filepath.Join(pristine, segName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(orig)) != fullSize {
		t.Fatalf("segment is %d bytes, store reported %d", len(orig), fullSize)
	}

	for cut := lastFrameStart; cut < fullSize; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, segName), orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after cut at %d: %v", cut, err)
			}
			defer st.Close()
			if got := st.Len(); got != n-1 {
				t.Fatalf("recovered %d records, want %d", got, n-1)
			}
			wantTruncated := cut - lastFrameStart
			if got := st.RecoveredBytes(); got != wantTruncated {
				t.Fatalf("RecoveredBytes = %d, want %d", got, wantTruncated)
			}

			// The surviving records are intact and in order.
			it := st.Iter()
			var i int
			for it.Next() {
				if want := fmt.Sprintf("example%04d.com", i); it.Record().Domain != want {
					t.Fatalf("record %d: domain %q, want %q", i, it.Record().Domain, want)
				}
				i++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			it.Close()
			if i != n-1 {
				t.Fatalf("iterated %d records, want %d", i, n-1)
			}

			// The tail is clean: a fresh append lands and survives reopen.
			if err := st.Append(testRecord(100 + int(cut))); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if got := st2.Len(); got != n {
				t.Fatalf("after recovery+append: Len = %d, want %d", got, n)
			}
			if st2.RecoveredBytes() != 0 {
				t.Fatalf("second reopen truncated %d bytes", st2.RecoveredBytes())
			}
		})
	}
}

// TestRecoveryFlippedByteInTail: a bit flip inside the last frame fails
// its CRC; on the newest segment that is recovered like a torn write.
func TestRecoveryFlippedByteInTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	var lastFrameStart int64
	for i := 0; i < n; i++ {
		lastFrameStart = st.Bytes()
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[lastFrameStart+3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != n-1 {
		t.Fatalf("recovered %d records, want %d", got, n-1)
	}
}

// TestCorruptionInSealedSegmentIsFatal: damage anywhere but the newest
// segment is not a crash signature — Open must refuse, not silently drop
// records.
func TestCorruptionInSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", st.Segments())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

// TestRecoveryTornHeader: a crash between segment creation and header
// write leaves a short file; on the newest segment Open resets it.
func TestRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn creation of the next segment.
	if err := os.WriteFile(filepath.Join(dir, "00000002.seg"), segMagic[:2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if err := st2.Append(testRecord(99)); err != nil {
		t.Fatal(err)
	}
	if got := st2.Len(); got != 4 {
		t.Fatalf("Len after append = %d, want 4", got)
	}
}
