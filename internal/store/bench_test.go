package store

import (
	"testing"
)

// BenchmarkStoreAppend measures the full append path — encode, frame,
// CRC, buffered write, index maintenance — without fsync (the sink's
// checkpoint cadence owns durability).
func BenchmarkStoreAppend(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	recs := make([]*Record, 64)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScan measures per-record streaming read cost: frame
// scan, CRC verify, and full record decode over a pre-built store.
func BenchmarkStoreScan(b *testing.B) {
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const n = 4096
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	read := 0
	for read < b.N {
		it := st.Iter()
		for it.Next() && read < b.N {
			read++
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		it.Close()
	}
}
