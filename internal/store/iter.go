package store

import (
	"fmt"
	"io"
	"os"
	"sort"
)

// iterSegment is an immutable snapshot of one segment taken at iterator
// creation: readers never chase the append head, so a record appended
// after Iter() is simply not part of the snapshot. The file handle is
// opened under the store lock at snapshot time, which makes iteration
// immune to a concurrent compaction renaming or unlinking segment files
// — the fd keeps the bytes alive.
type iterSegment struct {
	f       *os.File
	path    string
	baseSeq uint64
	records uint64
	size    int64
	index   []indexEntry
}

// Iterator streams records oldest-first with bounded memory: the
// snapshot's file handles and one frame buffer, regardless of store
// size. Not safe for concurrent use; create one per goroutine and Close
// it when done.
type Iterator struct {
	segs      []iterSegment
	cur       int
	seq       uint64 // store-wide seq of the next record to yield
	skip      uint64 // frames to discard before yielding (seek remainder)
	remaining uint64 // frames left to read in the current segment
	started   bool   // current segment's scanner is positioned

	sc         *frameScanner
	pending    [][]byte // records of the current compressed block
	pendingOff int64    // the block frame's offset, for error context
	rec        *Record
	err        error
}

// snapshotLocked copies segment metadata and opens one read handle per
// segment. Callers hold s.mu.
func (s *Store) snapshotLocked() ([]iterSegment, error) {
	segs := make([]iterSegment, 0, len(s.segments))
	for _, seg := range s.segments {
		f, err := os.Open(seg.path)
		if err != nil {
			for i := range segs {
				segs[i].f.Close()
			}
			if os.IsNotExist(err) {
				// A compaction (or an operator) removed the file between
				// the reader deciding to scan and the open — surface the
				// typed condition, not a raw ENOENT.
				return nil, fmt.Errorf("store: iterate %s: %w", seg.path, ErrSegmentCompacted)
			}
			return nil, fmt.Errorf("store: iterate: %w", err)
		}
		segs = append(segs, iterSegment{
			f:       f,
			path:    seg.path,
			baseSeq: seg.baseSeq,
			records: seg.records,
			size:    seg.size,
			index:   append([]indexEntry(nil), seg.index...),
		})
	}
	return segs, nil
}

// Iter returns an iterator over every record committed before the call.
func (s *Store) Iter() *Iterator { return s.IterFrom(0) }

// IterFrom returns an iterator starting at store-wide record seq (0 is
// the oldest). The sparse index narrows the scan to at most IndexEvery
// frames of overshoot. Seqs are positional and renumber after
// compaction.
func (s *Store) IterFrom(seq uint64) *Iterator {
	s.mu.Lock()
	segs, err := s.snapshotLocked()
	s.mu.Unlock()
	if err != nil {
		return &Iterator{err: err}
	}
	return newIterator(segs, seq)
}

// IterNewestSegment iterates only the newest non-empty segment — the
// serve warm-start path, which wants the most recently written records
// without walking the whole store.
func (s *Store) IterNewestSegment() *Iterator {
	s.mu.Lock()
	segs, err := s.snapshotLocked()
	s.mu.Unlock()
	if err != nil {
		return &Iterator{err: err}
	}
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i].records > 0 {
			for j := 0; j < i; j++ {
				segs[j].f.Close()
			}
			return newIterator(segs[i:i+1], segs[i].baseSeq)
		}
	}
	for i := range segs {
		segs[i].f.Close()
	}
	return &Iterator{}
}

func newIterator(segs []iterSegment, seq uint64) *Iterator {
	it := &Iterator{segs: segs, seq: seq}
	// Locate the segment holding seq and the nearest indexed frame at or
	// below it; the scan skips the remainder.
	for it.cur < len(segs) && segs[it.cur].baseSeq+segs[it.cur].records <= seq {
		it.cur++
	}
	if it.cur < len(segs) {
		seg := &segs[it.cur]
		rel := seq - seg.baseSeq
		i := sort.Search(len(seg.index), func(i int) bool { return seg.index[i].seq > rel })
		start := indexEntry{off: segHeaderLen}
		if i > 0 {
			start = seg.index[i-1]
		}
		it.skip = rel - start.seq
		it.remaining = seg.records - start.seq
		it.err = it.position(seg, start.off)
		it.started = it.err == nil
	}
	return it
}

// position seeks the current segment's handle to off and arms the
// scanner, bounded to the snapshot's committed size so frames written
// after the snapshot stay invisible.
func (it *Iterator) position(seg *iterSegment, off int64) error {
	if _, err := seg.f.Seek(off, 0); err != nil {
		return fmt.Errorf("store: iterate seek: %w", err)
	}
	it.sc = newFrameScanner(io.LimitReader(seg.f, seg.size-off), off)
	it.pending = nil
	return nil
}

// Next advances to the next record, reporting false at the end of the
// snapshot or on error (check Err).
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for {
		// Drain the current compressed block before touching the scanner.
		if len(it.pending) > 0 {
			payload := it.pending[0]
			it.pending = it.pending[1:]
			it.remaining--
			if it.skip > 0 {
				it.skip--
				continue
			}
			rec, err := decodeRecord(payload)
			if err != nil {
				it.err = fmt.Errorf("store: %s at offset %d: %w", it.segs[it.cur].path, it.pendingOff, err)
				return false
			}
			it.rec = rec
			it.seq++
			return true
		}
		if it.cur >= len(it.segs) {
			return false
		}
		seg := &it.segs[it.cur]
		if !it.started {
			if seg.records == 0 {
				it.cur++
				continue
			}
			it.skip = 0
			it.remaining = seg.records
			if it.err = it.position(seg, segHeaderLen); it.err != nil {
				return false
			}
			it.started = true
		}
		if it.remaining == 0 {
			it.cur++
			it.started = false
			continue
		}
		payload, off, err := it.sc.next()
		if err != nil {
			// The snapshot promised it.remaining more frames; EOF here
			// means the file shrank underneath us — report it.
			it.err = fmt.Errorf("store: %s at offset %d: %w", seg.path, off, err)
			return false
		}
		if isBlockPayload(payload) {
			// decodeBlock copies into a fresh buffer, so the pending
			// queue survives the scanner reusing its frame buffer.
			blockRecs, derr := decodeBlock(payload)
			if derr != nil {
				it.err = fmt.Errorf("store: %s at offset %d: %w", seg.path, off, derr)
				return false
			}
			it.pending = blockRecs
			it.pendingOff = off
			continue
		}
		it.remaining--
		if it.skip > 0 {
			it.skip--
			continue
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			it.err = fmt.Errorf("store: %s at offset %d: %w", seg.path, off, err)
			return false
		}
		it.rec = rec
		it.seq++
		return true
	}
}

// Record returns the record Next advanced to. Valid until the next call
// to Next; the caller owns it (each record is freshly decoded).
func (it *Iterator) Record() *Record { return it.rec }

// Seq returns the store-wide sequence number of the record Next just
// yielded.
func (it *Iterator) Seq() uint64 { return it.seq - 1 }

// Err reports the first error the iterator hit, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases every file handle the snapshot holds. Safe to call
// repeatedly.
func (it *Iterator) Close() error {
	for i := range it.segs {
		if it.segs[i].f != nil {
			it.segs[i].f.Close()
			it.segs[i].f = nil
		}
	}
	it.sc = nil
	return nil
}
