package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrSegmentCompacted is surfaced when a reader reaches for a segment
// that a compaction (or compression rewrite) has already removed or
// replaced — the typed form of the ENOENT a slow reader racing the
// background compactor would otherwise see. Iterator snapshots hold file
// descriptors precisely to avoid this; paths that re-open by id
// (OpenSegment, the query engine's sidecar builder) report it so callers
// can re-plan instead of failing on a raw *os.PathError.
var ErrSegmentCompacted = errors.New("store: segment compacted away")

// SegmentInfo is the public snapshot of one segment's metadata.
type SegmentInfo struct {
	ID      uint64
	Path    string
	BaseSeq uint64 // store-wide seq of the segment's first record
	Records uint64
	Size    int64 // committed bytes
	Sealed  bool  // false only for the append target
	Blocks  uint64
	Plain   uint64
}

// SegmentInfos reports every segment's committed metadata at one
// instant. The last entry is the active (unsealed) segment.
func (s *Store) SegmentInfos() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, 0, len(s.segments))
	for i, seg := range s.segments {
		out = append(out, SegmentInfo{
			ID:      seg.id,
			Path:    seg.path,
			BaseSeq: seg.baseSeq,
			Records: seg.records,
			Size:    seg.size,
			Sealed:  i != len(s.segments)-1,
			Blocks:  seg.blocks,
			Plain:   seg.plain,
		})
	}
	return out
}

// SegmentReader is a point-in-time read handle on one segment: the file
// descriptor and committed size are captured under the store lock, so —
// exactly like Iterator snapshots — a concurrent rotation, compaction,
// or compression rewrite cannot change what this reader sees.
type SegmentReader struct {
	f    *os.File
	info SegmentInfo
}

// OpenSegment opens a snapshot of the segment with the given id. A
// segment that no longer exists (merged or dropped by compaction)
// reports ErrSegmentCompacted.
func (s *Store) OpenSegment(id uint64) (*SegmentReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, seg := range s.segments {
		if seg.id != id {
			continue
		}
		return openSegmentLocked(seg, i != len(s.segments)-1)
	}
	return nil, fmt.Errorf("%w: segment %d", ErrSegmentCompacted, id)
}

// OpenSegments opens one consistent snapshot of every segment: all
// handles and sizes are captured under a single lock acquisition, so the
// set reflects exactly the records committed at one instant.
func (s *Store) OpenSegments() ([]*SegmentReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SegmentReader, 0, len(s.segments))
	for i, seg := range s.segments {
		r, err := openSegmentLocked(seg, i != len(s.segments)-1)
		if err != nil {
			for _, r := range out {
				r.Close()
			}
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func openSegmentLocked(seg *segment, sealed bool) (*SegmentReader, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrSegmentCompacted, seg.path)
		}
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	return &SegmentReader{f: f, info: SegmentInfo{
		ID:      seg.id,
		Path:    seg.path,
		BaseSeq: seg.baseSeq,
		Records: seg.records,
		Size:    seg.size,
		Sealed:  sealed,
		Blocks:  seg.blocks,
		Plain:   seg.plain,
	}}, nil
}

// Info returns the segment metadata captured at open time.
func (r *SegmentReader) Info() SegmentInfo { return r.info }

// Close releases the snapshot's file handle. Safe to call repeatedly.
func (r *SegmentReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// fingerprintSample is how much of each end of a segment the fingerprint
// hashes. Appends and truncations change the size; compaction and
// compression rewrite the content wholesale — all of which move at least
// one of (head bytes, tail bytes, length).
const fingerprintSample = 4096

// Fingerprint is a cheap content identity for the snapshot: CRC32C over
// the first and last fingerprintSample bytes plus the committed size.
// Derived artifacts (zone maps, secondary indexes) record it so a stale
// or foreign sidecar is detected — and regenerated — rather than
// trusted, without re-reading the whole segment on every query.
func (r *SegmentReader) Fingerprint() (uint32, error) {
	h := crc32.New(castagnoli)
	head := int64(fingerprintSample)
	if head > r.info.Size {
		head = r.info.Size
	}
	buf := make([]byte, head)
	if _, err := r.f.ReadAt(buf, 0); err != nil {
		return 0, fmt.Errorf("store: fingerprint: %w", err)
	}
	h.Write(buf)
	tailStart := r.info.Size - fingerprintSample
	if tailStart < 0 {
		tailStart = 0
	}
	tail := make([]byte, r.info.Size-tailStart)
	if _, err := r.f.ReadAt(tail, tailStart); err != nil {
		return 0, fmt.Errorf("store: fingerprint: %w", err)
	}
	h.Write(tail)
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(r.info.Size))
	h.Write(sz[:])
	return h.Sum32(), nil
}

// Frames walks every frame of the snapshot in order, handing fn the
// frame's byte offset and the record payloads it carries (one for a
// plain frame, many for a compressed block). Payloads are valid only
// during the callback. Returning a non-nil error stops the walk.
func (r *SegmentReader) Frames(fn func(off int64, payloads [][]byte) error) error {
	if _, err := r.f.Seek(segHeaderLen, 0); err != nil {
		return fmt.Errorf("store: segment seek: %w", err)
	}
	sc := newFrameScanner(io.LimitReader(r.f, r.info.Size-segHeaderLen), segHeaderLen)
	var single [1][]byte
	for {
		payload, off, err := sc.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: %s at offset %d: %w", r.info.Path, off, err)
		}
		var payloads [][]byte
		if isBlockPayload(payload) {
			payloads, err = decodeBlock(payload)
			if err != nil {
				return fmt.Errorf("store: %s at offset %d: %w", r.info.Path, off, err)
			}
		} else {
			single[0] = payload
			payloads = single[:]
		}
		if err := fn(off, payloads); err != nil {
			return err
		}
	}
}

// FrameAt reads the single frame starting at off and returns its record
// payloads — the posting-seek primitive under index-pruned scans. The
// offset must land exactly on a frame boundary inside the snapshot;
// anything else fails the frame CRC (or bounds check) and errors.
func (r *SegmentReader) FrameAt(off int64) ([][]byte, error) {
	if off < segHeaderLen || off >= r.info.Size {
		return nil, fmt.Errorf("store: frame offset %d outside segment [%d, %d)", off, segHeaderLen, r.info.Size)
	}
	if _, err := r.f.Seek(off, 0); err != nil {
		return nil, fmt.Errorf("store: segment seek: %w", err)
	}
	sc := newFrameScanner(io.LimitReader(r.f, r.info.Size-off), off)
	payload, _, err := sc.next()
	if err != nil {
		return nil, fmt.Errorf("store: %s at offset %d: %w", r.info.Path, off, err)
	}
	if isBlockPayload(payload) {
		return decodeBlock(payload)
	}
	// Copy: the scanner buffer dies with this call frame's scanner, but
	// hand the caller stable bytes anyway for symmetry with blocks.
	return [][]byte{append([]byte(nil), payload...)}, nil
}
