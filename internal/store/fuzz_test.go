package store

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// fuzzSeeds are valid encoded payloads plus hand-built corruptions; the
// checked-in corpus under testdata/fuzz extends them with generated
// crashers. Every seed doubles as a regression input on plain `go test`.
func fuzzSeeds() [][]byte {
	full := appendRecord(nil, testRecord(7))
	thin := appendRecord(nil, &Record{Domain: "a.com"})
	seeds := [][]byte{
		full,
		thin,
		{},                                      // empty payload
		{recordKind},                            // kind only, no flags
		{0xff, 0x00},                            // unknown kind
		full[:len(full)/2],                      // truncated mid-record
		append(append([]byte{}, full...), 0x01), // trailing garbage
	}
	// Flip one byte at several positions of a valid payload.
	for _, pos := range []int{0, 1, 2, len(full) / 3, len(full) - 1} {
		b := append([]byte(nil), full...)
		b[pos] ^= 0x80
		seeds = append(seeds, b)
	}
	// Length varint claiming far more bytes than remain.
	seeds = append(seeds, []byte{recordKind, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	return seeds
}

// FuzzRecordDecode asserts the decoder's only contract under arbitrary
// bytes: return a record or an error — never panic, never over-read
// (guaranteed structurally by the bounds-checked reader), and round-trip
// anything it accepts.
func FuzzRecordDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		// Accepted payloads must re-encode and decode to the same record:
		// the encoder and decoder stay exact mirrors.
		re := appendRecord(nil, rec)
		rec2, err := decodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", rec, rec2)
		}
	})
}

// FuzzFrameScan feeds arbitrary bytes to the frame scanner as if they
// were a segment body: it must terminate with io.EOF or a frame error,
// never panic or loop, and every intact frame it yields must carry a
// matching checksum by construction.
func FuzzFrameScan(f *testing.F) {
	// Valid single and double frames, plus torn and corrupt variants.
	one := appendFrame(nil, appendRecord(nil, testRecord(1)))
	two := appendFrame(append([]byte(nil), one...), appendRecord(nil, testRecord(2)))
	f.Add(one)
	f.Add(two)
	f.Add(one[:len(one)-2])                     // torn CRC
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // varint too long
	f.Add([]byte{0x05, 1, 2, 3})                // length beyond input
	flip := append([]byte(nil), one...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := newFrameScanner(bytes.NewReader(data), 0)
		var frames int
		for {
			payload, start, err := sc.next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrBadChecksum) && !errors.Is(err, ErrFrameTooBig) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			if start < 0 || start > int64(len(data)) {
				t.Fatalf("frame start %d outside input of %d bytes", start, len(data))
			}
			_ = payload
			frames++
			if frames > len(data) {
				t.Fatal("more frames than input bytes")
			}
		}
	})
}

// TestFuzzSeedsAsRegressions runs every seed through the decoder even
// when fuzzing is off, so `go test` alone exercises the corpus.
func TestFuzzSeedsAsRegressions(t *testing.T) {
	for i, s := range fuzzSeeds() {
		rec, err := decodeRecord(s)
		if err == nil && rec.Domain == "" && s[0] == recordKind {
			// Valid records with empty domains are fine; just ensure no
			// panic happened to get here.
			continue
		}
		_ = rec
		_ = i
	}
}
