package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options tunes a Store. The zero value picks production defaults; tests
// shrink SegmentBytes to exercise rotation and compaction.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment;
	// <= 0 means 64 MiB.
	SegmentBytes int64
	// IndexEvery is the sparse-index stride: one in-memory offset entry
	// per this many records; <= 0 means 1024. At the paper's 102M-record
	// scale the default keeps the index near 100K entries per run.
	IndexEvery int
	// SyncEvery fsyncs the active segment after every N appends;
	// 0 means only on Sync/Close (the crawler sink calls Sync at its
	// own checkpoints).
	SyncEvery int
	// AutoCompactSegments, when > 0, kicks off a background compaction
	// whenever a rotation leaves at least this many sealed segments.
	AutoCompactSegments int
	// Compress rewrites sealed segments into flate block frames in the
	// background after every rotation (and makes compaction emit
	// compressed output). The active segment always stays plain, so
	// crash recovery keeps byte-granular tail truncation.
	Compress bool
	// BlockRecords is the records-per-compressed-block target for
	// Compress / CompressSealed; <= 0 means 256.
	BlockRecords int
	// Metrics is the observability registry (store.* metrics, DESIGN.md
	// §5c naming). Nil means a private registry reachable via Metrics().
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = 1024
	}
	if o.BlockRecords <= 0 {
		o.BlockRecords = 256
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// indexEntry is one sparse-index point: record seq -> byte offset within
// its segment.
type indexEntry struct {
	seq uint64 // segment-relative record index
	off int64
}

// segment is the in-memory state of one on-disk segment file.
type segment struct {
	path    string
	id      uint64
	baseSeq uint64 // store-wide seq of the segment's first record
	records uint64
	size    int64 // committed bytes (header + intact frames)
	index   []indexEntry
	plain   uint64 // plain record frames (compression candidates)
	blocks  uint64 // compressed block frames
}

// Store is an append-only, segmented, CRC-checked record log with
// crash-safe recovery. One goroutine may append while any number
// iterate; all methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex // guards segments, active file, counters
	segments    []*segment
	active      *os.File
	unsynced    int
	closed      bool
	recovered   int64 // bytes truncated from a torn tail at Open
	compactWG   sync.WaitGroup
	compactBusy bool

	onSeal func(id uint64) // see SetOnSeal

	reg *obs.Registry
	met storeMetrics
}

// storeMetrics are the store.* observability handles.
type storeMetrics struct {
	appends       *obs.Counter
	appendSeconds *obs.Histogram
	frameBytes    *obs.Histogram
	rotations     *obs.Counter
	compactions   *obs.Counter
	compactSecs   *obs.Histogram
	truncated     *obs.Counter
	compressions  *obs.Counter
	compressSecs  *obs.Histogram
	compressSaved *obs.Counter
}

func (m *storeMetrics) register(reg *obs.Registry) {
	m.appends = reg.Counter("store.appends")
	m.appendSeconds = reg.Histogram("store.append.seconds", obs.DurationBounds())
	m.frameBytes = reg.Histogram("store.frame.bytes", obs.SizeBounds())
	m.rotations = reg.Counter("store.segment.rotations")
	m.compactions = reg.Counter("store.compactions")
	m.compactSecs = reg.Histogram("store.compact.seconds", obs.DurationBounds())
	m.truncated = reg.Counter("store.recovery.truncated.bytes")
	m.compressions = reg.Counter("store.compressions")
	m.compressSecs = reg.Histogram("store.compress.seconds", obs.DurationBounds())
	m.compressSaved = reg.Counter("store.compress.saved.bytes")
}

const segSuffix = ".seg"

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d%s", id, segSuffix))
}

// Open opens (creating if needed) the store in dir, scanning every
// segment to rebuild the sparse index and record counts. A torn tail on
// the newest segment — the signature of a crash mid-append — is
// truncated away; corruption anywhere else is an error.
func Open(dir string, opts Options) (*Store, error) {
	o := opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, opts: o, reg: o.Metrics}
	s.met.register(s.reg)

	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		ids = []uint64{1}
		if err := writeSegmentHeader(segPath(dir, 1)); err != nil {
			return nil, err
		}
	}
	var baseSeq uint64
	for i, id := range ids {
		seg, truncated, err := scanSegment(segPath(dir, id), id, o.IndexEvery, i == len(ids)-1)
		if err != nil {
			return nil, err
		}
		seg.baseSeq = baseSeq
		baseSeq += seg.records
		s.segments = append(s.segments, seg)
		s.recovered += truncated
	}
	if s.recovered > 0 {
		s.met.truncated.Add(uint64(s.recovered))
	}

	last := s.segments[len(s.segments)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("store: open active segment: %w", err)
	}
	if _, err := f.Seek(last.size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek active segment: %w", err)
	}
	s.active = f

	s.reg.GaugeFunc("store.bytes", func() float64 { return float64(s.Bytes()) })
	s.reg.GaugeFunc("store.segments", func() float64 { return float64(s.Segments()) })
	s.reg.GaugeFunc("store.records", func() float64 { return float64(s.Len()) })
	return s, nil
}

// listSegments returns the sorted segment ids present in dir.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func writeSegmentHeader(path string) error {
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic[:])
	hdr[4] = segVersion
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync segment header: %w", err)
	}
	return f.Close()
}

// scanSegment walks one segment file, validating every frame and
// building the sparse index. When isLast (the append target), a torn
// tail — including a half-written header on a freshly created file — is
// truncated; on sealed segments any damage is fatal.
func scanSegment(path string, id uint64, indexEvery int, isLast bool) (*segment, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("store: stat segment: %w", err)
	}
	fileSize := fi.Size()

	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || [4]byte(hdr[:4]) != segMagic || hdr[4] != segVersion {
		if isLast && fileSize < segHeaderLen {
			// Crash between create and header write: reset the file.
			if err := os.Truncate(path, 0); err != nil {
				return nil, 0, fmt.Errorf("store: reset torn header: %w", err)
			}
			if err := rewriteHeader(path); err != nil {
				return nil, 0, err
			}
			return &segment{path: path, id: id, size: segHeaderLen}, fileSize, nil
		}
		return nil, 0, fmt.Errorf("store: %s: bad segment header", path)
	}

	seg := &segment{path: path, id: id, size: segHeaderLen}
	sc := newFrameScanner(f, segHeaderLen)
	var nextIndexAt uint64
	for {
		payload, start, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if isLast {
				// Torn tail (or tail corruption indistinguishable from
				// one): truncate to the last intact frame.
				if terr := os.Truncate(path, start); terr != nil {
					return nil, 0, fmt.Errorf("store: truncate torn tail: %w", terr)
				}
				return seg, fileSize - start, nil
			}
			return nil, 0, fmt.Errorf("store: %s at offset %d: %w", path, start, err)
		}
		// Validate the payload decodes before committing to it; a frame
		// with a valid CRC but an undecodable record is corruption, not a
		// torn write, yet on the tail we still prefer recovery. Block
		// frames validate every record they carry, so a torn block drops
		// whole (recovery granularity is one frame either way).
		var count uint64
		if isBlockPayload(payload) {
			payloads, derr := decodeBlock(payload)
			if derr == nil {
				for _, p := range payloads {
					if _, derr = decodeRecord(p); derr != nil {
						break
					}
				}
			}
			if derr != nil {
				if isLast {
					if terr := os.Truncate(path, start); terr != nil {
						return nil, 0, fmt.Errorf("store: truncate bad tail block: %w", terr)
					}
					return seg, fileSize - start, nil
				}
				return nil, 0, fmt.Errorf("store: %s at offset %d: %w", path, start, derr)
			}
			count = uint64(len(payloads))
			seg.blocks++
		} else {
			if _, derr := decodeRecord(payload); derr != nil {
				if isLast {
					if terr := os.Truncate(path, start); terr != nil {
						return nil, 0, fmt.Errorf("store: truncate bad tail record: %w", terr)
					}
					return seg, fileSize - start, nil
				}
				return nil, 0, fmt.Errorf("store: %s at offset %d: %w", path, start, derr)
			}
			count = 1
			seg.plain++
		}
		if seg.records >= nextIndexAt {
			seg.index = append(seg.index, indexEntry{seq: seg.records, off: start})
			nextIndexAt = seg.records + uint64(indexEvery)
		}
		seg.records += count
		seg.size = sc.off
	}
	return seg, 0, nil
}

func rewriteHeader(path string) error {
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic[:])
	hdr[4] = segVersion
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: rewrite header: %w", err)
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: rewrite header: %w", err)
	}
	return f.Close()
}

// Metrics returns the registry the store records into.
func (s *Store) Metrics() *obs.Registry { return s.reg }

// Len reports the number of stored records, including superseded
// duplicates not yet removed by compaction.
func (s *Store) Len() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, seg := range s.segments {
		n += seg.records
	}
	return n
}

// Segments reports how many segment files the store currently spans.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segments)
}

// Bytes reports the committed on-disk size across all segments.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, seg := range s.segments {
		n += seg.size
	}
	return n
}

// RecoveredBytes reports how many torn-tail bytes Open truncated.
func (s *Store) RecoveredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Append encodes rec and appends it to the active segment, rotating
// first when the segment is over the size threshold. The record is
// durable after the next Sync (or per Options.SyncEvery).
func (s *Store) Append(rec *Record) error {
	start := time.Now()
	payload := appendRecord(nil, rec)
	frame := appendFrame(make([]byte, 0, len(payload)+8), payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	active := s.segments[len(s.segments)-1]
	if active.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = s.segments[len(s.segments)-1]
	}
	if _, err := s.active.Write(frame); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if active.records%uint64(s.opts.IndexEvery) == 0 {
		active.index = append(active.index, indexEntry{seq: active.records, off: active.size})
	}
	active.size += int64(len(frame))
	active.records++
	active.plain++
	s.unsynced++
	if s.opts.SyncEvery > 0 && s.unsynced >= s.opts.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	s.met.appends.Inc()
	s.met.appendSeconds.ObserveSince(start)
	s.met.frameBytes.Observe(float64(len(frame)))
	return nil
}

// rotateLocked seals the active segment and starts a fresh one. Callers
// hold s.mu.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: seal segment: %w", err)
	}
	last := s.segments[len(s.segments)-1]
	id := last.id + 1
	path := segPath(s.dir, id)
	if err := writeSegmentHeader(path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: open new segment: %w", err)
	}
	if _, err := f.Seek(segHeaderLen, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seek new segment: %w", err)
	}
	s.active = f
	s.segments = append(s.segments, &segment{
		path:    path,
		id:      id,
		baseSeq: last.baseSeq + last.records,
		size:    segHeaderLen,
	})
	s.met.rotations.Inc()
	// The previous active segment is now sealed: tell the seal hook (the
	// query engine builds sidecar indexes off it) and, under
	// Options.Compress, rewrite it into block frames in the background.
	if fn := s.onSeal; fn != nil {
		sealedID := last.id
		go fn(sealedID)
	}
	if s.opts.Compress && !s.compactBusy {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			_, _ = s.CompressSealed()
		}()
	}
	// Background compaction trigger. Compact itself serializes via
	// compactBusy (a concurrent call no-ops), so a double spawn is
	// harmless; rotations from inside a running Compact never spawn.
	if n := s.opts.AutoCompactSegments; n > 0 && len(s.segments)-1 >= n && !s.compactBusy {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			_, _ = s.Compact()
		}()
	}
	return nil
}

// SetOnSeal registers fn to be called (each time in its own goroutine)
// with a segment id whenever that segment becomes sealed — by rotation —
// or a sealed segment's bytes are rewritten in place by compaction or
// compression. Derived artifacts keyed to a segment's content (the query
// engine's zone maps and secondary indexes) hang off this hook to stay
// fresh without polling.
func (s *Store) SetOnSeal(fn func(id uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onSeal = fn
}

// Dir reports the store's directory — sidecar artifacts (zone maps,
// secondary indexes) live alongside the segments they describe.
func (s *Store) Dir() string { return s.dir }

// syncLocked fsyncs the active segment. Callers hold s.mu.
func (s *Store) syncLocked() error {
	if s.unsynced == 0 {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.unsynced = 0
	return nil
}

// Sync makes every appended record durable.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncLocked()
}

// Close syncs and closes the store. Any background compaction finishes
// first.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	s.compactWG.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Domains streams every stored domain (duplicates included, oldest
// first) to fn until it returns false or the snapshot is exhausted. The
// whoiscrawl -resume path uses this to skip already-persisted domains.
func (s *Store) Domains(fn func(domain string) bool) error {
	it := s.Iter()
	defer it.Close()
	for it.Next() {
		if !fn(it.Record().Domain) {
			return it.Err()
		}
	}
	return it.Err()
}
