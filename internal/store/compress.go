package store

import (
	"fmt"
	"os"
	"time"
)

// CompressStats reports one CompressSealed pass.
type CompressStats struct {
	// Segments is how many sealed segments were rewritten; Records how
	// many records they carry. BytesIn/BytesOut are their on-disk sizes
	// before and after.
	Segments int
	Records  uint64
	BytesIn  int64
	BytesOut int64
}

// CompressSealed rewrites every sealed segment still holding plain
// record frames into flate block frames of Options.BlockRecords records
// each. Record content, count, and order are untouched — only the frame
// envelope changes — so iterators, surveys, and the query engine read a
// compressed segment identically to a plain one (sidecar fingerprints
// change, which marks derived indexes stale for rebuild).
//
// Crash safety mirrors Compact: each segment is rewritten to a temp
// file, fsynced, and renamed over the original; a crash between segments
// leaves a mix of compressed and plain segments, all intact. Appends
// proceed concurrently — the active segment is never touched. Runs of
// Compact and CompressSealed serialize against each other; a concurrent
// call no-ops.
func (s *Store) CompressSealed() (CompressStats, error) {
	var stats CompressStats
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return stats, fmt.Errorf("store: compress on closed store")
	}
	if s.compactBusy {
		s.mu.Unlock()
		return stats, nil
	}
	s.compactBusy = true
	// Candidates: sealed segments (all but the last) with plain frames.
	// Segment pointers are stable while compactBusy is held — rotation
	// only appends to the slice and compaction/compression serialize.
	var todo []*segment
	for _, seg := range s.segments[:len(s.segments)-1] {
		if seg.plain > 0 && seg.records > 0 {
			todo = append(todo, seg)
		}
	}
	s.mu.Unlock()
	defer s.clearCompactBusy()

	for _, seg := range todo {
		if err := s.compressSegment(seg, &stats); err != nil {
			return stats, err
		}
	}
	if stats.Segments > 0 {
		s.met.compressions.Add(uint64(stats.Segments))
		s.met.compressSecs.ObserveSince(start)
		if saved := stats.BytesIn - stats.BytesOut; saved > 0 {
			s.met.compressSaved.Add(uint64(saved))
		}
	}
	return stats, nil
}

// compressSegment rewrites one sealed segment into block frames and
// swaps it in place. Readers holding pre-swap snapshots keep their fds
// on the old bytes; new snapshots see the compressed file.
func (s *Store) compressSegment(seg *segment, stats *CompressStats) error {
	s.mu.Lock()
	r, err := openSegmentLocked(seg, true)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	defer r.Close()
	info := r.Info()

	tmpPath := seg.path + ".ztmp"
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compress temp: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(tmpPath) // no-op after a successful rename
	}()
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic[:])
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: compress header: %w", err)
	}
	out := &segment{size: segHeaderLen}
	bw := newBlockWriter(f, out, s.opts.BlockRecords, s.opts.IndexEvery)
	err = r.Frames(func(_ int64, payloads [][]byte) error {
		for _, p := range payloads {
			if err := bw.add(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := bw.flush(); err != nil {
		return err
	}
	if out.records != info.Records {
		return fmt.Errorf("store: compress %s: rewrote %d of %d records", seg.path, out.records, info.Records)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: compress sync: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmpPath, seg.path); err != nil {
		return fmt.Errorf("store: compress swap: %w", err)
	}
	if d, derr := os.Open(s.dir); derr == nil {
		_ = d.Sync() // best-effort directory durability for the swap
		d.Close()
	}
	seg.size = out.size
	seg.index = out.index
	seg.plain = 0
	seg.blocks = out.blocks
	stats.Segments++
	stats.Records += info.Records
	stats.BytesIn += info.Size
	stats.BytesOut += out.size
	if fn := s.onSeal; fn != nil {
		id := seg.id
		go fn(id)
	}
	return nil
}

// blockFlushBytes flushes a pending block early once its raw payloads
// reach this size, keeping single frames (and decode memory) bounded
// regardless of record sizes.
const blockFlushBytes = 4 << 20

// blockWriter batches record payloads into compressed block frames,
// maintaining the destination segment's metadata (record count, size,
// sparse index) as it goes.
type blockWriter struct {
	f            *os.File
	seg          *segment
	blockRecords int
	indexEvery   uint64
	nextIndexAt  uint64

	batch      [][]byte
	batchBytes int
	frame      []byte
}

func newBlockWriter(f *os.File, seg *segment, blockRecords, indexEvery int) *blockWriter {
	return &blockWriter{f: f, seg: seg, blockRecords: blockRecords, indexEvery: uint64(indexEvery)}
}

// add queues one record payload (copied) and flushes a full block.
func (bw *blockWriter) add(payload []byte) error {
	// Copy: callers reuse payload memory across frames.
	bw.batch = append(bw.batch, append([]byte(nil), payload...))
	bw.batchBytes += len(payload)
	if len(bw.batch) >= bw.blockRecords || bw.batchBytes >= blockFlushBytes {
		return bw.flush()
	}
	return nil
}

// flush writes the pending batch as one block frame.
func (bw *blockWriter) flush() error {
	if len(bw.batch) == 0 {
		return nil
	}
	payload, err := appendBlock(nil, bw.batch)
	if err != nil {
		return err
	}
	bw.frame = appendFrame(bw.frame[:0], payload)
	if _, err := bw.f.Write(bw.frame); err != nil {
		return fmt.Errorf("store: compress write: %w", err)
	}
	if bw.seg.records >= bw.nextIndexAt {
		bw.seg.index = append(bw.seg.index, indexEntry{seq: bw.seg.records, off: bw.seg.size})
		bw.nextIndexAt = bw.seg.records + bw.indexEvery
	}
	bw.seg.size += int64(len(bw.frame))
	bw.seg.records += uint64(len(bw.batch))
	bw.seg.blocks++
	bw.batch = bw.batch[:0]
	bw.batchBytes = 0
	return nil
}
