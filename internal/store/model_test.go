package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

// trainedParser trains once per test binary on a small synthetic corpus.
var trainedParser *core.Parser

func getParser(t testing.TB) *core.Parser {
	t.Helper()
	if trainedParser == nil {
		recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: 42})
		p, _, err := core.Train(recs, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		trainedParser = p
	}
	return trainedParser
}

func TestModelRoundTrip(t *testing.T) {
	p := getParser(t)
	path := filepath.Join(t.TempDir(), "parser.model")
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	if !IsModelArtifact(path) {
		t.Fatal("saved artifact does not sniff as one")
	}
	p2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same model → same parse of the same text.
	text := "Domain Name: roundtrip.com\nRegistrar: Example Registrar\nRegistrant Name: Jane Roe\nRegistrant Country: US\n"
	a, b := p.Parse(text), p2.Parse(text)
	if a.DomainName != b.DomainName || a.Registrar != b.Registrar ||
		a.Registrant.Name != b.Registrant.Name || a.Registrant.Country != b.Registrant.Country {
		t.Fatalf("reloaded model parses differently:\n %+v\n %+v", a, b)
	}
	if got := uint64(p2.BlockModel().NumFeatures()); got != uint64(p.BlockModel().NumFeatures()) {
		t.Fatalf("feature dims changed across round trip: %d", got)
	}
}

func TestModelRejectsCorruption(t *testing.T) {
	p := getParser(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "parser.model")
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"flipped payload byte", func(b []byte) []byte {
			b[modelHeaderLen+len(b)/2] ^= 0x01
			return b
		}, ErrModelChecksum},
		{"truncated payload", func(b []byte) []byte {
			return b[:len(b)-10]
		}, ErrModelChecksum},
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}, ErrNotModel},
		{"future version", func(b []byte) []byte {
			b[4] = 0xff
			return b
		}, ErrModelVersion},
		{"wrong dims in header", func(b []byte) []byte {
			b[6]++ // first-level feature count
			return b
		}, ErrModelDimensions},
		{"short header", func(b []byte) []byte {
			return b[:10]
		}, ErrNotModel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			_, err := ReadModel(bytes.NewReader(mutated))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestModelLegacySniff(t *testing.T) {
	// A legacy bare-gob model file must not sniff as an artifact, so the
	// Load fallback path picks the right decoder.
	p := getParser(t)
	path := filepath.Join(t.TempDir(), "legacy.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if IsModelArtifact(path) {
		t.Fatal("bare gob sniffed as versioned artifact")
	}
	if _, err := LoadModel(path); !errors.Is(err, ErrNotModel) {
		t.Fatalf("LoadModel on legacy gob: err = %v, want ErrNotModel", err)
	}
}

func TestSaveModelIsAtomic(t *testing.T) {
	p := getParser(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "parser.model")
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: no .tmp litter, artifact still valid.
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want 1", len(entries))
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatal(err)
	}
}

func TestStatModelMatchesArtifact(t *testing.T) {
	p := getParser(t)
	path := filepath.Join(t.TempDir(), "parser.model")
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	info, err := StatModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.IsZero() {
		t.Fatal("StatModel returned zero identity for a real artifact")
	}
	if info.FormatVersion != modelVersion {
		t.Errorf("FormatVersion = %d, want %d", info.FormatVersion, modelVersion)
	}
	if got, want := info.BlockFeatures, uint64(p.BlockModel().NumFeatures()); got != want {
		t.Errorf("BlockFeatures = %d, want %d", got, want)
	}
	if got, want := info.FieldFeatures, uint64(p.FieldModel().NumFeatures()); got != want {
		t.Errorf("FieldFeatures = %d, want %d", got, want)
	}
	// The header CRC must match a CRC computed over the payload itself.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := crc32.Checksum(raw[modelHeaderLen:], castagnoli); got != info.CRC32C {
		t.Errorf("CRC32C = %08x, payload hashes to %08x", info.CRC32C, got)
	}
	if info.PayloadBytes != uint64(len(raw)-modelHeaderLen) {
		t.Errorf("PayloadBytes = %d, want %d", info.PayloadBytes, len(raw)-modelHeaderLen)
	}
	// Identity must be stable across stats and carry through String().
	again, err := StatModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if again != info {
		t.Errorf("StatModel not deterministic: %+v vs %+v", again, info)
	}
	if s := info.String(); !strings.Contains(s, "wmdl v1") || !strings.Contains(s, fmt.Sprintf("%08x", info.CRC32C)) {
		t.Errorf("String() = %q missing version or crc", s)
	}
}

func TestVerifyModel(t *testing.T) {
	p := getParser(t)
	path := filepath.Join(t.TempDir(), "parser.model")
	if err := SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	info, err := VerifyModel(path)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := StatModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if info != stat {
		t.Fatalf("VerifyModel identity %+v != StatModel %+v", info, stat)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if binfo, err := VerifyModelBytes(data); err != nil || binfo != info {
		t.Fatalf("VerifyModelBytes = %+v, %v", binfo, err)
	}

	// StatModel only reads the header; Verify re-hashes the payload, so
	// a payload flip passes the former and fails the latter.
	flipped := append([]byte(nil), data...)
	flipped[modelHeaderLen+len(flipped)/3] ^= 0x40
	bad := filepath.Join(t.TempDir(), "flipped.model")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StatModel(bad); err != nil {
		t.Fatalf("StatModel caught a payload flip it cannot see: %v", err)
	}
	if _, err := VerifyModel(bad); !errors.Is(err, ErrModelChecksum) {
		t.Fatalf("VerifyModel on flipped payload = %v, want ErrModelChecksum", err)
	}
	if _, err := VerifyModelBytes(flipped); !errors.Is(err, ErrModelChecksum) {
		t.Fatalf("VerifyModelBytes on flipped payload = %v, want ErrModelChecksum", err)
	}

	// Truncation and trailing junk both break the seal.
	if _, err := VerifyModelBytes(data[:len(data)-7]); !errors.Is(err, ErrModelChecksum) {
		t.Fatalf("truncated artifact = %v, want ErrModelChecksum", err)
	}
	if _, err := VerifyModelBytes(append(append([]byte(nil), data...), "junk"...)); !errors.Is(err, ErrModelChecksum) {
		t.Fatalf("trailing junk = %v, want ErrModelChecksum", err)
	}
	if _, err := VerifyModelBytes([]byte("no")); !errors.Is(err, ErrNotModel) {
		t.Fatalf("junk bytes = %v, want ErrNotModel", err)
	}
	if _, err := VerifyModel(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("VerifyModel on missing file succeeded")
	}
}

func TestStatModelRejectsNonModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.model")
	if err := os.WriteFile(path, []byte("plainly not a model artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StatModel(path); !errors.Is(err, ErrNotModel) {
		t.Errorf("StatModel on junk = %v, want ErrNotModel", err)
	}
	if _, err := StatModel(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("StatModel on missing file succeeded")
	}
}
