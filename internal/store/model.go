package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
)

// Model artifact container. A trained parser is the expensive output of
// the whole labeling + optimization pipeline; persisting it behind a
// magic header, an explicit format version, the feature-space dimensions
// of both CRF levels, and a CRC turns "the file loaded" into "the file
// is the model you trained". The payload is the parser's own
// serialization (core.Parser.WriteTo).
//
//	offset  size  field
//	0       4     magic "WMDL"
//	4       2     format version (LE)
//	6       8     first-level feature count (LE)
//	14      8     second-level feature count (LE; 0 = no field model)
//	22      4     CRC32C of payload (LE)
//	26      8     payload length (LE)
//	34      n     payload (gob, core.Parser.WriteTo)
var modelMagic = [4]byte{'W', 'M', 'D', 'L'}

const (
	modelVersion   = 1
	modelHeaderLen = 34
)

// Model artifact errors, distinguishable so callers can report "not a
// model file" vs "damaged model file" vs "model from a different
// format era".
var (
	ErrNotModel        = errors.New("store: not a model artifact")
	ErrModelVersion    = errors.New("store: unsupported model artifact version")
	ErrModelChecksum   = errors.New("store: model artifact checksum mismatch")
	ErrModelDimensions = errors.New("store: model feature dimensions disagree with header")
)

// ModelInfo is the identity a WMDL envelope gives a trained model: the
// artifact format version, both CRF feature-space dimensions, and the
// payload checksum. The CRC doubles as a cheap content fingerprint — two
// artifacts with equal CRC and dimensions are the same trained weights
// for lifecycle purposes (hot reload logging, drift segmentation,
// stamping crawled records with the model that parsed them).
type ModelInfo struct {
	FormatVersion uint16
	BlockFeatures uint64
	FieldFeatures uint64
	PayloadBytes  uint64
	CRC32C        uint32
}

// String renders the identity the way daemons log it, e.g.
// "wmdl v1 crc32c=9a1b2c3d block=104729 field=39916".
func (mi ModelInfo) String() string {
	return fmt.Sprintf("wmdl v%d crc32c=%08x block=%d field=%d",
		mi.FormatVersion, mi.CRC32C, mi.BlockFeatures, mi.FieldFeatures)
}

// IsZero reports whether the info carries no artifact identity (the
// model never hit disk).
func (mi ModelInfo) IsZero() bool { return mi == ModelInfo{} }

// parseModelHeader validates a WMDL header and extracts the identity.
func parseModelHeader(hdr []byte) (ModelInfo, error) {
	if len(hdr) < modelHeaderLen {
		return ModelInfo{}, fmt.Errorf("%w: short header", ErrNotModel)
	}
	if [4]byte(hdr[:4]) != modelMagic {
		return ModelInfo{}, ErrNotModel
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != modelVersion {
		return ModelInfo{}, fmt.Errorf("%w: %d (want %d)", ErrModelVersion, v, modelVersion)
	}
	return ModelInfo{
		FormatVersion: binary.LittleEndian.Uint16(hdr[4:]),
		BlockFeatures: binary.LittleEndian.Uint64(hdr[6:]),
		FieldFeatures: binary.LittleEndian.Uint64(hdr[14:]),
		CRC32C:        binary.LittleEndian.Uint32(hdr[22:]),
		PayloadBytes:  binary.LittleEndian.Uint64(hdr[26:]),
	}, nil
}

// StatModel reads only the WMDL header of the artifact at path and
// returns its identity, without decoding (or even reading) the payload.
// Daemons call it at startup to log exactly which model they loaded, and
// the lifecycle manager uses it to version cache entries across hot
// reloads.
func StatModel(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("store: stat model: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, modelHeaderLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return ModelInfo{}, fmt.Errorf("%w: short header", ErrNotModel)
	}
	return parseModelHeader(hdr)
}

// StatModelBytes is StatModel over an in-memory artifact — the cluster
// model-distribution path inspects fetched bytes before the (much more
// expensive) full decode. The payload CRC is NOT verified here; that is
// ReadModel's job.
func StatModelBytes(data []byte) (ModelInfo, error) {
	return parseModelHeader(data)
}

// SaveModel writes the trained parser to path in the versioned artifact
// format, via a temp file + rename so a crash never leaves a torn model
// where a good one stood.
func SaveModel(p *core.Parser, path string) error {
	var payload bytes.Buffer
	if _, err := p.WriteTo(&payload); err != nil {
		return fmt.Errorf("store: save model: %w", err)
	}
	var blockDim, fieldDim uint64
	blockDim = uint64(p.BlockModel().NumFeatures())
	if p.FieldModel() != nil {
		fieldDim = uint64(p.FieldModel().NumFeatures())
	}

	hdr := make([]byte, modelHeaderLen)
	copy(hdr, modelMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:], modelVersion)
	binary.LittleEndian.PutUint64(hdr[6:], blockDim)
	binary.LittleEndian.PutUint64(hdr[14:], fieldDim)
	binary.LittleEndian.PutUint32(hdr[22:], crc32.Checksum(payload.Bytes(), castagnoli))
	binary.LittleEndian.PutUint64(hdr[26:], uint64(payload.Len()))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: save model: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(payload.Bytes())
		if err == nil {
			err = f.Sync()
		}
	} else {
		err = fmt.Errorf("write header: %w", err)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save model: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: save model: %w", err)
	}
	return nil
}

// LoadModel reads a model artifact written by SaveModel, verifying the
// magic, version, checksum, and that the decoded CRF feature spaces
// match the dimensions recorded at save time. The returned parser is
// ready to Parse or to warm-start a Retrain.
func LoadModel(path string) (*core.Parser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: load model: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}

// ReadModel is LoadModel over a stream. Header validation (magic,
// format version) is the same parseModelHeader every other consumer —
// StatModel, VerifyModel, the registry — runs, so "what counts as a
// WMDL" cannot drift between the legacy load path and the registry.
func ReadModel(r io.Reader) (*core.Parser, error) {
	hdr := make([]byte, modelHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrNotModel)
	}
	info, err := parseModelHeader(hdr)
	if err != nil {
		return nil, err
	}
	const maxModelBytes = 1 << 31
	if info.PayloadBytes > maxModelBytes {
		return nil, fmt.Errorf("%w: payload length %d", ErrNotModel, info.PayloadBytes)
	}
	payload := make([]byte, info.PayloadBytes)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload", ErrModelChecksum)
	}
	if crc32.Checksum(payload, castagnoli) != info.CRC32C {
		return nil, ErrModelChecksum
	}
	p, err := core.Read(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("store: load model: %w", err)
	}
	if got := uint64(p.BlockModel().NumFeatures()); got != info.BlockFeatures {
		return nil, fmt.Errorf("%w: first level %d vs %d", ErrModelDimensions, got, info.BlockFeatures)
	}
	var gotField uint64
	if p.FieldModel() != nil {
		gotField = uint64(p.FieldModel().NumFeatures())
	}
	if gotField != info.FieldFeatures {
		return nil, fmt.Errorf("%w: second level %d vs %d", ErrModelDimensions, gotField, info.FieldFeatures)
	}
	return p, nil
}

// VerifyModel re-reads the artifact at path and confirms the payload is
// exactly what the header promises — magic, format version, payload
// length, and a streamed CRC32C recomputation — without decoding the
// model (no gob, no allocation proportional to feature count). This is
// the integrity check the model registry runs before any promotion and
// `whoisparse model verify` runs offline; LoadModel additionally
// verifies the decoded feature dimensions, which VerifyModel's header
// already pins.
func VerifyModel(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("store: verify model: %w", err)
	}
	defer f.Close()
	return verifyModelStream(f)
}

// VerifyModelBytes is VerifyModel over an in-memory artifact — the
// registry publish path and the cluster distribution path both verify
// fetched bytes before anything is written or swapped.
func VerifyModelBytes(data []byte) (ModelInfo, error) {
	return verifyModelStream(bytes.NewReader(data))
}

// verifyModelStream validates header-vs-payload integrity: the payload
// must be present in full, match the recorded CRC32C, and be followed
// by nothing (trailing bytes mean the file is not the artifact the
// header describes).
func verifyModelStream(r io.Reader) (ModelInfo, error) {
	hdr := make([]byte, modelHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return ModelInfo{}, fmt.Errorf("%w: short header", ErrNotModel)
	}
	info, err := parseModelHeader(hdr)
	if err != nil {
		return ModelInfo{}, err
	}
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, r)
	if err != nil {
		return info, fmt.Errorf("store: verify model: %w", err)
	}
	if uint64(n) < info.PayloadBytes {
		return info, fmt.Errorf("%w: payload %d bytes, header promises %d", ErrModelChecksum, n, info.PayloadBytes)
	}
	if uint64(n) > info.PayloadBytes {
		return info, fmt.Errorf("%w: %d trailing bytes after payload", ErrModelChecksum, uint64(n)-info.PayloadBytes)
	}
	if h.Sum32() != info.CRC32C {
		return info, ErrModelChecksum
	}
	return info, nil
}

// IsModelArtifact sniffs whether path starts with the versioned-artifact
// magic — the compatibility shim that lets whoisparse.Load fall back to
// the legacy bare-gob format for models saved before this container
// existed.
func IsModelArtifact(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return m == modelMagic
}
