package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// CompactStats reports one compaction's outcome.
type CompactStats struct {
	// SegmentsIn is how many sealed segments were merged; Kept and
	// Dropped count records copied forward vs. superseded duplicates
	// removed. BytesIn/BytesOut are the sealed sizes before and after.
	SegmentsIn int
	Kept       uint64
	Dropped    uint64
	BytesIn    int64
	BytesOut   int64
}

// Compact merges every sealed segment into one, keeping only the newest
// record per domain (later appends win). Appends proceed concurrently:
// the active segment is first rotated so the whole backlog is sealed,
// then merged outside the store lock.
//
// Crash safety: the merged segment is written to a temp file, fsynced,
// and renamed over the oldest input before the remaining inputs are
// unlinked. A crash between the rename and the unlinks leaves duplicate
// records (the next compaction removes them) but never loses a record
// that survived its frame's CRC. Record sequence numbers renumber after
// compaction.
func (s *Store) Compact() (CompactStats, error) {
	var stats CompactStats
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return stats, fmt.Errorf("store: compact on closed store")
	}
	if s.compactBusy {
		// Another compaction (manual or auto) is already running; this
		// one is a no-op rather than a data race.
		s.mu.Unlock()
		return stats, nil
	}
	s.compactBusy = true
	// Seal the current backlog so the whole merge input is immutable.
	active := s.segments[len(s.segments)-1]
	if active.records > 0 {
		if err := s.rotateLocked(); err != nil {
			s.compactBusy = false
			s.mu.Unlock()
			return stats, err
		}
	}
	snap, err := s.snapshotLocked()
	s.mu.Unlock()
	if err != nil {
		s.clearCompactBusy()
		return stats, err
	}
	defer func() {
		for i := range snap {
			if snap[i].f != nil {
				snap[i].f.Close()
			}
		}
		s.clearCompactBusy()
	}()
	sealed := snap[:len(snap)-1] // the fresh active segment stays out

	if len(sealed) == 0 {
		return stats, nil
	}
	stats.SegmentsIn = len(sealed)
	for i := range sealed {
		stats.BytesIn += sealed[i].size
	}

	// Pass 1: newest frame per domain, by sealed-set frame ordinal.
	winner := make(map[string]uint64)
	var ordinal uint64
	err = scanSealed(sealed, func(_ []byte, domain string) error {
		winner[domain] = ordinal
		ordinal++
		return nil
	})
	if err != nil {
		return stats, err
	}
	total := ordinal

	// Pass 2: copy winning frames, in order, into the merged segment.
	tmpPath := filepath.Join(s.dir, "compact.tmp")
	merged, err := writeMerged(tmpPath, sealed, winner, s.opts, &stats)
	if err != nil {
		os.Remove(tmpPath)
		return stats, err
	}
	stats.Dropped = total - stats.Kept

	// Swap: rename over the oldest input, unlink the rest, splice the
	// in-memory metadata. The store lock is held so appends and new
	// snapshots see a consistent view.
	s.mu.Lock()
	defer s.mu.Unlock()
	firstPath := s.segments[0].path
	firstID := s.segments[0].id
	if err := os.Rename(tmpPath, firstPath); err != nil {
		return stats, fmt.Errorf("store: compact swap: %w", err)
	}
	for i := 1; i < len(sealed); i++ {
		if err := os.Remove(s.segments[i].path); err != nil {
			return stats, fmt.Errorf("store: compact cleanup: %w", err)
		}
	}
	if d, derr := os.Open(s.dir); derr == nil {
		_ = d.Sync() // best-effort directory durability for the swap
		d.Close()
	}
	merged.path = firstPath
	merged.id = firstID
	rest := s.segments[len(sealed):]
	segs := append([]*segment{merged}, rest...)
	base := merged.records
	for _, seg := range rest {
		seg.baseSeq = base
		base += seg.records
	}
	s.segments = segs
	s.met.compactions.Inc()
	s.met.compactSecs.ObserveSince(start)
	if fn := s.onSeal; fn != nil {
		// The merged segment's bytes are new — derived sidecars for the
		// old inputs are stale and must be rebuilt off this id.
		id := merged.id
		go fn(id)
	}
	return stats, nil
}

func (s *Store) clearCompactBusy() {
	s.mu.Lock()
	s.compactBusy = false
	s.mu.Unlock()
}

// scanSealed walks every record of the sealed snapshot in order —
// expanding compressed blocks — handing each record payload and its
// decoded domain to fn.
func scanSealed(sealed []iterSegment, fn func(payload []byte, domain string) error) error {
	for i := range sealed {
		seg := &sealed[i]
		if _, err := seg.f.Seek(segHeaderLen, 0); err != nil {
			return fmt.Errorf("store: compact seek: %w", err)
		}
		sc := newFrameScanner(io.LimitReader(seg.f, seg.size-segHeaderLen), segHeaderLen)
		var n uint64
		for n < seg.records {
			payload, off, err := sc.next()
			if err != nil {
				return fmt.Errorf("store: compact scan %s at %d: %w", seg.path, off, err)
			}
			payloads := [][]byte{payload}
			if isBlockPayload(payload) {
				if payloads, err = decodeBlock(payload); err != nil {
					return fmt.Errorf("store: compact scan %s at %d: %w", seg.path, off, err)
				}
			}
			for _, p := range payloads {
				rec, err := decodeRecord(p)
				if err != nil {
					return fmt.Errorf("store: compact scan %s at %d: %w", seg.path, off, err)
				}
				if err := fn(p, rec.Domain); err != nil {
					return err
				}
				n++
			}
		}
	}
	return nil
}

// writeMerged writes the winning frames to tmpPath and returns the new
// segment's metadata (path/id are patched in by the caller at swap).
// Under Options.Compress the merged output is written as block frames
// directly, so a compaction never decompresses a corpus only to leave it
// plain again.
func writeMerged(tmpPath string, sealed []iterSegment, winner map[string]uint64, opts Options, stats *CompactStats) (*segment, error) {
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: compact temp: %w", err)
	}
	defer f.Close()
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic[:])
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("store: compact header: %w", err)
	}
	merged := &segment{size: segHeaderLen}
	var bw *blockWriter
	if opts.Compress {
		bw = newBlockWriter(f, merged, opts.BlockRecords, opts.IndexEvery)
	}
	var ordinal uint64
	var frame []byte
	err = scanSealed(sealed, func(payload []byte, domain string) error {
		keep := winner[domain] == ordinal
		ordinal++
		if !keep {
			return nil
		}
		stats.Kept++
		if bw != nil {
			return bw.add(payload)
		}
		frame = appendFrame(frame[:0], payload)
		if _, err := f.Write(frame); err != nil {
			return fmt.Errorf("store: compact write: %w", err)
		}
		if merged.records%uint64(opts.IndexEvery) == 0 {
			merged.index = append(merged.index, indexEntry{seq: merged.records, off: merged.size})
		}
		merged.size += int64(len(frame))
		merged.records++
		merged.plain++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if bw != nil {
		if err := bw.flush(); err != nil {
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("store: compact sync: %w", err)
	}
	stats.BytesOut = merged.size
	return merged, nil
}
