package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// compressedFixture builds a store whose only non-empty segment is
// compressed: n records appended, Compact seals them into segment 1,
// CompressSealed rewrites it into blocks of blockRecords.
func compressedFixture(t *testing.T, dir string, n, blockRecords int) {
	t.Helper()
	st, err := Open(dir, Options{BlockRecords: blockRecords})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	cs, err := st.CompressSealed()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Segments != 1 || cs.Records != uint64(n) {
		t.Fatalf("CompressSealed = %+v, want 1 segment / %d records", cs, n)
	}
	if cs.BytesOut >= cs.BytesIn {
		t.Fatalf("compression grew the segment: %d -> %d bytes", cs.BytesIn, cs.BytesOut)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompressRoundTrip: compressing sealed segments changes only the
// frame envelope — record content, count, and order survive both a live
// iteration and a full close/reopen rescan.
func TestCompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 100
	compressedFixture(t, dir, n, 7)

	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Len(); got != n {
		t.Fatalf("Len after reopen = %d, want %d", got, n)
	}
	infos := st.SegmentInfos()
	if infos[0].Blocks == 0 || infos[0].Plain != 0 {
		t.Fatalf("segment 1 not fully compressed: %+v", infos[0])
	}
	it := st.Iter()
	defer it.Close()
	var i int
	for it.Next() {
		want := testRecord(i)
		if it.Record().Domain != want.Domain || it.Record().Facts.Org != want.Facts.Org {
			t.Fatalf("record %d: got %q/%q", i, it.Record().Domain, it.Record().Facts.Org)
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("iterated %d records, want %d", i, n)
	}
}

// TestIterFromAcrossBlocks: positional seeks must land on the right
// record even when the sparse index points at a block frame and the
// target sits mid-block.
func TestIterFromAcrossBlocks(t *testing.T) {
	dir := t.TempDir()
	const n = 53
	compressedFixture(t, dir, n, 5)
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for seq := 0; seq < n; seq++ {
		it := st.IterFrom(uint64(seq))
		if !it.Next() {
			t.Fatalf("IterFrom(%d): no record (err=%v)", seq, it.Err())
		}
		if want := fmt.Sprintf("example%04d.com", seq); it.Record().Domain != want {
			t.Fatalf("IterFrom(%d): domain %q, want %q", seq, it.Record().Domain, want)
		}
		if it.Seq() != uint64(seq) {
			t.Fatalf("IterFrom(%d): Seq = %d", seq, it.Seq())
		}
		it.Close()
	}
}

// TestCompactOverCompressed: a compaction whose inputs are compressed
// segments must still dedupe newest-wins, and with Options.Compress its
// merged output comes out compressed.
func TestCompactOverCompressed(t *testing.T) {
	dir := t.TempDir()
	const n = 40
	compressedFixture(t, dir, n, 6)

	st, err := Open(dir, Options{Compress: true, BlockRecords: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Overwrite the first 10 domains; compaction must keep the rewrites.
	for i := 0; i < 10; i++ {
		rec := testRecord(i)
		rec.Facts.Org = "rewritten"
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", stats.Dropped)
	}
	if got := st.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	infos := st.SegmentInfos()
	if infos[0].Blocks == 0 || infos[0].Plain != 0 {
		t.Fatalf("merged segment not compressed: %+v", infos[0])
	}
	// Newest-wins keeps the rewritten frames at their later positions, so
	// verify by domain rather than by iteration order.
	orgs := make(map[string]string)
	it := st.Iter()
	defer it.Close()
	for it.Next() {
		rec := it.Record()
		if _, dup := orgs[rec.Domain]; dup {
			t.Fatalf("domain %s survived twice", rec.Domain)
		}
		orgs[rec.Domain] = rec.Facts.Org
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(orgs) != n {
		t.Fatalf("iterated %d distinct domains, want %d", len(orgs), n)
	}
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("example%04d.com", i)
		want := fmt.Sprintf("Org %d", i%3)
		if i < 10 {
			want = "rewritten"
		}
		if orgs[domain] != want {
			t.Fatalf("domain %s: Org %q, want %q", domain, orgs[domain], want)
		}
	}
}

// TestAutoCompressOnRotate: with Options.Compress, rotation kicks off a
// background rewrite of the sealed segment.
func TestAutoCompressOnRotate(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 4 << 10, Compress: true, BlockRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // Close waits for background work
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != 200 {
		t.Fatalf("Len = %d, want 200", got)
	}
	infos := st2.SegmentInfos()
	if len(infos) < 2 {
		t.Fatalf("expected rotations, got %d segments", len(infos))
	}
	compressed := 0
	for _, info := range infos[:len(infos)-1] {
		if info.Blocks > 0 && info.Plain == 0 {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatal("no sealed segment was auto-compressed")
	}
}

// lastFrameStart scans a segment file and returns the byte offset where
// its final frame begins.
func lastFrameStart(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := newFrameScanner(bytes.NewReader(data[segHeaderLen:]), segHeaderLen)
	last := int64(segHeaderLen)
	for {
		_, off, err := sc.next()
		if err == io.EOF {
			return last
		}
		if err != nil {
			t.Fatalf("scan %s at %d: %v", path, off, err)
		}
		last = off
	}
}

// TestCompressedRecoveryTruncatedTailEveryOffset mirrors the plain-frame
// crash-recovery contract for block frames: truncate the newest
// (compressed) segment at every byte offset inside its final block frame.
// Every reopen must drop exactly that block's records — a block frame is
// all-or-nothing — and leave a tail clean enough for new appends.
func TestCompressedRecoveryTruncatedTailEveryOffset(t *testing.T) {
	const n, blockRecords = 8, 3 // blocks of 3+3+2: the last frame holds 2 records
	base := t.TempDir()
	pristine := filepath.Join(base, "pristine")
	compressedFixture(t, pristine, n, blockRecords)
	// Drop the empty active segment so the compressed segment is newest —
	// the only position where tail truncation is a crash signature.
	if err := os.Remove(filepath.Join(pristine, "00000002.seg")); err != nil {
		t.Fatal(err)
	}
	segName := "00000001.seg"
	orig, err := os.ReadFile(filepath.Join(pristine, segName))
	if err != nil {
		t.Fatal(err)
	}
	cutFrom := lastFrameStart(t, filepath.Join(pristine, segName))
	const lastBlockRecords = n % blockRecords

	for cut := cutFrom; cut < int64(len(orig)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, segName), orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after cut at %d: %v", cut, err)
			}
			if got := st.Len(); got != n-lastBlockRecords {
				t.Fatalf("recovered %d records, want %d", got, n-lastBlockRecords)
			}
			it := st.Iter()
			var i int
			for it.Next() {
				if want := fmt.Sprintf("example%04d.com", i); it.Record().Domain != want {
					t.Fatalf("record %d: domain %q, want %q", i, it.Record().Domain, want)
				}
				i++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			it.Close()
			if i != n-lastBlockRecords {
				t.Fatalf("iterated %d records, want %d", i, n-lastBlockRecords)
			}
			// The tail is clean: a fresh append lands and survives reopen.
			if err := st.Append(testRecord(100)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if got := st2.Len(); got != n-lastBlockRecords+1 {
				t.Fatalf("after recovery+append: Len = %d, want %d", got, n-lastBlockRecords+1)
			}
		})
	}
}

// TestCorruptBlockInSealedSegmentIsFatal: like plain frames, a damaged
// block anywhere but the newest segment must fail Open loudly.
func TestCorruptBlockInSealedSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	compressedFixture(t, dir, 30, 4)
	path := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt compressed sealed segment")
	}
}

// TestIterSurfacesSegmentCompacted is the regression test for the typed
// race error: a reader whose snapshot open races a compaction that
// already unlinked the segment file must see ErrSegmentCompacted, not a
// raw ENOENT wrapped in a *os.PathError.
func TestIterSurfacesSegmentCompacted(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 100; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 2 {
		t.Fatalf("need >= 2 segments, got %d", st.Segments())
	}
	// Simulate the tail end of a compaction the store hasn't observed
	// yet: the first segment's file is gone but its metadata lives on.
	if err := os.Remove(st.SegmentInfos()[0].Path); err != nil {
		t.Fatal(err)
	}
	it := st.Iter()
	defer it.Close()
	if it.Next() {
		t.Fatal("iterator yielded a record from a removed segment")
	}
	if err := it.Err(); !errors.Is(err, ErrSegmentCompacted) {
		t.Fatalf("Iter error = %v, want ErrSegmentCompacted", err)
	}
}

// TestOpenSegmentCompactedID: asking for a segment id that a compaction
// merged away reports the typed error, and so does an id whose file was
// removed underneath live metadata.
func TestOpenSegmentCompactedID(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.OpenSegment(42); !errors.Is(err, ErrSegmentCompacted) {
		t.Fatalf("OpenSegment(42) error = %v, want ErrSegmentCompacted", err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	infos := st.SegmentInfos()
	if err := os.Remove(infos[0].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenSegment(infos[0].ID); !errors.Is(err, ErrSegmentCompacted) {
		t.Fatalf("OpenSegment error = %v, want ErrSegmentCompacted", err)
	}
}

// TestSegmentReaderFrames: Frames and FrameAt agree with the iterator on
// content for both plain and compressed segments, and the fingerprint
// moves when the bytes are rewritten.
func TestSegmentReaderFrames(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{BlockRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Compact(); err != nil { // seals segment 1
		t.Fatal(err)
	}
	infos := st.SegmentInfos()
	r, err := st.OpenSegment(infos[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	fpPlain, err := r.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	var domains []string
	err = r.Frames(func(off int64, payloads [][]byte) error {
		offs = append(offs, off)
		for _, p := range payloads {
			rec, err := DecodeRecord(p)
			if err != nil {
				return err
			}
			domains = append(domains, rec.Domain)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if len(domains) != n {
		t.Fatalf("Frames saw %d records, want %d", len(domains), n)
	}
	for i, d := range domains {
		if want := fmt.Sprintf("example%04d.com", i); d != want {
			t.Fatalf("frame record %d = %q, want %q", i, d, want)
		}
	}

	if _, err := st.CompressSealed(); err != nil {
		t.Fatal(err)
	}
	r2, err := st.OpenSegment(infos[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	fpComp, err := r2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpComp == fpPlain {
		t.Fatal("fingerprint unchanged across a compression rewrite")
	}
	// FrameAt returns exactly the frame's records at each offset Frames
	// reported.
	offs = offs[:0]
	count := 0
	err = r2.Frames(func(off int64, payloads [][]byte) error {
		offs = append(offs, off)
		count += len(payloads)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("compressed Frames saw %d records, want %d", count, n)
	}
	for _, off := range offs {
		payloads, err := r2.FrameAt(off)
		if err != nil {
			t.Fatalf("FrameAt(%d): %v", off, err)
		}
		if len(payloads) == 0 || len(payloads) > 4 {
			t.Fatalf("FrameAt(%d): %d payloads", off, len(payloads))
		}
	}
	// Off-boundary seeks must error, not fabricate records.
	if _, err := r2.FrameAt(offs[0] + 1); err == nil {
		t.Fatal("FrameAt mid-frame succeeded")
	}
	if _, err := r2.FrameAt(1); err == nil {
		t.Fatal("FrameAt inside header succeeded")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
