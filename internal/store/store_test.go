package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/survey"
	"repro/internal/tokenize"
)

// testRecord builds a representative record: parsed lines with labels,
// extracted fields, raw text, and derived facts.
func testRecord(i int) *Record {
	domain := fmt.Sprintf("example%04d.com", i)
	text := fmt.Sprintf("Domain Name: %s\nRegistrant Name: Holder %d\n", domain, i)
	pr := &core.ParsedRecord{
		Lines: []tokenize.Line{
			{Raw: "Domain Name: " + domain, Title: "Domain Name", Value: domain, HasSep: true},
			{Raw: fmt.Sprintf("Registrant Name: Holder %d", i)},
		},
		Blocks:     []labels.Block{labels.Domain, labels.Registrant},
		Fields:     []labels.Field{labels.FieldOther, labels.FieldName},
		DomainName: domain,
		Registrar:  fmt.Sprintf("Registrar %d", i%7),
		Registrant: core.Contact{
			Name:    fmt.Sprintf("Holder %d", i),
			Country: "US",
			Email:   fmt.Sprintf("holder%d@example.com", i),
		},
		CreatedDate: "2014-03-01",
		NameServers: []string{
			fmt.Sprintf("ns1.host%d.net", i%4),
			fmt.Sprintf("ns2.host%d.net", i%4),
		},
		Statuses: []string{"clientTransferProhibited"},
	}
	return &Record{
		Domain: domain,
		Text:   text,
		Parsed: pr,
		Facts: survey.Facts{
			Domain:      domain,
			Registrar:   pr.Registrar,
			Country:     "United States",
			CreatedYear: 2014,
			Privacy:     i%5 == 0,
			PrivacySvc:  map[bool]string{true: "WhoisGuard", false: ""}[i%5 == 0],
			Org:         fmt.Sprintf("Org %d", i%3),
			Blacklisted: i%11 == 0,
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	noMeta := testRecord(2)
	noMeta.Parsed.NameServers = nil
	noMeta.Parsed.Statuses = nil
	statusOnly := testRecord(3)
	statusOnly.Parsed.NameServers = nil
	for _, rec := range []*Record{
		testRecord(1),
		noMeta,
		statusOnly,
		{Domain: "bare.com", Facts: survey.Facts{Domain: "bare.com", Registrar: "Thin Reg"}},
		{Domain: "txt.com", Text: "raw only", Facts: survey.Facts{Domain: "txt.com"}},
	} {
		payload := appendRecord(nil, rec)
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.Domain, err)
		}
		// Decoding restores Raw + labels on lines; feature-pipeline
		// internals (Title/Value/HasSep/Obs) are intentionally dropped.
		want := *rec
		if want.Parsed != nil {
			pr := *want.Parsed
			pr.Lines = append([]tokenize.Line(nil), pr.Lines...)
			for i := range pr.Lines {
				pr.Lines[i] = tokenize.Line{Raw: pr.Lines[i].Raw}
			}
			want.Parsed = &pr
		}
		if !reflect.DeepEqual(got, &want) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", rec.Domain, got, &want)
		}
	}
}

func TestAppendIterate(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	it := st.Iter()
	defer it.Close()
	var count int
	for it.Next() {
		rec := it.Record()
		if want := fmt.Sprintf("example%04d.com", count); rec.Domain != want {
			t.Fatalf("record %d: domain %q, want %q", count, rec.Domain, want)
		}
		if it.Seq() != uint64(count) {
			t.Fatalf("record %d: seq %d", count, it.Seq())
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("iterated %d records, want %d", count, n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: counts and contents survive.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != n {
		t.Fatalf("reopened Len = %d, want %d", got, n)
	}
	if st2.RecoveredBytes() != 0 {
		t.Fatalf("clean reopen recovered %d bytes", st2.RecoveredBytes())
	}
}

func TestIterFromSeeksWithSparseIndex(t *testing.T) {
	dir := t.TempDir()
	// Small IndexEvery so seeks cross multiple index entries; small
	// segments so seeks cross segment boundaries too.
	st, err := Open(dir, Options{SegmentBytes: 4 << 10, IndexEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Segments() < 3 {
		t.Fatalf("want >= 3 segments, got %d", st.Segments())
	}
	for _, start := range []uint64{0, 1, 7, 8, 9, 63, 100, n - 1, n, n + 10} {
		it := st.IterFrom(start)
		var got []uint64
		for it.Next() {
			got = append(got, it.Seq())
			if len(got) > n {
				t.Fatal("runaway iterator")
			}
		}
		if err := it.Err(); err != nil {
			t.Fatalf("IterFrom(%d): %v", start, err)
		}
		it.Close()
		wantLen := 0
		if start < n {
			wantLen = int(n - start)
		}
		if len(got) != wantLen {
			t.Fatalf("IterFrom(%d): %d records, want %d", start, len(got), wantLen)
		}
		if wantLen > 0 && (got[0] != start || got[len(got)-1] != n-1) {
			t.Fatalf("IterFrom(%d): seq range [%d, %d]", start, got[0], got[len(got)-1])
		}
	}
}

func TestIterNewestSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 120
	for i := 0; i < n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	it := st.IterNewestSegment()
	defer it.Close()
	var domains []string
	for it.Next() {
		domains = append(domains, it.Record().Domain)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(domains) == 0 || len(domains) >= n {
		t.Fatalf("newest segment yielded %d of %d records", len(domains), n)
	}
	if last := domains[len(domains)-1]; last != fmt.Sprintf("example%04d.com", n-1) {
		t.Fatalf("newest segment ends at %s", last)
	}
}

func TestIteratorSnapshotExcludesLaterAppends(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	it := st.Iter()
	defer it.Close()
	for i := 10; i < 20; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	var count int
	for it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("snapshot iterated %d records, want 10", count)
	}
}

func TestCompactDedupsNewestWins(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Three generations of the same 30 domains; generation is encoded in
	// the registrar so the winner is observable.
	const domains, gens = 30, 3
	for g := 0; g < gens; g++ {
		for d := 0; d < domains; d++ {
			rec := testRecord(d)
			rec.Facts.Registrar = fmt.Sprintf("gen-%d", g)
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := st.Len()
	stats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != domains {
		t.Fatalf("kept %d, want %d (stats %+v)", stats.Kept, domains, stats)
	}
	if stats.Dropped != before-domains {
		t.Fatalf("dropped %d, want %d", stats.Dropped, before-domains)
	}
	if got := st.Len(); got != domains {
		t.Fatalf("Len after compact = %d, want %d", got, domains)
	}
	seen := make(map[string]string)
	it := st.Iter()
	defer it.Close()
	for it.Next() {
		rec := it.Record()
		seen[rec.Domain] = rec.Facts.Registrar
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != domains {
		t.Fatalf("%d distinct domains after compact, want %d", len(seen), domains)
	}
	for d, reg := range seen {
		if reg != fmt.Sprintf("gen-%d", gens-1) {
			t.Fatalf("%s survived as %q, want newest generation", d, reg)
		}
	}

	// Appends after compaction land and survive a reopen.
	if err := st.Append(testRecord(999)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got != domains+1 {
		t.Fatalf("reopened Len = %d, want %d", got, domains+1)
	}
}

func TestCompactEmptyAndSingleSegment(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Compact(); err != nil {
		t.Fatalf("empty compact: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept != 5 || stats.Dropped != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if got := st.Len(); got != 5 {
		t.Fatalf("Len = %d", got)
	}
}

func TestAutoCompactTriggersInBackground(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 2 << 10, AutoCompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Repeatedly rewrite the same few domains so compaction has work.
	for i := 0; i < 400; i++ {
		rec := testRecord(i % 10)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // Close waits for background compaction
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Len(); got >= 400 {
		t.Fatalf("auto-compaction never ran: %d records remain", got)
	}
}

func TestDomainsStreams(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 20; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := st.Domains(func(string) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("Domains visited %d, want 20", n)
	}
	n = 0
	if err := st.Domains(func(string) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(t.TempDir(), Options{Metrics: reg, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 60; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["store.appends"].(uint64); got != 60 {
		t.Fatalf("store.appends = %v", got)
	}
	for _, name := range []string{"store.bytes", "store.segments", "store.records",
		"store.segment.rotations", "store.compactions"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %s missing from snapshot", name)
		}
	}
	if h, ok := snap["store.append.seconds"].(map[string]any); !ok || h["count"].(uint64) != 60 {
		t.Fatalf("store.append.seconds = %v", snap["store.append.seconds"])
	}
}

func TestConcurrentAppendIterateCompact(t *testing.T) {
	st, err := Open(t.TempDir(), Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var wg sync.WaitGroup
	// One writer, several readers, one compactor, all concurrent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := st.Append(testRecord(i % 40)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				it := st.Iter()
				for it.Next() {
					_ = it.Record().Domain
				}
				if err := it.Err(); err != nil {
					t.Error(err)
				}
				it.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pass := 0; pass < 3; pass++ {
			if _, err := st.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Post-conditions: every domain's newest value is readable.
	it := st.Iter()
	defer it.Close()
	var n int
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records after concurrent run")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	// A sealed segment with a bad header must refuse to open.
	if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), []byte("not a segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "00000002.seg"), []byte("also junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRecord(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestRecordRoundTripModelVersion covers the flagHasModelVersion tail
// field: stamped facts survive the round trip, the stamp mirrors into
// the parsed record, and unstamped records keep the pre-stamp layout.
func TestRecordRoundTripModelVersion(t *testing.T) {
	stamped := testRecord(3)
	stamped.Facts.ModelVersion = "m2-9a1b2c3d"
	payload := appendRecord(nil, stamped)
	got, err := decodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Facts.ModelVersion != "m2-9a1b2c3d" {
		t.Errorf("Facts.ModelVersion = %q after round trip", got.Facts.ModelVersion)
	}
	if got.Parsed == nil || got.Parsed.ModelVersion != "m2-9a1b2c3d" {
		t.Error("decoded parsed record not stamped with the facts' model version")
	}

	// A parsed-record stamp with unstamped facts must also survive.
	viaParsed := testRecord(4)
	viaParsed.Parsed.ModelVersion = "m7"
	got, err = decodeRecord(appendRecord(nil, viaParsed))
	if err != nil {
		t.Fatal(err)
	}
	if got.Facts.ModelVersion != "m7" || got.Parsed.ModelVersion != "m7" {
		t.Errorf("parsed-record stamp lost: facts=%q parsed=%q",
			got.Facts.ModelVersion, got.Parsed.ModelVersion)
	}

	// Unstamped payloads must not grow the new tail field (layout parity
	// with records written before the field existed).
	plain := testRecord(5)
	withStamp := testRecord(5)
	withStamp.Facts.ModelVersion = "x"
	if a, b := appendRecord(nil, plain), appendRecord(nil, withStamp); len(a) >= len(b) {
		t.Errorf("unstamped payload (%d bytes) not smaller than stamped (%d)", len(a), len(b))
	}
	got, err = decodeRecord(appendRecord(nil, plain))
	if err != nil {
		t.Fatal(err)
	}
	if got.Facts.ModelVersion != "" {
		t.Errorf("unstamped record decoded with ModelVersion %q", got.Facts.ModelVersion)
	}
}

// TestSinkStampsModelVersion checks the crawl-sink satellite: when a
// model parses records on the way into the store, every appended record
// carries the model's version in its facts.
func TestSinkStampsModelVersion(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sink := NewSink(st, SinkOptions{
		Parse:        func(text string) *core.ParsedRecord { return &core.ParsedRecord{DomainName: "stamp.com"} },
		ModelVersion: "wmdl v1 crc32c=deadbeef",
	})
	if err := sink.Put("stamp.com", "Reg", "Domain Name: stamp.com\n"); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	it := st.Iter()
	defer it.Close()
	if !it.Next() {
		t.Fatalf("no record in store: %v", it.Err())
	}
	rec := it.Record()
	if rec.Facts.ModelVersion != "wmdl v1 crc32c=deadbeef" {
		t.Errorf("Facts.ModelVersion = %q", rec.Facts.ModelVersion)
	}
}
