// Package store is the persistence layer under the crawl → parse →
// survey pipeline: an append-only, segmented record log holding parsed
// WHOIS records and their derived survey facts, plus a versioned artifact
// format for trained CRF models. The paper's §6 survey covers 102M .com
// registrations; at that scale neither the parsed corpus nor the trained
// parser can live only in process memory, and "WHOIS Right?" shows these
// corpora get re-collected and re-compared over time — so both must
// survive restarts, crashes, and partial crawls.
//
// On-disk layout (see DESIGN.md §5d for the full diagram):
//
//	dir/
//	  00000001.seg        sealed segment
//	  00000002.seg        sealed segment
//	  00000003.seg        active segment (append target)
//
// Every segment starts with an 8-byte header (magic "WSG1", one format
// version byte, three reserved zero bytes) followed by frames:
//
//	frame := uvarint(len(payload)) | payload | crc32c(payload) LE32
//
// The CRC is Castagnoli (CRC32C). A frame whose length varint is torn,
// whose payload is short, or whose CRC mismatches marks the end of the
// recoverable region: Open truncates a torn tail on the newest segment
// (a crash mid-append) and refuses corruption anywhere else.
package store

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/survey"
	"repro/internal/tokenize"
)

// Segment header.
var segMagic = [4]byte{'W', 'S', 'G', '1'}

const (
	segVersion   = 1
	segHeaderLen = 8

	// maxFramePayload bounds a single record frame. The decoder refuses
	// larger length prefixes before allocating, so a corrupt varint can
	// never cause a multi-gigabyte allocation.
	maxFramePayload = 16 << 20

	// frameCRCLen is the trailing checksum size.
	frameCRCLen = 4
)

// castagnoli is the CRC32C table shared by frames and model artifacts.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTornFrame specifically means "the bytes end mid-frame"
// — recoverable when it is the tail of the newest segment, fatal anywhere
// else.
var (
	ErrTornFrame   = errors.New("store: torn frame")
	ErrBadChecksum = errors.New("store: frame checksum mismatch")
	ErrFrameTooBig = errors.New("store: frame exceeds size limit")
	ErrBadRecord   = errors.New("store: malformed record payload")
)

// Record is one persisted entry: a domain's parsed WHOIS record plus the
// survey facts derived from it. Text optionally carries the raw record
// (the serve warm-start path needs the exact query text to compute cache
// keys); Parsed is optional for thin-only crawls. Facts.Domain always
// mirrors Domain after decoding.
type Record struct {
	Domain string
	Text   string
	Parsed *core.ParsedRecord
	Facts  survey.Facts
}

// Payload flag bits. flagHasModelVersion and flagHasDomainMeta gate
// fields appended at the very end of the payload (in that order), so
// records written before either existed decode unchanged.
const (
	flagPrivacy         = 1 << 0
	flagBlacklisted     = 1 << 1
	flagHasParsed       = 1 << 2
	flagHasText         = 1 << 3
	flagHasModelVersion = 1 << 4
	// flagHasDomainMeta gates the parsed record's NameServers and
	// Statuses lists — the domain-block multi-values the consistency
	// engine compares against RDAP. Only ever set alongside
	// flagHasParsed.
	flagHasDomainMeta = 1 << 5
)

// recordKind tags the payload type, leaving room for future frame kinds
// (checkpoints, tombstones) without a format-version bump. blockKind is
// a compressed block: many record payloads flate-compressed into one
// frame, used on sealed segments only (the active segment stays plain
// so crash recovery keeps byte-granular truncation).
const (
	recordKind = 1
	blockKind  = 2
)

// appendUvarint, appendString: little encoding helpers over a shared buf.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendRecord encodes rec into buf (reusing its capacity) and returns
// the payload. The layout is positional — see decodeRecord, its exact
// mirror.
func appendRecord(buf []byte, rec *Record) []byte {
	buf = append(buf, recordKind)
	var flags byte
	if rec.Facts.Privacy {
		flags |= flagPrivacy
	}
	if rec.Facts.Blacklisted {
		flags |= flagBlacklisted
	}
	if rec.Parsed != nil {
		flags |= flagHasParsed
	}
	if rec.Text != "" {
		flags |= flagHasText
	}
	modelVersion := rec.Facts.ModelVersion
	if modelVersion == "" && rec.Parsed != nil {
		modelVersion = rec.Parsed.ModelVersion
	}
	if modelVersion != "" {
		flags |= flagHasModelVersion
	}
	if rec.Parsed != nil && (len(rec.Parsed.NameServers) > 0 || len(rec.Parsed.Statuses) > 0) {
		flags |= flagHasDomainMeta
	}
	buf = append(buf, flags)
	buf = appendString(buf, rec.Domain)
	buf = appendString(buf, rec.Facts.Registrar)
	buf = appendString(buf, rec.Facts.Country)
	buf = binary.AppendUvarint(buf, uint64(rec.Facts.CreatedYear))
	buf = appendString(buf, rec.Facts.PrivacySvc)
	buf = appendString(buf, rec.Facts.Org)
	if rec.Text != "" {
		buf = appendString(buf, rec.Text)
	}
	if pr := rec.Parsed; pr != nil {
		buf = appendString(buf, pr.Registrar)
		buf = appendString(buf, pr.RegistrarURL)
		buf = appendString(buf, pr.DomainName)
		buf = appendString(buf, pr.WhoisServer)
		buf = appendString(buf, pr.CreatedDate)
		buf = appendString(buf, pr.UpdatedDate)
		buf = appendString(buf, pr.ExpiresDate)
		buf = appendContact(buf, &pr.Registrant)
		buf = binary.AppendUvarint(buf, uint64(len(pr.Lines)))
		for i := range pr.Lines {
			buf = appendString(buf, pr.Lines[i].Raw)
			buf = append(buf, byte(pr.Blocks[i]), byte(pr.Fields[i]))
		}
	}
	if modelVersion != "" {
		buf = appendString(buf, modelVersion)
	}
	if flags&flagHasDomainMeta != 0 {
		buf = appendStrings(buf, rec.Parsed.NameServers)
		buf = appendStrings(buf, rec.Parsed.Statuses)
	}
	return buf
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func appendContact(buf []byte, c *core.Contact) []byte {
	buf = appendString(buf, c.Name)
	buf = appendString(buf, c.ID)
	buf = appendString(buf, c.Org)
	buf = appendString(buf, c.Street)
	buf = appendString(buf, c.City)
	buf = appendString(buf, c.State)
	buf = appendString(buf, c.Postcode)
	buf = appendString(buf, c.Country)
	buf = appendString(buf, c.Phone)
	buf = appendString(buf, c.Fax)
	buf = appendString(buf, c.Email)
	return buf
}

// reader is a bounds-checked cursor over a payload. Every read method
// reports failure instead of panicking or reading past the slice — the
// decoder's fuzz target leans on this.
type reader struct {
	b   []byte
	pos int
	bad bool
}

func (r *reader) fail() { r.bad = true }

func (r *reader) byte() byte {
	if r.bad || r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.pos]
	r.pos++
	return c
}

func (r *reader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.bad {
		return ""
	}
	if n > uint64(len(r.b)-r.pos) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// decodeRecord parses one payload produced by appendRecord. It never
// panics or over-reads: every length is validated against the remaining
// bytes before use.
func decodeRecord(payload []byte) (*Record, error) {
	r := &reader{b: payload}
	if kind := r.byte(); r.bad || kind != recordKind {
		return nil, fmt.Errorf("%w: unknown kind", ErrBadRecord)
	}
	flags := r.byte()
	rec := &Record{}
	rec.Domain = r.str()
	rec.Facts.Registrar = r.str()
	rec.Facts.Country = r.str()
	year := r.uvarint()
	rec.Facts.PrivacySvc = r.str()
	rec.Facts.Org = r.str()
	if r.bad {
		return nil, fmt.Errorf("%w: truncated facts", ErrBadRecord)
	}
	if year > 9999 {
		return nil, fmt.Errorf("%w: implausible year %d", ErrBadRecord, year)
	}
	rec.Facts.Domain = rec.Domain
	rec.Facts.CreatedYear = int(year)
	rec.Facts.Privacy = flags&flagPrivacy != 0
	rec.Facts.Blacklisted = flags&flagBlacklisted != 0
	if flags&flagHasText != 0 {
		rec.Text = r.str()
	}
	if flags&flagHasParsed != 0 {
		pr := &core.ParsedRecord{}
		pr.Registrar = r.str()
		pr.RegistrarURL = r.str()
		pr.DomainName = r.str()
		pr.WhoisServer = r.str()
		pr.CreatedDate = r.str()
		pr.UpdatedDate = r.str()
		pr.ExpiresDate = r.str()
		decodeContact(r, &pr.Registrant)
		nLines := r.uvarint()
		if r.bad {
			return nil, fmt.Errorf("%w: truncated parsed record", ErrBadRecord)
		}
		// Each line costs at least 3 bytes (empty-string varint + two
		// label bytes), so a count beyond remaining/3 is corrupt — reject
		// before allocating.
		if nLines > uint64(len(payload)-r.pos)/3 {
			return nil, fmt.Errorf("%w: line count %d exceeds payload", ErrBadRecord, nLines)
		}
		pr.Lines = make([]tokenize.Line, nLines)
		pr.Blocks = make([]labels.Block, nLines)
		pr.Fields = make([]labels.Field, nLines)
		for i := range pr.Lines {
			pr.Lines[i].Raw = r.str()
			b, fd := r.byte(), r.byte()
			if r.bad {
				return nil, fmt.Errorf("%w: truncated line %d", ErrBadRecord, i)
			}
			if int(b) >= labels.NumBlocks || int(fd) >= labels.NumFields {
				return nil, fmt.Errorf("%w: label out of range at line %d", ErrBadRecord, i)
			}
			pr.Blocks[i] = labels.Block(b)
			pr.Fields[i] = labels.Field(fd)
		}
		rec.Parsed = pr
	}
	if flags&flagHasModelVersion != 0 {
		rec.Facts.ModelVersion = r.str()
		if rec.Parsed != nil {
			rec.Parsed.ModelVersion = rec.Facts.ModelVersion
		}
	}
	if flags&flagHasDomainMeta != 0 {
		if rec.Parsed == nil {
			return nil, fmt.Errorf("%w: domain meta without parsed record", ErrBadRecord)
		}
		rec.Parsed.NameServers = decodeStrings(r)
		rec.Parsed.Statuses = decodeStrings(r)
	}
	if r.bad {
		return nil, fmt.Errorf("%w: truncated payload", ErrBadRecord)
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecord, len(payload)-r.pos)
	}
	return rec, nil
}

// decodeStrings mirrors appendStrings. A zero count decodes to nil so
// the encoder/decoder stay exact mirrors (the encoder never writes an
// empty list without the gating flag's other half being non-empty).
func decodeStrings(r *reader) []string {
	n := r.uvarint()
	if r.bad {
		return nil
	}
	// Each entry costs at least one byte (its length varint), so a count
	// beyond the remaining bytes is corrupt — reject before allocating.
	if n > uint64(len(r.b)-r.pos) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

func decodeContact(r *reader, c *core.Contact) {
	c.Name = r.str()
	c.ID = r.str()
	c.Org = r.str()
	c.Street = r.str()
	c.City = r.str()
	c.State = r.str()
	c.Postcode = r.str()
	c.Country = r.str()
	c.Phone = r.str()
	c.Fax = r.str()
	c.Email = r.str()
}

// Block frames. A block payload is
//
//	[blockKind] [count uvarint] [rawLen uvarint] [flate(raw)]
//
// where raw is the concatenation of count uvarint-length-prefixed record
// payloads. The frame envelope's CRC32C covers the compressed bytes, so
// every block keeps the same per-frame corruption detection as a plain
// record frame; rawLen bounds the decompression up front so a corrupt
// header can never balloon memory.
const (
	// maxBlockRaw caps a block's uncompressed size. CompressSealed
	// flushes well below this; the decoder refuses anything larger
	// before allocating.
	maxBlockRaw = 16 << 20
)

// ErrBadBlock marks a block payload that fails structural validation
// (bad counts, short decompression, trailing bytes).
var ErrBadBlock = errors.New("store: malformed block payload")

// appendBlock encodes payloads as one compressed block payload appended
// to buf.
func appendBlock(buf []byte, payloads [][]byte) ([]byte, error) {
	var rawLen int
	for _, p := range payloads {
		rawLen += binary.MaxVarintLen64 + len(p)
	}
	raw := make([]byte, 0, rawLen)
	for _, p := range payloads {
		raw = binary.AppendUvarint(raw, uint64(len(p)))
		raw = append(raw, p...)
	}
	if len(raw) > maxBlockRaw {
		return nil, fmt.Errorf("%w: %d raw bytes", ErrBadBlock, len(raw))
	}
	buf = append(buf, blockKind)
	buf = binary.AppendUvarint(buf, uint64(len(payloads)))
	buf = binary.AppendUvarint(buf, uint64(len(raw)))
	var cb bytes.Buffer
	zw, err := flate.NewWriter(&cb, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return append(buf, cb.Bytes()...), nil
}

// decodeBlock splits a block payload into its record payloads. The
// returned slices alias one freshly allocated buffer, so they stay valid
// after the caller's frame buffer is reused. It never panics and bounds
// every allocation against the declared sizes.
func decodeBlock(payload []byte) ([][]byte, error) {
	r := &reader{b: payload}
	if kind := r.byte(); r.bad || kind != blockKind {
		return nil, fmt.Errorf("%w: not a block", ErrBadBlock)
	}
	count := r.uvarint()
	rawLen := r.uvarint()
	if r.bad {
		return nil, fmt.Errorf("%w: truncated header", ErrBadBlock)
	}
	if rawLen > maxBlockRaw {
		return nil, fmt.Errorf("%w: %d raw bytes", ErrBadBlock, rawLen)
	}
	// The smallest valid record payload is several bytes; each entry also
	// carries a length prefix. Anything denser than 8 bytes/record is
	// structurally impossible — reject before allocating count headers.
	if count == 0 || count > rawLen/8+1 {
		return nil, fmt.Errorf("%w: %d records in %d raw bytes", ErrBadBlock, count, rawLen)
	}
	zr := flate.NewReader(bytes.NewReader(payload[r.pos:]))
	defer zr.Close()
	raw := make([]byte, int(rawLen))
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("%w: short decompression: %v", ErrBadBlock, err)
	}
	var one [1]byte
	if n, _ := zr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: oversized decompression", ErrBadBlock)
	}
	out := make([][]byte, 0, count)
	br := &reader{b: raw}
	for i := uint64(0); i < count; i++ {
		n := br.uvarint()
		if br.bad || n > uint64(len(raw)-br.pos) {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrBadBlock, i)
		}
		out = append(out, raw[br.pos:br.pos+int(n)])
		br.pos += int(n)
	}
	if br.pos != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing raw bytes", ErrBadBlock, len(raw)-br.pos)
	}
	return out, nil
}

// isBlockPayload reports whether a frame payload is a compressed block.
func isBlockPayload(payload []byte) bool {
	return len(payload) > 0 && payload[0] == blockKind
}

// EncodeRecord appends rec's payload encoding to buf and returns the
// extended slice — the store's bounds-checked record codec exposed for
// the cluster shard protocol, whose wire format carries parsed records
// in exactly the segment-log payload layout (so the two can never drift
// apart on what a record is). The frame envelope (length, CRC) is the
// transport's business, not the payload's.
func EncodeRecord(buf []byte, rec *Record) []byte { return appendRecord(buf, rec) }

// DecodeRecord parses one payload produced by EncodeRecord (or read
// from a segment frame). It never panics or over-reads on corrupt
// input.
func DecodeRecord(payload []byte) (*Record, error) { return decodeRecord(payload) }

// appendFrame wraps payload in the frame envelope: length varint, bytes,
// CRC32C.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

// frameScanner streams frames off a reader with a single reusable
// payload buffer, so iterating a multi-gigabyte segment holds one frame
// in memory at a time. It tracks byte offsets for the sparse index and
// for recovery truncation.
type frameScanner struct {
	r   *bufio.Reader
	off int64  // offset of the next unread byte
	buf []byte // reusable payload buffer
}

func newFrameScanner(r io.Reader, start int64) *frameScanner {
	return &frameScanner{r: bufio.NewReaderSize(r, 1<<16), off: start}
}

// next returns the next frame's payload and its start offset. A clean
// end of input returns io.EOF; input that ends mid-frame returns
// ErrTornFrame; an intact frame failing its checksum returns
// ErrBadChecksum. The payload is only valid until the following call.
func (fs *frameScanner) next() (payload []byte, start int64, err error) {
	start = fs.off
	// Length varint, byte by byte. A valid length fits 4 bytes
	// (maxFramePayload < 2^28); anything longer is corruption, but at the
	// tail of a segment it is indistinguishable from a torn write, so it
	// reports ErrTornFrame and the caller decides.
	var n uint64
	for shift := uint(0); ; shift += 7 {
		c, rerr := fs.r.ReadByte()
		if rerr != nil {
			if shift == 0 && rerr == io.EOF {
				return nil, start, io.EOF
			}
			return nil, start, ErrTornFrame
		}
		fs.off++
		n |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		if shift >= 28 {
			return nil, start, ErrTornFrame
		}
	}
	if n > maxFramePayload {
		return nil, start, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	need := int(n) + frameCRCLen
	if cap(fs.buf) < need {
		fs.buf = make([]byte, need)
	}
	b := fs.buf[:need]
	if _, rerr := io.ReadFull(fs.r, b); rerr != nil {
		return nil, start, ErrTornFrame
	}
	fs.off += int64(need)
	payload = b[:n]
	want := binary.LittleEndian.Uint32(b[n:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, start, ErrBadChecksum
	}
	return payload, start, nil
}
