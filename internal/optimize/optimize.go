// Package optimize implements the numerical optimizers used to train the
// conditional random fields in this repository: a limited-memory BFGS
// (L-BFGS) with a backtracking Wolfe line search, plain gradient descent as
// a fallback, and stochastic gradient descent with step decay.
//
// The paper ("Who is .com?", IMC 2015, §3.1 and §3.3) estimates CRF
// parameters by maximizing a convex conditional log-likelihood with L-BFGS,
// and mentions a parallel implementation; our Objective interface lets the
// caller evaluate batch gradients across goroutines (see internal/crf).
package optimize

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Objective is a differentiable function to be minimized.
//
// Eval must return the function value at theta and write the gradient into
// grad (which has the same length as theta). Implementations may evaluate
// the sum over training examples in parallel; Eval itself is called
// sequentially by the optimizers.
type Objective interface {
	Eval(theta []float64, grad []float64) float64
	Dim() int
}

// FuncObjective adapts a plain function to the Objective interface.
type FuncObjective struct {
	N int
	F func(theta, grad []float64) float64
}

// Eval implements Objective.
func (f FuncObjective) Eval(theta, grad []float64) float64 { return f.F(theta, grad) }

// Dim implements Objective.
func (f FuncObjective) Dim() int { return f.N }

// Result reports how an optimization run ended.
type Result struct {
	X          []float64 // final parameters
	Value      float64   // final objective value
	GradNorm   float64   // max-abs of the final gradient
	Iterations int       // iterations actually performed
	Converged  bool      // true if the gradient tolerance was met
	Evals      int       // number of objective evaluations
}

// LBFGSConfig controls the L-BFGS run. The zero value is not usable; use
// DefaultLBFGSConfig.
type LBFGSConfig struct {
	// History is the number of (s, y) correction pairs retained (m in the
	// literature). Typical values are 3–20.
	History int
	// MaxIterations bounds the outer iteration count.
	MaxIterations int
	// GradTol stops the run once the max-abs gradient entry drops below it.
	GradTol float64
	// FuncTol stops the run when the relative objective improvement between
	// successive iterations falls below it.
	FuncTol float64
	// MaxLineSearch bounds backtracking steps per iteration.
	MaxLineSearch int
	// Callback, when non-nil, observes each accepted iterate. Returning
	// false stops the run early (reported as converged=false).
	Callback func(iter int, value float64, gradNorm float64) bool
}

// DefaultLBFGSConfig returns the configuration used throughout this
// repository: 7 correction pairs, tight-enough tolerances for the parsing
// experiments, and a generous iteration budget.
func DefaultLBFGSConfig() LBFGSConfig {
	return LBFGSConfig{
		History:       7,
		MaxIterations: 200,
		GradTol:       1e-4,
		FuncTol:       1e-9,
		MaxLineSearch: 40,
	}
}

// ErrDimension reports a mismatch between the objective dimension and the
// starting point.
var ErrDimension = errors.New("optimize: dimension mismatch")

// LBFGS minimizes obj starting from x0 using the two-loop recursion of
// Nocedal & Wright (Numerical Optimization, 2nd ed., Alg. 7.4-7.5) with a
// backtracking line search enforcing the Armijo (sufficient decrease)
// condition and a curvature check before accepting correction pairs.
func LBFGS(obj Objective, x0 []float64, cfg LBFGSConfig) (Result, error) {
	n := obj.Dim()
	if len(x0) != n {
		return Result{}, fmt.Errorf("%w: objective dim %d, x0 len %d", ErrDimension, n, len(x0))
	}
	if cfg.History <= 0 {
		cfg.History = 7
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 200
	}
	if cfg.MaxLineSearch <= 0 {
		cfg.MaxLineSearch = 40
	}

	x := mathx.Clone(x0)
	grad := make([]float64, n)
	value := obj.Eval(x, grad)
	evals := 1

	// Correction-pair ring buffers.
	sHist := make([][]float64, 0, cfg.History)
	yHist := make([][]float64, 0, cfg.History)
	rhoHist := make([]float64, 0, cfg.History)

	dir := make([]float64, n)
	alpha := make([]float64, cfg.History)
	xNext := make([]float64, n)
	gradNext := make([]float64, n)

	res := Result{X: x, Value: value, GradNorm: mathx.MaxAbs(grad)}
	if res.GradNorm <= cfg.GradTol {
		res.Converged = true
		res.Evals = evals
		return res, nil
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// Two-loop recursion: dir = -H grad.
		copy(dir, grad)
		k := len(sHist)
		for i := k - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * mathx.Dot(sHist[i], dir)
			mathx.AXPY(-alpha[i], yHist[i], dir)
		}
		if k > 0 {
			// Initial Hessian scaling gamma = s·y / y·y from the newest pair.
			sy := mathx.Dot(sHist[k-1], yHist[k-1])
			yy := mathx.Dot(yHist[k-1], yHist[k-1])
			if yy > 0 {
				mathx.Scale(sy/yy, dir)
			}
		}
		for i := 0; i < k; i++ {
			beta := rhoHist[i] * mathx.Dot(yHist[i], dir)
			mathx.AXPY(alpha[i]-beta, sHist[i], dir)
		}
		mathx.Scale(-1, dir)

		dirDeriv := mathx.Dot(grad, dir)
		if dirDeriv >= 0 {
			// Not a descent direction (numerical trouble); restart with
			// steepest descent.
			copy(dir, grad)
			mathx.Scale(-1, dir)
			dirDeriv = mathx.Dot(grad, dir)
			sHist, yHist, rhoHist = sHist[:0], yHist[:0], rhoHist[:0]
			if dirDeriv == 0 {
				res.Converged = true
				break
			}
		}

		// Backtracking Armijo line search.
		step := 1.0
		if iter == 0 {
			// First step: scale so the initial move is modest.
			if g := mathx.Norm2(grad); g > 0 {
				step = math.Min(1.0, 1.0/g)
			}
		}
		const c1 = 1e-4
		var valNext float64
		accepted := false
		for ls := 0; ls < cfg.MaxLineSearch; ls++ {
			copy(xNext, x)
			mathx.AXPY(step, dir, xNext)
			valNext = obj.Eval(xNext, gradNext)
			evals++
			if valNext <= value+c1*step*dirDeriv && !math.IsNaN(valNext) && !math.IsInf(valNext, 0) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			// Line search failed; the current point is the best we can do.
			break
		}

		// Correction pair s = xNext - x, y = gradNext - grad.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = xNext[i] - x[i]
			y[i] = gradNext[i] - grad[i]
		}
		if sy := mathx.Dot(s, y); sy > 1e-10 {
			if len(sHist) == cfg.History {
				sHist = append(sHist[1:], s)
				yHist = append(yHist[1:], y)
				rhoHist = append(rhoHist[1:], 1/sy)
			} else {
				sHist = append(sHist, s)
				yHist = append(yHist, y)
				rhoHist = append(rhoHist, 1/sy)
			}
		}

		prevValue := value
		copy(x, xNext)
		copy(grad, gradNext)
		value = valNext

		res.Iterations = iter + 1
		res.Value = value
		res.GradNorm = mathx.MaxAbs(grad)

		if cfg.Callback != nil && !cfg.Callback(iter+1, value, res.GradNorm) {
			break
		}
		if res.GradNorm <= cfg.GradTol {
			res.Converged = true
			break
		}
		if rel := math.Abs(prevValue-value) / math.Max(1, math.Abs(prevValue)); rel <= cfg.FuncTol {
			res.Converged = true
			break
		}
	}

	res.X = x
	res.Evals = evals
	return res, nil
}

// GradientDescent minimizes obj with a fixed number of backtracking
// steepest-descent steps. It exists as a deliberately simple reference
// optimizer for tests comparing against L-BFGS.
func GradientDescent(obj Objective, x0 []float64, steps int, initialStep float64) (Result, error) {
	n := obj.Dim()
	if len(x0) != n {
		return Result{}, fmt.Errorf("%w: objective dim %d, x0 len %d", ErrDimension, n, len(x0))
	}
	x := mathx.Clone(x0)
	grad := make([]float64, n)
	xNext := make([]float64, n)
	gradNext := make([]float64, n)
	value := obj.Eval(x, grad)
	evals := 1
	for iter := 0; iter < steps; iter++ {
		step := initialStep
		improved := false
		for ls := 0; ls < 30; ls++ {
			copy(xNext, x)
			mathx.AXPY(-step, grad, xNext)
			v := obj.Eval(xNext, gradNext)
			evals++
			if v < value {
				copy(x, xNext)
				copy(grad, gradNext)
				value = v
				improved = true
				break
			}
			step *= 0.5
		}
		if !improved {
			break
		}
	}
	return Result{X: x, Value: value, GradNorm: mathx.MaxAbs(grad), Iterations: steps, Evals: evals, Converged: true}, nil
}
