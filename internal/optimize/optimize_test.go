package optimize

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

// quadratic builds f(x) = 0.5 Σ c_i (x_i - m_i)^2, whose minimum is m.
func quadratic(c, m []float64) Objective {
	return FuncObjective{
		N: len(c),
		F: func(theta, grad []float64) float64 {
			var v float64
			for i := range theta {
				d := theta[i] - m[i]
				v += 0.5 * c[i] * d * d
				grad[i] = c[i] * d
			}
			return v
		},
	}
}

// rosenbrock is the classic banana-valley test function, minimum at (1,1).
var rosenbrock = FuncObjective{
	N: 2,
	F: func(x, g []float64) float64 {
		a, b := x[0], x[1]
		g[0] = -2*(1-a) - 400*a*(b-a*a)
		g[1] = 200 * (b - a*a)
		return (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	},
}

func TestLBFGSQuadratic(t *testing.T) {
	c := []float64{1, 10, 0.1, 5}
	m := []float64{3, -2, 7, 0.5}
	res, err := LBFGS(quadratic(c, m), make([]float64, 4), DefaultLBFGSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: %+v", res)
	}
	for i := range m {
		if math.Abs(res.X[i]-m[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], m[i])
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	cfg := DefaultLBFGSConfig()
	cfg.MaxIterations = 500
	cfg.GradTol = 1e-6
	res, err := LBFGS(rosenbrock, []float64{-1.2, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum not found: %v (value %v)", res.X, res.Value)
	}
}

func TestLBFGSDimensionMismatch(t *testing.T) {
	_, err := LBFGS(rosenbrock, make([]float64, 3), DefaultLBFGSConfig())
	if err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestLBFGSAlreadyConverged(t *testing.T) {
	c := []float64{1, 1}
	m := []float64{0, 0}
	res, err := LBFGS(quadratic(c, m), []float64{0, 0}, DefaultLBFGSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("starting at the optimum should converge immediately: %+v", res)
	}
}

func TestLBFGSCallbackStops(t *testing.T) {
	cfg := DefaultLBFGSConfig()
	calls := 0
	cfg.Callback = func(iter int, v, g float64) bool {
		calls++
		return false
	}
	res, err := LBFGS(quadratic([]float64{1, 1}, []float64{5, 5}), make([]float64, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("callback called %d times, want 1", calls)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestLBFGSMonotoneDecrease(t *testing.T) {
	cfg := DefaultLBFGSConfig()
	var values []float64
	cfg.Callback = func(iter int, v, g float64) bool {
		values = append(values, v)
		return true
	}
	if _, err := LBFGS(rosenbrock, []float64{-1.2, 1}, cfg); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(values); i++ {
		if values[i] > values[i-1]+1e-12 {
			t.Fatalf("objective increased at iter %d: %v -> %v", i, values[i-1], values[i])
		}
	}
}

func TestGradientDescentQuadratic(t *testing.T) {
	c := []float64{2, 2}
	m := []float64{1, -1}
	res, err := GradientDescent(quadratic(c, m), make([]float64, 2), 200, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if math.Abs(res.X[i]-m[i]) > 1e-3 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], m[i])
		}
	}
}

func TestLBFGSBeatsGradientDescent(t *testing.T) {
	// On the ill-conditioned Rosenbrock function, L-BFGS with a fixed
	// evaluation budget should reach a much lower value.
	budgetGD, _ := GradientDescent(rosenbrock, []float64{-1.2, 1}, 30, 1e-3)
	cfg := DefaultLBFGSConfig()
	cfg.MaxIterations = 30
	budgetLB, err := LBFGS(rosenbrock, []float64{-1.2, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if budgetLB.Value >= budgetGD.Value {
		t.Errorf("L-BFGS (%v) should beat gradient descent (%v) at equal iterations",
			budgetLB.Value, budgetGD.Value)
	}
}

// sumQuadratic is a stochastic objective: mean of per-example quadratics.
type sumQuadratic struct {
	centers [][]float64
}

func (s sumQuadratic) Dim() int         { return len(s.centers[0]) }
func (s sumQuadratic) NumExamples() int { return len(s.centers) }
func (s sumQuadratic) EvalExample(i int, theta, grad []float64) float64 {
	var v float64
	for k := range theta {
		d := theta[k] - s.centers[i][k]
		v += 0.5 * d * d
		grad[k] += d
	}
	return v
}

func TestSGDFindsMeanOfCenters(t *testing.T) {
	obj := sumQuadratic{centers: [][]float64{{1, 5}, {3, 7}, {2, 6}}}
	cfg := DefaultSGDConfig()
	cfg.Epochs = 200
	cfg.Eta0 = 0.2
	cfg.Decay = 0.01
	res, err := SGD(obj, make([]float64, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The minimizer of the sum is the mean of the centers: (2, 6).
	if math.Abs(res.X[0]-2) > 0.1 || math.Abs(res.X[1]-6) > 0.1 {
		t.Errorf("SGD result %v, want near (2, 6)", res.X)
	}
}

func TestSGDDeterministicWithSeed(t *testing.T) {
	obj := sumQuadratic{centers: [][]float64{{1}, {2}, {3}, {4}}}
	cfg := DefaultSGDConfig()
	cfg.Epochs = 5
	a, err := SGD(obj, []float64{0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SGD(obj, []float64{0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.X[0] != b.X[0] {
		t.Errorf("same seed produced different results: %v vs %v", a.X[0], b.X[0])
	}
}

func TestSGDDimensionMismatch(t *testing.T) {
	obj := sumQuadratic{centers: [][]float64{{1, 2}}}
	if _, err := SGD(obj, []float64{0}, DefaultSGDConfig()); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSGDCallbackEarlyStop(t *testing.T) {
	obj := sumQuadratic{centers: [][]float64{{1}, {2}}}
	cfg := DefaultSGDConfig()
	cfg.Epochs = 100
	epochs := 0
	cfg.Callback = func(e int, loss float64) bool {
		epochs = e
		return e < 3
	}
	if _, err := SGD(obj, []float64{0}, cfg); err != nil {
		t.Fatal(err)
	}
	if epochs != 3 {
		t.Errorf("stopped after %d epochs, want 3", epochs)
	}
}

func TestLBFGSHighDimensional(t *testing.T) {
	// A 500-dimensional quadratic with varied curvature converges fast.
	n := 500
	c := make([]float64, n)
	m := make([]float64, n)
	for i := range c {
		c[i] = 0.5 + float64(i%17)
		m[i] = float64(i%5) - 2
	}
	res, err := LBFGS(quadratic(c, m), make([]float64, n), DefaultLBFGSConfig())
	if err != nil {
		t.Fatal(err)
	}
	var dist float64
	for i := range m {
		dist += (res.X[i] - m[i]) * (res.X[i] - m[i])
	}
	if math.Sqrt(dist) > 1e-2 {
		t.Errorf("high-dimensional quadratic: distance to optimum %v", math.Sqrt(dist))
	}
	if res.GradNorm > 1e-3 {
		t.Errorf("gradient norm %v too large", res.GradNorm)
	}
	_ = mathx.NegInf
}

// regQuadratic folds an explicit per-example L2 term into EvalExample, the
// pre-WeightDecay formulation, as the reference for the fused decay path.
type regQuadratic struct {
	sumQuadratic
	lam float64
}

func (r regQuadratic) EvalExample(i int, theta, grad []float64) float64 {
	v := r.sumQuadratic.EvalExample(i, theta, grad)
	var reg float64
	for k, th := range theta {
		reg += th * th
		grad[k] += r.lam * th
	}
	return v + 0.5*r.lam*reg
}

func TestSGDWeightDecayMatchesExplicitRegularizer(t *testing.T) {
	base := sumQuadratic{centers: [][]float64{{1, 5}, {3, 7}, {2, 6}, {0, 4}}}
	const lam = 0.05
	cfg := DefaultSGDConfig()
	cfg.Epochs = 40
	explicit, err := SGD(regQuadratic{base, lam}, []float64{0.5, -0.5}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused := cfg
	fused.WeightDecay = lam
	decayed, err := SGD(base, []float64{0.5, -0.5}, fused)
	if err != nil {
		t.Fatal(err)
	}
	// The update θ ← (1−ηλ)θ − ηg is algebraically θ ← θ − η(g + λθ), so
	// the iterates must agree to rounding.
	for k := range explicit.X {
		if math.Abs(explicit.X[k]-decayed.X[k]) > 1e-9 {
			t.Fatalf("x[%d]: explicit %v, fused decay %v", k, explicit.X[k], decayed.X[k])
		}
	}
	// Reported losses differ only in where within the epoch the regularizer
	// is sampled; they must still agree closely once converged.
	if diff := math.Abs(explicit.Value - decayed.Value); diff > 1e-2*(1+math.Abs(explicit.Value)) {
		t.Fatalf("loss mismatch: explicit %v, fused decay %v", explicit.Value, decayed.Value)
	}
}
