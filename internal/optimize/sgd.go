package optimize

import (
	"fmt"
	"math/rand"

	"repro/internal/mathx"
)

// StochasticObjective exposes a per-example view of a sum-structured
// objective, as needed by stochastic gradient descent. The total objective
// is assumed to be (1/NumExamples)·Σ_i f_i(θ) plus any regularizer the
// implementation folds into EvalExample.
type StochasticObjective interface {
	// NumExamples reports how many terms the sum has.
	NumExamples() int
	// EvalExample returns f_i(theta) and accumulates ∇f_i into grad
	// (grad is zeroed by the caller before each call).
	EvalExample(i int, theta, grad []float64) float64
	Dim() int
}

// SGDConfig controls stochastic gradient descent.
type SGDConfig struct {
	// Epochs is the number of full passes over the training examples.
	Epochs int
	// Eta0 is the initial learning rate.
	Eta0 float64
	// Decay controls the 1/(1+Decay·t) step-size schedule, with t counted
	// in examples processed.
	Decay float64
	// Seed seeds the shuffling PRNG so runs are reproducible.
	Seed int64
	// WeightDecay, when positive, adds a 0.5·WeightDecay·‖θ‖² term per
	// example, applied analytically as multiplicative decay fused into the
	// update step: θ ← (1 − η·WeightDecay)·θ − η·∇f_i(θ). This is the
	// gradient step for f_i(θ) + 0.5·WeightDecay·‖θ‖² without the O(dim)
	// regularizer scan per example; the reported per-epoch loss adds
	// 0.5·WeightDecay·‖θ‖² (at the epoch-final iterate) back once.
	WeightDecay float64
	// Callback, when non-nil, observes the average per-example loss after
	// each epoch. Returning false stops training early.
	Callback func(epoch int, avgLoss float64) bool
}

// DefaultSGDConfig returns the schedule used by the SGD-vs-L-BFGS ablation.
func DefaultSGDConfig() SGDConfig {
	return SGDConfig{Epochs: 30, Eta0: 0.1, Decay: 1e-3, Seed: 1}
}

// SGD minimizes obj by cycling over shuffled examples with a decaying step
// size. It is the "stochastic gradient descent" routine the paper mentions
// alongside L-BFGS (§3.3).
func SGD(obj StochasticObjective, x0 []float64, cfg SGDConfig) (Result, error) {
	n := obj.Dim()
	if len(x0) != n {
		return Result{}, fmt.Errorf("%w: objective dim %d, x0 len %d", ErrDimension, n, len(x0))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.Eta0 <= 0 {
		cfg.Eta0 = 0.1
	}
	x := mathx.Clone(x0)
	grad := make([]float64, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(obj.NumExamples())
	var t int
	var lastAvg float64
	evals := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			mathx.Fill(grad, 0)
			total += obj.EvalExample(idx, x, grad)
			evals++
			eta := cfg.Eta0 / (1 + cfg.Decay*float64(t))
			if cfg.WeightDecay > 0 {
				mathx.DecayAXPY(1-eta*cfg.WeightDecay, -eta, grad, x)
			} else {
				mathx.AXPY(-eta, grad, x)
			}
			t++
		}
		lastAvg = total / float64(len(order))
		if cfg.WeightDecay > 0 {
			nrm := mathx.Norm2(x)
			lastAvg += 0.5 * cfg.WeightDecay * nrm * nrm
		}
		if cfg.Callback != nil && !cfg.Callback(epoch+1, lastAvg) {
			break
		}
	}
	return Result{X: x, Value: lastAvg, Iterations: cfg.Epochs, Evals: evals, Converged: true}, nil
}
