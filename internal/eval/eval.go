// Package eval implements the paper's evaluation protocol (§5): line and
// document error rates, five-fold cross-validation, and training-set-size
// sweeps comparing parsers built from the same labeled subsets.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// BlockParser is any parser that labels each retained line of a record
// with a first-level block. Both the statistical and rule-based parsers
// satisfy it.
type BlockParser interface {
	ParseBlocks(text string) ([]tokenize.Line, []labels.Block)
}

// FieldParser additionally assigns second-level registrant fields.
type FieldParser interface {
	BlockParser
	ParseFields(lines []tokenize.Line, blocks []labels.Block) []labels.Field
}

// Metrics accumulates error counts over an evaluation set.
type Metrics struct {
	Lines      int // total labeled lines
	LineErrors int // mislabeled lines
	Docs       int // total records
	DocErrors  int // records with >= 1 mislabeled line
}

// LineErrorRate is the fraction of mislabeled lines (Figure 2's metric).
func (m Metrics) LineErrorRate() float64 {
	if m.Lines == 0 {
		return 0
	}
	return float64(m.LineErrors) / float64(m.Lines)
}

// DocErrorRate is the fraction of imperfect records (Figure 3's metric).
func (m Metrics) DocErrorRate() float64 {
	if m.Docs == 0 {
		return 0
	}
	return float64(m.DocErrors) / float64(m.Docs)
}

// Add merges another Metrics into m.
func (m *Metrics) Add(o Metrics) {
	m.Lines += o.Lines
	m.LineErrors += o.LineErrors
	m.Docs += o.Docs
	m.DocErrors += o.DocErrors
}

// EvalBlocks measures first-level performance of p on labeled records.
// Records whose tokenization does not align with their labels are skipped
// with an error (they indicate corpus corruption, not parser error).
func EvalBlocks(p BlockParser, records []*labels.LabeledRecord) (Metrics, error) {
	var m Metrics
	for _, rec := range records {
		_, blocks := p.ParseBlocks(rec.Text)
		if len(blocks) != len(rec.Lines) {
			return m, fmt.Errorf("eval: record %s: parser returned %d labels for %d lines",
				rec.Domain, len(blocks), len(rec.Lines))
		}
		bad := 0
		for i, b := range blocks {
			if b != rec.Lines[i].Block {
				bad++
			}
		}
		m.Lines += len(blocks)
		m.LineErrors += bad
		m.Docs++
		if bad > 0 {
			m.DocErrors++
		}
	}
	return m, nil
}

// EvalFields measures second-level performance on the lines whose ground
// truth is Registrant. Block prediction errors count as field errors too,
// since a missed registrant line yields no field.
func EvalFields(p FieldParser, records []*labels.LabeledRecord) (Metrics, error) {
	var m Metrics
	for _, rec := range records {
		lines, blocks := p.ParseBlocks(rec.Text)
		if len(blocks) != len(rec.Lines) {
			return m, fmt.Errorf("eval: record %s: parser returned %d labels for %d lines",
				rec.Domain, len(blocks), len(rec.Lines))
		}
		fields := p.ParseFields(lines, blocks)
		bad := 0
		total := 0
		for i := range blocks {
			if rec.Lines[i].Block != labels.Registrant {
				continue
			}
			total++
			if blocks[i] != labels.Registrant || fields[i] != rec.Lines[i].Field {
				bad++
			}
		}
		if total == 0 {
			continue
		}
		m.Lines += total
		m.LineErrors += bad
		m.Docs++
		if bad > 0 {
			m.DocErrors++
		}
	}
	return m, nil
}

// Factory builds a parser from a training subset. The §5.1 protocol
// constructs both parser types this way ("roll back" for rules, parameter
// restriction for the CRF).
type Factory func(train []*labels.LabeledRecord) (BlockParser, error)

// SweepPoint is one (training size, error statistics) result.
type SweepPoint struct {
	TrainSize   int
	LineMean    float64
	LineStd     float64
	DocMean     float64
	DocStd      float64
	Folds       int
	TotalTrains int
}

// CrossValidate runs the five-fold protocol of §5.1: the records are split
// into `folds` folds; within each fold a training subset of each size is
// drawn, a parser is built from it, and the error is measured on all
// records outside that fold. Mean and standard deviation across folds are
// reported per size.
func CrossValidate(records []*labels.LabeledRecord, sizes []int, folds int, seed int64, factory Factory) ([]SweepPoint, error) {
	if folds < 2 {
		return nil, fmt.Errorf("eval: need at least 2 folds, got %d", folds)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(records))
	foldOf := make([]int, len(records))
	for i, p := range perm {
		foldOf[p] = i % folds
	}

	out := make([]SweepPoint, 0, len(sizes))
	for _, size := range sizes {
		var lineRates, docRates []float64
		for f := 0; f < folds; f++ {
			var inFold, outFold []*labels.LabeledRecord
			for i, rec := range records {
				if foldOf[i] == f {
					inFold = append(inFold, rec)
				} else {
					outFold = append(outFold, rec)
				}
			}
			train := inFold
			if size < len(inFold) {
				idx := rng.Perm(len(inFold))[:size]
				train = make([]*labels.LabeledRecord, size)
				for k, j := range idx {
					train[k] = inFold[j]
				}
			}
			p, err := factory(train)
			if err != nil {
				return nil, fmt.Errorf("eval: build parser (size %d, fold %d): %w", size, f, err)
			}
			m, err := EvalBlocks(p, outFold)
			if err != nil {
				return nil, err
			}
			lineRates = append(lineRates, m.LineErrorRate())
			docRates = append(docRates, m.DocErrorRate())
		}
		lm, ls := meanStd(lineRates)
		dm, ds := meanStd(docRates)
		out = append(out, SweepPoint{
			TrainSize: size, LineMean: lm, LineStd: ls,
			DocMean: dm, DocStd: ds, Folds: folds, TotalTrains: folds,
		})
	}
	return out, nil
}

// FieldFactory builds a field-capable parser from a training subset.
type FieldFactory func(train []*labels.LabeledRecord) (FieldParser, error)

// CrossValidateFields runs the five-fold protocol over second-level
// (registrant subfield) labeling — the companion sweep to Figures 2–3 for
// the paper's second CRF.
func CrossValidateFields(records []*labels.LabeledRecord, sizes []int, folds int, seed int64, factory FieldFactory) ([]SweepPoint, error) {
	if folds < 2 {
		return nil, fmt.Errorf("eval: need at least 2 folds, got %d", folds)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(records))
	foldOf := make([]int, len(records))
	for i, p := range perm {
		foldOf[p] = i % folds
	}
	out := make([]SweepPoint, 0, len(sizes))
	for _, size := range sizes {
		var lineRates, docRates []float64
		for f := 0; f < folds; f++ {
			var inFold, outFold []*labels.LabeledRecord
			for i, rec := range records {
				if foldOf[i] == f {
					inFold = append(inFold, rec)
				} else {
					outFold = append(outFold, rec)
				}
			}
			train := inFold
			if size < len(inFold) {
				idx := rng.Perm(len(inFold))[:size]
				train = make([]*labels.LabeledRecord, size)
				for k, j := range idx {
					train[k] = inFold[j]
				}
			}
			p, err := factory(train)
			if err != nil {
				return nil, fmt.Errorf("eval: build field parser (size %d, fold %d): %w", size, f, err)
			}
			m, err := EvalFields(p, outFold)
			if err != nil {
				return nil, err
			}
			lineRates = append(lineRates, m.LineErrorRate())
			docRates = append(docRates, m.DocErrorRate())
		}
		lm, ls := meanStd(lineRates)
		dm, ds := meanStd(docRates)
		out = append(out, SweepPoint{
			TrainSize: size, LineMean: lm, LineStd: ls,
			DocMean: dm, DocStd: ds, Folds: folds, TotalTrains: folds,
		})
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
