package eval

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// fixedParser labels every line with a constant block.
type fixedParser struct{ b labels.Block }

func (f fixedParser) ParseBlocks(text string) ([]tokenize.Line, []labels.Block) {
	lines := tokenize.Tokenize(text, tokenize.Options{})
	out := make([]labels.Block, len(lines))
	for i := range out {
		out[i] = f.b
	}
	return lines, out
}

// oracleParser returns the gold labels (needs the records by text).
type oracleParser struct {
	gold map[string][]labels.Block
}

func (o oracleParser) ParseBlocks(text string) ([]tokenize.Line, []labels.Block) {
	lines := tokenize.Tokenize(text, tokenize.Options{})
	return lines, o.gold[text]
}

func mkRecord(i int, blocks ...labels.Block) *labels.LabeledRecord {
	rec := &labels.LabeledRecord{Domain: fmt.Sprintf("d%d.com", i), TLD: "com", Registrar: "r"}
	for j, b := range blocks {
		line := fmt.Sprintf("field%d: value%d", j, j)
		rec.Text += line + "\n"
		rec.Lines = append(rec.Lines, labels.LabeledLine{Text: line, Block: b, Field: labels.FieldOther})
	}
	rec.Text = rec.Text[:len(rec.Text)-1]
	return rec
}

func TestMetricsRates(t *testing.T) {
	m := Metrics{Lines: 200, LineErrors: 3, Docs: 10, DocErrors: 2}
	if m.LineErrorRate() != 0.015 {
		t.Errorf("line rate %v", m.LineErrorRate())
	}
	if m.DocErrorRate() != 0.2 {
		t.Errorf("doc rate %v", m.DocErrorRate())
	}
	var z Metrics
	if z.LineErrorRate() != 0 || z.DocErrorRate() != 0 {
		t.Error("zero metrics should have zero rates")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Lines: 10, LineErrors: 1, Docs: 2, DocErrors: 1}
	b := Metrics{Lines: 20, LineErrors: 2, Docs: 3, DocErrors: 0}
	a.Add(b)
	if a.Lines != 30 || a.LineErrors != 3 || a.Docs != 5 || a.DocErrors != 1 {
		t.Errorf("Add: %+v", a)
	}
}

func TestEvalBlocksPerfectAndWorst(t *testing.T) {
	recs := []*labels.LabeledRecord{
		mkRecord(0, labels.Domain, labels.Domain),
		mkRecord(1, labels.Domain, labels.Registrar),
	}
	// All-domain parser: record 0 perfect, record 1 has one error.
	m, err := EvalBlocks(fixedParser{labels.Domain}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lines != 4 || m.LineErrors != 1 || m.Docs != 2 || m.DocErrors != 1 {
		t.Errorf("metrics %+v", m)
	}
	// All-null parser errs everywhere.
	m, err = EvalBlocks(fixedParser{labels.Null}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if m.LineErrors != 4 || m.DocErrors != 2 {
		t.Errorf("metrics %+v", m)
	}
}

func TestEvalFieldsCountsOnlyRegistrantLines(t *testing.T) {
	rec := &labels.LabeledRecord{Domain: "x.com", TLD: "com", Registrar: "r",
		Text: "a: 1\nb: 2\nc: 3",
		Lines: []labels.LabeledLine{
			{Text: "a: 1", Block: labels.Domain, Field: labels.FieldOther},
			{Text: "b: 2", Block: labels.Registrant, Field: labels.FieldName},
			{Text: "c: 3", Block: labels.Registrant, Field: labels.FieldEmail},
		}}
	p := fieldsParser{
		blocks: []labels.Block{labels.Domain, labels.Registrant, labels.Registrant},
		fields: []labels.Field{labels.FieldOther, labels.FieldName, labels.FieldPhone},
	}
	m, err := EvalFields(p, []*labels.LabeledRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	if m.Lines != 2 {
		t.Errorf("counted %d registrant lines, want 2", m.Lines)
	}
	if m.LineErrors != 1 {
		t.Errorf("errors %d, want 1 (phone != email)", m.LineErrors)
	}
}

type fieldsParser struct {
	blocks []labels.Block
	fields []labels.Field
}

func (p fieldsParser) ParseBlocks(text string) ([]tokenize.Line, []labels.Block) {
	return tokenize.Tokenize(text, tokenize.Options{}), p.blocks
}

func (p fieldsParser) ParseFields(lines []tokenize.Line, blocks []labels.Block) []labels.Field {
	return p.fields
}

func TestCrossValidateOracle(t *testing.T) {
	var recs []*labels.LabeledRecord
	gold := make(map[string][]labels.Block)
	for i := 0; i < 40; i++ {
		rec := mkRecord(i, labels.Domain, labels.Registrant, labels.Date)
		recs = append(recs, rec)
		gold[rec.Text] = rec.BlockSeq()
	}
	factory := func(train []*labels.LabeledRecord) (BlockParser, error) {
		return oracleParser{gold}, nil
	}
	points, err := CrossValidate(recs, []int{5, 10}, 4, 1, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.LineMean != 0 || pt.DocMean != 0 {
			t.Errorf("oracle parser has nonzero error: %+v", pt)
		}
		if pt.Folds != 4 {
			t.Errorf("folds = %d", pt.Folds)
		}
	}
}

func TestCrossValidateConstantParser(t *testing.T) {
	var recs []*labels.LabeledRecord
	for i := 0; i < 30; i++ {
		// Two of three lines are Domain, so the all-domain parser has a
		// deterministic 1/3 line error rate.
		recs = append(recs, mkRecord(i, labels.Domain, labels.Domain, labels.Null))
	}
	factory := func(train []*labels.LabeledRecord) (BlockParser, error) {
		return fixedParser{labels.Domain}, nil
	}
	points, err := CrossValidate(recs, []int{5}, 3, 2, factory)
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.LineMean < 0.32 || pt.LineMean > 0.34 {
		t.Errorf("line mean %.4f, want 1/3", pt.LineMean)
	}
	if pt.LineStd != 0 {
		t.Errorf("deterministic error should have zero std, got %v", pt.LineStd)
	}
	if pt.DocMean != 1 {
		t.Errorf("every doc has an error; doc mean %v", pt.DocMean)
	}
}

func TestCrossValidateRejectsBadFolds(t *testing.T) {
	if _, err := CrossValidate(nil, []int{1}, 1, 1, nil); err == nil {
		t.Fatal("expected error for 1 fold")
	}
}

func TestEvalBlocksDetectsMisalignment(t *testing.T) {
	rec := mkRecord(0, labels.Domain, labels.Domain)
	bad := fieldsParser{blocks: []labels.Block{labels.Domain}} // wrong length
	if _, err := EvalBlocks(bad, []*labels.LabeledRecord{rec}); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestConfusionMatrix(t *testing.T) {
	recs := []*labels.LabeledRecord{
		mkRecord(0, labels.Domain, labels.Registrant),
		mkRecord(1, labels.Domain, labels.Domain),
	}
	c, err := ConfusionBlocks(fixedParser{labels.Domain}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 4 {
		t.Errorf("total %d", c.Total())
	}
	if c.Counts[labels.Domain][labels.Domain] != 3 {
		t.Errorf("domain diagonal %d", c.Counts[labels.Domain][labels.Domain])
	}
	if c.Counts[labels.Registrant][labels.Domain] != 1 {
		t.Errorf("registrant->domain %d", c.Counts[labels.Registrant][labels.Domain])
	}
	if acc := c.Accuracy(); acc != 0.75 {
		t.Errorf("accuracy %v", acc)
	}
	p, r := c.PrecisionRecall(labels.Domain)
	if p != 0.75 || r != 1 {
		t.Errorf("domain precision %v recall %v", p, r)
	}
	p, r = c.PrecisionRecall(labels.Registrant)
	if p != 1 || r != 0 {
		t.Errorf("registrant precision %v recall %v (no predictions -> precision 1)", p, r)
	}
	out := c.Render()
	if !strings.Contains(out, "overall accuracy: 0.7500") {
		t.Errorf("render: %s", out)
	}
}

func TestConfusionEmpty(t *testing.T) {
	c, err := ConfusionBlocks(fixedParser{labels.Null}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 0 || c.Accuracy() != 0 {
		t.Errorf("empty confusion: %+v", c)
	}
}
