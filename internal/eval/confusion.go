package eval

import (
	"fmt"
	"strings"

	"repro/internal/labels"
)

// Confusion is a first-level confusion matrix: Counts[gold][predicted].
// It backs the error analysis a deployment needs before deciding which
// records to label next (§5.3).
type Confusion struct {
	Counts [labels.NumBlocks][labels.NumBlocks]int
}

// ConfusionBlocks accumulates the confusion matrix of p over records.
func ConfusionBlocks(p BlockParser, records []*labels.LabeledRecord) (*Confusion, error) {
	var c Confusion
	for _, rec := range records {
		_, blocks := p.ParseBlocks(rec.Text)
		if len(blocks) != len(rec.Lines) {
			return nil, fmt.Errorf("eval: record %s: %d predictions for %d lines",
				rec.Domain, len(blocks), len(rec.Lines))
		}
		for i, b := range blocks {
			c.Counts[rec.Lines[i].Block][b]++
		}
	}
	return &c, nil
}

// Total returns the number of classified lines.
func (c *Confusion) Total() int {
	t := 0
	for i := range c.Counts {
		for j := range c.Counts[i] {
			t += c.Counts[i][j]
		}
	}
	return t
}

// Accuracy returns the trace over the total.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := range c.Counts {
		diag += c.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// PrecisionRecall returns per-block precision and recall. Blocks with no
// predictions (or no gold lines) report 1 for the undefined quantity, the
// convention that keeps perfect parsers at 1.0 across the board.
func (c *Confusion) PrecisionRecall(b labels.Block) (precision, recall float64) {
	var predicted, gold int
	for i := 0; i < labels.NumBlocks; i++ {
		predicted += c.Counts[i][int(b)]
		gold += c.Counts[int(b)][i]
	}
	tp := c.Counts[int(b)][int(b)]
	precision, recall = 1, 1
	if predicted > 0 {
		precision = float64(tp) / float64(predicted)
	}
	if gold > 0 {
		recall = float64(tp) / float64(gold)
	}
	return precision, recall
}

// Render prints the matrix with per-block precision/recall columns.
func (c *Confusion) Render() string {
	var b strings.Builder
	names := labels.BlockNames()
	fmt.Fprintf(&b, "%-11s", "gold\\pred")
	for _, n := range names {
		fmt.Fprintf(&b, " %10s", n)
	}
	fmt.Fprintf(&b, " %9s %9s\n", "precision", "recall")
	for i, n := range names {
		fmt.Fprintf(&b, "%-11s", n)
		for j := range names {
			fmt.Fprintf(&b, " %10d", c.Counts[i][j])
		}
		p, r := c.PrecisionRecall(labels.Block(i))
		fmt.Fprintf(&b, " %9.4f %9.4f\n", p, r)
	}
	fmt.Fprintf(&b, "overall accuracy: %.4f over %d lines\n", c.Accuracy(), c.Total())
	return b.String()
}
