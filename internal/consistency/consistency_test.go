package consistency

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/labels"
	"repro/internal/rdap"
	"repro/internal/templates"
	"repro/internal/tokenize"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// fixtureReg is a fixed ground-truth registration both fixture sides
// derive from, so the paired views agree unless a case perturbs one.
func fixtureReg() *templates.Registration {
	person := func(name, email string) identity.Person {
		return identity.Person{
			Name: name, Org: "Example Widgets LLC",
			Street: "1600 Market St", City: "Phoenix", State: "AZ",
			Postcode: "85001", CountryCode: "US", CountryName: "United States",
			Phone: "+1.6025551234", Email: email,
		}
	}
	return &templates.Registration{
		Domain:        "example-consistency.com",
		TLD:           "com",
		RegistrarName: "GoDaddy.com, LLC",
		RegistrarIANA: 146,
		RegistrarURL:  "http://www.godaddy.com",
		WhoisServer:   "whois.godaddy.com",
		Created:       time.Date(2003, 4, 17, 9, 30, 0, 0, time.UTC),
		Updated:       time.Date(2013, 2, 2, 14, 0, 0, 0, time.UTC),
		Expires:       time.Date(2016, 4, 17, 9, 30, 0, 0, time.UTC),
		Registrant:    person("Pat Holder", "pat@example-consistency.com"),
		Admin:         person("Alex Admin", "admin@example-consistency.com"),
		Tech:          person("Terry Tech", "tech@example-consistency.com"),
		NameServers:   []string{"ns1.example-dns.com", "ns2.example-dns.com"},
		Statuses:      []string{"clientTransferProhibited", "clientDeleteProhibited"},
	}
}

// whoisFromReg builds the WHOIS-side view the parser would extract from
// a faithful record: same truth, WHOIS date spellings.
func whoisFromReg(reg *templates.Registration) *core.ParsedRecord {
	return &core.ParsedRecord{
		DomainName:  strings.ToLower(reg.Domain),
		Registrar:   reg.RegistrarName,
		CreatedDate: reg.Created.Format("02-Jan-2006"),
		UpdatedDate: reg.Updated.Format("02-Jan-2006"),
		ExpiresDate: reg.Expires.Format("02-Jan-2006"),
		Registrant: core.Contact{
			Name:    reg.Registrant.Name,
			Email:   reg.Registrant.Email,
			Country: reg.Registrant.CountryName,
		},
		NameServers: append([]string(nil), reg.NameServers...),
		Statuses:    append([]string(nil), reg.Statuses...),
	}
}

func TestCompareTaxonomy(t *testing.T) {
	reg := fixtureReg()
	r := FromRDAP(rdap.FromRegistration(reg))

	t.Run("equivalent", func(t *testing.T) {
		// Faithful WHOIS: different spellings of the same truth. Dates
		// differ in layout, so they classify as Equivalent, not Equal.
		w := FromWHOIS(whoisFromReg(reg))
		c := Compare(w, r)
		if c.Conflicts() != 0 {
			t.Fatalf("faithful views conflict: %+v", c.Verdicts)
		}
		for _, f := range []Field{FieldCreated, FieldUpdated, FieldExpires} {
			if c.Verdicts[f] != Equivalent {
				t.Errorf("%s = %s, want equivalent", f, c.Verdicts[f])
			}
		}
		if c.Verdicts[FieldRegistrar] != Equal {
			t.Errorf("registrar = %s, want equal (identical spelling)", c.Verdicts[FieldRegistrar])
		}
		// The WHOIS parser never extracts admin/tech contacts; RDAP has
		// them — naturally missing-in-WHOIS.
		if c.Verdicts[FieldAdminEmail] != MissingWHOIS || c.Verdicts[FieldTechEmail] != MissingWHOIS {
			t.Errorf("admin/tech = %s/%s, want missing-whois",
				c.Verdicts[FieldAdminEmail], c.Verdicts[FieldTechEmail])
		}
	})

	t.Run("equal", func(t *testing.T) {
		// WHOIS spelling byte-identical to RDAP's.
		pr := whoisFromReg(reg)
		pr.CreatedDate = reg.Created.Format("2006-01-02T15:04:05Z07:00")
		c := Compare(FromWHOIS(pr), r)
		if got := c.Verdicts[FieldCreated]; got != Equal {
			t.Errorf("created = %s, want equal", got)
		}
	})

	t.Run("conflict", func(t *testing.T) {
		pr := whoisFromReg(reg)
		pr.Registrar = "Totally Different Registrar, Inc."
		pr.ExpiresDate = reg.Expires.AddDate(1, 0, 0).Format("02-Jan-2006")
		pr.Registrant.Email = "someone-else@example.net"
		c := Compare(FromWHOIS(pr), r)
		for _, f := range []Field{FieldRegistrar, FieldExpires, FieldRegistrantEmail} {
			if c.Verdicts[f] != Conflict {
				t.Errorf("%s = %s, want conflict", f, c.Verdicts[f])
			}
		}
		if got := c.Conflicts(); got != 3 {
			t.Errorf("Conflicts() = %d, want 3", got)
		}
		if c.Rate() <= 0 {
			t.Errorf("Rate() = %v, want > 0", c.Rate())
		}
		if got := c.ConflictFields(); len(got) != 3 || got[0] != FieldRegistrar {
			t.Errorf("ConflictFields() = %v", got)
		}
	})

	t.Run("missing", func(t *testing.T) {
		// Thin WHOIS against an RDAP answer with no statuses.
		pr := &core.ParsedRecord{DomainName: strings.ToLower(reg.Domain)}
		thin := rdap.FromRegistration(reg)
		thin.Status = nil
		c := Compare(FromWHOIS(pr), FromRDAP(thin))
		if got := c.Verdicts[FieldRegistrar]; got != MissingWHOIS {
			t.Errorf("registrar = %s, want missing-whois", got)
		}
		if got := c.Verdicts[FieldStatuses]; got != MissingBoth {
			t.Errorf("statuses = %s, want missing-both", got)
		}
		if c.Comparable() != 0 {
			t.Errorf("Comparable() = %d, want 0 (nothing present on both sides)", c.Comparable())
		}
	})

	t.Run("missing-rdap", func(t *testing.T) {
		bare := &rdap.Domain{ObjectClassName: "domain", LDHName: strings.ToLower(reg.Domain)}
		c := Compare(FromWHOIS(whoisFromReg(reg)), FromRDAP(bare))
		for _, f := range []Field{FieldRegistrar, FieldCreated, FieldNameServers} {
			if c.Verdicts[f] != MissingRDAP {
				t.Errorf("%s = %s, want missing-rdap", f, c.Verdicts[f])
			}
		}
	})

	t.Run("unparseable-date-is-missing", func(t *testing.T) {
		pr := whoisFromReg(reg)
		pr.CreatedDate = "not a date"
		c := Compare(FromWHOIS(pr), r)
		if got := c.Verdicts[FieldCreated]; got != MissingWHOIS {
			t.Errorf("created = %s, want missing-whois for unparseable date", got)
		}
	})

	t.Run("list-order-is-equivalent", func(t *testing.T) {
		pr := whoisFromReg(reg)
		if len(pr.NameServers) < 2 {
			t.Skip("fixture has fewer than 2 nameservers")
		}
		pr.NameServers[0], pr.NameServers[1] = pr.NameServers[1], pr.NameServers[0]
		pr.NameServers[0] = strings.ToUpper(pr.NameServers[0])
		c := Compare(FromWHOIS(pr), r)
		if got := c.Verdicts[FieldNameServers]; got != Equivalent {
			t.Errorf("nameservers = %s, want equivalent after reorder+case", got)
		}
	})
}

func TestFromWHOISLinesFallback(t *testing.T) {
	// Records decoded from pre-domain-meta store segments have raw-only
	// lines; the projection must recover NS and statuses from them.
	raws := []string{
		"   Domain Name: EXAMPLE.COM",
		"   Name Server: NS1.EXAMPLE-DNS.COM",
		"   Name Server: NS2.EXAMPLE-DNS.COM",
		"   Status: clientTransferProhibited https://icann.org/epp#clientTransferProhibited",
		"   DNSSEC: unsigned", // contains "dns" but is a signing state, not a host
	}
	pr := &core.ParsedRecord{DomainName: "example.com"}
	for _, raw := range raws {
		pr.Lines = append(pr.Lines, tokenize.Line{Raw: raw})
		pr.Blocks = append(pr.Blocks, labels.Domain)
		pr.Fields = append(pr.Fields, labels.FieldOther)
	}
	v := FromWHOIS(pr)
	if len(v.NameServers) != 2 || v.NameServers[0] != "NS1.EXAMPLE-DNS.COM" {
		t.Errorf("NameServers = %v", v.NameServers)
	}
	if len(v.Statuses) != 1 || !strings.HasPrefix(v.Statuses[0], "clientTransferProhibited") {
		t.Errorf("Statuses = %v", v.Statuses)
	}
	// Pre-split titles take the direct path.
	pr2 := &core.ParsedRecord{
		Lines:  []tokenize.Line{{Raw: "x", Title: "Domain Name Servers", Value: "ns9.example.net"}},
		Blocks: []labels.Block{labels.Domain},
		Fields: []labels.Field{labels.FieldOther},
	}
	if v := FromWHOIS(pr2); len(v.NameServers) != 1 || v.NameServers[0] != "ns9.example.net" {
		t.Errorf("titled fallback NameServers = %v", v.NameServers)
	}
}

func TestFieldAndVerdictNames(t *testing.T) {
	seen := map[string]bool{}
	for f := Field(0); f < NumFields; f++ {
		name := f.String()
		if name == "" || name == "invalid" || seen[name] {
			t.Errorf("field %d has bad or duplicate name %q", f, name)
		}
		seen[name] = true
		if got, ok := ParseField(name); !ok || got != f {
			t.Errorf("ParseField(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseField("nope"); ok {
		t.Error("ParseField accepted unknown name")
	}
	if Field(-1).String() != "invalid" || Verdict(99).String() != "invalid" {
		t.Error("out-of-range String() should be \"invalid\"")
	}
	if names := FieldsByName(); len(names) != int(NumFields) || names[0] != "registrar" {
		t.Errorf("FieldsByName() = %v", names)
	}
}

// TestGoldenAgreementTables locks the rendered disagreement tables over
// a fixed paired corpus that exercises every taxonomy outcome. Refresh
// with: go test ./internal/consistency -run Golden -update
func TestGoldenAgreementTables(t *testing.T) {
	a := NewAuditor()

	// Four agreeing domains under the fixture registrar (different
	// spellings → equivalent), then perturbed ones.
	for i := 0; i < 4; i++ {
		r := fixtureReg()
		r.Domain = fmt.Sprintf("agree-%d.com", i)
		a.Observe(Compare(FromWHOIS(whoisFromReg(r)), FromRDAP(rdap.FromRegistration(r))))
	}
	// Conflicting registrar + expiry under a second registrar.
	for i := 0; i < 2; i++ {
		r := fixtureReg()
		r.Domain = fmt.Sprintf("conflict-%d.com", i)
		r.RegistrarName = "eNom, Inc."
		pr := whoisFromReg(r)
		pr.Registrar = "Ename Technology Co. Ltd."
		pr.ExpiresDate = r.Expires.AddDate(0, 6, 0).Format("02-Jan-2006")
		a.Observe(Compare(FromWHOIS(pr), FromRDAP(rdap.FromRegistration(r))))
	}
	// A thin WHOIS record: everything missing on the WHOIS side.
	thinReg := fixtureReg()
	thinReg.Domain = "thin.com"
	a.Observe(Compare(
		FromWHOIS(&core.ParsedRecord{DomainName: "thin.com"}),
		FromRDAP(rdap.FromRegistration(thinReg))))
	// An RDAP answer with no contacts or statuses: missing on the RDAP
	// side (and admin/tech missing on both).
	bareReg := fixtureReg()
	bareReg.Domain = "bare.com"
	bare := rdap.FromRegistration(bareReg)
	bare.Entities = bare.Entities[:1] // keep only the registrar entity
	bare.Status = nil
	a.Observe(Compare(FromWHOIS(whoisFromReg(bareReg)), FromRDAP(bare)))

	s := a.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "records=%d skipped=%d conflicted=%d rate=%.4f\n\n",
		s.Records, s.Skipped, s.Conflicted, s.Rate)
	b.WriteString(s.FieldTable())
	b.WriteString("\n")
	b.WriteString(s.VerdictTable())
	b.WriteString("\n")
	b.WriteString(s.RegistrarTable(5))
	got := b.String()

	path := filepath.Join("testdata", "golden", "agreement_tables.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("agreement tables drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func TestSentinelTransitions(t *testing.T) {
	var events []string
	s := NewSentinel(SentinelOptions{
		Window: 8, MinWindow: 4, ConflictCeiling: 0.2,
		OnDrift: func(reg string, flagged bool, rate float64) {
			events = append(events, fmt.Sprintf("%s/%v", reg, flagged))
		},
	})
	bad := Comparison{Registrar: "Drifty LLC"}
	bad.Verdicts[FieldRegistrar] = Equal
	bad.Verdicts[FieldExpires] = Conflict
	for f := FieldCreated; f < NumFields; f++ {
		if bad.Verdicts[f] == 0 && f != FieldExpires {
			bad.Verdicts[f] = MissingBoth
		}
	}
	good := bad
	good.Verdicts[FieldExpires] = Equivalent

	// Rate 0.5 per record: flags on the 4th observation, not before.
	for i := 0; i < 3; i++ {
		if f, _ := s.Observe(bad); f {
			t.Fatalf("flagged before MinWindow at observation %d", i+1)
		}
	}
	if f, _ := s.Observe(bad); !f {
		t.Fatal("not flagged at MinWindow with rate over ceiling")
	}
	if got := s.Flagged(); len(got) != 1 || got[0] != "Drifty LLC" {
		t.Fatalf("Flagged() = %v", got)
	}
	// Recovery: clean observations push the windowed mean back down.
	var unflagged bool
	for i := 0; i < 8 && !unflagged; i++ {
		_, unflagged = s.Observe(good)
	}
	if !unflagged {
		t.Fatal("never unflagged after recovery")
	}
	if got := s.Flagged(); len(got) != 0 {
		t.Fatalf("Flagged() after recovery = %v", got)
	}
	if len(events) != 2 || events[0] != "Drifty LLC/true" || events[1] != "Drifty LLC/false" {
		t.Fatalf("OnDrift events = %v", events)
	}

	// Reset clears windows.
	s.Observe(bad)
	s.Reset()
	if got := s.Flagged(); len(got) != 0 {
		t.Fatalf("Flagged() after reset = %v", got)
	}

	// No-comparable observations never move windows.
	var empty Comparison
	for f := Field(0); f < NumFields; f++ {
		empty.Verdicts[f] = MissingBoth
	}
	for i := 0; i < 10; i++ {
		if f, u := s.Observe(empty); f || u {
			t.Fatal("empty comparison moved the sentinel")
		}
	}
}

func TestCheckerFakeFetchers(t *testing.T) {
	reg := fixtureReg()
	pr := whoisFromReg(reg)
	ck := &Checker{
		FetchWHOIS: func(_ context.Context, domain string) (string, error) {
			return "Domain Name: " + domain, nil
		},
		FetchRDAP: func(_ context.Context, domain string) (*rdap.Domain, error) {
			return rdap.FromRegistration(reg), nil
		},
		Parse: func(text string) *core.ParsedRecord { return pr },
	}
	res, err := ck.Check(context.Background(), reg.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison.Conflicts() != 0 {
		t.Errorf("faithful check found conflicts: %+v", res.Comparison.Verdicts)
	}
	if res.Comparison.Registrar != reg.RegistrarName {
		t.Errorf("comparison registrar = %q", res.Comparison.Registrar)
	}
}

// Date folding compares calendar days: a day-only WHOIS spelling and a
// full RDAP timestamp of the same UTC day are equivalent.
func TestDateEquivalenceAcrossLayouts(t *testing.T) {
	reg := fixtureReg()
	reg.Created = time.Date(2011, 7, 9, 4, 30, 0, 0, time.UTC)
	w := FromWHOIS(whoisFromReg(reg))
	r := FromRDAP(rdap.FromRegistration(reg))
	if c := Compare(w, r); c.Verdicts[FieldCreated] != Equivalent {
		t.Errorf("created = %s, want equivalent", c.Verdicts[FieldCreated])
	}
}
