package consistency

import (
	"testing"

	"repro/internal/rdap"
	"repro/internal/synth"
)

// benchPairs builds paired views from the deterministic synthetic
// population — the comparison workload without any CRF in the loop.
func benchPairs(n int) ([]FieldView, []FieldView) {
	ws := make([]FieldView, n)
	rs := make([]FieldView, n)
	for i, d := range synth.Generate(synth.Config{N: n, Seed: 1234}) {
		ws[i] = FromWHOIS(parsedFromReg(&d.Reg))
		rs[i] = FromRDAP(rdap.FromRegistration(&d.Reg))
	}
	return ws, rs
}

// BenchmarkConsistencyCheck measures one full field comparison: both
// normalization passes plus the per-field taxonomy classification.
func BenchmarkConsistencyCheck(b *testing.B) {
	ws, rs := benchPairs(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(ws)
		c := Compare(ws[k], rs[k])
		if c.Domain == "" {
			b.Fatal("empty comparison")
		}
	}
}

// BenchmarkConsistencyBatch measures the batch-audit aggregation path:
// compare plus auditor and sentinel accumulation per record.
func BenchmarkConsistencyBatch(b *testing.B) {
	ws, rs := benchPairs(64)
	a := NewAuditor()
	a.Sentinel = NewSentinel(SentinelOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(ws)
		a.Observe(Compare(ws[k], rs[k]))
	}
}
