package consistency

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rdap"
	"repro/internal/store"
	"repro/internal/survey"
	"repro/internal/synth"
	"repro/internal/templates"
)

// parsedFromReg builds the parsed record a perfect WHOIS pipeline would
// produce for a registration — the audit tests exercise the consistency
// machinery, not the CRF.
func parsedFromReg(reg *templates.Registration) *core.ParsedRecord {
	return &core.ParsedRecord{
		DomainName:  strings.ToLower(reg.Domain),
		Registrar:   reg.RegistrarName,
		CreatedDate: reg.Created.Format("02-Jan-2006"),
		UpdatedDate: reg.Updated.Format("02-Jan-2006"),
		ExpiresDate: reg.Expires.Format("02-Jan-2006"),
		Registrant: core.Contact{
			Name:    reg.Registrant.Name,
			Email:   reg.Registrant.Email,
			Country: reg.Registrant.CountryName,
		},
		NameServers: append([]string(nil), reg.NameServers...),
		Statuses:    append([]string(nil), reg.Statuses...),
	}
}

// buildAuditStore fills a store with the synthetic population's
// faithful parses and returns a query engine over it.
func buildAuditStore(t *testing.T, domains []*synth.Domain) *query.Engine {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for _, d := range domains {
		pr := parsedFromReg(&d.Reg)
		if err := st.Append(&store.Record{
			Domain: d.Reg.Domain,
			Parsed: pr,
			Facts:  survey.FactsFrom(pr, false),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return query.New(st, query.Options{})
}

func TestAuditStoreAgrees(t *testing.T) {
	const n, seed = 120, 42
	domains := synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02})
	e := buildAuditStore(t, domains)

	a := NewAuditor()
	scored, err := a.AuditStore(e, query.Pred{}, SyntheticSource(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	if scored != n {
		t.Fatalf("scored %d of %d records", scored, n)
	}
	s := a.Summary()
	if s.Records != n || s.Skipped != 0 {
		t.Fatalf("summary records=%d skipped=%d", s.Records, s.Skipped)
	}
	if s.Conflicted != 0 || s.Rate != 0 {
		t.Fatalf("faithful corpus shows conflicts: conflicted=%d rate=%v\n%s",
			s.Conflicted, s.Rate, s.FieldTable())
	}
}

func TestAuditStoreWithPredCohort(t *testing.T) {
	const n, seed = 120, 42
	domains := synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02})
	e := buildAuditStore(t, domains)
	target := domains[0].Reg.RegistrarName
	want := 0
	for _, d := range domains {
		if d.Reg.RegistrarName == target {
			want++
		}
	}

	a := NewAuditor()
	p, err := query.ParsePred("registrar=" + target)
	if err != nil {
		t.Fatal(err)
	}
	scored, err := a.AuditStore(e, p, SyntheticSource(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	if scored != want {
		t.Fatalf("cohort scored %d records, want %d", scored, want)
	}
}

func TestAuditStoreSkipsUnanswerable(t *testing.T) {
	const n, seed = 30, 7
	domains := synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02})
	e := buildAuditStore(t, domains)

	a := NewAuditor()
	none := RDAPSource(func(string) (*rdap.Domain, bool) { return nil, false })
	scored, err := a.AuditStore(e, query.Pred{}, none)
	if err != nil {
		t.Fatal(err)
	}
	if scored != 0 {
		t.Fatalf("scored %d without an RDAP source answering", scored)
	}
	if s := a.Summary(); s.Skipped != n {
		t.Fatalf("skipped = %d, want %d", s.Skipped, n)
	}
	if _, err := a.AuditStore(e, query.Pred{}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

// TestAuditInjectedDivergence is the acceptance end-to-end: one
// registrar's RDAP answers diverge from its WHOIS records (a lagging
// data migration), the batch audit runs over the store, the sentinel
// flags exactly that registrar, and the consistency.drift.* metrics are
// observable on /debug/vars.
func TestAuditInjectedDivergence(t *testing.T) {
	const n, seed = 400, 99
	domains := synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02})
	e := buildAuditStore(t, domains)

	// Pick the most common registrar as the divergence target so its
	// window comfortably clears MinWindow.
	counts := map[string]int{}
	for _, d := range domains {
		counts[d.Reg.RegistrarName]++
	}
	target, best := "", 0
	for name, c := range counts {
		if c > best {
			target, best = name, c
		}
	}
	if best < 8 {
		t.Fatalf("target registrar %q has only %d domains", target, best)
	}

	// The divergent source: expiry slips a year for every domain of the
	// target registrar.
	base := SyntheticSource(n, seed)
	divergent := RDAPSource(func(domain string) (*rdap.Domain, bool) {
		d, ok := base(domain)
		if !ok || d.RegistrarName() != target {
			return d, ok
		}
		mut := *d
		mut.Events = append([]rdap.Event(nil), d.Events...)
		for i := range mut.Events {
			if mut.Events[i].EventAction == "expiration" {
				mut.Events[i].EventDate = mut.Events[i].EventDate.AddDate(1, 0, 0)
			}
		}
		return &mut, true
	})

	reg := obs.NewRegistry()
	sen := NewSentinel(SentinelOptions{Window: 16, MinWindow: 8, ConflictCeiling: 0.05})
	sen.Instrument(reg)
	a := NewAuditor()
	a.Sentinel = sen

	scored, err := a.AuditStore(e, query.Pred{}, divergent)
	if err != nil {
		t.Fatal(err)
	}
	if scored != n {
		t.Fatalf("scored %d of %d", scored, n)
	}

	flagged := sen.Flagged()
	if len(flagged) != 1 || flagged[0] != target {
		t.Fatalf("Flagged() = %v, want exactly [%s]", flagged, target)
	}

	s := a.Summary()
	if s.Conflicted == 0 || s.Rate == 0 {
		t.Fatal("injected divergence produced no conflicts")
	}
	if len(s.Registrars) == 0 || s.Registrars[0].Registrar != target {
		t.Fatalf("top disagreeing registrar = %+v, want %s", s.Registrars[:1], target)
	}
	if len(s.Flagged) != 1 || s.Flagged[0] != target {
		t.Fatalf("summary flagged = %v", s.Flagged)
	}
	// Expiry must be the dominant conflicting field.
	if tf := s.Registrars[0].TopFields; len(tf) == 0 || tf[0] != FieldExpires.String() {
		t.Fatalf("top conflicting fields = %v, want expires first", tf)
	}
	// Untouched registrars stay clean.
	for _, r := range s.Registrars[1:] {
		if r.Conflicts != 0 {
			t.Errorf("registrar %s has %d conflicts without injected divergence", r.Registrar, r.Conflicts)
		}
	}

	// The drift metrics are visible through the standard debug surface.
	srv := httptest.NewServer(obs.DebugMux(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	for key, min := range map[string]float64{
		"consistency.drift.observations": float64(n),
		"consistency.drift.conflicts":    1,
		"consistency.drift.flag_events":  1,
		"consistency.drift.flagged":      1,
	} {
		v, ok := vars[key].(float64)
		if !ok || v < min {
			t.Errorf("/debug/vars %s = %v, want >= %v", key, vars[key], min)
		}
	}
	if v, ok := vars["consistency.drift.unflag_events"].(float64); !ok || v != 0 {
		t.Errorf("/debug/vars consistency.drift.unflag_events = %v, want 0", vars["consistency.drift.unflag_events"])
	}

	// The tables render without panicking and name the target registrar.
	if out := s.RegistrarTable(5); !strings.Contains(out, target) {
		t.Errorf("registrar table misses target:\n%s", out)
	}
	if out := s.FieldTable(); !strings.Contains(out, "expires") {
		t.Errorf("field table misses expires:\n%s", out)
	}
}
