// Package consistency cross-checks a domain's registration data between
// the two protocols that serve it: the free-text WHOIS record (parsed by
// the two-level CRF in internal/core) and the structured RDAP domain
// object (internal/rdap). The paper's background section frames RDAP as
// the structured replacement for WHOIS; in the transition both protocols
// answer for the same domains, and they are supposed to agree. Following
// the cross-protocol audit methodology of "WHOIS Right? An Analysis of
// WHOIS and RDAP Consistency" (PAM 2024, arXiv 2406.02046), this package
// normalizes both answers into a common field set and classifies each
// field into a four-way agreement taxonomy:
//
//   - Equal: byte-identical values on both sides;
//   - Equivalent: equal after normalization (date-format folds, registrar
//     name folds, host-case folds — internal/norm);
//   - MissingWHOIS / MissingRDAP / MissingBoth: the value is absent on
//     one or both sides;
//   - Conflict: present on both sides and different even after
//     normalization — a genuine cross-protocol disagreement.
//
// Only Conflict counts as a disagreement: missing-in-one is
// incompleteness (thin WHOIS, privacy redaction), not inconsistency.
package consistency

import (
	"strings"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/norm"
	"repro/internal/rdap"
	"repro/internal/tokenize"
)

// Field identifies one compared registration field.
type Field int

// The compared field set: the registrar identity, the three lifecycle
// dates, the registrant contact (the WHOIS parser's second-level CRF
// extracts only the registrant block, so admin/tech contacts compare as
// naturally missing-in-WHOIS), and the two multi-valued domain facts.
const (
	FieldRegistrar Field = iota
	FieldCreated
	FieldUpdated
	FieldExpires
	FieldRegistrantName
	FieldRegistrantEmail
	FieldRegistrantCountry
	FieldAdminEmail
	FieldTechEmail
	FieldNameServers
	FieldStatuses
	NumFields
)

var fieldNames = [NumFields]string{
	"registrar", "created", "updated", "expires",
	"registrant.name", "registrant.email", "registrant.country",
	"admin.email", "tech.email", "nameservers", "statuses",
}

// String returns the field's stable display name.
func (f Field) String() string {
	if f < 0 || f >= NumFields {
		return "invalid"
	}
	return fieldNames[f]
}

// Verdict classifies one field's cross-protocol agreement.
type Verdict int

// Verdict values; see the package comment for the taxonomy.
const (
	Equal Verdict = iota
	Equivalent
	MissingWHOIS
	MissingRDAP
	MissingBoth
	Conflict
	NumVerdicts
)

var verdictNames = [NumVerdicts]string{
	"equal", "equivalent", "missing-whois", "missing-rdap", "missing-both", "conflict",
}

// String returns the verdict's stable display name.
func (v Verdict) String() string {
	if v < 0 || v >= NumVerdicts {
		return "invalid"
	}
	return verdictNames[v]
}

// ContactView is the protocol-neutral slice of a contact that both sides
// can express: the jCard fn/email/adr country on the RDAP side, the
// second-level CRF subfields on the WHOIS side.
type ContactView struct {
	Name    string
	Email   string
	Country string
}

// FieldView is one protocol's answer projected onto the common field
// set. Values are raw (un-normalized); Compare applies the canonical
// folds so the Equal/Equivalent distinction stays observable.
type FieldView struct {
	Domain    string
	Registrar string
	// Created, Updated, Expires are date strings in whatever layout the
	// protocol used (free-text WHOIS layouts, RFC 3339 for RDAP).
	Created string
	Updated string
	Expires string

	Registrant ContactView
	Admin      ContactView
	Tech       ContactView

	NameServers []string
	Statuses    []string
}

// Value returns the view's raw value for one compared field, with the
// multi-valued fields joined by ", " — the display form the one-shot
// CLI prints side by side.
func (v FieldView) Value(f Field) string {
	switch f {
	case FieldRegistrar:
		return v.Registrar
	case FieldCreated:
		return v.Created
	case FieldUpdated:
		return v.Updated
	case FieldExpires:
		return v.Expires
	case FieldRegistrantName:
		return v.Registrant.Name
	case FieldRegistrantEmail:
		return v.Registrant.Email
	case FieldRegistrantCountry:
		return v.Registrant.Country
	case FieldAdminEmail:
		return v.Admin.Email
	case FieldTechEmail:
		return v.Tech.Email
	case FieldNameServers:
		return strings.Join(v.NameServers, ", ")
	case FieldStatuses:
		return strings.Join(v.Statuses, ", ")
	}
	return ""
}

// FromWHOIS projects a parsed WHOIS record onto the common field set.
// Records decoded from older store segments carry no NameServers or
// Statuses (the lists postdate them) and their Lines hold only raw text;
// for those the projection re-derives the domain-block multi-values by
// re-splitting the raw lines, so old corpora remain auditable.
func FromWHOIS(pr *core.ParsedRecord) FieldView {
	v := FieldView{
		Domain:    pr.DomainName,
		Registrar: pr.Registrar,
		Created:   pr.CreatedDate,
		Updated:   pr.UpdatedDate,
		Expires:   pr.ExpiresDate,
		Registrant: ContactView{
			Name:    pr.Registrant.Name,
			Email:   pr.Registrant.Email,
			Country: pr.Registrant.Country,
		},
		NameServers: pr.NameServers,
		Statuses:    pr.Statuses,
	}
	if len(v.NameServers) == 0 && len(v.Statuses) == 0 {
		v.NameServers, v.Statuses = domainMetaFromLines(pr)
	}
	return v
}

// domainMetaFromLines recovers name servers and statuses from the raw
// domain-block lines, mirroring the keyword rules of core's extractor.
// Store-decoded lines keep only Raw, so titles are re-split here.
func domainMetaFromLines(pr *core.ParsedRecord) (ns, statuses []string) {
	for i, ln := range pr.Lines {
		if i >= len(pr.Blocks) || pr.Blocks[i] != labels.Domain {
			continue
		}
		title, val := ln.Title, ln.Value
		if title == "" && val == "" {
			var ok bool
			if title, val, ok = tokenize.SplitTitleValue(strings.TrimSpace(ln.Raw)); !ok {
				continue
			}
		}
		lower := strings.ToLower(title)
		switch {
		case val != "" && !strings.Contains(lower, "whois") && !strings.Contains(lower, "dnssec") &&
			(strings.Contains(lower, "name server") || strings.Contains(lower, "nameserver") ||
				strings.Contains(lower, "nserver") || strings.Contains(lower, "dns")):
			ns = append(ns, val)
		case val != "" && strings.Contains(lower, "status"):
			statuses = append(statuses, val)
		}
	}
	return ns, statuses
}

// FromRDAP projects an RDAP domain object onto the common field set.
// Dates render as RFC 3339 — a different spelling than most WHOIS
// records, which is exactly what the Equivalent verdict absorbs.
func FromRDAP(d *rdap.Domain) FieldView {
	v := FieldView{
		Domain:      d.LDHName,
		Registrar:   d.RegistrarName(),
		NameServers: d.NameserverNames(),
		Statuses:    append([]string(nil), d.Status...),
	}
	if t, ok := d.RegistrationDate(); ok {
		v.Created = t.Format("2006-01-02T15:04:05Z07:00")
	}
	if t, ok := d.LastChangedDate(); ok {
		v.Updated = t.Format("2006-01-02T15:04:05Z07:00")
	}
	if t, ok := d.ExpirationDate(); ok {
		v.Expires = t.Format("2006-01-02T15:04:05Z07:00")
	}
	if c, ok := d.ContactByRole("registrant"); ok {
		v.Registrant = ContactView{Name: c.Name, Email: c.Email, Country: c.Country}
	}
	if c, ok := d.ContactByRole("administrative"); ok {
		v.Admin = ContactView{Name: c.Name, Email: c.Email, Country: c.Country}
	}
	if c, ok := d.ContactByRole("technical"); ok {
		v.Tech = ContactView{Name: c.Name, Email: c.Email, Country: c.Country}
	}
	return v
}

// Comparison is the per-field agreement of one domain's two answers.
type Comparison struct {
	// Domain is the compared domain (RDAP's LDH name when present).
	Domain string
	// Registrar is the display registrar the comparison groups under —
	// the RDAP registrar entity when present (it is the structured,
	// authoritative spelling), else the WHOIS extraction.
	Registrar string
	// Verdicts holds one verdict per Field.
	Verdicts [NumFields]Verdict
}

// Compare classifies every common field of the two views.
func Compare(w, r FieldView) Comparison {
	c := Comparison{Domain: r.Domain, Registrar: r.Registrar}
	if c.Domain == "" {
		c.Domain = w.Domain
	}
	if c.Registrar == "" {
		c.Registrar = w.Registrar
	}
	c.Verdicts[FieldRegistrar] = compareScalar(w.Registrar, r.Registrar, norm.Registrar)
	c.Verdicts[FieldCreated] = compareScalar(w.Created, r.Created, norm.DateKey)
	c.Verdicts[FieldUpdated] = compareScalar(w.Updated, r.Updated, norm.DateKey)
	c.Verdicts[FieldExpires] = compareScalar(w.Expires, r.Expires, norm.DateKey)
	c.Verdicts[FieldRegistrantName] = compareScalar(w.Registrant.Name, r.Registrant.Name, norm.Registrar)
	c.Verdicts[FieldRegistrantEmail] = compareScalar(w.Registrant.Email, r.Registrant.Email, norm.Email)
	c.Verdicts[FieldRegistrantCountry] = compareScalar(w.Registrant.Country, r.Registrant.Country, norm.CountryKey)
	c.Verdicts[FieldAdminEmail] = compareScalar(w.Admin.Email, r.Admin.Email, norm.Email)
	c.Verdicts[FieldTechEmail] = compareScalar(w.Tech.Email, r.Tech.Email, norm.Email)
	c.Verdicts[FieldNameServers] = compareList(w.NameServers, r.NameServers, norm.Hosts)
	c.Verdicts[FieldStatuses] = compareList(w.Statuses, r.Statuses, norm.Statuses)
	return c
}

// compareScalar classifies two scalar values under a normalization key.
// A value whose key folds to empty (e.g. an unparseable date) counts as
// missing: the protocol answered, but not with comparable content.
func compareScalar(w, r string, key func(string) string) Verdict {
	wk, rk := key(w), key(r)
	switch {
	case wk == "" && rk == "":
		return MissingBoth
	case wk == "":
		return MissingWHOIS
	case rk == "":
		return MissingRDAP
	case strings.TrimSpace(w) == strings.TrimSpace(r):
		return Equal
	case wk == rk:
		return Equivalent
	default:
		return Conflict
	}
}

// compareList classifies two multi-valued fields. Equal means the same
// values in the same order; Equivalent means the same normalized sets
// (order- and case-insensitive, duplicates folded).
func compareList(w, r []string, key func([]string) []string) Verdict {
	wk, rk := key(w), key(r)
	switch {
	case len(wk) == 0 && len(rk) == 0:
		return MissingBoth
	case len(wk) == 0:
		return MissingWHOIS
	case len(rk) == 0:
		return MissingRDAP
	case stringsEqual(w, r):
		return Equal
	case stringsEqual(wk, rk):
		return Equivalent
	default:
		return Conflict
	}
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Conflicts returns the number of conflicting fields.
func (c *Comparison) Conflicts() int {
	n := 0
	for _, v := range c.Verdicts {
		if v == Conflict {
			n++
		}
	}
	return n
}

// Comparable returns the number of fields present on both sides — the
// denominator for a disagreement rate. Fields missing on either side
// cannot conflict and are excluded.
func (c *Comparison) Comparable() int {
	n := 0
	for _, v := range c.Verdicts {
		switch v {
		case Equal, Equivalent, Conflict:
			n++
		}
	}
	return n
}

// Rate returns the record's disagreement rate: conflicting fields over
// comparable fields, 0 when nothing was comparable.
func (c *Comparison) Rate() float64 {
	comp := c.Comparable()
	if comp == 0 {
		return 0
	}
	return float64(c.Conflicts()) / float64(comp)
}

// ConflictFields lists the conflicting fields in field order.
func (c *Comparison) ConflictFields() []Field {
	var out []Field
	for f := Field(0); f < NumFields; f++ {
		if c.Verdicts[f] == Conflict {
			out = append(out, f)
		}
	}
	return out
}

// ParseField resolves a display name back to its Field.
func ParseField(name string) (Field, bool) {
	for f := Field(0); f < NumFields; f++ {
		if fieldNames[f] == name {
			return f, true
		}
	}
	return 0, false
}

// FieldsByName returns the field display names in field order — the
// stable column order for tables and JSON summaries.
func FieldsByName() []string {
	out := make([]string, NumFields)
	for f := Field(0); f < NumFields; f++ {
		out[f] = fieldNames[f]
	}
	return out
}
