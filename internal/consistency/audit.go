package consistency

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/norm"
	"repro/internal/query"
	"repro/internal/rdap"
	"repro/internal/store"
	"repro/internal/survey"
	"repro/internal/synth"
)

// RDAPSource resolves a domain name to its RDAP object during a batch
// audit. The boolean is false when the source has no answer for the
// domain — that record is skipped, not scored.
type RDAPSource func(domain string) (*rdap.Domain, bool)

// SyntheticSource regenerates the deterministic synthetic population
// (same n and seed as the corpus builder) and serves each domain's
// ground-truth registration as RDAP — what the registry's RDAP endpoint
// would say if its data store were exactly the simulator's truth. Audits
// against it measure the WHOIS pipeline's end-to-end fidelity: any
// conflict is a parse or template loss, since both protocols derive from
// the same truth. The generator config must match the corpus builder's
// exactly or the RNG streams diverge and the "same" seed yields a
// different population — BrandFraction 0.02 is the convention shared by
// rdapd and whoissurvey -synthetic.
func SyntheticSource(n int, seed int64) RDAPSource {
	byDomain := make(map[string]*rdap.Domain, n)
	for _, d := range synth.Generate(synth.Config{N: n, Seed: seed, BrandFraction: 0.02}) {
		byDomain[strings.ToLower(d.Reg.Domain)] = rdap.FromRegistration(&d.Reg)
	}
	return func(domain string) (*rdap.Domain, bool) {
		d, ok := byDomain[strings.ToLower(domain)]
		return d, ok
	}
}

// ClientSource adapts an RDAP client into an RDAPSource; lookup errors
// read as "no answer".
func ClientSource(c *rdap.Client) RDAPSource {
	return func(domain string) (*rdap.Domain, bool) {
		d, err := c.Lookup(domain)
		if err != nil {
			return nil, false
		}
		return d, true
	}
}

// Auditor accumulates comparisons into the survey-style aggregate
// views: per-field verdict counts and per-registrar disagreement. All
// methods are safe for concurrent use; an optional Sentinel receives
// every observed comparison.
type Auditor struct {
	// Sentinel, when non-nil, is fed every comparison (drift windows and
	// consistency.drift.* metrics).
	Sentinel *Sentinel

	mu       sync.Mutex
	records  int
	skipped  int
	verdicts [NumFields][NumVerdicts]int
	regs     map[string]*regAgg
}

// regAgg is one registrar's running aggregate, keyed by the normalized
// registrar name so spelling variants bucket together.
type regAgg struct {
	display    string
	records    int
	conflicted int // records with >= 1 conflicting field
	conflicts  int // conflicting fields, total
	comparable int
	byField    [NumFields]int
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{regs: map[string]*regAgg{}}
}

// Observe folds one comparison into the aggregates.
func (a *Auditor) Observe(c Comparison) {
	a.mu.Lock()
	a.records++
	for f, v := range c.Verdicts {
		a.verdicts[f][v]++
	}
	key := norm.Registrar(c.Registrar)
	r := a.regs[key]
	if r == nil {
		r = &regAgg{display: c.Registrar}
		if r.display == "" {
			r.display = "(unknown)"
		}
		a.regs[key] = r
	}
	r.records++
	r.comparable += c.Comparable()
	if n := c.Conflicts(); n > 0 {
		r.conflicted++
		r.conflicts += n
		for f, v := range c.Verdicts {
			if v == Conflict {
				r.byField[f]++
			}
		}
	}
	a.mu.Unlock()

	if a.Sentinel != nil {
		a.Sentinel.Observe(c)
	}
}

// Skip counts a record the audit could not score (no parsed WHOIS, or
// no RDAP answer).
func (a *Auditor) Skip() {
	a.mu.Lock()
	a.skipped++
	a.mu.Unlock()
}

// AuditStore runs the batch audit: scan the store through the query
// engine under p (zone-map pruning applies, so registrar/country/year
// cohorts audit without full scans), obtain each matched record's RDAP
// answer from src, and fold the comparison in. Records without a parsed
// WHOIS side or without an RDAP answer count as skipped. Returns the
// number of records scored.
func (a *Auditor) AuditStore(e *query.Engine, p query.Pred, src RDAPSource) (int, error) {
	if src == nil {
		return 0, fmt.Errorf("consistency: AuditStore needs an RDAPSource")
	}
	scored := 0
	_, err := e.Scan(p, func(rec *store.Record) error {
		if rec.Parsed == nil {
			a.Skip()
			return nil
		}
		d, ok := src(rec.Domain)
		if !ok {
			a.Skip()
			return nil
		}
		w := FromWHOIS(rec.Parsed)
		if w.Domain == "" {
			w.Domain = rec.Domain
		}
		a.Observe(Compare(w, FromRDAP(d)))
		scored++
		return nil
	})
	if err != nil {
		return scored, fmt.Errorf("consistency: audit scan: %w", err)
	}
	return scored, nil
}

// FieldSummary is one field's verdict counts.
type FieldSummary struct {
	Field        string  `json:"field"`
	Equal        int     `json:"equal"`
	Equivalent   int     `json:"equivalent"`
	MissingWHOIS int     `json:"missing_whois"`
	MissingRDAP  int     `json:"missing_rdap"`
	MissingBoth  int     `json:"missing_both"`
	Conflict     int     `json:"conflict"`
	Rate         float64 `json:"rate"` // conflicts / comparable
}

// RegistrarSummary is one registrar's disagreement aggregate.
type RegistrarSummary struct {
	Registrar  string  `json:"registrar"`
	Records    int     `json:"records"`
	Conflicted int     `json:"conflicted_records"`
	Conflicts  int     `json:"conflicts"`
	Rate       float64 `json:"rate"` // conflicting fields / comparable fields
	// TopFields are the registrar's most-conflicted fields, worst first,
	// at most three.
	TopFields []string `json:"top_fields,omitempty"`
}

// Summary is the JSON-able audit outcome served by rdapd's
// /admin/consistency endpoint and printed by the CLIs.
type Summary struct {
	Records    int `json:"records"`
	Skipped    int `json:"skipped"`
	Conflicted int `json:"conflicted_records"`
	// Rate is the overall disagreement rate: conflicting fields over
	// comparable fields across all records.
	Rate       float64            `json:"rate"`
	Fields     []FieldSummary     `json:"fields"`
	Registrars []RegistrarSummary `json:"registrars"`
	Flagged    []string           `json:"flagged_registrars,omitempty"`
}

// Summary snapshots the aggregates. Registrars are sorted by conflicting
// fields descending (ties by record count, then name).
func (a *Auditor) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()

	s := Summary{Records: a.records, Skipped: a.skipped}
	var totalConflicts, totalComparable int
	for f := Field(0); f < NumFields; f++ {
		v := a.verdicts[f]
		comp := v[Equal] + v[Equivalent] + v[Conflict]
		fs := FieldSummary{
			Field:        f.String(),
			Equal:        v[Equal],
			Equivalent:   v[Equivalent],
			MissingWHOIS: v[MissingWHOIS],
			MissingRDAP:  v[MissingRDAP],
			MissingBoth:  v[MissingBoth],
			Conflict:     v[Conflict],
		}
		if comp > 0 {
			fs.Rate = float64(v[Conflict]) / float64(comp)
		}
		totalConflicts += v[Conflict]
		totalComparable += comp
		s.Fields = append(s.Fields, fs)
	}
	if totalComparable > 0 {
		s.Rate = float64(totalConflicts) / float64(totalComparable)
	}

	for _, r := range a.regs {
		s.Conflicted += r.conflicted
		rs := RegistrarSummary{
			Registrar:  r.display,
			Records:    r.records,
			Conflicted: r.conflicted,
			Conflicts:  r.conflicts,
		}
		if r.comparable > 0 {
			rs.Rate = float64(r.conflicts) / float64(r.comparable)
		}
		rs.TopFields = topFields(&r.byField, 3)
		s.Registrars = append(s.Registrars, rs)
	}
	sort.Slice(s.Registrars, func(i, j int) bool {
		a, b := s.Registrars[i], s.Registrars[j]
		if a.Conflicts != b.Conflicts {
			return a.Conflicts > b.Conflicts
		}
		if a.Records != b.Records {
			return a.Records > b.Records
		}
		return a.Registrar < b.Registrar
	})

	if a.Sentinel != nil {
		s.Flagged = a.Sentinel.Flagged()
		sort.Strings(s.Flagged)
	}
	return s
}

// topFields returns the n most-conflicted field names, worst first.
func topFields(byField *[NumFields]int, n int) []string {
	type fc struct {
		f Field
		c int
	}
	var fs []fc
	for f := Field(0); f < NumFields; f++ {
		if byField[f] > 0 {
			fs = append(fs, fc{f, byField[f]})
		}
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].c != fs[j].c {
			return fs[i].c > fs[j].c
		}
		return fs[i].f < fs[j].f
	})
	if len(fs) > n {
		fs = fs[:n]
	}
	out := make([]string, len(fs))
	for i, x := range fs {
		out[i] = x.f.String()
	}
	return out
}

// FieldTable renders the per-field disagreement table in the survey's
// table style: conflict count per field, percentage over that field's
// comparable pairs.
func (s *Summary) FieldTable() string {
	rows := make([]survey.Row, 0, len(s.Fields)+1)
	var total, comp int
	for _, f := range s.Fields {
		rows = append(rows, survey.Row{Key: f.Field, Count: f.Conflict, Pct: 100 * f.Rate})
		total += f.Conflict
		comp += f.Equal + f.Equivalent + f.Conflict
	}
	pct := 0.0
	if comp > 0 {
		pct = 100 * float64(total) / float64(comp)
	}
	rows = append(rows, survey.Row{Key: "Total", Count: total, Pct: pct})
	return survey.RenderRows("Cross-protocol conflicts by field", rows)
}

// RegistrarTable renders the top-n registrars by conflicting fields,
// percentage being each registrar's disagreement rate.
func (s *Summary) RegistrarTable(n int) string {
	rows := make([]survey.Row, 0, n)
	for i, r := range s.Registrars {
		if i >= n {
			break
		}
		rows = append(rows, survey.Row{Key: r.Registrar, Count: r.Conflicts, Pct: 100 * r.Rate})
	}
	return survey.RenderRows("Cross-protocol conflicts by registrar", rows)
}

// VerdictTable renders the verdict mix over all field slots.
func (s *Summary) VerdictTable() string {
	var counts [NumVerdicts]int
	for _, f := range s.Fields {
		counts[Equal] += f.Equal
		counts[Equivalent] += f.Equivalent
		counts[MissingWHOIS] += f.MissingWHOIS
		counts[MissingRDAP] += f.MissingRDAP
		counts[MissingBoth] += f.MissingBoth
		counts[Conflict] += f.Conflict
	}
	slots := 0
	for _, c := range counts {
		slots += c
	}
	rows := make([]survey.Row, 0, NumVerdicts)
	for v := Verdict(0); v < NumVerdicts; v++ {
		pct := 0.0
		if slots > 0 {
			pct = 100 * float64(counts[v]) / float64(slots)
		}
		rows = append(rows, survey.Row{Key: v.String(), Count: counts[v], Pct: pct})
	}
	return survey.RenderRows("Agreement taxonomy across all fields", rows)
}
