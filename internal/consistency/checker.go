package consistency

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rdap"
	"repro/internal/whoisclient"
)

// Checker obtains one domain through both protocol paths and compares
// the answers. The fetch and parse steps are injectable functions so the
// checker runs identically against the simulated cluster, live servers,
// or canned fixtures in tests.
type Checker struct {
	// FetchWHOIS returns the best WHOIS record text for a domain —
	// typically (*whoisclient.Client).LookupText against a registry
	// server. Required.
	FetchWHOIS func(ctx context.Context, domain string) (string, error)
	// FetchRDAP returns the domain's RDAP object — typically
	// (*rdap.Client).Lookup. Required.
	FetchRDAP func(ctx context.Context, domain string) (*rdap.Domain, error)
	// Parse turns WHOIS text into a parsed record — typically
	// (*core.Parser).Parse or a tiered router's parse. Required.
	Parse func(text string) *core.ParsedRecord
}

// NewChecker wires a checker from the standard clients: WHOIS text via
// the two-step thick lookup against registryServer, RDAP via rc.
func NewChecker(wc *whoisclient.Client, registryServer string, rc *rdap.Client, parse func(string) *core.ParsedRecord) *Checker {
	return &Checker{
		FetchWHOIS: func(ctx context.Context, domain string) (string, error) {
			return wc.LookupText(ctx, registryServer, domain)
		},
		FetchRDAP: func(ctx context.Context, domain string) (*rdap.Domain, error) {
			return rc.Lookup(domain)
		},
		Parse: parse,
	}
}

// Result is one domain's full cross-protocol check: both projected
// views, the raw WHOIS text they came from, and the field comparison.
type Result struct {
	Domain     string     `json:"domain"`
	WHOISText  string     `json:"-"`
	WHOIS      FieldView  `json:"whois"`
	RDAP       FieldView  `json:"rdap"`
	Comparison Comparison `json:"comparison"`
}

// Check fetches the domain over both protocols, parses the WHOIS side,
// and compares. An error on either fetch fails the whole check — a
// missing protocol answer is an availability problem, not a consistency
// verdict.
func (c *Checker) Check(ctx context.Context, domain string) (*Result, error) {
	if c.FetchWHOIS == nil || c.FetchRDAP == nil || c.Parse == nil {
		return nil, fmt.Errorf("consistency: checker needs FetchWHOIS, FetchRDAP, and Parse")
	}
	text, err := c.FetchWHOIS(ctx, domain)
	if err != nil {
		return nil, fmt.Errorf("consistency: whois %s: %w", domain, err)
	}
	d, err := c.FetchRDAP(ctx, domain)
	if err != nil {
		return nil, fmt.Errorf("consistency: rdap %s: %w", domain, err)
	}
	pr := c.Parse(text)
	res := &Result{
		Domain:    domain,
		WHOISText: text,
		WHOIS:     FromWHOIS(pr),
		RDAP:      FromRDAP(d),
	}
	res.Comparison = Compare(res.WHOIS, res.RDAP)
	return res, nil
}
