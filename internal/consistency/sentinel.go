package consistency

import (
	"sync"

	"repro/internal/norm"
	"repro/internal/obs"
)

// SentinelOptions tune the drift sentinel. Zero values take defaults.
type SentinelOptions struct {
	// Window is the per-registrar sliding window size (default 32).
	Window int
	// MinWindow is the minimum observations before a registrar can be
	// flagged (default 8) — a single conflicted record is not drift.
	MinWindow int
	// ConflictCeiling flags a registrar when its windowed mean
	// disagreement rate exceeds it (default 0.10).
	ConflictCeiling float64
	// OnDrift, when non-nil, is called on every flag transition with the
	// registrar's display name, its new flagged state, and the windowed
	// mean rate that triggered the transition. Called with the sentinel's
	// lock released.
	OnDrift func(registrar string, flagged bool, rate float64)
}

func (o SentinelOptions) withDefaults() SentinelOptions {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 8
	}
	if o.MinWindow > o.Window {
		o.MinWindow = o.Window
	}
	if o.ConflictCeiling <= 0 {
		o.ConflictCeiling = 0.10
	}
	return o
}

// Sentinel watches cross-protocol agreement per registrar, the same way
// the lifecycle sentinel watches parse quality: disagreement is registrar
// drift — one registrar changes its WHOIS output (or its RDAP deployment
// lags a data migration) and consistency quietly degrades there while the
// aggregate rate barely moves. Each registrar keeps a sliding window of
// per-record disagreement rates; a registrar is flagged when the windowed
// mean crosses the ceiling and unflagged when it recovers. Transitions,
// not levels, fire OnDrift and the flag_events counters.
type Sentinel struct {
	opts SentinelOptions
	met  *sentinelMetrics

	mu    sync.Mutex
	wins  map[string]*ring  // norm.Registrar key → window
	names map[string]string // norm.Registrar key → first-seen display name
	flags map[string]bool   // norm.Registrar key → flagged
}

type sentinelMetrics struct {
	observations *obs.Counter
	conflicts    *obs.Counter
	flagEvents   *obs.Counter
	unflagEvents *obs.Counter
	flagged      *obs.Gauge
}

// ring is a fixed-capacity sliding window with a running sum (O(1) mean),
// mirroring the lifecycle sentinel's window.
type ring struct {
	buf  []float64
	n    int
	next int
	sum  float64
}

func (r *ring) push(v float64) {
	if r.n == len(r.buf) {
		r.sum -= r.buf[r.next]
	} else {
		r.n++
	}
	r.buf[r.next] = v
	r.sum += v
	r.next = (r.next + 1) % len(r.buf)
}

func (r *ring) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// NewSentinel creates a sentinel with the given options.
func NewSentinel(opts SentinelOptions) *Sentinel {
	return &Sentinel{
		opts:  opts.withDefaults(),
		wins:  map[string]*ring{},
		names: map[string]string{},
		flags: map[string]bool{},
	}
}

// Instrument wires the sentinel into reg under consistency.drift.*:
// observations/conflicts count records seen and records with at least one
// conflicting field, flag_events/unflag_events count transitions, and
// flagged gauges the number of currently flagged registrars. Call once,
// before the sentinel is shared.
func (s *Sentinel) Instrument(reg *obs.Registry) {
	s.met = &sentinelMetrics{
		observations: reg.Counter("consistency.drift.observations"),
		conflicts:    reg.Counter("consistency.drift.conflicts"),
		flagEvents:   reg.Counter("consistency.drift.flag_events"),
		unflagEvents: reg.Counter("consistency.drift.unflag_events"),
		flagged:      reg.Gauge("consistency.drift.flagged"),
	}
}

// Observe feeds one comparison into its registrar's window and reports
// whether the registrar's flag transitioned. Comparisons with no
// comparable fields are counted but do not move any window — no evidence
// either way.
func (s *Sentinel) Observe(c Comparison) (flagged, unflagged bool) {
	if s.met != nil {
		s.met.observations.Inc()
		if c.Conflicts() > 0 {
			s.met.conflicts.Inc()
		}
	}
	if c.Comparable() == 0 {
		return false, false
	}
	key := norm.Registrar(c.Registrar)
	rate := c.Rate()

	s.mu.Lock()
	w := s.wins[key]
	if w == nil {
		w = &ring{buf: make([]float64, s.opts.Window)}
		s.wins[key] = w
		s.names[key] = c.Registrar
	}
	w.push(rate)
	var mean float64
	var total int
	if w.n >= s.opts.MinWindow {
		mean = w.mean()
		was := s.flags[key]
		drifting := mean > s.opts.ConflictCeiling
		switch {
		case drifting && !was:
			s.flags[key] = true
			flagged = true
		case !drifting && was:
			delete(s.flags, key)
			unflagged = true
		}
	}
	total = len(s.flags)
	name := s.names[key]
	s.mu.Unlock()

	if flagged || unflagged {
		if s.met != nil {
			if flagged {
				s.met.flagEvents.Inc()
			} else {
				s.met.unflagEvents.Inc()
			}
			s.met.flagged.Set(int64(total))
		}
		if s.opts.OnDrift != nil {
			s.opts.OnDrift(name, flagged, mean)
		}
	}
	return flagged, unflagged
}

// Flagged returns the display names of currently flagged registrars,
// unordered.
func (s *Sentinel) Flagged() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.flags))
	for key := range s.flags {
		out = append(out, s.names[key])
	}
	return out
}

// Reset clears all windows and flags — after a parser promotion or an
// RDAP data migration, old evidence says nothing about the new state.
func (s *Sentinel) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wins = map[string]*ring{}
	s.names = map[string]string{}
	s.flags = map[string]bool{}
	if s.met != nil {
		s.met.flagged.Set(0)
	}
}
