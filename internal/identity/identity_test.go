package identity

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42)
	b := NewGenerator(42)
	for i := 0; i < 50; i++ {
		pa := a.Person("US", i%2 == 0)
		pb := b.Person("US", i%2 == 0)
		if pa != pb {
			t.Fatalf("iteration %d: %+v != %+v", i, pa, pb)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(1).Person("US", true)
	b := NewGenerator(2).Person("US", true)
	if a == b {
		t.Error("different seeds produced identical identities")
	}
}

func TestPersonFieldsPopulated(t *testing.T) {
	g := NewGenerator(7)
	for _, code := range []string{"US", "CN", "GB", "DE", "JP", "IN", "TR", "VN", "RU", "BR"} {
		p := g.Person(code, true)
		if p.Name == "" || !strings.Contains(p.Name, " ") {
			t.Errorf("%s: bad name %q", code, p.Name)
		}
		if p.Street == "" || p.City == "" {
			t.Errorf("%s: missing address parts: %+v", code, p)
		}
		if p.CountryCode != code {
			t.Errorf("country code %q, want %q", p.CountryCode, code)
		}
		if p.Org == "" {
			t.Errorf("%s: hasOrg person missing org", code)
		}
		if !strings.Contains(p.Email, "@") {
			t.Errorf("%s: bad email %q", code, p.Email)
		}
		if !strings.HasPrefix(p.Phone, CountryByCode(code).DialCode) {
			t.Errorf("%s: phone %q missing dial code %q", code, p.Phone, CountryByCode(code).DialCode)
		}
	}
}

func TestPersonWithoutOrg(t *testing.T) {
	p := NewGenerator(3).Person("US", false)
	if p.Org != "" {
		t.Errorf("hasOrg=false produced org %q", p.Org)
	}
}

func TestUnknownCountryFallsBackToUS(t *testing.T) {
	p := NewGenerator(4).Person("ZZ", false)
	if p.CountryCode != "US" {
		t.Errorf("unknown country: got %q, want US fallback", p.CountryCode)
	}
}

func TestPostcodeFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := map[string]string{
		"#####":    "12345",
		"###-####": "123-4567",
		"AA# #AA":  "AB1 2CD",
		"":         "",
	}
	for format := range cases {
		got := Postcode(rng, format)
		if len(got) != len(format) {
			t.Errorf("format %q: got %q (length mismatch)", format, got)
			continue
		}
		for i := 0; i < len(format); i++ {
			switch format[i] {
			case '#':
				if got[i] < '0' || got[i] > '9' {
					t.Errorf("format %q: position %d of %q not a digit", format, i, got)
				}
			case 'A':
				if got[i] < 'A' || got[i] > 'Z' {
					t.Errorf("format %q: position %d of %q not a letter", format, i, got)
				}
			default:
				if got[i] != format[i] {
					t.Errorf("format %q: literal %q mangled to %q", format, format[i], got[i])
				}
			}
		}
	}
}

func TestPostcodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		for _, c := range Countries() {
			p := Postcode(rng, c.PostcodeFmt)
			if len(p) != len(c.PostcodeFmt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPhoneHasEnoughDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		p := Phone(rng, "+1")
		digits := 0
		for _, r := range p {
			if r >= '0' && r <= '9' {
				digits++
			}
		}
		if digits < 8 {
			t.Errorf("phone %q has only %d digits", p, digits)
		}
	}
}

func TestCountriesCoverPaperTables(t *testing.T) {
	// Every country in Tables 3 and 8 must exist in the pool.
	for _, code := range []string{"US", "CN", "GB", "DE", "FR", "CA", "ES", "AU", "JP", "IN", "TR", "VN", "RU"} {
		if CountryByCode(code) == nil {
			t.Errorf("country %s missing from pool", code)
		}
	}
}

func TestCountryByCodeCaseInsensitive(t *testing.T) {
	if CountryByCode("us") == nil {
		t.Error("lower-case lookup failed")
	}
	if CountryByCode("nope") != nil {
		t.Error("bogus code resolved")
	}
}

func TestStreet2Format(t *testing.T) {
	g := NewGenerator(9)
	sawSuite := false
	for i := 0; i < 200; i++ {
		p := g.Person("US", false)
		if p.Street2 != "" {
			sawSuite = true
			if !strings.HasPrefix(p.Street2, "Suite ") {
				t.Errorf("unexpected street2 %q", p.Street2)
			}
		}
	}
	if !sawSuite {
		t.Error("no person ever had a second address line")
	}
}
