// Package identity generates deterministic synthetic registrant contact
// identities — names, organizations, postal addresses, phone numbers and
// e-mail addresses — with per-country shapes (postcode formats, phone
// prefixes, romanized name pools). It stands in for the live registrant
// data of the paper's 102M-record crawl; see DESIGN.md §2.
package identity

import (
	"fmt"
	"math/rand"
	"strings"
)

// Person is one synthetic contact identity.
type Person struct {
	Name        string
	Org         string
	Street      string
	Street2     string // optional second address line ("" most of the time)
	City        string
	State       string
	Postcode    string
	CountryCode string // ISO-3166 alpha-2, upper case
	CountryName string
	Phone       string
	Fax         string // optional
	Email       string
}

// Country describes the address conventions of one country in the pool.
type Country struct {
	Code      string
	Name      string
	DialCode  string
	Cities    []string
	States    []string // empty if the country block omits states
	FirstName []string
	LastName  []string
	// PostcodeFmt uses '#' for a random digit and 'A' for a random letter.
	PostcodeFmt string
}

// Countries returns the country pool, keyed by ISO code. The pool covers
// every country appearing in the paper's Tables 3 and 8.
func Countries() map[string]*Country { return countryPool }

// CountryByCode returns the country with the given ISO code, or nil.
func CountryByCode(code string) *Country { return countryPool[strings.ToUpper(code)] }

var westernFirst = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Susan", "Richard", "Jessica",
	"Thomas", "Sarah", "Charles", "Karen", "Daniel", "Nancy", "Matthew",
	"Lisa", "Anthony", "Margaret", "Mark", "Sandra", "Paul", "Ashley",
	"Steven", "Emily", "Andrew", "Donna", "Kenneth", "Michelle", "George",
	"Carol", "Joshua", "Amanda", "Kevin", "Melissa", "Brian", "Deborah",
}

var westernLast = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Thompson", "White", "Harris", "Clark", "Lewis", "Robinson",
	"Walker", "Young", "Allen", "King", "Wright", "Scott", "Green", "Baker",
	"Adams", "Nelson", "Hill", "Campbell", "Mitchell", "Carter", "Roberts",
}

var chineseFirst = []string{
	"Wei", "Fang", "Jun", "Min", "Lei", "Yan", "Tao", "Juan", "Ming",
	"Xia", "Qiang", "Hong", "Jie", "Ying", "Bo", "Li", "Hao", "Mei",
	"Gang", "Ling", "Peng", "Na", "Chao", "Xiu", "Feng", "Lan",
}

var chineseLast = []string{
	"Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
	"Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Gao", "Lin",
	"Luo", "Zheng", "Liang", "Xie", "Tang", "Song", "Deng",
}

var japaneseFirst = []string{
	"Hiroshi", "Yuko", "Takashi", "Keiko", "Kenji", "Yumi", "Satoshi",
	"Akiko", "Kazuo", "Naoko", "Makoto", "Emi", "Taro", "Hanako",
	"Shinji", "Mariko", "Daisuke", "Ayumi", "Koji", "Rie",
}

var japaneseLast = []string{
	"Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito", "Yamamoto",
	"Nakamura", "Kobayashi", "Kato", "Yoshida", "Yamada", "Sasaki",
	"Yamaguchi", "Saito", "Matsumoto", "Inoue", "Kimura", "Hayashi",
	"Shimizu",
}

var indianFirst = []string{
	"Amit", "Priya", "Rahul", "Anjali", "Vijay", "Sunita", "Sanjay",
	"Kavita", "Rajesh", "Neha", "Arun", "Pooja", "Suresh", "Deepa",
	"Anil", "Meera", "Ravi", "Shreya", "Manoj", "Divya",
}

var indianLast = []string{
	"Sharma", "Patel", "Singh", "Kumar", "Gupta", "Verma", "Reddy",
	"Joshi", "Mehta", "Nair", "Rao", "Desai", "Iyer", "Chopra",
	"Malhotra", "Agarwal", "Banerjee", "Mishra", "Pandey", "Shah",
}

var turkishFirst = []string{
	"Mehmet", "Ayse", "Mustafa", "Fatma", "Ahmet", "Emine", "Ali",
	"Hatice", "Huseyin", "Zeynep", "Hasan", "Elif", "Ibrahim", "Meryem",
}

var turkishLast = []string{
	"Yilmaz", "Kaya", "Demir", "Celik", "Sahin", "Yildiz", "Ozturk",
	"Aydin", "Arslan", "Dogan", "Kilic", "Aslan", "Cetin", "Kara",
}

var vietnameseFirst = []string{
	"Anh", "Binh", "Cuong", "Dung", "Giang", "Hanh", "Hieu", "Hoa",
	"Hung", "Lan", "Linh", "Minh", "Nam", "Phuong", "Quan", "Thao",
}

var vietnameseLast = []string{
	"Nguyen", "Tran", "Le", "Pham", "Hoang", "Phan", "Vu", "Vo",
	"Dang", "Bui", "Do", "Ho", "Ngo", "Duong",
}

var russianFirst = []string{
	"Alexei", "Olga", "Dmitri", "Natalia", "Sergei", "Elena", "Ivan",
	"Tatiana", "Mikhail", "Svetlana", "Andrei", "Irina", "Nikolai", "Anna",
}

var russianLast = []string{
	"Ivanov", "Smirnov", "Kuznetsov", "Popov", "Vasiliev", "Petrov",
	"Sokolov", "Mikhailov", "Novikov", "Fedorov", "Morozov", "Volkov",
}

var countryPool = map[string]*Country{
	"US": {
		Code: "US", Name: "United States", DialCode: "+1",
		Cities:    []string{"New York", "Los Angeles", "Chicago", "Houston", "Phoenix", "Philadelphia", "San Antonio", "San Diego", "Dallas", "Austin", "Seattle", "Denver", "Boston", "Portland", "Atlanta", "Miami"},
		States:    []string{"NY", "CA", "IL", "TX", "AZ", "PA", "WA", "CO", "MA", "OR", "GA", "FL", "OH", "NC", "MI", "VA"},
		FirstName: westernFirst, LastName: westernLast, PostcodeFmt: "#####",
	},
	"CN": {
		Code: "CN", Name: "China", DialCode: "+86",
		Cities:    []string{"Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Hangzhou", "Chengdu", "Nanjing", "Wuhan", "Xiamen", "Tianjin", "Suzhou", "Changsha"},
		States:    []string{"Beijing", "Shanghai", "Guangdong", "Zhejiang", "Sichuan", "Jiangsu", "Hubei", "Fujian", "Tianjin", "Hunan"},
		FirstName: chineseFirst, LastName: chineseLast, PostcodeFmt: "######",
	},
	"GB": {
		Code: "GB", Name: "United Kingdom", DialCode: "+44",
		Cities:    []string{"London", "Manchester", "Birmingham", "Leeds", "Glasgow", "Liverpool", "Bristol", "Sheffield", "Edinburgh", "Cardiff"},
		States:    []string{"England", "Scotland", "Wales", "Greater London", "West Midlands"},
		FirstName: westernFirst, LastName: westernLast, PostcodeFmt: "AA# #AA",
	},
	"DE": {
		Code: "DE", Name: "Germany", DialCode: "+49",
		Cities:    []string{"Berlin", "Hamburg", "Munich", "Cologne", "Frankfurt", "Stuttgart", "Dusseldorf", "Leipzig", "Dresden", "Hannover"},
		States:    []string{"Berlin", "Hamburg", "Bavaria", "NRW", "Hessen", "Sachsen"},
		FirstName: westernFirst, LastName: []string{"Mueller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer", "Wagner", "Becker", "Schulz", "Hoffmann", "Koch", "Bauer", "Richter", "Klein", "Wolf"},
		PostcodeFmt: "#####",
	},
	"FR": {
		Code: "FR", Name: "France", DialCode: "+33",
		Cities:    []string{"Paris", "Marseille", "Lyon", "Toulouse", "Nice", "Nantes", "Strasbourg", "Montpellier", "Bordeaux", "Lille"},
		States:    []string{"Ile-de-France", "PACA", "Auvergne-Rhone-Alpes", "Occitanie", "Nouvelle-Aquitaine"},
		FirstName: westernFirst, LastName: []string{"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefebvre", "Michel", "Garcia"},
		PostcodeFmt: "#####",
	},
	"CA": {
		Code: "CA", Name: "Canada", DialCode: "+1",
		Cities:    []string{"Toronto", "Montreal", "Vancouver", "Calgary", "Edmonton", "Ottawa", "Winnipeg", "Quebec City", "Hamilton", "Halifax"},
		States:    []string{"ON", "QC", "BC", "AB", "MB", "NS"},
		FirstName: westernFirst, LastName: westernLast, PostcodeFmt: "A#A #A#",
	},
	"ES": {
		Code: "ES", Name: "Spain", DialCode: "+34",
		Cities:    []string{"Madrid", "Barcelona", "Valencia", "Seville", "Zaragoza", "Malaga", "Bilbao", "Murcia"},
		States:    []string{"Madrid", "Catalonia", "Valencia", "Andalusia", "Aragon"},
		FirstName: westernFirst, LastName: []string{"Garcia", "Rodriguez", "Gonzalez", "Fernandez", "Lopez", "Martinez", "Sanchez", "Perez", "Gomez", "Martin", "Jimenez", "Ruiz"},
		PostcodeFmt: "#####",
	},
	"AU": {
		Code: "AU", Name: "Australia", DialCode: "+61",
		Cities:    []string{"Sydney", "Melbourne", "Brisbane", "Perth", "Adelaide", "Canberra", "Hobart", "Darwin"},
		States:    []string{"NSW", "VIC", "QLD", "WA", "SA", "ACT"},
		FirstName: westernFirst, LastName: westernLast, PostcodeFmt: "####",
	},
	"JP": {
		Code: "JP", Name: "Japan", DialCode: "+81",
		Cities:    []string{"Tokyo", "Osaka", "Yokohama", "Nagoya", "Sapporo", "Fukuoka", "Kobe", "Kyoto", "Sendai", "Hiroshima"},
		States:    []string{"Tokyo", "Osaka", "Kanagawa", "Aichi", "Hokkaido", "Fukuoka", "Hyogo", "Kyoto"},
		FirstName: japaneseFirst, LastName: japaneseLast, PostcodeFmt: "###-####",
	},
	"IN": {
		Code: "IN", Name: "India", DialCode: "+91",
		Cities:    []string{"Mumbai", "Delhi", "Bangalore", "Hyderabad", "Chennai", "Kolkata", "Pune", "Ahmedabad", "Jaipur", "Lucknow"},
		States:    []string{"Maharashtra", "Delhi", "Karnataka", "Telangana", "Tamil Nadu", "West Bengal", "Gujarat", "Rajasthan"},
		FirstName: indianFirst, LastName: indianLast, PostcodeFmt: "######",
	},
	"TR": {
		Code: "TR", Name: "Turkey", DialCode: "+90",
		Cities:    []string{"Istanbul", "Ankara", "Izmir", "Bursa", "Antalya", "Adana", "Konya", "Gaziantep"},
		States:    []string{"Istanbul", "Ankara", "Izmir", "Bursa", "Antalya"},
		FirstName: turkishFirst, LastName: turkishLast, PostcodeFmt: "#####",
	},
	"VN": {
		Code: "VN", Name: "Vietnam", DialCode: "+84",
		Cities:    []string{"Hanoi", "Ho Chi Minh City", "Da Nang", "Hai Phong", "Can Tho", "Hue"},
		States:    []string{"Hanoi", "Ho Chi Minh", "Da Nang", "Hai Phong"},
		FirstName: vietnameseFirst, LastName: vietnameseLast, PostcodeFmt: "######",
	},
	"RU": {
		Code: "RU", Name: "Russia", DialCode: "+7",
		Cities:    []string{"Moscow", "Saint Petersburg", "Novosibirsk", "Yekaterinburg", "Kazan", "Samara"},
		States:    []string{"Moscow", "Saint Petersburg", "Novosibirsk Oblast", "Sverdlovsk Oblast", "Tatarstan"},
		FirstName: russianFirst, LastName: russianLast, PostcodeFmt: "######",
	},
	"HK": {
		Code: "HK", Name: "Hong Kong", DialCode: "+852",
		Cities:    []string{"Hong Kong", "Kowloon", "Tsuen Wan", "Sha Tin"},
		States:    nil,
		FirstName: chineseFirst, LastName: chineseLast, PostcodeFmt: "",
	},
	"NL": {
		Code: "NL", Name: "Netherlands", DialCode: "+31",
		Cities:    []string{"Amsterdam", "Rotterdam", "The Hague", "Utrecht", "Eindhoven"},
		States:    []string{"Noord-Holland", "Zuid-Holland", "Utrecht", "Noord-Brabant"},
		FirstName: westernFirst, LastName: []string{"de Jong", "Jansen", "de Vries", "van den Berg", "van Dijk", "Bakker", "Visser", "Smit"},
		PostcodeFmt: "#### AA",
	},
	"BR": {
		Code: "BR", Name: "Brazil", DialCode: "+55",
		Cities:    []string{"Sao Paulo", "Rio de Janeiro", "Brasilia", "Salvador", "Fortaleza", "Belo Horizonte", "Curitiba"},
		States:    []string{"SP", "RJ", "DF", "BA", "CE", "MG", "PR"},
		FirstName: westernFirst, LastName: []string{"Silva", "Santos", "Oliveira", "Souza", "Lima", "Pereira", "Ferreira", "Costa", "Rodrigues", "Almeida"},
		PostcodeFmt: "#####-###",
	},
	"IT": {
		Code: "IT", Name: "Italy", DialCode: "+39",
		Cities:    []string{"Rome", "Milan", "Naples", "Turin", "Palermo", "Genoa", "Bologna", "Florence"},
		States:    []string{"Lazio", "Lombardy", "Campania", "Piedmont", "Sicily", "Tuscany"},
		FirstName: westernFirst, LastName: []string{"Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo", "Ricci", "Marino", "Greco"},
		PostcodeFmt: "#####",
	},
	"KR": {
		Code: "KR", Name: "South Korea", DialCode: "+82",
		Cities:      []string{"Seoul", "Busan", "Incheon", "Daegu", "Daejeon", "Gwangju"},
		States:      []string{"Seoul", "Busan", "Gyeonggi", "Incheon"},
		FirstName:   []string{"Minjun", "Seoyeon", "Jihun", "Jiwoo", "Hyunwoo", "Soyeon", "Junho", "Yuna", "Donghyun", "Eunji"},
		LastName:    []string{"Kim", "Lee", "Park", "Choi", "Jung", "Kang", "Cho", "Yoon", "Jang", "Lim"},
		PostcodeFmt: "#####",
	},
	"MX": {
		Code: "MX", Name: "Mexico", DialCode: "+52",
		Cities:    []string{"Mexico City", "Guadalajara", "Monterrey", "Puebla", "Tijuana", "Leon"},
		States:    []string{"CDMX", "Jalisco", "Nuevo Leon", "Puebla", "Baja California"},
		FirstName: westernFirst, LastName: []string{"Hernandez", "Garcia", "Martinez", "Lopez", "Gonzalez", "Perez", "Rodriguez", "Sanchez", "Ramirez", "Cruz"},
		PostcodeFmt: "#####",
	},
}

var streetSuffixes = []string{"St", "Ave", "Rd", "Blvd", "Lane", "Drive", "Way", "Court", "Street", "Road"}

var streetNames = []string{
	"Main", "Oak", "Maple", "Cedar", "Pine", "Elm", "Washington", "Lake",
	"Hill", "Park", "Sunset", "River", "Spring", "Church", "Market",
	"Broad", "Center", "Union", "Liberty", "Franklin", "Highland",
	"Jackson", "Madison", "Harbor", "Garden", "Forest", "Meadow",
}

var orgSuffixes = []string{"LLC", "Inc.", "Ltd.", "Co.", "Group", "Holdings", "Solutions", "Media", "Labs", "Studio", "Technologies", "Consulting", "Enterprises", "Partners"}

var orgStems = []string{
	"Bright", "Blue", "Global", "Pacific", "Northern", "Summit", "Vertex",
	"Prime", "Atlas", "Nova", "Pioneer", "Cascade", "Horizon", "Quantum",
	"Stellar", "Apex", "Fusion", "Beacon", "Crest", "Orbit", "Zenith",
	"Silver", "Golden", "Rapid", "Swift", "Solid", "Clear", "Smart",
}

var emailDomains = []string{
	"gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com",
	"mail.com", "163.com", "qq.com", "126.com", "yandex.ru", "web.de",
	"gmx.de", "orange.fr", "naver.com", "yahoo.co.jp",
}

// Generator produces deterministic identities from a seeded PRNG.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded for reproducibility.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

// Postcode renders a country's postcode format.
func Postcode(rng *rand.Rand, format string) string {
	if format == "" {
		return ""
	}
	var b strings.Builder
	for _, c := range format {
		switch c {
		case '#':
			b.WriteByte(byte('0' + rng.Intn(10)))
		case 'A':
			b.WriteByte(byte('A' + rng.Intn(26)))
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Phone renders an international phone number with the country dial code.
func Phone(rng *rand.Rand, dial string) string {
	area := 100 + rng.Intn(900)
	a := 100 + rng.Intn(900)
	b := 1000 + rng.Intn(9000)
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%s.%d.%d%d", dial, area, a, b)
	case 1:
		return fmt.Sprintf("%s-%d-%d-%d", dial, area, a, b)
	default:
		return fmt.Sprintf("%s %d %d%d", dial, area, a, b)
	}
}

// Person generates a full identity in the given country. hasOrg controls
// whether an organization is attached (about half of real registrants).
func (g *Generator) Person(countryCode string, hasOrg bool) Person {
	c := CountryByCode(countryCode)
	if c == nil {
		c = countryPool["US"]
	}
	rng := g.rng
	first := pick(rng, c.FirstName)
	last := pick(rng, c.LastName)
	p := Person{
		Name:        first + " " + last,
		Street:      fmt.Sprintf("%d %s %s", 1+rng.Intn(9999), pick(rng, streetNames), pick(rng, streetSuffixes)),
		City:        pick(rng, c.Cities),
		CountryCode: c.Code,
		CountryName: c.Name,
		Postcode:    Postcode(rng, c.PostcodeFmt),
		Phone:       Phone(rng, c.DialCode),
	}
	if len(c.States) > 0 {
		p.State = pick(rng, c.States)
	}
	if rng.Float64() < 0.15 {
		p.Street2 = fmt.Sprintf("Suite %d", 1+rng.Intn(900))
	}
	if rng.Float64() < 0.3 {
		p.Fax = Phone(rng, c.DialCode)
	}
	if hasOrg {
		p.Org = pick(rng, orgStems) + " " + pick(rng, orgStems) + " " + pick(rng, orgSuffixes)
	}
	user := strings.ToLower(strings.ReplaceAll(first, " ", "")) + "." + strings.ToLower(strings.ReplaceAll(last, " ", ""))
	if rng.Intn(2) == 0 {
		user = fmt.Sprintf("%s%d", strings.ToLower(last), rng.Intn(1000))
	}
	p.Email = user + "@" + pick(rng, emailDomains)
	return p
}

// OrgPerson generates an identity that always carries an organization.
func (g *Generator) OrgPerson(countryCode string) Person { return g.Person(countryCode, true) }

// RNG exposes the generator's PRNG so composing generators (internal/synth)
// can draw from the same deterministic stream.
func (g *Generator) RNG() *rand.Rand { return g.rng }
