package lifecycle

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/store"
	"repro/internal/survey"
)

// alqueue is the in-memory active-learning buffer: records whose
// minimum posterior confidence fell below the threshold, waiting to be
// ranked and persisted for labeling (§5.3: label where the model is
// least certain, not at random). It is bounded: when full, the *least*
// uncertain entry is evicted, so a flood of borderline records cannot
// push out the ones the labeler would learn most from.
type alqueue struct {
	threshold float64
	cap       int

	mu      sync.Mutex
	byText  map[string]int // text → index in entries
	entries []queueEntry
}

type queueEntry struct {
	domain string
	text   string
	conf   float64
}

func newALQueue(threshold float64, capacity int) *alqueue {
	return &alqueue{
		threshold: threshold,
		cap:       capacity,
		byText:    map[string]int{},
	}
}

// add offers one low-confidence record. Duplicate texts keep their
// lowest observed confidence. Returns false when the record was dropped
// (queue full of more-uncertain entries).
func (q *alqueue) add(domain, text string, conf float64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i, ok := q.byText[text]; ok {
		if conf < q.entries[i].conf {
			q.entries[i].conf = conf
		}
		return true
	}
	if len(q.entries) >= q.cap {
		// Evict the least uncertain entry if the newcomer beats it.
		worst, worstConf := -1, conf
		for i := range q.entries {
			if q.entries[i].conf > worstConf {
				worst, worstConf = i, q.entries[i].conf
			}
		}
		if worst < 0 {
			return false
		}
		delete(q.byText, q.entries[worst].text)
		last := len(q.entries) - 1
		q.entries[worst] = q.entries[last]
		q.byText[q.entries[worst].text] = worst
		q.entries = q.entries[:last]
	}
	q.byText[text] = len(q.entries)
	q.entries = append(q.entries, queueEntry{domain: domain, text: text, conf: conf})
	return true
}

func (q *alqueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// drain empties the queue and returns its entries.
func (q *alqueue) drain() []queueEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.entries
	q.entries = nil
	q.byText = map[string]int{}
	return out
}

// FlushQueue ranks the queued low-confidence records by the current
// model's uncertainty (most uncertain first, §5.3) and appends them to
// Options.Queue in that order, so a labeler reading the log front to
// back always sees the most informative record next. Each persisted
// record carries the raw text, the domain (or a deterministic
// text-hash key when the parse extracted none — the store dedupes by
// domain), and the version of the model that was uncertain about it.
// Returns the number of records persisted.
func (m *Manager) FlushQueue() (int, error) {
	if m.opts.Queue == nil {
		return 0, nil
	}
	entries := m.queue.drain()
	if len(entries) == 0 {
		return 0, nil
	}
	snap := m.cur.Load()
	texts := make([]string, len(entries))
	for i, e := range entries {
		texts[i] = e.text
	}
	order := snap.Parser.RankByUncertainty(texts)
	n := 0
	for _, i := range order {
		e := entries[i]
		domain := e.domain
		if domain == "" {
			h := fnv.New32a()
			h.Write([]byte(e.text))
			domain = fmt.Sprintf("unlabeled-%08x", h.Sum32())
		}
		rec := &store.Record{
			Domain: domain,
			Text:   e.text,
			Facts: survey.Facts{
				Domain:       domain,
				ModelVersion: snap.Version,
			},
		}
		if err := m.opts.Queue.Append(rec); err != nil {
			return n, fmt.Errorf("lifecycle: flush queue: %w", err)
		}
		n++
		m.met.queuePersisted.Inc()
	}
	if err := m.opts.Queue.Sync(); err != nil {
		return n, fmt.Errorf("lifecycle: flush queue: %w", err)
	}
	m.log.Info("labeling queue flushed", "records", n, "model", snap.Version)
	return n, nil
}
