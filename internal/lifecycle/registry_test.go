package lifecycle

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/modelreg"
	"repro/internal/serve"
	"repro/internal/store"
)

// seedRegistry publishes p as <family>/1.0.0 and walks it to serving.
func seedRegistry(t *testing.T, p *core.Parser, family string) *modelreg.Registry {
	t.Helper()
	reg, err := modelreg.Open(t.TempDir(), modelreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seed.wmdl")
	if err := store.SaveModel(p, path); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(modelreg.PublishRequest{Family: family, ArtifactPath: path}); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetCandidate(family, "1.0.0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reg.Promote(family, "1.0.0"); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestNewFromRegistryStampsCanonicalVersion(t *testing.T) {
	recs, weak, strong := fixtures(t)
	reg := seedRegistry(t, weak, "default")

	m, err := NewFromRegistry(reg, "", Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Current()
	if snap.Family != "default" || snap.SemVer != "1.0.0" {
		t.Fatalf("snapshot identity = %q/%q", snap.Family, snap.SemVer)
	}
	want := modelreg.FormatVersionString("default", "1.0.0", snap.Info.CRC32C)
	if snap.Version != want {
		t.Fatalf("version = %q, want %q", snap.Version, want)
	}
	rec := m.Parse(recs[0].Text)
	if rec.ModelVersion != want {
		t.Fatalf("stamped %q, want %q", rec.ModelVersion, want)
	}

	// Nothing new serving: reload is a no-op.
	if _, changed, err := m.ReloadServing(); err != nil || changed {
		t.Fatalf("idle reload: changed=%v err=%v", changed, err)
	}

	// Publish + promote a new version out-of-band (another process, the
	// CLI); reload picks it up.
	path := filepath.Join(t.TempDir(), "v2.wmdl")
	if err := store.SaveModel(strong, path); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(modelreg.PublishRequest{Family: "default", ArtifactPath: path, Parent: "1.0.0"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetCandidate("default", "1.1.0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reg.Promote("default", "1.1.0"); err != nil {
			t.Fatal(err)
		}
	}
	snap2, changed, err := m.ReloadServing()
	if err != nil || !changed {
		t.Fatalf("reload after promote: changed=%v err=%v", changed, err)
	}
	if snap2.SemVer != "1.1.0" {
		t.Fatalf("reloaded semver = %q", snap2.SemVer)
	}
	if m.Parse(recs[0].Text).ModelVersion != snap2.Version {
		t.Fatal("parse not stamped with reloaded version")
	}

	// Managers without a registry refuse ReloadServing.
	plain := New(weak, Options{})
	if _, _, err := plain.ReloadServing(); err != ErrNoRegistry {
		t.Fatalf("plain ReloadServing err = %v", err)
	}
}

func TestRetrainPublishesAndPromotesThroughRegistry(t *testing.T) {
	recs, weak, _ := fixtures(t)
	reg := seedRegistry(t, weak, "default")

	m, err := NewFromRegistry(reg, "default", Options{
		Holdout:    holdoutSet(t),
		CorpusPath: "/data/corpus.store",
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := serve.New(weak, serve.Options{Workers: 2})
	defer ps.Close()
	m.Attach(ps)

	res, err := m.Retrain(recs[:300])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("candidate rejected: %s", res.Reason)
	}
	if res.Manifest == nil || res.Manifest.Version != "1.1.0" {
		t.Fatalf("manifest = %+v", res.Manifest)
	}
	p := res.Manifest.Provenance
	if p.Trainer != "lifecycle.Retrain" || p.CorpusPath != "/data/corpus.store" ||
		p.TrainRecords != 300 || p.HoldoutRecords != len(holdoutSet(t)) {
		t.Fatalf("provenance = %+v", p)
	}
	if p.ShadowTokenAccuracy <= 0 || p.ShadowTokenAccuracy < p.LiveTokenAccuracy {
		t.Fatalf("shadow accuracy %v vs live %v", p.ShadowTokenAccuracy, p.LiveTokenAccuracy)
	}
	if res.Manifest.Parent != "1.0.0" {
		t.Fatalf("parent = %q", res.Manifest.Parent)
	}

	// The registry's serving pointer moved with the in-process swap, and
	// both agree on the version string.
	resolved, err := reg.ResolveServing("default")
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Version != "1.1.0" {
		t.Fatalf("registry serving %q", resolved.Version)
	}
	if m.Current().Version != resolved.VersionString() {
		t.Fatalf("snapshot %q, registry %q", m.Current().Version, resolved.VersionString())
	}

	// Attached servers stamp the new identity.
	rec, err := ps.ParseWait(context.Background(), recs[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != resolved.VersionString() {
		t.Fatalf("served %q", rec.ModelVersion)
	}

	// The displaced 1.0.0 is still on disk and still verifies —
	// promotion is a pointer move, not an overwrite.
	if _, err := reg.Verify("default", "1.0.0"); err != nil {
		t.Fatalf("old serving no longer verifies: %v", err)
	}
}

func TestRetrainRejectionParksAtShadow(t *testing.T) {
	recs, _, strong := fixtures(t)
	reg := seedRegistry(t, strong, "default")
	m, err := NewFromRegistry(reg, "default", Options{Holdout: holdoutSet(t)})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Current()

	corrupt := make([]*labels.LabeledRecord, 0, 150)
	for _, r := range recs[:150] {
		c := *r
		c.Lines = append([]labels.LabeledLine(nil), r.Lines...)
		for i := range c.Lines {
			c.Lines[i].Block = labels.Block((int(c.Lines[i].Block) + 1) % labels.NumBlocks)
		}
		corrupt = append(corrupt, &c)
	}

	res, err := m.Retrain(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("corrupt candidate promoted")
	}
	if res.Manifest == nil {
		t.Fatal("rejected candidate not published")
	}
	// The loser is parked at shadow: inspectable, not serving.
	st, err := reg.StageOf("default", res.Manifest.Version)
	if err != nil || st != modelreg.StageShadow {
		t.Fatalf("rejected candidate stage = %v, %v", st, err)
	}
	resolved, err := reg.ResolveServing("default")
	if err != nil || resolved.Version != "1.0.0" {
		t.Fatalf("serving after rejection = %+v, %v", resolved, err)
	}
	if m.Current() != before {
		t.Fatal("rejection replaced the live snapshot")
	}
}
