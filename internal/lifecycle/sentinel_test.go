package lifecycle

import (
	"math"
	"testing"
)

func testSentinel() *sentinel {
	return newSentinel(Options{
		SampleEvery: 1, Window: 8, MinWindow: 4,
		ConfidenceFloor: 0.5, NullOtherCeiling: 0.9,
	}.withDefaults())
}

func TestRingSlidingMean(t *testing.T) {
	r := ring{buf: make([]float64, 4)}
	if r.mean() != 0 {
		t.Fatal("empty ring mean != 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		r.push(v)
	}
	if got := r.mean(); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	// Overwrite the oldest entries: window is now {5, 6, 3, 4}.
	r.push(5)
	r.push(6)
	if got := r.mean(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("mean after wrap = %v, want 4.5", got)
	}
	if r.n != 4 {
		t.Fatalf("n = %d, want 4", r.n)
	}
}

func TestSentinelFlagsLowConfidence(t *testing.T) {
	s := testSentinel()
	// Below minWindow: never flags, even at zero confidence.
	for i := 0; i < 3; i++ {
		if f, _, _ := s.observe("r", 0, 0); f {
			t.Fatal("flagged before minWindow observations")
		}
	}
	f, _, total := s.observe("r", 0, 0)
	if !f || total != 1 {
		t.Fatalf("4th low-confidence observation: flagged=%v total=%d, want true/1", f, total)
	}
	// Already flagged: no repeated transition.
	if f, _, _ := s.observe("r", 0, 0); f {
		t.Fatal("flag transition reported twice")
	}
	if got := s.flagged(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("flagged() = %v", got)
	}
	// Healthy observations wash the window out (window=8).
	var un bool
	for i := 0; i < 8; i++ {
		_, u, _ := s.observe("r", 1, 0)
		un = un || u
	}
	if !un {
		t.Fatal("no unflag transition after recovery")
	}
	if got := s.flagged(); len(got) != 0 {
		t.Fatalf("flagged() after recovery = %v", got)
	}
}

func TestSentinelFlagsNullRate(t *testing.T) {
	s := testSentinel()
	// Confidence is healthy, but the model labels everything Null —
	// the ceiling signal must trip on its own.
	var f bool
	for i := 0; i < 4; i++ {
		f, _, _ = s.observe("r", 0.95, 1.0)
	}
	if !f {
		t.Fatal("all-null parses did not flag")
	}
}

func TestSentinelIsolatesRegistrars(t *testing.T) {
	s := testSentinel()
	for i := 0; i < 8; i++ {
		s.observe("bad", 0.1, 0)
		s.observe("good", 0.95, 0)
	}
	got := s.flagged()
	if len(got) != 1 || got[0] != "bad" {
		t.Fatalf("flagged() = %v, want [bad]", got)
	}
	s.reset()
	if len(s.flagged()) != 0 {
		t.Fatal("reset left flags standing")
	}
	if f, _, _ := s.observe("bad", 0.1, 0); f {
		t.Fatal("flagged immediately after reset: windows survived")
	}
}

func TestSentinelSampling(t *testing.T) {
	s := newSentinel(Options{SampleEvery: 4}.withDefaults())
	n := 0
	for i := 0; i < 400; i++ {
		if s.shouldScore() {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("scored %d of 400 with SampleEvery=4, want 100", n)
	}
	every := newSentinel(Options{SampleEvery: 1}.withDefaults())
	for i := 0; i < 10; i++ {
		if !every.shouldScore() {
			t.Fatal("SampleEvery=1 skipped a parse")
		}
	}
}
