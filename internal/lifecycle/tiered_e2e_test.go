package lifecycle

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/tiered"
)

// TestTieredDriftE2E is the drift end-to-end contract: a registrar's
// template mutates → the mutated records decline L0 and serve from the
// CRF with no stale-template fields → the sentinel flags the registrar →
// the manager demotes its template → even pristine in-template records
// of that registrar serve from L1 until re-promotion. Runs under -race
// via the lifecycle race target, with concurrent traffic during the
// demotion window.
func TestTieredDriftE2E(t *testing.T) {
	recs, _, strong := fixtures(t)
	router := tiered.New(tiered.Options{ShadowEvery: 1 << 30})
	router.Rebuild(recs, core.DefaultConfig().Tokenize)
	m := New(strong, Options{
		Tiered:      router,
		SampleEvery: 1, Window: 8, MinWindow: 4,
		ConfidenceFloor: 0.5,
	})
	fn := m.ParseFunc()

	// Find a registrar whose clean records the fast path serves.
	var clean *labels.LabeledRecord
	for _, rec := range recs {
		if out := fn(rec.Text); out.Tier == core.TierTemplate {
			clean = rec
			break
		}
	}
	if clean == nil {
		t.Fatal("no record served from L0")
	}
	reg := clean.Registrar

	// Phase 1: the registrar mutates its format. L0 must decline and the
	// served record must be the CRF's own output — not a stale-template
	// labeling — byte for byte.
	mutated := strings.ReplaceAll(clean.Text, ":", " =")
	got := fn(mutated)
	if got.Tier != core.TierCRF {
		t.Fatalf("mutated record served tier %q, want %q", got.Tier, core.TierCRF)
	}
	want, _ := strong.ParseWithConfidence(mutated)
	want.ModelVersion = m.Current().Version
	want.Tier = core.TierCRF
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mutated record differs from direct CRF parse:\n got %+v\nwant %+v", got, want)
	}

	// Phase 2: sustained low confidence on the registrar trips the
	// sentinel, which must demote the template. Concurrent in-template
	// traffic runs throughout (exercised under -race).
	if router.Demoted(reg) {
		t.Fatal("template demoted before any drift evidence")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn(clean.Text)
				}
			}
		}()
	}
	sick := &core.ParsedRecord{
		Registrar: reg,
		Blocks:    []labels.Block{labels.Registrar, labels.Null},
	}
	for i := 0; i < 8; i++ {
		m.observe(m.Current(), sick, mutated, 0.1)
	}
	close(stop)
	wg.Wait()
	// The hammers' healthy L1 observations may have already cleared the
	// sentinel flag again — but demotion is sticky until shadow
	// re-promotion, which is what the serving guarantee rests on.
	if got := m.Metrics().Counter("lifecycle.drift.events").Value(); got == 0 {
		t.Fatal("sentinel never flagged the drifted registrar")
	}
	if !router.Demoted(reg) {
		t.Fatal("sentinel flagged the registrar but its template is not demoted")
	}

	// Phase 3: demoted templates never serve — even the pristine
	// in-template record now comes from L1, matching the CRF exactly.
	for i := 0; i < 20; i++ {
		if out := fn(clean.Text); out.Tier == core.TierTemplate {
			t.Fatalf("iteration %d: demoted template served L0", i)
		}
	}
	direct := strong.Parse(clean.Text)
	served := fn(clean.Text)
	if served.Registrar != direct.Registrar || served.DomainName != direct.DomainName ||
		served.CreatedDate != direct.CreatedDate || served.Registrant != direct.Registrant {
		t.Fatalf("L1-served fields diverge from direct parse:\n got %+v\nwant %+v", served, direct)
	}
	if st := router.Status(); st.L0Demoted == 0 || len(st.Demoted) != 1 || st.Demoted[0] != reg {
		t.Fatalf("router status %+v", st)
	}
}

// TestRetrainRebuildsTemplates: a promoted retrain must recompile L0
// from the candidate's training records and re-arm demoted templates.
func TestRetrainRebuildsTemplates(t *testing.T) {
	recs, weak, _ := fixtures(t)
	router := tiered.New(tiered.Options{ShadowEvery: 1 << 30})
	router.Rebuild(recs[:60], core.DefaultConfig().Tokenize)
	before := router.Status().Templates

	m := New(weak, Options{
		Tiered:  router,
		Holdout: recs[300:360],
	})
	// Demote something so the rebuild's re-arm is observable.
	var reg string
	for _, rec := range recs[:60] {
		if router.Demote(rec.Registrar) {
			reg = rec.Registrar
			break
		}
	}
	if reg == "" {
		t.Fatal("could not demote any template")
	}

	res, err := m.Retrain(recs[:300])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("candidate not promoted: %s", res.Reason)
	}
	st := router.Status()
	if st.Templates < before {
		t.Fatalf("template count shrank on rebuild: %d -> %d", before, st.Templates)
	}
	if len(st.Demoted) != 0 {
		t.Fatalf("rebuild left templates demoted: %v", st.Demoted)
	}
	if router.Demoted(reg) {
		t.Fatalf("template %q still demoted after promotion rebuild", reg)
	}

	// The rebound parse functions still route through the router.
	out := m.Parse(recs[0].Text)
	if out.Tier != core.TierTemplate && out.Tier != core.TierCRF {
		t.Fatalf("post-promotion parse has no tier stamp: %+v", out)
	}
}
