package lifecycle

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/serve"
	"repro/internal/store"
)

func TestRetrainPromotesBetterCandidate(t *testing.T) {
	recs, weak, _ := fixtures(t)
	dir := t.TempDir()
	promote := filepath.Join(dir, "promoted.model")
	m := New(weak, Options{Holdout: holdoutSet(t), PromotePath: promote})
	ps := serve.New(weak, serve.Options{Workers: 2})
	defer ps.Close()
	m.Attach(ps)

	res, err := m.Retrain(recs[:300])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("candidate trained on 7.5x the data was not promoted: %s", res.Reason)
	}
	if res.Snapshot == nil || m.Current() != res.Snapshot {
		t.Fatal("promoted snapshot is not the live one")
	}
	if res.Shadow.CandBlocks.Docs != len(holdoutSet(t)) {
		t.Fatalf("shadow eval covered %d docs, want %d", res.Shadow.CandBlocks.Docs, len(holdoutSet(t)))
	}

	// Promotion persisted a valid WMDL artifact whose identity is in
	// the snapshot version.
	info, err := store.StatModel(promote)
	if err != nil {
		t.Fatalf("promoted artifact unreadable: %v", err)
	}
	if res.Snapshot.Info != info {
		t.Fatalf("snapshot info %+v != artifact info %+v", res.Snapshot.Info, info)
	}
	if res.Snapshot.Path != promote {
		t.Fatalf("snapshot path = %q, want %q", res.Snapshot.Path, promote)
	}

	// Serving switched to the promoted model.
	rec, err := ps.ParseWait(context.Background(), recs[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != res.Snapshot.Version {
		t.Fatalf("serving %q after promotion of %q", rec.ModelVersion, res.Snapshot.Version)
	}
	if got := m.State(); got != StateServing {
		t.Fatalf("state = %v, want serving", got)
	}
	if got := m.Metrics().Counter("lifecycle.retrain.promotions").Value(); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
}

// TestRetrainRejectsWorseCandidate is the safety property: a candidate
// trained on corrupted labels must never be promoted — the old model
// keeps serving and no artifact is written.
func TestRetrainRejectsWorseCandidate(t *testing.T) {
	recs, _, strong := fixtures(t)
	dir := t.TempDir()
	promote := filepath.Join(dir, "promoted.model")
	m := New(strong, Options{Holdout: holdoutSet(t), PromotePath: promote})
	ps := serve.New(strong, serve.Options{Workers: 2})
	defer ps.Close()
	m.Attach(ps)
	before := m.Current()

	// Corrupt a copy of the training slice: rotate every block label,
	// so the candidate learns systematically wrong structure.
	corrupt := make([]*labels.LabeledRecord, 0, 150)
	for _, r := range recs[:150] {
		c := *r
		c.Lines = append([]labels.LabeledLine(nil), r.Lines...)
		for i := range c.Lines {
			c.Lines[i].Block = labels.Block((int(c.Lines[i].Block) + 1) % labels.NumBlocks)
		}
		corrupt = append(corrupt, &c)
	}

	res, err := m.Retrain(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("corrupted candidate was promoted")
	}
	if res.Reason == "" {
		t.Fatal("rejection carries no reason")
	}
	if m.Current() != before {
		t.Fatal("rejection replaced the live snapshot")
	}
	if _, err := os.Stat(promote); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rejected candidate hit PromotePath: stat err = %v", err)
	}
	rec, err := ps.ParseWait(context.Background(), recs[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != before.Version {
		t.Fatalf("serving %q after rejection, want %q", rec.ModelVersion, before.Version)
	}
	if got := m.Metrics().Counter("lifecycle.retrain.rejections").Value(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
	if got := m.State(); got != StateServing {
		t.Fatalf("state = %v, want serving", got)
	}
}

func TestRetrainPreconditions(t *testing.T) {
	recs, weak, _ := fixtures(t)
	m := New(weak, Options{})
	if _, err := m.Retrain(recs[:10]); !errors.Is(err, ErrNoHoldout) {
		t.Fatalf("retrain without holdout: err = %v, want ErrNoHoldout", err)
	}
	m = New(weak, Options{Holdout: holdoutSet(t)})
	if _, err := m.Retrain(nil); err == nil {
		t.Fatal("retrain with no records succeeded")
	}
}

func TestCandidateNoWorseGate(t *testing.T) {
	mk := func(lines, lineErrs, docs, docErrs int) eval.Metrics {
		return eval.Metrics{Lines: lines, LineErrors: lineErrs, Docs: docs, DocErrors: docErrs}
	}
	base := mk(100, 10, 20, 5)
	cases := []struct {
		name string
		r    ShadowReport
		want bool
	}{
		{"equal", ShadowReport{LiveBlocks: base, CandBlocks: base}, true},
		{"better", ShadowReport{LiveBlocks: base, CandBlocks: mk(100, 5, 20, 2)}, true},
		{"worse lines", ShadowReport{LiveBlocks: base, CandBlocks: mk(100, 11, 20, 5)}, false},
		{"worse docs", ShadowReport{LiveBlocks: base, CandBlocks: mk(100, 10, 20, 6)}, false},
		{"fields worse", ShadowReport{
			LiveBlocks: base, CandBlocks: base,
			LiveFields: mk(50, 1, 10, 1), CandFields: mk(50, 2, 10, 1),
		}, false},
		{"fields empty ignored", ShadowReport{
			LiveBlocks: base, CandBlocks: base,
			LiveFields: mk(0, 0, 0, 0), CandFields: mk(0, 0, 0, 0),
		}, true},
	}
	for _, tc := range cases {
		if got := tc.r.candidateNoWorse(); got != tc.want {
			t.Errorf("%s: candidateNoWorse() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
