package lifecycle

import (
	"context"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

// BenchmarkHotSwap measures the cost of publishing a new model to an
// attached serving layer — the zero-downtime promise is only honest if
// the swap itself is cheap enough to run mid-traffic.
func BenchmarkHotSwap(b *testing.B) {
	weak := weakParser(b)
	m := New(weak, Options{})
	ps := serve.New(weak, serve.Options{Workers: 2})
	defer ps.Close()
	m.Attach(ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Swap(weak, store.ModelInfo{}, "")
	}
}

// BenchmarkParseDuringSwap measures steady-state serving throughput
// with a hot swap every 2048 requests: mostly cache hits, plus the
// amortized cost of the swap and the re-parses it forces (the cache
// generation moves with the model, so each swap re-misses the hot set).
func BenchmarkParseDuringSwap(b *testing.B) {
	recs, weak := testCorpus(b), weakParser(b)
	m := New(weak, Options{})
	ps := serve.New(weak, serve.Options{Workers: 4, CacheCapacity: 256})
	defer ps.Close()
	m.Attach(ps)

	texts := make([]string, 8)
	for i := range texts {
		texts[i] = recs[i].Text
	}
	ctx := context.Background()
	for _, txt := range texts {
		if _, err := ps.ParseWait(ctx, txt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2048 == 0 {
			m.Swap(weak, store.ModelInfo{}, "")
		}
		if _, err := ps.ParseWait(ctx, texts[i%len(texts)]); err != nil {
			b.Fatal(err)
		}
	}
}
