package lifecycle

import (
	"sync"
	"sync/atomic"
)

// sentinel watches live parse quality per registrar. WHOIS drift is
// template drift: one registrar changes its output format and the model
// quietly degrades on that registrar while aggregate metrics barely
// move (§5.1). So the windows are keyed by the registrar the model
// extracted, and each tracks two signals over a sliding window:
//
//   - mean minimum posterior confidence (§5.3's uncertainty measure) of
//     the sampled parses — low means the model is guessing;
//   - mean Null/Other line rate — high means the model has stopped
//     recognizing the template's blocks altogether.
//
// A registrar is flagged when either windowed mean crosses its
// threshold (with at least minWindow observations), and unflagged when
// both recover. Transitions, not levels, are reported to the manager so
// flapping windows do not spam logs or callbacks.
type sentinel struct {
	sampleEvery uint64
	window      int
	minWindow   int
	confFloor   float64
	nullCeil    float64

	tick atomic.Uint64

	mu    sync.Mutex
	regs  map[string]*regWindow
	flags map[string]bool
}

type regWindow struct {
	conf ring
	null ring
}

// ring is a fixed-capacity sliding window with a running sum, so the
// windowed mean is O(1) per observation.
type ring struct {
	buf  []float64
	n    int // filled entries
	next int // next write position
	sum  float64
}

func (r *ring) push(v float64) {
	if r.n == len(r.buf) {
		r.sum -= r.buf[r.next]
	} else {
		r.n++
	}
	r.buf[r.next] = v
	r.sum += v
	r.next = (r.next + 1) % len(r.buf)
}

func (r *ring) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

func newSentinel(opts Options) *sentinel {
	return &sentinel{
		sampleEvery: uint64(opts.SampleEvery),
		window:      opts.Window,
		minWindow:   opts.MinWindow,
		confFloor:   opts.ConfidenceFloor,
		nullCeil:    opts.NullOtherCeiling,
		regs:        map[string]*regWindow{},
		flags:       map[string]bool{},
	}
}

// shouldScore decides whether this parse pays for posterior confidence;
// a lock-free modular counter spreads the sampling across goroutines.
func (s *sentinel) shouldScore() bool {
	if s.sampleEvery <= 1 {
		return true
	}
	return s.tick.Add(1)%s.sampleEvery == 0
}

// observe records one scored parse and reports whether the registrar's
// flag transitioned, plus the total number of currently flagged
// registrars (valid whenever a transition happened).
func (s *sentinel) observe(registrar string, conf, nullRate float64) (flagged, unflagged bool, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.regs[registrar]
	if w == nil {
		w = &regWindow{
			conf: ring{buf: make([]float64, s.window)},
			null: ring{buf: make([]float64, s.window)},
		}
		s.regs[registrar] = w
	}
	w.conf.push(conf)
	w.null.push(nullRate)

	if w.conf.n < s.minWindow {
		return false, false, len(s.flags)
	}
	drifting := w.conf.mean() < s.confFloor || w.null.mean() > s.nullCeil
	was := s.flags[registrar]
	switch {
	case drifting && !was:
		s.flags[registrar] = true
		return true, false, len(s.flags)
	case !drifting && was:
		delete(s.flags, registrar)
		return false, true, len(s.flags)
	}
	return false, false, len(s.flags)
}

// flagged returns the currently flagged registrars, unordered.
func (s *sentinel) flagged() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.flags))
	for r := range s.flags {
		out = append(out, r)
	}
	return out
}

// reset clears all windows and flags — called after a promotion, since
// the evidence of the old model's drift says nothing about the new one.
func (s *sentinel) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regs = map[string]*regWindow{}
	s.flags = map[string]bool{}
}
