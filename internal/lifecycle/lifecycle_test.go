package lifecycle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

// Shared fixtures, trained once per test binary: a deliberately weak
// "live" model (small training slice) and a strong candidate
// warm-started from it over a much larger slice — so promotion tests
// have real headroom instead of coin-flip ties. The weak model is built
// separately so benchmarks (which only serve, never promote) skip the
// expensive retrain.
var (
	corpusOnce sync.Once
	fixCorpus  []*labels.LabeledRecord
	weakOnce   sync.Once
	fixWeak    *core.Parser
	weakErr    error
	strongOnce sync.Once
	fixStrong  *core.Parser
	strongErr  error
)

func testCorpus(t testing.TB) []*labels.LabeledRecord {
	t.Helper()
	corpusOnce.Do(func() {
		fixCorpus = synth.GenerateLabeled(synth.Config{N: 420, Seed: 11})
	})
	return fixCorpus
}

func weakParser(t testing.TB) *core.Parser {
	t.Helper()
	recs := testCorpus(t)
	weakOnce.Do(func() {
		fixWeak, _, weakErr = core.Train(recs[:40], core.DefaultConfig())
	})
	if weakErr != nil {
		t.Fatal(weakErr)
	}
	return fixWeak
}

func fixtures(t testing.TB) ([]*labels.LabeledRecord, *core.Parser, *core.Parser) {
	t.Helper()
	recs := testCorpus(t)
	weak := weakParser(t)
	strongOnce.Do(func() {
		fixStrong, _, strongErr = core.Retrain(weak, recs[:300], core.DefaultConfig())
	})
	if strongErr != nil {
		t.Fatal(strongErr)
	}
	return recs, weak, fixStrong
}

func holdoutSet(t testing.TB) []*labels.LabeledRecord {
	recs, _, _ := fixtures(t)
	return recs[300:]
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateServing:      "serving",
		StateDriftFlagged: "drift-flagged",
		StateRetraining:   "retraining",
		StateShadow:       "shadow",
		State(99):         "state(99)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", s, got, w)
		}
	}
}

func TestManagerStampsVersion(t *testing.T) {
	recs, weak, _ := fixtures(t)
	m := New(weak, Options{})
	snap := m.Current()
	if snap.Seq != 1 || snap.Version != "m1" {
		t.Fatalf("initial snapshot = seq %d version %q, want 1/m1", snap.Seq, snap.Version)
	}
	if got := m.State(); got != StateServing {
		t.Fatalf("initial state = %v, want serving", got)
	}
	rec := m.Parse(recs[0].Text)
	if rec.ModelVersion != "m1" {
		t.Fatalf("ModelVersion = %q, want m1", rec.ModelVersion)
	}
}

func TestAttachAndSwapInvalidatesCache(t *testing.T) {
	recs, weak, strong := fixtures(t)
	m := New(weak, Options{})
	ps := serve.New(weak, serve.Options{Workers: 2})
	defer ps.Close()
	m.Attach(ps)

	ctx := context.Background()
	text := recs[0].Text
	rec, err := ps.ParseWait(ctx, text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != "m1" {
		t.Fatalf("pre-swap ModelVersion = %q, want m1", rec.ModelVersion)
	}
	// Cache hit still carries the stamp.
	rec, err = ps.ParseWait(ctx, text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != "m1" {
		t.Fatalf("cached ModelVersion = %q, want m1", rec.ModelVersion)
	}

	snap := m.Swap(strong, store.ModelInfo{}, "")
	if snap.Seq != 2 || snap.Version != "m2" {
		t.Fatalf("swap snapshot = seq %d version %q, want 2/m2", snap.Seq, snap.Version)
	}
	// The same text must re-parse under the new model — a stale cache
	// hit would still say m1.
	rec, err = ps.ParseWait(ctx, text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ModelVersion != "m2" {
		t.Fatalf("post-swap ModelVersion = %q, want m2 (stale cache?)", rec.ModelVersion)
	}
	if m.Metrics() == nil {
		t.Fatal("Metrics() returned nil registry")
	}
}

func TestNewFromFileAndReload(t *testing.T) {
	recs, weak, strong := fixtures(t)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.model")
	pathB := filepath.Join(dir, "b.model")
	if err := store.SaveModel(weak, pathA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveModel(strong, pathB); err != nil {
		t.Fatal(err)
	}
	infoA, err := store.StatModel(pathA)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := store.StatModel(pathB)
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewFromFile(pathA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Current()
	if want := fmt.Sprintf("m1-%08x", infoA.CRC32C); snap.Version != want {
		t.Fatalf("version = %q, want %q", snap.Version, want)
	}
	if snap.Info != infoA || snap.Path != pathA {
		t.Fatalf("snapshot identity = %+v/%q, want %+v/%q", snap.Info, snap.Path, infoA, pathA)
	}
	if rec := m.Parse(recs[0].Text); rec.ModelVersion != snap.Version {
		t.Fatalf("stamp = %q, want %q", rec.ModelVersion, snap.Version)
	}

	// Operator reload swaps to the new artifact.
	snap2, err := m.ReloadFromFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("m2-%08x", infoB.CRC32C); snap2.Version != want {
		t.Fatalf("reloaded version = %q, want %q", snap2.Version, want)
	}
	if m.Current() != snap2 {
		t.Fatal("Current() is not the reloaded snapshot")
	}

	// A corrupt artifact must be rejected with the old model untouched.
	bad := filepath.Join(dir, "bad.model")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReloadFromFile(bad); err == nil {
		t.Fatal("reload of junk artifact succeeded")
	}
	if m.Current() != snap2 {
		t.Fatal("failed reload replaced the live snapshot")
	}
}

// TestHotSwapUnderLoad is the end-to-end acceptance test: goroutines
// hammer a serving layer while the manager hot-reloads models
// underneath them. Every response must be attributable to exactly one
// known model version, and immediately after each swap a fresh request
// must be served by exactly the just-promoted version (no stale cache
// hits, no torn model state). Run with -race to check the memory model
// side.
func TestHotSwapUnderLoad(t *testing.T) {
	recs, weak, strong := fixtures(t)
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.model")
	pathB := filepath.Join(dir, "b.model")
	if err := store.SaveModel(weak, pathA); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveModel(strong, pathB); err != nil {
		t.Fatal(err)
	}
	infoA, _ := store.StatModel(pathA)
	infoB, _ := store.StatModel(pathB)

	const swaps = 6
	// The version sequence is deterministic: m1 from pathA, then
	// alternating reloads starting with pathB.
	valid := map[string]bool{fmt.Sprintf("m1-%08x", infoA.CRC32C): true}
	for i := 1; i <= swaps; i++ {
		crc := infoB.CRC32C
		if i%2 == 0 {
			crc = infoA.CRC32C
		}
		valid[fmt.Sprintf("m%d-%08x", i+1, crc)] = true
	}

	m, err := NewFromFile(pathA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := serve.New(weak, serve.Options{Workers: 4, CacheCapacity: 256})
	defer ps.Close()
	m.Attach(ps)

	texts := make([]string, 8)
	for i := range texts {
		texts[i] = recs[i].Text
	}

	ctx := context.Background()
	stop := make(chan struct{})
	const hammers = 4
	seen := make([]map[string]bool, hammers)
	errs := make([]error, hammers)
	ready := make(chan struct{}, hammers)
	var wg sync.WaitGroup
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := map[string]bool{}
			seen[g] = local
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, err := ps.ParseWait(ctx, texts[(i+g)%len(texts)])
				if err != nil {
					errs[g] = err
					return
				}
				local[rec.ModelVersion] = true
				if i == 0 {
					ready <- struct{}{}
				}
			}
		}(g)
	}
	// On GOMAXPROCS=1 the swap loop below can finish before the hammer
	// goroutines are ever scheduled; don't start swapping until every
	// hammer has a first parse in hand, so the load genuinely overlaps
	// the swaps.
	for g := 0; g < hammers; g++ {
		<-ready
	}

	for i := 1; i <= swaps; i++ {
		path := pathB
		if i%2 == 0 {
			path = pathA
		}
		snap, err := m.ReloadFromFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// A request admitted after the swap must be served by exactly
		// the new version: the parse function and cache generation
		// moved together, so neither a stale cached result nor a parse
		// by the old model can answer it.
		rec, err := ps.ParseWait(ctx, texts[i%len(texts)])
		if err != nil {
			t.Fatal(err)
		}
		if rec.ModelVersion != snap.Version {
			t.Fatalf("after swap %d: got version %q, want %q", i, rec.ModelVersion, snap.Version)
		}
	}
	close(stop)
	wg.Wait()

	total := 0
	for g := 0; g < hammers; g++ {
		if errs[g] != nil {
			t.Fatalf("hammer %d: %v", g, errs[g])
		}
		for v := range seen[g] {
			total++
			if v == "" {
				t.Fatal("response with empty ModelVersion: unattributable parse")
			}
			if !valid[v] {
				t.Fatalf("response stamped with unknown version %q (torn swap?)", v)
			}
		}
	}
	if total == 0 {
		t.Fatal("hammers observed no versions at all")
	}
	if got := m.Metrics().Counter("lifecycle.swaps").Value(); got != swaps {
		t.Fatalf("lifecycle.swaps = %d, want %d", got, swaps)
	}
	if got := m.Metrics().Counter("lifecycle.reloads").Value(); got != swaps {
		t.Fatalf("lifecycle.reloads = %d, want %d", got, swaps)
	}
}

// TestManagerDriftLifecycle drives the sentinel through the manager's
// observe path with synthetic observations: flag on sustained low
// confidence, invoke OnDrift once, queue the low-confidence record,
// then clear the flag when confidence recovers.
func TestManagerDriftLifecycle(t *testing.T) {
	_, weak, _ := fixtures(t)
	var drifted []string
	m := New(weak, Options{
		SampleEvery: 1, Window: 8, MinWindow: 4,
		ConfidenceFloor: 0.5,
		OnDrift:         func(r string) { drifted = append(drifted, r) },
	})
	rec := &core.ParsedRecord{
		Registrar: "Example Registrar",
		Blocks:    []labels.Block{labels.Registrar, labels.Null},
	}
	for i := 0; i < 8; i++ {
		m.observe(m.Current(), rec, "low confidence text", 0.1)
	}
	if got := m.State(); got != StateDriftFlagged {
		t.Fatalf("state = %v, want drift-flagged", got)
	}
	if got := m.Flagged(); len(got) != 1 || got[0] != "Example Registrar" {
		t.Fatalf("Flagged() = %v", got)
	}
	if len(drifted) != 1 || drifted[0] != "Example Registrar" {
		t.Fatalf("OnDrift calls = %v, want exactly one", drifted)
	}
	if got := m.queue.len(); got != 1 {
		t.Fatalf("queue holds %d entries, want 1 (deduped)", got)
	}
	if got := m.Metrics().Counter("lifecycle.drift.events").Value(); got != 1 {
		t.Fatalf("drift.events = %d, want 1", got)
	}

	// Recovery: enough healthy observations flush the window.
	for i := 0; i < 16; i++ {
		m.observe(m.Current(), rec, "healthy text", 0.99)
	}
	if got := m.State(); got != StateServing {
		t.Fatalf("state after recovery = %v, want serving", got)
	}
	if got := m.Flagged(); len(got) != 0 {
		t.Fatalf("Flagged() after recovery = %v, want empty", got)
	}

	// A record the model could not attribute to a registrar pools
	// under the synthetic key.
	anon := &core.ParsedRecord{Blocks: []labels.Block{labels.Null}}
	for i := 0; i < 8; i++ {
		m.observe(m.Current(), anon, "anon text", 0.1)
	}
	if got := m.Flagged(); len(got) != 1 || got[0] != "(unattributed)" {
		t.Fatalf("Flagged() = %v, want [(unattributed)]", got)
	}
}
