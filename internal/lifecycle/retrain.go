package lifecycle

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/modelreg"
	"repro/internal/store"
)

// ErrNoHoldout reports a Retrain attempted without held-out labeled
// data to shadow-evaluate against.
var ErrNoHoldout = errors.New("lifecycle: retrain needs Options.Holdout to shadow-evaluate")

// ShadowReport is the side-by-side evaluation of the live model and a
// candidate on the held-out set: block-level (first CRF) and
// field-level (second CRF) metrics for each.
type ShadowReport struct {
	LiveBlocks, CandBlocks eval.Metrics
	LiveFields, CandFields eval.Metrics
}

// candidateNoWorse is the promotion gate: the candidate must match or
// beat the live model on both token-level (line) and record-level (doc)
// error for blocks, and — when the holdout exercises the second level —
// for fields too. "No worse" rather than "strictly better" because a
// retrain on a superset of the old labels typically reproduces the old
// model's behavior exactly on stable templates; demanding improvement
// would block refreshes that only add coverage for new templates.
func (r ShadowReport) candidateNoWorse() bool {
	if r.CandBlocks.LineErrorRate() > r.LiveBlocks.LineErrorRate() ||
		r.CandBlocks.DocErrorRate() > r.LiveBlocks.DocErrorRate() {
		return false
	}
	if r.LiveFields.Docs > 0 && r.CandFields.Docs > 0 {
		if r.CandFields.LineErrorRate() > r.LiveFields.LineErrorRate() ||
			r.CandFields.DocErrorRate() > r.LiveFields.DocErrorRate() {
			return false
		}
	}
	return true
}

// RetrainResult is the outcome of one train → shadow → promote cycle.
type RetrainResult struct {
	// Promoted reports whether the candidate went live.
	Promoted bool
	// Reason explains a rejection (empty on promotion).
	Reason string
	// Stats are the candidate's training statistics.
	Stats core.TrainStats
	// Shadow holds the side-by-side holdout evaluation.
	Shadow ShadowReport
	// Snapshot is the promoted snapshot (nil when rejected).
	Snapshot *Snapshot
	// Manifest is the candidate's registry manifest when the manager is
	// registry-backed (set for promoted and rejected candidates alike —
	// rejected versions are parked at the shadow stage with their
	// losing scores on record); nil otherwise.
	Manifest *modelreg.Manifest
}

// Retrain runs the §5.1 redeployment loop once: train a candidate on
// records (warm-started from the live model's weights, so optimization
// resumes rather than restarts), shadow-evaluate candidate and live
// model on the held-out set, and promote the candidate only if it is no
// worse on both token- and record-level error. Promotion persists the
// candidate to Options.PromotePath (when set) as a WMDL artifact and
// hot-swaps it into every attached server; rejection leaves the live
// model serving untouched. One retrain runs at a time — concurrent
// calls serialize.
func (m *Manager) Retrain(records []*labels.LabeledRecord) (RetrainResult, error) {
	if len(m.opts.Holdout) == 0 {
		return RetrainResult{}, ErrNoHoldout
	}
	if len(records) == 0 {
		return RetrainResult{}, errors.New("lifecycle: retrain with no labeled records")
	}
	m.retrainMu.Lock()
	defer m.retrainMu.Unlock()

	live := m.cur.Load()
	m.setState(StateRetraining)
	// Whatever happens, land back in a serving state that reflects the
	// sentinel's current view (promotion resets it; rejection keeps any
	// standing drift flags).
	defer func() {
		if len(m.sentinel.flagged()) > 0 {
			m.setState(StateDriftFlagged)
		} else {
			m.setState(StateServing)
		}
	}()

	m.log.Info("retraining candidate", "live", live.Version,
		"records", len(records), "holdout", len(m.opts.Holdout))
	cand, stats, err := core.Retrain(live.Parser, records, m.opts.Train)
	if err != nil {
		m.met.retrainErrs.Inc()
		return RetrainResult{}, fmt.Errorf("lifecycle: retrain: %w", err)
	}

	m.setState(StateShadow)
	report, err := shadowEval(live.Parser, cand, m.opts.Holdout)
	if err != nil {
		m.met.retrainErrs.Inc()
		return RetrainResult{}, fmt.Errorf("lifecycle: shadow eval: %w", err)
	}
	res := RetrainResult{Stats: stats, Shadow: report}

	// Registry-backed managers publish every candidate — promoted or
	// not — as an immutable version with its provenance and scores, so
	// the training run is auditable either way.
	if m.opts.Registry != nil {
		res.Manifest, err = m.publishCandidate(cand, report, len(records))
		if err != nil {
			m.met.retrainErrs.Inc()
			return res, fmt.Errorf("lifecycle: publish candidate: %w", err)
		}
	}

	if !report.candidateNoWorse() {
		m.met.rejections.Inc()
		res.Reason = fmt.Sprintf(
			"candidate worse on holdout: blocks line %.4f vs %.4f, doc %.4f vs %.4f",
			report.CandBlocks.LineErrorRate(), report.LiveBlocks.LineErrorRate(),
			report.CandBlocks.DocErrorRate(), report.LiveBlocks.DocErrorRate())
		m.log.Warn("candidate rejected", "live", live.Version, "reason", res.Reason)
		if res.Manifest != nil {
			// Park the loser at the shadow stage: it stays inspectable
			// (`model list` / `model diff`) but can never reach serving
			// without an explicit promote.
			if perr := m.parkAtShadow(res.Manifest.Version); perr != nil {
				m.log.Warn("could not park rejected candidate", "err", perr.Error())
			}
		}
		return res, nil
	}

	// Promote: persist first, so the in-process swap and the durable
	// artifact can never disagree about which model is "the promoted
	// one". With a registry, that means walking the published version
	// through candidate → shadow → serving (each move verify-gated);
	// without one, an atomic overwrite of PromotePath.
	var info store.ModelInfo
	var rid regIdentity
	path := m.opts.PromotePath
	if m.opts.Registry != nil {
		resolved, perr := m.promoteThroughRegistry(res.Manifest.Version)
		if perr != nil {
			m.met.retrainErrs.Inc()
			return res, fmt.Errorf("lifecycle: promote: %w", perr)
		}
		info, path = resolved.Info, resolved.Path
		rid = regIdentity{Family: resolved.Family, SemVer: resolved.Version}
	} else if path != "" {
		if err := store.SaveModel(cand, path); err != nil {
			m.met.retrainErrs.Inc()
			return res, fmt.Errorf("lifecycle: promote: %w", err)
		}
		if info, err = store.StatModel(path); err != nil {
			m.met.retrainErrs.Inc()
			return res, fmt.Errorf("lifecycle: promote: %w", err)
		}
	}
	snap := m.swap(cand, info, path, rid)
	if m.opts.Tiered != nil {
		// The candidate's training records are the freshest labeled view
		// of every registrar's format; recompile L0 from them so the
		// template tier tracks the same drift the retrain just absorbed.
		// Rebuild re-arms all templates healthy — the shadow sampler
		// re-demotes any that still disagree with the new model.
		m.opts.Tiered.Rebuild(records, m.opts.Train.Tokenize)
		m.log.Info("templates rebuilt", "registrars", m.opts.Tiered.Status().Templates)
	}
	// The drift evidence indicted the old model; the new one starts
	// with a clean slate.
	m.sentinel.reset()
	m.met.driftFlagged.Set(0)
	m.met.promotions.Inc()
	res.Promoted = true
	res.Snapshot = snap
	m.log.Info("candidate promoted", "version", snap.Version,
		"blocksLine", fmt.Sprintf("%.4f", report.CandBlocks.LineErrorRate()),
		"blocksDoc", fmt.Sprintf("%.4f", report.CandBlocks.DocErrorRate()))
	return res, nil
}

// shadowEval scores both models on the same held-out labeled records.
func shadowEval(live, cand *core.Parser, holdout []*labels.LabeledRecord) (ShadowReport, error) {
	var r ShadowReport
	var err error
	if r.LiveBlocks, err = eval.EvalBlocks(live, holdout); err != nil {
		return r, err
	}
	if r.CandBlocks, err = eval.EvalBlocks(cand, holdout); err != nil {
		return r, err
	}
	if r.LiveFields, err = eval.EvalFields(live, holdout); err != nil {
		return r, err
	}
	if r.CandFields, err = eval.EvalFields(cand, holdout); err != nil {
		return r, err
	}
	return r, nil
}
