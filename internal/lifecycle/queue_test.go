package lifecycle

import (
	"strings"
	"testing"

	"repro/internal/store"
)

func TestQueueDedupeAndBoundedEviction(t *testing.T) {
	q := newALQueue(0.5, 3)
	if !q.add("a.com", "text a", 0.40) || !q.add("b.com", "text b", 0.30) {
		t.Fatal("adds below capacity rejected")
	}
	// Duplicate text: keep the lowest confidence seen, no new slot.
	if !q.add("a.com", "text a", 0.10) {
		t.Fatal("duplicate add rejected")
	}
	if q.len() != 2 {
		t.Fatalf("len = %d after dedupe, want 2", q.len())
	}
	if !q.add("c.com", "text c", 0.45) {
		t.Fatal("third add rejected")
	}
	// Full: a more uncertain newcomer evicts the least uncertain
	// entry (text c at 0.45).
	if !q.add("d.com", "text d", 0.05) {
		t.Fatal("more-uncertain newcomer dropped from full queue")
	}
	// Full: a less uncertain newcomer is the one dropped.
	if q.add("e.com", "text e", 0.49) {
		t.Fatal("least-uncertain newcomer admitted to full queue")
	}
	entries := q.drain()
	if len(entries) != 3 {
		t.Fatalf("drained %d entries, want 3", len(entries))
	}
	byText := map[string]float64{}
	for _, e := range entries {
		byText[e.text] = e.conf
	}
	if byText["text a"] != 0.10 {
		t.Fatalf("dedupe kept conf %v, want the lower 0.10", byText["text a"])
	}
	if _, ok := byText["text c"]; ok {
		t.Fatal("least uncertain entry survived eviction")
	}
	if _, ok := byText["text d"]; !ok {
		t.Fatal("most uncertain newcomer missing")
	}
	if q.len() != 0 {
		t.Fatal("drain left entries behind")
	}
}

func TestFlushQueuePersistsMostUncertainFirst(t *testing.T) {
	recs, weak, _ := fixtures(t)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	m := New(weak, Options{Queue: st})
	// One well-formed record (the model knows this template) and one
	// the model has never seen anything like.
	clean := recs[0].Text
	garbled := "zq qz zzz\nqqq xyzzy plugh\nwibble wobble\n"
	m.queue.add("clean.com", clean, 0.4)
	m.queue.add("", garbled, 0.3)

	n, err := m.FlushQueue()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("flushed %d records, want 2", n)
	}

	// Expected order: the live model's own uncertainty ranking over
	// the drained texts (insertion order).
	order := weak.RankByUncertainty([]string{clean, garbled})
	wantTexts := []string{clean, garbled}

	it := st.Iter()
	defer it.Close()
	var got []*store.Record
	for it.Next() {
		rec := *it.Record()
		got = append(got, &rec)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 2 {
		t.Fatalf("store holds %d records, want 2", len(got))
	}
	for i, rec := range got {
		if rec.Text != wantTexts[order[i]] {
			t.Fatalf("record %d is not uncertainty-rank %d", i, i)
		}
		if rec.Facts.ModelVersion != "m1" {
			t.Fatalf("record %d stamped %q, want m1", i, rec.Facts.ModelVersion)
		}
	}
	// The record with no extracted domain got a deterministic
	// text-hash key, so the store can still dedupe re-queues.
	for _, rec := range got {
		if rec.Text == garbled && !strings.HasPrefix(rec.Domain, "unlabeled-") {
			t.Fatalf("domainless record keyed %q", rec.Domain)
		}
		if rec.Text == clean && rec.Domain != "clean.com" {
			t.Fatalf("clean record keyed %q", rec.Domain)
		}
	}

	// Empty queue: flush is a no-op; so is a manager without a queue
	// store.
	if n, err := m.FlushQueue(); err != nil || n != 0 {
		t.Fatalf("empty flush = (%d, %v), want (0, nil)", n, err)
	}
	m2 := New(weak, Options{})
	m2.queue.add("x.com", "some text", 0.1)
	if n, err := m2.FlushQueue(); err != nil || n != 0 {
		t.Fatalf("flush without store = (%d, %v), want (0, nil)", n, err)
	}
	if got := m.Metrics().Counter("lifecycle.queue.persisted").Value(); got != 2 {
		t.Fatalf("queue.persisted = %d, want 2", got)
	}
}
