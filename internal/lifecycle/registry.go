package lifecycle

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/modelreg"
	"repro/internal/store"
)

// ErrNoRegistry reports a registry-only operation on a Manager built
// without Options.Registry.
var ErrNoRegistry = errors.New("lifecycle: manager has no model registry")

// family returns the registry family this manager serves.
func (m *Manager) family() string {
	if m.opts.Family != "" {
		return m.opts.Family
	}
	return modelreg.DefaultFamily
}

// NewFromRegistry resolves the family's serving pointer in reg and
// builds a Manager serving that model. The snapshot carries full
// registry identity, so every parsed record is stamped with the
// canonical "<family>/<semver>+<crc32c>" version string. opts.Registry
// and opts.Family are overwritten from the arguments.
func NewFromRegistry(reg *modelreg.Registry, family string, opts Options) (*Manager, error) {
	if family == "" {
		family = modelreg.DefaultFamily
	}
	res, err := reg.ResolveServing(family)
	if err != nil {
		return nil, err
	}
	p, err := store.LoadModel(res.Path)
	if err != nil {
		return nil, err
	}
	opts.Registry = reg
	opts.Family = family
	return newManager(p, res.Info, res.Path,
		regIdentity{Family: family, SemVer: res.Version}, opts), nil
}

// ReloadServing re-resolves the family's serving pointer and swaps the
// resolved model live — the SIGHUP / admin path for registry-backed
// daemons. When the pointer still names the version already serving,
// nothing swaps and changed is false: a promote on another process (or
// the CLI) becomes visible with a signal, while redundant signals are
// free. The resolved artifact is fully validated before anything is
// published; a corrupt registry entry leaves the old model serving.
func (m *Manager) ReloadServing() (snap *Snapshot, changed bool, err error) {
	if m.opts.Registry == nil {
		return nil, false, ErrNoRegistry
	}
	res, err := m.opts.Registry.ResolveServing(m.family())
	if err != nil {
		return nil, false, err
	}
	cur := m.cur.Load()
	if cur != nil && cur.Version == res.VersionString() {
		return cur, false, nil
	}
	p, err := store.LoadModel(res.Path)
	if err != nil {
		return nil, false, err
	}
	snap = m.swap(p, res.Info, res.Path, regIdentity{Family: res.Family, SemVer: res.Version})
	m.met.reloads.Inc()
	return snap, true, nil
}

// publishCandidate publishes a retrain candidate into the registry with
// full provenance and stages it as the family's candidate. Called with
// retrainMu held.
func (m *Manager) publishCandidate(cand *core.Parser, report ShadowReport, trainRecords int) (*modelreg.Manifest, error) {
	reg := m.opts.Registry
	family := m.family()
	// Serialize through the registry's own publish path: write the WMDL
	// to a scratch file, publish the verified bytes.
	tmp, err := tempArtifact(cand)
	if err != nil {
		return nil, err
	}
	defer tmp.cleanup()

	live := m.cur.Load()
	parent := ""
	if live != nil && live.Family == family {
		parent = live.SemVer
	}
	manifest, err := reg.Publish(modelreg.PublishRequest{
		Family:       family,
		Parent:       parent,
		ArtifactPath: tmp.path,
		Provenance: modelreg.Provenance{
			CorpusPath:           m.opts.CorpusPath,
			TrainRecords:         trainRecords,
			HoldoutRecords:       len(m.opts.Holdout),
			ShadowTokenAccuracy:  1 - report.CandBlocks.LineErrorRate(),
			ShadowRecordAccuracy: 1 - report.CandBlocks.DocErrorRate(),
			LiveTokenAccuracy:    1 - report.LiveBlocks.LineErrorRate(),
			LiveRecordAccuracy:   1 - report.LiveBlocks.DocErrorRate(),
			Trainer:              "lifecycle.Retrain",
		},
	})
	if err != nil {
		return nil, err
	}
	if err := reg.SetCandidate(family, manifest.Version); err != nil {
		return manifest, err
	}
	return manifest, nil
}

// promoteThroughRegistry walks an already-staged candidate version to
// serving (candidate → shadow → serving, each move verify-gated) and
// returns the resolved serving entry. Called with retrainMu held.
func (m *Manager) promoteThroughRegistry(version string) (*modelreg.Resolved, error) {
	reg := m.opts.Registry
	family := m.family()
	if _, err := reg.Promote(family, version); err != nil {
		return nil, err
	}
	if _, err := reg.Promote(family, version); err != nil {
		return nil, err
	}
	return reg.ResolveServing(family)
}

// parkAtShadow moves a rejected candidate to the shadow stage and
// leaves it there — the audit trail: the version, its provenance, and
// its losing scores stay inspectable (`model list`, `model diff`)
// instead of evaporating with the training run.
func (m *Manager) parkAtShadow(version string) error {
	_, err := m.opts.Registry.Promote(m.family(), version)
	return err
}

// scratch is a temporary WMDL written only so Publish can verify and
// copy it; the registry's copy is the durable one.
type scratch struct{ path, dir string }

func (s scratch) cleanup() { os.RemoveAll(s.dir) }

func tempArtifact(p *core.Parser) (scratch, error) {
	dir, err := os.MkdirTemp("", "lifecycle-candidate-*")
	if err != nil {
		return scratch{}, fmt.Errorf("lifecycle: scratch artifact: %w", err)
	}
	path := filepath.Join(dir, "candidate.wmdl")
	if err := store.SaveModel(p, path); err != nil {
		os.RemoveAll(dir)
		return scratch{}, fmt.Errorf("lifecycle: scratch artifact: %w", err)
	}
	return scratch{path: path, dir: dir}, nil
}
