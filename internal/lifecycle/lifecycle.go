// Package lifecycle is the online model-lifecycle control plane: it owns
// which trained model is live, swaps models with zero downtime, watches
// live traffic for drift, queues the records a human should label next
// (§5.3 active learning), and retrains + shadow-evaluates candidates so a
// worse model is never promoted.
//
// The paper's system is not a one-shot parser: WHOIS templates drift as
// registrars change formats (§5.1), so the deployed model is retrained
// on newly labeled records and redeployed while the daemons keep
// serving. This package closes that loop in-process:
//
//	     ┌──────────────────────────────────────────────┐
//	     ▼                                              │
//	Serving ──drift──▶ DriftFlagged ──▶ Retraining ──▶ Shadow
//	     ▲                                              │
//	     └────────────── promoted ◀─────────────────────┘
//	                     (rejected keeps the old model)
//
// The hot-swap mechanics live in internal/serve: a Manager holds the
// current model in an atomic Snapshot pointer and, on swap, rebinds every
// attached serve.Server to a ParseFunc closed over that snapshot.
// serve.SetParseFunc replaces the parse function and bumps the cache
// generation in a single atomic store, so no request can observe the new
// model with the old cache (or a torn mix); entries cached under the old
// generation simply stop matching and age out of the LRU. Every parse is
// stamped with the snapshot's version string, which makes "which model
// produced this answer" a property of the response, not of wall-clock
// correlation.
package lifecycle

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/modelreg"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tiered"
)

// State is the lifecycle position of the serving stack. Transitions are
// Serving → DriftFlagged (sentinel), DriftFlagged/Serving → Retraining →
// Shadow → Serving (promoted or rejected; DriftFlagged again if flags
// remain). Exported via the lifecycle.state gauge.
type State int32

const (
	// StateServing: the live model is healthy and serving.
	StateServing State = iota
	// StateDriftFlagged: at least one registrar window tripped the
	// sentinel; the live model keeps serving while labeling/retraining
	// catches up.
	StateDriftFlagged
	// StateRetraining: a candidate model is being trained.
	StateRetraining
	// StateShadow: the candidate is being evaluated against the live
	// model on held-out labeled data.
	StateShadow
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateDriftFlagged:
		return "drift-flagged"
	case StateRetraining:
		return "retraining"
	case StateShadow:
		return "shadow"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Snapshot is one immutable generation of the serving model. Swaps
// replace the whole snapshot atomically; nothing in it is ever mutated
// after publication.
type Snapshot struct {
	// Parser is the trained model.
	Parser *core.Parser
	// Seq is the in-process generation number, starting at 1 for the
	// model the Manager was built with and incrementing per swap.
	Seq uint64
	// Info is the WMDL artifact identity when the model came from (or
	// was promoted to) disk; zero for purely in-memory models.
	Info store.ModelInfo
	// Path is the artifact path the model was loaded from, if any.
	Path string
	// Family and SemVer identify the model in the registry when it was
	// resolved from one (NewFromRegistry, ReloadServing, or a
	// registry-backed Retrain); both empty otherwise.
	Family string
	SemVer string
	// Version is the string stamped into every ParsedRecord this
	// snapshot produces. Registry-resolved models stamp the canonical
	// "<family>/<semver>+<crc32c>" — deterministic across processes, so
	// a crawler and a daemon resolving the same registry version agree.
	// Models without registry identity stamp "m<seq>" or
	// "m<seq>-<crc32c>" (per-process generation numbers).
	Version string
}

// Options configures a Manager. The zero value is usable: drift
// sentinel on with default thresholds, no queue persistence, no
// retraining (Retrain errors without Holdout).
type Options struct {
	// Metrics receives lifecycle.* metrics; nil means a private
	// registry (reachable via Manager.Metrics). Swapped-in models are
	// instrumented against this registry only when it is non-nil, so a
	// daemon that shares one registry across core/serve/store sees
	// every model generation under the same core.* names.
	Metrics *obs.Registry
	// Log receives lifecycle events (swaps, drift flags, promotion
	// verdicts); nil discards them.
	Log *obs.Logger

	// SampleEvery scores every Nth parse with posterior confidence
	// (ParseWithConfidence costs one extra forward-backward over the
	// block lattice); the rest run the plain Viterbi path and feed only
	// the null/other-rate window. <= 0 means 8; 1 scores everything.
	SampleEvery int
	// Window is the per-registrar sliding-window size in observations;
	// <= 0 means 64.
	Window int
	// MinWindow is the minimum observations before a window may flag;
	// <= 0 means 16 (capped at Window).
	MinWindow int
	// ConfidenceFloor flags a registrar whose windowed mean minimum
	// posterior confidence falls below it; <= 0 means 0.5.
	ConfidenceFloor float64
	// NullOtherCeiling flags a registrar whose windowed mean fraction
	// of Null/Other lines exceeds it — the "model stopped recognizing
	// the template" signal (§5.1). <= 0 means 0.9.
	NullOtherCeiling float64
	// OnDrift, when non-nil, is invoked (on the parsing goroutine, keep
	// it cheap) each time a registrar newly trips the sentinel.
	OnDrift func(registrar string)

	// Queue, when non-nil, is the store that FlushQueue persists
	// low-confidence records into for labeling, ranked most uncertain
	// first (§5.3).
	Queue *store.Store
	// QueueThreshold admits a record to the labeling queue when its
	// minimum posterior confidence is below it; <= 0 means
	// ConfidenceFloor.
	QueueThreshold float64
	// QueueCap bounds the in-memory queue; when full, the least
	// uncertain entry is evicted first. <= 0 means 256.
	QueueCap int

	// Tiered, when non-nil, is the L0 template router the manager serves
	// through: every parse function handed to attached servers is bound
	// via Tiered.Bind, a registrar that trips the drift sentinel has its
	// template demoted (the §2.3 failure mode — the template is exactly
	// what drifted), and a promoted retrain rebuilds the template set
	// from the candidate's training records so both tiers move together.
	// Plain model swaps/reloads leave L0 untouched: templates derive from
	// labeled data, not model weights.
	Tiered *tiered.Router

	// Train is the config candidates are retrained with; the zero value
	// means core.DefaultConfig().
	Train core.Config
	// Holdout is the labeled evaluation set for shadow comparison;
	// Retrain refuses to run without it, because promotion without an
	// independent yardstick is how a worse model goes live.
	Holdout []*labels.LabeledRecord
	// PromotePath, when non-empty, receives the promoted candidate as a
	// WMDL artifact (atomic write) before the in-process swap, so a
	// restart comes back up on the promoted model. Ignored when Registry
	// is set — the registry owns promoted artifacts then.
	PromotePath string

	// Registry, when non-nil, routes Retrain through the model registry
	// instead of overwriting PromotePath: every candidate is published
	// as an immutable version with provenance, walked candidate → shadow
	// through the state machine, and — only if the shadow gate passes —
	// promoted to serving and swapped in-process. Rejected candidates
	// stay parked at shadow with their scores on record.
	Registry *modelreg.Registry
	// Family is the registry family this manager serves;
	// empty means modelreg.DefaultFamily.
	Family string
	// CorpusPath, when set, is recorded in published manifests as the
	// training-data source (Provenance.CorpusPath).
	CorpusPath string
}

func (o Options) withDefaults() Options {
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Log == nil {
		o.Log = obs.NewLogger("lifecycle", io.Discard)
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 8
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 16
	}
	if o.MinWindow > o.Window {
		o.MinWindow = o.Window
	}
	if o.ConfidenceFloor <= 0 {
		o.ConfidenceFloor = 0.5
	}
	if o.NullOtherCeiling <= 0 {
		o.NullOtherCeiling = 0.9
	}
	if o.QueueThreshold <= 0 {
		o.QueueThreshold = o.ConfidenceFloor
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Train.L2 == 0 && o.Train.MinCount == 0 {
		o.Train = core.DefaultConfig()
	}
	return o
}

type metrics struct {
	swaps       *obs.Counter
	reloads     *obs.Counter
	promotions  *obs.Counter
	rejections  *obs.Counter
	retrainErrs *obs.Counter
	state       *obs.Gauge
	modelSeq    *obs.Gauge

	driftObs     *obs.Counter
	driftEvents  *obs.Counter
	driftFlagged *obs.Gauge
	confidence   *obs.Histogram
	nullRate     *obs.Histogram

	queuePersisted *obs.Counter
	queueDropped   *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		swaps:       reg.Counter("lifecycle.swaps"),
		reloads:     reg.Counter("lifecycle.reloads"),
		promotions:  reg.Counter("lifecycle.retrain.promotions"),
		rejections:  reg.Counter("lifecycle.retrain.rejections"),
		retrainErrs: reg.Counter("lifecycle.retrain.errors"),
		state:       reg.Gauge("lifecycle.state"),
		modelSeq:    reg.Gauge("lifecycle.model.seq"),

		driftObs:     reg.Counter("lifecycle.drift.observations"),
		driftEvents:  reg.Counter("lifecycle.drift.events"),
		driftFlagged: reg.Gauge("lifecycle.drift.flagged"),
		confidence:   reg.Histogram("lifecycle.drift.confidence", obs.UnitBounds()),
		nullRate:     reg.Histogram("lifecycle.drift.nullrate", obs.UnitBounds()),

		queuePersisted: reg.Counter("lifecycle.queue.persisted"),
		queueDropped:   reg.Counter("lifecycle.queue.dropped"),
	}
}

// Manager owns the live model and the loop around it. All methods are
// safe for concurrent use.
type Manager struct {
	opts Options
	log  *obs.Logger
	met  metrics

	cur   atomic.Pointer[Snapshot]
	seq   atomic.Uint64
	state atomic.Int32

	// mu serializes swaps and the attached-server set, so every server
	// converges on the latest snapshot even under concurrent swaps.
	mu           sync.Mutex
	attached     []*serve.Server
	instrument   bool
	instrumented map[*core.Parser]bool

	// retrainMu serializes train → shadow → promote, one candidate at
	// a time.
	retrainMu sync.Mutex

	sentinel *sentinel
	queue    *alqueue
}

// regIdentity is a snapshot's registry coordinates; the zero value
// means "not from a registry".
type regIdentity struct {
	Family string
	SemVer string
}

// New builds a Manager serving p (an in-memory model; use NewFromFile
// when the model has an artifact identity).
func New(p *core.Parser, opts Options) *Manager {
	return newManager(p, store.ModelInfo{}, "", regIdentity{}, opts)
}

// NewFromFile loads the WMDL artifact at path and builds a Manager
// serving it, with the artifact identity (version, CRC) in the snapshot.
func NewFromFile(path string, opts Options) (*Manager, error) {
	info, err := store.StatModel(path)
	if err != nil {
		return nil, err
	}
	p, err := store.LoadModel(path)
	if err != nil {
		return nil, err
	}
	return newManager(p, info, path, regIdentity{}, opts), nil
}

func newManager(p *core.Parser, info store.ModelInfo, path string, rid regIdentity, opts Options) *Manager {
	instrument := opts.Metrics != nil
	opts = opts.withDefaults()
	m := &Manager{
		opts:         opts,
		log:          opts.Log,
		met:          newMetrics(opts.Metrics),
		instrument:   instrument,
		instrumented: map[*core.Parser]bool{},
	}
	m.sentinel = newSentinel(opts)
	m.queue = newALQueue(opts.QueueThreshold, opts.QueueCap)
	opts.Metrics.GaugeFunc("lifecycle.queue.pending", func() float64 {
		return float64(m.queue.len())
	})
	m.setState(StateServing)
	m.publish(p, info, path, rid)
	return m
}

// Metrics returns the registry lifecycle metrics land in.
func (m *Manager) Metrics() *obs.Registry { return m.opts.Metrics }

// Current returns the live snapshot.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// State returns the lifecycle state.
func (m *Manager) State() State { return State(m.state.Load()) }

func (m *Manager) setState(s State) {
	m.state.Store(int32(s))
	m.met.state.Set(int64(s))
}

// Attach routes a serve.Server through the manager: its parse function
// is replaced with the current snapshot's stamped+observed ParseFunc
// now, and rebound on every future swap. Attaching bumps the server's
// cache generation, so results cached before attachment (unstamped, from
// an unknown model) are never served again.
func (m *Manager) Attach(ps *serve.Server) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attached = append(m.attached, ps)
	ps.SetParseFunc(m.parseFuncFor(m.cur.Load()))
}

// ParseFunc returns the current snapshot's parse function — what an
// attached server runs on a cache miss. Useful for frontends that do not
// sit behind serve (batch drivers).
func (m *Manager) ParseFunc() serve.ParseFunc {
	return m.parseFuncFor(m.cur.Load())
}

// Parse runs the current model over text with lifecycle stamping and
// drift observation, bypassing any serving cache.
func (m *Manager) Parse(text string) *core.ParsedRecord {
	return m.parseFuncFor(m.cur.Load())(text)
}

// parseFuncFor binds a snapshot into the ParseFunc handed to serve: it
// stamps every record with the snapshot version and feeds the drift
// sentinel and active-learning queue. The closure captures the snapshot,
// not the manager's current pointer, so a request admitted under cache
// generation G always parses with the model that generation belongs to.
func (m *Manager) parseFuncFor(snap *Snapshot) serve.ParseFunc {
	base := func(text string) *core.ParsedRecord {
		var rec *core.ParsedRecord
		if m.sentinel.shouldScore() {
			var conf float64
			rec, conf = snap.Parser.ParseWithConfidence(text)
			rec.ModelVersion = snap.Version
			m.observe(snap, rec, text, conf)
		} else {
			rec = snap.Parser.Parse(text)
			rec.ModelVersion = snap.Version
		}
		return rec
	}
	if m.opts.Tiered == nil {
		return base
	}
	// Route through L0. Only L1-served records reach the sentinel and
	// queue above — which is the point: records that fall through L0
	// (no template, mismatch, low match confidence, demoted) are exactly
	// the ones worth scoring, and their low L1 confidence feeds the
	// active-learning queue as before.
	return m.opts.Tiered.Bind(base)
}

// observe feeds one scored parse into the sentinel and queue.
func (m *Manager) observe(snap *Snapshot, rec *core.ParsedRecord, text string, conf float64) {
	rate := nullOtherRate(rec)
	m.met.driftObs.Inc()
	m.met.confidence.Observe(conf)
	m.met.nullRate.Observe(rate)

	reg := rec.Registrar
	if reg == "" {
		// A degraded model often stops extracting the registrar at
		// all; pool those under one synthetic key so the signal is
		// not lost.
		reg = "(unattributed)"
	}
	flagged, unflagged, total := m.sentinel.observe(reg, conf, rate)
	if flagged || unflagged {
		m.met.driftFlagged.Set(int64(total))
		if flagged {
			m.met.driftEvents.Inc()
			m.log.Warn("drift flagged",
				"registrar", reg, "model", snap.Version,
				"conf", fmt.Sprintf("%.3f", conf), "nullrate", fmt.Sprintf("%.3f", rate))
			if m.State() == StateServing {
				m.setState(StateDriftFlagged)
			}
			if m.opts.Tiered != nil && m.opts.Tiered.Demote(reg) {
				// The drifted registrar's template must stop serving:
				// an exact template is the artifact drift invalidates
				// first (§2.3). L1 takes the registrar until shadow
				// agreement re-promotes it.
				m.log.Warn("template demoted", "registrar", reg)
			}
			if m.opts.OnDrift != nil {
				m.opts.OnDrift(reg)
			}
		}
		if unflagged {
			m.log.Info("drift cleared", "registrar", reg)
			if total == 0 && m.State() == StateDriftFlagged {
				m.setState(StateServing)
			}
		}
	}

	if conf < m.opts.QueueThreshold {
		domain := rec.DomainName
		if !m.queue.add(domain, text, conf) {
			m.met.queueDropped.Inc()
		}
	}
}

// Flagged returns the registrars currently past the drift threshold,
// sorted.
func (m *Manager) Flagged() []string {
	fs := m.sentinel.flagged()
	sort.Strings(fs)
	return fs
}

// Swap publishes p as the live model: a new snapshot is built, every
// attached server is rebound (which bumps its cache generation, so
// stale entries from the old model stop matching), and the snapshot is
// returned. info/path carry the artifact identity when the model came
// from disk; pass zero values for in-memory models.
func (m *Manager) Swap(p *core.Parser, info store.ModelInfo, path string) *Snapshot {
	return m.swap(p, info, path, regIdentity{})
}

func (m *Manager) swap(p *core.Parser, info store.ModelInfo, path string, rid regIdentity) *Snapshot {
	m.mu.Lock()
	snap := m.publish(p, info, path, rid)
	m.mu.Unlock()
	m.met.swaps.Inc()
	m.log.Info("model swapped", "version", snap.Version, "seq", snap.Seq,
		"artifact", info.String())
	return snap
}

// publish builds, instruments, stores, and rebinds. Callers other than
// newManager must hold m.mu.
func (m *Manager) publish(p *core.Parser, info store.ModelInfo, path string, rid regIdentity) *Snapshot {
	seq := m.seq.Add(1)
	version := versionString(seq, info)
	if rid.Family != "" {
		version = modelreg.FormatVersionString(rid.Family, rid.SemVer, info.CRC32C)
	}
	snap := &Snapshot{Parser: p, Seq: seq, Info: info, Path: path,
		Family: rid.Family, SemVer: rid.SemVer, Version: version}
	// Instrument before publication (Instrument is not safe once the
	// parser is shared), exactly once per parser object, and only into
	// a caller-provided registry — instrumenting into the manager's
	// private default would silently redirect core.* metrics a daemon
	// already wired elsewhere.
	if m.instrument && !m.instrumented[p] {
		p.Instrument(m.opts.Metrics)
		m.instrumented[p] = true
	}
	m.cur.Store(snap)
	m.met.modelSeq.Set(int64(seq))
	fn := m.parseFuncFor(snap)
	for _, ps := range m.attached {
		ps.SetParseFunc(fn)
	}
	return snap
}

// ReloadFromFile loads the WMDL artifact at path and swaps it live —
// the SIGHUP / admin-reload path. The artifact is fully validated
// (magic, version, CRC, dimensions) before anything is published, so a
// torn or corrupt file leaves the old model serving.
func (m *Manager) ReloadFromFile(path string) (*Snapshot, error) {
	info, err := store.StatModel(path)
	if err != nil {
		return nil, err
	}
	p, err := store.LoadModel(path)
	if err != nil {
		return nil, err
	}
	snap := m.Swap(p, info, path)
	m.met.reloads.Inc()
	return snap, nil
}

// ReloadFromBytes loads a WMDL artifact from memory and swaps it live —
// the cluster model-distribution path: a joining node fetches the
// serving artifact from a peer over the shard protocol and applies it
// only after the magic, format version, payload CRC32C, and feature
// dimensions all verify. A corrupt or truncated transfer leaves the old
// model serving, exactly like a bad file on the SIGHUP path. The
// snapshot carries the artifact identity but no path (the bytes came
// off the wire, not disk).
func (m *Manager) ReloadFromBytes(data []byte) (*Snapshot, error) {
	info, err := store.StatModelBytes(data)
	if err != nil {
		return nil, err
	}
	p, err := store.ReadModel(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	snap := m.Swap(p, info, "")
	m.met.reloads.Inc()
	return snap, nil
}

// versionString renders a snapshot's stamp: "m<seq>" for in-memory
// models, "m<seq>-<crc32c>" when the artifact identity is known.
func versionString(seq uint64, info store.ModelInfo) string {
	if info.IsZero() {
		return fmt.Sprintf("m%d", seq)
	}
	return fmt.Sprintf("m%d-%08x", seq, info.CRC32C)
}

// nullOtherRate is the fraction of a record's retained lines labeled
// Null or Other — the block-level "the model recognized nothing here"
// measure. An empty record counts as fully unrecognized.
func nullOtherRate(rec *core.ParsedRecord) float64 {
	if len(rec.Blocks) == 0 {
		return 1
	}
	n := 0
	for _, b := range rec.Blocks {
		if b == labels.Null || b == labels.Other {
			n++
		}
	}
	return float64(n) / float64(len(rec.Blocks))
}
