package tiered

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crf"
	"repro/internal/labels"
	"repro/internal/optimize"
	"repro/internal/synth"
	"repro/internal/templatebased"
)

// The tiered benchmarks quantify the routing contract against
// BenchmarkParseDirect in internal/serve (same corpus seed, same quick
// training config — BENCH_serve.json holds its numbers):
//
//	BenchmarkTieredHead  — in-template traffic served by L0; the ≥7x win
//	BenchmarkTieredTail  — the exact ParseDirect corpus behind a router
//	                       that holds no templates for it, so the delta
//	                       to BenchmarkParseDirect is pure routing
//	                       overhead; must stay within 5%
//	BenchmarkTieredMixed — 3:1 blend of head and drifted (§2.3) records
//	                       through one router, the production shape
//
// The router runs its honest production defaults, shadow sampling
// included: every 32nd head request also pays a full L1 parse and a
// scalar comparison, and that cost is in the numbers.

var (
	tbSetup      sync.Once
	tbRouted     ParseFunc
	tbTailRouted ParseFunc
	tbL1         ParseFunc
	tbHead       []string
	tbTail       []string
	tbMixed      []string
)

func setupTiered(b *testing.B) {
	b.Helper()
	tbSetup.Do(func() {
		recs := synth.GenerateLabeled(synth.Config{N: 800, Seed: 901})
		cfg := core.DefaultConfig()
		lbfgs := optimize.DefaultLBFGSConfig()
		lbfgs.MaxIterations = 40
		cfg.Train = crf.TrainConfig{LBFGS: lbfgs}
		p, _, err := core.Train(recs[:200], cfg)
		if err != nil {
			panic(err)
		}
		r := NewFromRecords(recs[:200], cfg.Tokenize, Options{})
		tbRouted = r.Bind(p.Parse)
		tbL1 = p.Parse

		// Head traffic: records a healthy template serves — matched with
		// confidence AND scalar-agreeing with the CRF, so the in-bench
		// shadow samples never demote the template mid-run.
		compiled := templatebased.Compile(recs[:200], cfg.Tokenize)
		for _, rec := range recs[200:712] {
			m, err := compiled.Match(rec.Text)
			if err != nil || m.Confidence < 0.8 {
				continue
			}
			l0 := record(&m)
			if sameScalars(l0, p.Parse(rec.Text)) {
				tbHead = append(tbHead, rec.Text)
			}
		}
		// Tail: the same texts BenchmarkParseDirect cycles, behind a
		// router whose only template (the hand-made acme fixture) never
		// detects them — every request pays detection plus the full L1.
		for _, rec := range recs[200:712] {
			tbTail = append(tbTail, rec.Text)
		}
		tr := NewFromRecords([]*labels.LabeledRecord{acmeRecord("seed.com")}, cfg.Tokenize, Options{})
		tbTailRouted = tr.Bind(p.Parse)

		// Mixed: head records blended 3:1 with drifted records (§2.3)
		// the main router declines.
		var driftTexts []string
		drifted := synth.GenerateLabeled(synth.Config{N: 256, Seed: 902, DriftFraction: 1.0})
		for _, rec := range drifted {
			if _, err := compiled.Match(rec.Text); err != nil {
				driftTexts = append(driftTexts, rec.Text)
			}
		}
		if len(tbHead) == 0 || len(driftTexts) == 0 {
			panic("tiered bench: empty head or drift corpus")
		}
		for i := 0; len(tbMixed) < 512; i++ {
			if i%4 == 3 {
				tbMixed = append(tbMixed, driftTexts[i%len(driftTexts)])
			} else {
				tbMixed = append(tbMixed, tbHead[i%len(tbHead)])
			}
		}
	})
}

func BenchmarkTieredHead(b *testing.B) {
	setupTiered(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbRouted(tbHead[i%len(tbHead)])
	}
}

func BenchmarkTieredTail(b *testing.B) {
	setupTiered(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbTailRouted(tbTail[i%len(tbTail)])
	}
}

func BenchmarkTieredMixed(b *testing.B) {
	setupTiered(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbRouted(tbMixed[i%len(tbMixed)])
	}
}

// BenchmarkTieredSpeedup is the load-robust form of the ">=7x over the
// CRF" acceptance bar: each op runs the same head record through the
// routed L0 path and the direct L1 parser back to back, so both sides
// see identical machine conditions, and reports the interleaved time
// ratio as l0_per_l1. The shared-vCPU container this repo benches on
// throttles unpredictably (absolute ns/op swings ~1.5-2x between idle
// runs), which absolute ceilings cannot distinguish from a real
// regression — the within-run ratio can. BENCH_tiered.json caps it at
// 1/7. ns/op for this benchmark is L0+L1 combined and is not gated.
func BenchmarkTieredSpeedup(b *testing.B) {
	setupTiered(b)
	b.ResetTimer()
	var l0, l1 time.Duration
	for i := 0; i < b.N; i++ {
		text := tbHead[i%len(tbHead)]
		t0 := time.Now()
		tbRouted(text)
		l0 += time.Since(t0)
		t0 = time.Now()
		tbL1(text)
		l1 += time.Since(t0)
	}
	b.ReportMetric(float64(l0)/float64(l1), "l0_per_l1")
}
