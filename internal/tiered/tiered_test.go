package tiered

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/tokenize"

	"repro/internal/crf"
	"repro/internal/optimize"
)

// --- hand-built corpus: full control over the state machine tests ---

const acme = "Acme Registrations Inc."

func acmeRecord(domain string) *labels.LabeledRecord {
	text := "Domain Name: " + domain + "\n" +
		"Registrar: " + acme + "\n" +
		"Creation Date: 2001-02-03\n"
	return &labels.LabeledRecord{
		Domain:    domain,
		TLD:       "com",
		Registrar: acme,
		Text:      text,
		Lines: []labels.LabeledLine{
			{Text: "Domain Name: " + domain, Block: labels.Domain, Field: labels.FieldOther},
			{Text: "Registrar: " + acme, Block: labels.Registrar, Field: labels.FieldOther},
			{Text: "Creation Date: 2001-02-03", Block: labels.Date, Field: labels.FieldOther},
		},
	}
}

func acmeRouter(opts Options) *Router {
	r := New(opts)
	r.Rebuild([]*labels.LabeledRecord{acmeRecord("seed.com")}, tokenize.Options{})
	return r
}

// agreeingL1 mimics the CRF producing the same scalar extraction as L0.
func agreeingL1(text string) *core.ParsedRecord {
	m := record2(text)
	m.Tier = ""
	return m
}

// record2 produces the record L0 itself would emit for an acme text (or
// an empty record when the text is out of template).
func record2(text string) *core.ParsedRecord {
	r := acmeRouter(Options{ShadowEvery: 1 << 30})
	out := r.Bind(func(string) *core.ParsedRecord { return &core.ParsedRecord{} })(text)
	return out
}

// disagreeingL1 returns different scalars than L0.
func disagreeingL1(text string) *core.ParsedRecord {
	out := agreeingL1(text)
	out.DomainName = "somewhere-else.net"
	return out
}

func TestHealthyTemplateServesL0(t *testing.T) {
	r := acmeRouter(Options{ShadowEvery: 1 << 30})
	routed := r.Bind(func(string) *core.ParsedRecord {
		t.Fatal("L1 called for healthy in-template record")
		return nil
	})
	out := routed(acmeRecord("a.com").Text)
	if out.Tier != core.TierTemplate {
		t.Fatalf("tier %q, want %q", out.Tier, core.TierTemplate)
	}
	if out.DomainName != "a.com" || out.Registrar != acme || out.CreatedDate != "2001-02-03" {
		t.Fatalf("bad extraction: %+v", out)
	}
	if s := r.Status(); s.L0Hits != 1 || s.L1Fallbacks != 0 {
		t.Fatalf("status %+v", s)
	}
}

func TestNoTemplateFallsBackToL1(t *testing.T) {
	r := acmeRouter(Options{})
	called := 0
	routed := r.Bind(func(text string) *core.ParsedRecord {
		called++
		return &core.ParsedRecord{DomainName: "x"}
	})
	out := routed("Domain Name: a.com\nRegistrar: Unknown Corp\n")
	if called != 1 || out.Tier != core.TierCRF {
		t.Fatalf("called=%d tier=%q", called, out.Tier)
	}
	if s := r.Status(); s.L1Fallbacks != 1 || s.L0Hits != 0 {
		t.Fatalf("status %+v", s)
	}
}

func TestEmptyRouterRoutesEverythingToL1(t *testing.T) {
	r := New(Options{})
	routed := r.Bind(func(string) *core.ParsedRecord { return &core.ParsedRecord{} })
	if out := routed("anything"); out.Tier != core.TierCRF {
		t.Fatalf("tier %q", out.Tier)
	}
	if s := r.Status(); s.Templates != 0 || s.L1Fallbacks != 1 {
		t.Fatalf("status %+v", s)
	}
}

func TestLowConfidenceFallsBack(t *testing.T) {
	// A record dominated by context-carried bare lines scores 2/5 < 0.8.
	text := "Registrar: " + acme + "\n" +
		"Registrant Contact:\n" +
		"John Smith\n" +
		"123 Main Street\n" +
		"Springfield\n"
	rec := &labels.LabeledRecord{
		Domain: "bare.com", TLD: "com", Registrar: acme, Text: text,
		Lines: []labels.LabeledLine{
			{Text: "Registrar: " + acme, Block: labels.Registrar, Field: labels.FieldOther},
			{Text: "Registrant Contact:", Block: labels.Registrant, Field: labels.FieldOther},
			{Text: "John Smith", Block: labels.Registrant, Field: labels.FieldName},
			{Text: "123 Main Street", Block: labels.Registrant, Field: labels.FieldStreet},
			{Text: "Springfield", Block: labels.Registrant, Field: labels.FieldCity},
		},
	}
	r := New(Options{})
	r.Rebuild([]*labels.LabeledRecord{rec}, tokenize.Options{})
	routed := r.Bind(func(string) *core.ParsedRecord { return &core.ParsedRecord{} })
	if out := routed(text); out.Tier != core.TierCRF {
		t.Fatalf("low-confidence match should fall back, got tier %q", out.Tier)
	}
	if s := r.Status(); s.L1Fallbacks != 1 {
		t.Fatalf("status %+v", s)
	}
}

func TestDemotedTemplateNeverServes(t *testing.T) {
	r := acmeRouter(Options{ShadowEvery: 1 << 30})
	if !r.Demote(acme) {
		t.Fatal("Demote returned false for known registrar")
	}
	if r.Demote(acme) {
		t.Fatal("second Demote should report already-demoted")
	}
	if r.Demote("nobody") {
		t.Fatal("Demote of unknown registrar should be false")
	}
	routed := r.Bind(agreeingL1)
	for i := 0; i < 50; i++ {
		if out := routed(acmeRecord("a.com").Text); out.Tier != core.TierCRF {
			t.Fatalf("call %d: demoted template served tier %q", i, out.Tier)
		}
	}
	s := r.Status()
	if s.L0Demoted != 50 || len(s.Demoted) != 1 || s.Demoted[0] != acme {
		t.Fatalf("status %+v", s)
	}
}

func TestShadowDisagreementDemotes(t *testing.T) {
	r := acmeRouter(Options{ShadowEvery: 1, DemoteAfter: 2})
	routed := r.Bind(disagreeingL1)
	text := acmeRecord("a.com").Text

	// Every call shadows; each disagreement serves the L1 result.
	out := routed(text)
	if out.Tier != core.TierCRF || out.DomainName != "somewhere-else.net" {
		t.Fatalf("disagreeing shadow must serve L1: %+v", out)
	}
	if r.Demoted(acme) {
		t.Fatal("demoted after one disagreement; DemoteAfter=2")
	}
	routed(text)
	if !r.Demoted(acme) {
		t.Fatal("not demoted after DemoteAfter disagreements")
	}
	s := r.Status()
	if s.Demotions != 1 || s.Disagreements < 2 {
		t.Fatalf("status %+v", s)
	}
}

func TestShadowAgreementRepromotes(t *testing.T) {
	r := acmeRouter(Options{ShadowEvery: 1, PromoteAfter: 3})
	r.Demote(acme)
	routed := r.Bind(agreeingL1)
	text := acmeRecord("a.com").Text
	for i := 0; i < 3; i++ {
		if r.Demoted(acme) == false {
			t.Fatalf("re-promoted after only %d agreements", i)
		}
		if out := routed(text); out.Tier != core.TierCRF {
			t.Fatalf("demoted template served L0 during shadow: %+v", out)
		}
	}
	if r.Demoted(acme) {
		t.Fatal("not re-promoted after PromoteAfter agreements")
	}
	if out := routed(text); out.Tier != core.TierTemplate {
		t.Fatalf("re-promoted template should serve L0, got %q", out.Tier)
	}
	if s := r.Status(); s.Promotions != 1 {
		t.Fatalf("status %+v", s)
	}
}

func TestAgreementResetsDisagreementStreak(t *testing.T) {
	r := acmeRouter(Options{ShadowEvery: 1, DemoteAfter: 2})
	text := acmeRecord("a.com").Text
	disagree := r.Bind(disagreeingL1)
	agree := r.Bind(agreeingL1)
	disagree(text) // streak 1
	agree(text)    // streak resets
	disagree(text) // streak 1 again
	if r.Demoted(acme) {
		t.Fatal("non-consecutive disagreements should not demote")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Options{Metrics: reg})
	r.Rebuild([]*labels.LabeledRecord{acmeRecord("seed.com")}, tokenize.Options{})
	routed := r.Bind(agreeingL1)
	routed(acmeRecord("a.com").Text)
	routed("Registrar: Unknown Corp\n")
	snap := reg.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiered.l0.hits", "tiered.l1.fallbacks", "tiered.l0.demoted"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %s missing from snapshot %s", name, b)
		}
	}
	if v, _ := snap["tiered.l0.hits"].(float64); v != 1 {
		t.Fatalf("tiered.l0.hits = %v, want 1", snap["tiered.l0.hits"])
	}
}

func TestStatusMarshalsToJSON(t *testing.T) {
	r := acmeRouter(Options{})
	r.Demote(acme)
	b, err := json.Marshal(r.Status())
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out["templates"].(float64) != 1 {
		t.Fatalf("status JSON %s", b)
	}
}

// --- differential test against the real CRF ---

var fixtureOnce sync.Once
var fixture struct {
	recs   []*labels.LabeledRecord
	parser *core.Parser
}

func loadFixture(t *testing.T) ([]*labels.LabeledRecord, *core.Parser) {
	t.Helper()
	fixtureOnce.Do(func() {
		recs := synth.GenerateLabeled(synth.Config{N: 500, Seed: 61})
		cfg := core.DefaultConfig()
		lbfgs := optimize.DefaultLBFGSConfig()
		lbfgs.MaxIterations = 40
		cfg.Train = crf.TrainConfig{LBFGS: lbfgs}
		p, _, err := core.Train(recs[:150], cfg)
		if err != nil {
			panic(err)
		}
		fixture.recs = recs
		fixture.parser = p
	})
	return fixture.recs, fixture.parser
}

// TestDifferentialIdenticalWhereL0Declines is the satellite contract:
// wherever the router does NOT serve L0, its output must be the CRF-only
// output, byte for byte, apart from the tier stamp.
func TestDifferentialIdenticalWhereL0Declines(t *testing.T) {
	if testing.Short() {
		t.Skip("CRF training fixture")
	}
	recs, p := loadFixture(t)
	r := New(Options{ShadowEvery: 1 << 30})
	r.Rebuild(recs[:150], core.DefaultConfig().Tokenize)
	routed := r.Bind(p.Parse)
	l0, l1 := 0, 0
	for _, rec := range recs[150:] {
		got := routed(rec.Text)
		if got.Tier == core.TierTemplate {
			l0++
			continue
		}
		l1++
		want := p.Parse(rec.Text)
		want.Tier = core.TierCRF
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: routed L1 output differs from direct parse\n got %+v\nwant %+v",
				rec.Domain, got, want)
		}
	}
	if l0 == 0 {
		t.Fatal("router never served L0 on in-distribution traffic")
	}
	if l1 == 0 {
		t.Fatal("router never declined; differential test vacuous")
	}
	t.Logf("l0=%d l1=%d", l0, l1)
}

// TestRouterL0AgreesWithCRFOnScalars: where L0 does serve, its extracted
// scalars should overwhelmingly agree with the CRF — the invariant the
// shadow sampler polices in production.
func TestRouterL0AgreesWithCRFOnScalars(t *testing.T) {
	if testing.Short() {
		t.Skip("CRF training fixture")
	}
	recs, p := loadFixture(t)
	r := New(Options{ShadowEvery: 1 << 30})
	r.Rebuild(recs[:150], core.DefaultConfig().Tokenize)
	routed := r.Bind(p.Parse)
	served, agreed := 0, 0
	for _, rec := range recs[150:] {
		got := routed(rec.Text)
		if got.Tier != core.TierTemplate {
			continue
		}
		served++
		if sameScalars(got, p.Parse(rec.Text)) {
			agreed++
		}
	}
	if served == 0 {
		t.Fatal("no L0 serves")
	}
	if rate := float64(agreed) / float64(served); rate < 0.9 {
		t.Errorf("L0/CRF scalar agreement only %.3f (%d/%d)", rate, agreed, served)
	}
}
