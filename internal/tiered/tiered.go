// Package tiered routes parse requests between two tiers: L0, the
// compiled template fast path (templatebased.Compiled — exact
// per-registrar line matching, no lattice), and L1, the full two-level
// CRF (core.Parser). The paper's template baseline (§2.3) loses to the
// CRF only under drift; in production the head of the registrar Zipf
// distribution is in-template almost always, so serving it from L0 cuts
// the cold parse from ~157µs to a few µs while L1 keeps the tail and
// every record L0 cannot vouch for.
//
// Routing policy, in order:
//
//  1. No compiled templates, no registrar detected, template mismatch,
//     or match confidence below Options.Confidence → L1 (a "fallback").
//  2. Template demoted (by the drift sentinel via Demote, or by shadow
//     disagreement) → L1 serves; a sampled shadow L0 match is compared
//     against the L1 result and PromoteAfter consecutive agreements
//     re-promote the template.
//  3. Healthy template → L0 serves. One in ShadowEvery hits also runs
//     L1 and compares extracted scalar fields; a disagreement serves the
//     L1 result (never the contested L0 one), and DemoteAfter
//     consecutive disagreements demote the template.
//
// The demotion state machine is per template, so one registrar changing
// its format (§2.3 drift) does not take the whole fast path down.
package tiered

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/templatebased"
	"repro/internal/tokenize"
)

// ParseFunc matches serve.ParseFunc (an alias, so Bind results assign
// directly into the serving layer).
type ParseFunc = func(text string) *core.ParsedRecord

// Options tunes the router. The zero value means defaults.
type Options struct {
	// Confidence is the minimum L0 match confidence (fraction of lines
	// matched by an exact template entry rather than header-context
	// carry) required to serve from L0. Default 0.8.
	Confidence float64
	// ShadowEvery samples one in N L0-eligible requests for a shadow
	// parse on the other tier (L1 when healthy, L0 when demoted).
	// Default 32.
	ShadowEvery int
	// DemoteAfter is the number of consecutive shadow disagreements that
	// demote a healthy template. Default 2.
	DemoteAfter int
	// PromoteAfter is the number of consecutive shadow agreements that
	// re-promote a demoted template. Default 3.
	PromoteAfter int
	// Metrics, when non-nil, exposes router counters and per-tier
	// latency histograms under "tiered.*".
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Confidence <= 0 {
		o.Confidence = 0.8
	}
	if o.ShadowEvery <= 0 {
		o.ShadowEvery = 32
	}
	if o.DemoteAfter <= 0 {
		o.DemoteAfter = 2
	}
	if o.PromoteAfter <= 0 {
		o.PromoteAfter = 3
	}
	return o
}

// tmplState is the per-template health state machine.
type tmplState struct {
	mu       sync.Mutex
	demoted  bool
	disagree int // consecutive shadow disagreements while healthy
	agree    int // consecutive shadow agreements while demoted
}

// Router routes requests between the tiers. Rebuild installs templates;
// Bind wraps an L1 parse function. All methods are safe for concurrent
// use with bound parse functions.
type Router struct {
	opts Options

	mu       sync.RWMutex
	compiled *templatebased.Compiled
	state    map[string]*tmplState

	shadowTick atomic.Uint64

	// Counters are Router-owned atomics so Status works without a
	// registry; New mirrors them into obs as GaugeFuncs when
	// Options.Metrics is set.
	hits          atomic.Uint64 // L0 served
	demotedServes atomic.Uint64 // L1 served because the template is demoted
	fallbacks     atomic.Uint64 // L1 served: no template / mismatch / low confidence
	disagreements atomic.Uint64 // shadow comparisons that disagreed
	demotions     atomic.Uint64
	promotions    atomic.Uint64

	l0Seconds *obs.Histogram // nil without a registry
	l1Seconds *obs.Histogram
}

// New builds a Router with no templates installed; every request routes
// to L1 until Rebuild is called.
func New(opts Options) *Router {
	r := &Router{opts: opts.withDefaults()}
	if reg := r.opts.Metrics; reg != nil {
		gauge := func(name string, v *atomic.Uint64) {
			reg.GaugeFunc(name, func() float64 { return float64(v.Load()) })
		}
		gauge("tiered.l0.hits", &r.hits)
		gauge("tiered.l0.demoted", &r.demotedServes)
		gauge("tiered.l1.fallbacks", &r.fallbacks)
		gauge("tiered.shadow.disagreements", &r.disagreements)
		gauge("tiered.l0.demotions", &r.demotions)
		gauge("tiered.l0.promotions", &r.promotions)
		r.l0Seconds = reg.Histogram("tiered.l0.seconds", obs.DurationBounds())
		r.l1Seconds = reg.Histogram("tiered.l1.seconds", obs.DurationBounds())
	}
	return r
}

// NewFromRecords is New + Rebuild in one call.
func NewFromRecords(records []*labels.LabeledRecord, topts tokenize.Options, opts Options) *Router {
	r := New(opts)
	r.Rebuild(records, topts)
	return r
}

// Rebuild compiles a fresh L0 template set from labeled records — the
// same corpus a model promotion trained on, so the tiers stay coherent.
// All templates come back healthy: demotions encode distrust of the
// *previous* template set, and the shadow sampler re-demotes a still-bad
// template within DemoteAfter×ShadowEvery requests.
func (r *Router) Rebuild(records []*labels.LabeledRecord, topts tokenize.Options) {
	c := templatebased.Compile(records, topts)
	state := make(map[string]*tmplState, c.NumTemplates())
	for _, reg := range c.Registrars() {
		state[reg] = &tmplState{}
	}
	r.mu.Lock()
	r.compiled = c
	r.state = state
	r.mu.Unlock()
}

// Demote forces a template out of service (L1 takes over) until the
// shadow sampler re-promotes it. It reports whether the registrar had a
// healthy template. The lifecycle drift sentinel calls this when a
// registrar's confidence distribution degrades.
func (r *Router) Demote(registrar string) bool {
	r.mu.RLock()
	st := r.state[registrar]
	r.mu.RUnlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.demoted {
		return false
	}
	st.demoted = true
	st.agree, st.disagree = 0, 0
	r.demotions.Add(1)
	return true
}

// Demoted reports whether a registrar's template is currently demoted.
func (r *Router) Demoted(registrar string) bool {
	r.mu.RLock()
	st := r.state[registrar]
	r.mu.RUnlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.demoted
}

// Bind returns a ParseFunc that routes between L0 and the given L1
// parser. The result stamps core.ParsedRecord.Tier on every record; l1
// may itself stamp ModelVersion (lifecycle does), which is preserved on
// L1-served records.
func (r *Router) Bind(l1 ParseFunc) ParseFunc {
	return func(text string) *core.ParsedRecord {
		r.mu.RLock()
		c := r.compiled
		states := r.state
		r.mu.RUnlock()
		if c == nil {
			r.fallbacks.Add(1)
			return r.runL1(l1, text)
		}
		var start time.Time
		if r.l0Seconds != nil {
			start = time.Now()
		}
		m, err := c.Match(text)
		if err != nil || m.Confidence < r.opts.Confidence {
			r.fallbacks.Add(1)
			return r.runL1(l1, text)
		}
		st := states[m.Registrar]
		if st == nil {
			// Unreachable by construction (state covers every compiled
			// registrar), but a router must never panic on a race.
			r.fallbacks.Add(1)
			return r.runL1(l1, text)
		}
		if demoted(st) {
			r.demotedServes.Add(1)
			out := r.runL1(l1, text)
			if r.sampleShadow() {
				if sameScalars(record(&m), out) {
					if r.noteAgreement(st) {
						r.promotions.Add(1)
					}
				} else {
					r.disagreements.Add(1)
					r.resetAgreement(st)
				}
			}
			return out
		}
		if r.sampleShadow() {
			ref := r.runL1(l1, text)
			out := record(&m)
			if !sameScalars(out, ref) {
				r.disagreements.Add(1)
				if r.noteDisagreement(st) {
					r.demotions.Add(1)
				}
				// Never serve the contested L0 record.
				return ref
			}
			r.resetDisagreement(st)
			r.hits.Add(1)
			if r.l0Seconds != nil {
				r.l0Seconds.ObserveSince(start)
			}
			return out
		}
		out := record(&m)
		r.hits.Add(1)
		if r.l0Seconds != nil {
			r.l0Seconds.ObserveSince(start)
		}
		return out
	}
}

func (r *Router) runL1(l1 ParseFunc, text string) *core.ParsedRecord {
	var start time.Time
	if r.l1Seconds != nil {
		start = time.Now()
	}
	out := l1(text)
	if r.l1Seconds != nil {
		r.l1Seconds.ObserveSince(start)
	}
	if out != nil {
		out.Tier = core.TierCRF
	}
	return out
}

// record materializes a ParsedRecord from an L0 match.
func record(m *templatebased.Match) *core.ParsedRecord {
	out := &core.ParsedRecord{
		Lines:  m.Lines,
		Blocks: m.Blocks,
		Fields: m.Fields,
		Tier:   core.TierTemplate,
	}
	out.ExtractFields()
	return out
}

// sameScalars compares the extracted summary fields of two records — the
// shadow agreement test. Line labels are deliberately excluded: L0 lines
// carry no Obs and the tiers may disagree on boilerplate labels without
// any consumer-visible effect; the scalars are what downstream (rdap,
// whoisd, store) consume.
func sameScalars(a, b *core.ParsedRecord) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Registrant == b.Registrant &&
		a.Registrar == b.Registrar &&
		a.RegistrarURL == b.RegistrarURL &&
		a.DomainName == b.DomainName &&
		a.WhoisServer == b.WhoisServer &&
		a.CreatedDate == b.CreatedDate &&
		a.UpdatedDate == b.UpdatedDate &&
		a.ExpiresDate == b.ExpiresDate
}

func (r *Router) sampleShadow() bool {
	return r.shadowTick.Add(1)%uint64(r.opts.ShadowEvery) == 0
}

func demoted(st *tmplState) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.demoted
}

// noteDisagreement records a healthy-path shadow disagreement and
// reports whether it tripped a demotion.
func (r *Router) noteDisagreement(st *tmplState) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.demoted {
		return false
	}
	st.disagree++
	if st.disagree >= r.opts.DemoteAfter {
		st.demoted = true
		st.disagree, st.agree = 0, 0
		return true
	}
	return false
}

func (r *Router) resetDisagreement(st *tmplState) {
	st.mu.Lock()
	st.disagree = 0
	st.mu.Unlock()
}

// noteAgreement records a demoted-path shadow agreement and reports
// whether it re-promoted the template.
func (r *Router) noteAgreement(st *tmplState) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.demoted {
		return false
	}
	st.agree++
	if st.agree >= r.opts.PromoteAfter {
		st.demoted = false
		st.agree, st.disagree = 0, 0
		return true
	}
	return false
}

func (r *Router) resetAgreement(st *tmplState) {
	st.mu.Lock()
	st.agree = 0
	st.mu.Unlock()
}

// Status is a JSON-able snapshot of router state for the daemons'
// status endpoints.
type Status struct {
	Templates     int      `json:"templates"`
	Demoted       []string `json:"demoted,omitempty"`
	Confidence    float64  `json:"confidence_threshold"`
	ShadowEvery   int      `json:"shadow_every"`
	L0Hits        uint64   `json:"l0_hits"`
	L0Demoted     uint64   `json:"l0_demoted_serves"`
	L1Fallbacks   uint64   `json:"l1_fallbacks"`
	Disagreements uint64   `json:"shadow_disagreements"`
	Demotions     uint64   `json:"demotions"`
	Promotions    uint64   `json:"promotions"`
}

// Status snapshots the router.
func (r *Router) Status() Status {
	s := Status{
		Confidence:    r.opts.Confidence,
		ShadowEvery:   r.opts.ShadowEvery,
		L0Hits:        r.hits.Load(),
		L0Demoted:     r.demotedServes.Load(),
		L1Fallbacks:   r.fallbacks.Load(),
		Disagreements: r.disagreements.Load(),
		Demotions:     r.demotions.Load(),
		Promotions:    r.promotions.Load(),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.compiled == nil {
		return s
	}
	s.Templates = r.compiled.NumTemplates()
	for reg, st := range r.state {
		if demoted(st) {
			s.Demoted = append(s.Demoted, reg)
		}
	}
	sort.Strings(s.Demoted)
	return s
}
