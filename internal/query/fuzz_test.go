package query

import (
	"reflect"
	"testing"
)

// fuzzIndexSeeds are valid encoded sidecars plus hand-built corruptions;
// the checked-in corpus under testdata/fuzz/FuzzIndexDecode extends them
// with generated crashers. Every seed doubles as a regression input on
// plain `go test`.
func fuzzIndexSeeds() [][]byte {
	x := &Index{
		SegID: 3, Fingerprint: 0x01020304, Records: 9,
		Registrar: map[string][]Posting{
			"":     {{Off: 5, Idx: 0}},
			"eNom": {{Off: 5, Idx: 1}, {Off: 812, Idx: 0}},
		},
		Country: map[string][]Posting{"China": {{Off: 5, Idx: 2}}},
		Year:    map[int][]Posting{0: {{Off: 5, Idx: 0}}, 2014: {{Off: 812, Idx: 0}}},
	}
	idx := encodeIndex(x)
	z := &ZoneMap{
		SegID: 3, Fingerprint: 0x01020304, Records: 9,
		MinYear: 2001, MaxYear: 2014, YearZero: true,
		Registrars: []string{"", "eNom"}, Countries: []string{"China"},
	}
	zm := encodeZoneMap(z)
	seeds := [][]byte{
		idx,
		zm,
		{},                                     // empty
		idx[:4],                                // magic only
		idx[:len(idx)/2],                       // truncated body
		append(append([]byte{}, idx...), 0xff), // trailing garbage
	}
	// Flip one byte at several positions of both valid sidecars.
	for _, src := range [][]byte{idx, zm} {
		for _, pos := range []int{0, 4, 5, len(src) / 2, len(src) - 1} {
			b := append([]byte(nil), src...)
			b[pos] ^= 0x80
			seeds = append(seeds, b)
		}
	}
	// A posting count claiming far more entries than remain.
	huge := append([]byte(nil), idx[:20]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x0f)
	seeds = append(seeds, huge)
	return seeds
}

// FuzzIndexDecode holds the sidecar decoders to their whole contract
// under arbitrary bytes: return a value or ErrBadSidecar — never panic,
// never over-read, never allocate proportionally to a forged count — and
// round-trip anything they accept. The planner trusts nothing else: a
// decoded sidecar that is merely *stale* is caught by the fingerprint
// check, and a seek it misdirects is caught by the frame CRC + Match
// re-check, so decode robustness is the only thing fuzz must establish.
func FuzzIndexDecode(f *testing.F) {
	for _, s := range fuzzIndexSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if x, err := decodeIndex(data); err == nil {
			re := encodeIndex(x)
			x2, err := decodeIndex(re)
			if err != nil {
				t.Fatalf("re-encoded index rejected: %v", err)
			}
			if !reflect.DeepEqual(x, x2) {
				t.Fatalf("index round trip diverged:\n first %+v\nsecond %+v", x, x2)
			}
		}
		if z, err := decodeZoneMap(data); err == nil {
			re := encodeZoneMap(z)
			z2, err := decodeZoneMap(re)
			if err != nil {
				t.Fatalf("re-encoded zone map rejected: %v", err)
			}
			if !reflect.DeepEqual(z, z2) {
				t.Fatalf("zone map round trip diverged:\n first %+v\nsecond %+v", z, z2)
			}
		}
	})
}

// TestFuzzSeedsAsRegressions runs every seed through both decoders even
// when fuzzing is off, so `go test` alone exercises the corpus.
func TestFuzzSeedsAsRegressions(t *testing.T) {
	valid := 0
	for _, s := range fuzzIndexSeeds() {
		if _, err := decodeIndex(s); err == nil {
			valid++
		}
		_, _ = decodeZoneMap(s)
	}
	if valid == 0 {
		t.Fatal("no seed decodes — the valid seeds are broken")
	}
}
