// Package query is the survey-scale query engine over the record store:
// per-segment zone maps and secondary indexes persisted as sidecar files
// next to the segments they describe, and a scan planner that answers a
// predicate by pruning segments whose zone map cannot match, seeking
// directly to indexed frames where a posting list applies, and falling
// back to a bounded-parallel full scan for everything else.
//
// Sidecars are derived, disposable artifacts: each one records the id and
// content fingerprint of the segment it was built from, so a stale,
// foreign, or corrupted sidecar is detected and ignored (or rebuilt) —
// never trusted. Every pruned or seeked record is re-checked against the
// predicate before it is emitted, so the engine can be wrong only by
// doing extra work, not by returning extra (or missing) rows.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/survey"
)

// Pred is a conjunction of per-record conditions. The zero value matches
// every record.
type Pred struct {
	Registrar string // exact registrar match; "" = any
	Country   string // canonical country name; "" = any
	Year      int    // exact creation year (0 = unknown year); gated by HasYear
	HasYear   bool
	// YearTo turns the year condition into an inclusive range
	// [Year, YearTo] ("year=2012..2014"). 0 = exact-year semantics.
	// Only ever set alongside HasYear, with 1 <= Year <= YearTo.
	YearTo int
	Since  int // CreatedYear >= Since; 0 = any
}

// IsEmpty reports whether the predicate matches every record.
func (p Pred) IsEmpty() bool { return p == Pred{} }

// Match reports whether one record's facts satisfy the predicate. This
// is the ground truth the planner's pruning must agree with: every
// candidate an index seek produces is re-checked here before emission.
func (p Pred) Match(f *survey.Facts) bool {
	if p.Registrar != "" && f.Registrar != p.Registrar {
		return false
	}
	if p.Country != "" && f.Country != p.Country {
		return false
	}
	if p.HasYear {
		if p.YearTo > 0 {
			if f.CreatedYear < p.Year || f.CreatedYear > p.YearTo {
				return false
			}
		} else if f.CreatedYear != p.Year {
			return false
		}
	}
	if p.Since > 0 && f.CreatedYear < p.Since {
		return false
	}
	return true
}

// String renders the predicate in ParsePred's syntax.
func (p Pred) String() string {
	var parts []string
	if p.Registrar != "" {
		parts = append(parts, "registrar="+p.Registrar)
	}
	if p.Country != "" {
		parts = append(parts, "country="+p.Country)
	}
	if p.HasYear {
		if p.YearTo > 0 {
			parts = append(parts, "year="+strconv.Itoa(p.Year)+".."+strconv.Itoa(p.YearTo))
		} else {
			parts = append(parts, "year="+strconv.Itoa(p.Year))
		}
	}
	if p.Since > 0 {
		parts = append(parts, "since="+strconv.Itoa(p.Since))
	}
	if len(parts) == 0 {
		return "(all)"
	}
	return strings.Join(parts, ",")
}

// ParsePred parses the -where syntax: comma-separated key=value pairs,
// keys being registrar, country, year, and since. year accepts either an
// exact year ("year=2014") or an inclusive range ("year=2012..2014").
// A comma inside a value
// — "registrar=GoDaddy.com, LLC" — is handled by joining any chunk
// without '=' onto the previous value. Country values are canonicalized
// ("US" → "United States"); values that don't canonicalize are kept
// verbatim so raw stored values stay queryable.
func ParsePred(s string) (Pred, error) {
	var p Pred
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	chunks := strings.Split(s, ",")
	pairs := chunks[:0]
	for _, c := range chunks {
		if strings.Contains(c, "=") || len(pairs) == 0 {
			pairs = append(pairs, c)
		} else {
			pairs[len(pairs)-1] += "," + c
		}
	}
	for _, pair := range pairs {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return Pred{}, fmt.Errorf("query: %q is not key=value", strings.TrimSpace(pair))
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		if v == "" {
			return Pred{}, fmt.Errorf("query: empty value for %q", k)
		}
		switch k {
		case "registrar":
			if p.Registrar != "" {
				return Pred{}, fmt.Errorf("query: duplicate key %q", k)
			}
			p.Registrar = v
		case "country":
			if p.Country != "" {
				return Pred{}, fmt.Errorf("query: duplicate key %q", k)
			}
			if c := survey.CanonicalCountry(v); c != "" {
				v = c
			}
			p.Country = v
		case "year":
			if p.HasYear {
				return Pred{}, fmt.Errorf("query: duplicate key %q", k)
			}
			if lo, hi, ok := strings.Cut(v, ".."); ok {
				nlo, errLo := strconv.Atoi(strings.TrimSpace(lo))
				nhi, errHi := strconv.Atoi(strings.TrimSpace(hi))
				// Range years start at 1: year=0 means "no parseable
				// year", which a range cannot meaningfully include.
				if errLo != nil || errHi != nil || nlo < 1 || nhi > 9999 || nlo > nhi {
					return Pred{}, fmt.Errorf("query: bad year range %q", v)
				}
				p.Year, p.YearTo, p.HasYear = nlo, nhi, true
				break
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 || n > 9999 {
				return Pred{}, fmt.Errorf("query: bad year %q", v)
			}
			p.Year, p.HasYear = n, true
		case "since":
			if p.Since > 0 {
				return Pred{}, fmt.Errorf("query: duplicate key %q", k)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 9999 {
				return Pred{}, fmt.Errorf("query: bad since year %q", v)
			}
			p.Since = n
		default:
			return Pred{}, fmt.Errorf("query: unknown key %q (want registrar, country, year, since)", k)
		}
	}
	return p, nil
}
