package query

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/survey"
)

var (
	testRegistrars = []string{
		"GoDaddy.com, LLC", "eNom", "Tucows Domains Inc.", "HiChina Zhicheng",
		"Network Solutions", "1&1 Internet", "PDR Ltd.", "",
	}
	testCountries = []string{
		"United States", "China", "Germany", "United Kingdom", "Japan", "",
	}
)

// rareRegistrar appears in a handful of records only — the selective
// predicate zone maps should prune almost every segment for.
const rareRegistrar = "Sparse Registrations Pty"

// genRecord derives a deterministic pseudo-random record from rng.
func genRecord(i int, rng *rand.Rand) *store.Record {
	domain := "host" + strconv.Itoa(i) + ".example"
	year := 0
	if rng.Intn(10) > 0 { // ~10% unknown year
		year = 1996 + rng.Intn(20)
	}
	f := survey.Facts{
		Domain:      domain,
		Registrar:   testRegistrars[rng.Intn(len(testRegistrars))],
		Country:     testCountries[rng.Intn(len(testCountries))],
		CreatedYear: year,
		Privacy:     rng.Intn(7) == 0,
		Blacklisted: rng.Intn(13) == 0,
		Org:         "Org " + strconv.Itoa(rng.Intn(5)),
	}
	if f.Privacy {
		f.PrivacySvc = "WhoisGuard"
		f.Country = ""
	}
	return &store.Record{Domain: domain, Facts: f}
}

// buildTestStore writes n pseudo-random records across many small
// segments, salting in a few rareRegistrar rows, and optionally
// compresses the sealed segments so postings exercise Idx > 0.
func buildTestStore(tb testing.TB, dir string, n int, seed int64, compress bool) *store.Store {
	return buildTestStoreSized(tb, dir, n, seed, compress, 4<<10)
}

func buildTestStoreSized(tb testing.TB, dir string, n int, seed int64, compress bool, segmentBytes int64) *store.Store {
	tb.Helper()
	st, err := store.Open(dir, store.Options{
		SegmentBytes: segmentBytes,
		BlockRecords: 5,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		rec := genRecord(i, rng)
		if i == n/2 || i == n-2 { // rare registrar: two rows, one segment-ish
			rec.Facts.Registrar = rareRegistrar
			rec.Facts.Country = "Australia"
			rec.Facts.CreatedYear = 2014
		}
		if err := st.Append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if compress {
		if _, err := st.CompressSealed(); err != nil {
			tb.Fatal(err)
		}
	}
	return st
}

func envInt(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// renderSurvey flattens every table the survey produces into one string,
// so two surveys can be compared byte for byte.
func renderSurvey(sv *survey.Survey) string {
	var b strings.Builder
	t3a, t3b := sv.Table3()
	b.WriteString(survey.RenderRows("Table 3 (all)", t3a))
	b.WriteString(survey.RenderRows("Table 3 (2014)", t3b))
	t5a, t5b := sv.Table5()
	b.WriteString(survey.RenderRows("Table 5 (all)", t5a))
	b.WriteString(survey.RenderRows("Table 5 (2014)", t5b))
	b.WriteString(survey.RenderRows("Table 6", sv.Table6()))
	b.WriteString(survey.RenderRows("Table 7", sv.Table7()))
	b.WriteString(survey.RenderRows("Table 8", sv.Table8()))
	b.WriteString(survey.RenderRows("Table 9", sv.Table9()))
	b.WriteString(survey.RenderHistogram("Figure 4a", sv.Figure4a()))
	return b.String()
}

// differentialPreds is every predicate shape the planner supports.
func differentialPreds() []Pred {
	return []Pred{
		{},
		{Registrar: "eNom"},
		{Registrar: rareRegistrar},
		{Registrar: "No Such Registrar"},
		{Registrar: ""}, // empty = unset: matches all
		{Country: "China"},
		{Country: "Australia"},
		{Country: "Atlantis"},
		{Year: 2014, HasYear: true},
		{Year: 0, HasYear: true}, // unknown creation year
		{Year: 1890, HasYear: true},
		{Year: 2010, YearTo: 2014, HasYear: true},
		{Year: 2012, YearTo: 2012, HasYear: true}, // degenerate range
		{Year: 1890, YearTo: 1900, HasYear: true}, // empty range
		{Year: 1, YearTo: 9999, HasYear: true},    // everything with a year
		{Since: 2010},
		{Since: 2031},
		{Registrar: "eNom", Country: "United States"},
		{Registrar: rareRegistrar, Country: "Australia"},
		{Registrar: rareRegistrar, Country: "China"},
		{Country: "Germany", Year: 2005, HasYear: true},
		{Country: "Japan", Since: 2008},
		{Registrar: "Tucows Domains Inc.", Since: 2000, Country: "United Kingdom"},
		{Registrar: "PDR Ltd.", Country: "China", Year: 2012, HasYear: true, Since: 2011},
		{Registrar: "eNom", Year: 2008, YearTo: 2012, HasYear: true},
		{Country: "United States", Year: 2000, YearTo: 2010, HasYear: true, Since: 2005},
	}
}

// diffOne runs p through the planner and the brute-force reference and
// fails unless the matched record streams and the rendered surveys are
// byte-identical.
func diffOne(t *testing.T, e *Engine, p Pred) Stats {
	t.Helper()
	var got, want []string
	gotSv, wantSv := &survey.Survey{}, &survey.Survey{}
	stats, err := e.Scan(p, func(rec *store.Record) error {
		got = append(got, rec.Domain)
		gotSv.Add(rec.Facts)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan(%s): %v", p, err)
	}
	err = e.FullScan(p, func(rec *store.Record) error {
		want = append(want, rec.Domain)
		wantSv.Add(rec.Facts)
		return nil
	})
	if err != nil {
		t.Fatalf("FullScan(%s): %v", p, err)
	}
	if g, w := strings.Join(got, "\n"), strings.Join(want, "\n"); g != w {
		t.Fatalf("Scan(%s) diverged from full scan:\n planner %d rows\n reference %d rows", p, len(got), len(want))
	}
	if renderSurvey(gotSv) != renderSurvey(wantSv) {
		t.Fatalf("Scan(%s): surveys render differently", p)
	}
	if stats.Matched != uint64(len(got)) {
		t.Fatalf("Scan(%s): stats.Matched = %d, emitted %d", p, stats.Matched, len(got))
	}
	return stats
}

// TestQueryDifferential is the CI gate: every supported predicate, over
// a plain and a compressed store, through both executors — byte-identical
// or fail. QUERYDIFF_N / QUERYDIFF_SEED widen the randomized corpus.
func TestQueryDifferential(t *testing.T) {
	n := int(envInt("QUERYDIFF_N", 900))
	seed := envInt("QUERYDIFF_SEED", 1)
	t.Logf("differential corpus: QUERYDIFF_N=%d QUERYDIFF_SEED=%d", n, seed)
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			st := buildTestStore(t, t.TempDir(), n, seed, compress)
			defer st.Close()
			e := New(st, Options{Metrics: obs.NewRegistry()})
			if _, err := e.BuildAll(); err != nil {
				t.Fatal(err)
			}
			seeked := 0
			for _, p := range differentialPreds() {
				stats := diffOne(t, e, p)
				seeked += stats.IndexSeeked
			}
			if seeked == 0 {
				t.Fatal("no predicate ever used the index — the differential exercised nothing")
			}
		})
	}
}

// corruptions are the sidecar failure modes the planner must absorb:
// identical answers, degraded plan.
var corruptions = []struct {
	name  string
	wreck func(t *testing.T, dir string, id uint64)
}{
	{"flipped-idx", func(t *testing.T, dir string, id uint64) {
		flipByte(t, IndexPath(dir, id), -20)
	}},
	{"flipped-zm", func(t *testing.T, dir string, id uint64) {
		flipByte(t, ZonePath(dir, id), 7)
	}},
	{"truncated-idx", func(t *testing.T, dir string, id uint64) {
		data, err := os.ReadFile(IndexPath(dir, id))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(IndexPath(dir, id), data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"missing", func(t *testing.T, dir string, id uint64) {
		if err := os.Remove(ZonePath(dir, id)); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(IndexPath(dir, id)); err != nil {
			t.Fatal(err)
		}
	}},
	{"stale-foreign", func(t *testing.T, dir string, id uint64) {
		// A sidecar copied from a different segment: valid envelope,
		// wrong identity.
		other := id + 1
		for _, cp := range [][2]string{
			{ZonePath(dir, other), ZonePath(dir, id)},
			{IndexPath(dir, other), IndexPath(dir, id)},
		} {
			data, err := os.ReadFile(cp[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(cp[1], data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}},
}

func flipByte(t *testing.T, path string, pos int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pos < 0 {
		pos = len(data) + pos
	}
	data[pos] ^= 0x5a
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQueryDifferentialCorruptSidecars: a NoRebuild engine over wrecked
// sidecars must return exactly the full-scan answer and report the
// degradation in its stats — never a wrong row, never a crash.
func TestQueryDifferentialCorruptSidecars(t *testing.T) {
	n := int(envInt("QUERYDIFF_N", 900))
	seed := envInt("QUERYDIFF_SEED", 1)
	t.Logf("differential corpus: QUERYDIFF_N=%d QUERYDIFF_SEED=%d", n, seed)
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			st := buildTestStore(t, t.TempDir(), n, seed, true)
			defer st.Close()
			e := New(st, Options{NoRebuild: true, Metrics: obs.NewRegistry()})
			if _, err := e.BuildAll(); err != nil {
				t.Fatal(err)
			}
			infos := st.SegmentInfos()
			if len(infos) < 3 {
				t.Fatalf("need >= 3 segments, got %d", len(infos))
			}
			c.wreck(t, st.Dir(), infos[0].ID)

			fallbacks := 0
			for _, p := range differentialPreds() {
				stats := diffOne(t, e, p)
				fallbacks += stats.Fallbacks
				if stats.Rebuilt != 0 {
					t.Fatalf("NoRebuild engine rebuilt sidecars on %s", p)
				}
			}
			if fallbacks == 0 {
				t.Fatal("no fallback recorded — the corruption was never hit")
			}
			// NoRebuild must not have healed the wreckage behind our back.
			if c.name == "missing" {
				if _, err := os.Stat(ZonePath(st.Dir(), infos[0].ID)); !os.IsNotExist(err) {
					t.Fatal("NoRebuild engine recreated a sidecar")
				}
			}
		})
	}
}

// TestQueryRebuildsStaleSidecars: the default engine self-heals — a
// wrecked sidecar is rebuilt in-line and the files come back fresh.
func TestQueryRebuildsStaleSidecars(t *testing.T) {
	st := buildTestStore(t, t.TempDir(), 400, 3, false)
	defer st.Close()
	e := New(st, Options{Metrics: obs.NewRegistry()})
	if _, err := e.BuildAll(); err != nil {
		t.Fatal(err)
	}
	infos := st.SegmentInfos()
	flipByte(t, IndexPath(st.Dir(), infos[0].ID), -15)

	p := Pred{Registrar: "eNom"}
	stats := diffOne(t, e, p)
	if stats.Rebuilt == 0 {
		t.Fatalf("expected an in-line rebuild, stats: %s", stats)
	}
	if _, err := LoadIndex(IndexPath(st.Dir(), infos[0].ID)); err != nil {
		t.Fatalf("sidecar not healed: %v", err)
	}
	// Second query runs entirely off the healed sidecars.
	stats = diffOne(t, e, p)
	if stats.Rebuilt != 0 || stats.Fallbacks != 0 {
		t.Fatalf("second query still degraded: %s", stats)
	}
}

// TestZoneMapPruning: a predicate matching one segment's worth of rows
// must skip (not scan) the segments that cannot hold it.
func TestZoneMapPruning(t *testing.T) {
	st := buildTestStore(t, t.TempDir(), 900, 2, false)
	defer st.Close()
	e := New(st, Options{Metrics: obs.NewRegistry()})
	if _, err := e.BuildAll(); err != nil {
		t.Fatal(err)
	}
	stats := diffOne(t, e, Pred{Registrar: rareRegistrar})
	if stats.Pruned == 0 {
		t.Fatalf("selective predicate pruned nothing: %s", stats)
	}
	if stats.RecordsRead >= 900/2 {
		t.Fatalf("selective predicate read %d records", stats.RecordsRead)
	}
	// An impossible year prunes every sealed segment.
	stats = diffOne(t, e, Pred{Year: 1890, HasYear: true})
	if stats.Pruned < stats.Segments-2 {
		t.Fatalf("year=1890 should prune nearly all segments: %s", stats)
	}
}

// TestAutoBuild: the seal hook derives sidecars in the background as
// segments rotate.
func TestAutoBuild(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{SegmentBytes: 4 << 10, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e := New(st, Options{Metrics: obs.NewRegistry()})
	e.AutoBuild()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		if err := st.Append(genRecord(i, rng)); err != nil {
			t.Fatal(err)
		}
	}
	infos := st.SegmentInfos()
	if len(infos) < 2 {
		t.Fatal("no rotation happened")
	}
	// The hook runs in background goroutines; poll briefly.
	firstZM := ZonePath(dir, infos[0].ID)
	deadline := 200
	for ; deadline > 0; deadline-- {
		if _, err := os.Stat(firstZM); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatalf("sidecar %s never appeared", firstZM)
	}
	if _, err := LoadZoneMap(firstZM); err != nil {
		t.Fatalf("auto-built zone map invalid: %v", err)
	}
}

// TestBuildAllRemovesOrphans: sidecars for segments compaction dropped
// are cleaned up.
func TestBuildAllRemovesOrphans(t *testing.T) {
	st := buildTestStore(t, t.TempDir(), 400, 5, false)
	defer st.Close()
	e := New(st, Options{Metrics: obs.NewRegistry()})
	if _, err := e.BuildAll(); err != nil {
		t.Fatal(err)
	}
	before, _ := filepath.Glob(filepath.Join(st.Dir(), "*.zm"))
	if len(before) < 2 {
		t.Fatalf("expected several zone maps, got %d", len(before))
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildAll(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(st.Dir(), "*.zm"))
	// Compaction merged everything into segment 1; only its sidecar (and
	// no orphan) should remain.
	if len(after) != 1 {
		t.Fatalf("after compaction: %d zone maps remain (%v)", len(after), after)
	}
	// And the surviving sidecar answers queries.
	stats := diffOne(t, New(st, Options{NoRebuild: true, Metrics: obs.NewRegistry()}), Pred{Registrar: rareRegistrar})
	if stats.Fallbacks != 0 {
		t.Fatalf("post-compaction sidecars not fresh: %s", stats)
	}
}

// TestEngineSurvey: the survey built from a predicate equals the survey
// of the brute-force matches.
func TestEngineSurvey(t *testing.T) {
	st := buildTestStore(t, t.TempDir(), 600, 7, true)
	defer st.Close()
	e := New(st, Options{Metrics: obs.NewRegistry()})
	if _, err := e.BuildAll(); err != nil {
		t.Fatal(err)
	}
	p := Pred{Since: 2005}
	sv, stats, err := e.Survey(p)
	if err != nil {
		t.Fatal(err)
	}
	want := &survey.Survey{}
	if err := e.FullScan(p, func(rec *store.Record) error {
		want.Add(rec.Facts)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sv.Len() != want.Len() || renderSurvey(sv) != renderSurvey(want) {
		t.Fatalf("Survey diverged: %d vs %d rows (stats %s)", sv.Len(), want.Len(), stats)
	}
}

// TestSidecarRoundTrip: the codecs are exact mirrors.
func TestSidecarRoundTrip(t *testing.T) {
	z := &ZoneMap{
		SegID: 7, Fingerprint: 0xdeadbeef, Records: 123,
		MinYear: 1998, MaxYear: 2015, YearZero: true,
		Registrars: []string{"", "a", "b"}, Countries: []string{"China", "United States"},
		CountryOverflow: true,
	}
	z2, err := decodeZoneMap(encodeZoneMap(z))
	if err != nil {
		t.Fatal(err)
	}
	if z2.SegID != z.SegID || z2.Fingerprint != z.Fingerprint || z2.Records != z.Records ||
		z2.MinYear != z.MinYear || z2.MaxYear != z.MaxYear || z2.YearZero != z.YearZero ||
		!z2.CountryOverflow || z2.RegOverflow ||
		strings.Join(z2.Registrars, "|") != "|a|b" || strings.Join(z2.Countries, "|") != "China|United States" {
		t.Fatalf("zone map round trip: %+v", z2)
	}

	x := &Index{
		SegID: 7, Fingerprint: 0xdeadbeef, Records: 123,
		Registrar: map[string][]Posting{
			"":     {{Off: 5, Idx: 0}},
			"eNom": {{Off: 5, Idx: 1}, {Off: 900, Idx: 0}},
		},
		Country: map[string][]Posting{"China": {{Off: 5, Idx: 0}, {Off: 5, Idx: 1}, {Off: 900, Idx: 0}}},
		Year:    nil, // overflowed section survives as nil
	}
	x2, err := decodeIndex(encodeIndex(x))
	if err != nil {
		t.Fatal(err)
	}
	if x2.Year != nil {
		t.Fatal("overflowed year section decoded non-nil")
	}
	if len(x2.Registrar) != 2 || len(x2.Registrar["eNom"]) != 2 || x2.Registrar["eNom"][1] != (Posting{Off: 900, Idx: 0}) {
		t.Fatalf("index round trip: %+v", x2.Registrar)
	}
	if len(x2.Country["China"]) != 3 || x2.Country["China"][1] != (Posting{Off: 5, Idx: 1}) {
		t.Fatalf("index round trip: %+v", x2.Country)
	}
}

func TestIntersectPostings(t *testing.T) {
	a := []Posting{{5, 0}, {5, 1}, {90, 0}, {200, 3}}
	b := []Posting{{5, 1}, {90, 0}, {90, 1}, {201, 0}}
	got := intersectPostings(a, b)
	want := []Posting{{5, 1}, {90, 0}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if out := intersectPostings(a, nil); len(out) != 0 {
		t.Fatalf("intersect with empty = %v", out)
	}
}
