package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Sidecar formats. Both files share the envelope
//
//	magic[4] version[1] <body> crc32c[4]
//
// where the trailing CRC32C covers everything before it. Bodies are
// uvarint/length-prefixed, bounds-checked on decode: a sidecar is
// untrusted input (it can be stale, truncated, or hand-edited), and the
// worst a bad one may cause is a fall back to a full scan.
//
// Zone map (.zm) body:
//
//	segID uvarint, fingerprint LE32, records uvarint, flags byte,
//	minYear uvarint, maxYear uvarint,
//	registrars: count uvarint then len-prefixed strings (sorted),
//	countries:  count uvarint then len-prefixed strings (sorted)
//
// Index (.idx) body:
//
//	segID uvarint, fingerprint LE32, records uvarint, flags byte,
//	registrar section, country section (sorted string keys),
//	year section (ascending uvarint keys);
//	each key carries a posting list: count uvarint, then per posting
//	uvarint(Off - prevOff) and uvarint(Idx), sorted by (Off, Idx)
var (
	zoneMagic  = [4]byte{'W', 'Z', 'M', '1'}
	indexMagic = [4]byte{'W', 'I', 'X', '1'}
)

const (
	sidecarVersion = 1

	// maxZoneKeys caps the distinct registrar/country sets a zone map
	// tracks; past it the dimension is marked overflowed and cannot
	// prune (correct, just less effective).
	maxZoneKeys = 256
	// maxIndexKeys caps the keys per index section; past it the section
	// is dropped and queries on that dimension scan the segment.
	maxIndexKeys = 4096
	// maxSidecarBytes rejects absurd sidecar files before reading them
	// into memory.
	maxSidecarBytes = 64 << 20
)

// ErrBadSidecar covers every way a sidecar file can fail validation:
// wrong magic, version, checksum, or malformed body. Callers treat it
// exactly like a missing sidecar.
var ErrBadSidecar = errors.New("query: malformed sidecar")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Zone-map flag bits.
const (
	zfRegOverflow     = 1 << 0
	zfCountryOverflow = 1 << 1
	zfYearZero        = 1 << 2 // some record has no parseable creation year
)

// Index flag bits.
const (
	xfRegOverflow     = 1 << 0
	xfCountryOverflow = 1 << 1
	xfYearOverflow    = 1 << 2
)

// ZoneMap summarizes one sealed segment for pruning: the distinct
// registrar and country sets (capped; overflow disables that dimension)
// and the creation-year range. A query whose predicate cannot match the
// summary skips the segment without touching it.
type ZoneMap struct {
	SegID       uint64
	Fingerprint uint32
	Records     uint64

	MinYear, MaxYear int  // over records with a parsed year; 0,0 = none
	YearZero         bool // at least one record has CreatedYear == 0

	Registrars      []string // sorted; complete unless RegOverflow
	Countries       []string // sorted; complete unless CountryOverflow
	RegOverflow     bool
	CountryOverflow bool
}

// MayMatch reports whether any record of the summarized segment could
// satisfy p. False positives cost a scan; false negatives would lose
// rows, so every rule here must be conservative.
func (z *ZoneMap) MayMatch(p Pred) bool {
	if z.Records == 0 {
		return false
	}
	if p.Registrar != "" && !z.RegOverflow && !containsSorted(z.Registrars, p.Registrar) {
		return false
	}
	if p.Country != "" && !z.CountryOverflow && !containsSorted(z.Countries, p.Country) {
		return false
	}
	if p.HasYear {
		switch {
		case p.YearTo > 0:
			// Range [Year, YearTo]: prune only when it cannot overlap the
			// segment's [MinYear, MaxYear] (ranges never match year-0
			// records, so YearZero does not keep the segment alive).
			if z.MaxYear == 0 || p.YearTo < z.MinYear || p.Year > z.MaxYear {
				return false
			}
		case p.Year == 0:
			if !z.YearZero {
				return false
			}
		default:
			if z.MaxYear == 0 || p.Year < z.MinYear || p.Year > z.MaxYear {
				return false
			}
		}
	}
	if p.Since > 0 && z.MaxYear < p.Since {
		return false
	}
	return true
}

func containsSorted(ss []string, s string) bool {
	i := sort.SearchStrings(ss, s)
	return i < len(ss) && ss[i] == s
}

// Posting locates one record: the byte offset of its frame within the
// segment and its index among the frame's records (always 0 for a plain
// frame, 0..n-1 inside a compressed block).
type Posting struct {
	Off int64
	Idx int
}

func postingLess(a, b Posting) bool {
	return a.Off < b.Off || (a.Off == b.Off && a.Idx < b.Idx)
}

// Index maps registrar, country, and creation-year values to the
// postings of the records carrying them. A nil section means that
// dimension overflowed maxIndexKeys at build time and cannot seek.
type Index struct {
	SegID       uint64
	Fingerprint uint32
	Records     uint64

	Registrar map[string][]Posting
	Country   map[string][]Posting
	Year      map[int][]Posting
}

// ZonePath and IndexPath name the sidecars for segment id inside the
// store directory, mirroring the %08d.seg naming of the segments.
func ZonePath(dir string, segID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.zm", segID))
}

// IndexPath returns the secondary-index sidecar path for segment id.
func IndexPath(dir string, segID uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.idx", segID))
}

// sidecarWriter builds a sidecar body.
type sidecarWriter struct{ b []byte }

func (w *sidecarWriter) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *sidecarWriter) u32(v uint32)     { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *sidecarWriter) byte(v byte)      { w.b = append(w.b, v) }
func (w *sidecarWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// finish appends the trailing CRC and returns the complete file bytes.
func (w *sidecarWriter) finish() []byte {
	return binary.LittleEndian.AppendUint32(w.b, crc32.Checksum(w.b, castagnoli))
}

// sidecarReader decodes a sidecar body without ever over-reading: each
// primitive validates against the remaining bytes and latches bad.
type sidecarReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *sidecarReader) fail() { r.bad = true }

func (r *sidecarReader) remaining() int { return len(r.b) - r.pos }

func (r *sidecarReader) byte() byte {
	if r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *sidecarReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *sidecarReader) u32() uint32 {
	if r.remaining() < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *sidecarReader) str() string {
	n := r.uvarint()
	if r.bad || n > uint64(r.remaining()) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// checkEnvelope validates magic, version, and trailing CRC, returning
// the body bytes.
func checkEnvelope(data []byte, magic [4]byte) ([]byte, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: short file", ErrBadSidecar)
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSidecar)
	}
	if data[4] != sidecarVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSidecar, data[4])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSidecar)
	}
	return body[5:], nil
}

// encodeZoneMap serializes z (sets are sorted in place).
func encodeZoneMap(z *ZoneMap) []byte {
	w := &sidecarWriter{}
	w.b = append(w.b, zoneMagic[:]...)
	w.byte(sidecarVersion)
	w.uvarint(z.SegID)
	w.u32(z.Fingerprint)
	w.uvarint(z.Records)
	var flags byte
	if z.RegOverflow {
		flags |= zfRegOverflow
	}
	if z.CountryOverflow {
		flags |= zfCountryOverflow
	}
	if z.YearZero {
		flags |= zfYearZero
	}
	w.byte(flags)
	w.uvarint(uint64(z.MinYear))
	w.uvarint(uint64(z.MaxYear))
	sort.Strings(z.Registrars)
	sort.Strings(z.Countries)
	for _, set := range [][]string{z.Registrars, z.Countries} {
		w.uvarint(uint64(len(set)))
		for _, s := range set {
			w.str(s)
		}
	}
	return w.finish()
}

func decodeZoneMap(data []byte) (*ZoneMap, error) {
	body, err := checkEnvelope(data, zoneMagic)
	if err != nil {
		return nil, err
	}
	r := &sidecarReader{b: body}
	z := &ZoneMap{}
	z.SegID = r.uvarint()
	z.Fingerprint = r.u32()
	z.Records = r.uvarint()
	flags := r.byte()
	z.RegOverflow = flags&zfRegOverflow != 0
	z.CountryOverflow = flags&zfCountryOverflow != 0
	z.YearZero = flags&zfYearZero != 0
	minY, maxY := r.uvarint(), r.uvarint()
	if r.bad || minY > 9999 || maxY > 9999 || minY > maxY {
		return nil, fmt.Errorf("%w: year range", ErrBadSidecar)
	}
	z.MinYear, z.MaxYear = int(minY), int(maxY)
	for _, dst := range []*[]string{&z.Registrars, &z.Countries} {
		n := r.uvarint()
		if r.bad || n > maxZoneKeys || n > uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: key set", ErrBadSidecar)
		}
		set := make([]string, 0, n)
		prev := ""
		for i := uint64(0); i < n; i++ {
			s := r.str()
			if r.bad || (i > 0 && s <= prev) {
				return nil, fmt.Errorf("%w: key set order", ErrBadSidecar)
			}
			set = append(set, s)
			prev = s
		}
		*dst = set
	}
	if r.bad || r.remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadSidecar)
	}
	return z, nil
}

func writePostings(w *sidecarWriter, ps []Posting) {
	w.uvarint(uint64(len(ps)))
	var prev int64
	for _, p := range ps {
		w.uvarint(uint64(p.Off - prev))
		w.uvarint(uint64(p.Idx))
		prev = p.Off
	}
}

func readPostings(r *sidecarReader) ([]Posting, error) {
	n := r.uvarint()
	// Each posting costs at least two bytes on the wire.
	if r.bad || n > uint64(r.remaining()/2)+1 {
		return nil, fmt.Errorf("%w: posting count", ErrBadSidecar)
	}
	ps := make([]Posting, 0, n)
	var prev Posting
	for i := uint64(0); i < n; i++ {
		d, idx := r.uvarint(), r.uvarint()
		if r.bad || d > 1<<40 || idx > 1<<24 {
			return nil, fmt.Errorf("%w: posting", ErrBadSidecar)
		}
		p := Posting{Off: prev.Off + int64(d), Idx: int(idx)}
		if i > 0 && !postingLess(prev, p) {
			return nil, fmt.Errorf("%w: posting order", ErrBadSidecar)
		}
		ps = append(ps, p)
		prev = p
	}
	return ps, nil
}

// encodeIndex serializes x with deterministic key order.
func encodeIndex(x *Index) []byte {
	w := &sidecarWriter{}
	w.b = append(w.b, indexMagic[:]...)
	w.byte(sidecarVersion)
	w.uvarint(x.SegID)
	w.u32(x.Fingerprint)
	w.uvarint(x.Records)
	var flags byte
	if x.Registrar == nil {
		flags |= xfRegOverflow
	}
	if x.Country == nil {
		flags |= xfCountryOverflow
	}
	if x.Year == nil {
		flags |= xfYearOverflow
	}
	w.byte(flags)
	for _, m := range []map[string][]Posting{x.Registrar, x.Country} {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
			writePostings(w, m[k])
		}
	}
	years := make([]int, 0, len(x.Year))
	for y := range x.Year {
		years = append(years, y)
	}
	sort.Ints(years)
	w.uvarint(uint64(len(years)))
	for _, y := range years {
		w.uvarint(uint64(y))
		writePostings(w, x.Year[y])
	}
	return w.finish()
}

func decodeIndex(data []byte) (*Index, error) {
	body, err := checkEnvelope(data, indexMagic)
	if err != nil {
		return nil, err
	}
	r := &sidecarReader{b: body}
	x := &Index{}
	x.SegID = r.uvarint()
	x.Fingerprint = r.u32()
	x.Records = r.uvarint()
	flags := r.byte()
	if r.bad {
		return nil, fmt.Errorf("%w: header", ErrBadSidecar)
	}
	for i, overflowed := range []bool{flags&xfRegOverflow != 0, flags&xfCountryOverflow != 0} {
		n := r.uvarint()
		if r.bad || n > maxIndexKeys || n > uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: section size", ErrBadSidecar)
		}
		if overflowed && n != 0 {
			return nil, fmt.Errorf("%w: overflowed section with keys", ErrBadSidecar)
		}
		var m map[string][]Posting
		if !overflowed {
			m = make(map[string][]Posting, n)
		}
		prev := ""
		for j := uint64(0); j < n; j++ {
			k := r.str()
			if r.bad || (j > 0 && k <= prev) {
				return nil, fmt.Errorf("%w: key order", ErrBadSidecar)
			}
			ps, err := readPostings(r)
			if err != nil {
				return nil, err
			}
			m[k] = ps
			prev = k
		}
		if i == 0 {
			x.Registrar = m
		} else {
			x.Country = m
		}
	}
	n := r.uvarint()
	if r.bad || n > maxIndexKeys || n > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: year section size", ErrBadSidecar)
	}
	if flags&xfYearOverflow != 0 {
		if n != 0 {
			return nil, fmt.Errorf("%w: overflowed section with keys", ErrBadSidecar)
		}
	} else {
		x.Year = make(map[int][]Posting, n)
	}
	prevYear := int64(-1)
	for j := uint64(0); j < n; j++ {
		y := r.uvarint()
		if r.bad || y > 9999 || int64(y) <= prevYear {
			return nil, fmt.Errorf("%w: year key", ErrBadSidecar)
		}
		ps, err := readPostings(r)
		if err != nil {
			return nil, err
		}
		x.Year[int(y)] = ps
		prevYear = int64(y)
	}
	if r.bad || r.remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadSidecar)
	}
	return x, nil
}

// loadSidecar reads and size-caps one sidecar file. A missing file is
// reported as os.ErrNotExist (callers distinguish "never built" from
// "built but bad").
func loadSidecar(path string) ([]byte, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > maxSidecarBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSidecar, fi.Size())
	}
	return os.ReadFile(path)
}

// LoadZoneMap reads and validates the zone map at path.
func LoadZoneMap(path string) (*ZoneMap, error) {
	data, err := loadSidecar(path)
	if err != nil {
		return nil, err
	}
	return decodeZoneMap(data)
}

// LoadIndex reads and validates the index at path.
func LoadIndex(path string) (*Index, error) {
	data, err := loadSidecar(path)
	if err != nil {
		return nil, err
	}
	return decodeIndex(data)
}

// writeFileAtomic writes data via temp file + rename so a crash never
// leaves a torn sidecar where a good (or no) one stood.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("query: write sidecar: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("query: write sidecar: %w", err)
	}
	return nil
}
