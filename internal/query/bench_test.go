package query

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

// benchStore builds the benchmark corpus: ~16 segments of ~1000
// pseudo-random records with two rareRegistrar rows, sidecars built —
// the shape where pruning should dominate.
func benchStore(b *testing.B) (*store.Store, *Engine) {
	b.Helper()
	st := buildTestStoreSized(b, b.TempDir(), 16384, 1, false, 160<<10)
	e := New(st, Options{Metrics: obs.NewRegistry()})
	if _, err := e.BuildAll(); err != nil {
		b.Fatal(err)
	}
	return st, e
}

// benchPred is the selective predicate of the benchcheck ratio gate:
// present in two records, absent from every other segment's zone map.
var benchPred = Pred{Registrar: rareRegistrar, Country: "Australia"}

// BenchmarkQueryPruned measures the planner path: zone maps prune all
// but the segments actually holding the rare registrar, postings seek
// straight to its frames. benchcheck enforces a minimum ratio over
// BenchmarkQueryFullScan (see BENCH_query.json).
func BenchmarkQueryPruned(b *testing.B) {
	st, e := benchStore(b)
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		if _, err := e.Scan(benchPred, func(*store.Record) error {
			matched++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if matched != 2 {
			b.Fatalf("matched %d, want 2", matched)
		}
	}
}

// BenchmarkQueryFullScan is the same predicate through the brute-force
// reference executor: every record decoded and tested.
func BenchmarkQueryFullScan(b *testing.B) {
	st, e := benchStore(b)
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matched := 0
		if err := e.FullScan(benchPred, func(*store.Record) error {
			matched++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if matched != 2 {
			b.Fatalf("matched %d, want 2", matched)
		}
	}
}

// BenchmarkZoneMapBuild measures deriving both sidecars for one sealed
// segment — the cost AutoBuild pays in the background on every seal.
func BenchmarkZoneMapBuild(b *testing.B) {
	st, _ := benchStore(b)
	defer st.Close()
	infos := st.SegmentInfos()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := st.OpenSegment(infos[0].ID)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Build(r); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}
