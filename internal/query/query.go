package query

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/survey"
)

// Options configure an Engine.
type Options struct {
	// Workers bounds the parallel segment scans per query; <= 0 means
	// GOMAXPROCS.
	Workers int
	// NoRebuild serves a segment with a missing, stale, or corrupt
	// sidecar by full scan instead of rebuilding the sidecar first —
	// for read-only callers (and the differential gate, which must see
	// the degraded path, not a self-healed one).
	NoRebuild bool
	// Metrics receives the query.* instruments; nil uses obs.Default.
	Metrics *obs.Registry
}

// Engine answers predicates over a record store using per-segment
// sidecars for pruning and seeking. Safe for concurrent use; all
// correctness rests on the store's snapshot semantics (readers hold fds)
// plus the final Pred.Match re-check on every candidate record.
type Engine struct {
	st      *store.Store
	opts    Options
	met     engineMetrics
	buildMu sync.Mutex // serializes sidecar rebuilds

	// cache holds decoded sidecars across queries, keyed by segment id
	// and guarded by the fingerprint: every query still fingerprints the
	// live segment, so a hit can never serve a rewritten segment's stale
	// view — it only skips re-reading and re-decoding bytes that were
	// already validated against this exact fingerprint. Entries are
	// immutable once published; updates replace the whole entry.
	cacheMu sync.Mutex
	cache   map[uint64]*cacheEnt
}

type cacheEnt struct {
	fp uint32
	z  *ZoneMap
	x  *Index // nil until a query survives pruning and needs it
}

func (e *Engine) cacheGet(id uint64, fp uint32) (*ZoneMap, *Index) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if ent := e.cache[id]; ent != nil && ent.fp == fp {
		return ent.z, ent.x
	}
	return nil, nil
}

// cachePut merges z and/or x into the entry for id, keeping whichever
// halves the current same-fingerprint entry already has.
func (e *Engine) cachePut(id uint64, fp uint32, z *ZoneMap, x *Index) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if ent := e.cache[id]; ent != nil && ent.fp == fp {
		if z == nil {
			z = ent.z
		}
		if x == nil {
			x = ent.x
		}
	}
	e.cache[id] = &cacheEnt{fp: fp, z: z, x: x}
}

// cachePrune drops entries for segments compaction removed.
func (e *Engine) cachePrune(live map[uint64]bool) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	for id := range e.cache {
		if !live[id] {
			delete(e.cache, id)
		}
	}
}

type engineMetrics struct {
	queries    *obs.Counter
	seconds    *obs.Histogram
	pruned     *obs.Counter
	indexSeek  *obs.Counter
	fullScan   *obs.Counter
	rebuilds   *obs.Counter
	invalid    *obs.Counter
	fallbacks  *obs.Counter
	recordsIn  *obs.Counter
	recordsOut *obs.Counter
}

func (m *engineMetrics) register(reg *obs.Registry) {
	m.queries = reg.Counter("query.queries")
	m.seconds = reg.Histogram("query.seconds", obs.DurationBounds())
	m.pruned = reg.Counter("query.segments.pruned")
	m.indexSeek = reg.Counter("query.segments.indexseek")
	m.fullScan = reg.Counter("query.segments.fullscan")
	m.rebuilds = reg.Counter("query.sidecar.rebuilds")
	m.invalid = reg.Counter("query.sidecar.invalid")
	m.fallbacks = reg.Counter("query.fallbacks")
	m.recordsIn = reg.Counter("query.records.read")
	m.recordsOut = reg.Counter("query.records.matched")
}

// New builds an engine over st.
func New(st *store.Store, opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default
	}
	e := &Engine{st: st, opts: opts, cache: make(map[uint64]*cacheEnt)}
	e.met.register(opts.Metrics)
	return e
}

// AutoBuild hooks segment seals (rotation, compression, compaction) so
// sidecars are derived in the background the moment a segment's bytes
// stop moving. Errors are deliberately dropped: a failed build costs a
// future full scan, nothing more.
func (e *Engine) AutoBuild() {
	e.st.SetOnSeal(func(id uint64) { _, _ = e.BuildSegment(id) })
}

// BuildSegment (re)derives the sidecars for segment id unless fresh ones
// already exist. Reports whether it built, and treats a segment that was
// compacted away in the meantime as a no-op.
func (e *Engine) BuildSegment(id uint64) (bool, error) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	r, err := e.st.OpenSegment(id)
	if err != nil {
		if errors.Is(err, store.ErrSegmentCompacted) {
			return false, nil
		}
		return false, err
	}
	defer r.Close()
	info := r.Info()
	if !info.Sealed {
		return false, nil
	}
	fp, err := r.Fingerprint()
	if err != nil {
		return false, err
	}
	dir := e.st.Dir()
	if z, zerr := LoadZoneMap(ZonePath(dir, id)); zerr == nil && sidecarFresh(z.SegID, z.Fingerprint, z.Records, info, fp) {
		if x, xerr := LoadIndex(IndexPath(dir, id)); xerr == nil && sidecarFresh(x.SegID, x.Fingerprint, x.Records, info, fp) {
			return false, nil
		}
	}
	z, x, err := Build(r)
	if err != nil {
		return false, err
	}
	if err := WriteSidecars(dir, z, x); err != nil {
		return false, err
	}
	e.met.rebuilds.Inc()
	return true, nil
}

func sidecarFresh(segID uint64, fp uint32, records uint64, info store.SegmentInfo, wantFP uint32) bool {
	return segID == info.ID && fp == wantFP && records == info.Records
}

// BuildAll derives sidecars for every sealed segment that lacks fresh
// ones and removes orphaned sidecars of segments compaction dropped.
// Returns how many segments were (re)built.
func (e *Engine) BuildAll() (int, error) {
	built := 0
	live := make(map[uint64]bool)
	for _, info := range e.st.SegmentInfos() {
		live[info.ID] = true
		if !info.Sealed {
			continue
		}
		b, err := e.BuildSegment(info.ID)
		if err != nil {
			return built, err
		}
		if b {
			built++
		}
	}
	e.removeOrphans(live)
	return built, nil
}

// removeOrphans deletes sidecars whose segment no longer exists.
func (e *Engine) removeOrphans(live map[uint64]bool) {
	entries, err := os.ReadDir(e.st.Dir())
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		var base string
		switch {
		case strings.HasSuffix(name, ".zm"):
			base = strings.TrimSuffix(name, ".zm")
		case strings.HasSuffix(name, ".idx"):
			base = strings.TrimSuffix(name, ".idx")
		default:
			continue
		}
		id, err := strconv.ParseUint(base, 10, 64)
		if err != nil || live[id] {
			continue
		}
		_ = os.Remove(ZonePath(e.st.Dir(), id))
		_ = os.Remove(IndexPath(e.st.Dir(), id))
	}
}

// Stats describes how one query was executed.
type Stats struct {
	Segments    int    `json:"segments"`
	Pruned      int    `json:"pruned"`       // skipped via zone map
	IndexSeeked int    `json:"index_seeked"` // answered via postings
	FullScanned int    `json:"full_scanned"` // scanned frame by frame
	Rebuilt     int    `json:"rebuilt"`      // sidecars rebuilt in-line
	Fallbacks   int    `json:"fallbacks"`    // bad sidecar/seek → full scan
	RecordsRead uint64 `json:"records_read"`
	Matched     uint64 `json:"matched"`
}

// String renders the stats the way the CLIs log them.
func (st Stats) String() string {
	return fmt.Sprintf("segments=%d pruned=%d indexseek=%d fullscan=%d rebuilt=%d fallbacks=%d read=%d matched=%d",
		st.Segments, st.Pruned, st.IndexSeeked, st.FullScanned, st.Rebuilt, st.Fallbacks, st.RecordsRead, st.Matched)
}

// segPlan is how one segment will be (or was) served.
type segResult struct {
	matches []*store.Record
	stats   Stats
	err     error
}

// Scan streams every record matching p to fn, in segment order and in
// record order within each segment (the same order a full Iter sees,
// minus non-matches). Segments are scanned in parallel across at most
// Options.Workers goroutines; fn itself is always called from the
// calling goroutine, serially.
func (e *Engine) Scan(p Pred, fn func(rec *store.Record) error) (Stats, error) {
	start := time.Now()
	e.met.queries.Inc()
	var stats Stats

	readers, err := e.st.OpenSegments()
	if err != nil {
		return stats, err
	}
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	stats.Segments = len(readers)

	live := make(map[uint64]bool, len(readers))
	for _, r := range readers {
		live[r.Info().ID] = true
	}
	e.cachePrune(live)

	results := make([]segResult, len(readers))
	sem := make(chan struct{}, e.opts.Workers)
	var wg sync.WaitGroup
	for i, r := range readers {
		wg.Add(1)
		go func(i int, r *store.SegmentReader) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = e.scanSegment(r, p)
		}(i, r)
	}
	wg.Wait()

	for i := range results {
		res := &results[i]
		if res.err != nil {
			return stats, res.err
		}
		stats.Pruned += res.stats.Pruned
		stats.IndexSeeked += res.stats.IndexSeeked
		stats.FullScanned += res.stats.FullScanned
		stats.Rebuilt += res.stats.Rebuilt
		stats.Fallbacks += res.stats.Fallbacks
		stats.RecordsRead += res.stats.RecordsRead
		for _, rec := range res.matches {
			stats.Matched++
			if err := fn(rec); err != nil {
				return stats, err
			}
		}
	}
	e.recordStats(stats, start)
	return stats, nil
}

func (e *Engine) recordStats(st Stats, start time.Time) {
	e.met.seconds.ObserveSince(start)
	e.met.pruned.Add(uint64(st.Pruned))
	e.met.indexSeek.Add(uint64(st.IndexSeeked))
	e.met.fullScan.Add(uint64(st.FullScanned))
	e.met.fallbacks.Add(uint64(st.Fallbacks))
	e.met.recordsIn.Add(st.RecordsRead)
	e.met.recordsOut.Add(st.Matched)
}

// scanSegment plans and executes one segment: zone-map prune, posting
// seek, or full scan — degrading toward full scan on any sidecar or seek
// problem, so a bad sidecar can cost time but never rows.
func (e *Engine) scanSegment(r *store.SegmentReader, p Pred) segResult {
	var res segResult
	info := r.Info()
	if info.Records == 0 {
		return res
	}
	// The active segment has no sidecars (its bytes still move); an
	// empty predicate cannot prune or seek.
	if !info.Sealed || p.IsEmpty() {
		return e.fullScanSegment(r, p, res)
	}

	fp, err := r.Fingerprint()
	if err != nil {
		res.err = err
		return res
	}
	// Zone map first: a pruned segment never pays for decoding its
	// (much larger) posting index.
	z, x := e.cacheGet(info.ID, fp)
	if z == nil {
		var fresh bool
		if z, fresh = e.loadZoneMap(info, fp); fresh {
			e.cachePut(info.ID, fp, z, nil)
		} else {
			if e.opts.NoRebuild {
				res.stats.Fallbacks++
				return e.fullScanSegment(r, p, res)
			}
			if z, x, err = e.rebuild(r, info); err != nil {
				// A segment swapped out mid-query (compaction won the
				// race): the fd snapshot is still perfectly readable —
				// scan it.
				res.stats.Fallbacks++
				return e.fullScanSegment(r, p, res)
			}
			res.stats.Rebuilt++
			e.cachePut(info.ID, fp, z, x)
		}
	}

	if !z.MayMatch(p) {
		res.stats.Pruned++
		return res
	}
	if x == nil {
		var fresh bool
		if x, fresh = e.loadIndex(info, fp); fresh {
			e.cachePut(info.ID, fp, nil, x)
		} else {
			if e.opts.NoRebuild {
				res.stats.Fallbacks++
				return e.fullScanSegment(r, p, res)
			}
			if z, x, err = e.rebuild(r, info); err != nil {
				res.stats.Fallbacks++
				return e.fullScanSegment(r, p, res)
			}
			res.stats.Rebuilt++
			e.cachePut(info.ID, fp, z, x)
		}
	}
	postings, ok := planPostings(x, p)
	if !ok {
		return e.fullScanSegment(r, p, res)
	}
	matches, read, err := seekPostings(r, postings, p)
	if err != nil {
		// Postings pointed somewhere frames aren't — the sidecar lied.
		// Drop everything it produced and scan the segment for real.
		e.met.invalid.Inc()
		res.stats.Fallbacks++
		return e.fullScanSegment(r, p, res)
	}
	res.matches = matches
	res.stats.RecordsRead += read
	res.stats.IndexSeeked++
	return res
}

// loadZoneMap reads and validates one zone map against the live segment
// snapshot. Any problem — missing, unreadable, corrupt, stale — reports
// fresh=false; corruption/staleness additionally bumps the invalid
// metric (a missing file is normal for a young segment).
func (e *Engine) loadZoneMap(info store.SegmentInfo, fp uint32) (*ZoneMap, bool) {
	z, err := LoadZoneMap(ZonePath(e.st.Dir(), info.ID))
	if err != nil {
		if !os.IsNotExist(err) {
			e.met.invalid.Inc()
		}
		return nil, false
	}
	if !sidecarFresh(z.SegID, z.Fingerprint, z.Records, info, fp) {
		e.met.invalid.Inc()
		return nil, false
	}
	return z, true
}

// loadIndex is loadZoneMap for the posting index.
func (e *Engine) loadIndex(info store.SegmentInfo, fp uint32) (*Index, bool) {
	x, err := LoadIndex(IndexPath(e.st.Dir(), info.ID))
	if err != nil {
		if !os.IsNotExist(err) {
			e.met.invalid.Inc()
		}
		return nil, false
	}
	if !sidecarFresh(x.SegID, x.Fingerprint, x.Records, info, fp) {
		e.met.invalid.Inc()
		return nil, false
	}
	return x, true
}

// rebuild re-derives sidecars from the snapshot in hand and persists
// them for future queries.
func (e *Engine) rebuild(r *store.SegmentReader, info store.SegmentInfo) (*ZoneMap, *Index, error) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	z, x, err := Build(r)
	if err != nil {
		return nil, nil, err
	}
	if err := WriteSidecars(e.st.Dir(), z, x); err != nil {
		return nil, nil, err
	}
	e.met.rebuilds.Inc()
	return z, x, nil
}

func (e *Engine) fullScanSegment(r *store.SegmentReader, p Pred, res segResult) segResult {
	res.stats.FullScanned++
	err := r.Frames(func(_ int64, payloads [][]byte) error {
		for _, payload := range payloads {
			rec, err := store.DecodeRecord(payload)
			if err != nil {
				return err
			}
			res.stats.RecordsRead++
			if p.Match(&rec.Facts) {
				res.matches = append(res.matches, rec)
			}
		}
		return nil
	})
	if err != nil {
		res.err = err
		res.matches = nil
	}
	return res
}

// planPostings intersects the posting lists of every predicate dimension
// the index can serve. ok=false means no dimension is seekable (all
// relevant sections overflowed) and the caller must scan. Dimensions the
// index cannot serve are left to the final Match re-check.
func planPostings(x *Index, p Pred) ([]Posting, bool) {
	var lists [][]Posting
	usable := false
	if p.Registrar != "" && x.Registrar != nil {
		lists = append(lists, x.Registrar[p.Registrar])
		usable = true
	}
	if p.Country != "" && x.Country != nil {
		lists = append(lists, x.Country[p.Country])
		usable = true
	}
	if x.Year != nil {
		switch {
		case p.HasYear && p.YearTo > 0:
			lists = append(lists, unionRange(x.Year, p.Year, p.YearTo))
			usable = true
		case p.HasYear:
			lists = append(lists, x.Year[p.Year])
			usable = true
		case p.Since > 0:
			lists = append(lists, unionSince(x.Year, p.Since))
			usable = true
		}
	}
	if !usable {
		return nil, false
	}
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectPostings(out, l)
	}
	return out, true
}

// unionSince merges the postings of every year >= since back into
// (Off, Idx) order. Lists for distinct years are disjoint, so a plain
// merge-sort suffices.
func unionSince(years map[int][]Posting, since int) []Posting {
	var out []Posting
	for y, ps := range years {
		if y >= since {
			out = append(out, ps...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return postingLess(out[i], out[j]) })
	return out
}

// unionRange merges the postings of every year in [lo, hi] back into
// (Off, Idx) order — the year-range predicate's seek path.
func unionRange(years map[int][]Posting, lo, hi int) []Posting {
	var out []Posting
	for y, ps := range years {
		if y >= lo && y <= hi {
			out = append(out, ps...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return postingLess(out[i], out[j]) })
	return out
}

func intersectPostings(a, b []Posting) []Posting {
	var out []Posting
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case postingLess(a[i], b[j]):
			i++
		default:
			j++
		}
	}
	return out
}

// seekPostings reads exactly the frames the postings name, decoding only
// the named records and re-checking each against p. Any inconsistency —
// bad offset, bad frame, index out of range, undecodable record — aborts
// with an error so the caller discards everything and full-scans; a
// partial result must never leak out as a complete one.
func seekPostings(r *store.SegmentReader, postings []Posting, p Pred) ([]*store.Record, uint64, error) {
	var matches []*store.Record
	var read uint64
	for i := 0; i < len(postings); {
		j := i
		for j < len(postings) && postings[j].Off == postings[i].Off {
			j++
		}
		payloads, err := r.FrameAt(postings[i].Off)
		if err != nil {
			return nil, read, err
		}
		for _, pt := range postings[i:j] {
			if pt.Idx < 0 || pt.Idx >= len(payloads) {
				return nil, read, fmt.Errorf("query: posting idx %d outside frame of %d records", pt.Idx, len(payloads))
			}
			rec, err := store.DecodeRecord(payloads[pt.Idx])
			if err != nil {
				return nil, read, err
			}
			read++
			if p.Match(&rec.Facts) {
				matches = append(matches, rec)
			}
		}
		i = j
	}
	return matches, read, nil
}

// Survey runs the predicate and folds every match into a fresh
// incremental survey — the whoissurvey -where and rdapd /admin/query
// entry point.
func (e *Engine) Survey(p Pred) (*survey.Survey, Stats, error) {
	sv := &survey.Survey{}
	stats, err := e.Scan(p, func(rec *store.Record) error {
		sv.Add(rec.Facts)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return sv, stats, nil
}

// FullScan is the trivially-correct reference executor: iterate every
// record, apply the predicate. The differential CI gate holds Scan to
// byte-identical results against this.
func (e *Engine) FullScan(p Pred, fn func(rec *store.Record) error) error {
	it := e.st.Iter()
	defer it.Close()
	for it.Next() {
		rec := it.Record()
		if p.Match(&rec.Facts) {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return it.Err()
}
