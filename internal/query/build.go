package query

import (
	"fmt"

	"repro/internal/store"
)

// Build derives the zone map and secondary index for one segment
// snapshot in a single pass over its frames. The sidecars inherit the
// snapshot's content fingerprint, so they self-invalidate when the
// segment is later compacted, compressed, or otherwise rewritten.
func Build(r *store.SegmentReader) (*ZoneMap, *Index, error) {
	info := r.Info()
	fp, err := r.Fingerprint()
	if err != nil {
		return nil, nil, err
	}
	z := &ZoneMap{SegID: info.ID, Fingerprint: fp, Records: info.Records}
	x := &Index{
		SegID:       info.ID,
		Fingerprint: fp,
		Records:     info.Records,
		Registrar:   make(map[string][]Posting),
		Country:     make(map[string][]Posting),
		Year:        make(map[int][]Posting),
	}
	regs := make(map[string]bool)
	countries := make(map[string]bool)

	var n uint64
	err = r.Frames(func(off int64, payloads [][]byte) error {
		for i, payload := range payloads {
			rec, err := store.DecodeRecord(payload)
			if err != nil {
				return err
			}
			n++
			f := &rec.Facts
			pt := Posting{Off: off, Idx: i}

			if !z.RegOverflow {
				if !regs[f.Registrar] && len(regs) >= maxZoneKeys {
					z.RegOverflow = true
				} else {
					regs[f.Registrar] = true
				}
			}
			if !z.CountryOverflow {
				if !countries[f.Country] && len(countries) >= maxZoneKeys {
					z.CountryOverflow = true
				} else {
					countries[f.Country] = true
				}
			}
			if f.CreatedYear > 0 {
				if z.MaxYear == 0 || f.CreatedYear < z.MinYear {
					z.MinYear = f.CreatedYear
				}
				if f.CreatedYear > z.MaxYear {
					z.MaxYear = f.CreatedYear
				}
			} else {
				z.YearZero = true
			}

			x.Registrar = addPosting(x.Registrar, f.Registrar, pt)
			x.Country = addPosting(x.Country, f.Country, pt)
			if x.Year != nil {
				if _, ok := x.Year[f.CreatedYear]; !ok && len(x.Year) >= maxIndexKeys {
					x.Year = nil
				} else {
					x.Year[f.CreatedYear] = append(x.Year[f.CreatedYear], pt)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if n != info.Records {
		return nil, nil, fmt.Errorf("query: build %s: saw %d of %d records", info.Path, n, info.Records)
	}
	for r := range regs {
		z.Registrars = append(z.Registrars, r)
	}
	for c := range countries {
		z.Countries = append(z.Countries, c)
	}
	return z, x, nil
}

// addPosting appends pt under key, dropping the whole section once its
// key count crosses maxIndexKeys — an overflowed dimension falls back to
// scanning, it never seeks from a truncated list.
func addPosting(m map[string][]Posting, key string, pt Posting) map[string][]Posting {
	if m == nil {
		return nil
	}
	if _, ok := m[key]; !ok && len(m) >= maxIndexKeys {
		return nil
	}
	m[key] = append(m[key], pt)
	return m
}

// WriteSidecars persists the pair atomically (each file individually;
// the fingerprint ties them to the segment, not to each other).
func WriteSidecars(dir string, z *ZoneMap, x *Index) error {
	if err := writeFileAtomic(ZonePath(dir, z.SegID), encodeZoneMap(z)); err != nil {
		return err
	}
	return writeFileAtomic(IndexPath(dir, x.SegID), encodeIndex(x))
}
