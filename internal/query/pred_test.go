package query

import (
	"testing"

	"repro/internal/survey"
)

func TestParsePred(t *testing.T) {
	cases := []struct {
		in   string
		want Pred
	}{
		{"", Pred{}},
		{"registrar=eNom", Pred{Registrar: "eNom"}},
		{"registrar=GoDaddy.com, LLC", Pred{Registrar: "GoDaddy.com, LLC"}},
		{"registrar=GoDaddy.com, LLC,country=US", Pred{Registrar: "GoDaddy.com, LLC", Country: "United States"}},
		{"country=us", Pred{Country: "United States"}},
		{"country=Narnia", Pred{Country: "Narnia"}}, // non-canonical kept verbatim
		{"year=2014", Pred{Year: 2014, HasYear: true}},
		{"year=0", Pred{HasYear: true}},
		{"year=2012..2014", Pred{Year: 2012, YearTo: 2014, HasYear: true}},
		{"year=2012 .. 2014", Pred{Year: 2012, YearTo: 2014, HasYear: true}},
		{"year=2012..2012", Pred{Year: 2012, YearTo: 2012, HasYear: true}},
		{"registrar=eNom,year=2010..2020", Pred{Registrar: "eNom", Year: 2010, YearTo: 2020, HasYear: true}},
		{"since=2010", Pred{Since: 2010}},
		{" registrar = eNom , since = 2012 ", Pred{Registrar: "eNom", Since: 2012}},
		{"registrar=eNom,country=CN,year=2014,since=2000",
			Pred{Registrar: "eNom", Country: "China", Year: 2014, HasYear: true, Since: 2000}},
	}
	for _, c := range cases {
		got, err := ParsePred(c.in)
		if err != nil {
			t.Errorf("ParsePred(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePred(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParsePredErrors(t *testing.T) {
	for _, in := range []string{
		"registrar",           // no '='
		"registrar=",          // empty value
		"bogus=1",             // unknown key
		"year=abc",            // non-numeric
		"year=10000",          // out of range
		"year=2014..2012",     // inverted range
		"year=0..2014",        // range years start at 1
		"year=2012..10000",    // range end out of range
		"year=2012..",         // missing range end
		"year=..2014",         // missing range start
		"year=a..b",           // non-numeric range
		"since=0",             // since must be positive
		"since=2010,since=11", // duplicate
		"registrar=a,registrar=b",
	} {
		if p, err := ParsePred(in); err == nil {
			t.Errorf("ParsePred(%q) accepted as %+v", in, p)
		}
	}
}

func TestPredMatch(t *testing.T) {
	f := survey.Facts{Registrar: "eNom", Country: "China", CreatedYear: 2012}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Pred{}, true},
		{Pred{Registrar: "eNom"}, true},
		{Pred{Registrar: "Tucows"}, false},
		{Pred{Country: "China"}, true},
		{Pred{Country: "United States"}, false},
		{Pred{Year: 2012, HasYear: true}, true},
		{Pred{Year: 2014, HasYear: true}, false},
		{Pred{Since: 2012}, true},
		{Pred{Since: 2013}, false},
		{Pred{Registrar: "eNom", Country: "China", Since: 2000}, true},
		{Pred{Registrar: "eNom", Country: "China", Year: 2013, HasYear: true}, false},
		{Pred{Year: 2010, YearTo: 2014, HasYear: true}, true},
		{Pred{Year: 2012, YearTo: 2012, HasYear: true}, true},
		{Pred{Year: 2013, YearTo: 2014, HasYear: true}, false},
		{Pred{Year: 2000, YearTo: 2011, HasYear: true}, false},
		{Pred{Registrar: "eNom", Year: 2010, YearTo: 2014, HasYear: true}, true},
	}
	for _, c := range cases {
		if got := c.p.Match(&f); got != c.want {
			t.Errorf("(%s).Match(%+v) = %v, want %v", c.p, f, got, c.want)
		}
	}
	// Unknown-year records: year=0 matches, any since= excludes.
	noYear := survey.Facts{Registrar: "eNom"}
	if !(Pred{HasYear: true}).Match(&noYear) {
		t.Error("year=0 should match a record without a parsed year")
	}
	if (Pred{Since: 1990}).Match(&noYear) {
		t.Error("since= should exclude records without a parsed year")
	}
}

func TestPredString(t *testing.T) {
	if got := (Pred{}).String(); got != "(all)" {
		t.Errorf("empty Pred String = %q", got)
	}
	for _, p := range []Pred{
		{Registrar: "eNom", Country: "China", Year: 2014, HasYear: true, Since: 2000},
		{Year: 2012, YearTo: 2014, HasYear: true},
		{Registrar: "eNom", Year: 2010, YearTo: 2020, HasYear: true, Since: 2012},
	} {
		round, err := ParsePred(p.String())
		if err != nil || round != p {
			t.Errorf("Pred round trip via String: %+v -> %q -> %+v (%v)", p, p.String(), round, err)
		}
	}
}
