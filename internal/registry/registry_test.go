package registry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/synth"
)

func TestThinRecordContents(t *testing.T) {
	d := synth.Generate(synth.Config{N: 1, Seed: 50})[0]
	thin := ThinRecord(d)
	for _, want := range []string{
		strings.ToUpper(d.Reg.Domain),
		d.Reg.RegistrarName,
		"Whois Server: " + d.Reg.WhoisServer,
	} {
		if !strings.Contains(thin, want) {
			t.Errorf("thin record missing %q:\n%s", want, thin)
		}
	}
	// Thin records must NOT leak registrant information (§2.2).
	if !d.Reg.Privacy && strings.Contains(thin, d.Reg.Registrant.Name) {
		t.Error("thin record leaks registrant name")
	}
}

func TestBuildEcosystem(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 400, Seed: 51})
	eco := BuildEcosystem(domains, 0.075)
	if len(eco.Thin) != 400 {
		t.Errorf("thin store has %d entries", len(eco.Thin))
	}
	if len(eco.Servers) < 5 {
		t.Errorf("only %d registrar servers", len(eco.Servers))
	}
	// Withheld fraction near 7.5%.
	if eco.Missing < 10 || eco.Missing > 60 {
		t.Errorf("missing %d of 400, want ~30", eco.Missing)
	}
	thick := 0
	for _, m := range eco.Thick {
		thick += len(m)
	}
	if thick+eco.Missing != 400 {
		t.Errorf("thick (%d) + missing (%d) != 400", thick, eco.Missing)
	}
}

func TestEcosystemLookups(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 50, Seed: 52})
	eco := BuildEcosystem(domains, 0)
	d := domains[0]
	if _, ok := eco.LookupThin(d.Reg.Domain); !ok {
		t.Error("thin lookup failed")
	}
	if _, ok := eco.LookupThin("  " + strings.ToUpper(d.Reg.Domain) + " "); !ok {
		t.Error("thin lookup should normalize case and spacing")
	}
	if _, ok := eco.LookupThin("nonexistent.com"); ok {
		t.Error("bogus thin lookup succeeded")
	}
	server := eco.Referral[d.Reg.Domain]
	if _, ok := eco.LookupThick(server, d.Reg.Domain); !ok {
		t.Error("thick lookup failed")
	}
	if _, ok := eco.LookupThick("wrong.server", d.Reg.Domain); ok {
		t.Error("thick lookup at wrong server succeeded")
	}
}

func TestRateLimiterAllowsUnderLimit(t *testing.T) {
	rl := NewRateLimiter(5, time.Second, 10*time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		if !rl.Allow("1.2.3.4", now.Add(time.Duration(i)*time.Millisecond)) {
			t.Fatalf("query %d refused under limit", i)
		}
	}
}

func TestRateLimiterPenalizesOverLimit(t *testing.T) {
	rl := NewRateLimiter(3, time.Second, 10*time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		rl.Allow("a", now)
	}
	if rl.Allow("a", now.Add(time.Millisecond)) {
		t.Fatal("4th query within window should be refused")
	}
	if rl.PenalizedUntil("a").IsZero() {
		t.Fatal("penalty not recorded")
	}
	// Still refused during the penalty, even after the window passes.
	if rl.Allow("a", now.Add(5*time.Second)) {
		t.Fatal("query during penalty should be refused")
	}
	// Allowed again after the penalty.
	if !rl.Allow("a", now.Add(11*time.Second)) {
		t.Fatal("query after penalty should be allowed")
	}
}

func TestRateLimiterPerSource(t *testing.T) {
	rl := NewRateLimiter(2, time.Second, 10*time.Second)
	now := time.Unix(2000, 0)
	rl.Allow("a", now)
	rl.Allow("a", now)
	if rl.Allow("a", now) {
		t.Fatal("a should be limited")
	}
	// Source b is unaffected — this is what the crawler's source
	// rotation exploits.
	if !rl.Allow("b", now) {
		t.Fatal("b should be allowed")
	}
}

func TestRateLimiterWindowSlides(t *testing.T) {
	rl := NewRateLimiter(2, time.Second, 10*time.Second)
	now := time.Unix(3000, 0)
	rl.Allow("a", now)
	rl.Allow("a", now.Add(100*time.Millisecond))
	// After the window, old queries age out.
	if !rl.Allow("a", now.Add(1500*time.Millisecond)) {
		t.Fatal("query after window should be allowed")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var rl *RateLimiter
	if !rl.Allow("x", time.Now()) {
		t.Error("nil limiter should allow everything")
	}
	rl = NewRateLimiter(0, time.Second, time.Second)
	for i := 0; i < 100; i++ {
		if !rl.Allow("x", time.Now()) {
			t.Fatal("zero-limit limiter should allow everything")
		}
	}
}
