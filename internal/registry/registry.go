// Package registry models the data layer of the com ecosystem's "thin"
// registry split (§2.2): a registry (Verisign-like) that serves thin
// records containing only registrar, dates, status and name servers plus a
// referral to the sponsoring registrar's WHOIS server, and per-registrar
// thick stores holding the full records. It also provides the per-source
// rate limiter whose behaviour the crawler must learn to respect (§4.1).
package registry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/synth"
)

// RegistryServerName is the host name of the simulated thin registry.
const RegistryServerName = "whois.registry.example"

// NoMatch is the registry's response for unknown domains.
const NoMatch = "No match for domain."

// ThinRecord renders the Verisign-style thin record for a domain.
func ThinRecord(d *synth.Domain) string {
	var b strings.Builder
	reg := &d.Reg
	fmt.Fprintf(&b, "   Domain Name: %s\n", strings.ToUpper(reg.Domain))
	fmt.Fprintf(&b, "   Registrar: %s\n", reg.RegistrarName)
	fmt.Fprintf(&b, "   Sponsoring Registrar IANA ID: %d\n", reg.RegistrarIANA)
	fmt.Fprintf(&b, "   Whois Server: %s\n", reg.WhoisServer)
	fmt.Fprintf(&b, "   Referral URL: %s\n", reg.RegistrarURL)
	for _, ns := range reg.NameServers {
		fmt.Fprintf(&b, "   Name Server: %s\n", strings.ToUpper(ns))
	}
	for _, st := range reg.Statuses {
		fmt.Fprintf(&b, "   Status: %s\n", st)
	}
	fmt.Fprintf(&b, "   Updated Date: %s\n", reg.Updated.Format("02-Jan-2006"))
	fmt.Fprintf(&b, "   Creation Date: %s\n", reg.Created.Format("02-Jan-2006"))
	fmt.Fprintf(&b, "   Expiration Date: %s\n", reg.Expires.Format("02-Jan-2006"))
	b.WriteString("\n>>> Last update of whois database: 2015-02-01T00:00:00Z <<<\n")
	return b.String()
}

// Ecosystem is the full simulated WHOIS data plane: one thin store plus
// one thick store per registrar WHOIS server.
type Ecosystem struct {
	// Thin maps domain -> thin record text at the registry.
	Thin map[string]string
	// Thick maps registrar server name -> domain -> thick record text.
	Thick map[string]map[string]string
	// Referral maps domain -> registrar server name.
	Referral map[string]string
	// Servers lists every registrar server name, sorted-insert order.
	Servers []string
	// Missing counts domains whose thick record was withheld (expired or
	// otherwise gone, the §4.1 failure tail).
	Missing int
}

// BuildEcosystem loads generated domains into stores. failFraction of the
// domains (deterministically chosen by index hash) get a thin record but
// no thick record, so crawling them fails exactly as ~7.5% of the paper's
// queries did.
func BuildEcosystem(domains []*synth.Domain, failFraction float64) *Ecosystem {
	e := &Ecosystem{
		Thin:     make(map[string]string),
		Thick:    make(map[string]map[string]string),
		Referral: make(map[string]string),
	}
	seen := make(map[string]bool)
	threshold := int(failFraction * 1000)
	for i, d := range domains {
		dom := d.Reg.Domain
		e.Thin[dom] = ThinRecord(d)
		server := d.Reg.WhoisServer
		e.Referral[dom] = server
		if !seen[server] {
			seen[server] = true
			e.Servers = append(e.Servers, server)
		}
		if m := e.Thick[server]; m == nil {
			e.Thick[server] = make(map[string]string)
		}
		if (i*2654435761)%1000 < threshold {
			e.Missing++
			continue // thin exists, thick withheld
		}
		e.Thick[server][dom] = d.Render().Text
	}
	return e
}

// LookupThin returns the registry's answer for a query.
func (e *Ecosystem) LookupThin(domain string) (string, bool) {
	r, ok := e.Thin[strings.ToLower(strings.TrimSpace(domain))]
	return r, ok
}

// LookupThick returns a registrar server's answer for a query.
func (e *Ecosystem) LookupThick(server, domain string) (string, bool) {
	m, ok := e.Thick[server]
	if !ok {
		return "", false
	}
	r, ok := m[strings.ToLower(strings.TrimSpace(domain))]
	return r, ok
}

// RateLimiter enforces the per-source-IP query budget real WHOIS servers
// apply (§4.1): at most Limit queries per Window per source; exceeding it
// triggers a Penalty period during which every query is refused. The
// thresholds are not advertised — the crawler has to infer them.
type RateLimiter struct {
	Limit   int
	Window  time.Duration
	Penalty time.Duration

	mu      sync.Mutex
	sources map[string]*sourceState
}

type sourceState struct {
	times     []time.Time // query times within the window
	penalized time.Time   // zero if not penalized
}

// NewRateLimiter builds a limiter; limit <= 0 disables limiting.
func NewRateLimiter(limit int, window, penalty time.Duration) *RateLimiter {
	return &RateLimiter{Limit: limit, Window: window, Penalty: penalty, sources: make(map[string]*sourceState)}
}

// Allow records a query from source at time now and reports whether it is
// within budget. A refused query extends nothing but the penalty.
func (rl *RateLimiter) Allow(source string, now time.Time) bool {
	if rl == nil || rl.Limit <= 0 {
		return true
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	st := rl.sources[source]
	if st == nil {
		st = &sourceState{}
		rl.sources[source] = st
	}
	if !st.penalized.IsZero() {
		if now.Before(st.penalized) {
			return false
		}
		st.penalized = time.Time{}
		st.times = st.times[:0]
	}
	// Drop queries older than the window.
	cut := 0
	for cut < len(st.times) && now.Sub(st.times[cut]) > rl.Window {
		cut++
	}
	st.times = st.times[cut:]
	if len(st.times) >= rl.Limit {
		st.penalized = now.Add(rl.Penalty)
		return false
	}
	st.times = append(st.times, now)
	return true
}

// PenalizedUntil reports the end of the source's penalty window (zero
// time if none), for tests.
func (rl *RateLimiter) PenalizedUntil(source string) time.Time {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if st := rl.sources[source]; st != nil {
		return st.penalized
	}
	return time.Time{}
}
