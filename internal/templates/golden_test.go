package templates

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRegistration is a fixed registration rendered through every
// schema; the outputs are pinned in testdata/ so any unintended format
// change — which would silently alter every downstream experiment — fails
// loudly. Regenerate intentionally with `go test ./internal/templates -run
// Golden -update`.
func goldenRegistration() *Registration {
	reg := sampleRegistration()
	// Make every optional field deterministic and non-empty so the golden
	// output exercises the full schema.
	reg.Registrant.Street2 = "Suite 7"
	reg.Registrant.Fax = "+1.8585550000"
	return reg
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// encode serializes a Rendered as text + per-line labels for the golden
// files, so label drift is caught as well as text drift.
func encode(r Rendered) string {
	var b strings.Builder
	b.WriteString("== text ==\n")
	b.WriteString(r.Text)
	b.WriteString("\n== labels ==\n")
	for _, ln := range r.Lines {
		fmt.Fprintf(&b, "%s %s\n", ln.Block, ln.Field)
	}
	return b.String()
}

func TestGoldenSchemas(t *testing.T) {
	reg := goldenRegistration()
	all := append(append([]*Schema{}, ComSchemas()...), NewTLDSchemas()...)
	for _, s := range all {
		got := encode(s.Render(reg))
		path := goldenPath(s.ID)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("schema %s: missing golden file (run with -update): %v", s.ID, err)
		}
		if got != string(want) {
			t.Errorf("schema %s: output drifted from golden file %s\n--- got ---\n%s",
				s.ID, path, got)
		}
	}
}

func TestGoldenDriftVariants(t *testing.T) {
	// Drifted schemas get golden files too: drift must stay deterministic
	// or the §2.3 fragility experiments lose reproducibility.
	reg := goldenRegistration()
	base := ComSchemas()[0]
	for _, kind := range []DriftKind{DriftTitles, DriftSeparator, DriftDates} {
		d := Drift(base, kind)
		got := encode(d.Render(reg))
		path := goldenPath(fmt.Sprintf("%s.drift%d", base.ID, kind))
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("drift %d: missing golden file (run with -update): %v", kind, err)
		}
		if got != string(want) {
			t.Errorf("drift %d output drifted from golden file", kind)
		}
	}
}
