package templates

import (
	"strings"

	"repro/internal/labels"
)

// Additional com format families, appended to the pool by init. These
// push the simulated registrar diversity closer to the real com ecosystem
// (deft-whois shipped 403 com templates): a 1990s InterNIC style with
// contact handles, dashed section banners, a colonless titles-above-values
// layout, and mixed-language titles from European resellers.

func init() {
	comSchemas = append(comSchemas, legacyFamily()...)
	comSchemas = append(comSchemas, bannerFamily()...)
	comSchemas = append(comSchemas, colonlessFamily()...)
	comSchemas = append(comSchemas, intlFamily()...)
}

// handleFor derives an InterNIC-style contact handle from the domain.
func handleFor(r *Registration) string {
	base := strings.ToUpper(strings.TrimSuffix(r.Domain, ".com"))
	if len(base) > 6 {
		base = base[:6]
	}
	return base + "-DOM"
}

// ---- Legacy family: 1990s InterNIC output with handles ----

func legacyFamily() []*Schema {
	type variant struct {
		id       string
		dateFmt  string
		expiresT string
		createdT string
		updatedT string
	}
	variants := []variant{
		{"legacy-0", "02-Jan-2006", "Record expires on", "Record created on", "Record last updated on"},
		{"legacy-1", "2006-01-02", "Expiry date", "Registration date", "Last updated"},
	}
	var out []*Schema
	for _, v := range variants {
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
			KV(labels.Domain, labels.FieldOther, "Domain Handle", handleFor),
			Blank(),
			Header(labels.Registrant, labels.FieldOther, "Registrant:"),
			Bare(labels.Registrant, labels.FieldOrg, P(Registrant, Org)),
			Bare(labels.Registrant, labels.FieldName, P(Registrant, Name)),
			Bare(labels.Registrant, labels.FieldStreet, P(Registrant, Street)),
			Bare(labels.Registrant, labels.FieldCity, CityStateZip(Registrant)),
			Bare(labels.Registrant, labels.FieldCountry, P(Registrant, CountryCode)),
			Blank(),
			Header(labels.Other, labels.FieldOther, "Administrative Contact, Billing Contact:"),
			Bare(labels.Other, labels.FieldOther, P(Admin, Name)),
			Bare(labels.Other, labels.FieldOther, P(Admin, EmailOf)),
			Bare(labels.Other, labels.FieldOther, P(Admin, PhoneOf)),
			Blank(),
			DateKV(v.updatedT, Updated),
			DateKV(v.createdT, Created),
			DateKV(v.expiresT, Expires),
			Blank(),
			Header(labels.Domain, labels.FieldOther, "Domain servers in listed order:"),
			NameServersBare(true),
			Blank(),
			Raw(labels.Null,
				"The data above has been copied from the registry database for informational",
				"purposes only, and its accuracy is not guaranteed."),
		}
		out = append(out, &Schema{ID: v.id, DateFmt: v.dateFmt, Indent: "   ", Elements: els})
	}
	return out
}

// ---- Banner family: dashed section banners between blocks ----

func bannerFamily() []*Schema {
	type variant struct {
		id     string
		banner func(title string) string
	}
	variants := []variant{
		{"banner-0", func(t string) string { return "-- " + t + " --" }},
		{"banner-1", func(t string) string { return "=== " + t + " ===" }},
	}
	var out []*Schema
	for _, v := range variants {
		banner := v.banner
		els := []Element{
			Raw(labels.Null, banner("Whois Record")),
			KV(labels.Domain, labels.FieldOther, "Domain", Rd(false)),
			StatusesKV("Status"),
			NameServersKV("Name Server", false),
			Blank(),
			Header(labels.Date, labels.FieldOther, banner("Important Dates")),
			DateKV("Created", Created),
			DateKV("Changed", Updated),
			DateKV("Expires", Expires),
			Blank(),
			Header(labels.Registrant, labels.FieldOther, banner("Registrant Information")),
			KV(labels.Registrant, labels.FieldName, "Name", P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, "Organization", P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, "Street", P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, "City", P(Registrant, City)),
			KV(labels.Registrant, labels.FieldState, "State", P(Registrant, State)),
			KV(labels.Registrant, labels.FieldPostcode, "Zip Code", P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, "Country", P(Registrant, CountryCode)),
			KV(labels.Registrant, labels.FieldPhone, "Phone", P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, "Email", P(Registrant, EmailOf)),
			Blank(),
			Header(labels.Other, labels.FieldOther, banner("Administrative Contact")),
			KV(labels.Other, labels.FieldOther, "Name", P(Admin, Name)),
			KV(labels.Other, labels.FieldOther, "Email", P(Admin, EmailOf)),
			Blank(),
			Header(labels.Registrar, labels.FieldOther, banner("Registrar")),
			KV(labels.Registrar, labels.FieldOther, "Registrar Name", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "Registrar Web", RegistrarURL),
			Blank(),
			Raw(labels.Null, banner("End of Record")),
		}
		out = append(out, &Schema{ID: v.id, DateFmt: "2006-01-02 15:04:05", Elements: els})
	}
	return out
}

// ---- Colonless family: titles and values on alternating lines ----

// colonlessPair renders "Title" then an indented value line. The title
// line carries the block with FieldOther; the value line carries the
// field-level ground truth. Separator-based parsers get no help here —
// only layout (SHR) and lexical context identify the structure.
func colonlessPair(block labels.Block, field labels.Field, title string, value ValueFn) Element {
	return Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
		v := value(r)
		if v == "" {
			return nil
		}
		return []labels.LabeledLine{
			{Text: s.styleTitle(title), Block: block, Field: labels.FieldOther},
			{Text: "    " + v, Block: block, Field: field},
		}
	})
}

func colonlessFamily() []*Schema {
	els := []Element{
		colonlessPair(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		colonlessPair(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		Blank(),
		colonlessPair(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		colonlessPair(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		colonlessPair(labels.Registrant, labels.FieldStreet, "Registrant Address", P(Registrant, Street)),
		colonlessPair(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		colonlessPair(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		colonlessPair(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		Blank(),
		Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
			return []labels.LabeledLine{
				{Text: "Creation Date", Block: labels.Date, Field: labels.FieldOther},
				{Text: "    " + s.date(r.Created), Block: labels.Date, Field: labels.FieldOther},
				{Text: "Expiration Date", Block: labels.Date, Field: labels.FieldOther},
				{Text: "    " + s.date(r.Expires), Block: labels.Date, Field: labels.FieldOther},
			}
		}),
		Blank(),
		NameServersKV("Name Server", false),
	}
	return []*Schema{{ID: "noline-0", DateFmt: "2006-01-02", Elements: els}}
}

// ---- Intl family: mixed-language field titles ----

func intlFamily() []*Schema {
	type variant struct {
		id      string
		titles  map[string]string
		dateFmt string
	}
	variants := []variant{
		{"intl-fr", map[string]string{
			"name": "Nom du titulaire", "org": "Organisation", "street": "Adresse",
			"city": "Ville", "post": "Code postal", "country": "Pays",
			"phone": "Telephone", "email": "Courriel",
			"created": "Date de creation", "expires": "Date d'expiration",
			"registrar": "Registraire", "domain": "Nom de domaine",
		}, "02/01/2006"},
		{"intl-es", map[string]string{
			"name": "Nombre del titular", "org": "Organizacion", "street": "Direccion",
			"city": "Ciudad", "post": "Codigo postal", "country": "Pais",
			"phone": "Telefono", "email": "Correo electronico",
			"created": "Fecha de creacion", "expires": "Fecha de expiracion",
			"registrar": "Registrador", "domain": "Nombre de dominio",
		}, "02-01-2006"},
	}
	var out []*Schema
	for _, v := range variants {
		tt := v.titles
		els := []Element{
			KV(labels.Domain, labels.FieldOther, tt["domain"], Rd(false)),
			KV(labels.Registrar, labels.FieldOther, tt["registrar"], RegistrarName),
			DateKV(tt["created"], Created),
			DateKV(tt["expires"], Expires),
			Blank(),
			KV(labels.Registrant, labels.FieldName, tt["name"], P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, tt["org"], P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, tt["street"], P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, tt["city"], P(Registrant, City)),
			KV(labels.Registrant, labels.FieldPostcode, tt["post"], P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, tt["country"], P(Registrant, CountryName)),
			KV(labels.Registrant, labels.FieldPhone, tt["phone"], P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, tt["email"], P(Registrant, EmailOf)),
			Blank(),
			NameServersKV("DNS", false),
			Blank(),
			Raw(labels.Null,
				"Les informations ci-dessus sont fournies a titre indicatif.",
				"Este servicio se proporciona con fines informativos unicamente."),
		}
		out = append(out, &Schema{ID: v.id, DateFmt: v.dateFmt, Elements: els})
	}
	return out
}
