package templates

import (
	"fmt"
	"strings"

	"repro/internal/identity"
	"repro/internal/labels"
)

// The com schema pool. The thin com registry imposes no format, so each
// registrar renders records its own way (§2.2). We model that diversity
// with several format *families* — clusters of registrars sharing
// provisioning software — each with several variants differing in field
// titles, separators, ordering, and boilerplate, the exact kind of
// variation that breaks template-based parsers (§2.3).

// comSchemas is populated by init from the family constructors.
var comSchemas []*Schema

// ComSchemas returns the com format pool in deterministic order.
func ComSchemas() []*Schema { return comSchemas }

// ByID returns the schema with the given id (com or new-TLD), or nil.
func ByID(id string) *Schema {
	for _, s := range comSchemas {
		if s.ID == id {
			return s
		}
	}
	for _, s := range newTLDSchemas {
		if s.ID == id {
			return s
		}
	}
	return nil
}

func init() {
	comSchemas = append(comSchemas, icannFamily()...)
	comSchemas = append(comSchemas, netsolFamily()...)
	comSchemas = append(comSchemas, dotsFamily()...)
	comSchemas = append(comSchemas, bracketFamily()...)
	comSchemas = append(comSchemas, lowerFamily()...)
	comSchemas = append(comSchemas, pctFamily()...)
	comSchemas = append(comSchemas, oddFamily()...)
}

// contactOpts parameterizes a titled contact block.
type contactOpts struct {
	prefix     string // "Registrant", "Admin", "Owner", ...
	nameTitle  string // default "Name"
	orgTitle   string // default "Organization"
	streetT    string // default "Street"
	cityT      string
	stateT     string
	postT      string
	countryT   string
	phoneT     string
	faxT       string
	emailT     string
	idTitle    string // "" = no id line
	countryFul bool   // render country name instead of ISO code
}

func (o contactOpts) def() contactOpts {
	if o.nameTitle == "" {
		o.nameTitle = "Name"
	}
	if o.orgTitle == "" {
		o.orgTitle = "Organization"
	}
	if o.streetT == "" {
		o.streetT = "Street"
	}
	if o.cityT == "" {
		o.cityT = "City"
	}
	if o.stateT == "" {
		o.stateT = "State/Province"
	}
	if o.postT == "" {
		o.postT = "Postal Code"
	}
	if o.countryT == "" {
		o.countryT = "Country"
	}
	if o.phoneT == "" {
		o.phoneT = "Phone"
	}
	if o.faxT == "" {
		o.faxT = "Fax"
	}
	if o.emailT == "" {
		o.emailT = "Email"
	}
	return o
}

// contactKV renders a contact as titled "Prefix Field: value" lines. For
// the registrant the second-level ground truth is attached; for other
// contacts every line is labeled (Other, other).
func contactKV(sel ContactSel, block labels.Block, o contactOpts) []Element {
	o = o.def()
	f := func(fl labels.Field) labels.Field {
		if block == labels.Registrant {
			return fl
		}
		return labels.FieldOther
	}
	t := func(suffix string) string {
		if o.prefix == "" {
			return suffix
		}
		return o.prefix + " " + suffix
	}
	country := CountryCode
	if o.countryFul {
		country = CountryName
	}
	var els []Element
	if o.idTitle != "" {
		els = append(els, KV(block, f(labels.FieldID), t(o.idTitle), idValue(sel)))
	}
	els = append(els,
		KV(block, f(labels.FieldName), t(o.nameTitle), P(sel, Name)),
		KV(block, f(labels.FieldOrg), t(o.orgTitle), P(sel, Org)),
		KV(block, f(labels.FieldStreet), t(o.streetT), P(sel, Street)),
		KV(block, f(labels.FieldStreet), t(o.streetT), P(sel, Street2)),
		KV(block, f(labels.FieldCity), t(o.cityT), P(sel, City)),
		KV(block, f(labels.FieldState), t(o.stateT), P(sel, State)),
		KV(block, f(labels.FieldPostcode), t(o.postT), P(sel, Postcode)),
		KV(block, f(labels.FieldCountry), t(o.countryT), country2(sel, country)),
		KV(block, f(labels.FieldPhone), t(o.phoneT), P(sel, PhoneOf)),
		KV(block, f(labels.FieldFax), t(o.faxT), P(sel, FaxOf)),
		KV(block, f(labels.FieldEmail), t(o.emailT), P(sel, EmailOf)),
	)
	return els
}

func country2(sel ContactSel, get func(p *identity.Person) string) ValueFn {
	return func(r *Registration) string { return get(sel(r)) }
}

// idValue derives a stable registry contact id from the domain name.
func idValue(sel ContactSel) ValueFn {
	return func(r *Registration) string {
		h := 2166136261
		for _, c := range r.Domain {
			h = (h ^ int(c)) * 16777619 & 0x7fffffff
		}
		return fmt.Sprintf("C%08d-LROR", h%100000000)
	}
}

// registryDomainID derives a Verisign-style registry id from the domain.
func registryDomainID(r *Registration) string {
	h := 5381
	for _, c := range r.Domain {
		h = (h*33 + int(c)) & 0x7fffffff
	}
	return fmt.Sprintf("%d_DOMAIN_COM-VRSN", 1000000000+h%999999999)
}

// ---- ICANN family: the post-2013 RAA format most large registrars use ----

func icannFamily() []*Schema {
	type variant struct {
		id        string
		created   string
		updated   string
		expires   string
		stateT    string
		postT     string
		dateFmt   string
		withAbuse bool
		withTech  bool
		statusURL bool
		notice    []string
	}
	variants := []variant{
		{"icann-0", "Creation Date", "Updated Date", "Registrar Registration Expiration Date", "State/Province", "Postal Code", "2006-01-02T15:04:05Z", true, true, true,
			[]string{"For more information on Whois status codes, please visit https://icann.org/epp", "The data in this record is provided for information purposes only."}},
		{"icann-1", "Creation Date", "Updated Date", "Expiration Date", "State", "Postal Code", "2006-01-02", true, true, false,
			[]string{"The Data in this WHOIS database is provided for information purposes only.", "By submitting a query you agree to abide by this policy."}},
		{"icann-2", "Created On", "Last Updated On", "Expiration Date", "State/Province", "Zip Code", "02-Jan-2006", false, true, false,
			[]string{"NOTICE: The expiration date displayed in this record is the date the registrar's sponsorship expires.", "Please consult the registrar for further details."}},
		{"icann-3", "Registered On", "Last Modified", "Expires On", "Province", "Postcode", "2006/01/02", false, false, false,
			[]string{"This whois service is provided for query-based access only.", "Abuse of this service will result in your IP being blocked."}},
		{"icann-4", "Creation Date", "Update Date", "Expiry Date", "State/Province", "Postal Code", "2006-01-02 15:04:05", true, true, true,
			[]string{"Access to this whois service is rate limited.", "Learn more about domain registration at the registrar website."}},
		{"icann-5", "Domain Registration Date", "Domain Last Updated Date", "Domain Expiration Date", "State/Province", "Postal Code", "Mon Jan 02 2006", false, true, false,
			[]string{"The data contained in this registry database is provided for informational purposes only.", "Compilation, repackaging, or other use of this data is expressly prohibited."}},
		{"icann-6", "Domain Created", "Domain Updated", "Domain Expires", "Region", "Postal Code", "2006-01-02", false, true, false,
			[]string{"All timestamps are in UTC.", "This information is provided exclusively to assist in obtaining information about domain name registrations."}},
		{"icann-7", "Activation Date", "Last Update Date", "Registration Expiration Date", "State/Province", "Zip", "02-Jan-2006 15:04:05", true, false, false,
			[]string{"By submitting a WHOIS query you agree to use the data only for lawful purposes.", "Unsolicited commercial advertising is expressly prohibited."}},
		{"icann-8", "Registered Date", "Modified Date", "Expires Date", "State", "Post Code", "2006.01.02", false, true, false,
			[]string{"WHOIS data is provided as is with no guarantee of accuracy.", "The registrar of record is identified above."}},
		{"icann-9", "Create Date", "Update Date", "Expire Date", "State/Province", "Postal Code", "20060102", false, false, false,
			[]string{"Registration information current as of the query time.", "Contact the sponsoring registrar for corrections."}},
	}
	var out []*Schema
	for _, v := range variants {
		regOpts := contactOpts{prefix: "Registrant", stateT: v.stateT, postT: v.postT, idTitle: "ID"}
		admOpts := contactOpts{prefix: "Admin", stateT: v.stateT, postT: v.postT}
		techOpts := contactOpts{prefix: "Tech", stateT: v.stateT, postT: v.postT}
		statusTitle := "Domain Status"
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
			KV(labels.Domain, labels.FieldOther, "Registry Domain ID", registryDomainID),
			KV(labels.Registrar, labels.FieldOther, "Registrar WHOIS Server", WhoisServer),
			KV(labels.Registrar, labels.FieldOther, "Registrar URL", RegistrarURL),
			DateKV(v.updated, Updated),
			DateKV(v.created, Created),
			DateKV(v.expires, Expires),
			KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "Registrar IANA ID", IANA),
		}
		if v.withAbuse {
			els = append(els,
				KV(labels.Registrar, labels.FieldOther, "Registrar Abuse Contact Email", abuseEmail),
				KV(labels.Registrar, labels.FieldOther, "Registrar Abuse Contact Phone", abusePhone),
			)
		}
		els = append(els, StatusesKV(statusTitle))
		els = append(els, contactKV(Registrant, labels.Registrant, regOpts)...)
		els = append(els, contactKV(Admin, labels.Other, admOpts)...)
		if v.withTech {
			els = append(els, contactKV(Tech, labels.Other, techOpts)...)
		}
		els = append(els, NameServersKV("Name Server", false))
		els = append(els, KV(labels.Domain, labels.FieldOther, "DNSSEC", func(*Registration) string { return "unsigned" }))
		els = append(els, Blank(), Raw(labels.Null, v.notice...))
		out = append(out, &Schema{ID: v.id, DateFmt: v.dateFmt, Elements: els})
	}
	return out
}

func abuseEmail(r *Registration) string {
	host := strings.TrimPrefix(r.RegistrarURL, "http://www.")
	host = strings.TrimPrefix(host, "https://www.")
	return "abuse@" + host
}

func abusePhone(r *Registration) string { return "+1.4805058800" }

// ---- NetSol family: classic block-context style with indented values ----

func netsolFamily() []*Schema {
	type variant struct {
		id         string
		regHeader  string
		admHeader  string
		dateFmt    string
		serversHdr string
		expiresT   string
		createdT   string
		updatedT   string
	}
	variants := []variant{
		{"netsol-0", "Registrant:", "Administrative Contact:", "02-Jan-2006", "Domain servers in listed order:", "Record expires on", "Record created on", "Database last updated on"},
		{"netsol-1", "Registrant:", "Administrative Contact, Technical Contact:", "2006-01-02", "Domain Name Servers:", "Expires on", "Created on", "Last updated on"},
		{"netsol-2", "Owner:", "Admin Contact:", "Jan 02, 2006", "Name Servers:", "Expiration date", "Registration date", "Last update"},
		{"netsol-3", "Registrant Contact:", "Administrative Contact:", "2006.01.02", "Nameservers:", "Valid until", "Registered", "Changed"},
	}
	var out []*Schema
	for _, v := range variants {
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
			Blank(),
			Header(labels.Registrant, labels.FieldOther, v.regHeader),
			Bare(labels.Registrant, labels.FieldOrg, P(Registrant, Org)),
			Bare(labels.Registrant, labels.FieldName, P(Registrant, Name)),
			Bare(labels.Registrant, labels.FieldStreet, P(Registrant, Street)),
			Bare(labels.Registrant, labels.FieldStreet, P(Registrant, Street2)),
			Bare(labels.Registrant, labels.FieldCity, CityStateZip(Registrant)),
			Bare(labels.Registrant, labels.FieldCountry, P(Registrant, CountryName)),
			Bare(labels.Registrant, labels.FieldEmail, P(Registrant, EmailOf)),
			Blank(),
			Header(labels.Other, labels.FieldOther, v.admHeader),
			Bare(labels.Other, labels.FieldOther, P(Admin, Name)),
			Bare(labels.Other, labels.FieldOther, P(Admin, Street)),
			Bare(labels.Other, labels.FieldOther, CityStateZip(Admin)),
			Bare(labels.Other, labels.FieldOther, P(Admin, PhoneOf)),
			Bare(labels.Other, labels.FieldOther, P(Admin, EmailOf)),
			Blank(),
			DateKV(v.expiresT, Expires),
			DateKV(v.createdT, Created),
			DateKV(v.updatedT, Updated),
			Blank(),
			Header(labels.Domain, labels.FieldOther, v.serversHdr),
			NameServersBare(true),
			Blank(),
			Raw(labels.Null,
				"The previous information has been obtained either directly from the registrant",
				"or a registrar of the domain name other than Network Solutions.",
				"Network Solutions, therefore, does not guarantee its accuracy or completeness."),
		}
		out = append(out, &Schema{ID: v.id, DateFmt: v.dateFmt, Indent: "    ", Elements: els})
	}
	return out
}

// ---- Dots family: dot-aligned titles ----

func dotsFamily() []*Schema {
	type variant struct {
		id      string
		width   int
		fill    byte
		upper   bool
		ownerT  string
		emailT  string
		phoneT  string
		dateFmt string
	}
	variants := []variant{
		{"dots-0", 28, '.', false, "Registrant Name", "Registrant Email", "Registrant Phone", "2006-01-02"},
		{"dots-1", 24, '.', true, "Owner Name", "Owner Email", "Owner Phone", "02/01/2006"},
		{"dots-2", 30, ' ', false, "Registrant", "E-mail Address", "Phone Number", "2006-01-02 15:04:05"},
		{"dots-3", 26, '.', false, "Holder Name", "Holder Email", "Holder Phone", "20060102"},
		{"dots-4", 32, '.', false, "Registrant Contact Name", "Registrant Contact Email", "Registrant Contact Phone", "02-Jan-2006"},
		{"dots-5", 22, ' ', true, "Registrant Name", "Registrant Mail", "Registrant Tel", "2006/01/02"},
	}
	var out []*Schema
	for _, v := range variants {
		title := StyleAsIs
		if v.upper {
			title = StyleUpper
		}
		owner := strings.TrimSuffix(v.ownerT, " Name")
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
			KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "Whois Server", WhoisServer),
			KV(labels.Registrar, labels.FieldOther, "Referral URL", RegistrarURL),
			NameServersKV("Name Server", false),
			StatusesKV("Status"),
			DateKV("Updated Date", Updated),
			DateKV("Creation Date", Created),
			DateKV("Expiration Date", Expires),
			Blank(),
			KV(labels.Registrant, labels.FieldName, v.ownerT, P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, owner+" Organization", P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, owner+" Address", P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, owner+" City", P(Registrant, City)),
			KV(labels.Registrant, labels.FieldState, owner+" State", P(Registrant, State)),
			KV(labels.Registrant, labels.FieldPostcode, owner+" Zip", P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, owner+" Country", P(Registrant, CountryCode)),
			KV(labels.Registrant, labels.FieldPhone, v.phoneT, P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, v.emailT, P(Registrant, EmailOf)),
			Blank(),
			Raw(labels.Null,
				"Registration Service Provided By: "+"see registrar above",
				"This data is provided for information purposes, and to assist persons obtaining",
				"information about or related to domain name registration records."),
		}
		out = append(out, &Schema{ID: v.id, Title: title, AlignWidth: v.width, AlignFill: v.fill, DateFmt: v.dateFmt, Elements: els})
	}
	return out
}

// ---- Bracket family: Japanese-registrar style "[Field] value" lines ----

func bracketFamily() []*Schema {
	bracket := func(s string) string { return "[" + s + "]" }
	type variant struct {
		id      string
		dateFmt string
		nameT   string
		orgT    string
	}
	variants := []variant{
		{"jp-0", "2006/01/02", "Registrant", "Organization"},
		{"jp-1", "2006/01/02 15:04:05 (JST)", "Name", "Organization"},
		{"jp-2", "2006-01-02", "Holder", "Company"},
	}
	var out []*Schema
	for _, v := range variants {
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
			KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "Registrar URL", RegistrarURL),
			DateKV("Created on", Created),
			DateKV("Expires on", Expires),
			DateKV("Last updated on", Updated),
			Blank(),
			KV(labels.Registrant, labels.FieldName, v.nameT, P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, v.orgT, P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, "Address", P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, "City", P(Registrant, City)),
			KV(labels.Registrant, labels.FieldState, "Prefecture", P(Registrant, State)),
			KV(labels.Registrant, labels.FieldPostcode, "Postal code", P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, "Country", P(Registrant, CountryName)),
			KV(labels.Registrant, labels.FieldPhone, "Phone", P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, "Email", P(Registrant, EmailOf)),
			Blank(),
			KV(labels.Other, labels.FieldOther, "Admin Contact", P(Admin, Name)),
			KV(labels.Other, labels.FieldOther, "Admin Email", P(Admin, EmailOf)),
			KV(labels.Other, labels.FieldOther, "Tech Contact", P(Tech, Name)),
			Blank(),
			NameServersKV("Name Server", false),
			Blank(),
			Raw(labels.Null,
				"To view whois information in Japanese, please access our web whois service.",
				"Use of this service for commercial purposes is strictly prohibited."),
		}
		out = append(out, &Schema{ID: v.id, Title: func(s string) string { return bracket(s) }, Sep: " ", DateFmt: v.dateFmt, Elements: els})
	}
	return out
}

// ---- Lower family: terse lower-case keys (European reseller style) ----

func lowerFamily() []*Schema {
	type variant struct {
		id      string
		ownerT  string
		emailT  string
		dateFmt string
		snake   bool
	}
	variants := []variant{
		{"lower-0", "owner", "e-mail", "2006-01-02", false},
		{"lower-1", "holder", "email", "02.01.2006", false},
		{"lower-2", "registrant name", "registrant email", "2006-01-02 15:04:05", true},
		{"lower-3", "owner-name", "owner-email", "2006/01/02", false},
		{"lower-4", "person", "e-mail", "2006.01.02", false},
		{"lower-5", "org name", "org email", "2006-01-02", true},
	}
	var out []*Schema
	for _, v := range variants {
		style := StyleLower
		if v.snake {
			style = StyleSnake
		}
		ownerStem := strings.Split(v.ownerT, " ")[0]
		ownerStem = strings.Split(ownerStem, "-")[0]
		els := []Element{
			KV(labels.Domain, labels.FieldOther, "domain", Rd(false)),
			KV(labels.Registrant, labels.FieldName, v.ownerT, P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, ownerStem+" organization", P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, "address", P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, "city", P(Registrant, City)),
			KV(labels.Registrant, labels.FieldPostcode, "postal code", P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, "country", P(Registrant, CountryCode)),
			KV(labels.Registrant, labels.FieldPhone, "phone", P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, v.emailT, P(Registrant, EmailOf)),
			Blank(),
			KV(labels.Other, labels.FieldOther, "admin-c", P(Admin, Name)),
			KV(labels.Other, labels.FieldOther, "tech-c", P(Tech, Name)),
			Blank(),
			NameServersKV("nserver", false),
			StatusesKV("status"),
			DateKV("created", Created),
			DateKV("modified", Updated),
			DateKV("expires", Expires),
			Blank(),
			KV(labels.Registrar, labels.FieldOther, "registrar", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "www", RegistrarURL),
			Blank(),
			Raw(labels.Null,
				"# The following data is provided by the registrar of record.",
				"# Query rates are limited; excessive querying will lead to denial of service."),
		}
		out = append(out, &Schema{ID: v.id, Title: style, DateFmt: v.dateFmt, Elements: els})
	}
	return out
}

// ---- Pct family: records headed by %-comment banners ----

func pctFamily() []*Schema {
	type variant struct {
		id      string
		banner  []string
		dateFmt string
	}
	variants := []variant{
		{"pct-0", []string{"% This is the WHOIS service of the sponsoring registrar.", "% Rights restricted by copyright."}, "2006-01-02"},
		{"pct-1", []string{"%% WHOIS lookup service", "%% Use of this data for unsolicited email is forbidden."}, "02-Jan-2006 15:04:05 UTC"},
		{"pct-2", []string{"# Whois data provided by the registrar", "# All timestamps are UTC."}, "2006-01-02T15:04:05Z"},
	}
	var out []*Schema
	for _, v := range variants {
		els := []Element{
			Raw(labels.Null, v.banner...),
			Blank(),
			KV(labels.Domain, labels.FieldOther, "Domain", Rd(false)),
			StatusesKV("Status"),
			NameServersKV("Nameserver", false),
			DateKV("Registered", Created),
			DateKV("Modified", Updated),
			DateKV("Expires", Expires),
			Blank(),
			Header(labels.Registrant, labels.FieldOther, "Registrant Contact:"),
			KV(labels.Registrant, labels.FieldName, "  Name", P(Registrant, Name)),
			KV(labels.Registrant, labels.FieldOrg, "  Organisation", P(Registrant, Org)),
			KV(labels.Registrant, labels.FieldStreet, "  Street", P(Registrant, Street)),
			KV(labels.Registrant, labels.FieldCity, "  City", P(Registrant, City)),
			KV(labels.Registrant, labels.FieldState, "  State", P(Registrant, State)),
			KV(labels.Registrant, labels.FieldPostcode, "  Postcode", P(Registrant, Postcode)),
			KV(labels.Registrant, labels.FieldCountry, "  Country", P(Registrant, CountryCode)),
			KV(labels.Registrant, labels.FieldPhone, "  Telephone", P(Registrant, PhoneOf)),
			KV(labels.Registrant, labels.FieldEmail, "  Email", P(Registrant, EmailOf)),
			Blank(),
			Header(labels.Other, labels.FieldOther, "Technical Contact:"),
			KV(labels.Other, labels.FieldOther, "  Name", P(Tech, Name)),
			KV(labels.Other, labels.FieldOther, "  Email", P(Tech, EmailOf)),
			Blank(),
			KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
			KV(labels.Registrar, labels.FieldOther, "Registrar Website", RegistrarURL),
		}
		out = append(out, &Schema{ID: v.id, DateFmt: v.dateFmt, Elements: els})
	}
	return out
}

// ---- Odd family: one-off unusual formats (the "albygg.com" nod) ----

func oddFamily() []*Schema {
	var out []*Schema

	// odd-0: everything in one run-on block style with "is" sentences.
	out = append(out, &Schema{ID: "odd-0", DateFmt: "January 2, 2006", Elements: []Element{
		KV(labels.Domain, labels.FieldOther, "The domain", Rd(false)),
		KV(labels.Registrar, labels.FieldOther, "Registered through", RegistrarName),
		DateKV("Registered on", Created),
		DateKV("Renewal date", Expires),
		Blank(),
		Header(labels.Registrant, labels.FieldOther, "Registered to:"),
		Bare(labels.Registrant, labels.FieldName, P(Registrant, Name)),
		Bare(labels.Registrant, labels.FieldStreet, P(Registrant, Street)),
		Bare(labels.Registrant, labels.FieldCity, CityStateZip(Registrant)),
		Bare(labels.Registrant, labels.FieldCountry, P(Registrant, CountryName)),
		Blank(),
		Header(labels.Domain, labels.FieldOther, "DNS servers:"),
		NameServersBare(false),
	}, Indent: "  "})

	// odd-1: uppercase everything, tab separators.
	out = append(out, &Schema{ID: "odd-1", Title: StyleUpper, Sep: ":\t", DateFmt: "2006-01-02", Elements: []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Registrar Whois", WhoisServer),
		StatusesKV("Domain Status"),
		DateKV("Domain Registration Date", Created),
		DateKV("Domain Expiration Date", Expires),
		DateKV("Domain Last Updated Date", Updated),
		Blank(),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone Number", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		Blank(),
		KV(labels.Other, labels.FieldOther, "Administrative Contact Name", P(Admin, Name)),
		KV(labels.Other, labels.FieldOther, "Administrative Contact Email", P(Admin, EmailOf)),
		KV(labels.Other, labels.FieldOther, "Technical Contact Name", P(Tech, Name)),
		KV(labels.Other, labels.FieldOther, "Technical Contact Email", P(Tech, EmailOf)),
		Blank(),
		NameServersKV("Name Server", true),
	}})

	// odd-2: contact details inline after a "Contact:" sentence.
	out = append(out, &Schema{ID: "odd-2", DateFmt: "2006-01-02", Elements: []Element{
		Raw(labels.Null, "*** This whois output is produced by a legacy provisioning system. ***"),
		Blank(),
		KV(labels.Domain, labels.FieldOther, "Domain", Rd(false)),
		KV(labels.Domain, labels.FieldOther, "Primary nameserver", firstNS),
		KV(labels.Domain, labels.FieldOther, "Secondary nameserver", secondNS),
		DateKV("Created", Created),
		DateKV("Expires", Expires),
		Blank(),
		Header(labels.Registrant, labels.FieldOther, "Registrant contact details"),
		KV(labels.Registrant, labels.FieldName, "Full name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Company", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Postal address", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Town", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldPostcode, "Zip", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Country code", P(Registrant, CountryCode)),
		KV(labels.Registrant, labels.FieldPhone, "Telephone", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldFax, "Telefax", P(Registrant, FaxOf)),
		KV(labels.Registrant, labels.FieldEmail, "E-mail", P(Registrant, EmailOf)),
		Blank(),
		KV(labels.Registrar, labels.FieldOther, "Record maintained by", RegistrarName),
	}})

	return out
}

func firstNS(r *Registration) string {
	if len(r.NameServers) > 0 {
		return r.NameServers[0]
	}
	return ""
}

func secondNS(r *Registration) string {
	if len(r.NameServers) > 1 {
		return r.NameServers[1]
	}
	return ""
}
