package templates

import (
	"strings"
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/labels"
	"repro/internal/tokenize"
)

func sampleRegistration() *Registration {
	g := identity.NewGenerator(1)
	return &Registration{
		Domain:        "example.com",
		TLD:           "com",
		RegistrarName: "Example Registrar, Inc.",
		RegistrarIANA: 999,
		RegistrarURL:  "http://www.example-registrar.com",
		WhoisServer:   "whois.example-registrar.com",
		Created:       time.Date(2010, 3, 14, 15, 9, 26, 0, time.UTC),
		Updated:       time.Date(2014, 1, 2, 3, 4, 5, 0, time.UTC),
		Expires:       time.Date(2016, 3, 14, 15, 9, 26, 0, time.UTC),
		Registrant:    g.Person("US", true),
		Admin:         g.Person("US", false),
		Tech:          g.Person("US", false),
		NameServers:   []string{"ns1.example.com", "ns2.example.com"},
		Statuses:      []string{"clientTransferProhibited"},
	}
}

func TestComSchemaPoolSize(t *testing.T) {
	if n := len(ComSchemas()); n < 25 {
		t.Errorf("com schema pool has only %d formats; diversity is the point", n)
	}
}

func TestSchemaIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range ComSchemas() {
		if seen[s.ID] {
			t.Errorf("duplicate schema id %q", s.ID)
		}
		seen[s.ID] = true
	}
	for _, s := range NewTLDSchemas() {
		if seen[s.ID] {
			t.Errorf("duplicate schema id %q", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestByID(t *testing.T) {
	if ByID("icann-0") == nil {
		t.Error("icann-0 not found")
	}
	if ByID("tld-coop") == nil {
		t.Error("tld-coop not found")
	}
	if ByID("bogus") != nil {
		t.Error("bogus id resolved")
	}
}

func TestNewTLDSchemasCoverTable2(t *testing.T) {
	want := []string{"aero", "asia", "biz", "coop", "info", "mobi", "name", "org", "pro", "travel", "us", "xxx"}
	for _, tld := range want {
		if NewTLDSchema(tld) == nil {
			t.Errorf("new TLD %s has no schema", tld)
		}
	}
	if NewTLDSchema("com") != nil {
		t.Error("com should not be a new-TLD schema")
	}
}

// TestRenderAlignment is the central invariant: for every schema, the
// ground-truth labels correspond one-to-one with the lines the tokenizer
// retains.
func TestRenderAlignment(t *testing.T) {
	reg := sampleRegistration()
	all := append(append([]*Schema{}, ComSchemas()...), NewTLDSchemas()...)
	for _, s := range all {
		r := s.Render(reg)
		lines := tokenize.Tokenize(r.Text, tokenize.Options{})
		if len(lines) != len(r.Lines) {
			t.Errorf("schema %s: %d tokenized lines vs %d labels", s.ID, len(lines), len(r.Lines))
			continue
		}
		for i, ln := range lines {
			if strings.TrimSpace(ln.Raw) != strings.TrimSpace(r.Lines[i].Text) {
				t.Errorf("schema %s line %d: tokenizer saw %q, labels say %q",
					s.ID, i, ln.Raw, r.Lines[i].Text)
				break
			}
		}
	}
}

func TestRenderAlignmentUnderDrift(t *testing.T) {
	reg := sampleRegistration()
	for _, s := range ComSchemas() {
		for _, kind := range []DriftKind{DriftTitles, DriftSeparator, DriftDates} {
			d := Drift(s, kind)
			r := d.Render(reg)
			lines := tokenize.Tokenize(r.Text, tokenize.Options{})
			if len(lines) != len(r.Lines) {
				t.Errorf("schema %s drift %d: %d vs %d lines", s.ID, kind, len(lines), len(r.Lines))
			}
		}
	}
}

func TestRenderContainsRegistrantData(t *testing.T) {
	reg := sampleRegistration()
	for _, s := range ComSchemas() {
		r := s.Render(reg)
		if !strings.Contains(r.Text, reg.Registrant.Name) {
			t.Errorf("schema %s: registrant name missing from output", s.ID)
		}
		// odd-0 and the InterNIC-era legacy family publish no registrant
		// e-mail line.
		switch s.ID {
		case "odd-0", "legacy-0", "legacy-1":
		default:
			if !strings.Contains(r.Text, reg.Registrant.Email) {
				t.Errorf("schema %s: registrant email missing from output", s.ID)
			}
		}
		if !strings.Contains(strings.ToLower(r.Text), reg.Domain) {
			t.Errorf("schema %s: domain missing from output", s.ID)
		}
	}
}

func TestRenderGroundTruthHasRegistrantBlock(t *testing.T) {
	reg := sampleRegistration()
	for _, s := range append(append([]*Schema{}, ComSchemas()...), NewTLDSchemas()...) {
		r := s.Render(reg)
		counts := make(map[labels.Block]int)
		for _, ln := range r.Lines {
			counts[ln.Block]++
		}
		if counts[labels.Registrant] == 0 {
			t.Errorf("schema %s: no registrant lines in ground truth", s.ID)
		}
		if counts[labels.Domain] == 0 {
			t.Errorf("schema %s: no domain lines in ground truth", s.ID)
		}
		if counts[labels.Date] == 0 {
			t.Errorf("schema %s: no date lines in ground truth", s.ID)
		}
	}
}

func TestRegistrantFieldLabels(t *testing.T) {
	reg := sampleRegistration()
	for _, s := range ComSchemas() {
		r := s.Render(reg)
		fields := make(map[labels.Field]bool)
		for _, ln := range r.Lines {
			if ln.Block == labels.Registrant {
				fields[ln.Field] = true
			}
		}
		if !fields[labels.FieldName] {
			t.Errorf("schema %s: registrant name line missing", s.ID)
		}
		// odd-0 and the legacy (InterNIC-era) family genuinely publish no
		// registrant e-mail; contact e-mail lived with the handles.
		switch s.ID {
		case "odd-0", "legacy-0", "legacy-1":
		default:
			if !fields[labels.FieldEmail] {
				t.Errorf("schema %s: registrant email line missing", s.ID)
			}
		}
	}
}

func TestEmptyValuesSkipped(t *testing.T) {
	reg := sampleRegistration()
	reg.Registrant.Fax = ""
	reg.Registrant.Street2 = ""
	for _, s := range ComSchemas() {
		r := s.Render(reg)
		for _, ln := range r.Lines {
			trimmed := strings.TrimSpace(ln.Text)
			if strings.HasSuffix(trimmed, ":") && ln.Block == labels.Registrant && ln.Field == labels.FieldFax {
				t.Errorf("schema %s: rendered empty fax line %q", s.ID, ln.Text)
			}
		}
	}
}

func TestDriftChangesOutput(t *testing.T) {
	reg := sampleRegistration()
	for _, s := range ComSchemas()[:6] {
		orig := s.Render(reg).Text
		changed := false
		for _, kind := range []DriftKind{DriftTitles, DriftSeparator, DriftDates} {
			if Drift(s, kind).Render(reg).Text != orig {
				changed = true
			}
		}
		if !changed {
			t.Errorf("schema %s: no drift kind changed the output", s.ID)
		}
	}
}

func TestDriftPreservesIDSuffix(t *testing.T) {
	s := ComSchemas()[0]
	d := Drift(s, DriftTitles)
	if d.ID != s.ID+"+drift" {
		t.Errorf("drift id %q", d.ID)
	}
	if s.ID == d.ID {
		t.Error("drift mutated the original schema")
	}
}

func TestTitleStyles(t *testing.T) {
	if StyleUpper("Domain Name") != "DOMAIN NAME" {
		t.Error("StyleUpper broken")
	}
	if StyleLower("Domain Name") != "domain name" {
		t.Error("StyleLower broken")
	}
	if StyleSnake("Domain Name") != "domain_name" {
		t.Error("StyleSnake broken")
	}
}

func TestFormatKVAlignment(t *testing.T) {
	s := &Schema{AlignWidth: 20, AlignFill: '.'}
	line := s.formatKV("Domain", "x.com")
	if !strings.HasPrefix(line, "Domain..............") {
		t.Errorf("aligned line %q", line)
	}
	if !strings.HasSuffix(line, ": x.com") {
		t.Errorf("aligned line %q missing separator+value", line)
	}
}

func TestCityStateZip(t *testing.T) {
	reg := sampleRegistration()
	reg.Registrant.City = "San Diego"
	reg.Registrant.State = "CA"
	reg.Registrant.Postcode = "92122"
	got := CityStateZip(Registrant)(reg)
	if got != "San Diego, CA 92122" {
		t.Errorf("CityStateZip = %q", got)
	}
	reg.Registrant.State = ""
	if got := CityStateZip(Registrant)(reg); got != "San Diego 92122" {
		t.Errorf("CityStateZip without state = %q", got)
	}
}

func TestDateFormatsParseable(t *testing.T) {
	// Every schema's date format must render a recoverable year.
	reg := sampleRegistration()
	for _, s := range append(append([]*Schema{}, ComSchemas()...), NewTLDSchemas()...) {
		rendered := s.date(reg.Created)
		if !strings.Contains(rendered, "2010") && !strings.Contains(rendered, "10") {
			t.Errorf("schema %s: date %q lost the year", s.ID, rendered)
		}
	}
}

func TestRegistryDomainIDStable(t *testing.T) {
	reg := sampleRegistration()
	a := registryDomainID(reg)
	b := registryDomainID(reg)
	if a != b {
		t.Error("registry domain id is not deterministic")
	}
	reg2 := sampleRegistration()
	reg2.Domain = "other.com"
	if registryDomainID(reg2) == a {
		t.Error("different domains share a registry id")
	}
}
