package templates

import "strings"

// Format drift (§2.3, footnote 6): registrars change their schema over
// time — a renamed field title, a different separator, a new date format —
// and exact-template parsers break. Drift produces a mutated copy of a
// schema so the experiments can measure that fragility.

// DriftKind selects a mutation.
type DriftKind int

// The supported drift mutations.
const (
	// DriftTitles renames field titles with common synonyms
	// ("Creation Date" -> "Created Date", "Email" -> "Email Address"...).
	DriftTitles DriftKind = iota
	// DriftSeparator changes the title/value separator.
	DriftSeparator
	// DriftDates changes the date rendering format.
	DriftDates
)

// titleSynonyms maps original title words to drifted replacements. The
// rewrite applies to whole space-separated words of the pre-styled title.
var titleSynonyms = map[string]string{
	"Creation":     "Created",
	"Expiration":   "Expiry",
	"Updated":      "Modified",
	"Organization": "Organisation",
	"Email":        "Email Address",
	"Phone":        "Telephone",
	"Street":       "Address",
	"Postal":       "Post",
	"Server":       "Servers",
}

// Drift returns a copy of s with one mutation applied. The copy's ID gains
// a "+drift" suffix so template-based parsers keyed by schema identity can
// still be pointed at the *original* template, which is the failure the
// paper demonstrates.
func Drift(s *Schema, kind DriftKind) *Schema {
	out := *s
	out.ID = s.ID + "+drift"
	switch kind {
	case DriftTitles:
		inner := s.Title
		out.Title = func(t string) string {
			words := strings.Split(t, " ")
			for i, w := range words {
				if r, ok := titleSynonyms[w]; ok {
					words[i] = r
				}
			}
			t = strings.Join(words, " ")
			if inner != nil {
				t = inner(t)
			}
			return t
		}
	case DriftSeparator:
		switch s.sep() {
		case ": ":
			out.Sep = " : "
		default:
			out.Sep = ": "
		}
	case DriftDates:
		switch s.DateFmt {
		case "2006-01-02":
			out.DateFmt = "02-Jan-2006"
		default:
			out.DateFmt = "2006-01-02"
		}
	}
	return &out
}
