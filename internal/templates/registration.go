// Package templates models the *format diversity* at the heart of the
// paper: each registrar (or thick-registry TLD) renders domain
// registration data into its own WHOIS schema. A Schema turns a
// Registration into record text plus per-line ground-truth labels, which
// is how the synthetic corpus (internal/synth) gets labeled data "for
// free" — standing in for the paper's 86K rule-labeled records.
//
// The com schema pool (schemas_com.go) contains several format families
// with many variants each, mirroring the between-registrar diversity of
// the thin com registry; schemas_newtld.go defines the 12 single-registrar
// new-TLD formats of Table 2.
package templates

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/identity"
	"repro/internal/labels"
)

// Registration is the ground-truth registration data for one domain,
// independent of any output format.
type Registration struct {
	Domain        string // fully qualified, lower case ("example.com")
	TLD           string
	RegistrarName string
	RegistrarIANA int
	RegistrarURL  string
	WhoisServer   string // the registrar's thick WHOIS server

	Created time.Time
	Updated time.Time
	Expires time.Time

	Registrant identity.Person
	Admin      identity.Person
	Tech       identity.Person

	NameServers []string
	Statuses    []string

	// Privacy reports that the registrant identity is a privacy-protection
	// placeholder; PrivacyService names the service.
	Privacy        bool
	PrivacyService string
}

// Rendered is the output of Schema.Render: the record text and the
// ground-truth label for every retained (labelable) line, in order.
type Rendered struct {
	Text  string
	Lines []labels.LabeledLine
}

// ValueFn extracts a string from a Registration at render time.
type ValueFn func(r *Registration) string

// TitleStyle rewrites field titles into the schema's house style.
type TitleStyle func(string) string

// Identity title styles.
var (
	StyleAsIs  TitleStyle = func(s string) string { return s }
	StyleUpper TitleStyle = strings.ToUpper
	StyleLower TitleStyle = strings.ToLower
	// StyleSnake lowercases and replaces spaces with underscores
	// ("Registrant Name" -> "registrant_name").
	StyleSnake TitleStyle = func(s string) string {
		return strings.ReplaceAll(strings.ToLower(s), " ", "_")
	}
)

// Schema describes one WHOIS output format.
type Schema struct {
	// ID uniquely names the schema (e.g. "icann-v3").
	ID string
	// TLD is non-empty for registry-wide (thick TLD) schemas.
	TLD string
	// Title styles every field title; nil means StyleAsIs.
	Title TitleStyle
	// Sep separates title from value ("": use ": ").
	Sep string
	// AlignWidth > 0 pads titles with AlignFill up to the width before the
	// separator (the "Domain Name..........:" style).
	AlignWidth int
	// AlignFill is the padding byte, '.' or ' '. Zero means '.'.
	AlignFill byte
	// DateFmt is the Go layout for rendering dates; "" means "2006-01-02".
	DateFmt string
	// Indent prefixes value-only lines in block-context sections.
	Indent string
	// Elements compose the record top to bottom.
	Elements []Element
}

// Element is one renderable piece of a schema.
type Element interface {
	render(s *Schema, r *Registration, out *builder)
}

type builder struct {
	text  strings.Builder
	lines []labels.LabeledLine
}

func (b *builder) addRaw(line string) {
	b.text.WriteString(line)
	b.text.WriteByte('\n')
}

func (b *builder) addLabeled(line string, block labels.Block, field labels.Field) {
	b.addRaw(line)
	if hasAlnum(line) {
		b.lines = append(b.lines, labels.LabeledLine{Text: line, Block: block, Field: field})
	}
}

func hasAlnum(s string) bool {
	for _, r := range s {
		if (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r > 127 {
			return true
		}
	}
	return false
}

// Render produces the record text and ground-truth labels for r.
func (s *Schema) Render(r *Registration) Rendered {
	var b builder
	for _, e := range s.Elements {
		e.render(s, r, &b)
	}
	text := b.text.String()
	text = strings.TrimRight(text, "\n")
	return Rendered{Text: text, Lines: b.lines}
}

func (s *Schema) sep() string {
	if s.Sep == "" {
		return ": "
	}
	return s.Sep
}

func (s *Schema) styleTitle(t string) string {
	if s.Title == nil {
		return t
	}
	return s.Title(t)
}

func (s *Schema) formatKV(title, value string) string {
	t := s.styleTitle(title)
	if s.AlignWidth > 0 {
		fill := s.AlignFill
		if fill == 0 {
			fill = '.'
		}
		for len(t) < s.AlignWidth {
			t += string(fill)
		}
	}
	return t + s.sep() + value
}

func (s *Schema) date(t time.Time) string {
	layout := s.DateFmt
	if layout == "" {
		layout = "2006-01-02"
	}
	return t.Format(layout)
}

// ---- Elements ----

// kv renders "Title<sep>value" labeled (block, field). Empty values are
// skipped unless keepEmpty is set.
type kv struct {
	block     labels.Block
	field     labels.Field
	title     string
	value     ValueFn
	keepEmpty bool
}

func (e kv) render(s *Schema, r *Registration, out *builder) {
	v := e.value(r)
	if v == "" && !e.keepEmpty {
		return
	}
	out.addLabeled(s.formatKV(e.title, v), e.block, e.field)
}

// KV builds a titled key/value line element.
func KV(block labels.Block, field labels.Field, title string, value ValueFn) Element {
	return kv{block: block, field: field, title: title, value: value}
}

// KVKeep is KV but renders the line even when the value is empty.
func KVKeep(block labels.Block, field labels.Field, title string, value ValueFn) Element {
	return kv{block: block, field: field, title: title, value: value, keepEmpty: true}
}

// bare renders an untitled value line (block-context style), indented per
// the schema.
type bare struct {
	block labels.Block
	field labels.Field
	value ValueFn
}

func (e bare) render(s *Schema, r *Registration, out *builder) {
	v := e.value(r)
	if v == "" {
		return
	}
	out.addLabeled(s.Indent+v, e.block, e.field)
}

// Bare builds an untitled, indented value line element.
func Bare(block labels.Block, field labels.Field, value ValueFn) Element {
	return bare{block: block, field: field, value: value}
}

// header renders a section header line such as "Registrant:".
type header struct {
	block labels.Block
	field labels.Field
	text  string
}

func (e header) render(s *Schema, r *Registration, out *builder) {
	out.addLabeled(s.styleTitle(e.text), e.block, e.field)
}

// Header builds a section-header element labeled (block, field).
func Header(block labels.Block, field labels.Field, text string) Element {
	return header{block: block, field: field, text: text}
}

// raw renders fixed text lines all carrying one label (usually Null
// boilerplate).
type raw struct {
	block labels.Block
	lines []string
}

func (e raw) render(s *Schema, r *Registration, out *builder) {
	for _, ln := range e.lines {
		out.addLabeled(ln, e.block, labels.FieldOther)
	}
}

// Raw builds a fixed-text element; every line is labeled (block, other).
func Raw(block labels.Block, lines ...string) Element {
	return raw{block: block, lines: lines}
}

// blank emits an empty line (unlabeled; becomes an NL marker downstream).
type blank struct{}

func (blank) render(s *Schema, r *Registration, out *builder) { out.addRaw("") }

// Blank builds an empty-line element.
func Blank() Element { return blank{} }

// dyn renders computed lines at render time; fn returns (text, block,
// field) triples.
type dyn struct {
	fn func(s *Schema, r *Registration) []labels.LabeledLine
}

func (e dyn) render(s *Schema, r *Registration, out *builder) {
	for _, ln := range e.fn(s, r) {
		out.addLabeled(ln.Text, ln.Block, ln.Field)
	}
}

// Dyn builds an element from a render-time callback.
func Dyn(fn func(s *Schema, r *Registration) []labels.LabeledLine) Element { return dyn{fn: fn} }

// ---- Common value functions ----

// Rd returns the domain (upper-cased when up is true).
func Rd(up bool) ValueFn {
	return func(r *Registration) string {
		if up {
			return strings.ToUpper(r.Domain)
		}
		return r.Domain
	}
}

// RegistrarName, RegistrarURL, WhoisServer, IANA expose registrar fields.
func RegistrarName(r *Registration) string { return r.RegistrarName }

// RegistrarURL returns the registrar's web URL.
func RegistrarURL(r *Registration) string { return r.RegistrarURL }

// WhoisServer returns the registrar's WHOIS server host name.
func WhoisServer(r *Registration) string { return r.WhoisServer }

// IANA returns the registrar's IANA id as decimal text.
func IANA(r *Registration) string { return fmt.Sprintf("%d", r.RegistrarIANA) }

// DateCreated renders the creation date in the schema's format; it must be
// wrapped via WithSchema at schema build time, so instead we provide
// schema-aware dynamic elements below.

// ContactSel selects one of the three contacts.
type ContactSel func(r *Registration) *identity.Person

// Registrant, Admin and Tech select the respective contacts.
func Registrant(r *Registration) *identity.Person { return &r.Registrant }

// Admin selects the administrative contact.
func Admin(r *Registration) *identity.Person { return &r.Admin }

// Tech selects the technical contact.
func Tech(r *Registration) *identity.Person { return &r.Tech }

// P lifts a Person field accessor into a ValueFn for the selected contact.
func P(sel ContactSel, get func(*identity.Person) string) ValueFn {
	return func(r *Registration) string { return get(sel(r)) }
}

// Person field accessors for use with P.
func Name(p *identity.Person) string     { return p.Name }
func Org(p *identity.Person) string      { return p.Org }
func Street(p *identity.Person) string   { return p.Street }
func Street2(p *identity.Person) string  { return p.Street2 }
func City(p *identity.Person) string     { return p.City }
func State(p *identity.Person) string    { return p.State }
func Postcode(p *identity.Person) string { return p.Postcode }
func CountryCode(p *identity.Person) string {
	return p.CountryCode
}
func CountryName(p *identity.Person) string { return p.CountryName }
func PhoneOf(p *identity.Person) string     { return p.Phone }
func FaxOf(p *identity.Person) string       { return p.Fax }
func EmailOf(p *identity.Person) string     { return p.Email }

// DateKV renders a titled date line in the schema's date format.
func DateKV(title string, get func(r *Registration) time.Time) Element {
	return Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
		return []labels.LabeledLine{{
			Text:  s.formatKV(title, s.date(get(r))),
			Block: labels.Date,
			Field: labels.FieldOther,
		}}
	})
}

// Created, Updated and Expires are date accessors for DateKV.
func Created(r *Registration) time.Time { return r.Created }

// Updated returns the last-updated timestamp.
func Updated(r *Registration) time.Time { return r.Updated }

// Expires returns the expiration timestamp.
func Expires(r *Registration) time.Time { return r.Expires }

// NameServersKV renders one titled line per name server.
func NameServersKV(title string, upper bool) Element {
	return Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
		out := make([]labels.LabeledLine, 0, len(r.NameServers))
		for _, ns := range r.NameServers {
			if upper {
				ns = strings.ToUpper(ns)
			}
			out = append(out, labels.LabeledLine{
				Text:  s.formatKV(title, ns),
				Block: labels.Domain,
				Field: labels.FieldOther,
			})
		}
		return out
	})
}

// NameServersBare renders one indented untitled line per name server.
func NameServersBare(upper bool) Element {
	return Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
		out := make([]labels.LabeledLine, 0, len(r.NameServers))
		for _, ns := range r.NameServers {
			if upper {
				ns = strings.ToUpper(ns)
			}
			out = append(out, labels.LabeledLine{
				Text:  s.Indent + ns,
				Block: labels.Domain,
				Field: labels.FieldOther,
			})
		}
		return out
	})
}

// StatusesKV renders one titled line per domain status.
func StatusesKV(title string) Element {
	return Dyn(func(s *Schema, r *Registration) []labels.LabeledLine {
		out := make([]labels.LabeledLine, 0, len(r.Statuses))
		for _, st := range r.Statuses {
			out = append(out, labels.LabeledLine{
				Text:  s.formatKV(title, st),
				Block: labels.Domain,
				Field: labels.FieldOther,
			})
		}
		return out
	})
}

// CityStateZip renders "City, ST 12345" as a single line labeled city —
// the paper's "at most one kind of information per line" assumption keeps
// a single label; city is the convention both our parsers and ground
// truth share.
func CityStateZip(sel ContactSel) ValueFn {
	return func(r *Registration) string {
		p := sel(r)
		out := p.City
		if p.State != "" {
			out += ", " + p.State
		}
		if p.Postcode != "" {
			out += " " + p.Postcode
		}
		return out
	}
}
