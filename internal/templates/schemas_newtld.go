package templates

import (
	"repro/internal/labels"
)

// The 12 new-TLD schemas of Table 2. Each of these TLDs is a thick
// registry owned by a single operator, so every WHOIS record inside a TLD
// follows one consistent template (§5.2) — but the templates were never
// seen in com training data. The schemas are graded in how far they drift
// from com conventions, reproducing the paper's difficulty ordering:
// info/org are near-standard (both parsers fine), biz/travel/us rename
// most field titles (rule-based parsers break, the CRF generalizes), and
// coop is structurally alien (both err, the CRF less).

var newTLDSchemas []*Schema

// NewTLDSchemas returns one schema per new TLD, in Table 2 order.
func NewTLDSchemas() []*Schema { return newTLDSchemas }

// NewTLDSchema returns the schema for one TLD, or nil.
func NewTLDSchema(tld string) *Schema {
	for _, s := range newTLDSchemas {
		if s.TLD == tld {
			return s
		}
	}
	return nil
}

func init() {
	newTLDSchemas = []*Schema{
		aeroSchema(), asiaSchema(), bizSchema(), coopSchema(),
		infoSchema(), mobiSchema(), nameSchema(), orgSchema(),
		proSchema(), travelSchema(), usSchema(), xxxSchema(),
	}
}

// standardContact emits an ICANN-style titled registrant + admin block.
func standardContact(stateT, postT string) []Element {
	els := contactKV(Registrant, labels.Registrant, contactOpts{prefix: "Registrant", stateT: stateT, postT: postT, idTitle: "ID"})
	els = append(els, contactKV(Admin, labels.Other, contactOpts{prefix: "Admin", stateT: stateT, postT: postT})...)
	els = append(els, contactKV(Tech, labels.Other, contactOpts{prefix: "Tech", stateT: stateT, postT: postT})...)
	return els
}

func standardHead(domainUp bool) []Element {
	return []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(domainUp)),
		KV(labels.Domain, labels.FieldOther, "Registry Domain ID", registryDomainID),
		KV(labels.Registrar, labels.FieldOther, "Registrar WHOIS Server", WhoisServer),
		KV(labels.Registrar, labels.FieldOther, "Registrar URL", RegistrarURL),
		DateKV("Updated Date", Updated),
		DateKV("Creation Date", Created),
		DateKV("Registry Expiry Date", Expires),
		KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Registrar IANA ID", IANA),
		StatusesKV("Domain Status"),
	}
}

func standardTail() []Element {
	return []Element{
		NameServersKV("Name Server", false),
		KV(labels.Domain, labels.FieldOther, "DNSSEC", func(*Registration) string { return "unsigned" }),
		Blank(),
		Raw(labels.Null,
			"Access to this WHOIS information is provided to assist persons in determining",
			"the contents of a domain name registration record in the registry database."),
	}
}

// info: Afilias thick registry, essentially the com ICANN format.
func infoSchema() *Schema {
	els := standardHead(false)
	els = append(els, standardContact("State/Province", "Postal Code")...)
	els = append(els, standardTail()...)
	return &Schema{ID: "tld-info", TLD: "info", DateFmt: "2006-01-02T15:04:05Z", Elements: els}
}

// org: PIR thick registry, ICANN format with minor spelling changes.
func orgSchema() *Schema {
	els := standardHead(false)
	els = append(els, standardContact("State/Province", "Postal Code")...)
	els = append(els, standardTail()...)
	return &Schema{ID: "tld-org", TLD: "org", DateFmt: "2006-01-02T15:04:05Z", Elements: els}
}

// mobi: dotMobi registry; standard but renames a couple of titles.
func mobiSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		DateKV("Domain Create Date", Created),
		DateKV("Domain Last Updated Date", Updated),
		DateKV("Domain Expiration Date", Expires),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		StatusesKV("Domain Status"),
		Blank(),
	}
	els = append(els, contactKV(Registrant, labels.Registrant, contactOpts{prefix: "Registrant", stateT: "State/Province", postT: "Postal Code", idTitle: "ID"})...)
	els = append(els, contactKV(Admin, labels.Other, contactOpts{prefix: "Administrative Contact", stateT: "State/Province", postT: "Postal Code"})...)
	els = append(els, NameServersKV("Name Server", false))
	els = append(els, Blank(), Raw(labels.Null, "The data in this whois database is provided for informational purposes only."))
	return &Schema{ID: "tld-mobi", TLD: "mobi", DateFmt: "2006-01-02", Elements: els}
}

// name: Verisign name registry; compact with "Registrant" contact only.
func nameSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		KV(labels.Registrar, labels.FieldOther, "Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Whois Server", WhoisServer),
		DateKV("Created On", Created),
		DateKV("Expires On", Expires),
		StatusesKV("Domain Status"),
		Blank(),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryCode)),
		Blank(),
		NameServersKV("Name Server", false),
	}
	return &Schema{ID: "tld-name", TLD: "name", DateFmt: "2006-01-02", Elements: els}
}

// xxx: ICM registry; standard with sponsor wording.
func xxxSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		DateKV("Creation Date", Created),
		DateKV("Updated Date", Updated),
		DateKV("Registry Expiry Date", Expires),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar IANA ID", IANA),
		StatusesKV("Domain Status"),
		Blank(),
	}
	els = append(els, contactKV(Registrant, labels.Registrant, contactOpts{prefix: "Registrant", stateT: "State/Province", postT: "Postal Code", idTitle: "ID"})...)
	els = append(els, NameServersKV("Name Server", false))
	els = append(els, Raw(labels.Null, "For more information on Whois status codes, please visit https://icann.org/epp"))
	return &Schema{ID: "tld-xxx", TLD: "xxx", DateFmt: "2006-01-02T15:04:05Z", Elements: els}
}

// pro: RegistryPro; near-standard but uses "Registrant Address1/Address2".
func proSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		DateKV("Created On", Created),
		DateKV("Last Updated On", Updated),
		DateKV("Expiration Date", Expires),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		StatusesKV("Status"),
		Blank(),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address2", P(Registrant, Street2)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone Number", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		Blank(),
		NameServersKV("Name Server", false),
	}
	return &Schema{ID: "tld-pro", TLD: "pro", DateFmt: "2006-01-02", Elements: els}
}

// aero: SITA registry; aligned-dots format with aviation wording.
func aeroSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		DateKV("Domain Registration Date", Created),
		DateKV("Domain Expiration Date", Expires),
		DateKV("Domain Last Updated Date", Updated),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		Blank(),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone Number", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		Blank(),
		KV(labels.Other, labels.FieldOther, "Admin Contact Name", P(Admin, Name)),
		KV(labels.Other, labels.FieldOther, "Admin Contact Email", P(Admin, EmailOf)),
		Blank(),
		NameServersKV("Nameservers", false),
		Blank(),
		Raw(labels.Null, "Whois for the aero community. Eligibility for aero is limited to the aviation community."),
	}
	return &Schema{ID: "tld-aero", TLD: "aero", AlignWidth: 30, AlignFill: ' ', DateFmt: "2006-01-02", Elements: els}
}

// asia: DotAsia registry; the "CED" (Charter Eligibility Declaration)
// quirks give it vocabulary no com registrar uses.
func asiaSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(false)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		DateKV("Domain Create Date", Created),
		DateKV("Domain Expiration Date", Expires),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		StatusesKV("Domain Status"),
		Blank(),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Street1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country/Economy", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant E-mail", P(Registrant, EmailOf)),
		// CED block: eligibility declarations, vocabulary alien to com.
		KV(labels.Registrant, labels.FieldOther, "CED Type", func(*Registration) string { return "naturalPerson" }),
		KV(labels.Registrant, labels.FieldCountry, "CED Country of Citizenship", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldOther, "CED Legal Form", func(*Registration) string { return "corporation" }),
		Blank(),
		KV(labels.Other, labels.FieldOther, "Administrative Contact Name", P(Admin, Name)),
		KV(labels.Other, labels.FieldOther, "Administrative Contact E-mail", P(Admin, EmailOf)),
		Blank(),
		NameServersKV("Nameservers", false),
	}
	return &Schema{ID: "tld-asia", TLD: "asia", DateFmt: "2006-01-02", Elements: els}
}

// biz: NeuStar format — field titles largely renamed versus com usage.
func bizSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar IANA ID", IANA),
		StatusesKV("Domain Status"),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country Code", P(Registrant, CountryCode)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone Number", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		KV(labels.Other, labels.FieldOther, "Administrative Contact ID", idValue(Admin)),
		KV(labels.Other, labels.FieldOther, "Administrative Contact Name", P(Admin, Name)),
		KV(labels.Other, labels.FieldOther, "Administrative Contact Email", P(Admin, EmailOf)),
		NameServersKV("Name Server", true),
		DateKV("Domain Registration Date", Created),
		DateKV("Domain Expiration Date", Expires),
		DateKV("Domain Last Updated Date", Updated),
	}
	return &Schema{ID: "tld-biz", TLD: "biz", DateFmt: "Mon Jan 02 15:04:05 GMT 2006", Elements: els}
}

// travel: Tralliance; aligned-colon columns with travel-industry wording.
func travelSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		StatusesKV("Domain Status"),
		Blank(),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organisation", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Street1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryCode)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		Blank(),
		NameServersKV("Name Server", true),
		DateKV("Created On", Created),
		DateKV("Expires On", Expires),
		DateKV("Updated On", Updated),
		Blank(),
		Raw(labels.Null, "Registration in travel is restricted to entities in the travel and tourism industry."),
	}
	return &Schema{ID: "tld-travel", TLD: "travel", DateFmt: "02-Jan-2006 15:04:05 UTC", Elements: els}
}

// us: NeuStar usTLD format with Application Purpose / Nexus lines.
func usSchema() *Schema {
	els := []Element{
		KV(labels.Domain, labels.FieldOther, "Domain Name", Rd(true)),
		KV(labels.Domain, labels.FieldOther, "Domain ID", registryDomainID),
		KV(labels.Registrar, labels.FieldOther, "Sponsoring Registrar", RegistrarName),
		KV(labels.Registrar, labels.FieldOther, "Registrar URL (registration services)", RegistrarURL),
		StatusesKV("Domain Status"),
		KV(labels.Registrant, labels.FieldID, "Registrant ID", idValue(Registrant)),
		KV(labels.Registrant, labels.FieldName, "Registrant Name", P(Registrant, Name)),
		KV(labels.Registrant, labels.FieldOrg, "Registrant Organization", P(Registrant, Org)),
		KV(labels.Registrant, labels.FieldStreet, "Registrant Address1", P(Registrant, Street)),
		KV(labels.Registrant, labels.FieldCity, "Registrant City", P(Registrant, City)),
		KV(labels.Registrant, labels.FieldState, "Registrant State/Province", P(Registrant, State)),
		KV(labels.Registrant, labels.FieldPostcode, "Registrant Postal Code", P(Registrant, Postcode)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country", P(Registrant, CountryName)),
		KV(labels.Registrant, labels.FieldCountry, "Registrant Country Code", P(Registrant, CountryCode)),
		KV(labels.Registrant, labels.FieldPhone, "Registrant Phone Number", P(Registrant, PhoneOf)),
		KV(labels.Registrant, labels.FieldEmail, "Registrant Email", P(Registrant, EmailOf)),
		KV(labels.Registrant, labels.FieldOther, "Registrant Application Purpose", func(*Registration) string { return "P1" }),
		KV(labels.Registrant, labels.FieldOther, "Registrant Nexus Category", func(*Registration) string { return "C11" }),
		NameServersKV("Name Server", true),
		DateKV("Domain Registration Date", Created),
		DateKV("Domain Expiration Date", Expires),
		DateKV("Domain Last Updated Date", Updated),
	}
	return &Schema{ID: "tld-us", TLD: "us", DateFmt: "Mon Jan 02 15:04:05 GMT 2006", Elements: els}
}

// coop: the hardest of the lot — a structurally alien block format with
// cooperative-movement vocabulary and bare value lines.
func coopSchema() *Schema {
	els := []Element{
		Raw(labels.Null,
			"%% The coop top-level domain is reserved for cooperatives.",
			"%% This information is provided by the dotCoop registry."),
		Blank(),
		KV(labels.Domain, labels.FieldOther, "Domain", Rd(false)),
		DateKV("Record active from", Created),
		DateKV("Record renewal on", Expires),
		Blank(),
		Header(labels.Registrant, labels.FieldOther, "Holder of the domain:"),
		Bare(labels.Registrant, labels.FieldOrg, P(Registrant, Org)),
		Bare(labels.Registrant, labels.FieldName, P(Registrant, Name)),
		Bare(labels.Registrant, labels.FieldStreet, P(Registrant, Street)),
		Bare(labels.Registrant, labels.FieldCity, P(Registrant, City)),
		Bare(labels.Registrant, labels.FieldPostcode, P(Registrant, Postcode)),
		Bare(labels.Registrant, labels.FieldCountry, P(Registrant, CountryName)),
		Bare(labels.Registrant, labels.FieldPhone, P(Registrant, PhoneOf)),
		Bare(labels.Registrant, labels.FieldEmail, P(Registrant, EmailOf)),
		Blank(),
		Header(labels.Other, labels.FieldOther, "Concerned parties:"),
		Bare(labels.Other, labels.FieldOther, P(Admin, Name)),
		Bare(labels.Other, labels.FieldOther, P(Admin, EmailOf)),
		Bare(labels.Other, labels.FieldOther, P(Tech, Name)),
		Blank(),
		Header(labels.Domain, labels.FieldOther, "Delegated name servers:"),
		NameServersBare(false),
		Blank(),
		KV(labels.Registrar, labels.FieldOther, "Record maintained via", RegistrarName),
		Blank(),
		Raw(labels.Null,
			"%% Verification of cooperative status is carried out by the registry.",
			"%% See www.nic.coop for the verification policy."),
	}
	return &Schema{ID: "tld-coop", TLD: "coop", DateFmt: "2 January 2006", Indent: "  ", Elements: els}
}
