package labels

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// The on-disk format for labeled records is a simple sectioned text file:
//
//	@@record domain=example.com tld=com registrar=godaddy
//	@@text
//	<the raw WHOIS record, verbatim, any number of lines>
//	@@labels
//	<block> <field>          one line per retained line of the text
//	@@end
//
// Raw text lines that begin with "@@" are escaped by doubling the prefix.

// WriteRecords serializes records in the sectioned text format.
func WriteRecords(w io.Writer, records []*LabeledRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if err := writeRecord(bw, r); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("labels: flush records: %w", err)
	}
	return nil
}

func writeRecord(bw *bufio.Writer, r *LabeledRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	// registrar comes last because its value may contain spaces; the
	// reader takes everything after "registrar=".
	fmt.Fprintf(bw, "@@record domain=%s tld=%s registrar=%s\n", r.Domain, r.TLD, r.Registrar)
	bw.WriteString("@@text\n")
	for _, line := range strings.Split(r.Text, "\n") {
		if strings.HasPrefix(line, "@@") {
			bw.WriteString("@@")
		}
		bw.WriteString(line)
		bw.WriteByte('\n')
	}
	bw.WriteString("@@labels\n")
	for _, ln := range r.Lines {
		fmt.Fprintf(bw, "%s %s\n", ln.Block, ln.Field)
	}
	if _, err := bw.WriteString("@@end\n"); err != nil {
		return fmt.Errorf("labels: write record %s: %w", r.Domain, err)
	}
	return nil
}

// ReadRecords parses the sectioned text format produced by WriteRecords.
// Line texts in the returned records are re-derived from the raw text by
// the caller's tokenizer; the Lines slice here carries labels in retained-
// line order with Text filled from the labels section's position.
func ReadRecords(r io.Reader) ([]*LabeledRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []*LabeledRecord
	lineNo := 0
	next := func() (string, bool) {
		if !sc.Scan() {
			return "", false
		}
		lineNo++
		return sc.Text(), true
	}
	for {
		header, ok := next()
		if !ok {
			break
		}
		if strings.TrimSpace(header) == "" {
			continue
		}
		if !strings.HasPrefix(header, "@@record ") {
			return nil, fmt.Errorf("labels: line %d: expected @@record header, got %q", lineNo, header)
		}
		rec := &LabeledRecord{}
		rest := header[len("@@record "):]
		if i := strings.Index(rest, " registrar="); i >= 0 {
			rec.Registrar = rest[i+len(" registrar="):]
			rest = rest[:i]
		}
		for _, kv := range strings.Fields(rest) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return nil, fmt.Errorf("labels: line %d: bad header field %q", lineNo, kv)
			}
			switch kv[:eq] {
			case "domain":
				rec.Domain = kv[eq+1:]
			case "tld":
				rec.TLD = kv[eq+1:]
			default:
				return nil, fmt.Errorf("labels: line %d: unknown header key %q", lineNo, kv[:eq])
			}
		}
		if line, ok := next(); !ok || line != "@@text" {
			return nil, fmt.Errorf("labels: line %d: expected @@text", lineNo)
		}
		var textLines []string
		for {
			line, ok := next()
			if !ok {
				return nil, fmt.Errorf("labels: record %s: unterminated text section", rec.Domain)
			}
			if line == "@@labels" {
				break
			}
			if strings.HasPrefix(line, "@@@@") {
				line = line[2:]
			} else if strings.HasPrefix(line, "@@") {
				return nil, fmt.Errorf("labels: line %d: unexpected directive %q inside text", lineNo, line)
			}
			textLines = append(textLines, line)
		}
		// Each split element of the original text was written with exactly
		// one terminating newline, so joining the collected lines restores
		// the text byte for byte, including any trailing blank lines.
		rec.Text = strings.Join(textLines, "\n")
		for {
			line, ok := next()
			if !ok {
				return nil, fmt.Errorf("labels: record %s: unterminated labels section", rec.Domain)
			}
			if line == "@@end" {
				break
			}
			parts := strings.Fields(line)
			if len(parts) != 2 {
				return nil, fmt.Errorf("labels: line %d: want \"block field\", got %q", lineNo, line)
			}
			b, err := ParseBlock(parts[0])
			if err != nil {
				return nil, fmt.Errorf("labels: line %d: %w", lineNo, err)
			}
			f, err := ParseField(parts[1])
			if err != nil {
				return nil, fmt.Errorf("labels: line %d: %w", lineNo, err)
			}
			rec.Lines = append(rec.Lines, LabeledLine{Block: b, Field: f})
		}
		// Recover per-line text for validation convenience.
		idx := 0
		for _, raw := range textLines {
			if !hasAlnumString(raw) {
				continue
			}
			if idx < len(rec.Lines) {
				rec.Lines[idx].Text = raw
			}
			idx++
		}
		if idx != len(rec.Lines) {
			return nil, fmt.Errorf("labels: record %s: %d labels for %d retained lines", rec.Domain, len(rec.Lines), idx)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("labels: read records: %w", err)
	}
	return out, nil
}

// hasAlnumString mirrors the tokenizer's retention rule: a line is
// labelable iff it contains at least one letter or digit.
func hasAlnumString(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}
