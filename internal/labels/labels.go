// Package labels defines the two label spaces of the paper's two-level
// parsing strategy (§3.2) and a plain-text format for labeled WHOIS
// records used as training and evaluation data.
package labels

import (
	"fmt"
	"strings"
)

// Block is a first-level label: the kind of information a line of a thick
// WHOIS record carries.
type Block int

// The six first-level states of §3.2.
const (
	Registrar  Block = iota // registrar name, URL, ID, whois server
	Domain                  // domain name, name servers, status
	Date                    // creation / expiration / update dates
	Registrant              // the registrant contact block
	Other                   // admin / billing / tech contacts
	Null                    // boilerplate and legalese
)

// NumBlocks is the size of the first-level state space.
const NumBlocks = 6

var blockNames = [NumBlocks]string{"registrar", "domain", "date", "registrant", "other", "null"}

// String returns the canonical lower-case name of the block label.
func (b Block) String() string {
	if b < 0 || int(b) >= NumBlocks {
		return fmt.Sprintf("Block(%d)", int(b))
	}
	return blockNames[b]
}

// ParseBlock converts a canonical name back into a Block.
func ParseBlock(s string) (Block, error) {
	for i, n := range blockNames {
		if n == s {
			return Block(i), nil
		}
	}
	return 0, fmt.Errorf("labels: unknown block label %q", s)
}

// AllBlocks lists every first-level label in state order.
func AllBlocks() []Block {
	out := make([]Block, NumBlocks)
	for i := range out {
		out[i] = Block(i)
	}
	return out
}

// BlockNames lists the canonical names in state order.
func BlockNames() []string {
	out := make([]string, NumBlocks)
	copy(out, blockNames[:])
	return out
}

// Field is a second-level label: a subfield of the registrant block.
type Field int

// The twelve second-level states of §3.2.
const (
	FieldName Field = iota
	FieldID
	FieldOrg
	FieldStreet
	FieldCity
	FieldState
	FieldPostcode
	FieldCountry
	FieldPhone
	FieldFax
	FieldEmail
	FieldOther
)

// NumFields is the size of the second-level state space.
const NumFields = 12

var fieldNames = [NumFields]string{
	"name", "id", "org", "street", "city", "state",
	"postcode", "country", "phone", "fax", "email", "other",
}

// String returns the canonical lower-case name of the field label.
func (f Field) String() string {
	if f < 0 || int(f) >= NumFields {
		return fmt.Sprintf("Field(%d)", int(f))
	}
	return fieldNames[f]
}

// ParseField converts a canonical name back into a Field.
func ParseField(s string) (Field, error) {
	for i, n := range fieldNames {
		if n == s {
			return Field(i), nil
		}
	}
	return 0, fmt.Errorf("labels: unknown field label %q", s)
}

// AllFields lists every second-level label in state order.
func AllFields() []Field {
	out := make([]Field, NumFields)
	for i := range out {
		out[i] = Field(i)
	}
	return out
}

// FieldNames lists the canonical names in state order.
func FieldNames() []string {
	out := make([]string, NumFields)
	copy(out, fieldNames[:])
	return out
}

// LabeledLine pairs one retained line of text with its ground-truth labels.
// Field is only meaningful when Block == Registrant (and is FieldOther
// otherwise).
type LabeledLine struct {
	Text  string
	Block Block
	Field Field
}

// LabeledRecord is a fully labeled thick WHOIS record: the raw text plus
// one LabeledLine per retained (non-empty, alphanumeric) line, in order.
type LabeledRecord struct {
	// Domain is the registered domain name the record describes.
	Domain string
	// TLD is the top-level domain (e.g. "com").
	TLD string
	// Registrar identifies the registrar whose template produced the text.
	Registrar string
	// Text is the full record as served over the wire.
	Text string
	// Lines holds the ground truth for each retained line of Text.
	Lines []LabeledLine
}

// BlockSeq extracts the first-level label sequence.
func (r *LabeledRecord) BlockSeq() []Block {
	out := make([]Block, len(r.Lines))
	for i, ln := range r.Lines {
		out[i] = ln.Block
	}
	return out
}

// RegistrantLines returns the indices of lines labeled Registrant.
func (r *LabeledRecord) RegistrantLines() []int {
	var out []int
	for i, ln := range r.Lines {
		if ln.Block == Registrant {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks internal consistency: every label in range and line text
// non-empty.
func (r *LabeledRecord) Validate() error {
	if r.Domain == "" {
		return fmt.Errorf("labels: record has empty domain")
	}
	for i, ln := range r.Lines {
		if ln.Block < 0 || int(ln.Block) >= NumBlocks {
			return fmt.Errorf("labels: %s line %d: block label out of range", r.Domain, i)
		}
		if ln.Field < 0 || int(ln.Field) >= NumFields {
			return fmt.Errorf("labels: %s line %d: field label out of range", r.Domain, i)
		}
		if strings.TrimSpace(ln.Text) == "" {
			return fmt.Errorf("labels: %s line %d: empty text", r.Domain, i)
		}
	}
	return nil
}
