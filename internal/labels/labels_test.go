package labels

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestBlockStringRoundTrip(t *testing.T) {
	for _, b := range AllBlocks() {
		got, err := ParseBlock(b.String())
		if err != nil || got != b {
			t.Errorf("block %v: round trip got %v, err %v", b, got, err)
		}
	}
}

func TestFieldStringRoundTrip(t *testing.T) {
	for _, f := range AllFields() {
		got, err := ParseField(f.String())
		if err != nil || got != f {
			t.Errorf("field %v: round trip got %v, err %v", f, got, err)
		}
	}
}

func TestParseBlockUnknown(t *testing.T) {
	if _, err := ParseBlock("bogus"); err == nil {
		t.Error("expected error for unknown block")
	}
	if _, err := ParseField("bogus"); err == nil {
		t.Error("expected error for unknown field")
	}
}

func TestStateSpaceSizes(t *testing.T) {
	if len(AllBlocks()) != 6 {
		t.Errorf("paper specifies 6 first-level states, got %d", len(AllBlocks()))
	}
	if len(AllFields()) != 12 {
		t.Errorf("paper specifies 12 second-level states, got %d", len(AllFields()))
	}
}

func TestOutOfRangeString(t *testing.T) {
	if s := Block(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range block string: %q", s)
	}
	if s := Field(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range field string: %q", s)
	}
}

func sampleRecord() *LabeledRecord {
	return &LabeledRecord{
		Domain:    "example.com",
		TLD:       "com",
		Registrar: "Example Registrar",
		Text:      "Domain Name: example.com\n\nRegistrant Name: John\nweird @@ line",
		Lines: []LabeledLine{
			{Text: "Domain Name: example.com", Block: Domain, Field: FieldOther},
			{Text: "Registrant Name: John", Block: Registrant, Field: FieldName},
			{Text: "weird @@ line", Block: Null, Field: FieldOther},
		},
	}
}

func TestValidate(t *testing.T) {
	rec := sampleRecord()
	if err := rec.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := *rec
	bad.Domain = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty domain accepted")
	}
	bad2 := sampleRecord()
	bad2.Lines[0].Block = Block(17)
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestBlockSeqAndRegistrantLines(t *testing.T) {
	rec := sampleRecord()
	seq := rec.BlockSeq()
	if len(seq) != 3 || seq[1] != Registrant {
		t.Errorf("BlockSeq = %v", seq)
	}
	rl := rec.RegistrantLines()
	if len(rl) != 1 || rl[0] != 1 {
		t.Errorf("RegistrantLines = %v", rl)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	recs := []*LabeledRecord{sampleRecord(), sampleRecord()}
	recs[1].Domain = "other.com"
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	for i, g := range got {
		if g.Domain != recs[i].Domain || g.TLD != recs[i].TLD || g.Registrar != recs[i].Registrar {
			t.Errorf("record %d header mismatch: %+v", i, g)
		}
		if g.Text != recs[i].Text {
			t.Errorf("record %d text mismatch:\n%q\nvs\n%q", i, g.Text, recs[i].Text)
		}
		if len(g.Lines) != len(recs[i].Lines) {
			t.Fatalf("record %d: %d lines, want %d", i, len(g.Lines), len(recs[i].Lines))
		}
		for j := range g.Lines {
			if g.Lines[j].Block != recs[i].Lines[j].Block || g.Lines[j].Field != recs[i].Lines[j].Field {
				t.Errorf("record %d line %d label mismatch", i, j)
			}
		}
	}
}

func TestFormatEscapesDirectives(t *testing.T) {
	rec := sampleRecord()
	rec.Text = "@@record fake\nplain line"
	rec.Lines = []LabeledLine{
		{Text: "@@record fake", Block: Null, Field: FieldOther},
		{Text: "plain line", Block: Null, Field: FieldOther},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, []*LabeledRecord{rec}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Text != rec.Text {
		t.Errorf("escaped text mismatch: %q vs %q", got[0].Text, rec.Text)
	}
}

func TestReadRecordsRejectsMalformed(t *testing.T) {
	cases := []string{
		"garbage\n",
		"@@record domain=x tld=com registrar=r\n@@labels\n@@end\n",             // missing @@text
		"@@record domain=x tld=com registrar=r\n@@text\nline\n",                // unterminated
		"@@record domain=x tld=com registrar=r\n@@text\n@@labels\nbogus\n",     // bad label
		"@@record domain=x tld=com registrar=r\n@@text\nln\n@@labels\n@@end\n", // count mismatch
	}
	for i, c := range cases {
		if _, err := ReadRecords(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func testHasAlnum(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func TestFormatRoundTripProperty(t *testing.T) {
	f := func(lines []string, blockRaw []uint8) bool {
		var text []string
		var labeled []LabeledLine
		bi := 0
		for _, l := range lines {
			l = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' {
					return ' '
				}
				return r
			}, l)
			text = append(text, l)
			if testHasAlnum(l) {
				b := Null
				fld := FieldOther
				if len(blockRaw) > 0 {
					b = Block(int(blockRaw[bi%len(blockRaw)]) % NumBlocks)
					fld = Field(int(blockRaw[bi%len(blockRaw)]) % NumFields)
					bi++
				}
				labeled = append(labeled, LabeledLine{Text: l, Block: b, Field: fld})
			}
		}
		if len(labeled) == 0 {
			return true
		}
		rec := &LabeledRecord{Domain: "p.com", TLD: "com", Registrar: "r", Text: strings.Join(text, "\n"), Lines: labeled}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, []*LabeledRecord{rec}); err != nil {
			return false
		}
		got, err := ReadRecords(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		if got[0].Text != rec.Text || len(got[0].Lines) != len(rec.Lines) {
			return false
		}
		for i := range rec.Lines {
			if got[0].Lines[i].Block != rec.Lines[i].Block || got[0].Lines[i].Field != rec.Lines[i].Field {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
