package labels

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRecords asserts the labeled-record reader never panics and
// either errors cleanly or returns records that re-serialize.
func FuzzReadRecords(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteRecords(&buf, []*LabeledRecord{{
		Domain: "x.com", TLD: "com", Registrar: "r",
		Text:  "Domain Name: x.com",
		Lines: []LabeledLine{{Text: "Domain Name: x.com", Block: Domain, Field: FieldOther}},
	}})
	f.Add(buf.String())
	f.Add("@@record domain=a tld=b registrar=c\n@@text\nx\n@@labels\nnull other\n@@end\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadRecords(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRecords(&out, recs); err != nil {
			// Records that fail validation on write must have been
			// produced from inputs the reader should have rejected.
			for _, r := range recs {
				if vErr := r.Validate(); vErr != nil {
					return // reader accepted something odd but flagged by Validate
				}
			}
			t.Fatalf("re-serialize failed for valid records: %v", err)
		}
	})
}
