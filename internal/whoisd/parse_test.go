package whoisd

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/synth"
)

// writerFunc adapts a function to io.Writer for logger sinks in tests.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCutParseQuery(t *testing.T) {
	cases := []struct {
		q, rest string
		ok      bool
	}{
		{"--parse example.com", "example.com", true},
		{"--parse\texample.com", "example.com", true},
		{"--parse   spaced.com  ", "spaced.com", true},
		{"example.com", "", false},
		{"--parse", "", false},        // no argument
		{"--parsefoo.com", "", false}, // prefix must be a whole word
		{"", "", false},
	}
	for _, c := range cases {
		rest, ok := cutParseQuery(c.q)
		if rest != c.rest || ok != c.ok {
			t.Errorf("cutParseQuery(%q) = %q,%v; want %q,%v", c.q, rest, ok, c.rest, c.ok)
		}
	}
}

func TestSummaryRendersAndOmitsEmpty(t *testing.T) {
	pr := &core.ParsedRecord{
		DomainName:  "example.com",
		Registrar:   "Example Registrar",
		CreatedDate: "2014-01-02",
		Registrant:  core.Contact{Name: "Alice Example", Country: "US"},
		Blocks:      []labels.Block{labels.Registrar, labels.Registrant, labels.Null},
	}
	got := Summary(pr)
	for _, want := range []string{
		"%% PARSED\n",
		"Domain Name: example.com\n",
		"Registrar: Example Registrar\n",
		"Creation Date: 2014-01-02\n",
		"Registrant Name: Alice Example\n",
		"Registrant Country: US\n",
		"%% BLOCKS registrar=1 registrant=1 null=1\n",
		"%% END\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "Registrant Email") {
		t.Errorf("summary should omit empty fields:\n%s", got)
	}
}

// fakeParseServer builds a serving layer whose parser marks each record
// with a recognizable registrant, without training a model.
func fakeParseServer() *serve.Server {
	return serve.NewFunc(func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{
			Registrant: core.Contact{Name: "PARSED:" + firstLine(text)},
		}
	}, serve.Options{Workers: 2})
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestClusterParseQueryMode(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 20, Seed: 61})
	eco := registry.BuildEcosystem(domains, 0)
	ps := fakeParseServer()
	defer ps.Close()
	cluster, err := StartCluster(eco, ClusterConfig{Window: time.Second, Penalty: time.Second, Parse: ps})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	regAddr, err := cluster.Directory.Resolve(registry.RegistryServerName)
	if err != nil {
		t.Fatal(err)
	}
	d := domains[0]

	// A --parse query returns the summary, not the raw record.
	resp := rawQuery(t, regAddr, "--parse "+d.Reg.Domain)
	if !strings.Contains(resp, "%% PARSED") || !strings.Contains(resp, "Registrant Name: PARSED:") {
		t.Errorf("--parse response not a summary:\n%s", resp)
	}
	// Plain queries are untouched.
	plain := rawQuery(t, regAddr, d.Reg.Domain)
	if strings.Contains(plain, "%% PARSED") {
		t.Errorf("plain query got a parse summary:\n%s", plain)
	}
	// No-match passes through unparsed.
	miss := rawQuery(t, regAddr, "--parse missing.example")
	if !strings.Contains(miss, registry.NoMatch) {
		t.Errorf("--parse of unknown domain: %q, want no-match passthrough", miss)
	}

	// The thick servers parse too.
	thickAddr, err := cluster.Directory.Resolve(d.Reg.WhoisServer)
	if err != nil {
		t.Fatal(err)
	}
	thick := rawQuery(t, thickAddr, "--parse "+d.Reg.Domain)
	if !strings.Contains(thick, "%% PARSED") {
		t.Errorf("thick --parse response not a summary:\n%s", thick)
	}

	if st := ps.Stats(); st.Parsed == 0 {
		t.Error("serving layer saw no parses")
	}
}

func TestParseModeSurfacesOverload(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ps := serve.NewFunc(func(text string) *core.ParsedRecord {
		started <- struct{}{}
		<-release
		return &core.ParsedRecord{}
	}, serve.Options{Workers: 1, QueueDepth: 1})
	defer ps.Close()
	defer close(release)

	h := withParseMode(func(src, q string) string { return "record for " + q }, ps)

	// Saturate: one parse on the worker, one in the queue.
	go ps.Parse(context.Background(), "record busy")
	<-started
	go ps.Parse(context.Background(), "record queued")
	deadline := time.Now().Add(5 * time.Second)
	for ps.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	if got := h("1.2.3.4", "--parse overflow.com"); got != OverloadedResponse {
		t.Errorf("saturated --parse = %q, want OverloadedResponse", got)
	}
}

func TestParseModeAfterClose(t *testing.T) {
	ps := serve.NewFunc(func(text string) *core.ParsedRecord {
		return &core.ParsedRecord{}
	}, serve.Options{Workers: 1})
	h := withParseMode(func(src, q string) string { return "record" }, ps)
	ps.Close()
	if got := h("1.2.3.4", "--parse x.com"); !strings.HasPrefix(got, "% Parse unavailable") {
		t.Errorf("closed --parse = %q, want unavailable notice", got)
	}
}

func TestServerLogsReadErrors(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	logs := func() string {
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
	s := NewServer("t", HandlerFunc(echoHandler))
	s.ReadTimeout = 30 * time.Millisecond
	s.Log = obs.NewLogger("whoisd", writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Connect and send nothing: the read deadline fires and the error
	// must surface through the structured logger (a silent client is not
	// an EOF).
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for logs() == "" {
		if time.Now().After(deadline) {
			t.Fatal("read timeout never logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := logs()
	if !strings.Contains(got, "read failed") || !strings.Contains(got, "server=t") {
		t.Errorf("log %q, want a structured read error tagged with the server name", got)
	}
}

func TestWriteTimeoutDefault(t *testing.T) {
	s := NewServer("t", HandlerFunc(echoHandler))
	if s.WriteTimeout <= 0 {
		t.Error("NewServer must default WriteTimeout; a stalled reader would pin writes forever")
	}
}
