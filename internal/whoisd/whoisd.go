// Package whoisd implements an RFC 3912 WHOIS server over TCP: the client
// sends one query line terminated by CRLF, the server writes its answer
// and closes the connection. It serves the simulated registry/registrar
// ecosystem of internal/registry, including per-source rate limiting with
// the silent penalty behaviour the paper's crawler had to work around
// (§4.1).
package whoisd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
)

// RateLimitedResponse is what a penalized source receives. Real servers
// variously return errors, empty answers, or nothing; we use an explicit
// marker the crawler can (but does not have to) recognize.
const RateLimitedResponse = "% Query rate exceeded. Access temporarily denied."

// Handler answers one WHOIS query from a given source IP.
type Handler interface {
	Query(sourceIP, query string) string
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(sourceIP, query string) string

// Query implements Handler.
func (f HandlerFunc) Query(sourceIP, query string) string { return f(sourceIP, query) }

// Server is a TCP WHOIS server for one handler.
type Server struct {
	// Name is the server's logical host name (for logs and directories).
	Name string
	// Handler answers queries.
	Handler Handler
	// ReadTimeout bounds how long the server waits for the query line.
	ReadTimeout time.Duration
	// WriteTimeout bounds how long a response write may stall on a slow
	// or dead reader before the connection is dropped; without it a
	// stalled reader pins the response write (and its goroutine) forever.
	WriteTimeout time.Duration
	// Log, when non-nil, receives structured diagnostics, including
	// per-connection read and write errors. A nil logger drops them.
	Log *obs.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer builds a server with sane defaults.
func NewServer(name string, h Handler) *Server {
	return &Server{
		Name:         name,
		Handler:      h,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
		conns:        make(map[net.Conn]struct{}),
	}
}

// Listen binds to addr (e.g. "127.0.0.1:0") and starts serving in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("whoisd %s: listen %s: %w", s.Name, addr, err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			if !s.isClosed() {
				s.warn("accept failed", "err", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if s.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil && line == "" {
		// A bare EOF is a client that connected and went away — routine,
		// not diagnostic. Timeouts and resets are worth surfacing.
		if !errors.Is(err, io.EOF) {
			s.warn("read failed", "peer", remoteIP(conn), "err", err)
		}
		return
	}
	query := strings.TrimRight(line, "\r\n")
	sourceIP := remoteIP(conn)
	resp := s.Handler.Query(sourceIP, query)
	if !strings.HasSuffix(resp, "\n") {
		resp += "\n"
	}
	if s.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	if _, err := conn.Write([]byte(strings.ReplaceAll(resp, "\n", "\r\n"))); err != nil {
		s.warn("write failed", "peer", sourceIP, "err", err)
	}
}

func remoteIP(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conn.RemoteAddr().String()
	}
	return host
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// warn logs a per-connection diagnostic tagged with the server name.
func (s *Server) warn(msg string, kvs ...any) {
	s.Log.Warn(msg, append([]any{"server", s.Name}, kvs...)...)
}

// Close stops the listener, closes live connections, and waits for the
// serving goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// ErrUnknownServer reports a directory miss.
var ErrUnknownServer = errors.New("whoisd: unknown server name")

// Directory maps logical WHOIS server names to bound TCP addresses — the
// simulation's stand-in for DNS.
type Directory struct {
	mu    sync.RWMutex
	addrs map[string]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return &Directory{addrs: make(map[string]string)} }

// Register binds a server name to an address.
func (d *Directory) Register(name, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[name] = addr
}

// Resolve returns the address for a server name.
func (d *Directory) Resolve(name string) (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	addr, ok := d.addrs[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownServer, name)
	}
	return addr, nil
}

// Names lists registered server names.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.addrs))
	for n := range d.addrs {
		out = append(out, n)
	}
	return out
}

// Cluster runs the whole simulated ecosystem: one registry server plus one
// server per registrar, each with its own rate limiter.
type Cluster struct {
	Directory *Directory
	servers   []*Server
	log       *obs.Logger
}

// ClusterConfig tunes the per-server rate limits.
type ClusterConfig struct {
	// RegistryLimit/RegistrarLimit are queries per Window per source IP;
	// <= 0 disables limiting for that class of server.
	RegistryLimit  int
	RegistrarLimit int
	Window         time.Duration
	Penalty        time.Duration
	// Log receives structured diagnostics; nil drops them.
	Log *obs.Logger
	// Metrics, when non-nil, receives cluster-wide query counters
	// (whoisd.queries, whoisd.ratelimited, whoisd.nomatch).
	Metrics *obs.Registry
	// Parse, when non-nil, enables the "--parse <domain>" query mode on
	// every server in the cluster: the record is looked up as usual
	// (rate limits included), run through the shared parse-serving
	// layer, and answered as a labeled field summary instead of raw
	// text. See ParseQueryPrefix.
	Parse *serve.Server
}

// StartCluster binds every server in the ecosystem to a loopback port.
func StartCluster(eco *registry.Ecosystem, cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{Directory: NewDirectory(), log: cfg.Log}
	now := time.Now
	mkLimiter := func(limit int) *registry.RateLimiter {
		if limit <= 0 {
			return nil
		}
		return registry.NewRateLimiter(limit, cfg.Window, cfg.Penalty)
	}

	// Cluster-wide counters; a nil Metrics registry means a private one
	// (still counted, just not exported anywhere).
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	queries := reg.Counter("whoisd.queries")
	limited := reg.Counter("whoisd.ratelimited")
	noMatch := reg.Counter("whoisd.nomatch")

	regLim := mkLimiter(cfg.RegistryLimit)
	regSrv := NewServer(registry.RegistryServerName, withParseMode(HandlerFunc(func(src, q string) string {
		queries.Inc()
		if regLim != nil && !regLim.Allow(src, now()) {
			limited.Inc()
			return RateLimitedResponse
		}
		if rec, ok := eco.LookupThin(q); ok {
			return rec
		}
		noMatch.Inc()
		return registry.NoMatch
	}), cfg.Parse))
	regSrv.Log = cfg.Log
	addr, err := regSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c.servers = append(c.servers, regSrv)
	c.Directory.Register(registry.RegistryServerName, addr.String())

	for _, name := range eco.Servers {
		name := name
		lim := mkLimiter(cfg.RegistrarLimit)
		srv := NewServer(name, withParseMode(HandlerFunc(func(src, q string) string {
			queries.Inc()
			if lim != nil && !lim.Allow(src, now()) {
				limited.Inc()
				return RateLimitedResponse
			}
			if rec, ok := eco.LookupThick(name, q); ok {
				return rec
			}
			noMatch.Inc()
			return registry.NoMatch
		}), cfg.Parse))
		srv.Log = cfg.Log
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		c.Directory.Register(name, addr.String())
	}
	return c, nil
}

// Close shuts down every server in the cluster.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		if err := s.Close(); err != nil {
			c.log.Warn("close failed", "server", s.Name, "err", err)
		}
	}
}

// WaitReady dials every server once to confirm the cluster is accepting.
func (c *Cluster) WaitReady(ctx context.Context) error {
	for _, name := range c.Directory.Names() {
		addr, err := c.Directory.Resolve(name)
		if err != nil {
			return err
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return fmt.Errorf("whoisd: dial %s (%s): %w", name, addr, err)
		}
		conn.Close()
	}
	return nil
}
