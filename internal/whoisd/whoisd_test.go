package whoisd

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/whoisclient"
)

func echoHandler(src, q string) string { return "query=" + q + " from=" + src }

func startServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	s := NewServer("test", h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func rawQuery(t *testing.T, addr, query string) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(query + "\r\n")); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestServerAnswersQuery(t *testing.T) {
	_, addr := startServer(t, HandlerFunc(echoHandler))
	resp := rawQuery(t, addr, "example.com")
	if !strings.Contains(resp, "query=example.com") {
		t.Errorf("response %q", resp)
	}
	if !strings.Contains(resp, "from=127.0.0.1") {
		t.Errorf("source IP missing: %q", resp)
	}
}

func TestServerCRLFTermination(t *testing.T) {
	_, addr := startServer(t, HandlerFunc(func(src, q string) string { return "line1\nline2" }))
	resp := rawQuery(t, addr, "x")
	if !strings.Contains(resp, "line1\r\nline2") {
		t.Errorf("RFC 3912 responses use CRLF; got %q", resp)
	}
}

func TestServerStripsCRFromQuery(t *testing.T) {
	var got string
	var mu sync.Mutex
	_, addr := startServer(t, HandlerFunc(func(src, q string) string {
		mu.Lock()
		got = q
		mu.Unlock()
		return "ok"
	}))
	rawQuery(t, addr, "domain.com")
	mu.Lock()
	defer mu.Unlock()
	if got != "domain.com" {
		t.Errorf("query received as %q", got)
	}
}

func TestServerConcurrentConnections(t *testing.T) {
	_, addr := startServer(t, HandlerFunc(echoHandler))
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			conn.Write([]byte("q\r\n"))
			buf := make([]byte, 1024)
			conn.Read(buf)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t, HandlerFunc(echoHandler))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	d.Register("whois.a.com", "127.0.0.1:4343")
	addr, err := d.Resolve("whois.a.com")
	if err != nil || addr != "127.0.0.1:4343" {
		t.Errorf("resolve: %q, %v", addr, err)
	}
	if _, err := d.Resolve("whois.b.com"); err == nil {
		t.Error("unknown name resolved")
	}
	if len(d.Names()) != 1 {
		t.Errorf("names: %v", d.Names())
	}
}

func TestClusterEndToEnd(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 30, Seed: 60})
	eco := registry.BuildEcosystem(domains, 0)
	cluster, err := StartCluster(eco, ClusterConfig{Window: time.Second, Penalty: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	client := &whoisclient.Client{Resolver: cluster.Directory}
	d := domains[0]

	// Thin lookup at the registry.
	thin, err := client.Query(ctx, registry.RegistryServerName, d.Reg.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(thin, d.Reg.RegistrarName) {
		t.Error("thin record missing registrar")
	}

	// Referral extraction and two-step lookup.
	server, ok := whoisclient.ExtractReferral(thin)
	if !ok || server != d.Reg.WhoisServer {
		t.Fatalf("referral %q, want %q", server, d.Reg.WhoisServer)
	}
	res, err := client.LookupThick(ctx, registry.RegistryServerName, d.Reg.Domain)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reg.Privacy && !strings.Contains(res.Thick, d.Reg.Registrant.Name) {
		t.Error("thick record missing registrant name")
	}

	// Unknown domain gets the no-match answer.
	if _, err := client.Query(ctx, registry.RegistryServerName, "missing.com"); err == nil {
		t.Error("expected no-match error")
	}
}

func TestClusterRateLimiting(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 10, Seed: 61})
	eco := registry.BuildEcosystem(domains, 0)
	cluster, err := StartCluster(eco, ClusterConfig{
		RegistryLimit: 3, RegistrarLimit: 3,
		Window: 2 * time.Second, Penalty: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	client := &whoisclient.Client{Resolver: cluster.Directory}
	var limited bool
	for i := 0; i < 6; i++ {
		_, err := client.Query(ctx, registry.RegistryServerName, domains[0].Reg.Domain)
		if err != nil {
			if !strings.Contains(err.Error(), "rate limited") {
				t.Fatalf("unexpected error: %v", err)
			}
			limited = true
		}
	}
	if !limited {
		t.Error("limit of 3 never triggered across 6 rapid queries")
	}
}

func TestServerSurvivesMalformedInput(t *testing.T) {
	_, addr := startServer(t, HandlerFunc(echoHandler))
	// Binary garbage without a newline, then connection close.
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x00, 0xff, 0xfe, 0x01})
	conn.Close()

	// The server must still answer subsequent well-formed queries.
	resp := rawQuery(t, addr, "after-garbage.com")
	if !strings.Contains(resp, "after-garbage.com") {
		t.Errorf("server wedged after malformed input: %q", resp)
	}
}

func TestServerReadTimeoutDropsSilentClients(t *testing.T) {
	s := NewServer("t", HandlerFunc(echoHandler))
	s.ReadTimeout = 100 * time.Millisecond
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server should close on us quickly.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	start := time.Now()
	_, rerr := conn.Read(buf)
	if rerr == nil {
		t.Skip("server answered an empty query; acceptable")
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("silent client held for %v", time.Since(start))
	}
}
