package whoisd

import (
	"context"
	"errors"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/labels"
	"repro/internal/registry"
	"repro/internal/serve"
)

// ParseQueryPrefix marks a query asking for the parsed-field summary of
// a record instead of its raw text: "--parse example.com". The mode is
// active only on clusters started with ClusterConfig.Parse set.
const ParseQueryPrefix = "--parse"

// OverloadedResponse is what a --parse query receives when the serving
// layer sheds it — the parse-mode analogue of RateLimitedResponse.
const OverloadedResponse = "% Parse queue full. Access temporarily denied."

// withParseMode intercepts ParseQueryPrefix queries: the wrapped handler
// resolves the raw record (through its own rate limiting), the serving
// layer parses it, and the labeled field summary is returned. ps == nil
// returns h unchanged, so plain clusters pay nothing.
func withParseMode(h HandlerFunc, ps *serve.Server) HandlerFunc {
	if ps == nil {
		return h
	}
	return func(src, q string) string {
		rest, ok := cutParseQuery(q)
		if !ok {
			return h(src, q)
		}
		raw := h(src, rest)
		// Pass refusals through untouched: no record to parse.
		if raw == RateLimitedResponse || raw == registry.NoMatch {
			return raw
		}
		pr, err := ps.Parse(context.Background(), raw)
		switch {
		case errors.Is(err, serve.ErrOverloaded):
			return OverloadedResponse
		case err != nil:
			return "% Parse unavailable: " + err.Error()
		}
		return Summary(pr)
	}
}

// cutParseQuery splits "--parse example.com" into its domain argument.
// The prefix must be the whole first word; "--parsefoo" is a (doomed)
// ordinary query, not a malformed parse request.
func cutParseQuery(q string) (rest string, ok bool) {
	after, found := strings.CutPrefix(q, ParseQueryPrefix)
	if !found || after == "" || (after[0] != ' ' && after[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(after), true
}

// Summary renders a parsed record as the WHOIS-style key/value answer a
// --parse query returns: the extracted top-level fields, the registrant
// subfields, and a trailer with per-block line counts so callers can see
// how the CRF segmented the record. Empty fields are omitted.
func Summary(pr *core.ParsedRecord) string {
	var b strings.Builder
	b.Grow(512)
	put := func(k, v string) {
		if v != "" {
			b.WriteString(k)
			b.WriteString(": ")
			b.WriteString(v)
			b.WriteString("\n")
		}
	}
	b.WriteString("%% PARSED\n")
	put("Domain Name", pr.DomainName)
	put("Registrar", pr.Registrar)
	put("Registrar URL", pr.RegistrarURL)
	put("Whois Server", pr.WhoisServer)
	put("Creation Date", pr.CreatedDate)
	put("Updated Date", pr.UpdatedDate)
	put("Expiration Date", pr.ExpiresDate)
	put("Registrant Name", pr.Registrant.Name)
	put("Registrant ID", pr.Registrant.ID)
	put("Registrant Organization", pr.Registrant.Org)
	put("Registrant Street", pr.Registrant.Street)
	put("Registrant City", pr.Registrant.City)
	put("Registrant State/Province", pr.Registrant.State)
	put("Registrant Postal Code", pr.Registrant.Postcode)
	put("Registrant Country", pr.Registrant.Country)
	put("Registrant Phone", pr.Registrant.Phone)
	put("Registrant Fax", pr.Registrant.Fax)
	put("Registrant Email", pr.Registrant.Email)

	var counts [labels.NumBlocks]int
	for _, blk := range pr.Blocks {
		if blk >= 0 && int(blk) < labels.NumBlocks {
			counts[blk]++
		}
	}
	b.WriteString("%% BLOCKS")
	for i, n := range counts {
		if n > 0 {
			b.WriteString(" ")
			b.WriteString(labels.Block(i).String())
			b.WriteString("=")
			b.WriteString(strconv.Itoa(n))
		}
	}
	b.WriteString("\n%% END\n")
	return b.String()
}
