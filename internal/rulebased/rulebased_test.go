package rulebased

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

func corpus(t testing.TB, n int, seed int64) []*labels.LabeledRecord {
	t.Helper()
	return synth.GenerateLabeled(synth.Config{N: n, Seed: seed})
}

func TestBuildLearnsTitleRules(t *testing.T) {
	recs := corpus(t, 200, 1)
	p := Build(recs, tokenize.Options{})
	if p.NumRules() < 50 {
		t.Errorf("only %d rules learned from 200 records", p.NumRules())
	}
}

func TestRollbackMonotonicity(t *testing.T) {
	// More training data must never shrink the rule base (§5.1 roll-back).
	recs := corpus(t, 500, 2)
	small := Build(recs[:20], tokenize.Options{})
	large := Build(recs, tokenize.Options{})
	if large.NumRules() < small.NumRules() {
		t.Errorf("rule count shrank: %d -> %d", small.NumRules(), large.NumRules())
	}
}

func TestAccuracyImprovesWithTraining(t *testing.T) {
	recs := corpus(t, 1200, 3)
	test := recs[900:]
	var prev float64 = 1
	for _, size := range []int{20, 200, 900} {
		p := Build(recs[:size], tokenize.Options{})
		m, err := eval.EvalBlocks(p, test)
		if err != nil {
			t.Fatal(err)
		}
		rate := m.LineErrorRate()
		if rate > prev+0.01 {
			t.Errorf("error rate rose from %.4f to %.4f at size %d", prev, rate, size)
		}
		prev = rate
	}
	if prev > 0.02 {
		t.Errorf("fully trained rule parser error %.4f too high", prev)
	}
}

func TestGenericRulesOnly(t *testing.T) {
	// An untrained parser still has the hand-written generic rules.
	p := Build(nil, tokenize.Options{})
	_, blocks := p.ParseBlocks("Domain Name: x.com\nRegistrant Name: J. Doe\nCreation Date: 2014-01-01")
	want := []labels.Block{labels.Domain, labels.Registrant, labels.Date}
	for i, b := range blocks {
		if b != want[i] {
			t.Errorf("line %d: got %v, want %v", i, b, want[i])
		}
	}
}

func TestSymbolLinesAreNull(t *testing.T) {
	p := Build(nil, tokenize.Options{})
	_, blocks := p.ParseBlocks("% comment line\n# another\nDomain Name: x.com")
	if blocks[0] != labels.Null || blocks[1] != labels.Null {
		t.Errorf("symbol lines: %v", blocks)
	}
}

func TestContextPropagation(t *testing.T) {
	train := []*labels.LabeledRecord{{
		Domain: "t.com", TLD: "com", Registrar: "r",
		Text: "Registrant:\n    John Doe\n    1 Main St\n\nAdmin Contact:\n    Jane Roe",
		Lines: []labels.LabeledLine{
			{Text: "Registrant:", Block: labels.Registrant, Field: labels.FieldOther},
			{Text: "    John Doe", Block: labels.Registrant, Field: labels.FieldName},
			{Text: "    1 Main St", Block: labels.Registrant, Field: labels.FieldStreet},
			{Text: "Admin Contact:", Block: labels.Other, Field: labels.FieldOther},
			{Text: "    Jane Roe", Block: labels.Other, Field: labels.FieldOther},
		},
	}}
	p := Build(train, tokenize.Options{})
	_, blocks := p.ParseBlocks("Registrant:\n    Alice Smith\n    9 Oak Ave\n\nAdmin Contact:\n    Bob Jones")
	want := []labels.Block{labels.Registrant, labels.Registrant, labels.Registrant, labels.Other, labels.Other}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("line %d: got %v, want %v (blocks=%v)", i, blocks[i], want[i], blocks)
		}
	}
}

func TestContextualTitleDisambiguation(t *testing.T) {
	// The same "Name:" title means registrant or other depending on the
	// section header — the compound context rules must capture that.
	train := []*labels.LabeledRecord{{
		Domain: "t.com", TLD: "com", Registrar: "r",
		Text: "Registrant Contact:\nName: A\n\nTechnical Contact:\nName: B",
		Lines: []labels.LabeledLine{
			{Text: "Registrant Contact:", Block: labels.Registrant, Field: labels.FieldOther},
			{Text: "Name: A", Block: labels.Registrant, Field: labels.FieldName},
			{Text: "Technical Contact:", Block: labels.Other, Field: labels.FieldOther},
			{Text: "Name: B", Block: labels.Other, Field: labels.FieldOther},
		},
	}}
	p := Build(train, tokenize.Options{})
	_, blocks := p.ParseBlocks("Registrant Contact:\nName: X\n\nTechnical Contact:\nName: Y")
	if blocks[1] != labels.Registrant {
		t.Errorf("registrant-context Name got %v", blocks[1])
	}
	if blocks[3] != labels.Other {
		t.Errorf("tech-context Name got %v", blocks[3])
	}
}

func TestUnknownTitleFallsToNull(t *testing.T) {
	p := Build(nil, tokenize.Options{})
	_, blocks := p.ParseBlocks("Frobnication Level: high")
	if blocks[0] != labels.Null {
		t.Errorf("unknown title got %v, want null (the fragility the paper exploits)", blocks[0])
	}
}

func TestParseFieldsHeuristics(t *testing.T) {
	p := Build(nil, tokenize.Options{})
	text := "Registrant:\n  John Doe\n  12 Main Street\n  92122\n  United States\n  +1.8585551212\n  john@x.com"
	train := []*labels.LabeledRecord{{
		Domain: "t.com", TLD: "com", Registrar: "r",
		Text: "Registrant:\n  A B",
		Lines: []labels.LabeledLine{
			{Text: "Registrant:", Block: labels.Registrant, Field: labels.FieldOther},
			{Text: "  A B", Block: labels.Registrant, Field: labels.FieldName},
		},
	}}
	p = Build(train, tokenize.Options{})
	lines, blocks := p.ParseBlocks(text)
	fields := p.ParseFields(lines, blocks)
	want := []labels.Field{
		labels.FieldOther, labels.FieldName, labels.FieldStreet,
		labels.FieldPostcode, labels.FieldCountry, labels.FieldPhone, labels.FieldEmail,
	}
	for i := range want {
		if blocks[i] != labels.Registrant {
			t.Fatalf("line %d not labeled registrant: %v", i, blocks)
		}
		if fields[i] != want[i] {
			t.Errorf("line %d: field %v, want %v", i, fields[i], want[i])
		}
	}
}

func TestWorseThanStatisticalOnNewTLDs(t *testing.T) {
	recs := corpus(t, 600, 5)
	p := Build(recs, tokenize.Options{})
	totalErr := 0
	tldsWithErr := 0
	for _, tld := range synth.NewTLDs() {
		rec := synth.GenerateNewTLD(tld, 1, 7)[0].Labeled()
		_, blocks := p.ParseBlocks(rec.Text)
		errs := 0
		for i := range rec.Lines {
			if blocks[i] != rec.Lines[i].Block {
				errs++
			}
		}
		totalErr += errs
		if errs > 0 {
			tldsWithErr++
		}
	}
	// Table 2: the rule-based parser fails on most new TLDs.
	if tldsWithErr < 6 {
		t.Errorf("rule-based parser erred on only %d/12 new TLDs; Table 2 shows ~10", tldsWithErr)
	}
	if totalErr == 0 {
		t.Error("rule-based parser made no errors on unseen TLDs — too strong to be the paper's baseline")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Registrant  Name":  "registrant name",
		"[Registrant Name]": "registrant name",
		"registrant_name":   "registrant name",
		"E-MAIL":            "e mail",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
