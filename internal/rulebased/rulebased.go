// Package rulebased implements the paper's rule-based baseline parser
// (§2.3, §4.2). It follows the construction the paper describes: divide
// records into line-granularity tokens, map "title: value" separators to
// labels with exact-title rules, handle contextual blocks (a header such
// as "Registrant:" followed by bare value lines), and add special-case
// pattern rules.
//
// Rules of the first kind are *learned* from a labeled corpus, which makes
// the §5.1 "roll-back" methodology direct: building the parser from a
// subset of the labeled records retains exactly the rules that subset
// induces. The special-case pattern rules (symbol lines are boilerplate,
// a small set of universally common titles) model the rules the paper
// says "cannot be rolled back" and are always present.
package rulebased

import (
	"sort"
	"strings"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// Parser is a rule-based WHOIS parser.
type Parser struct {
	titleBlock map[string]labels.Block // normalized title -> block
	titleField map[string]labels.Field // normalized title -> registrant field
	headers    map[string]labels.Block // normalized header line -> context block
	rawBlock   map[string]labels.Block // exact boilerplate line -> block
	ctxTitle   map[string]labels.Block // "header\x00title" -> block
	opts       tokenize.Options
}

// genericTitles are the hand-written rules present regardless of training
// subset — the equivalent of a template parser's "generic templates".
var genericTitles = map[string]labels.Block{
	"domain name":     labels.Domain,
	"domain":          labels.Domain,
	"name server":     labels.Domain,
	"nameserver":      labels.Domain,
	"status":          labels.Domain,
	"domain status":   labels.Domain,
	"registrar":       labels.Registrar,
	"whois server":    labels.Registrar,
	"referral url":    labels.Registrar,
	"creation date":   labels.Date,
	"created":         labels.Date,
	"expiration date": labels.Date,
	"updated date":    labels.Date,
	"registrant name": labels.Registrant,
	"registrant":      labels.Registrant,
}

var genericFields = map[string]labels.Field{
	"registrant name":    labels.FieldName,
	"registrant email":   labels.FieldEmail,
	"registrant country": labels.FieldCountry,
}

// Build constructs a parser from labeled records: every titled line
// contributes an exact-title rule, every header line a context rule, and
// every boilerplate line an exact-text rule. Conflicts are resolved by
// majority, ties by first occurrence.
func Build(records []*labels.LabeledRecord, opts tokenize.Options) *Parser {
	type vote struct {
		counts map[labels.Block]int
		fields map[labels.Field]int
		order  []labels.Block
	}
	titleVotes := make(map[string]*vote)
	headerVotes := make(map[string]*vote)
	rawVotes := make(map[string]*vote)
	ctxVotes := make(map[string]*vote)

	addVote := func(m map[string]*vote, key string, b labels.Block, f labels.Field) {
		v := m[key]
		if v == nil {
			v = &vote{counts: make(map[labels.Block]int), fields: make(map[labels.Field]int)}
			m[key] = v
		}
		if v.counts[b] == 0 {
			v.order = append(v.order, b)
		}
		v.counts[b]++
		v.fields[f]++
	}

	for _, rec := range records {
		lines := tokenize.Tokenize(rec.Text, opts)
		if len(lines) != len(rec.Lines) {
			continue // malformed labeling; skip rather than misalign
		}
		ctxHeader := ""
		for i, ln := range lines {
			lab := rec.Lines[i]
			trimmed := strings.TrimSpace(ln.Raw)
			for _, o := range ln.Obs {
				if o == tokenize.MarkNL {
					ctxHeader = ""
				}
			}
			switch {
			case isHeaderLike(ln):
				ctxHeader = normalize(trimmed)
				addVote(headerVotes, ctxHeader, lab.Block, lab.Field)
			case ln.HasSep && ln.Value != "":
				addVote(titleVotes, normalize(ln.Title), lab.Block, lab.Field)
				if ctxHeader != "" {
					// Contextual rule: the same title ("Name") can mean
					// different blocks under different section headers.
					addVote(ctxVotes, ctxHeader+"\x00"+normalize(ln.Title), lab.Block, lab.Field)
				}
			default:
				if lab.Block == labels.Null {
					addVote(rawVotes, trimmed, lab.Block, lab.Field)
					ctxHeader = ""
				}
				// Bare value lines (names, streets) are instance data; no
				// rule can be learned from them — exactly the coverage gap
				// contextual rules must fill.
			}
		}
	}

	p := &Parser{
		titleBlock: make(map[string]labels.Block),
		titleField: make(map[string]labels.Field),
		headers:    make(map[string]labels.Block),
		rawBlock:   make(map[string]labels.Block),
		ctxTitle:   make(map[string]labels.Block),
		opts:       opts,
	}
	majority := func(v *vote) labels.Block {
		best, bestC := v.order[0], 0
		for _, b := range v.order {
			if c := v.counts[b]; c > bestC {
				best, bestC = b, c
			}
		}
		return best
	}
	majorityField := func(v *vote) labels.Field {
		best, bestC := labels.FieldOther, 0
		// Deterministic order over fields.
		keys := make([]int, 0, len(v.fields))
		for f := range v.fields {
			keys = append(keys, int(f))
		}
		sort.Ints(keys)
		for _, k := range keys {
			if c := v.fields[labels.Field(k)]; c > bestC {
				best, bestC = labels.Field(k), c
			}
		}
		return best
	}
	for t, v := range titleVotes {
		p.titleBlock[t] = majority(v)
		p.titleField[t] = majorityField(v)
	}
	for h, v := range headerVotes {
		p.headers[h] = majority(v)
	}
	for rtext, v := range rawVotes {
		p.rawBlock[rtext] = majority(v)
	}
	for k, v := range ctxVotes {
		p.ctxTitle[k] = majority(v)
	}
	return p
}

// normalize lowercases a title and collapses punctuation/whitespace so
// "Registrant  Name" and "[Registrant Name]" share a rule.
func normalize(s string) string {
	var b strings.Builder
	lastSpace := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastSpace = false
		default:
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// isHeaderLike reports whether a line looks like a block header: a titled
// line with an empty value ("Registrant:") or a short colon-terminated
// phrase ("Domain servers in listed order:").
func isHeaderLike(ln tokenize.Line) bool {
	trimmed := strings.TrimSpace(ln.Raw)
	if ln.HasSep && ln.Value == "" {
		return true
	}
	return strings.HasSuffix(trimmed, ":") && len(tokenize.Words(trimmed)) <= 7
}

// NumRules reports how many learned rules the parser holds (titles +
// headers + boilerplate lines), for the §5.1 roll-back comparisons.
func (p *Parser) NumRules() int {
	return len(p.titleBlock) + len(p.headers) + len(p.rawBlock)
}

// ParseBlocks labels each retained line of text with a first-level block.
func (p *Parser) ParseBlocks(text string) ([]tokenize.Line, []labels.Block) {
	lines := tokenize.Tokenize(text, p.opts)
	out := make([]labels.Block, len(lines))

	context := labels.Null
	haveContext := false
	ctxHeader := ""

	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln.Raw)
		// A blank gap ends a contextual block.
		for _, o := range ln.Obs {
			if o == tokenize.MarkNL {
				haveContext = false
				ctxHeader = ""
			}
		}

		switch {
		case startsWithSymbol(trimmed):
			out[i] = labels.Null
			haveContext = false
			ctxHeader = ""
		case isHeaderLike(ln):
			if b, ok := p.headers[normalize(trimmed)]; ok {
				out[i] = b
				context, haveContext = b, true
				ctxHeader = normalize(trimmed)
			} else if b, ok := p.titleBlock[normalize(ln.Title)]; ok && ln.HasSep {
				// A titled line with empty value whose title is known.
				out[i] = b
				context, haveContext = b, true
				ctxHeader = ""
			} else {
				out[i] = labels.Null
				haveContext = false
				ctxHeader = ""
			}
		case ln.HasSep:
			key := normalize(ln.Title)
			if b, ok := p.ctxTitle[ctxHeader+"\x00"+key]; ok && ctxHeader != "" {
				out[i] = b
			} else if b, ok := p.titleBlock[key]; ok {
				out[i] = b
			} else if b, ok := genericTitles[key]; ok {
				out[i] = b
			} else if haveContext {
				out[i] = context
			} else {
				out[i] = labels.Null
			}
		default:
			// Bare line: boilerplate if known verbatim, else context.
			if b, ok := p.rawBlock[trimmed]; ok {
				out[i] = b
				haveContext = false
			} else if haveContext {
				out[i] = context
			} else {
				out[i] = labels.Null
			}
		}
	}
	return lines, out
}

func startsWithSymbol(s string) bool {
	if s == "" {
		return false
	}
	switch s[0] {
	case '#', '%', '*', '>', ';', '=':
		return true
	}
	return false
}

// ParseFields assigns second-level labels to the lines marked Registrant.
// Titled lines use learned title→field rules; bare lines use the
// special-case value heuristics of §4.2 (an e-mail shape is an email, a
// phone shape a phone, a five-digit number a postcode, a known country
// name a country, a digit-leading line a street, and the first remaining
// line a name).
func (p *Parser) ParseFields(lines []tokenize.Line, blocks []labels.Block) []labels.Field {
	out := make([]labels.Field, len(lines))
	for i := range out {
		out[i] = labels.FieldOther
	}
	seenName := false
	for i, ln := range lines {
		if blocks[i] != labels.Registrant {
			continue
		}
		if ln.HasSep && ln.Value != "" {
			key := normalize(ln.Title)
			if f, ok := p.titleField[key]; ok {
				out[i] = f
			} else if f, ok := genericFields[key]; ok {
				out[i] = f
			} else {
				out[i] = guessField(ln.Value, &seenName)
			}
			continue
		}
		if isHeaderLike(ln) {
			out[i] = labels.FieldOther
			continue
		}
		out[i] = guessField(strings.TrimSpace(ln.Raw), &seenName)
	}
	return out
}

var countryNames = func() map[string]bool {
	m := map[string]bool{
		"united states": true, "china": true, "united kingdom": true,
		"germany": true, "france": true, "canada": true, "spain": true,
		"australia": true, "japan": true, "india": true, "turkey": true,
		"vietnam": true, "russia": true, "hong kong": true,
		"netherlands": true, "brazil": true, "italy": true,
		"south korea": true, "mexico": true,
	}
	return m
}()

func guessField(value string, seenName *bool) labels.Field {
	v := strings.TrimSpace(value)
	lv := strings.ToLower(v)
	switch {
	case strings.Contains(v, "@"):
		return labels.FieldEmail
	case looksPhoneValue(v):
		return labels.FieldPhone
	case countryNames[lv]:
		return labels.FieldCountry
	case isFiveDigits(v):
		return labels.FieldPostcode
	case len(v) > 0 && v[0] >= '0' && v[0] <= '9':
		return labels.FieldStreet
	case !*seenName:
		*seenName = true
		return labels.FieldName
	default:
		return labels.FieldOther
	}
}

func looksPhoneValue(s string) bool {
	digits := 0
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '+' && i == 0:
		case r == '-' || r == '.' || r == '(' || r == ')' || r == ' ':
		default:
			return false
		}
	}
	return digits >= 7
}

func isFiveDigits(s string) bool {
	if len(s) != 5 {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
