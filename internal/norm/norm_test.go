package norm

import (
	"reflect"
	"testing"
	"time"
)

func TestParseDateFormats(t *testing.T) {
	cases := []struct {
		in   string
		want string // DateKey form; "" = unparseable
	}{
		{"2014-03-05T12:00:00Z", "2014-03-05"},
		{"2014-03-05 12:00:00", "2014-03-05"},
		{"2014-03-05", "2014-03-05"},
		{"05-Mar-2014", "2014-03-05"},
		{"05-Mar-2014 12:00:00 UTC", "2014-03-05"},
		{"2014/03/05", "2014-03-05"},
		{"05/03/2014", "2014-03-05"},
		{"05.03.2014", "2014-03-05"},
		{"2014.03.05", "2014-03-05"},
		{"Mar 05, 2014", "2014-03-05"},
		{"March 5, 2014", "2014-03-05"},
		{"5 March 2014", "2014-03-05"},
		{"20140305", "2014-03-05"},
		{"2014-03-05T12:00:00+02:00", "2014-03-05"},
		{"created sometime in 2014 maybe", "2014-01-01"}, // year-scan fallback
		{"", ""},
		{"not a date", ""},
		{"12345678901", ""}, // digits adjacent to a plausible year
	}
	for _, c := range cases {
		if got := DateKey(c.in); got != c.want {
			t.Errorf("DateKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDateValue(t *testing.T) {
	tm, ok := ParseDate("05-Mar-2014 13:14:15 UTC")
	if !ok {
		t.Fatal("ParseDate failed")
	}
	want := time.Date(2014, 3, 5, 13, 14, 15, 0, time.UTC)
	if !tm.Equal(want) {
		t.Errorf("ParseDate = %v, want %v", tm, want)
	}
}

func TestRegistrar(t *testing.T) {
	cases := [][2]string{
		{"GoDaddy.com, LLC", "godaddy com llc"},
		{"GODADDY.COM  LLC", "godaddy com llc"},
		{"  eNom, Inc. ", "enom inc"},
		{"", ""},
		{"---", ""},
		{"Network Solutions", "network solutions"},
	}
	for _, c := range cases {
		if got := Registrar(c[0]); got != c[1] {
			t.Errorf("Registrar(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	if Registrar("GoDaddy.com, LLC") != Registrar("godaddy com LLC") {
		t.Error("case/punct variants should fold together")
	}
	if Registrar("eNom") == Registrar("Tucows") {
		t.Error("distinct registrars must stay apart")
	}
}

func TestEmailHost(t *testing.T) {
	if got := Email("  Admin@Example.COM "); got != "admin@example.com" {
		t.Errorf("Email = %q", got)
	}
	if got := Host("NS1.Example.COM."); got != "ns1.example.com" {
		t.Errorf("Host = %q", got)
	}
	got := Hosts([]string{"NS2.example.com", "ns1.EXAMPLE.com.", "ns1.example.com", "..", ""})
	want := []string{"ns1.example.com", "ns2.example.com"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Hosts = %v, want %v", got, want)
	}
}

func TestStatus(t *testing.T) {
	cases := [][2]string{
		{"clientTransferProhibited", "clienttransferprohibited"},
		{"client transfer prohibited", "clienttransferprohibited"},
		{"clientTransferProhibited https://icann.org/epp#clientTransferProhibited", "clienttransferprohibited"},
		{"ok (active)", "ok"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Status(c[0]); got != c[1] {
			t.Errorf("Status(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	got := Statuses([]string{"clientHold", "CLIENTHOLD", "serverHold"})
	want := []string{"clienthold", "serverhold"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Statuses = %v, want %v", got, want)
	}
}

func TestCountry(t *testing.T) {
	for _, in := range []string{"US", "us", "USA", "United States", "united states of america"} {
		if got := Country(in); got != "United States" {
			t.Errorf("Country(%q) = %q", in, got)
		}
	}
	if got := Country("Atlantis"); got != "" {
		t.Errorf("Country(Atlantis) = %q, want empty", got)
	}
	if got := CountryKey("Atlantis"); got != "atlantis" {
		t.Errorf("CountryKey(Atlantis) = %q, want folded text", got)
	}
	if CountryKey("US") != CountryKey("United States") {
		t.Error("CountryKey should fold code and name together")
	}
}
