package norm

import "testing"

// normFns are the string canonicalizers under the idempotence contract.
// Every one must be total and a projection: applying it twice is the
// same as applying it once. The consistency engine depends on this —
// comparison keys are themselves valid inputs (golden files, admin
// endpoints echo them back), and a non-idempotent fold would make
// "equivalent" depend on how many times a value passed through.
var normFns = []struct {
	name string
	fn   func(string) string
}{
	{"DateKey", DateKey},
	{"Registrar", Registrar},
	{"Email", Email},
	{"Host", Host},
	{"Status", Status},
	{"Country", Country},
	{"CountryKey", CountryKey},
}

// fuzzNormSeeds is the in-code half of the corpus; the checked-in half
// lives in testdata/fuzz/FuzzNorm.
func fuzzNormSeeds() []string {
	return []string{
		"",
		"GoDaddy.com, LLC",
		"2014-03-05T12:00:00Z",
		"05-Mar-2014 12:00:00 UTC",
		"Admin@EXAMPLE.com",
		"NS1.example.COM.",
		"clientTransferProhibited https://icann.org/epp#clientTransferProhibited",
		"United States of America",
		"....",
		"\x00\xff\xfe",
		"9999-99-99",
		"日本語: テスト",
		"   \t  ",
		"1982 1983 1984 1985",
	}
}

func checkNorm(t *testing.T, s string) {
	t.Helper()
	for _, nf := range normFns {
		once := nf.fn(s)
		twice := nf.fn(once)
		if once != twice {
			t.Fatalf("%s not idempotent on %q: first %q, second %q", nf.name, s, once, twice)
		}
	}
	// ParseDate must be total; a parseable string must round-trip through
	// DateKey to the same calendar day.
	if tm, ok := ParseDate(s); ok {
		day := tm.UTC().Format("2006-01-02")
		if got := DateKey(s); got != day {
			t.Fatalf("DateKey(%q) = %q, but ParseDate names day %q", s, got, day)
		}
	}
	for _, hs := range [][]string{{s}, {s, s}, {s, "ns1.example.com"}} {
		once := Hosts(hs)
		if twice := Hosts(once); len(once) != len(twice) {
			t.Fatalf("Hosts not idempotent on %q", s)
		}
		once = Statuses(hs)
		if twice := Statuses(once); len(once) != len(twice) {
			t.Fatalf("Statuses not idempotent on %q", s)
		}
	}
}

func FuzzNorm(f *testing.F) {
	for _, s := range fuzzNormSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) { checkNorm(t, s) })
}

// TestFuzzSeedsAsRegressions runs every in-code seed through the
// canonicalizers even when fuzzing is off, so `go test` alone exercises
// the corpus (the checked-in testdata/fuzz corpus runs automatically).
func TestFuzzSeedsAsRegressions(t *testing.T) {
	for _, s := range fuzzNormSeeds() {
		checkNorm(t, s)
	}
}
