// Package norm holds the field canonicalizers shared by the survey layer
// and the cross-protocol consistency engine. WHOIS and RDAP spell the
// same fact differently — "02-Jan-2006" vs RFC 3339 timestamps,
// "GoDaddy.com, LLC" vs "GODADDY.COM LLC", "US" vs "United States" — so
// any layer that compares or aggregates registration data needs one
// shared notion of "the same value". Every function here is total (never
// panics on arbitrary input) and idempotent (norm(norm(x)) == norm(x));
// the fuzz target in fuzz_test.go holds both properties.
package norm

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/identity"
)

// DateLayouts covers every date format the registrar schemas emit, in
// the order ParseDate tries them. The first entry is the canonical
// layout DateKey emits, which keeps DateKey idempotent.
var DateLayouts = []string{
	"2006-01-02",
	"2006-01-02T15:04:05Z",
	"2006-01-02 15:04:05",
	"02-Jan-2006 15:04:05 UTC",
	"02-Jan-2006",
	"2006/01/02 15:04:05 (JST)",
	"2006/01/02",
	"02/01/2006",
	"02.01.2006",
	"2006.01.02",
	"Mon Jan 02 15:04:05 GMT 2006",
	"Mon Jan 02 2006",
	"Jan 02, 2006",
	"Jan 2, 2006",
	"January 2, 2006",
	"2 January 2006",
	"20060102",
	time.RFC3339,
}

// ParseDate parses a registration date string in any of the ecosystem's
// formats (WHOIS free text or RDAP RFC 3339). As a last resort it scans
// for a plausible 4-digit year, since a known year still buckets the
// record correctly in the survey's Figure 4 histograms.
func ParseDate(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	for _, layout := range DateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	for i := 0; i+4 <= len(s); i++ {
		if y, err := strconv.Atoi(s[i : i+4]); err == nil && y >= 1982 && y <= 2030 {
			if (i == 0 || !isDigit(s[i-1])) && (i+4 == len(s) || !isDigit(s[i+4])) {
				return time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC), true
			}
		}
	}
	return time.Time{}, false
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

// DateKey folds a date string to its UTC calendar day ("2006-01-02"),
// the comparison key for cross-protocol date agreement: two spellings of
// the same day are equivalent even when one carries a time of day the
// other dropped. Unparseable input folds to "".
func DateKey(s string) string {
	t, ok := ParseDate(s)
	if !ok {
		return ""
	}
	return t.UTC().Format("2006-01-02")
}

// Registrar folds a registrar name for comparison: ASCII lowercase,
// punctuation to spaces, runs of whitespace collapsed. "GoDaddy.com,
// LLC" and "GODADDY.COM LLC" fold to the same key; genuinely different
// registrars stay apart because folding never deletes letters or digits.
func Registrar(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // swallow leading separators
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'A' <= c && c <= 'Z':
			b.WriteByte(c + 'a' - 'A')
			space = false
		case 'a' <= c && c <= 'z' || '0' <= c && c <= '9':
			b.WriteByte(c)
			space = false
		default:
			// Separator (punctuation, whitespace, or any non-ASCII byte):
			// emit at most one space between word runs.
			if !space {
				b.WriteByte(' ')
				space = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Email folds an email address: trimmed and ASCII-lowercased. The local
// part is case-sensitive per RFC 5321, but no registrar ecosystem
// distinguishes case there, and "WHOIS Right?" compares emails
// case-insensitively for the same reason.
func Email(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Host folds a hostname (nameserver, WHOIS server): trimmed,
// ASCII-lowercased, trailing dots removed (the DNS root label is
// presentation noise).
func Host(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	return strings.TrimRight(s, ".")
}

// Hosts folds a hostname list into a sorted, deduplicated set — the
// comparison key for nameserver agreement, where order is meaningless.
// Empty entries (a bare ".") are dropped.
func Hosts(in []string) []string {
	out := make([]string, 0, len(in))
	for _, h := range in {
		if f := Host(h); f != "" {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	j := 0
	for i, h := range out {
		if i == 0 || h != out[j-1] {
			out[j] = h
			j++
		}
	}
	return out[:j]
}

// Status folds an EPP status value to its bare token: any trailing
// ICANN EPP URL is dropped (registrars append it after the token), then
// the rest is ASCII-lowercased with non-alphanumerics removed, so
// "clientTransferProhibited", "client transfer prohibited", and
// "clientTransferProhibited https://icann.org/epp#..." all fold to
// "clienttransferprohibited".
func Status(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.Index(strings.ToLower(s), " http"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "("); i >= 0 {
		s = s[:i]
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'A' <= c && c <= 'Z':
			b.WriteByte(c + 'a' - 'A')
		case 'a' <= c && c <= 'z' || '0' <= c && c <= '9':
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Statuses folds a status list into a sorted, deduplicated set of bare
// tokens.
func Statuses(in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		if f := Status(s); f != "" {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[j-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}

// countryCanon maps lower-cased codes and names to canonical names.
var countryCanon = func() map[string]string {
	m := make(map[string]string)
	for code, c := range identity.Countries() {
		m[strings.ToLower(code)] = c.Name
		m[strings.ToLower(c.Name)] = c.Name
	}
	// Common aliases.
	m["usa"] = "United States"
	m["united states of america"] = "United States"
	m["uk"] = "United Kingdom"
	m["great britain"] = "United Kingdom"
	m["korea"] = "South Korea"
	m["republic of korea"] = "South Korea"
	return m
}()

// Country normalizes a registrant country value ("US", "us", "United
// States") to a canonical name; unknown values map to "".
func Country(v string) string {
	return countryCanon[strings.ToLower(strings.TrimSpace(v))]
}

// CountryKey is the comparison key for country agreement: the canonical
// name when the value is recognized, otherwise the trimmed lowercase
// text — so two unknown-but-identical spellings still agree instead of
// both folding to "".
func CountryKey(v string) string {
	if c := Country(v); c != "" {
		return c
	}
	return strings.ToLower(strings.TrimSpace(v))
}
