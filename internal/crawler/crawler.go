// Package crawler implements the paper's WHOIS crawler (§4.1): a parallel
// two-step (thin→thick) crawl that *infers* per-server rate limits, since
// servers do not publish them. When a server starts refusing, the crawler
// records the rate it was querying at, backs off well under it, rotates to
// a different source address (the paper used multiple crawl servers), and
// retries each query up to three times before declaring failure.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/whoisclient"
)

// Config tunes a crawl.
type Config struct {
	// Resolver maps server names to addresses (required).
	Resolver whoisclient.Resolver
	// Registry is the thin registry's server name (default
	// registry.RegistryServerName).
	Registry string
	// Sources are local IPs to crawl from; queries rotate across them on
	// rate-limit refusals. Empty means one unbound source.
	Sources []string
	// Workers is the number of concurrent crawl goroutines (default 8).
	Workers int
	// Attempts bounds per-query tries across sources (default 3, §4.1).
	Attempts int
	// InitialInterval seeds each server's pacing interval (default 0: as
	// fast as possible until the first refusal).
	InitialInterval time.Duration
	// MaxInterval caps the inferred pacing interval (default 2s).
	MaxInterval time.Duration
	// Timeout bounds each query (default 10s).
	Timeout time.Duration
	// OnResult, when non-nil, receives every finished Result as soon as
	// its domain completes — the streaming sink hook (cmd/whoiscrawl
	// feeds a store.Sink here so an interrupted crawl keeps everything
	// crawled up to its last checkpoint). Called from worker goroutines;
	// must be safe for concurrent use.
	OnResult func(Result)
	// Log receives structured diagnostics; nil drops them.
	Log *obs.Logger
	// Metrics is the registry crawl counters and stage timings are
	// recorded into (crawler.* and per-host whoisclient.<server>.*);
	// nil means a private registry reachable via Crawler.Metrics.
	Metrics *obs.Registry
}

// Result is the crawl outcome for one domain.
type Result struct {
	Domain      string
	Thin        string
	Thick       string
	WhoisServer string
	Attempts    int
	Err         error
}

// Stats aggregates a crawl.
type Stats struct {
	Total         int64
	ThinOK        int64
	ThickOK       int64
	NoMatch       int64
	Failures      int64
	RateLimitHits int64
	Retries       int64
	Elapsed       time.Duration
}

// Coverage is the fraction of domains with a thick record obtained — the
// paper reports "a bit over 90%".
func (s Stats) Coverage() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.ThickOK) / float64(s.Total)
}

// FailureRate is the fraction of domains that failed after all retries —
// the paper reports roughly 7.5%.
func (s Stats) FailureRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Failures+s.NoMatch) / float64(s.Total)
}

// serverPace is the adaptive pacing state for one server.
type serverPace struct {
	mu          sync.Mutex
	interval    time.Duration // current minimum gap between queries
	nextAllowed time.Time
	backoff     time.Duration // penalty wait after a refusal
	limited     int           // refusals observed
	successes   int
}

// Crawler runs crawls with persistent per-server pacing state, so the
// limits inferred in one batch carry over to the next (the paper records
// each server's limit and "subsequently quer[ies] well under this limit").
type Crawler struct {
	cfg   Config
	reg   *obs.Registry
	met   crawlMetrics
	mu    sync.Mutex
	paces map[string]*serverPace
	cmet  map[string]*whoisclient.Metrics // per-server client counters
}

// crawlMetrics are the crawl-wide counters (per-host counts live in the
// whoisclient.<server>.* and crawler.host.<server>.* families).
type crawlMetrics struct {
	domains     *obs.Counter
	thinOK      *obs.Counter
	thickOK     *obs.Counter
	noMatch     *obs.Counter
	failures    *obs.Counter
	rateLimited *obs.Counter
	retries     *obs.Counter
}

func (m *crawlMetrics) register(reg *obs.Registry) {
	m.domains = reg.Counter("crawler.domains")
	m.thinOK = reg.Counter("crawler.thin.ok")
	m.thickOK = reg.Counter("crawler.thick.ok")
	m.noMatch = reg.Counter("crawler.nomatch")
	m.failures = reg.Counter("crawler.failures")
	m.rateLimited = reg.Counter("crawler.ratelimited")
	m.retries = reg.Counter("crawler.retries")
}

// New builds a Crawler, applying defaults.
func New(cfg Config) (*Crawler, error) {
	if cfg.Resolver == nil {
		return nil, errors.New("crawler: Resolver is required")
	}
	if cfg.Registry == "" {
		cfg.Registry = registry.RegistryServerName
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.MaxInterval <= 0 {
		cfg.MaxInterval = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if len(cfg.Sources) == 0 {
		cfg.Sources = []string{""}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Crawler{
		cfg:   cfg,
		reg:   reg,
		paces: make(map[string]*serverPace),
		cmet:  make(map[string]*whoisclient.Metrics),
	}
	c.met.register(reg)
	return c, nil
}

// Metrics returns the registry the crawler records into.
func (c *Crawler) Metrics() *obs.Registry { return c.reg }

// clientMetrics returns the cached per-server whoisclient counters, so
// retries, timeouts, and bytes are attributable per host.
func (c *Crawler) clientMetrics(server string) *whoisclient.Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.cmet[server]
	if m == nil {
		m = whoisclient.NewMetrics(c.reg, "whoisclient."+server)
		c.cmet[server] = m
	}
	return m
}

func (c *Crawler) pace(server string) *serverPace {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.paces[server]
	if p == nil {
		p = &serverPace{interval: c.cfg.InitialInterval, backoff: 400 * time.Millisecond}
		c.paces[server] = p
	}
	return p
}

// wait blocks until the server's pacing allows another query, reserving
// the slot.
func (p *serverPace) wait(ctx context.Context) error {
	p.mu.Lock()
	now := time.Now()
	start := p.nextAllowed
	if start.Before(now) {
		start = now
	}
	p.nextAllowed = start.Add(p.interval)
	p.mu.Unlock()
	d := time.Until(start)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// onRateLimit records a refusal: double the pacing interval (inferring
// the limit was crossed) and apply an increasing penalty wait.
func (p *serverPace) onRateLimit(maxInterval time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.limited++
	if p.interval == 0 {
		p.interval = 10 * time.Millisecond
	} else {
		p.interval *= 2
	}
	if p.interval > maxInterval {
		p.interval = maxInterval
	}
	p.backoff *= 2
	if p.backoff > maxInterval*4 {
		p.backoff = maxInterval * 4
	}
	if next := time.Now().Add(p.backoff); next.After(p.nextAllowed) {
		p.nextAllowed = next
	}
}

// onSuccess gently decays the interval so the crawler keeps probing for
// the true limit.
func (p *serverPace) onSuccess() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.successes++
	if p.interval > 0 && p.successes%64 == 0 {
		p.interval = time.Duration(float64(p.interval) * 0.9)
	}
}

// InferredRate reports the crawler's learned queries/sec budget for a
// server (+Inf if it never hit a limit).
func (c *Crawler) InferredRate(server string) float64 {
	c.mu.Lock()
	p := c.paces[server]
	c.mu.Unlock()
	if p == nil {
		return math.Inf(1)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.interval == 0 {
		return math.Inf(1)
	}
	return float64(time.Second) / float64(p.interval)
}

// LimitedServers lists servers that refused at least once, sorted.
func (c *Crawler) LimitedServers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for s, p := range c.paces {
		p.mu.Lock()
		lim := p.limited
		p.mu.Unlock()
		if lim > 0 {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Crawl fetches thin+thick records for every domain, in parallel.
func (c *Crawler) Crawl(ctx context.Context, domains []string) ([]Result, Stats) {
	start := time.Now()
	results := make([]Result, len(domains))
	var stats Stats
	stats.Total = int64(len(domains))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				results[i] = c.crawlOne(ctx, domains[i], w, &stats)
				if c.cfg.OnResult != nil {
					c.cfg.OnResult(results[i])
				}
			}
		}(w)
	}
feed:
	for i := range domains {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return results, stats
}

func (c *Crawler) crawlOne(ctx context.Context, domain string, worker int, stats *Stats) Result {
	res := Result{Domain: domain}
	c.met.domains.Inc()

	thinSpan := c.reg.Start("crawler.thin")
	thin, attempts, err := c.queryWithRetry(ctx, c.cfg.Registry, domain, worker, stats)
	thinSpan.End(err)
	res.Attempts += attempts
	if err != nil {
		res.Err = fmt.Errorf("crawler: thin %s: %w", domain, err)
		if errors.Is(err, whoisclient.ErrNoMatch) {
			atomic.AddInt64(&stats.NoMatch, 1)
			c.met.noMatch.Inc()
		} else {
			atomic.AddInt64(&stats.Failures, 1)
			c.met.failures.Inc()
		}
		return res
	}
	res.Thin = thin
	atomic.AddInt64(&stats.ThinOK, 1)
	c.met.thinOK.Inc()

	server, ok := whoisclient.ExtractReferral(thin)
	if !ok {
		res.Err = whoisclient.ErrNoReferral
		atomic.AddInt64(&stats.Failures, 1)
		c.met.failures.Inc()
		return res
	}
	res.WhoisServer = server

	thickSpan := c.reg.Start("crawler.thick")
	thick, attempts, err := c.queryWithRetry(ctx, server, domain, worker, stats)
	thickSpan.End(err)
	res.Attempts += attempts
	if err != nil {
		res.Err = fmt.Errorf("crawler: thick %s at %s: %w", domain, server, err)
		if errors.Is(err, whoisclient.ErrNoMatch) {
			atomic.AddInt64(&stats.NoMatch, 1)
			c.met.noMatch.Inc()
		} else {
			atomic.AddInt64(&stats.Failures, 1)
			c.met.failures.Inc()
		}
		return res
	}
	res.Thick = thick
	atomic.AddInt64(&stats.ThickOK, 1)
	c.met.thickOK.Inc()
	return res
}

// queryWithRetry paces, queries, and on rate-limit refusals backs off and
// rotates the source address, up to cfg.Attempts total tries.
func (c *Crawler) queryWithRetry(ctx context.Context, server, domain string, worker int, stats *Stats) (string, int, error) {
	p := c.pace(server)
	cm := c.clientMetrics(server)
	hostRetries := c.reg.Counter("crawler.host." + server + ".retries")
	hostLimited := c.reg.Counter("crawler.host." + server + ".ratelimited")
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if err := p.wait(ctx); err != nil {
			return "", attempt, err
		}
		src := c.cfg.Sources[(worker+attempt)%len(c.cfg.Sources)]
		client := &whoisclient.Client{Resolver: c.cfg.Resolver, Timeout: c.cfg.Timeout, LocalIP: src, Metrics: cm}
		resp, err := client.Query(ctx, server, domain)
		switch {
		case err == nil:
			p.onSuccess()
			return resp, attempt + 1, nil
		case errors.Is(err, whoisclient.ErrNoMatch):
			// Negative answers are authoritative; do not retry.
			return "", attempt + 1, err
		case errors.Is(err, whoisclient.ErrRateLimited), errors.Is(err, whoisclient.ErrEmpty):
			atomic.AddInt64(&stats.RateLimitHits, 1)
			atomic.AddInt64(&stats.Retries, 1)
			c.met.rateLimited.Inc()
			c.met.retries.Inc()
			hostLimited.Inc()
			hostRetries.Inc()
			p.onRateLimit(c.cfg.MaxInterval)
			lastErr = err
			c.cfg.Log.Warn("rate limited", "server", server, "domain", domain, "attempt", attempt+1, "source", src)
		default:
			atomic.AddInt64(&stats.Retries, 1)
			c.met.retries.Inc()
			hostRetries.Inc()
			lastErr = err
			c.cfg.Log.Warn("query failed", "server", server, "domain", domain, "attempt", attempt+1, "err", err)
		}
	}
	return "", c.cfg.Attempts, fmt.Errorf("crawler: %d attempts exhausted: %w", c.cfg.Attempts, lastErr)
}
