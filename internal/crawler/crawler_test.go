package crawler

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/whoisd"
)

func startEcosystem(t *testing.T, n int, failFrac float64, limit int) (*whoisd.Cluster, []*synth.Domain) {
	t.Helper()
	domains := synth.Generate(synth.Config{N: n, Seed: 71})
	eco := registry.BuildEcosystem(domains, failFrac)
	cluster, err := whoisd.StartCluster(eco, whoisd.ClusterConfig{
		RegistryLimit:  limit * 10,
		RegistrarLimit: limit,
		Window:         300 * time.Millisecond,
		Penalty:        500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, domains
}

func names(domains []*synth.Domain) []string {
	out := make([]string, len(domains))
	for i, d := range domains {
		out[i] = d.Reg.Domain
	}
	return out
}

func TestNewRequiresResolver(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error without resolver")
	}
}

func TestCrawlHappyPath(t *testing.T) {
	cluster, domains := startEcosystem(t, 40, 0, 0)
	c, err := New(Config{Resolver: cluster.Directory, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	results, stats := c.Crawl(ctx, names(domains))
	if stats.ThickOK != int64(len(domains)) {
		t.Fatalf("thick %d/%d; failures: %+v", stats.ThickOK, len(domains), stats)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if !strings.Contains(strings.ToLower(r.Thin), domains[i].Reg.Domain) {
			t.Errorf("thin record for %s looks wrong", domains[i].Reg.Domain)
		}
		if r.WhoisServer != domains[i].Reg.WhoisServer {
			t.Errorf("referral %q, want %q", r.WhoisServer, domains[i].Reg.WhoisServer)
		}
	}
	if stats.Coverage() != 1 {
		t.Errorf("coverage %v", stats.Coverage())
	}
}

func TestCrawlFailureTail(t *testing.T) {
	cluster, domains := startEcosystem(t, 80, 0.1, 0)
	c, err := New(Config{Resolver: cluster.Directory, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, stats := c.Crawl(ctx, names(domains))
	if stats.NoMatch == 0 {
		t.Error("withheld thick records should produce no-match failures")
	}
	if stats.Coverage() > 0.99 {
		t.Errorf("coverage %.3f despite 10%% withheld records", stats.Coverage())
	}
	if got := stats.FailureRate(); got < 0.02 || got > 0.25 {
		t.Errorf("failure rate %.3f, want near the withheld fraction", got)
	}
}

func TestCrawlRateLimitAdaptation(t *testing.T) {
	cluster, domains := startEcosystem(t, 120, 0, 5)
	c, err := New(Config{
		Resolver:        cluster.Directory,
		Workers:         16,
		Sources:         []string{"127.0.0.2", "127.0.0.3", "127.0.0.4"},
		InitialInterval: time.Millisecond,
		MaxInterval:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	_, stats := c.Crawl(ctx, names(domains))
	if stats.RateLimitHits == 0 {
		t.Error("tight limits never triggered — the adaptation path is untested")
	}
	if stats.Coverage() < 0.9 {
		t.Errorf("coverage %.3f; adaptation should recover most domains", stats.Coverage())
	}
	if len(c.LimitedServers()) == 0 {
		t.Error("no servers recorded as limited")
	}
	for _, s := range c.LimitedServers() {
		if rate := c.InferredRate(s); rate <= 0 {
			t.Errorf("inferred rate for %s: %v", s, rate)
		}
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	cluster, domains := startEcosystem(t, 50, 0, 0)
	c, err := New(Config{Resolver: cluster.Directory, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	_, stats := c.Crawl(ctx, names(domains))
	if stats.ThickOK == int64(len(domains)) {
		t.Error("cancelled crawl completed everything")
	}
}

func TestCrawlEmptyList(t *testing.T) {
	cluster, _ := startEcosystem(t, 5, 0, 0)
	c, err := New(Config{Resolver: cluster.Directory})
	if err != nil {
		t.Fatal(err)
	}
	results, stats := c.Crawl(context.Background(), nil)
	if len(results) != 0 || stats.Total != 0 {
		t.Errorf("empty crawl: %d results, %+v", len(results), stats)
	}
}

func TestStatsRates(t *testing.T) {
	s := Stats{Total: 100, ThickOK: 90, NoMatch: 7, Failures: 3}
	if s.Coverage() != 0.9 {
		t.Errorf("coverage %v", s.Coverage())
	}
	if s.FailureRate() != 0.1 {
		t.Errorf("failure rate %v", s.FailureRate())
	}
	var zero Stats
	if zero.Coverage() != 0 || zero.FailureRate() != 0 {
		t.Error("zero stats should have zero rates")
	}
}

func TestPaceBackoffGrows(t *testing.T) {
	p := &serverPace{backoff: 100 * time.Millisecond}
	p.onRateLimit(time.Second)
	first := p.interval
	p.onRateLimit(time.Second)
	if p.interval <= first {
		t.Errorf("interval did not grow: %v -> %v", first, p.interval)
	}
	for i := 0; i < 20; i++ {
		p.onRateLimit(time.Second)
	}
	if p.interval > time.Second {
		t.Errorf("interval exceeded cap: %v", p.interval)
	}
	if p.backoff > 4*time.Second {
		t.Errorf("backoff exceeded cap: %v", p.backoff)
	}
}

func TestPacingPersistsAcrossCrawls(t *testing.T) {
	// §4.1: "we record this limit, subsequently querying well under this
	// limit for that server." The inferred budget must carry over to the
	// next crawl, which should then hit far fewer refusals.
	cluster, domains := startEcosystem(t, 100, 0, 5)
	c, err := New(Config{
		Resolver:        cluster.Directory,
		Workers:         16,
		Sources:         []string{"127.0.0.2", "127.0.0.3", "127.0.0.4"},
		InitialInterval: time.Millisecond,
		MaxInterval:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	_, first := c.Crawl(ctx, names(domains))
	if first.RateLimitHits == 0 {
		t.Skip("first crawl never hit a limit; nothing to compare")
	}
	_, second := c.Crawl(ctx, names(domains))
	if second.RateLimitHits > first.RateLimitHits {
		t.Errorf("second crawl hit MORE limits (%d) than the first (%d) — pacing state not reused",
			second.RateLimitHits, first.RateLimitHits)
	}
	if second.Coverage() < 0.95 {
		t.Errorf("second crawl coverage %.3f", second.Coverage())
	}
}

func TestOnResultStreamsEveryDomain(t *testing.T) {
	cluster, domains := startEcosystem(t, 25, 0, 0)
	var mu sync.Mutex
	seen := make(map[string]int)
	c, err := New(Config{
		Resolver: cluster.Directory,
		Workers:  6,
		OnResult: func(r Result) {
			if r.Err != nil || r.Thick == "" {
				t.Errorf("OnResult got a failed crawl for %s: %v", r.Domain, r.Err)
			}
			mu.Lock()
			seen[r.Domain]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, stats := c.Crawl(ctx, names(domains))
	if stats.ThickOK != int64(len(domains)) {
		t.Fatalf("thick %d/%d", stats.ThickOK, len(domains))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(domains) {
		t.Fatalf("OnResult saw %d distinct domains, want %d", len(seen), len(domains))
	}
	for d, n := range seen {
		if n != 1 {
			t.Errorf("OnResult called %d times for %s, want 1", n, d)
		}
	}
}
