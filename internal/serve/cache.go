package serve

import (
	"container/list"
	"hash/maphash"
	"sync"

	"repro/internal/core"
)

// key identifies a raw record without storing its text: two independent
// 64-bit hashes plus the length, plus the cache generation current when
// the key was computed. h1 is an inline FNV-1a (stable, also the shard
// selector); h2 is a maphash under a per-server random seed. A false
// cache hit needs all three hash dimensions to collide — with 128+ bits
// of independent hash over same-length texts that is beyond negligible,
// the same stance internal/crf takes for its score cache signatures.
// gen makes model identity part of record identity: a swap bumps the
// generation, so entries written under the old model can never answer a
// request admitted under the new one.
type key struct {
	h1  uint64
	h2  uint64
	n   int
	gen uint64
}

// hashSeed carries the per-server maphash seed so keys are only
// comparable within one Server (cache keys never persist).
type hashSeed struct{ s maphash.Seed }

func makeHashSeed() hashSeed { return hashSeed{maphash.MakeSeed()} }

// hashKey computes the cache/coalescing key for a raw record under one
// cache generation. Zero allocations: FNV-1a runs byte-wise over the
// string, maphash.String hashes without copying. The generation rides as
// its own key field rather than being mixed into the hashes, so shard
// selection (h1) is stable across swaps.
func (s *Server) hashKey(text string, gen uint64) key {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64)
	for i := 0; i < len(text); i++ {
		h1 ^= uint64(text[i])
		h1 *= prime64
	}
	return key{h1: h1, h2: maphash.String(s.seed.s, text), n: len(text), gen: gen}
}

// entry is one cached parse result.
type entry struct {
	k   key
	rec *core.ParsedRecord
}

// shard is one lock domain of the cache: an LRU of parsed records plus
// the singleflight registry for keys currently being parsed. Both live
// under one mutex so the lookup→coalesce→register sequence is atomic.
type shard struct {
	mu       sync.Mutex
	capacity int // 0 disables caching
	entries  map[key]*list.Element
	lru      list.List // front = most recently used
	inflight map[key]*call
}

func (sh *shard) init(capacity int) {
	sh.capacity = capacity
	sh.entries = make(map[key]*list.Element)
	sh.inflight = make(map[key]*call)
	sh.lru.Init()
}

// get returns the cached record for k, promoting it to most recently
// used. Callers hold sh.mu.
func (sh *shard) get(k key) (*core.ParsedRecord, bool) {
	el, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*entry).rec, true
}

// add caches rec under k, evicting the least recently used entry when
// over capacity. Callers hold sh.mu.
func (sh *shard) add(k key, rec *core.ParsedRecord) {
	if sh.capacity <= 0 {
		return
	}
	if el, ok := sh.entries[k]; ok {
		el.Value.(*entry).rec = rec
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[k] = sh.lru.PushFront(&entry{k: k, rec: rec})
	for sh.lru.Len() > sh.capacity {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*entry).k)
	}
}
