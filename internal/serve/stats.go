package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters are the monotonic serving counters, updated lock-free.
type counters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	shed      atomic.Uint64
	parsed    atomic.Uint64
	inFlight  atomic.Int64
}

// Stats is a point-in-time snapshot of the serving layer.
type Stats struct {
	// Hits counts requests answered from the cache; Misses requests
	// admitted for a fresh parse; Coalesced requests that attached to
	// an identical in-flight parse; Shed requests rejected with
	// ErrOverloaded; Parsed parses actually executed.
	Hits, Misses, Coalesced, Shed, Parsed uint64
	// InFlight is the number of admitted-but-unfinished parses, Queued
	// how many of those are still waiting for a worker.
	InFlight, Queued int
	// CacheEntries is the current number of cached records.
	CacheEntries int
	// ParseP50/P90/P99 are parse-execution latency quantiles over the
	// last LatencySamples parses (a fixed-size window, not all-time).
	ParseP50, ParseP90, ParseP99 time.Duration
	LatencySamples               int
}

// String renders the snapshot as a one-line log summary.
func (st Stats) String() string {
	return fmt.Sprintf(
		"hits=%d misses=%d coalesced=%d shed=%d parsed=%d inflight=%d queued=%d cached=%d p50=%s p90=%s p99=%s",
		st.Hits, st.Misses, st.Coalesced, st.Shed, st.Parsed,
		st.InFlight, st.Queued, st.CacheEntries, st.ParseP50, st.ParseP90, st.ParseP99)
}

// latencyRing is a fixed-size sample of recent parse latencies: a ring
// overwritten circularly, so quantiles reflect the last len(buf) parses
// with O(1) record cost and bounded memory.
type latencyRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   uint64 // total ever recorded
}

func (r *latencyRing) init(window int) { r.buf = make([]time.Duration, window) }

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = d
	r.n++
	r.mu.Unlock()
}

// quantiles returns p50/p90/p99 over the filled portion of the window.
func (r *latencyRing) quantiles() (p50, p90, p99 time.Duration, n int) {
	r.mu.Lock()
	n = len(r.buf)
	if r.n < uint64(n) {
		n = int(r.n)
	}
	sample := make([]time.Duration, n)
	copy(sample, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return sample[i]
	}
	return q(0.50), q(0.90), q(0.99), n
}
