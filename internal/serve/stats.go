package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// metrics bundles the serving layer's obs handles. All hot-path updates
// are lock-free atomic operations; the parse-latency histogram replaces
// the bespoke ring buffer this package used to carry (the ring's
// pre-wrap window handling was subtle enough to grow a bug class of its
// own — fixed-bucket histograms cannot report unfilled slots, and their
// quantiles cover all traffic rather than the last N parses).
type metrics struct {
	hits          *obs.Counter
	misses        *obs.Counter
	coalesced     *obs.Counter
	shed          *obs.Counter
	parsed        *obs.Counter
	preloads      *obs.Counter
	invalidations *obs.Counter
	inFlight      *obs.Gauge
	latency       *obs.Histogram
}

// register creates the serving metrics in reg under the serve.* names
// documented in DESIGN.md §5c.
func (m *metrics) register(reg *obs.Registry) {
	m.hits = reg.Counter("serve.cache.hits")
	m.misses = reg.Counter("serve.cache.misses")
	m.coalesced = reg.Counter("serve.coalesced")
	m.shed = reg.Counter("serve.shed")
	m.parsed = reg.Counter("serve.parsed")
	m.preloads = reg.Counter("serve.cache.preloads")
	m.invalidations = reg.Counter("serve.cache.invalidations")
	m.inFlight = reg.Gauge("serve.inflight")
	m.latency = reg.Histogram("serve.parse.seconds", obs.DurationBounds())
}

// Stats is a point-in-time snapshot of the serving layer.
type Stats struct {
	// Hits counts requests answered from the cache; Misses requests
	// admitted for a fresh parse; Coalesced requests that attached to
	// an identical in-flight parse; Shed requests rejected with
	// ErrOverloaded; Parsed parses actually executed.
	Hits, Misses, Coalesced, Shed, Parsed uint64
	// Preloads counts records injected by Preload (store warm-start).
	Preloads uint64
	// Invalidations counts generation bumps (SetParseFunc/InvalidateAll):
	// each one orphans every cached entry at once.
	Invalidations uint64
	// InFlight is the number of admitted-but-unfinished parses, Queued
	// how many of those are still waiting for a worker.
	InFlight, Queued int
	// CacheEntries is the current number of cached records.
	CacheEntries int
	// ParseP50/P90/P99 are parse-execution latency quantiles estimated
	// from the serve.parse.seconds histogram buckets, over all parses
	// since the server started.
	ParseP50, ParseP90, ParseP99 time.Duration
	// LatencySamples is the number of parses the quantiles cover.
	LatencySamples int
}

// String renders the snapshot as a one-line log summary.
func (st Stats) String() string {
	return fmt.Sprintf(
		"hits=%d misses=%d coalesced=%d shed=%d parsed=%d inflight=%d queued=%d cached=%d p50=%s p90=%s p99=%s",
		st.Hits, st.Misses, st.Coalesced, st.Shed, st.Parsed,
		st.InFlight, st.Queued, st.CacheEntries, st.ParseP50, st.ParseP90, st.ParseP99)
}
