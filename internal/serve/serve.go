// Package serve is the shared high-throughput parse-serving layer that
// sits between the statistical parser (internal/core) and every frontend
// that exposes it: the RFC 3912 daemon (internal/whoisd), the RDAP
// endpoint (internal/rdap), and the batch survey driver (cmd/whoissurvey).
//
// PR 1 made a single ParseRecord nearly allocation-free; this package
// makes many of them cheap under real traffic, where the same hot domains
// are requested over and over (the paper parses 102M .com records by
// fanning work across machines, §6; under interactive load the dominant
// cost is re-parsing popular records). Three mechanisms stack:
//
//   - a sharded LRU cache of parsed results keyed by a hash of the raw
//     record text, so a hot record is parsed once;
//   - singleflight coalescing, so N concurrent requests for the same
//     not-yet-cached record trigger exactly one parse and share the
//     result;
//   - a bounded worker pool behind a fixed-depth admission queue with
//     explicit load shedding (ErrOverloaded), so saturation degrades
//     into fast failures instead of an unbounded pile of goroutines.
//
// Close drains: admission stops (ErrClosed) while every accepted parse
// still completes and wakes its waiters. All counters, gauges, and the
// parse-latency histogram live in an internal/obs Registry (shared with
// the daemons' /debug/vars when Options.Metrics is set); Stats remains
// as a convenience snapshot read back from those metrics.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var (
	// ErrOverloaded reports that the admission queue was full and the
	// request was shed. Callers should surface it as backpressure
	// (WHOIS: try-again-later line; RDAP/HTTP: 503) rather than retry
	// in a tight loop.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrClosed reports that the server is draining or has shut down.
	ErrClosed = errors.New("serve: server closed")
)

// ParseFunc produces the parsed view of one raw WHOIS record. It must be
// safe for concurrent use; core.Parser.Parse is (decoding is read-only on
// the model).
type ParseFunc func(text string) *core.ParsedRecord

// Options tunes the serving layer. The zero value picks sane defaults.
type Options struct {
	// Workers is the parse worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; <= 0 means 8*Workers.
	// Parse sheds (ErrOverloaded) when the queue is full; ParseWait and
	// ParseBatch block instead.
	QueueDepth int
	// CacheCapacity is the total number of parsed records kept across
	// all shards; 0 means 4096, negative disables caching (coalescing
	// still applies to concurrent identical requests).
	CacheCapacity int
	// Shards is the number of cache/coalescing shards, rounded up to a
	// power of two; <= 0 means 16.
	Shards int
	// Metrics is the observability registry the server records into
	// (serve.* counters, gauges, and the parse-latency histogram — see
	// DESIGN.md §5c). Nil means a private registry, reachable via
	// Server.Metrics; daemons pass a shared registry so /debug/vars
	// shows the serving layer next to everything else.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8 * o.Workers
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 4096
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	p := 1
	for p < o.Shards {
		p <<= 1
	}
	o.Shards = p
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// parseState is the unit of hot swap: the parse function and the cache
// generation it writes under, replaced together in one atomic pointer
// store. Admission loads the state exactly once per request, so a request
// can never observe the new function with the old generation (or vice
// versa) — the no-torn-model guarantee internal/lifecycle builds on.
type parseState struct {
	fn  ParseFunc
	gen uint64
}

// Server is the parse-serving layer: cache + coalescing in front of a
// bounded worker pool. Create with New or NewFunc; always Close to drain.
type Server struct {
	state  atomic.Pointer[parseState]
	opts   Options
	shards []shard
	seed   hashSeed
	queue  chan *call

	// mu gates admission against Close: enqueuers hold the read side
	// while sending so the queue cannot be closed underneath them.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	reg *obs.Registry
	m   metrics
}

// New builds a serving layer over a trained parser.
func New(p *core.Parser, opts Options) *Server { return NewFunc(p.Parse, opts) }

// NewFunc builds a serving layer over an arbitrary parse function
// (tests substitute instrumented or blocking functions).
func NewFunc(fn ParseFunc, opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:   o,
		shards: make([]shard, o.Shards),
		seed:   makeHashSeed(),
		queue:  make(chan *call, o.QueueDepth),
		reg:    o.Metrics,
	}
	s.state.Store(&parseState{fn: fn})
	perShard := 0
	if o.CacheCapacity > 0 {
		perShard = o.CacheCapacity / o.Shards
		if perShard < 1 {
			perShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i].init(perShard)
	}
	s.m.register(s.reg)
	s.reg.GaugeFunc("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("serve.cache.entries", func() float64 { return float64(s.cacheEntries()) })
	for w := 0; w < o.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the registry the server records into — the one passed
// via Options.Metrics, or the private one created by default.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetParseFunc atomically replaces the parse function and bumps the
// cache generation in one step — the zero-downtime model swap. Requests
// admitted before the call finish under the old function and stay cached
// under the old generation; requests admitted after it parse with fn and
// read/write the new generation, so no post-swap request can be answered
// from a pre-swap cache entry. O(1): nothing is locked, swept, or freed
// (orphaned entries age out of the LRU under normal traffic).
func (s *Server) SetParseFunc(fn ParseFunc) {
	for {
		old := s.state.Load()
		if s.state.CompareAndSwap(old, &parseState{fn: fn, gen: old.gen + 1}) {
			break
		}
	}
	s.m.invalidations.Inc()
}

// InvalidateAll bumps the cache generation without changing the parse
// function: every cached entry becomes unreachable at once. O(1) — a
// single atomic pointer swap, no lock sweep; the orphaned entries are
// evicted by LRU pressure as the new generation fills in. Model swaps
// use SetParseFunc, which invalidates and swaps atomically; InvalidateAll
// is the standalone escape hatch (e.g. upstream corpus changed under an
// unchanged model).
func (s *Server) InvalidateAll() {
	for {
		old := s.state.Load()
		if s.state.CompareAndSwap(old, &parseState{fn: old.fn, gen: old.gen + 1}) {
			break
		}
	}
	s.m.invalidations.Inc()
}

// Generation returns the current cache generation — incremented by every
// SetParseFunc or InvalidateAll. Entries written under older generations
// can no longer be returned.
func (s *Server) Generation() uint64 { return s.state.Load().gen }

// cacheEntries counts cached records across shards.
func (s *Server) cacheEntries() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.lru.Len()
		sh.mu.Unlock()
	}
	return total
}

// call is one in-flight parse that any number of requests may wait on.
// fn is the parse function captured at admission time: a swap between
// admission and execution must not retroactively change which model a
// request was admitted under (its cache key already carries that
// model's generation).
type call struct {
	k    key
	fn   ParseFunc
	text string
	done chan struct{}
	rec  *core.ParsedRecord
	err  error
}

// Parse returns the parsed view of text, serving from cache when
// possible, coalescing onto an identical in-flight parse otherwise, and
// shedding with ErrOverloaded when the admission queue is full. A
// context cancellation abandons the wait but leaves the parse running
// for any other waiters (and for the cache).
func (s *Server) Parse(ctx context.Context, text string) (*core.ParsedRecord, error) {
	return s.do(ctx, text, false)
}

// ParseWait is Parse with blocking admission: when the queue is full it
// waits for space instead of shedding — backpressure for batch callers
// that would rather slow down than drop work.
func (s *Server) ParseWait(ctx context.Context, text string) (*core.ParsedRecord, error) {
	return s.do(ctx, text, true)
}

func (s *Server) do(ctx context.Context, text string, wait bool) (*core.ParsedRecord, error) {
	c, rec, err := s.admit(ctx, text, wait)
	if err != nil || rec != nil {
		return rec, err
	}
	select {
	case <-c.done:
		return c.rec, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ParseBatch runs texts through the cache/coalescing path with blocking
// admission and returns results aligned with texts — the bulk driver for
// survey-scale workloads. Duplicate texts inside the batch are parsed
// once (they coalesce). On error the already-admitted parses still
// complete in the background (and populate the cache); their results are
// simply not collected.
func (s *Server) ParseBatch(ctx context.Context, texts []string) ([]*core.ParsedRecord, error) {
	out := make([]*core.ParsedRecord, len(texts))
	type pending struct {
		i int
		c *call
	}
	waits := make([]pending, 0, len(texts))
	for i, text := range texts {
		c, rec, err := s.admit(ctx, text, true)
		if err != nil {
			return nil, err
		}
		if rec != nil {
			out[i] = rec
			continue
		}
		waits = append(waits, pending{i, c})
	}
	for _, p := range waits {
		select {
		case <-p.c.done:
			if p.c.err != nil {
				return nil, p.c.err
			}
			out[p.i] = p.c.rec
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// Preload inserts an already-parsed record into the cache without a
// parse or a queue trip — the warm-start path: at daemon boot the newest
// store segment is replayed through Preload so the first requests after a
// restart hit a cache that looks like the one the previous process died
// with. Keys are computed exactly as Parse computes them, so a later
// request for the same raw text is a hit. Preloading with a nil record or
// onto a cache-disabled server is a no-op. Safe for concurrent use.
func (s *Server) Preload(text string, rec *core.ParsedRecord) {
	if rec == nil || s.opts.CacheCapacity < 0 {
		return
	}
	k := s.hashKey(text, s.state.Load().gen)
	sh := &s.shards[int(k.h1)&(len(s.shards)-1)]
	sh.mu.Lock()
	sh.add(k, rec)
	sh.mu.Unlock()
	s.m.preloads.Inc()
}

// admit resolves a request to either a cached record, a call to wait on,
// or an admission error. Exactly one of the three is non-zero.
func (s *Server) admit(ctx context.Context, text string, wait bool) (*call, *core.ParsedRecord, error) {
	// One state load per request: the parse function and the cache
	// generation it belongs to are read together, so a concurrent swap
	// cannot tear them apart.
	st := s.state.Load()
	k := s.hashKey(text, st.gen)
	sh := &s.shards[int(k.h1)&(len(s.shards)-1)]

	sh.mu.Lock()
	if rec, ok := sh.get(k); ok {
		sh.mu.Unlock()
		s.m.hits.Inc()
		return nil, rec, nil
	}
	if c, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		s.m.coalesced.Inc()
		return c, nil, nil
	}
	c := &call{k: k, fn: st.fn, text: text, done: make(chan struct{})}
	sh.inflight[k] = c
	sh.mu.Unlock()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.abort(sh, c, ErrClosed)
		return nil, nil, ErrClosed
	}
	if wait {
		// Blocking send while holding the read lock is safe: Close
		// takes the write lock before closing the queue, so it waits
		// for us, and the workers keep draining until then.
		select {
		case s.queue <- c:
			s.mu.RUnlock()
		case <-ctx.Done():
			s.mu.RUnlock()
			s.abort(sh, c, ctx.Err())
			return nil, nil, ctx.Err()
		}
	} else {
		select {
		case s.queue <- c:
			s.mu.RUnlock()
		default:
			s.mu.RUnlock()
			s.abort(sh, c, ErrOverloaded)
			s.m.shed.Inc()
			return nil, nil, ErrOverloaded
		}
	}
	s.m.misses.Inc()
	s.m.inFlight.Add(1)
	return c, nil, nil
}

// abort withdraws a registered but never-admitted call. Anyone who
// coalesced onto it in the window between registration and admission
// failure inherits err.
func (s *Server) abort(sh *shard, c *call, err error) {
	sh.mu.Lock()
	if sh.inflight[c.k] == c {
		delete(sh.inflight, c.k)
	}
	sh.mu.Unlock()
	c.err = err
	close(c.done)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for c := range s.queue {
		start := time.Now()
		rec := c.fn(c.text)
		s.m.latency.ObserveSince(start)

		c.rec = rec
		sh := &s.shards[int(c.k.h1)&(len(s.shards)-1)]
		sh.mu.Lock()
		sh.add(c.k, rec)
		if sh.inflight[c.k] == c {
			delete(sh.inflight, c.k)
		}
		sh.mu.Unlock()
		close(c.done)

		s.m.parsed.Inc()
		s.m.inFlight.Add(-1)
	}
}

// Close drains the server: new requests fail with ErrClosed, every
// already-admitted parse completes (waking its waiters and filling the
// cache), and the worker pool exits. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	return nil
}

// Stats returns a consistent-enough snapshot of the serving counters,
// read back from the obs registry the hot paths record into.
func (s *Server) Stats() Stats {
	st := Stats{
		Hits:          s.m.hits.Value(),
		Misses:        s.m.misses.Value(),
		Coalesced:     s.m.coalesced.Value(),
		Shed:          s.m.shed.Value(),
		Parsed:        s.m.parsed.Value(),
		Preloads:      s.m.preloads.Value(),
		Invalidations: s.m.invalidations.Value(),
		InFlight:      int(s.m.inFlight.Value()),
		Queued:        len(s.queue),
		CacheEntries:  s.cacheEntries(),
	}
	st.ParseP50 = s.m.latency.QuantileDuration(0.50)
	st.ParseP90 = s.m.latency.QuantileDuration(0.90)
	st.ParseP99 = s.m.latency.QuantileDuration(0.99)
	st.LatencySamples = int(s.m.latency.Count())
	return st
}
