package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crf"
	"repro/internal/optimize"
	"repro/internal/synth"
)

// The serving benchmarks quantify what the layer buys over raw
// core.Parser.Parse (BENCH_serve.json snapshots the trajectory):
//
//	BenchmarkServeCold          — cache-miss path, pool overhead included
//	BenchmarkServeHot           — cache-hit path; must be >= 10x ServeCold
//	BenchmarkServeColdParallel  — throughput under backpressure, no cache
//	BenchmarkServeCoalesced     — concurrent identical requests
//	BenchmarkParseDirect        — the unshared baseline

var (
	benchSetup  sync.Once
	benchParser *core.Parser
	benchTexts  []string
)

func setupBench(b *testing.B) {
	b.Helper()
	benchSetup.Do(func() {
		recs := synth.GenerateLabeled(synth.Config{N: 800, Seed: 901})
		// Train directly through core (experiments would close an
		// import cycle back into serve via whoisd).
		cfg := core.DefaultConfig()
		lbfgs := optimize.DefaultLBFGSConfig()
		lbfgs.MaxIterations = 40
		cfg.Train = crf.TrainConfig{LBFGS: lbfgs}
		p, _, err := core.Train(recs[:200], cfg)
		if err != nil {
			panic(err)
		}
		benchParser = p
		benchTexts = make([]string, 0, 512)
		for _, r := range recs[200:712] {
			benchTexts = append(benchTexts, r.Text)
		}
	})
}

func BenchmarkParseDirect(b *testing.B) {
	setupBench(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchParser.Parse(benchTexts[i%len(benchTexts)])
	}
}

func BenchmarkServeCold(b *testing.B) {
	setupBench(b)
	s := New(benchParser, Options{CacheCapacity: -1}) // every request parses
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.ParseWait(ctx, benchTexts[i%len(benchTexts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeHot(b *testing.B) {
	setupBench(b)
	s := New(benchParser, Options{})
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Parse(ctx, benchTexts[0]); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Parse(ctx, benchTexts[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeColdParallel(b *testing.B) {
	setupBench(b)
	s := New(benchParser, Options{CacheCapacity: -1})
	defer s.Close()
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			// Distinct texts per iteration: all misses, throughput
			// bounded by the worker pool via blocking admission.
			if _, err := s.ParseWait(ctx, benchTexts[i%len(benchTexts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkServeCoalesced(b *testing.B) {
	setupBench(b)
	s := New(benchParser, Options{CacheCapacity: -1}) // no cache: coalescing only
	defer s.Close()
	const fanout = 8
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// fanout concurrent requests for the same record: one parse,
		// the rest attach to it. ns/op covers all fanout requests.
		text := benchTexts[i%len(benchTexts)]
		var wg sync.WaitGroup
		for k := 0; k < fanout; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.ParseWait(ctx, text); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(fanout, "requests/op")
	if st.Misses > 0 {
		b.ReportMetric(float64(st.Coalesced)/float64(st.Misses), "coalesced/parse")
	}
}
