package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// countingParse returns a ParseFunc that records how many times each
// text was parsed, plus a getter.
func countingParse() (ParseFunc, func(text string) int) {
	var mu sync.Mutex
	calls := make(map[string]int)
	fn := func(text string) *core.ParsedRecord {
		mu.Lock()
		calls[text]++
		mu.Unlock()
		return &core.ParsedRecord{DomainName: text}
	}
	get := func(text string) int {
		mu.Lock()
		defer mu.Unlock()
		return calls[text]
	}
	return fn, get
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHit(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	r1, err := s.Parse(ctx, "record a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Parse(ctx, "record a")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache hit should return the identical parsed record")
	}
	if got := calls("record a"); got != 1 {
		t.Errorf("parse called %d times, want 1", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1", st.CacheEntries)
	}
}

func TestDistinctTextsDistinctEntries(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	for _, text := range []string{"a", "b", "c"} {
		if _, err := s.Parse(ctx, text); err != nil {
			t.Fatal(err)
		}
	}
	for _, text := range []string{"a", "b", "c"} {
		if got := calls(text); got != 1 {
			t.Errorf("parse(%q) called %d times, want 1", text, got)
		}
	}
	if st := s.Stats(); st.CacheEntries != 3 {
		t.Errorf("CacheEntries = %d, want 3", st.CacheEntries)
	}
}

func TestEvictionOrderLRU(t *testing.T) {
	fn, calls := countingParse()
	// One shard so the LRU order is global and deterministic.
	s := NewFunc(fn, Options{Workers: 1, Shards: 1, CacheCapacity: 3})
	defer s.Close()
	ctx := context.Background()

	for _, text := range []string{"a", "b", "c"} {
		if _, err := s.Parse(ctx, text); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a": recency order is now a, c, b (b least recent).
	if _, err := s.Parse(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// "d" evicts exactly one entry — the LRU, which must be "b".
	if _, err := s.Parse(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 3 {
		t.Fatalf("CacheEntries = %d, want 3", st.CacheEntries)
	}
	for _, text := range []string{"a", "c", "d"} {
		if _, err := s.Parse(ctx, text); err != nil {
			t.Fatal(err)
		}
		if got := calls(text); got != 1 {
			t.Errorf("%q re-parsed (%d calls): evicted out of LRU order", text, got)
		}
	}
	if _, err := s.Parse(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if got := calls("b"); got != 2 {
		t.Errorf("parse(\"b\") called %d times, want 2 (evicted as LRU)", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 1, CacheCapacity: -1})
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Parse(ctx, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls("x"); got != 3 {
		t.Errorf("parse called %d times with cache disabled, want 3", got)
	}
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Errorf("CacheEntries = %d with cache disabled, want 0", st.CacheEntries)
	}
}

func TestCoalescing(t *testing.T) {
	const waiters = 32
	release := make(chan struct{})
	var mu sync.Mutex
	callCount := 0
	s := NewFunc(func(text string) *core.ParsedRecord {
		mu.Lock()
		callCount++
		mu.Unlock()
		<-release
		return &core.ParsedRecord{DomainName: text}
	}, Options{Workers: 4})
	defer s.Close()

	var wg sync.WaitGroup
	results := make([]*core.ParsedRecord, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Parse(context.Background(), "hot record")
		}(i)
	}
	// All requests are in (one miss in flight, the rest coalesced).
	waitFor(t, "coalesced waiters", func() bool {
		st := s.Stats()
		return st.Misses == 1 && st.Coalesced == waiters-1
	})
	close(release)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different record pointer", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if callCount != 1 {
		t.Errorf("parse executed %d times for %d concurrent identical requests, want 1",
			callCount, waiters)
	}
}

func TestLoadShedAtQueueCapacity(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := NewFunc(func(text string) *core.ParsedRecord {
		started <- struct{}{}
		<-release
		return &core.ParsedRecord{DomainName: text}
	}, Options{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// Occupy the single worker.
	go s.Parse(context.Background(), "busy")
	<-started
	// Fill the single queue slot.
	go s.Parse(context.Background(), "queued")
	waitFor(t, "queued job", func() bool { return s.Stats().Queued == 1 })

	// The next distinct request must shed, fast and synchronously.
	if _, err := s.Parse(context.Background(), "shed me"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Parse at capacity: err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	// Coalescing onto the queued key must still work while saturated.
	done := make(chan error, 1)
	go func() {
		_, err := s.Parse(context.Background(), "queued")
		done <- err
	}()
	waitFor(t, "coalesce under load", func() bool { return s.Stats().Coalesced == 1 })

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("coalesced waiter: %v", err)
	}
}

func TestParseWaitBlocksInsteadOfShedding(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := NewFunc(func(text string) *core.ParsedRecord {
		started <- struct{}{}
		<-release
		return &core.ParsedRecord{DomainName: text}
	}, Options{Workers: 1, QueueDepth: 1})
	defer s.Close()

	go s.ParseWait(context.Background(), "busy")
	<-started
	go s.ParseWait(context.Background(), "queued")
	waitFor(t, "queued job", func() bool { return s.Stats().Queued == 1 })

	got := make(chan error, 1)
	go func() {
		_, err := s.ParseWait(context.Background(), "backpressured")
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("ParseWait returned early with %v, want blocking backpressure", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("ParseWait after release: %v", err)
	}
	if st := s.Stats(); st.Shed != 0 {
		t.Errorf("Shed = %d under ParseWait, want 0", st.Shed)
	}
}

func TestDrainOnClose(t *testing.T) {
	fn, calls := countingParse()
	slow := func(text string) *core.ParsedRecord {
		time.Sleep(2 * time.Millisecond)
		return fn(text)
	}
	s := NewFunc(slow, Options{Workers: 2, QueueDepth: 64})

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.ParseWait(context.Background(), fmt.Sprintf("rec %d", i))
		}(i)
	}
	// Wait until everything is admitted, then drain.
	waitFor(t, "all admitted", func() bool {
		st := s.Stats()
		return st.Misses == n
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d failed across Close: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if got := calls(fmt.Sprintf("rec %d", i)); got != 1 {
			t.Errorf("rec %d parsed %d times, want 1", i, got)
		}
	}
	// After drain, admission fails fast.
	if _, err := s.Parse(context.Background(), "late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Parse after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.ParseWait(context.Background(), "late"); !errors.Is(err, ErrClosed) {
		t.Errorf("ParseWait after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestParseBatchAlignmentAndDedup(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 2, QueueDepth: 4})
	defer s.Close()

	texts := []string{"a", "b", "a", "c", "b", "a"}
	out, err := s.ParseBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(texts) {
		t.Fatalf("got %d results for %d texts", len(out), len(texts))
	}
	for i, rec := range out {
		if rec == nil || rec.DomainName != texts[i] {
			t.Errorf("out[%d] = %+v, want record for %q", i, rec, texts[i])
		}
	}
	for _, text := range []string{"a", "b", "c"} {
		if got := calls(text); got != 1 {
			t.Errorf("%q parsed %d times in batch, want 1 (dedup via coalescing)", text, got)
		}
	}
}

func TestContextCancelAbandonsWaitNotParse(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	fn, calls := countingParse()
	s := NewFunc(func(text string) *core.ParsedRecord {
		started <- struct{}{}
		<-release
		return fn(text)
	}, Options{Workers: 1})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Parse(ctx, "slow")
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	// The parse itself keeps running and lands in the cache.
	close(release)
	rec, err := s.Parse(context.Background(), "slow")
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.DomainName != "slow" {
		t.Fatalf("post-cancel Parse = %+v", rec)
	}
	if got := calls("slow"); got != 1 {
		t.Errorf("parse executed %d times, want 1 (cancel must not re-trigger)", got)
	}
}

func TestStatsLatencyQuantiles(t *testing.T) {
	s := NewFunc(func(text string) *core.ParsedRecord {
		time.Sleep(time.Millisecond)
		return &core.ParsedRecord{DomainName: text}
	}, Options{Workers: 2})
	defer s.Close()
	for i := 0; i < 12; i++ {
		if _, err := s.Parse(context.Background(), fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// The histogram covers every parse since start — no window, and in
	// particular no zero-valued pre-wrap slots dragging quantiles down
	// (the bug class the old ring buffer invited).
	if st.LatencySamples != 12 {
		t.Errorf("LatencySamples = %d, want all 12 parses", st.LatencySamples)
	}
	if st.ParseP50 < time.Millisecond || st.ParseP99 < st.ParseP50 {
		t.Errorf("implausible quantiles: p50=%s p99=%s (parses sleep 1ms)", st.ParseP50, st.ParseP99)
	}
	if st.Parsed != 12 {
		t.Errorf("Parsed = %d, want 12", st.Parsed)
	}
}

// TestMetricsExposed asserts the serve.* metrics land in the registry
// the server was built with — the contract /debug/vars depends on.
func TestMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	fn, _ := countingParse()
	s := NewFunc(fn, Options{Workers: 2, Metrics: reg})
	defer s.Close()
	if s.Metrics() != reg {
		t.Fatal("Metrics() did not return the injected registry")
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Parse(context.Background(), "same"); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["serve.cache.hits"] != uint64(3) {
		t.Errorf("serve.cache.hits = %v, want 3", snap["serve.cache.hits"])
	}
	if snap["serve.cache.misses"] != uint64(1) {
		t.Errorf("serve.cache.misses = %v, want 1", snap["serve.cache.misses"])
	}
	if got := reg.Histogram("serve.parse.seconds", nil).Count(); got != 1 {
		t.Errorf("serve.parse.seconds count = %d, want 1", got)
	}
	if got := snap["serve.cache.entries"]; got != float64(1) {
		t.Errorf("serve.cache.entries = %v, want 1", got)
	}
}

// TestConcurrentMixedLoad hammers the full surface under the race
// detector: hits, misses, coalescing, eviction and shedding all at once.
func TestConcurrentMixedLoad(t *testing.T) {
	fn, _ := countingParse()
	s := NewFunc(fn, Options{Workers: 4, QueueDepth: 8, CacheCapacity: 16, Shards: 4})
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				text := fmt.Sprintf("rec %d", (g*7+i)%32)
				if _, err := s.Parse(context.Background(), text); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("leaked work after quiesce: %+v", st)
	}
	if st.CacheEntries > 16 {
		t.Errorf("cache over capacity: %d > 16", st.CacheEntries)
	}
}

func TestPreloadWarmStart(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 2})
	defer s.Close()

	warm := &core.ParsedRecord{DomainName: "warm.com"}
	s.Preload("warm record text", warm)
	s.Preload("nil is a no-op", nil)

	got, err := s.Parse(context.Background(), "warm record text")
	if err != nil {
		t.Fatal(err)
	}
	if got != warm {
		t.Error("preloaded record not served from cache")
	}
	if n := calls("warm record text"); n != 0 {
		t.Errorf("parse ran %d times for a preloaded text, want 0", n)
	}
	st := s.Stats()
	if st.Preloads != 1 {
		t.Errorf("Preloads = %d, want 1 (nil preload must not count)", st.Preloads)
	}
	if st.Hits != 1 {
		t.Errorf("Hits = %d, want 1", st.Hits)
	}
	snap := s.Metrics().Snapshot()
	if got := snap["serve.cache.preloads"].(uint64); got != 1 {
		t.Errorf("serve.cache.preloads = %v, want 1", got)
	}
}

func TestPreloadDisabledCacheNoop(t *testing.T) {
	fn, _ := countingParse()
	s := NewFunc(fn, Options{Workers: 1, CacheCapacity: -1})
	defer s.Close()
	s.Preload("text", &core.ParsedRecord{DomainName: "x"})
	if st := s.Stats(); st.Preloads != 0 || st.CacheEntries != 0 {
		t.Errorf("disabled cache accepted a preload: %+v", st)
	}
}

// TestInvalidateAllForcesReparse is the staleness guarantee behind model
// hot swaps: after a generation bump, a request for a previously-cached
// (or preloaded) text must re-parse rather than return the old entry.
func TestInvalidateAllForcesReparse(t *testing.T) {
	fn, calls := countingParse()
	s := NewFunc(fn, Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Parse(ctx, "record a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Parse(ctx, "record a"); err != nil {
		t.Fatal(err)
	}
	if n := calls("record a"); n != 1 {
		t.Fatalf("pre-invalidate parses = %d, want 1 (second request must hit)", n)
	}
	// Preload simulates the store warm-start path; it must be versioned
	// under the same generation scheme.
	s.Preload("warm text", &core.ParsedRecord{DomainName: "warm"})

	gen := s.Generation()
	s.InvalidateAll()
	if got := s.Generation(); got != gen+1 {
		t.Fatalf("Generation after InvalidateAll = %d, want %d", got, gen+1)
	}

	if _, err := s.Parse(ctx, "record a"); err != nil {
		t.Fatal(err)
	}
	if n := calls("record a"); n != 2 {
		t.Errorf("post-invalidate parses = %d, want 2 (stale entry served)", n)
	}
	if _, err := s.Parse(ctx, "warm text"); err != nil {
		t.Fatal(err)
	}
	if n := calls("warm text"); n != 1 {
		t.Errorf("preloaded text parsed %d times after invalidate, want 1", n)
	}
	if st := s.Stats(); st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", st.Invalidations)
	}
}

// TestSetParseFuncSwapsModelAndCache exercises the hot-swap contract:
// the new function serves post-swap requests, and entries cached under
// the old function are never returned afterwards.
func TestSetParseFuncSwapsModelAndCache(t *testing.T) {
	mk := func(version string) ParseFunc {
		return func(text string) *core.ParsedRecord {
			return &core.ParsedRecord{DomainName: text, ModelVersion: version}
		}
	}
	s := NewFunc(mk("v1"), Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	r, err := s.Parse(ctx, "record a")
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelVersion != "v1" {
		t.Fatalf("pre-swap version = %q, want v1", r.ModelVersion)
	}

	s.SetParseFunc(mk("v2"))
	r, err = s.Parse(ctx, "record a")
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelVersion != "v2" {
		t.Errorf("post-swap version = %q, want v2 (stale v1 entry served)", r.ModelVersion)
	}
}
