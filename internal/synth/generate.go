package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/identity"
	"repro/internal/labels"
	"repro/internal/templates"
)

// Config controls corpus generation.
type Config struct {
	// N is the number of domains to generate.
	N int
	// Seed makes generation reproducible.
	Seed int64
	// FirstYear and LastYear bound creation dates (default 1985–2014,
	// matching the paper's "created through the end of 2014" cut).
	FirstYear, LastYear int
	// DriftFraction renders this fraction of records with a drifted
	// variant of their registrar's schema (format evolution, §2.3).
	DriftFraction float64
	// BrandFraction assigns this fraction of eligible domains to the
	// brand/seller organizations of Table 4 (default 0 = disabled; the
	// survey experiments enable it).
	BrandFraction float64
}

// Domain is one generated registration with its ground truth.
type Domain struct {
	Reg       templates.Registration
	Registrar *RegistrarInfo
	Schema    *templates.Schema
	// Drifted reports that Schema is a drifted variant of the registrar's
	// registered schema.
	Drifted bool
	// Blacklisted marks DBL membership (Tables 8–9).
	Blacklisted bool
	// BrandOrg is non-empty when the domain belongs to a Table 4 brand or
	// a §6.1 seller organization.
	BrandOrg string
}

// Render produces the WHOIS text and ground-truth labels for the domain.
func (d *Domain) Render() templates.Rendered { return d.Schema.Render(&d.Reg) }

// Labeled converts the domain to a labels.LabeledRecord.
func (d *Domain) Labeled() *labels.LabeledRecord {
	r := d.Render()
	return &labels.LabeledRecord{
		Domain:    d.Reg.Domain,
		TLD:       d.Reg.TLD,
		Registrar: d.Reg.RegistrarName,
		Text:      r.Text,
		Lines:     r.Lines,
	}
}

var domainWords = []string{
	"alpha", "bravo", "cedar", "delta", "ember", "falcon", "garden",
	"harbor", "island", "jumbo", "karma", "lumen", "mango", "nimbus",
	"ocean", "prism", "quartz", "river", "summit", "tiger", "umbra",
	"velvet", "willow", "xenon", "yonder", "zephyr", "bright", "cloud",
	"digital", "express", "forward", "global", "host", "idea", "jet",
	"kinetic", "logic", "metro", "nova", "orbit", "pixel", "quick",
	"rapid", "shop", "trade", "ultra", "vision", "web", "zone", "store",
	"media", "tech", "data", "smart", "prime", "blue", "green", "red",
}

// Generator produces synthetic domains deterministically.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	idg    *identity.Generator
	years  []int
	yearW  []float64
	seen   map[string]bool
	brandW float64
	selW   float64
}

// NewGenerator builds a generator with the given configuration.
func NewGenerator(cfg Config) *Generator {
	if cfg.FirstYear == 0 {
		cfg.FirstYear = 1985
	}
	if cfg.LastYear == 0 {
		cfg.LastYear = 2014
	}
	g := &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		idg:  identity.NewGenerator(cfg.Seed ^ 0x5eed),
		seen: make(map[string]bool),
	}
	// Figure 4a: registrations grow roughly exponentially with time.
	for y := cfg.FirstYear; y <= cfg.LastYear; y++ {
		g.years = append(g.years, y)
		g.yearW = append(g.yearW, math.Exp(0.22*float64(y-1985)))
	}
	for _, b := range brandCompanies {
		g.brandW += b.weight
	}
	for _, s := range sellerOrgs {
		g.selW += s.weight
	}
	return g
}

func sampleWeighted(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func (g *Generator) sampleYear() int {
	return g.years[sampleWeighted(g.rng, g.yearW)]
}

func (g *Generator) sampleCountry(year int) string {
	table := countriesAllTime
	if year >= 2014 {
		table = countries2014
	}
	weights := make([]float64, len(table))
	for i, cw := range table {
		weights[i] = cw.weight
	}
	return table[sampleWeighted(g.rng, weights)].code
}

func (g *Generator) sampleRegistrar(year int, country string) *RegistrarInfo {
	weights := make([]float64, len(registrarPool))
	for i, r := range registrarPool {
		w := r.ShareAll
		if year >= 2014 {
			w = r.Share2014
		}
		if r.CountryAffinity != nil {
			if f, ok := r.CountryAffinity[country]; ok {
				w *= f
			}
		}
		weights[i] = w
	}
	return registrarPool[sampleWeighted(g.rng, weights)]
}

// privacyYearScale ramps privacy adoption up over time so the privacy
// share of new registrations passes 20% in 2014 (Figure 4b).
func privacyYearScale(year int) float64 {
	switch {
	case year < 2000:
		return 0.05
	case year >= 2014:
		return 1.3
	default:
		return 0.05 + 1.25*float64(year-2000)/14
	}
}

func (g *Generator) domainName() string {
	for {
		var name string
		switch g.rng.Intn(4) {
		case 0:
			name = domainWords[g.rng.Intn(len(domainWords))] + domainWords[g.rng.Intn(len(domainWords))]
		case 1:
			name = domainWords[g.rng.Intn(len(domainWords))] + "-" + domainWords[g.rng.Intn(len(domainWords))]
		case 2:
			name = fmt.Sprintf("%s%d", domainWords[g.rng.Intn(len(domainWords))], g.rng.Intn(1000))
		default:
			name = domainWords[g.rng.Intn(len(domainWords))] + domainWords[g.rng.Intn(len(domainWords))] + domainWords[g.rng.Intn(len(domainWords))]
		}
		if !g.seen[name] {
			g.seen[name] = true
			return name
		}
		// Collision: extend with a numeric suffix and retry.
		name = fmt.Sprintf("%s%d", name, g.rng.Intn(100000))
		if !g.seen[name] {
			g.seen[name] = true
			return name
		}
	}
}

func (g *Generator) randomDate(year int) time.Time {
	day := 1 + g.rng.Intn(365)
	return time.Date(year, 1, 1, g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60), 0, time.UTC).AddDate(0, 0, day-1)
}

var statusPool = []string{
	"clientTransferProhibited", "clientDeleteProhibited",
	"clientUpdateProhibited", "clientRenewProhibited", "ok",
}

// privacyIdentity builds the placeholder contact a protection service
// publishes instead of the real registrant.
func (g *Generator) privacyIdentity(service string, reg *RegistrarInfo) identity.Person {
	country := "US"
	switch {
	case strings.Contains(service, "Aliyun"):
		country = "CN"
	case strings.Contains(service, "MuuMuu"), strings.Contains(service, "onamae"):
		country = "JP"
	}
	c := identity.CountryByCode(country)
	host := strings.TrimPrefix(reg.URL, "http://www.")
	return identity.Person{
		Name:        service,
		Org:         service,
		Street:      fmt.Sprintf("%d Privacy Plaza", 100+g.rng.Intn(9000)),
		City:        c.Cities[g.rng.Intn(len(c.Cities))],
		State:       stateOf(c, g.rng),
		Postcode:    identity.Postcode(g.rng, c.PostcodeFmt),
		CountryCode: c.Code,
		CountryName: c.Name,
		Phone:       identity.Phone(g.rng, c.DialCode),
		Email:       fmt.Sprintf("proxy%07d@privacy.%s", g.rng.Intn(10000000), host),
	}
}

func stateOf(c *identity.Country, rng *rand.Rand) string {
	if len(c.States) == 0 {
		return ""
	}
	return c.States[rng.Intn(len(c.States))]
}

// One generates a single domain.
func (g *Generator) One() *Domain {
	year := g.sampleYear()
	country := g.sampleCountry(year)
	reg := g.sampleRegistrar(year, country)
	d := &Domain{Registrar: reg}

	name := g.domainName()
	created := g.randomDate(year)
	updated := created.AddDate(0, g.rng.Intn(18), g.rng.Intn(28))
	expires := created.AddDate(1+g.rng.Intn(5), 0, 0)
	for !expires.After(time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)) {
		expires = expires.AddDate(1, 0, 0)
	}

	privacy := g.rng.Float64() < reg.PrivacyRate*privacyYearScale(year) && reg.PrivacyService != ""

	var person identity.Person
	if privacy {
		person = g.privacyIdentity(reg.PrivacyService, reg)
	} else {
		hasOrg := g.rng.Float64() < 0.55
		if country == "" {
			person = g.idg.Person("US", hasOrg)
			person.CountryCode, person.CountryName = "", ""
		} else {
			person = g.idg.Person(country, hasOrg)
		}
		// Brand/seller portfolios (Table 4, §6.1): US, non-privacy only.
		if g.cfg.BrandFraction > 0 && country == "US" && g.rng.Float64() < g.cfg.BrandFraction {
			if g.rng.Float64() < g.brandW/(g.brandW+g.selW) {
				b := brandCompanies[sampleBrand(g.rng, brandCompanies)]
				person.Org = b.name
				d.BrandOrg = b.name
				// Brands register defensively through corporate registrars.
				if g.rng.Float64() < 0.7 {
					reg = corporateRegistrar(g.rng)
					d.Registrar = reg
					privacy = false
				}
			} else {
				s := sellerOrgs[sampleBrand(g.rng, sellerOrgs)]
				person.Org = s.name
				d.BrandOrg = s.name
			}
		}
	}

	admin := person
	tech := person
	if !privacy && g.rng.Float64() < 0.5 {
		admin = g.idg.Person(orDefault(country, "US"), false)
	}
	if !privacy && g.rng.Float64() < 0.5 {
		tech = g.idg.Person(orDefault(country, "US"), false)
	}

	nsHost := strings.TrimPrefix(reg.URL, "http://www.")
	if g.rng.Intn(3) == 0 {
		nsHost = name + ".com"
	}
	statuses := []string{statusPool[g.rng.Intn(2)]}
	if g.rng.Intn(3) == 0 {
		statuses = append(statuses, statusPool[2+g.rng.Intn(3)])
	}

	d.Reg = templates.Registration{
		Domain:        name + ".com",
		TLD:           "com",
		RegistrarName: reg.Name,
		RegistrarIANA: reg.IANA,
		RegistrarURL:  reg.URL,
		WhoisServer:   reg.WhoisServer,
		Created:       created,
		Updated:       updated,
		Expires:       expires,
		Registrant:    person,
		Admin:         admin,
		Tech:          tech,
		NameServers:   []string{"ns1." + nsHost, "ns2." + nsHost},
		Statuses:      statuses,
		Privacy:       privacy,
	}
	if privacy {
		d.Reg.PrivacyService = reg.PrivacyService
	}

	schema := templates.ByID(reg.SchemaID)
	if schema == nil {
		panic("synth: registrar " + reg.Name + " references unknown schema " + reg.SchemaID)
	}
	if g.cfg.DriftFraction > 0 && g.rng.Float64() < g.cfg.DriftFraction {
		schema = templates.Drift(schema, templates.DriftKind(g.rng.Intn(3)))
		d.Drifted = true
	}
	d.Schema = schema

	// DBL membership (Tables 8–9): 2014 domains, skewed by country and
	// registrar.
	if year >= 2014 {
		base := 0.004
		cf := blacklistCountryFactor[person.CountryCode]
		if cf == 0 {
			cf = 0.5
		}
		p := base * cf * reg.BlacklistFactor
		if privacy {
			p = base * reg.BlacklistFactor // country hidden; registrar skew only
		}
		if p > 0.5 {
			p = 0.5
		}
		d.Blacklisted = g.rng.Float64() < p
	}
	return d
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func sampleBrand(rng *rand.Rand, pool []brandCompany) int {
	weights := make([]float64, len(pool))
	for i, b := range pool {
		weights[i] = b.weight
	}
	return sampleWeighted(rng, weights)
}

func corporateRegistrar(rng *rand.Rand) *RegistrarInfo {
	var corp []*RegistrarInfo
	for _, r := range registrarPool {
		if strings.Contains(r.Name, "MarkMonitor") || strings.Contains(r.Name, "CSC") {
			corp = append(corp, r)
		}
	}
	return corp[rng.Intn(len(corp))]
}

// Generate produces cfg.N domains.
func Generate(cfg Config) []*Domain {
	g := NewGenerator(cfg)
	out := make([]*Domain, cfg.N)
	for i := range out {
		out[i] = g.One()
	}
	return out
}

// GenerateLabeled is Generate followed by Labeled on each domain.
func GenerateLabeled(cfg Config) []*labels.LabeledRecord {
	domains := Generate(cfg)
	out := make([]*labels.LabeledRecord, len(domains))
	for i, d := range domains {
		out[i] = d.Labeled()
	}
	return out
}

// GenerateNewTLD produces n records in one of the Table 2 new TLDs. Every
// record follows the TLD's single consistent template.
func GenerateNewTLD(tld string, n int, seed int64) []*Domain {
	schema := templates.NewTLDSchema(tld)
	if schema == nil {
		panic("synth: unknown new TLD " + tld)
	}
	reg := NewTLDRegistrar(tld)
	g := NewGenerator(Config{N: n, Seed: seed, FirstYear: 2005, LastYear: 2014})
	out := make([]*Domain, n)
	for i := range out {
		d := g.One()
		base := strings.TrimSuffix(d.Reg.Domain, ".com")
		d.Reg.Domain = base + "." + tld
		d.Reg.TLD = tld
		d.Reg.RegistrarName = reg.Name
		d.Reg.RegistrarIANA = reg.IANA
		d.Reg.RegistrarURL = reg.URL
		d.Reg.WhoisServer = reg.WhoisServer
		d.Registrar = reg
		d.Schema = schema
		d.Drifted = false
		d.Blacklisted = false
		out[i] = d
	}
	return out
}

// NewTLDs lists the Table 2 TLDs in the paper's order.
func NewTLDs() []string {
	return []string{"aero", "asia", "biz", "coop", "info", "mobi", "name", "org", "pro", "travel", "us", "xxx"}
}
