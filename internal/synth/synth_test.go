package synth

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 50, Seed: 9})
	b := Generate(Config{N: 50, Seed: 9})
	for i := range a {
		if a[i].Reg.Domain != b[i].Reg.Domain || a[i].Reg.RegistrarName != b[i].Reg.RegistrarName {
			t.Fatalf("domain %d differs between runs", i)
		}
		if a[i].Render().Text != b[i].Render().Text {
			t.Fatalf("rendered text %d differs between runs", i)
		}
	}
}

func TestGenerateUniqueDomains(t *testing.T) {
	domains := Generate(Config{N: 2000, Seed: 10})
	seen := make(map[string]bool)
	for _, d := range domains {
		if seen[d.Reg.Domain] {
			t.Fatalf("duplicate domain %s", d.Reg.Domain)
		}
		seen[d.Reg.Domain] = true
		if !strings.HasSuffix(d.Reg.Domain, ".com") {
			t.Fatalf("non-com domain %s", d.Reg.Domain)
		}
	}
}

// TestLabeledAlignment is the generator-wide version of the core
// invariant: labels always align with the tokenizer's retained lines.
func TestLabeledAlignment(t *testing.T) {
	domains := Generate(Config{N: 1000, Seed: 11, DriftFraction: 0.2, BrandFraction: 0.05})
	for _, d := range domains {
		rec := d.Labeled()
		if err := rec.Validate(); err != nil {
			t.Fatalf("%s: %v", rec.Domain, err)
		}
		lines := tokenize.Tokenize(rec.Text, tokenize.Options{})
		if len(lines) != len(rec.Lines) {
			t.Fatalf("%s (schema %s): %d lines vs %d labels",
				rec.Domain, d.Schema.ID, len(lines), len(rec.Lines))
		}
	}
}

func TestLabeledAlignmentProperty(t *testing.T) {
	f := func(seed int64, drift bool) bool {
		cfg := Config{N: 30, Seed: seed}
		if drift {
			cfg.DriftFraction = 0.5
		}
		for _, d := range Generate(cfg) {
			rec := d.Labeled()
			if len(tokenize.Tokenize(rec.Text, tokenize.Options{})) != len(rec.Lines) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCreationYearRange(t *testing.T) {
	for _, d := range Generate(Config{N: 500, Seed: 12}) {
		y := d.Reg.Created.Year()
		if y < 1985 || y > 2014 {
			t.Fatalf("creation year %d out of range", y)
		}
		if !d.Reg.Expires.After(d.Reg.Created) {
			t.Fatalf("expiry %v not after creation %v", d.Reg.Expires, d.Reg.Created)
		}
		if d.Reg.Updated.Before(d.Reg.Created) {
			t.Fatalf("update %v before creation %v", d.Reg.Updated, d.Reg.Created)
		}
	}
}

func TestCreationYearsGrow(t *testing.T) {
	// Figure 4a: later years hold more registrations.
	counts := make(map[int]int)
	for _, d := range Generate(Config{N: 20000, Seed: 13}) {
		counts[d.Reg.Created.Year()]++
	}
	if counts[2014] <= counts[2000] {
		t.Errorf("2014 (%d) should far exceed 2000 (%d)", counts[2014], counts[2000])
	}
	if counts[2014] <= counts[2010] {
		t.Errorf("2014 (%d) should exceed 2010 (%d)", counts[2014], counts[2010])
	}
}

func TestRegistrarSharesRoughlyMatchTable5(t *testing.T) {
	domains := Generate(Config{N: 20000, Seed: 14})
	counts := make(map[string]int)
	for _, d := range domains {
		counts[d.Reg.RegistrarName]++
	}
	goDaddy := float64(counts["GoDaddy.com, LLC"]) / float64(len(domains))
	if goDaddy < 0.25 || goDaddy > 0.50 {
		t.Errorf("GoDaddy share %.3f, want roughly a third (Table 5: 34%%)", goDaddy)
	}
	if counts["GoDaddy.com, LLC"] <= counts["eNom, Inc."] {
		t.Error("GoDaddy should dominate eNom")
	}
}

func TestPrivacyRateNearPaper(t *testing.T) {
	domains := Generate(Config{N: 20000, Seed: 15})
	privacy := 0
	for _, d := range domains {
		if d.Reg.Privacy {
			privacy++
			if d.Reg.PrivacyService == "" {
				t.Fatal("privacy domain without service name")
			}
		}
	}
	rate := float64(privacy) / float64(len(domains))
	if rate < 0.10 || rate > 0.32 {
		t.Errorf("privacy rate %.3f, paper reports ~20%%", rate)
	}
}

func TestPrivacyIdentityMasksRegistrant(t *testing.T) {
	for _, d := range Generate(Config{N: 3000, Seed: 16}) {
		if d.Reg.Privacy {
			if !strings.Contains(d.Reg.Registrant.Name, d.Reg.PrivacyService) &&
				d.Reg.Registrant.Name != d.Reg.PrivacyService {
				t.Fatalf("privacy record exposes name %q (service %q)",
					d.Reg.Registrant.Name, d.Reg.PrivacyService)
			}
		}
	}
}

func TestBlacklistOnly2014(t *testing.T) {
	for _, d := range Generate(Config{N: 5000, Seed: 17}) {
		if d.Blacklisted && d.Reg.Created.Year() < 2014 {
			t.Fatalf("blacklisted domain created %d", d.Reg.Created.Year())
		}
	}
}

func TestBlacklistSkew(t *testing.T) {
	// Table 8/9: GMO (Japan) is over-represented on the DBL.
	domains := Generate(Config{N: 60000, Seed: 18})
	bl := make(map[string]int)
	tot := make(map[string]int)
	for _, d := range domains {
		if d.Reg.Created.Year() != 2014 {
			continue
		}
		tot[d.Reg.RegistrarName]++
		if d.Blacklisted {
			bl[d.Reg.RegistrarName]++
		}
	}
	gmoRate := float64(bl["GMO Internet, Inc. d/b/a Onamae.com"]) / float64(tot["GMO Internet, Inc. d/b/a Onamae.com"]+1)
	gdRate := float64(bl["GoDaddy.com, LLC"]) / float64(tot["GoDaddy.com, LLC"]+1)
	if gmoRate <= gdRate {
		t.Errorf("GMO blacklist rate (%.4f) should exceed GoDaddy's (%.4f)", gmoRate, gdRate)
	}
}

func TestBrandFraction(t *testing.T) {
	domains := Generate(Config{N: 20000, Seed: 19, BrandFraction: 0.05})
	brands := 0
	for _, d := range domains {
		if d.BrandOrg != "" {
			brands++
			if d.Reg.Registrant.Org != d.BrandOrg {
				t.Fatalf("brand org not reflected in registrant: %q vs %q",
					d.Reg.Registrant.Org, d.BrandOrg)
			}
		}
	}
	if brands == 0 {
		t.Fatal("no brand domains generated")
	}
	// Amazon should lead the brand counts (Table 4).
	counts := make(map[string]int)
	for _, d := range domains {
		if d.BrandOrg != "" {
			counts[d.BrandOrg]++
		}
	}
	if counts["Amazon Technologies, Inc."] == 0 {
		t.Error("Amazon absent from brand domains")
	}
}

func TestCountryMixShifts2014(t *testing.T) {
	domains := Generate(Config{N: 60000, Seed: 20})
	var cnAll, allN, cn2014, n2014 int
	for _, d := range domains {
		if d.Reg.Privacy {
			continue
		}
		cc := d.Reg.Registrant.CountryCode
		allN++
		if cc == "CN" {
			cnAll++
		}
		if d.Reg.Created.Year() == 2014 {
			n2014++
			if cc == "CN" {
				cn2014++
			}
		}
	}
	rateAll := float64(cnAll) / float64(allN)
	rate2014 := float64(cn2014) / float64(n2014)
	if rate2014 <= rateAll {
		t.Errorf("China share should grow in 2014: %.3f vs %.3f (Table 3)", rate2014, rateAll)
	}
}

func TestGenerateNewTLD(t *testing.T) {
	for _, tld := range NewTLDs() {
		ds := GenerateNewTLD(tld, 3, 99)
		if len(ds) != 3 {
			t.Fatalf("%s: got %d domains", tld, len(ds))
		}
		for _, d := range ds {
			if !strings.HasSuffix(d.Reg.Domain, "."+tld) {
				t.Errorf("%s: domain %s has wrong suffix", tld, d.Reg.Domain)
			}
			if d.Schema.TLD != tld {
				t.Errorf("%s: schema %s", tld, d.Schema.ID)
			}
			rec := d.Labeled()
			if len(tokenize.Tokenize(rec.Text, tokenize.Options{})) != len(rec.Lines) {
				t.Errorf("%s: label misalignment", tld)
			}
		}
	}
}

func TestRegistrarSchemaReferencesValid(t *testing.T) {
	for _, r := range Registrars() {
		if r.SchemaID == "" {
			t.Errorf("registrar %s has no schema", r.Name)
		}
	}
	// Generation would panic on an unknown schema; do a tiny run.
	Generate(Config{N: len(Registrars()) * 4, Seed: 21})
}

func TestUnknownCountryRecordsOmitCountryLine(t *testing.T) {
	domains := Generate(Config{N: 5000, Seed: 22})
	sawUnknown := false
	for _, d := range domains {
		if d.Reg.Privacy || d.Reg.Registrant.CountryCode != "" {
			continue
		}
		sawUnknown = true
		rec := d.Labeled()
		for _, ln := range rec.Lines {
			if ln.Block == labels.Registrant && ln.Field == labels.FieldCountry {
				t.Fatalf("%s: unknown-country record has a country line %q", rec.Domain, ln.Text)
			}
		}
	}
	if !sawUnknown {
		t.Error("no unknown-country registrants generated (Table 3 needs ~3%)")
	}
}
