// Package synth generates the synthetic .com (and new-TLD) registration
// corpus that stands in for the paper's 102M-record crawl. Distributional
// parameters — registrar market shares, registrant country mixes, privacy
// service shares, blacklist skew, creation-date growth — are seeded from
// the paper's own Tables 3–9 and Figure 4, so the survey experiments
// (§6) recover the paper's shapes through the full parse pipeline.
package synth

import (
	"fmt"
	"strings"

	"repro/internal/templates"
)

// RegistrarInfo describes one registrar in the simulated ecosystem.
type RegistrarInfo struct {
	Name        string
	IANA        int
	URL         string
	WhoisServer string
	// SchemaID names the templates.Schema this registrar renders with.
	SchemaID string
	// ShareAll and Share2014 are relative sampling weights for domains
	// created before 2014 and in 2014 (Table 5's two columns).
	ShareAll, Share2014 float64
	// PrivacyRate is the fraction of this registrar's domains registered
	// through a privacy-protection service (drives Tables 6 and 7).
	PrivacyRate float64
	// PrivacyService is the service name used in protected records.
	PrivacyService string
	// BlacklistFactor scales the probability that a 2014 domain of this
	// registrar lands on the DBL (Table 9 skew).
	BlacklistFactor float64
	// CountryAffinity, when non-empty, reweights registrant-country
	// selection toward this registrar (Figure 5 mixes): a domain whose
	// registrant country appears here prefers this registrar.
	CountryAffinity map[string]float64
}

// Registrars returns the simulated registrar pool. Shares follow Table 5;
// privacy rates are back-solved from Tables 5–7; blacklist factors from
// Table 9.
func Registrars() []*RegistrarInfo { return registrarPool }

var registrarPool = []*RegistrarInfo{
	{Name: "GoDaddy.com, LLC", IANA: 146, URL: "http://www.godaddy.com", WhoisServer: "whois.godaddy.com",
		SchemaID: "icann-0", ShareAll: 34.2, Share2014: 34.4, PrivacyRate: 0.18,
		PrivacyService: "Domains By Proxy, LLC", BlacklistFactor: 0.6},
	{Name: "eNom, Inc.", IANA: 48, URL: "http://www.enom.com", WhoisServer: "whois.enom.com",
		SchemaID: "dots-0", ShareAll: 8.7, Share2014: 7.7, PrivacyRate: 0.28,
		PrivacyService: "Whois Privacy Protection Service, Inc.", BlacklistFactor: 2.9,
		CountryAffinity: map[string]float64{"US": 1.0, "CA": 2.0, "GB": 2.0}},
	{Name: "Network Solutions, LLC", IANA: 2, URL: "http://www.networksolutions.com", WhoisServer: "whois.networksolutions.com",
		SchemaID: "netsol-0", ShareAll: 5.0, Share2014: 4.3, PrivacyRate: 0.10,
		PrivacyService: "Perfect Privacy, LLC", BlacklistFactor: 0.8},
	{Name: "1&1 Internet AG", IANA: 83, URL: "http://www.1and1.com", WhoisServer: "whois.1and1.com",
		SchemaID: "icann-1", ShareAll: 3.0, Share2014: 2.0, PrivacyRate: 0.17,
		PrivacyService: "1&1 Internet Inc.", BlacklistFactor: 0.5,
		CountryAffinity: map[string]float64{"DE": 4.0, "US": 0.6}},
	{Name: "Wild West Domains, LLC", IANA: 440, URL: "http://www.wildwestdomains.com", WhoisServer: "whois.wildwestdomains.com",
		SchemaID: "icann-0", ShareAll: 2.6, Share2014: 2.4, PrivacyRate: 0.22,
		PrivacyService: "Domains By Proxy, LLC", BlacklistFactor: 0.7},
	{Name: "HiChina Zhicheng Technology Ltd.", IANA: 420, URL: "http://www.net.cn", WhoisServer: "whois.hichina.com",
		SchemaID: "pct-0", ShareAll: 2.1, Share2014: 3.7, PrivacyRate: 0.36,
		PrivacyService: "Aliyun Computing Co., Ltd", BlacklistFactor: 1.4,
		CountryAffinity: map[string]float64{"CN": 9.0, "HK": 3.0, "": 4.0, "US": 0.08}},
	{Name: "PDR Ltd. d/b/a PublicDomainRegistry.com", IANA: 303, URL: "http://www.publicdomainregistry.com", WhoisServer: "whois.publicdomainregistry.com",
		SchemaID: "icann-2", ShareAll: 2.1, Share2014: 3.2, PrivacyRate: 0.27,
		PrivacyService: "PrivacyProtect.org", BlacklistFactor: 1.5,
		CountryAffinity: map[string]float64{"IN": 6.0, "TR": 2.0, "VN": 2.0}},
	{Name: "Register.com, Inc.", IANA: 9, URL: "http://www.register.com", WhoisServer: "whois.register.com",
		SchemaID: "netsol-1", ShareAll: 2.0, Share2014: 2.1, PrivacyRate: 0.30,
		PrivacyService: "Perfect Privacy, LLC", BlacklistFactor: 2.4},
	{Name: "FastDomain Inc.", IANA: 1154, URL: "http://www.fastdomain.com", WhoisServer: "whois.fastdomain.com",
		SchemaID: "icann-3", ShareAll: 1.9, Share2014: 1.5, PrivacyRate: 0.33,
		PrivacyService: "FBO REGISTRANT", BlacklistFactor: 0.7},
	{Name: "GMO Internet, Inc. d/b/a Onamae.com", IANA: 49, URL: "http://www.onamae.com", WhoisServer: "whois.discount-domain.com",
		SchemaID: "jp-0", ShareAll: 1.8, Share2014: 3.0, PrivacyRate: 0.59,
		PrivacyService: "MuuMuuDomain by GMO Pepabo", BlacklistFactor: 8.5,
		CountryAffinity: map[string]float64{"JP": 18.0, "US": 0.15}},
	{Name: "Xin Net Technology Corporation", IANA: 120, URL: "http://www.xinnet.com", WhoisServer: "whois.paycenter.com.cn",
		SchemaID: "pct-1", ShareAll: 1.2, Share2014: 3.3, PrivacyRate: 0.12,
		PrivacyService: "Hidden by Whois Privacy Protection Service", BlacklistFactor: 2.2,
		CountryAffinity: map[string]float64{"CN": 7.0, "": 2.0, "US": 0.12}},
	{Name: "NameCheap, Inc.", IANA: 1068, URL: "http://www.namecheap.com", WhoisServer: "whois.namecheap.com",
		SchemaID: "icann-4", ShareAll: 1.4, Share2014: 1.8, PrivacyRate: 0.68,
		PrivacyService: "WhoisGuard, Inc.", BlacklistFactor: 1.1},
	{Name: "Tucows Domains Inc.", IANA: 69, URL: "http://www.tucows.com", WhoisServer: "whois.tucows.com",
		SchemaID: "lower-0", ShareAll: 1.5, Share2014: 1.2, PrivacyRate: 0.20,
		PrivacyService: "Contact Privacy Inc.", BlacklistFactor: 0.8,
		CountryAffinity: map[string]float64{"CA": 3.0}},
	{Name: "Melbourne IT Ltd", IANA: 13, URL: "http://www.melbourneit.com.au", WhoisServer: "whois.melbourneit.com",
		SchemaID: "icann-5", ShareAll: 1.1, Share2014: 0.7, PrivacyRate: 0.08,
		PrivacyService: "Private Registration", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"AU": 6.0, "JP": 2.5, "US": 1.2}},
	{Name: "DreamHost, LLC", IANA: 431, URL: "http://www.dreamhost.com", WhoisServer: "whois.dreamhost.com",
		SchemaID: "lower-1", ShareAll: 0.7, Share2014: 0.8, PrivacyRate: 0.78,
		PrivacyService: "Happy DreamHost Customer", BlacklistFactor: 0.6},
	{Name: "Moniker Online Services LLC", IANA: 228, URL: "http://www.moniker.com", WhoisServer: "whois.moniker.com",
		SchemaID: "dots-1", ShareAll: 0.7, Share2014: 0.5, PrivacyRate: 0.35,
		PrivacyService: "Moniker Privacy Services", BlacklistFactor: 7.0},
	{Name: "Name.com, Inc.", IANA: 625, URL: "http://www.name.com", WhoisServer: "whois.name.com",
		SchemaID: "icann-1", ShareAll: 0.8, Share2014: 0.9, PrivacyRate: 0.30,
		PrivacyService: "Whois Agent (Name.com)", BlacklistFactor: 2.3},
	{Name: "Bizcn.com, Inc.", IANA: 471, URL: "http://www.bizcn.com", WhoisServer: "whois.bizcn.com",
		SchemaID: "pct-2", ShareAll: 0.5, Share2014: 0.9, PrivacyRate: 0.15,
		PrivacyService: "Domain Whois Protection Service", BlacklistFactor: 3.4,
		CountryAffinity: map[string]float64{"CN": 6.0, "US": 0.12}},
	{Name: "OVH SAS", IANA: 433, URL: "http://www.ovh.com", WhoisServer: "whois.ovh.com",
		SchemaID: "lower-2", ShareAll: 0.8, Share2014: 0.9, PrivacyRate: 0.25,
		PrivacyService: "OVH Private Registration", BlacklistFactor: 0.7,
		CountryAffinity: map[string]float64{"FR": 7.0, "US": 0.3}},
	{Name: "Gandi SAS", IANA: 81, URL: "http://www.gandi.net", WhoisServer: "whois.gandi.net",
		SchemaID: "lower-3", ShareAll: 0.6, Share2014: 0.6, PrivacyRate: 0.22,
		PrivacyService: "Gandi Privacy Shield", BlacklistFactor: 0.5,
		CountryAffinity: map[string]float64{"FR": 5.0, "US": 0.3}},
	{Name: "Sakura Internet Inc.", IANA: 1523, URL: "http://www.sakura.ad.jp", WhoisServer: "whois.sakura.ad.jp",
		SchemaID: "jp-1", ShareAll: 0.5, Share2014: 0.7, PrivacyRate: 0.15,
		PrivacyService: "Sakura Whois Proxy", BlacklistFactor: 1.0,
		CountryAffinity: map[string]float64{"JP": 9.0, "US": 0.15}},
	{Name: "Key-Systems GmbH", IANA: 269, URL: "http://www.key-systems.net", WhoisServer: "whois.rrpproxy.net",
		SchemaID: "icann-2", ShareAll: 0.6, Share2014: 0.6, PrivacyRate: 0.18,
		PrivacyService: "c/o whoisproxy.com", BlacklistFactor: 1.2,
		CountryAffinity: map[string]float64{"DE": 4.0, "US": 0.4}},
	{Name: "Arsys Internet S.L.", IANA: 1292, URL: "http://www.arsys.es", WhoisServer: "whois.arsys.es",
		SchemaID: "lower-0", ShareAll: 0.5, Share2014: 0.4, PrivacyRate: 0.10,
		PrivacyService: "Private Registration", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"ES": 8.0, "MX": 2.0, "US": 0.2}},
	{Name: "Webnames Curacao B.V.", IANA: 1390, URL: "http://www.webnames.nl", WhoisServer: "whois.webnames.nl",
		SchemaID: "dots-2", ShareAll: 0.4, Share2014: 0.3, PrivacyRate: 0.12,
		PrivacyService: "Private Registration", BlacklistFactor: 0.9,
		CountryAffinity: map[string]float64{"NL": 6.0, "US": 0.25}},
	{Name: "Registro do Brasil LTDA", IANA: 1511, URL: "http://www.registrobr.com", WhoisServer: "whois.registrobr.com",
		SchemaID: "lower-1", ShareAll: 0.4, Share2014: 0.4, PrivacyRate: 0.08,
		PrivacyService: "Private Registration", BlacklistFactor: 0.6,
		CountryAffinity: map[string]float64{"BR": 9.0, "US": 0.12}},
	{Name: "Mat Bao Corporation", IANA: 1586, URL: "http://www.matbao.net", WhoisServer: "whois.matbao.net",
		SchemaID: "icann-3", ShareAll: 0.2, Share2014: 0.4, PrivacyRate: 0.10,
		PrivacyService: "Private Registration", BlacklistFactor: 4.0,
		CountryAffinity: map[string]float64{"VN": 10.0, "US": 0.12}},
	{Name: "Nics Telekomunikasyon A.S.", IANA: 1454, URL: "http://www.nicproxy.com", WhoisServer: "whois.nicproxy.com",
		SchemaID: "icann-4", ShareAll: 0.3, Share2014: 0.5, PrivacyRate: 0.14,
		PrivacyService: "Whois Privacy (nicproxy)", BlacklistFactor: 2.6,
		CountryAffinity: map[string]float64{"TR": 10.0, "US": 0.15}},
	{Name: "Regional Network Information Center, JSC", IANA: 1331, URL: "http://www.nic.ru", WhoisServer: "whois.nic.ru",
		SchemaID: "lower-3", ShareAll: 0.3, Share2014: 0.4, PrivacyRate: 0.20,
		PrivacyService: "Privacy protection service - whoisproxy.ru", BlacklistFactor: 2.0,
		CountryAffinity: map[string]float64{"RU": 10.0, "US": 0.12}},
	{Name: "Interlink Co., Ltd.", IANA: 1472, URL: "http://www.interlink.or.jp", WhoisServer: "whois.interlink.or.jp",
		SchemaID: "jp-2", ShareAll: 0.2, Share2014: 0.3, PrivacyRate: 0.25,
		PrivacyService: "Whois Privacy Protection Service by onamae", BlacklistFactor: 1.8,
		CountryAffinity: map[string]float64{"JP": 8.0, "US": 0.15}},
	{Name: "MarkMonitor Inc.", IANA: 292, URL: "http://www.markmonitor.com", WhoisServer: "whois.markmonitor.com",
		SchemaID: "icann-0", ShareAll: 0.3, Share2014: 0.2, PrivacyRate: 0.0,
		PrivacyService: "", BlacklistFactor: 0.05},
	{Name: "CSC Corporate Domains, Inc.", IANA: 299, URL: "http://www.cscglobal.com", WhoisServer: "whois.corporatedomains.com",
		SchemaID: "icann-5", ShareAll: 0.3, Share2014: 0.2, PrivacyRate: 0.0,
		PrivacyService: "", BlacklistFactor: 0.05},
	{Name: "Launchpad.com Inc.", IANA: 955, URL: "http://www.launchpad.com", WhoisServer: "whois.launchpad.com",
		SchemaID: "dots-3", ShareAll: 0.5, Share2014: 0.5, PrivacyRate: 0.30,
		PrivacyService: "Private Registration", BlacklistFactor: 1.0},
	{Name: "Vitalwerks Internet Solutions LLC", IANA: 1327, URL: "http://www.noip.com", WhoisServer: "whois.noip.com",
		SchemaID: "odd-0", ShareAll: 0.3, Share2014: 0.2, PrivacyRate: 0.10,
		PrivacyService: "Private Registration", BlacklistFactor: 1.1},
	{Name: "Nordnet AB", IANA: 1617, URL: "http://www.nordnet.se", WhoisServer: "whois.nordnet.se",
		SchemaID: "odd-2", ShareAll: 0.2, Share2014: 0.2, PrivacyRate: 0.06,
		PrivacyService: "Private Registration", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"DE": 2.0, "NL": 2.0}},
	{Name: "Domain.com, LLC", IANA: 886, URL: "http://www.domain.com", WhoisServer: "whois.domain.com",
		SchemaID: "odd-1", ShareAll: 0.5, Share2014: 0.4, PrivacyRate: 0.24,
		PrivacyService: "Domain Privacy Service FBO Registrant", BlacklistFactor: 0.9},
	{Name: "Hostinger UAB", IANA: 1636, URL: "http://www.hostinger.com", WhoisServer: "whois.hostinger.com",
		SchemaID: "netsol-2", ShareAll: 0.3, Share2014: 0.5, PrivacyRate: 0.26,
		PrivacyService: "Privacy Protect LLC", BlacklistFactor: 1.6},
	{Name: "Korea Information Certificate Authority", IANA: 1489, URL: "http://www.kicassl.com", WhoisServer: "whois.kicassl.com",
		SchemaID: "netsol-3", ShareAll: 0.2, Share2014: 0.3, PrivacyRate: 0.10,
		PrivacyService: "Private Registration", BlacklistFactor: 1.3,
		CountryAffinity: map[string]float64{"KR": 10.0, "US": 0.15}},
	{Name: "Instra Corporation Pty Ltd", IANA: 1376, URL: "http://www.instra.com", WhoisServer: "whois.instra.com",
		SchemaID: "jp-0", ShareAll: 0.2, Share2014: 0.2, PrivacyRate: 0.15,
		PrivacyService: "Instra Privacy", BlacklistFactor: 0.8,
		CountryAffinity: map[string]float64{"AU": 5.0}},
	{Name: "Dotster, Inc.", IANA: 115, URL: "http://www.dotster.com", WhoisServer: "whois.dotster.com",
		SchemaID: "legacy-0", ShareAll: 0.5, Share2014: 0.3, PrivacyRate: 0.12,
		PrivacyService: "Private Registration", BlacklistFactor: 0.9},
	{Name: "Netfirms, Inc.", IANA: 581, URL: "http://www.netfirms.com", WhoisServer: "whois.netfirms.com",
		SchemaID: "legacy-1", ShareAll: 0.3, Share2014: 0.2, PrivacyRate: 0.15,
		PrivacyService: "Private Registration", BlacklistFactor: 0.7},
	{Name: "Directi Internet Solutions", IANA: 1111, URL: "http://www.directi.com", WhoisServer: "whois.directi.com",
		SchemaID: "banner-0", ShareAll: 0.4, Share2014: 0.5, PrivacyRate: 0.22,
		PrivacyService: "Privacy Protection Service India", BlacklistFactor: 1.8,
		CountryAffinity: map[string]float64{"IN": 4.0}},
	{Name: "Hover (Tucows)", IANA: 1587, URL: "http://www.hover.com", WhoisServer: "whois.hover.com",
		SchemaID: "banner-1", ShareAll: 0.2, Share2014: 0.2, PrivacyRate: 0.30,
		PrivacyService: "Contact Privacy Inc.", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"CA": 2.5}},
	{Name: "Interdomain S.A.", IANA: 1371, URL: "http://www.interdomain.es", WhoisServer: "whois.interdomain.es",
		SchemaID: "intl-es", ShareAll: 0.3, Share2014: 0.2, PrivacyRate: 0.08,
		PrivacyService: "Private Registration", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"ES": 6.0, "MX": 3.0, "US": 0.2}},
	{Name: "Nordnet France SA", IANA: 1619, URL: "http://www.nordnet.fr", WhoisServer: "whois.nordnet.fr",
		SchemaID: "intl-fr", ShareAll: 0.2, Share2014: 0.2, PrivacyRate: 0.10,
		PrivacyService: "Private Registration", BlacklistFactor: 0.4,
		CountryAffinity: map[string]float64{"FR": 6.0, "US": 0.2}},
	{Name: "AlbaNameWorks AB", IANA: 1702, URL: "http://www.albanameworks.se", WhoisServer: "whois.albanameworks.se",
		SchemaID: "noline-0", ShareAll: 0.15, Share2014: 0.1, PrivacyRate: 0.05,
		PrivacyService: "Private Registration", BlacklistFactor: 0.5,
		CountryAffinity: map[string]float64{"DE": 2.0, "NL": 2.0, "US": 0.4}},
}

// longtailNames supplies realistic reseller identities for the automatic
// long-tail registrars below.
var longtailNames = []string{
	"Dynadot LLC", "Above.com Pty Ltd", "NetEarth One Inc.", "EuroDNS S.A.",
	"Crazy Domains FZ-LLC", "WebNIC.cc", "Realtime Register B.V.",
	"Domain Bank Inc.", "Hexonet GmbH", "Marcaria.com International",
	"Papaki Ltd", "Vautron Rechenzentrum AG", "Soluciones Corporativas IP",
	"Alpine Domains Inc.", "TLD Registrar Solutions Ltd", "Hosting Ukraine LLC",
	"Beget LLC", "Openprovider B.V.", "Porkbun LLC", "Sav.com LLC",
}

// init appends one small "long-tail" registrar for every com schema the
// hand-curated pool does not reference, so the whole format pool appears
// in generated corpora — mirroring the hundreds of small resellers behind
// deft-whois's 403 com templates.
func init() {
	referenced := make(map[string]bool)
	for _, r := range registrarPool {
		referenced[r.SchemaID] = true
	}
	i := 0
	for _, s := range templates.ComSchemas() {
		if referenced[s.ID] {
			continue
		}
		name := fmt.Sprintf("Longtail Registrar %d", i+1)
		if i < len(longtailNames) {
			name = longtailNames[i]
		}
		host := strings.ToLower(strings.Fields(name)[0])
		registrarPool = append(registrarPool, &RegistrarInfo{
			Name:        name,
			IANA:        3000 + i,
			URL:         "http://www." + host + ".example",
			WhoisServer: "whois." + host + ".example",
			SchemaID:    s.ID,
			ShareAll:    0.15, Share2014: 0.15,
			PrivacyRate:     0.15,
			PrivacyService:  "Private Registration",
			BlacklistFactor: 1.0,
		})
		i++
	}
}

// NewTLDRegistrar returns the single registrar that operates records for a
// new TLD (each new TLD is owned by one registrar, §5.2).
func NewTLDRegistrar(tld string) *RegistrarInfo {
	return &RegistrarInfo{
		Name:        tld + " Registry Services",
		IANA:        9000,
		URL:         "http://www.nic." + tld,
		WhoisServer: "whois.nic." + tld,
		SchemaID:    "tld-" + tld,
		ShareAll:    1, Share2014: 1,
	}
}
