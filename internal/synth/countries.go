package synth

// Country mixes seeded from Table 3. Weights are percentages; "" denotes a
// registrant with no country information in the record ("Unknown").

type countryWeight struct {
	code   string
	weight float64
}

// countriesAllTime follows the left half of Table 3 (privacy-protected
// domains excluded there; our generator applies privacy independently).
var countriesAllTime = []countryWeight{
	{"US", 47.6}, {"CN", 9.6}, {"GB", 4.7}, {"DE", 3.5}, {"FR", 3.3},
	{"CA", 3.0}, {"ES", 2.1}, {"AU", 1.8}, {"JP", 1.7}, {"IN", 1.6},
	// "Other" (17.5%) spread across the rest of the pool.
	{"IT", 2.6}, {"NL", 2.4}, {"BR", 2.4}, {"RU", 2.2}, {"TR", 2.0},
	{"KR", 1.8}, {"MX", 1.6}, {"VN", 1.4}, {"HK", 1.1},
	// "Unknown" (3.4%): no country in the record.
	{"", 3.4},
}

// countries2014 follows the right half of Table 3: China surges, the US
// share falls, Turkey enters the top 10.
var countries2014 = []countryWeight{
	{"US", 41.1}, {"CN", 18.2}, {"GB", 3.5}, {"FR", 2.9}, {"CA", 2.5},
	{"IN", 2.5}, {"JP", 2.1}, {"DE", 1.9}, {"ES", 1.7}, {"TR", 1.7},
	// "Other" (18.9%).
	{"IT", 2.6}, {"NL", 2.3}, {"BR", 2.6}, {"RU", 2.4}, {"VN", 2.6},
	{"KR", 2.0}, {"MX", 1.7}, {"HK", 1.6}, {"AU", 1.2},
	// "Unknown" (2.9%).
	{"", 2.9},
}

// blacklistCountryFactor skews DBL membership by registrant country
// (Table 8: Japan, China and Vietnam are over-represented among spam
// domains relative to Table 3).
var blacklistCountryFactor = map[string]float64{
	"US": 1.0, "JP": 12.0, "CN": 1.9, "VN": 4.0, "CA": 0.5,
	"FR": 0.4, "IN": 0.4, "GB": 0.25, "TR": 0.9, "RU": 0.6,
	"DE": 0.2, "ES": 0.2, "AU": 0.2, "IT": 0.3, "NL": 0.3,
	"BR": 0.3, "KR": 0.4, "MX": 0.3, "HK": 0.8, "": 1.0,
}

// brandCompany models Table 4: well-known brands with large defensive
// portfolios. Weights are proportional to the paper's domain counts.
type brandCompany struct {
	name   string
	weight float64
}

var brandCompanies = []brandCompany{
	{"Amazon Technologies, Inc.", 20596},
	{"AOL Inc.", 17136},
	{"Microsoft Corporation", 16694},
	{"21st Century Fox America, Inc.", 14249},
	{"Warner Bros. Entertainment Inc.", 13674},
	{"Yahoo! Inc.", 10502},
	{"Disney Enterprises, Inc.", 10342},
	{"Google Inc.", 6612},
	{"AT&T Services, Inc.", 3931},
	{"eBay Inc.", 2570},
	{"Nike, Inc.", 2566},
}

// sellerOrgs models the domain-seller / marketer organizations §6.1 notes
// hold the very largest portfolios.
var sellerOrgs = []brandCompany{
	{"BuyDomains.com", 42000},
	{"HugeDomains.com", 39000},
	{"Domain Asset Holdings, LLC", 30000},
	{"Dex Media, Inc.", 26000},
	{"Yodle, Inc.", 21000},
	{"Sakura Internet Inc.", 19000},
	{"Xserver Inc.", 17000},
}
