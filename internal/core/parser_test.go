package core

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

// trainedParser trains once per test binary on a small corpus.
var trainedParser *Parser

func getParser(t testing.TB) *Parser {
	t.Helper()
	if trainedParser == nil {
		recs := synth.GenerateLabeled(synth.Config{N: 400, Seed: 101})
		p, stats, err := Train(recs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if stats.BlockFeatures == 0 || stats.FieldFeatures == 0 {
			t.Fatalf("degenerate feature spaces: %+v", stats)
		}
		trainedParser = p
	}
	return trainedParser
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, _, err := Train(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestTrainRejectsMisalignedRecord(t *testing.T) {
	rec := &labels.LabeledRecord{
		Domain: "x.com", TLD: "com", Registrar: "r",
		Text:  "a: 1\nb: 2",
		Lines: []labels.LabeledLine{{Text: "a: 1", Block: labels.Domain}},
	}
	if _, _, err := Train([]*labels.LabeledRecord{rec}, DefaultConfig()); err == nil {
		t.Fatal("expected alignment error")
	}
}

func TestParserAccuracyOnHeldOut(t *testing.T) {
	p := getParser(t)
	test := synth.GenerateLabeled(synth.Config{N: 300, Seed: 202})
	m, err := eval.EvalBlocks(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.LineErrorRate() > 0.02 {
		t.Errorf("line error %.4f too high for 400 training examples (paper: <2%% at 100)",
			m.LineErrorRate())
	}
}

func TestFieldAccuracyOnHeldOut(t *testing.T) {
	p := getParser(t)
	test := synth.GenerateLabeled(synth.Config{N: 300, Seed: 203})
	m, err := eval.EvalFields(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.LineErrorRate() > 0.03 {
		t.Errorf("registrant field error %.4f too high", m.LineErrorRate())
	}
}

func TestParseExtractsFields(t *testing.T) {
	p := getParser(t)
	domains := synth.Generate(synth.Config{N: 200, Seed: 204})
	var nameMiss, regMiss, regTotal, dateMiss int
	for _, d := range domains {
		text := d.Render().Text
		pr := p.Parse(text)
		if pr.Registrant.Name == "" && !d.Reg.Privacy {
			nameMiss++
		}
		// Some legacy formats (netsol family) genuinely omit the
		// registrar name from the thick record.
		if strings.Contains(text, d.Reg.RegistrarName) {
			regTotal++
			if pr.Registrar == "" {
				regMiss++
			}
		}
		if pr.CreatedDate == "" {
			dateMiss++
		}
	}
	if float64(nameMiss)/float64(len(domains)) > 0.03 {
		t.Errorf("registrant name missing in %d/%d records", nameMiss, len(domains))
	}
	if float64(regMiss)/float64(regTotal) > 0.05 {
		t.Errorf("registrar missing in %d/%d records that carry it", regMiss, regTotal)
	}
	if float64(dateMiss)/float64(len(domains)) > 0.05 {
		t.Errorf("creation date missing in %d/%d records", dateMiss, len(domains))
	}
}

func TestParseExtractionFidelity(t *testing.T) {
	p := getParser(t)
	domains := synth.Generate(synth.Config{N: 200, Seed: 205})
	var nameOK, total int
	for _, d := range domains {
		if d.Reg.Privacy {
			continue
		}
		pr := p.Parse(d.Render().Text)
		total++
		if pr.Registrant.Name == d.Reg.Registrant.Name {
			nameOK++
		}
	}
	if rate := float64(nameOK) / float64(total); rate < 0.95 {
		t.Errorf("registrant name fidelity %.3f, want >= 0.95", rate)
	}
}

func TestExtractDomainBlockMultiValues(t *testing.T) {
	mk := func(raw string) tokenize.Line {
		title, value, _ := tokenize.SplitTitleValue(raw)
		return tokenize.Line{Raw: raw, Title: title, Value: value}
	}
	pr := &ParsedRecord{
		Lines: []tokenize.Line{
			mk("Domain Name: EXAMPLE.COM"),
			mk("Domain Status: clientTransferProhibited https://icann.org/epp"),
			mk("Name Server: NS1.EXAMPLE.NET"),
			mk("Name Server: NS2.EXAMPLE.NET"),
			mk("Domain Name Servers: ns3.example.net"),
			mk("Nserver: ns4.example.net"),
			mk("Status: ok"),
			mk("DNSSEC: unsigned"),
			mk("Registrar WHOIS Server: whois.example-registrar.com"),
		},
		Blocks: []labels.Block{
			labels.Domain, labels.Domain, labels.Domain, labels.Domain,
			labels.Domain, labels.Domain, labels.Domain, labels.Domain, labels.Registrar,
		},
		Fields: make([]labels.Field, 9),
	}
	pr.ExtractFields()
	if pr.DomainName != "example.com" {
		t.Errorf("DomainName = %q", pr.DomainName)
	}
	wantNS := []string{"NS1.EXAMPLE.NET", "NS2.EXAMPLE.NET", "ns3.example.net", "ns4.example.net"}
	if strings.Join(pr.NameServers, "|") != strings.Join(wantNS, "|") {
		t.Errorf("NameServers = %v, want %v", pr.NameServers, wantNS)
	}
	wantSt := []string{"clientTransferProhibited https://icann.org/epp", "ok"}
	if strings.Join(pr.Statuses, "|") != strings.Join(wantSt, "|") {
		t.Errorf("Statuses = %v, want %v", pr.Statuses, wantSt)
	}
	// The multi-value slices must be deep-copied by Clone.
	cl := pr.Clone()
	cl.NameServers[0] = "mutated"
	cl.Statuses[0] = "mutated"
	if pr.NameServers[0] == "mutated" || pr.Statuses[0] == "mutated" {
		t.Error("mutating clone's multi-values leaked into original")
	}
}

func TestParseExtractsNameServers(t *testing.T) {
	p := getParser(t)
	domains := synth.Generate(synth.Config{N: 200, Seed: 207})
	var withNS, gotNS int
	for _, d := range domains {
		if len(d.Reg.NameServers) == 0 {
			continue
		}
		text := d.Render().Text
		// Bare (untitled) nameserver lines carry no title to key on;
		// count only records with a titled nameserver line.
		if !strings.Contains(strings.ToLower(text), "server") && !strings.Contains(text, "Nserver") {
			continue
		}
		withNS++
		if len(p.Parse(text).NameServers) > 0 {
			gotNS++
		}
	}
	if withNS == 0 {
		t.Fatal("no synthetic records with titled nameserver lines")
	}
	if rate := float64(gotNS) / float64(withNS); rate < 0.7 {
		t.Errorf("nameserver extraction rate %.3f (%d/%d), want >= 0.7", rate, gotNS, withNS)
	}
}

func TestParsedRecordClone(t *testing.T) {
	p := getParser(t)
	d := synth.Generate(synth.Config{N: 1, Seed: 206})[0]
	pr := p.Parse(d.Render().Text)
	if len(pr.Blocks) == 0 {
		t.Fatal("parse produced no blocks")
	}
	cl := pr.Clone()
	if cl == pr {
		t.Fatal("Clone returned the same pointer")
	}
	if len(cl.Lines) != len(pr.Lines) || len(cl.Blocks) != len(pr.Blocks) || len(cl.Fields) != len(pr.Fields) {
		t.Fatal("Clone changed slice lengths")
	}
	if cl.Registrant != pr.Registrant || cl.Registrar != pr.Registrar || cl.DomainName != pr.DomainName {
		t.Error("Clone changed scalar fields")
	}
	orig := pr.Blocks[0]
	cl.Blocks[0] = orig + 1
	cl.Registrar = "mutated"
	if pr.Blocks[0] != orig {
		t.Error("mutating clone's Blocks leaked into original")
	}
	if pr.Registrar == "mutated" {
		t.Error("mutating clone's Registrar leaked into original")
	}
}

func TestParseEmptyText(t *testing.T) {
	p := getParser(t)
	pr := p.Parse("")
	if len(pr.Lines) != 0 || len(pr.Blocks) != 0 {
		t.Errorf("empty parse produced %d lines", len(pr.Lines))
	}
}

func TestParseBoilerplateOnly(t *testing.T) {
	p := getParser(t)
	pr := p.Parse("The data in this record is provided for information purposes only.\nAll rights reserved.")
	for i, b := range pr.Blocks {
		if b != labels.Null {
			t.Errorf("boilerplate line %d labeled %v", i, b)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := getParser(t)
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d := synth.Generate(synth.Config{N: 20, Seed: 206})[3]
	text := d.Render().Text
	a := p.Parse(text)
	b := p2.Parse(text)
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("block counts differ after round trip")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] || a.Fields[i] != b.Fields[i] {
			t.Fatalf("labels differ at line %d after round trip", i)
		}
	}
	if a.Registrant != b.Registrant {
		t.Errorf("extracted registrant differs: %+v vs %+v", a.Registrant, b.Registrant)
	}
	if p2.Config().MinCount != p.Config().MinCount {
		t.Error("config lost in round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a model")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestParseFieldsOnlyTouchesRegistrantLines(t *testing.T) {
	p := getParser(t)
	d := synth.Generate(synth.Config{N: 10, Seed: 207})[0]
	lines, blocks := p.ParseBlocks(d.Render().Text)
	fields := p.ParseFields(lines, blocks)
	for i := range fields {
		if blocks[i] != labels.Registrant && fields[i] != labels.FieldOther {
			t.Errorf("non-registrant line %d got field %v", i, fields[i])
		}
	}
}

func TestMultiLineStreetJoined(t *testing.T) {
	p := getParser(t)
	text := strings.Join([]string{
		"Domain Name: street-test.com",
		"Registrar: Example",
		"Creation Date: 2012-01-02",
		"Registrant Name: Jane Roe",
		"Registrant Street: 1 Main St",
		"Registrant Street: Suite 200",
		"Registrant City: Springfield",
		"Registrant Country: US",
		"Registrant Email: jane@example.com",
	}, "\n")
	pr := p.Parse(text)
	if !strings.Contains(pr.Registrant.Street, "1 Main St") {
		t.Errorf("street lost: %q", pr.Registrant.Street)
	}
	if !strings.Contains(pr.Registrant.Street, "Suite 200") {
		t.Errorf("second street line not joined: %q", pr.Registrant.Street)
	}
}

func TestTrainStatsFeatureCounts(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 200, Seed: 208})
	_, stats, err := Train(recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's first-level CRF is larger than its second-level one;
	// with shared tokenization ours must have more block features than
	// registrant lines alone provide.
	if stats.BlockFeatures < 10000 {
		t.Errorf("suspiciously few block features: %d", stats.BlockFeatures)
	}
	if !stats.Block.Converged && stats.Block.Iterations == 0 {
		t.Errorf("block training did not run: %+v", stats.Block)
	}
}

func TestTrainSGDWorks(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 120, Seed: 209})
	cfg := DefaultConfig()
	cfg.Train.Method = "sgd"
	p, _, err := Train(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test := synth.GenerateLabeled(synth.Config{N: 100, Seed: 210})
	m, err := eval.EvalBlocks(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.LineErrorRate() > 0.08 {
		t.Errorf("SGD-trained parser line error %.4f too high", m.LineErrorRate())
	}
}

func TestParseAllMatchesSequential(t *testing.T) {
	p := getParser(t)
	domains := synth.Generate(synth.Config{N: 60, Seed: 211})
	texts := make([]string, len(domains))
	for i, d := range domains {
		texts[i] = d.Render().Text
	}
	parallel := p.ParseAll(texts, 4)
	for i, text := range texts {
		seq := p.Parse(text)
		par := parallel[i]
		if len(seq.Blocks) != len(par.Blocks) {
			t.Fatalf("record %d: lengths differ", i)
		}
		for j := range seq.Blocks {
			if seq.Blocks[j] != par.Blocks[j] || seq.Fields[j] != par.Fields[j] {
				t.Fatalf("record %d line %d differs between sequential and parallel", i, j)
			}
		}
		if seq.Registrant != par.Registrant {
			t.Fatalf("record %d: extracted contacts differ", i)
		}
	}
}

func TestParseAllEmpty(t *testing.T) {
	p := getParser(t)
	if out := p.ParseAll(nil, 4); len(out) != 0 {
		t.Errorf("empty input produced %d results", len(out))
	}
}

// TestParseSteadyStateAllocs guards the allocation budget of the bulk
// parse path: the CRF engine itself runs on pooled scratch (≈1 alloc for
// the decoded path per level), so the remaining allocations belong to
// tokenization and the returned record. The bound has headroom over the
// measured steady state (~410) but fails loudly if lattice or DP-table
// allocations ever creep back into the per-record cost.
func TestParseSteadyStateAllocs(t *testing.T) {
	p := getParser(t)
	text := synth.Generate(synth.Config{N: 1, Seed: 509})[0].Render().Text
	p.Parse(text) // warm the score caches and scratch pool
	base := testing.AllocsPerRun(100, func() {
		lines := tokenize.Tokenize(text, p.Config().Tokenize)
		p.BlockModel().MapLines(lines)
	})
	total := testing.AllocsPerRun(100, func() {
		p.Parse(text)
	})
	// Both decodes, the field-level MapLines, extraction, and the returned
	// record fit in a few dozen allocations (measured ~43); a bound of 80
	// fails if lattice or DP-table allocations return to the per-record
	// cost (the pre-engine code paid 30+ per decode).
	if crf := total - base; crf > 80 {
		t.Errorf("Parse allocates %.0f/op beyond tokenize+MapLines (%.0f vs %.0f), want <= 80",
			crf, total, base)
	}
}

// TestRankByUncertaintyMatchesSequential pins the parallel implementation
// to the sequential definition: ascending minimum confidence, ties in
// original order.
func TestRankByUncertaintyMatchesSequential(t *testing.T) {
	p := getParser(t)
	var texts []string
	for _, d := range synth.Generate(synth.Config{N: 12, Seed: 510}) {
		texts = append(texts, d.Render().Text)
	}
	texts = append(texts, "", texts[3]) // duplicates and empties tie
	conf := make([]float64, len(texts))
	for i, tx := range texts {
		_, conf[i] = p.Confidence(tx)
	}
	want := make([]int, len(texts))
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool { return conf[want[a]] < conf[want[b]] })
	got := p.RankByUncertainty(texts)
	if len(got) != len(want) {
		t.Fatalf("got %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got index %d, want %d (conf %v vs %v)",
				i, got[i], want[i], conf[got[i]], conf[want[i]])
		}
	}
}
