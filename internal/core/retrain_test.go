package core

import (
	"testing"

	"repro/internal/crf"
	"repro/internal/eval"
	"repro/internal/labels"
	"repro/internal/optimize"
	"repro/internal/synth"
)

func TestRetrainWarmStartConvergesFaster(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 400, Seed: 601})
	cfg := DefaultConfig()
	base, coldStats, err := Train(recs[:300], cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Add a handful of new-TLD examples (the §5.3 workflow) and retrain,
	// once cold and once warm.
	extended := append([]*labels.LabeledRecord(nil), recs[:300]...)
	for _, tld := range []string{"coop", "asia"} {
		extended = append(extended, synth.GenerateNewTLD(tld, 1, 602)[0].Labeled())
	}

	_, coldRetrain, err := Train(extended, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmRetrain, err := Retrain(base, extended, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if warmRetrain.Block.Iterations >= coldRetrain.Block.Iterations {
		t.Errorf("warm start did not converge faster: %d vs %d iterations (cold-from-scratch: %d)",
			warmRetrain.Block.Iterations, coldRetrain.Block.Iterations, coldStats.Block.Iterations)
	}

	// Accuracy must not suffer.
	test := synth.GenerateLabeled(synth.Config{N: 200, Seed: 603})
	m, err := eval.EvalBlocks(warm, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.LineErrorRate() > 0.01 {
		t.Errorf("warm-started parser line error %.4f", m.LineErrorRate())
	}
	// And the new format must now decode cleanly.
	for _, tld := range []string{"coop", "asia"} {
		rec := synth.GenerateNewTLD(tld, 1, 604)[0].Labeled()
		_, blocks := warm.ParseBlocks(rec.Text)
		errs := 0
		for i := range rec.Lines {
			if blocks[i] != rec.Lines[i].Block {
				errs++
			}
		}
		if errs > 1 {
			t.Errorf("%s after warm retrain: %d/%d errors", tld, errs, len(rec.Lines))
		}
	}
}

func TestRetrainNilPreviousEqualsTrain(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 100, Seed: 605})
	a, _, err := Train(recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Retrain(nil, recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := recs[0].Text
	pa := a.Parse(text)
	pb := b.Parse(text)
	for i := range pa.Blocks {
		if pa.Blocks[i] != pb.Blocks[i] {
			t.Fatal("Retrain(nil, ...) diverges from Train")
		}
	}
}

func TestWarmStartRejectsStateMismatch(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 50, Seed: 606})
	p, _, err := Train(recs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A model with a different state count must be ignored, not copied.
	other := crf.New(p.block.Dict(), crf.Config{NumStates: 3})
	before := append([]float64(nil), other.Theta()...)
	other.WarmStartFrom(p.block)
	after := other.Theta()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("WarmStartFrom copied weights across mismatched state spaces")
		}
	}
	_ = optimize.DefaultLBFGSConfig() // keep import for clarity of intent
}
