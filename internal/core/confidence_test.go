package core

import (
	"testing"

	"repro/internal/synth"
)

func TestConfidenceRange(t *testing.T) {
	p := getParser(t)
	d := synth.Generate(synth.Config{N: 5, Seed: 501})[0]
	lcs, min := p.Confidence(d.Render().Text)
	if len(lcs) == 0 {
		t.Fatal("no lines")
	}
	for i, lc := range lcs {
		if lc.Prob < 0 || lc.Prob > 1.000001 {
			t.Errorf("line %d confidence %v out of range", i, lc.Prob)
		}
		if lc.Prob < min-1e-9 {
			t.Errorf("line %d confidence %v below reported minimum %v", i, lc.Prob, min)
		}
	}
}

func TestConfidenceHighOnFamiliarFormats(t *testing.T) {
	p := getParser(t)
	// Most in-distribution records decode with near-certainty; a few come
	// from long-tail formats barely represented in the 400-record training
	// sample, so we require high confidence in aggregate, not universally.
	confident := 0
	domains := synth.Generate(synth.Config{N: 30, Seed: 502})
	for _, d := range domains {
		if _, min := p.Confidence(d.Render().Text); min > 0.5 {
			confident++
		}
	}
	if confident < len(domains)*3/4 {
		t.Errorf("only %d/%d records decoded confidently", confident, len(domains))
	}
}

func TestConfidenceEmptyText(t *testing.T) {
	p := getParser(t)
	lcs, min := p.Confidence("")
	if lcs != nil || min != 1 {
		t.Errorf("empty text: (%v, %v)", lcs, min)
	}
}

func TestRankByUncertaintyPrefersAlienFormats(t *testing.T) {
	p := getParser(t)
	// Mix familiar com records with coop records, whose format the parser
	// has never seen. The coop records must rank as more uncertain.
	var texts []string
	isAlien := make(map[int]bool)
	for _, d := range synth.Generate(synth.Config{N: 10, Seed: 503}) {
		texts = append(texts, d.Render().Text)
	}
	for _, d := range synth.GenerateNewTLD("coop", 3, 504) {
		isAlien[len(texts)] = true
		texts = append(texts, d.Render().Text)
	}
	order := p.RankByUncertainty(texts)
	if len(order) != len(texts) {
		t.Fatalf("order length %d", len(order))
	}
	alienInTop := 0
	for _, idx := range order[:3] {
		if isAlien[idx] {
			alienInTop++
		}
	}
	if alienInTop < 2 {
		t.Errorf("only %d/3 top-uncertain records are the alien format", alienInTop)
	}
}

// TestParseWithConfidenceAgrees verifies the fused path is Parse plus
// Confidence in one lattice build: the parsed record matches Parse and
// the reported minimum matches Confidence.
func TestParseWithConfidenceAgrees(t *testing.T) {
	p := getParser(t)
	for i, d := range synth.Generate(synth.Config{N: 10, Seed: 504}) {
		text := d.Render().Text
		rec, min := p.ParseWithConfidence(text)
		want := p.Parse(text)
		if len(rec.Blocks) != len(want.Blocks) {
			t.Fatalf("record %d: %d blocks vs Parse's %d", i, len(rec.Blocks), len(want.Blocks))
		}
		for j := range rec.Blocks {
			if rec.Blocks[j] != want.Blocks[j] || rec.Fields[j] != want.Fields[j] {
				t.Errorf("record %d line %d: fused labels (%v,%v) differ from Parse (%v,%v)",
					i, j, rec.Blocks[j], rec.Fields[j], want.Blocks[j], want.Fields[j])
			}
		}
		if rec.Registrant != want.Registrant || rec.Registrar != want.Registrar {
			t.Errorf("record %d: fused extraction differs from Parse", i)
		}
		_, wantMin := p.Confidence(text)
		if diff := min - wantMin; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("record %d: fused min confidence %v vs Confidence %v", i, min, wantMin)
		}
	}
}

func TestParseWithConfidenceEmpty(t *testing.T) {
	p := getParser(t)
	rec, min := p.ParseWithConfidence("")
	if min != 1 {
		t.Errorf("empty record min confidence = %v, want 1", min)
	}
	if len(rec.Lines) != 0 {
		t.Errorf("empty record produced %d lines", len(rec.Lines))
	}
}
