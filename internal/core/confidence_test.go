package core

import (
	"testing"

	"repro/internal/synth"
)

func TestConfidenceRange(t *testing.T) {
	p := getParser(t)
	d := synth.Generate(synth.Config{N: 5, Seed: 501})[0]
	lcs, min := p.Confidence(d.Render().Text)
	if len(lcs) == 0 {
		t.Fatal("no lines")
	}
	for i, lc := range lcs {
		if lc.Prob < 0 || lc.Prob > 1.000001 {
			t.Errorf("line %d confidence %v out of range", i, lc.Prob)
		}
		if lc.Prob < min-1e-9 {
			t.Errorf("line %d confidence %v below reported minimum %v", i, lc.Prob, min)
		}
	}
}

func TestConfidenceHighOnFamiliarFormats(t *testing.T) {
	p := getParser(t)
	// Most in-distribution records decode with near-certainty; a few come
	// from long-tail formats barely represented in the 400-record training
	// sample, so we require high confidence in aggregate, not universally.
	confident := 0
	domains := synth.Generate(synth.Config{N: 30, Seed: 502})
	for _, d := range domains {
		if _, min := p.Confidence(d.Render().Text); min > 0.5 {
			confident++
		}
	}
	if confident < len(domains)*3/4 {
		t.Errorf("only %d/%d records decoded confidently", confident, len(domains))
	}
}

func TestConfidenceEmptyText(t *testing.T) {
	p := getParser(t)
	lcs, min := p.Confidence("")
	if lcs != nil || min != 1 {
		t.Errorf("empty text: (%v, %v)", lcs, min)
	}
}

func TestRankByUncertaintyPrefersAlienFormats(t *testing.T) {
	p := getParser(t)
	// Mix familiar com records with coop records, whose format the parser
	// has never seen. The coop records must rank as more uncertain.
	var texts []string
	isAlien := make(map[int]bool)
	for _, d := range synth.Generate(synth.Config{N: 10, Seed: 503}) {
		texts = append(texts, d.Render().Text)
	}
	for _, d := range synth.GenerateNewTLD("coop", 3, 504) {
		isAlien[len(texts)] = true
		texts = append(texts, d.Render().Text)
	}
	order := p.RankByUncertainty(texts)
	if len(order) != len(texts) {
		t.Fatalf("order length %d", len(order))
	}
	alienInTop := 0
	for _, idx := range order[:3] {
		if isAlien[idx] {
			alienInTop++
		}
	}
	if alienInTop < 2 {
		t.Errorf("only %d/3 top-uncertain records are the alien format", alienInTop)
	}
}
