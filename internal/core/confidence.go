package core

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// The §5.3 maintainability loop needs mislabeled records to be *found*
// before they can be fixed with new labeled examples. The CRF provides a
// principled signal for free: the posterior marginal probability of each
// predicted label. Lines the model labels with low confidence are exactly
// where new formats show up.

// LineConfidence pairs a predicted label with its posterior probability.
type LineConfidence struct {
	Line  tokenize.Line
	Block labels.Block
	// Prob is Pr(y_t = predicted | x), from forward-backward marginals.
	Prob float64
}

// Confidence runs first-level decoding and returns the per-line posterior
// probability of each predicted block, plus the minimum across lines (the
// record's weakest link). An empty record returns (nil, 1). The Viterbi
// path and the marginals come from one fused crf.Posterior pass, so the
// lattice is built once rather than once per quantity.
func (p *Parser) Confidence(text string) ([]LineConfidence, float64) {
	lines := tokenize.Tokenize(text, p.cfg.Tokenize)
	if len(lines) == 0 {
		return nil, 1
	}
	inst := p.block.MapLines(lines)
	post := p.block.Posterior(inst)
	out := make([]LineConfidence, len(lines))
	min := 1.0
	for i := range lines {
		prob := post.Marginals[i][post.Path[i]]
		out[i] = LineConfidence{Line: lines[i], Block: labels.Block(post.Path[i]), Prob: prob}
		if prob < min {
			min = prob
		}
	}
	if p.met != nil {
		// The distribution of weakest-link confidence across records is
		// the live triage dashboard: a growing low tail means a new
		// format is arriving (§5.3).
		p.met.confidenceMin.Observe(min)
	}
	return out, min
}

// ParseWithConfidence is Parse fused with the §5.3 triage signal: both
// levels run as usual, and the per-line posterior marginals of the
// first-level decode come out of the same lattice pass (crf.Posterior),
// so the minimum line confidence — the record's weakest link — costs one
// forward-backward instead of a separate Confidence call. The live drift
// sentinel (internal/lifecycle) samples this path to watch registrars
// whose confidence distribution degrades.
func (p *Parser) ParseWithConfidence(text string) (*ParsedRecord, float64) {
	var start time.Time
	if p.met != nil {
		start = time.Now()
	}
	lines := tokenize.Tokenize(text, p.cfg.Tokenize)
	min := 1.0
	blocks := make([]labels.Block, len(lines))
	if len(lines) > 0 {
		inst := p.block.MapLines(lines)
		post := p.block.Posterior(inst)
		for i, y := range post.Path {
			blocks[i] = labels.Block(y)
			if prob := post.Marginals[i][y]; prob < min {
				min = prob
			}
		}
	}
	out := &ParsedRecord{
		Lines:  lines,
		Blocks: blocks,
		Fields: p.ParseFields(lines, blocks),
	}
	extract(out)
	if p.met != nil {
		p.met.parseSeconds.ObserveSince(start)
		p.met.parses.Inc()
		p.met.lines.Add(uint64(len(lines)))
		p.met.confidenceMin.Observe(min)
	}
	return out, min
}

// RankByUncertainty orders record texts by ascending minimum line
// confidence: the records most worth labeling next. It returns the indices
// into texts, most uncertain first — the active-learning selection the
// paper's "add a handful of labeled examples" workflow implies. Scoring
// runs across a bounded worker pool (GOMAXPROCS goroutines), mirroring
// ParseAll; ties keep their original order.
func (p *Parser) RankByUncertainty(texts []string) []int {
	conf := make([]float64, len(texts))
	if len(texts) > 0 {
		workers := runtime.GOMAXPROCS(0)
		if workers > len(texts) {
			workers = len(texts)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					_, conf[i] = p.Confidence(texts[i])
				}
			}()
		}
		for i := range texts {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	out := make([]int, len(texts))
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool { return conf[out[a]] < conf[out[b]] })
	return out
}
