package core

import (
	"sort"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// The §5.3 maintainability loop needs mislabeled records to be *found*
// before they can be fixed with new labeled examples. The CRF provides a
// principled signal for free: the posterior marginal probability of each
// predicted label. Lines the model labels with low confidence are exactly
// where new formats show up.

// LineConfidence pairs a predicted label with its posterior probability.
type LineConfidence struct {
	Line  tokenize.Line
	Block labels.Block
	// Prob is Pr(y_t = predicted | x), from forward-backward marginals.
	Prob float64
}

// Confidence runs first-level decoding and returns the per-line posterior
// probability of each predicted block, plus the minimum across lines (the
// record's weakest link). An empty record returns (nil, 1).
func (p *Parser) Confidence(text string) ([]LineConfidence, float64) {
	lines := tokenize.Tokenize(text, p.cfg.Tokenize)
	if len(lines) == 0 {
		return nil, 1
	}
	inst := p.block.MapLines(lines)
	path, _ := p.block.Decode(inst)
	marg := p.block.Marginals(inst)
	out := make([]LineConfidence, len(lines))
	min := 1.0
	for i := range lines {
		prob := marg[i][path[i]]
		out[i] = LineConfidence{Line: lines[i], Block: labels.Block(path[i]), Prob: prob}
		if prob < min {
			min = prob
		}
	}
	return out, min
}

// RankByUncertainty orders record texts by ascending minimum line
// confidence: the records most worth labeling next. It returns the indices
// into texts, most uncertain first — the active-learning selection the
// paper's "add a handful of labeled examples" workflow implies.
func (p *Parser) RankByUncertainty(texts []string) []int {
	type scored struct {
		idx  int
		conf float64
	}
	all := make([]scored, len(texts))
	for i, t := range texts {
		_, min := p.Confidence(t)
		all[i] = scored{idx: i, conf: min}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].conf < all[j].conf })
	out := make([]int, len(all))
	for i, s := range all {
		out[i] = s.idx
	}
	return out
}
