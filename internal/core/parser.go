// Package core implements the paper's primary contribution: a two-level
// statistical WHOIS parser (§3). A first-level CRF segments a thick WHOIS
// record into six kinds of blocks (registrar, domain, date, registrant,
// other, null); a second-level CRF re-parses the registrant block into
// twelve subfields (name, id, org, street, city, state, postcode, country,
// phone, fax, email, other). Both levels share the feature pipeline in
// internal/tokenize and the CRF machinery in internal/crf.
package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/crf"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/tokenize"
)

// Config controls feature generation and training for both CRF levels.
type Config struct {
	// Tokenize selects which observation families are emitted.
	Tokenize tokenize.Options
	// MinCount trims dictionary observations seen fewer times (§3.3:
	// "we trim words that appear very infrequently").
	MinCount int
	// TransMinCount gates which observations carry transition features;
	// <= 0 means all of them.
	TransMinCount int
	// L2 is the regularization strength for both CRFs.
	L2 float64
	// Train selects the optimizer.
	Train crf.TrainConfig
}

// DefaultConfig returns the settings used for the paper-scale experiments.
func DefaultConfig() Config {
	return Config{
		MinCount:      2,
		TransMinCount: 1,
		L2:            1.0,
	}
}

// Parser is a trained two-level statistical WHOIS parser.
type Parser struct {
	cfg   Config
	block *crf.Model // first level: 6 states
	field *crf.Model // second level: 12 states
	met   *parserMetrics
}

// parserMetrics are the parse-path observability handles (see
// Instrument). Nil on uninstrumented parsers — the common test path —
// so the hot path pays one nil check.
type parserMetrics struct {
	parseSeconds  *obs.Histogram
	parses        *obs.Counter
	lines         *obs.Counter
	confidenceMin *obs.Histogram
}

// Instrument wires the parser and both CRF levels into reg:
// core.parse.seconds / core.parse.calls / core.parse.lines for the full
// two-level parse, crf.block.* and crf.field.* for per-level decode
// latency and token throughput, and core.confidence.min for the
// distribution of per-record minimum posterior confidence (the §5.3
// triage signal). Call once, before the parser is shared across
// goroutines.
func (p *Parser) Instrument(reg *obs.Registry) {
	p.met = &parserMetrics{
		parseSeconds:  reg.Histogram("core.parse.seconds", obs.DurationBounds()),
		parses:        reg.Counter("core.parse.calls"),
		lines:         reg.Counter("core.parse.lines"),
		confidenceMin: reg.Histogram("core.confidence.min", obs.UnitBounds()),
	}
	p.block.Instrument(reg, "crf.block")
	if p.field != nil {
		p.field.Instrument(reg, "crf.field")
	}
}

// TrainStats reports optimizer outcomes for both levels.
type TrainStats struct {
	Block optimize.Result
	Field optimize.Result
	// BlockFeatures and FieldFeatures are the feature-space sizes, for
	// comparison with the paper's "nearly 1M" / "nearly 400K".
	BlockFeatures int
	FieldFeatures int
}

// Train fits both CRF levels from labeled records.
func Train(records []*labels.LabeledRecord, cfg Config) (*Parser, TrainStats, error) {
	return train(records, cfg, nil, nil)
}

// train is the shared implementation behind Train and Retrain; warmBlock
// and warmField, when non-nil, seed the respective models' weights.
func train(records []*labels.LabeledRecord, cfg Config, warmBlock, warmField *crf.Model) (*Parser, TrainStats, error) {
	var stats TrainStats
	if len(records) == 0 {
		return nil, stats, fmt.Errorf("core: no training records")
	}
	if cfg.MinCount == 0 {
		cfg.MinCount = 1
	}

	// Tokenize every record once; verify label/line alignment.
	tokenized := make([][]tokenize.Line, len(records))
	for i, rec := range records {
		lines := tokenize.Tokenize(rec.Text, cfg.Tokenize)
		if len(lines) != len(rec.Lines) {
			return nil, stats, fmt.Errorf("core: record %s: %d retained lines but %d labels",
				rec.Domain, len(lines), len(rec.Lines))
		}
		tokenized[i] = lines
	}

	// ---- First level ----
	blockDict := tokenize.BuildDictionary(tokenized, cfg.MinCount)
	blockModel := crf.New(blockDict, crf.Config{
		NumStates:     labels.NumBlocks,
		TransMinCount: cfg.TransMinCount,
		L2:            cfg.L2,
	})
	blockModel.WarmStartFrom(warmBlock)
	blockInsts := make([]crf.Instance, len(records))
	for i, rec := range records {
		inst := blockModel.MapLines(tokenized[i])
		inst.Labels = make([]int, len(rec.Lines))
		for t, ln := range rec.Lines {
			inst.Labels[t] = int(ln.Block)
		}
		blockInsts[i] = inst
	}
	res, err := blockModel.Train(blockInsts, cfg.Train)
	if err != nil {
		return nil, stats, fmt.Errorf("core: train first-level CRF: %w", err)
	}
	stats.Block = res
	stats.BlockFeatures = blockModel.NumFeatures()

	// ---- Second level: registrant sub-sequences ----
	var fieldSeqs [][]tokenize.Line
	var fieldLabelSeqs [][]int
	for i, rec := range records {
		var seq []tokenize.Line
		var lab []int
		for t, ln := range rec.Lines {
			if ln.Block != labels.Registrant {
				continue
			}
			seq = append(seq, tokenized[i][t])
			lab = append(lab, int(ln.Field))
		}
		if len(seq) > 0 {
			fieldSeqs = append(fieldSeqs, seq)
			fieldLabelSeqs = append(fieldLabelSeqs, lab)
		}
	}
	p := &Parser{cfg: cfg, block: blockModel}
	if len(fieldSeqs) > 0 {
		fieldDict := tokenize.BuildDictionary(fieldSeqs, cfg.MinCount)
		fieldModel := crf.New(fieldDict, crf.Config{
			NumStates:     labels.NumFields,
			TransMinCount: cfg.TransMinCount,
			L2:            cfg.L2,
		})
		fieldModel.WarmStartFrom(warmField)
		fieldInsts := make([]crf.Instance, len(fieldSeqs))
		for i, seq := range fieldSeqs {
			inst := fieldModel.MapLines(seq)
			inst.Labels = fieldLabelSeqs[i]
			fieldInsts[i] = inst
		}
		res, err := fieldModel.Train(fieldInsts, cfg.Train)
		if err != nil {
			return nil, stats, fmt.Errorf("core: train second-level CRF: %w", err)
		}
		stats.Field = res
		stats.FieldFeatures = fieldModel.NumFeatures()
		p.field = fieldModel
	}
	return p, stats, nil
}

// Retrain fits a fresh parser on records, warm-starting both CRF levels
// from prev's weights where features overlap. This is the §5.3 adaptation
// workflow: add a handful of labeled examples for a new format and
// retrain; warm-starting cuts the optimizer iterations substantially
// because only the new format's features start cold.
func Retrain(prev *Parser, records []*labels.LabeledRecord, cfg Config) (*Parser, TrainStats, error) {
	return trainWithWarmStart(prev, records, cfg)
}

// trainWithWarmStart is Train with an optional previous parser whose
// weights seed the optimizers.
func trainWithWarmStart(prev *Parser, records []*labels.LabeledRecord, cfg Config) (*Parser, TrainStats, error) {
	// Reuse Train's construction path by injecting warm-start inside the
	// model builders; the simplest faithful implementation rebuilds the
	// models and copies overlapping weights before optimizing.
	warmBlock := (*crf.Model)(nil)
	warmField := (*crf.Model)(nil)
	if prev != nil {
		warmBlock = prev.block
		warmField = prev.field
	}
	return train(records, cfg, warmBlock, warmField)
}

// BlockModel exposes the first-level CRF for introspection (Table 1,
// Figure 1).
func (p *Parser) BlockModel() *crf.Model { return p.block }

// FieldModel exposes the second-level CRF; nil if no registrant blocks
// appeared in training.
func (p *Parser) FieldModel() *crf.Model { return p.field }

// Config returns the configuration the parser was trained with.
func (p *Parser) Config() Config { return p.cfg }

// ParseBlocks tokenizes text and runs first-level decoding only.
func (p *Parser) ParseBlocks(text string) ([]tokenize.Line, []labels.Block) {
	lines := tokenize.Tokenize(text, p.cfg.Tokenize)
	inst := p.block.MapLines(lines)
	path, _ := p.block.Decode(inst)
	blocks := make([]labels.Block, len(path))
	for i, y := range path {
		blocks[i] = labels.Block(y)
	}
	return lines, blocks
}

// ParseFields runs second-level decoding over the lines whose predicted
// block is Registrant, returning one field label per line (FieldOther for
// non-registrant lines).
func (p *Parser) ParseFields(lines []tokenize.Line, blocks []labels.Block) []labels.Field {
	fields := make([]labels.Field, len(lines))
	for i := range fields {
		fields[i] = labels.FieldOther
	}
	if p.field == nil {
		return fields
	}
	var idx []int
	var seq []tokenize.Line
	for i, b := range blocks {
		if b == labels.Registrant {
			idx = append(idx, i)
			seq = append(seq, lines[i])
		}
	}
	if len(seq) == 0 {
		return fields
	}
	inst := p.field.MapLines(seq)
	path, _ := p.field.Decode(inst)
	for k, i := range idx {
		fields[i] = labels.Field(path[k])
	}
	return fields
}

// Contact holds the extracted registrant subfields. Multi-line fields
// (street) are joined with ", ".
type Contact struct {
	Name     string
	ID       string
	Org      string
	Street   string
	City     string
	State    string
	Postcode string
	Country  string
	Phone    string
	Fax      string
	Email    string
}

// ParsedRecord is the full output of the two-level parse.
//
// Instances handed out by a shared result cache (internal/serve) are
// shared across callers and must be treated as immutable; use Clone to
// obtain a caller-owned copy before mutating.
type ParsedRecord struct {
	// Lines are the retained lines in order; Blocks and Fields run
	// parallel to them. Fields[i] is meaningful only when Blocks[i] is
	// labels.Registrant.
	Lines  []tokenize.Line
	Blocks []labels.Block
	Fields []labels.Field

	// Registrant carries the extracted second-level subfields.
	Registrant Contact

	// Registrar is the registrar name extracted from the registrar block,
	// CreatedDate / UpdatedDate / ExpiresDate the date block values,
	// DomainName the domain block value, WhoisServer a referral if any.
	Registrar    string
	RegistrarURL string
	DomainName   string
	WhoisServer  string
	CreatedDate  string
	UpdatedDate  string
	ExpiresDate  string

	// NameServers and Statuses collect the delegation and EPP status
	// lines of the domain block, verbatim and in record order. The
	// cross-protocol consistency engine compares them against the RDAP
	// nameservers/status arrays; unlike the scalar fields above they are
	// naturally multi-valued, so every matching line is kept.
	NameServers []string
	Statuses    []string

	// ModelVersion identifies the model that produced this record, when a
	// lifecycle layer stamps it (internal/lifecycle; "" otherwise). WHOIS
	// formats drift and models are retrained while serving (§5.1), so a
	// parse is only interpretable alongside the model version that made
	// it — drift analysis segments on this field.
	ModelVersion string

	// Tier records which serving tier produced this record when a tiered
	// router (internal/tiered) stamps it: TierTemplate for the L0
	// compiled-template fast path, TierCRF for the full lattice parse.
	// Empty on untiered parses. Like ModelVersion, it is provenance: a
	// record is only auditable alongside the mechanism that produced it.
	Tier string
}

// Tier values stamped into ParsedRecord.Tier by a tiered router.
const (
	// TierTemplate marks a record parsed by the L0 template fast path —
	// exact per-registrar line matching, no lattice.
	TierTemplate = "l0"
	// TierCRF marks a record parsed by the L1 statistical parser (this
	// package's two-level CRF).
	TierCRF = "l1"
)

// Clone returns a deep copy of the record, for callers that need to
// mutate a result obtained from a shared cache.
func (pr *ParsedRecord) Clone() *ParsedRecord {
	out := *pr
	out.Lines = append([]tokenize.Line(nil), pr.Lines...)
	out.Blocks = append([]labels.Block(nil), pr.Blocks...)
	out.Fields = append([]labels.Field(nil), pr.Fields...)
	out.NameServers = append([]string(nil), pr.NameServers...)
	out.Statuses = append([]string(nil), pr.Statuses...)
	return &out
}

// Parse runs both levels on raw record text and extracts fields.
func (p *Parser) Parse(text string) *ParsedRecord {
	var start time.Time
	if p.met != nil {
		start = time.Now()
	}
	lines, blocks := p.ParseBlocks(text)
	out := &ParsedRecord{
		Lines:  lines,
		Blocks: blocks,
		Fields: p.ParseFields(lines, blocks),
	}
	extract(out)
	if p.met != nil {
		p.met.parseSeconds.ObserveSince(start)
		p.met.parses.Inc()
		p.met.lines.Add(uint64(len(lines)))
	}
	return out
}

// ParseAll parses texts concurrently across the given number of worker
// goroutines (GOMAXPROCS when workers <= 0). Decoding is read-only on the
// model, so the parser is safe to share. Results align with texts by
// index — the bulk path for the §6 survey over millions of records.
func (p *Parser) ParseAll(texts []string, workers int) []*ParsedRecord {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(texts) {
		workers = len(texts)
	}
	out := make([]*ParsedRecord, len(texts))
	if len(texts) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = p.Parse(texts[i])
			}
		}()
	}
	for i := range texts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// ExtractFields (re)derives the scalar summary fields — Registrant
// contact, Registrar/URL/WhoisServer, DomainName, and the three dates —
// from Lines, Blocks, and Fields. Parse and ParseWithConfidence call it
// implicitly; it is exported for alternate line-label producers (the L0
// template fast path in internal/tiered) that fill Lines/Blocks/Fields
// without running the CRFs and need the same extraction semantics.
func (pr *ParsedRecord) ExtractFields() { extract(pr) }

func extract(out *ParsedRecord) {
	setFirst := func(dst *string, v string) {
		if *dst == "" && v != "" {
			*dst = v
		}
	}
	for i, ln := range out.Lines {
		val := ln.Value
		switch out.Blocks[i] {
		case labels.Registrant:
			switch out.Fields[i] {
			case labels.FieldName:
				setFirst(&out.Registrant.Name, val)
			case labels.FieldID:
				setFirst(&out.Registrant.ID, val)
			case labels.FieldOrg:
				setFirst(&out.Registrant.Org, val)
			case labels.FieldStreet:
				if out.Registrant.Street == "" {
					out.Registrant.Street = val
				} else if val != "" {
					out.Registrant.Street += ", " + val
				}
			case labels.FieldCity:
				setFirst(&out.Registrant.City, val)
			case labels.FieldState:
				setFirst(&out.Registrant.State, val)
			case labels.FieldPostcode:
				setFirst(&out.Registrant.Postcode, val)
			case labels.FieldCountry:
				setFirst(&out.Registrant.Country, val)
			case labels.FieldPhone:
				setFirst(&out.Registrant.Phone, val)
			case labels.FieldFax:
				setFirst(&out.Registrant.Fax, val)
			case labels.FieldEmail:
				setFirst(&out.Registrant.Email, val)
			}
		case labels.Registrar:
			title := ln.Title
			switch {
			case containsFold(title, "whois"):
				setFirst(&out.WhoisServer, val)
			case containsFold(title, "url"), containsFold(title, "website"),
				containsFold(title, "www"):
				setFirst(&out.RegistrarURL, val)
			case containsFold(title, "iana"), containsFold(title, "abuse"):
				// Registrar metadata we do not surface as the name.
			case containsFold(title, "registrar"), containsFold(title, "sponsor"),
				containsFold(title, "registered"), containsFold(title, "maintained"),
				containsFold(title, "reseller"), containsFold(title, "provided"):
				setFirst(&out.Registrar, val)
			}
		case labels.Domain:
			title := ln.Title
			// Multi-valued lines first: "Domain Name Servers" and "Domain
			// Status" titles contain "domain" and must not be mistaken for
			// the domain-name line.
			switch {
			case val != "" && !containsFold(title, "whois") && !containsFold(title, "dnssec") &&
				(containsFold(title, "name server") || containsFold(title, "nameserver") ||
					containsFold(title, "nserver") || containsFold(title, "dns")):
				// "dnssec" is excluded: a "DNSSEC: unsigned" title contains
				// "dns" but its value is a signing state, not a host.
				out.NameServers = append(out.NameServers, val)
			case val != "" && containsFold(title, "status"):
				out.Statuses = append(out.Statuses, val)
			case containsFold(title, "domain") && strings.Contains(val, "."):
				if out.DomainName == "" && val != "" {
					out.DomainName = strings.ToLower(val)
				}
			}
		case labels.Date:
			if !containsYear(val) {
				break // a date field whose value has no year is noise
			}
			title := ln.Title
			switch {
			case containsFold(title, "creat"), containsFold(title, "registered"),
				containsFold(title, "registration"), containsFold(title, "active"):
				setFirst(&out.CreatedDate, val)
			case containsFold(title, "updat"), containsFold(title, "modif"), containsFold(title, "changed"):
				setFirst(&out.UpdatedDate, val)
			case containsFold(title, "expir"), containsFold(title, "renew"),
				containsFold(title, "paid"), containsFold(title, "valid"):
				setFirst(&out.ExpiresDate, val)
			}
		}
	}
}

// containsFold reports whether s contains pat under ASCII case folding.
// pat must already be lowercase. Titles are matched on every parse —
// including the L0 template fast path with its tens-of-allocs budget —
// so this replaces the strings.ToLower(title) copies the loop above used
// to make. WHOIS titles are ASCII in practice; a non-ASCII uppercase
// title simply fails to match, as it also failed the keyword lists here.
func containsFold(s, pat string) bool {
	if len(pat) > len(s) {
		return false
	}
scan:
	for i := 0; i+len(pat) <= len(s); i++ {
		for j := 0; j < len(pat); j++ {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != pat[j] {
				continue scan
			}
		}
		return true
	}
	return false
}

// cfgDTO is the persisted subset of Config: only the fields that affect
// parsing (not training) survive serialization. In particular the
// optimizer callbacks in Config.Train are funcs gob cannot encode.
type cfgDTO struct {
	Tokenize      tokenize.Options
	MinCount      int
	TransMinCount int
	L2            float64
}

// containsYear reports whether a value carries a plausible 4-digit year,
// the minimal evidence that a "date" line actually holds a date.
func containsYear(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i] >= '1' && s[i] <= '2' &&
			isDigitByte(s[i+1]) && isDigitByte(s[i+2]) && isDigitByte(s[i+3]) {
			y := int(s[i]-'0')*1000 + int(s[i+1]-'0')*100 + int(s[i+2]-'0')*10 + int(s[i+3]-'0')
			if y >= 1980 && y <= 2100 {
				return true
			}
		}
	}
	return false
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

// parserDTO serializes a Parser.
type parserDTO struct {
	Cfg        cfgDTO
	BlockBytes []byte
	FieldBytes []byte
}

// WriteTo serializes the parser (both CRF levels plus configuration).
func (p *Parser) WriteTo(w io.Writer) (int64, error) {
	var dto parserDTO
	dto.Cfg = cfgDTO{
		Tokenize:      p.cfg.Tokenize,
		MinCount:      p.cfg.MinCount,
		TransMinCount: p.cfg.TransMinCount,
		L2:            p.cfg.L2,
	}
	var bb strings.Builder
	if _, err := p.block.WriteTo(&bb); err != nil {
		return 0, fmt.Errorf("core: serialize block model: %w", err)
	}
	dto.BlockBytes = []byte(bb.String())
	if p.field != nil {
		var fb strings.Builder
		if _, err := p.field.WriteTo(&fb); err != nil {
			return 0, fmt.Errorf("core: serialize field model: %w", err)
		}
		dto.FieldBytes = []byte(fb.String())
	}
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(dto); err != nil {
		return cw.n, fmt.Errorf("core: encode parser: %w", err)
	}
	return cw.n, nil
}

// Read deserializes a parser written by WriteTo.
func Read(r io.Reader) (*Parser, error) {
	var dto parserDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode parser: %w", err)
	}
	block, err := crf.Read(strings.NewReader(string(dto.BlockBytes)))
	if err != nil {
		return nil, fmt.Errorf("core: read block model: %w", err)
	}
	cfg := Config{
		Tokenize:      dto.Cfg.Tokenize,
		MinCount:      dto.Cfg.MinCount,
		TransMinCount: dto.Cfg.TransMinCount,
		L2:            dto.Cfg.L2,
	}
	p := &Parser{cfg: cfg, block: block}
	if len(dto.FieldBytes) > 0 {
		field, err := crf.Read(strings.NewReader(string(dto.FieldBytes)))
		if err != nil {
			return nil, fmt.Errorf("core: read field model: %w", err)
		}
		p.field = field
	}
	return p, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(b []byte) (int, error) {
	n, err := c.w.Write(b)
	c.n += int64(n)
	return n, err
}
