package whoisclient

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestExtractReferral(t *testing.T) {
	cases := []struct {
		thin string
		want string
		ok   bool
	}{
		{"   Whois Server: whois.godaddy.com\n", "whois.godaddy.com", true},
		{"Registrar WHOIS Server: whois.enom.com", "whois.enom.com", true},
		{"whois: whois.x.com", "whois.x.com", true},
		{"WHOIS SERVER: WHOIS.CAPS.COM", "WHOIS.CAPS.COM", true},
		{"Registrar: GoDaddy", "", false},
		{"Whois Server:", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := ExtractReferral(c.thin)
		if ok != c.ok || got != c.want {
			t.Errorf("ExtractReferral(%q) = (%q, %v), want (%q, %v)", c.thin, got, ok, c.want, c.ok)
		}
	}
}

func TestIsRateLimited(t *testing.T) {
	yes := []string{
		"% Query rate exceeded. Access temporarily denied.",
		"ERROR: too many requests",
		"lookup quota exceeded for your IP",
	}
	for _, s := range yes {
		if !IsRateLimited(s) {
			t.Errorf("IsRateLimited(%q) = false", s)
		}
	}
	no := []string{
		"Domain Name: x.com",
		// Boilerplate deep inside a legitimate record must not trip the
		// detector (this was a real bug: "query rates are limited").
		"Domain Name: x.com\nRegistrar: Y\nowner: Z\n# Query rates are limited; excessive querying will lead to denial of service.",
	}
	for _, s := range no {
		if IsRateLimited(s) {
			t.Errorf("IsRateLimited(%q) = true", s)
		}
	}
}

func TestIsNoMatch(t *testing.T) {
	if !IsNoMatch("No match for domain.") {
		t.Error("no match not detected")
	}
	if !IsNoMatch("Object not found in database") {
		t.Error("not found not detected")
	}
	if IsNoMatch("Domain Name: x.com") {
		t.Error("false positive")
	}
}

func TestQueryNilResolver(t *testing.T) {
	c := &Client{}
	if _, err := c.Query(context.Background(), "whois.x.com", "x.com"); err == nil {
		t.Fatal("expected error with nil resolver")
	}
}

func TestQueryResolveError(t *testing.T) {
	c := &Client{Resolver: ResolverFunc(func(name string) (string, error) {
		return "", errors.New("boom")
	})}
	_, err := c.Query(context.Background(), "whois.x.com", "x.com")
	if err == nil || !strings.Contains(err.Error(), "resolve") {
		t.Fatalf("got %v", err)
	}
}

func TestQueryDialError(t *testing.T) {
	c := &Client{Resolver: ResolverFunc(func(name string) (string, error) {
		// A port nothing listens on.
		return "127.0.0.1:1", nil
	})}
	if _, err := c.Query(context.Background(), "whois.x.com", "x.com"); err == nil {
		t.Fatal("expected dial error")
	}
}

// startRawServer runs a raw TCP server driven by fn for failure injection.
func startRawServer(t *testing.T, fn func(c net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go fn(c)
		}
	}()
	return l.Addr().String()
}

func fixedResolver(addr string) Resolver {
	return ResolverFunc(func(string) (string, error) { return addr, nil })
}

func TestQueryTimesOutOnHangingServer(t *testing.T) {
	addr := startRawServer(t, func(c net.Conn) {
		// Accept, read the query, then hang without answering.
		buf := make([]byte, 64)
		c.Read(buf)
		time.Sleep(5 * time.Second)
		c.Close()
	})
	c := &Client{Resolver: fixedResolver(addr), Timeout: 200 * time.Millisecond}
	start := time.Now()
	_, err := c.Query(context.Background(), "hang.example", "x.com")
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("timeout took %v, deadline not applied", time.Since(start))
	}
}

func TestQueryEmptyResponse(t *testing.T) {
	addr := startRawServer(t, func(c net.Conn) {
		buf := make([]byte, 64)
		c.Read(buf)
		c.Close() // close without writing anything
	})
	c := &Client{Resolver: fixedResolver(addr), Timeout: time.Second}
	_, err := c.Query(context.Background(), "empty.example", "x.com")
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("got %v, want ErrEmpty", err)
	}
}

func TestQueryRespectsMaxResponse(t *testing.T) {
	addr := startRawServer(t, func(c net.Conn) {
		buf := make([]byte, 64)
		c.Read(buf)
		big := strings.Repeat("Registrant Name: Flood\r\n", 10000)
		c.Write([]byte(big))
		c.Close()
	})
	c := &Client{Resolver: fixedResolver(addr), Timeout: 2 * time.Second, MaxResponse: 1024}
	resp, err := c.Query(context.Background(), "flood.example", "x.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) > 1100 {
		t.Errorf("response length %d exceeds cap", len(resp))
	}
}

func TestQueryContextCancellation(t *testing.T) {
	addr := startRawServer(t, func(c net.Conn) {
		buf := make([]byte, 64)
		c.Read(buf)
		time.Sleep(5 * time.Second)
		c.Close()
	})
	c := &Client{Resolver: fixedResolver(addr), Timeout: 30 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Query(ctx, "slow.example", "x.com"); err == nil {
		t.Fatal("expected context deadline error")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("cancellation took %v", time.Since(start))
	}
}
