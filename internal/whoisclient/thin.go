package whoisclient

import (
	"strings"
	"time"
)

// ThinRecord is the parsed form of a registry ("thin") WHOIS answer.
// Unlike thick records, thin records follow the registry's single fixed
// schema (§2.2), so a small exact parser suffices — no learning needed.
type ThinRecord struct {
	DomainName  string
	Registrar   string
	IANAID      string
	WhoisServer string
	ReferralURL string
	NameServers []string
	Statuses    []string
	Updated     time.Time
	Created     time.Time
	Expires     time.Time
}

var thinDateLayouts = []string{"02-Jan-2006", "2006-01-02", "2006-01-02T15:04:05Z"}

func parseThinDate(v string) time.Time {
	for _, layout := range thinDateLayouts {
		if t, err := time.Parse(layout, v); err == nil {
			return t
		}
	}
	return time.Time{}
}

// ParseThin extracts the structured fields of a thin registry record.
// Unknown lines are ignored; the zero value is returned for absent fields.
func ParseThin(text string) ThinRecord {
	var out ThinRecord
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		if value == "" {
			continue
		}
		switch key {
		case "domain name":
			out.DomainName = strings.ToLower(value)
		case "registrar":
			out.Registrar = value
		case "sponsoring registrar iana id", "registrar iana id":
			out.IANAID = value
		case "whois server", "registrar whois server":
			out.WhoisServer = value
		case "referral url", "registrar url":
			out.ReferralURL = value
		case "name server":
			out.NameServers = append(out.NameServers, strings.ToLower(value))
		case "status", "domain status":
			out.Statuses = append(out.Statuses, value)
		case "updated date":
			out.Updated = parseThinDate(value)
		case "creation date":
			out.Created = parseThinDate(value)
		case "expiration date", "registry expiry date":
			out.Expires = parseThinDate(value)
		}
	}
	return out
}
