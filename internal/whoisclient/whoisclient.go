// Package whoisclient implements the client side of the RFC 3912 WHOIS
// protocol, including the two-step thin→thick resolution used for com
// (§2.2): query the registry for the thin record, extract the sponsoring
// registrar's WHOIS server from it, then query that server for the thick
// record.
package whoisclient

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"repro/internal/obs"
)

// Resolver maps a logical WHOIS server name ("whois.godaddy.com") to a
// dialable TCP address. Production use would be plain DNS; the simulated
// cluster provides its Directory.
type Resolver interface {
	Resolve(serverName string) (string, error)
}

// ResolverFunc adapts a function to Resolver.
type ResolverFunc func(string) (string, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(name string) (string, error) { return f(name) }

// Client issues WHOIS queries.
type Client struct {
	// Resolver maps server names to addresses; required.
	Resolver Resolver
	// Timeout bounds a whole query round trip (default 10s).
	Timeout time.Duration
	// LocalIP, when non-empty, binds outgoing connections to this source
	// address — the crawler uses distinct loopback addresses to model its
	// pool of crawl machines.
	LocalIP string
	// MaxResponse bounds the accepted response size (default 1 MiB).
	MaxResponse int64
	// Metrics, when non-nil, receives per-query observability counts.
	// The crawler keeps one Metrics per target server, so bytes and
	// timeouts are attributable per host.
	Metrics *Metrics
}

// Metrics are a client's observability counters. Queries counts every
// attempt, Errors transport failures (dial/read/send), Timeouts the
// subset of those that were deadline expiries, Bytes response bytes
// read. Protocol-level refusals (rate limits, no-match) are not Errors —
// the crawler accounts for those itself.
type Metrics struct {
	Queries  *obs.Counter
	Errors   *obs.Counter
	Timeouts *obs.Counter
	Bytes    *obs.Counter
}

// NewMetrics creates the client counters in reg under
// <prefix>.queries/.errors/.timeouts/.bytes.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		Queries:  reg.Counter(prefix + ".queries"),
		Errors:   reg.Counter(prefix + ".errors"),
		Timeouts: reg.Counter(prefix + ".timeouts"),
		Bytes:    reg.Counter(prefix + ".bytes"),
	}
}

// fail records a transport error, distinguishing timeouts.
func (m *Metrics) fail(err error) {
	if m == nil {
		return
	}
	m.Errors.Inc()
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, context.DeadlineExceeded) {
		m.Timeouts.Inc()
	}
}

// Errors the client distinguishes.
var (
	ErrRateLimited = errors.New("whoisclient: rate limited by server")
	ErrNoMatch     = errors.New("whoisclient: no match for domain")
	ErrNoReferral  = errors.New("whoisclient: thin record carries no registrar whois server")
	ErrEmpty       = errors.New("whoisclient: empty response")
)

// Query sends one query to the named server and returns the raw response.
func (c *Client) Query(ctx context.Context, serverName, query string) (string, error) {
	if c.Resolver == nil {
		return "", errors.New("whoisclient: nil resolver")
	}
	if c.Metrics != nil {
		c.Metrics.Queries.Inc()
	}
	addr, err := c.Resolver.Resolve(serverName)
	if err != nil {
		return "", fmt.Errorf("whoisclient: resolve %s: %w", serverName, err)
	}
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	dialer := net.Dialer{Timeout: timeout}
	if c.LocalIP != "" {
		dialer.LocalAddr = &net.TCPAddr{IP: net.ParseIP(c.LocalIP)}
	}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		c.Metrics.fail(err)
		return "", fmt.Errorf("whoisclient: dial %s (%s): %w", serverName, addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)

	if _, err := io.WriteString(conn, query+"\r\n"); err != nil {
		c.Metrics.fail(err)
		return "", fmt.Errorf("whoisclient: send query to %s: %w", serverName, err)
	}
	limit := c.MaxResponse
	if limit == 0 {
		limit = 1 << 20
	}
	data, err := io.ReadAll(io.LimitReader(bufio.NewReader(conn), limit))
	if c.Metrics != nil {
		c.Metrics.Bytes.Add(uint64(len(data)))
	}
	if err != nil {
		c.Metrics.fail(err)
		return "", fmt.Errorf("whoisclient: read response from %s: %w", serverName, err)
	}
	resp := strings.ReplaceAll(string(data), "\r\n", "\n")
	resp = strings.TrimRight(resp, "\n")
	switch {
	case resp == "":
		return "", ErrEmpty
	case IsRateLimited(resp):
		return resp, ErrRateLimited
	case IsNoMatch(resp):
		return resp, ErrNoMatch
	}
	return resp, nil
}

// IsRateLimited recognizes rate-limit refusals. Real servers use varied
// phrasings; we match common refusal markers, but only in the first lines
// of the response — legitimate records often carry boilerplate like
// "query rates are limited", which must not be mistaken for a refusal.
func IsRateLimited(resp string) bool {
	head := resp
	if i := strings.IndexByte(head, '\n'); i >= 0 {
		if j := strings.IndexByte(head[i+1:], '\n'); j >= 0 {
			head = head[:i+1+j]
		}
	}
	l := strings.ToLower(head)
	return strings.Contains(l, "rate exceeded") ||
		strings.Contains(l, "access temporarily denied") ||
		strings.Contains(l, "too many requests") ||
		strings.Contains(l, "lookup quota exceeded")
}

// IsNoMatch recognizes negative answers.
func IsNoMatch(resp string) bool {
	l := strings.ToLower(resp)
	return strings.HasPrefix(l, "no match") || strings.Contains(l, "not found")
}

// ExtractReferral pulls the registrar WHOIS server name out of a thin
// record, checking the common field spellings.
func ExtractReferral(thin string) (string, bool) {
	for _, line := range strings.Split(thin, "\n") {
		line = strings.TrimSpace(line)
		lower := strings.ToLower(line)
		for _, key := range []string{"registrar whois server:", "whois server:", "whois:"} {
			if strings.HasPrefix(lower, key) {
				v := strings.TrimSpace(line[len(key):])
				if v != "" {
					return v, true
				}
			}
		}
	}
	return "", false
}

// ThickResult is the outcome of a two-step lookup.
type ThickResult struct {
	Domain      string
	Thin        string
	Thick       string
	WhoisServer string
}

// LookupText returns the best record text available for a domain via the
// named server: the thick record when the two-step referral resolves,
// otherwise the (non-empty) thin record. The cross-protocol consistency
// checker wants "whatever WHOIS answers" to compare against RDAP — a
// thin-only registry or an unreachable registrar server still yields a
// comparable record, just one with more missing fields.
func (c *Client) LookupText(ctx context.Context, server, domain string) (string, error) {
	res, err := c.LookupThick(ctx, server, domain)
	if err == nil {
		return res.Thick, nil
	}
	if res != nil && res.Thin != "" {
		return res.Thin, nil
	}
	return "", err
}

// LookupThick performs the two-step com resolution: thin from the
// registry, referral extraction, thick from the registrar.
func (c *Client) LookupThick(ctx context.Context, registryServer, domain string) (*ThickResult, error) {
	thin, err := c.Query(ctx, registryServer, domain)
	if err != nil {
		return nil, fmt.Errorf("whoisclient: thin lookup %s: %w", domain, err)
	}
	server, ok := ExtractReferral(thin)
	if !ok {
		return &ThickResult{Domain: domain, Thin: thin}, ErrNoReferral
	}
	thick, err := c.Query(ctx, server, domain)
	if err != nil {
		return &ThickResult{Domain: domain, Thin: thin, WhoisServer: server}, fmt.Errorf("whoisclient: thick lookup %s at %s: %w", domain, server, err)
	}
	return &ThickResult{Domain: domain, Thin: thin, Thick: thick, WhoisServer: server}, nil
}
