package whoisclient

import (
	"testing"

	"repro/internal/registry"
	"repro/internal/synth"
)

func TestParseThinAgainstGenerator(t *testing.T) {
	domains := synth.Generate(synth.Config{N: 40, Seed: 901})
	for _, d := range domains {
		thin := registry.ThinRecord(d)
		got := ParseThin(thin)
		if got.DomainName != d.Reg.Domain {
			t.Errorf("domain %q, want %q", got.DomainName, d.Reg.Domain)
		}
		if got.Registrar != d.Reg.RegistrarName {
			t.Errorf("registrar %q, want %q", got.Registrar, d.Reg.RegistrarName)
		}
		if got.WhoisServer != d.Reg.WhoisServer {
			t.Errorf("whois server %q, want %q", got.WhoisServer, d.Reg.WhoisServer)
		}
		if len(got.NameServers) != len(d.Reg.NameServers) {
			t.Errorf("%d name servers, want %d", len(got.NameServers), len(d.Reg.NameServers))
		}
		if got.Created.Year() != d.Reg.Created.Year() {
			t.Errorf("created %v, want year %d", got.Created, d.Reg.Created.Year())
		}
		if got.Expires.Year() != d.Reg.Expires.Year() {
			t.Errorf("expires %v, want year %d", got.Expires, d.Reg.Expires.Year())
		}
		if len(got.Statuses) == 0 {
			t.Error("no statuses parsed")
		}
	}
}

func TestParseThinTolerant(t *testing.T) {
	got := ParseThin("garbage\nno colon here\n: empty key\nRegistrar: X\n")
	if got.Registrar != "X" {
		t.Errorf("registrar %q", got.Registrar)
	}
	empty := ParseThin("")
	if empty.Registrar != "" || len(empty.NameServers) != 0 {
		t.Errorf("empty input parsed to %+v", empty)
	}
}
