package survey

import (
	"fmt"
	"strings"
)

// RenderRows prints a ranked table in the paper's "Name  Count  (%)"
// style.
func RenderRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 12
	for _, r := range rows {
		if len(r.Key) > width {
			width = len(r.Key)
		}
	}
	for _, r := range rows {
		if r.Key == "Total" {
			fmt.Fprintf(&b, "%s\n", strings.Repeat("-", width+22))
		}
		fmt.Fprintf(&b, "%-*s %12d  (%5.1f)\n", width, r.Key, r.Count, r.Pct)
	}
	return b.String()
}

// RenderHistogram prints Figure 4a as an ASCII bar chart.
func RenderHistogram(title string, counts []YearCount) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 1
	for _, yc := range counts {
		if yc.Count > max {
			max = yc.Count
		}
	}
	for _, yc := range counts {
		bar := strings.Repeat("#", yc.Count*50/max)
		fmt.Fprintf(&b, "%4d %8d %s\n", yc.Year, yc.Count, bar)
	}
	return b.String()
}

// RenderMixes prints Figure 4b as per-year proportion rows.
func RenderMixes(title string, mixes []YearMix, labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%4s", "year")
	for _, l := range labels {
		fmt.Fprintf(&b, " %14s", l)
	}
	b.WriteByte('\n')
	for _, m := range mixes {
		fmt.Fprintf(&b, "%4d", m.Year)
		for _, l := range labels {
			fmt.Fprintf(&b, " %13.1f%%", 100*m.Parts[l])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure4bLabels lists the series of Figure 4b in display order.
func Figure4bLabels() []string {
	return []string{"Private", "Unknown", "Other", "United States", "China", "United Kingdom", "France", "Germany"}
}

// RenderRegistrarMixes prints Figure 5's per-registrar top-3 countries.
func RenderRegistrarMixes(title string, mixes []RegistrarMix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, m := range mixes {
		fmt.Fprintf(&b, "%-14s", m.Registrar)
		for _, r := range m.Top {
			fmt.Fprintf(&b, "  %s %.1f%%", r.Key, r.Pct)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
