// Package survey implements the §6 analysis of the paper: given parsed
// WHOIS records it derives per-domain facts (registrant country, registrar,
// creation year, privacy protection, organization) and aggregates them
// into the paper's Tables 3–9 and Figures 4–5.
package survey

import (
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/norm"
)

// Facts are the normalized per-domain values the survey aggregates.
type Facts struct {
	Domain      string
	Registrar   string
	Country     string // canonical country name; "" = unknown
	CreatedYear int    // 0 if unparseable
	Privacy     bool
	PrivacySvc  string // service name when Privacy
	Org         string
	Blacklisted bool // supplied externally (DBL membership)
	// ModelVersion identifies the parser model that produced these facts
	// ("" when unparsed or parsed before model stamping existed). Formats
	// drift and models are retrained mid-corpus, so drift analysis must
	// be able to segment facts by the model that extracted them.
	ModelVersion string
}

// privacyKeywords is the "small set of keywords" of §6.3 matched against
// the registrant name and organization.
var privacyKeywords = []string{
	"privacy", "private", "proxy", "whoisguard", "protect",
	"fbo registrant", "aliyun", "muumuu", "whois agent",
	"private registration", "happy dreamhost",
}

// IsPrivacyProtected applies the keyword test to a name/org pair.
func IsPrivacyProtected(name, org string) bool {
	s := strings.ToLower(name + " " + org)
	for _, k := range privacyKeywords {
		if strings.Contains(s, k) {
			return true
		}
	}
	return false
}

// CanonicalCountry normalizes a registrant country value ("US", "us",
// "United States") to a canonical name; unknown values map to "". The
// canonicalizer itself lives in internal/norm, shared with the
// cross-protocol consistency engine.
func CanonicalCountry(v string) string { return norm.Country(v) }

// ParseDate parses a WHOIS date string in any of the ecosystem's formats
// (see norm.DateLayouts). As a last resort it scans for a plausible
// 4-digit year.
func ParseDate(s string) (time.Time, bool) { return norm.ParseDate(s) }

// FactsFrom derives survey facts from one parsed record. The blacklist
// bit comes from the DBL feed, not from the record.
func FactsFrom(pr *core.ParsedRecord, blacklisted bool) Facts {
	f := Facts{
		Domain:       pr.DomainName,
		Registrar:    pr.Registrar,
		Org:          pr.Registrant.Org,
		Blacklisted:  blacklisted,
		ModelVersion: pr.ModelVersion,
	}
	f.Country = CanonicalCountry(pr.Registrant.Country)
	if t, ok := ParseDate(pr.CreatedDate); ok {
		f.CreatedYear = t.Year()
	}
	if IsPrivacyProtected(pr.Registrant.Name, pr.Registrant.Org) {
		f.Privacy = true
		f.PrivacySvc = pr.Registrant.Name
		if f.PrivacySvc == "" {
			f.PrivacySvc = pr.Registrant.Org
		}
	}
	return f
}

// Row is one line of a ranked table.
type Row struct {
	Key   string
	Count int
	Pct   float64
}

// rank turns a count map into rows sorted by descending count, keeping the
// top n and folding the rest into "(Other)". Keys equal to "" become
// unknownLabel and are listed after (Other), as in the paper's tables.
func rank(counts map[string]int, n int, unknownLabel string) []Row {
	var total, unknown int
	type kv struct {
		k string
		v int
	}
	var all []kv
	for k, v := range counts {
		total += v
		if k == "" {
			unknown += v
			continue
		}
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	var rows []Row
	var other int
	for i, e := range all {
		if i < n {
			rows = append(rows, Row{Key: e.k, Count: e.v})
		} else {
			other += e.v
		}
	}
	if other > 0 {
		rows = append(rows, Row{Key: "(Other)", Count: other})
	}
	if unknown > 0 && unknownLabel != "" {
		rows = append(rows, Row{Key: unknownLabel, Count: unknown})
	}
	if total > 0 {
		for i := range rows {
			rows[i].Pct = 100 * float64(rows[i].Count) / float64(total)
		}
	}
	rows = append(rows, Row{Key: "Total", Count: total, Pct: 100})
	return rows
}

// Survey aggregates facts incrementally: Add folds each domain into
// count maps and discards the facts themselves, so memory is bounded by
// the number of distinct registrars, countries, organizations, and years
// — not by corpus size. At the paper's 102M-domain scale this is the
// difference between streaming a store directory and materializing a
// hundred-gigabyte slice; every table and figure reads the same as the
// slice-backed implementation it replaces.
type Survey struct {
	n int // domains surveyed

	countriesAll  map[string]int            // !Privacy; "" = unknown
	countries2014 map[string]int            // !Privacy && CreatedYear == 2014
	orgsAll       map[string]int            // every fact with Org != "" (Table 4 brand match)
	orgsPublic    map[string]int            // !Privacy && Org != "" (TopOrgs)
	registrars    map[string]int            // every fact
	regs2014      map[string]int            // CreatedYear == 2014
	regsPrivate   map[string]int            // Privacy
	privacySvcs   map[string]int            // Privacy
	bl2014Country map[string]int            // Blacklisted && 2014 && !Privacy
	bl2014Regs    map[string]int            // Blacklisted && 2014
	years         map[int]int               // CreatedYear > 0
	yearLabels    map[int]map[string]int    // Figure 4b label mix per year
	regCountry    map[string]map[string]int // !Privacy: registrar -> country ("[]" = unknown)
}

// New builds a survey over the given facts.
func New(facts []Facts) *Survey {
	s := &Survey{}
	for _, f := range facts {
		s.Add(f)
	}
	return s
}

func bump(m *map[string]int, k string) {
	if *m == nil {
		*m = make(map[string]int)
	}
	(*m)[k]++
}

// Add folds one domain's facts into the aggregates.
func (s *Survey) Add(f Facts) {
	s.n++
	bump(&s.registrars, f.Registrar)
	if f.CreatedYear == 2014 {
		bump(&s.regs2014, f.Registrar)
	}
	if f.Org != "" {
		bump(&s.orgsAll, f.Org)
	}
	if f.Privacy {
		bump(&s.regsPrivate, f.Registrar)
		bump(&s.privacySvcs, f.PrivacySvc)
	} else {
		bump(&s.countriesAll, f.Country)
		if f.CreatedYear == 2014 {
			bump(&s.countries2014, f.Country)
		}
		if f.Org != "" {
			bump(&s.orgsPublic, f.Org)
		}
		country := f.Country
		if country == "" {
			country = "[]"
		}
		if s.regCountry == nil {
			s.regCountry = make(map[string]map[string]int)
		}
		m := s.regCountry[f.Registrar]
		if m == nil {
			m = make(map[string]int)
			s.regCountry[f.Registrar] = m
		}
		m[country]++
	}
	if f.Blacklisted && f.CreatedYear == 2014 {
		bump(&s.bl2014Regs, f.Registrar)
		if !f.Privacy {
			bump(&s.bl2014Country, f.Country)
		}
	}
	if f.CreatedYear > 0 {
		if s.years == nil {
			s.years = make(map[int]int)
		}
		s.years[f.CreatedYear]++
		if s.yearLabels == nil {
			s.yearLabels = make(map[int]map[string]int)
		}
		m := s.yearLabels[f.CreatedYear]
		if m == nil {
			m = make(map[string]int)
			s.yearLabels[f.CreatedYear] = m
		}
		m[figure4bLabel(f)]++
	}
}

// figure4bLabel buckets one domain for Figure 4b.
func figure4bLabel(f Facts) string {
	if f.Privacy {
		return "Private"
	}
	if f.Country == "" {
		return "Unknown"
	}
	for _, c := range figure4bCountries {
		if f.Country == c {
			return c
		}
	}
	return "Other"
}

// Len reports the number of domains surveyed.
func (s *Survey) Len() int { return s.n }

// Table3 ranks registrant countries (privacy-protected domains excluded,
// unknown-country counted) for all time and for 2014 only.
func (s *Survey) Table3() (allTime, in2014 []Row) {
	return rank(s.countriesAll, 10, "(Unknown)"), rank(s.countries2014, 10, "(Unknown)")
}

// Table4 counts domains per known brand organization, ranked.
func (s *Survey) Table4(brands []string) []Row {
	canon := make(map[string]string)
	for _, b := range brands {
		canon[strings.ToLower(b)] = b
	}
	counts := make(map[string]int)
	for org, c := range s.orgsAll {
		if b, ok := canon[strings.ToLower(org)]; ok {
			counts[b] += c
		}
	}
	var rows []Row
	for b, c := range counts {
		rows = append(rows, Row{Key: b, Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

// TopOrgs ranks ALL registrant organizations by domain count — the §6.1
// observation that domain sellers, online marketers and hosting companies
// hold the largest portfolios, ahead of the brand companies of Table 4.
func (s *Survey) TopOrgs(n int) []Row {
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(s.orgsPublic))
	for k, v := range s.orgsPublic {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]Row, 0, n)
	for _, e := range all[:n] {
		out = append(out, Row{Key: e.k, Count: e.v})
	}
	return out
}

// Table5 ranks registrars for all time and 2014.
func (s *Survey) Table5() (allTime, in2014 []Row) {
	return rank(s.registrars, 10, "(Unknown)"), rank(s.regs2014, 10, "(Unknown)")
}

// Table6 ranks registrars among privacy-protected domains.
func (s *Survey) Table6() []Row {
	return rank(s.regsPrivate, 10, "(Unknown)")
}

// Table7 ranks privacy-protection services.
func (s *Survey) Table7() []Row {
	return rank(s.privacySvcs, 10, "(Unknown)")
}

// Table8 ranks registrant countries of blacklisted 2014 domains.
func (s *Survey) Table8() []Row {
	return rank(s.bl2014Country, 10, "(Unknown)")
}

// Table9 ranks registrars of blacklisted 2014 domains.
func (s *Survey) Table9() []Row {
	return rank(s.bl2014Regs, 10, "(Unknown)")
}

// YearCount is one histogram bucket for Figure 4a.
type YearCount struct {
	Year  int
	Count int
}

// Figure4a returns the creation-date histogram.
func (s *Survey) Figure4a() []YearCount {
	years := make([]int, 0, len(s.years))
	for y := range s.years {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearCount, 0, len(years))
	for _, y := range years {
		out = append(out, YearCount{Year: y, Count: s.years[y]})
	}
	return out
}

// YearMix is one year's composition for Figure 4b.
type YearMix struct {
	Year  int
	Parts map[string]float64 // label -> proportion; sums to 1
}

// figure4bCountries are the explicit series of Figure 4b.
var figure4bCountries = []string{"United States", "China", "United Kingdom", "France", "Germany"}

// Figure4b returns the per-year proportions of the top countries plus
// Private, Unknown and Other, from firstYear on.
func (s *Survey) Figure4b(firstYear int) []YearMix {
	years := make([]int, 0, len(s.yearLabels))
	for y := range s.yearLabels {
		if y >= firstYear {
			years = append(years, y)
		}
	}
	sort.Ints(years)
	out := make([]YearMix, 0, len(years))
	for _, y := range years {
		var total int
		for _, c := range s.yearLabels[y] {
			total += c
		}
		mix := YearMix{Year: y, Parts: make(map[string]float64)}
		for lbl, c := range s.yearLabels[y] {
			mix.Parts[lbl] = float64(c) / float64(total)
		}
		out = append(out, mix)
	}
	return out
}

// RegistrarMix is one registrar's registrant-country composition for
// Figure 5. Unknown countries appear under the "[]" label, as the paper's
// figure annotates HiChina's records lacking country information.
type RegistrarMix struct {
	Registrar string
	Top       []Row // top 3 countries (or "[]") with Pct of that registrar
}

// Figure5 computes the top-3 registrant-country mix for registrars whose
// name contains one of the given substrings (privacy-protected domains
// excluded, matching §6.2's treatment).
func (s *Survey) Figure5(registrarSubstrings []string) []RegistrarMix {
	out := make([]RegistrarMix, 0, len(registrarSubstrings))
	for _, sub := range registrarSubstrings {
		counts := make(map[string]int)
		total := 0
		for reg, perCountry := range s.regCountry {
			if !strings.Contains(strings.ToLower(reg), strings.ToLower(sub)) {
				continue
			}
			for country, c := range perCountry {
				counts[country] += c
				total += c
			}
		}
		type kv struct {
			k string
			v int
		}
		var all []kv
		for k, v := range counts {
			all = append(all, kv{k, v})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].v != all[j].v {
				return all[i].v > all[j].v
			}
			return all[i].k < all[j].k
		})
		mix := RegistrarMix{Registrar: sub}
		for i, e := range all {
			if i >= 3 {
				break
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(e.v) / float64(total)
			}
			mix.Top = append(mix.Top, Row{Key: e.k, Count: e.v, Pct: pct})
		}
		out = append(out, mix)
	}
	return out
}
