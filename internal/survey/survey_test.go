package survey

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestParseDateFormats(t *testing.T) {
	cases := map[string]int{
		"2015-02-27T10:00:00Z":         2015,
		"2014-06-01":                   2014,
		"27-Feb-2013":                  2013,
		"2012/03/04":                   2012,
		"04.03.2011":                   2011,
		"2010.03.04":                   2010,
		"Mon Jan 06 15:04:05 GMT 2014": 2014,
		"Jan 02, 2009":                 2009,
		"January 2, 2008":              2008,
		"2 January 2007":               2007,
		"20060102":                     2006,
		"02-Jan-2005 15:04:05 UTC":     2005,
		"2004/01/02 15:04:05 (JST)":    2004,
	}
	for in, wantYear := range cases {
		got, ok := ParseDate(in)
		if !ok {
			t.Errorf("ParseDate(%q) failed", in)
			continue
		}
		if got.Year() != wantYear {
			t.Errorf("ParseDate(%q).Year() = %d, want %d", in, got.Year(), wantYear)
		}
	}
}

func TestParseDateFallbackYearScan(t *testing.T) {
	got, ok := ParseDate("registered sometime in 2003 we think")
	if !ok || got.Year() != 2003 {
		t.Errorf("fallback year scan got (%v, %v)", got, ok)
	}
	if _, ok := ParseDate("no year here"); ok {
		t.Error("parsed a date from yearless text")
	}
	if _, ok := ParseDate(""); ok {
		t.Error("parsed a date from empty text")
	}
	// Digits adjacent to a year-like run must not count.
	if _, ok := ParseDate("id 120140"); ok {
		t.Error("embedded digit run misread as year")
	}
}

func TestCanonicalCountry(t *testing.T) {
	cases := map[string]string{
		"US":            "United States",
		"us":            "United States",
		"United States": "United States",
		"USA":           "United States",
		"UK":            "United Kingdom",
		"GB":            "United Kingdom",
		"cn":            "China",
		" Japan ":       "Japan",
		"Korea":         "South Korea",
		"Atlantis":      "",
		"":              "",
	}
	for in, want := range cases {
		if got := CanonicalCountry(in); got != want {
			t.Errorf("CanonicalCountry(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsPrivacyProtected(t *testing.T) {
	yes := [][2]string{
		{"Domains By Proxy, LLC", ""},
		{"", "WhoisGuard, Inc."},
		{"Whois Privacy Protection Service", ""},
		{"FBO REGISTRANT", ""},
		{"Aliyun Computing Co., Ltd", ""},
	}
	for _, c := range yes {
		if !IsPrivacyProtected(c[0], c[1]) {
			t.Errorf("IsPrivacyProtected(%q, %q) = false", c[0], c[1])
		}
	}
	if IsPrivacyProtected("John Smith", "Acme Inc.") {
		t.Error("ordinary registrant flagged as privacy")
	}
}

func mkFacts() []Facts {
	return []Facts{
		{Domain: "a.com", Registrar: "GoDaddy", Country: "United States", CreatedYear: 2013},
		{Domain: "b.com", Registrar: "GoDaddy", Country: "United States", CreatedYear: 2014},
		{Domain: "c.com", Registrar: "eNom", Country: "China", CreatedYear: 2014},
		{Domain: "d.com", Registrar: "eNom", Country: "", CreatedYear: 2014},
		{Domain: "e.com", Registrar: "GoDaddy", CreatedYear: 2014, Privacy: true, PrivacySvc: "Domains By Proxy"},
		{Domain: "f.com", Registrar: "eNom", Country: "Japan", CreatedYear: 2014, Blacklisted: true},
		{Domain: "g.com", Registrar: "GMO", Country: "Japan", CreatedYear: 2012},
	}
}

func TestTable3ExcludesPrivacyCountsUnknown(t *testing.T) {
	s := New(mkFacts())
	all, y2014 := s.Table3()
	// 6 non-privacy facts total.
	if total := all[len(all)-1]; total.Key != "Total" || total.Count != 6 {
		t.Errorf("all-time total row: %+v", total)
	}
	foundUnknown := false
	for _, r := range all {
		if r.Key == "(Unknown)" {
			foundUnknown = true
			if r.Count != 1 {
				t.Errorf("unknown count %d", r.Count)
			}
		}
		if r.Key == "Domains By Proxy" {
			t.Error("privacy service leaked into country table")
		}
	}
	if !foundUnknown {
		t.Error("no (Unknown) row")
	}
	if y2014[0].Key != "United States" && y2014[0].Key != "China" && y2014[0].Key != "Japan" {
		t.Errorf("2014 head row: %+v", y2014[0])
	}
}

func TestTable5CountsAllRecords(t *testing.T) {
	s := New(mkFacts())
	all, _ := s.Table5()
	var goDaddy int
	for _, r := range all {
		if r.Key == "GoDaddy" {
			goDaddy = r.Count
		}
	}
	if goDaddy != 3 {
		t.Errorf("GoDaddy count %d, want 3 (privacy records still count)", goDaddy)
	}
}

func TestTables6And7(t *testing.T) {
	s := New(mkFacts())
	t6 := s.Table6()
	if t6[0].Key != "GoDaddy" || t6[0].Count != 1 {
		t.Errorf("table 6 head: %+v", t6[0])
	}
	t7 := s.Table7()
	if t7[0].Key != "Domains By Proxy" {
		t.Errorf("table 7 head: %+v", t7[0])
	}
}

func TestTables8And9(t *testing.T) {
	s := New(mkFacts())
	t8 := s.Table8()
	if t8[0].Key != "Japan" || t8[0].Count != 1 {
		t.Errorf("table 8: %+v", t8)
	}
	t9 := s.Table9()
	if t9[0].Key != "eNom" {
		t.Errorf("table 9: %+v", t9)
	}
}

func TestFigure4a(t *testing.T) {
	s := New(mkFacts())
	hist := s.Figure4a()
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Year <= hist[i-1].Year {
			t.Error("years not sorted")
		}
	}
	var y2014 int
	for _, yc := range hist {
		if yc.Year == 2014 {
			y2014 = yc.Count
		}
	}
	if y2014 != 5 {
		t.Errorf("2014 count %d, want 5", y2014)
	}
}

func TestFigure4bProportionsSumToOne(t *testing.T) {
	s := New(mkFacts())
	for _, mix := range s.Figure4b(2000) {
		var sum float64
		for _, p := range mix.Parts {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("year %d proportions sum to %v", mix.Year, sum)
		}
	}
}

func TestFigure5(t *testing.T) {
	s := New(mkFacts())
	mixes := s.Figure5([]string{"eNom", "GMO"})
	if len(mixes) != 2 {
		t.Fatalf("got %d mixes", len(mixes))
	}
	// eNom has CN, JP and one unknown ("[]"); privacy excluded.
	if len(mixes[0].Top) != 3 {
		t.Errorf("eNom top: %+v", mixes[0].Top)
	}
	sawBracket := false
	for _, r := range mixes[0].Top {
		if r.Key == "[]" {
			sawBracket = true
		}
	}
	if !sawBracket {
		t.Error("unknown country should render as [] (Figure 5)")
	}
}

func TestRankFoldsOther(t *testing.T) {
	counts := map[string]int{"a": 10, "b": 8, "c": 3, "d": 2, "": 1}
	rows := rank(counts, 2, "(Unknown)")
	// a, b, (Other)=5, (Unknown)=1, Total=24
	if len(rows) != 5 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[2].Key != "(Other)" || rows[2].Count != 5 {
		t.Errorf("other row: %+v", rows[2])
	}
	if rows[3].Key != "(Unknown)" || rows[3].Count != 1 {
		t.Errorf("unknown row: %+v", rows[3])
	}
	if rows[4].Key != "Total" || rows[4].Count != 24 {
		t.Errorf("total row: %+v", rows[4])
	}
	var pct float64
	for _, r := range rows[:4] {
		pct += r.Pct
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("percentages sum to %v", pct)
	}
}

func TestFactsFrom(t *testing.T) {
	pr := &core.ParsedRecord{
		DomainName:  "x.com",
		Registrar:   "GoDaddy",
		CreatedDate: "2013-05-06",
		Registrant: core.Contact{
			Name:    "Domains By Proxy, LLC",
			Org:     "Domains By Proxy, LLC",
			Country: "US",
		},
	}
	f := FactsFrom(pr, true)
	if !f.Privacy || f.PrivacySvc == "" {
		t.Errorf("privacy not detected: %+v", f)
	}
	if f.CreatedYear != 2013 {
		t.Errorf("year %d", f.CreatedYear)
	}
	if f.Country != "United States" {
		t.Errorf("country %q", f.Country)
	}
	if !f.Blacklisted {
		t.Error("blacklist bit lost")
	}
}

func TestRenderRows(t *testing.T) {
	out := RenderRows("Title", []Row{{Key: "US", Count: 10, Pct: 50}, {Key: "Total", Count: 20, Pct: 100}})
	if !strings.Contains(out, "Title") || !strings.Contains(out, "US") {
		t.Errorf("render: %q", out)
	}
	if !strings.Contains(out, "50.0") {
		t.Errorf("percent missing: %q", out)
	}
}

func TestRenderHistogram(t *testing.T) {
	out := RenderHistogram("H", []YearCount{{2013, 5}, {2014, 10}})
	if !strings.Contains(out, "2014") || !strings.Contains(out, "##") {
		t.Errorf("histogram: %q", out)
	}
}

func TestParseDateTimeSanity(t *testing.T) {
	// The layouts must parse to the exact day, not just the year.
	got, ok := ParseDate("27-Feb-2013")
	if !ok || !got.Equal(time.Date(2013, 2, 27, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("got %v", got)
	}
}

func TestFigure5AbsentRegistrar(t *testing.T) {
	s := New(mkFacts())
	mixes := s.Figure5([]string{"NoSuchRegistrar"})
	if len(mixes) != 1 || len(mixes[0].Top) != 0 {
		t.Errorf("absent registrar mix: %+v", mixes)
	}
}

func TestTable4IgnoresUnknownOrgs(t *testing.T) {
	s := New([]Facts{{Org: "Some Random LLC"}, {Org: "Amazon Technologies, Inc."}})
	rows := s.Table4([]string{"Amazon Technologies, Inc."})
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Errorf("table4: %+v", rows)
	}
}

func TestFigure4bSkipsUnparseableYears(t *testing.T) {
	s := New([]Facts{{Country: "Japan", CreatedYear: 0}, {Country: "Japan", CreatedYear: 2010}})
	mixes := s.Figure4b(1995)
	if len(mixes) != 1 || mixes[0].Year != 2010 {
		t.Errorf("mixes: %+v", mixes)
	}
}

func TestTopOrgs(t *testing.T) {
	s := New([]Facts{
		{Org: "BuyDomains.com"}, {Org: "BuyDomains.com"}, {Org: "BuyDomains.com"},
		{Org: "Acme"}, {Org: "Acme"},
		{Org: "Solo"},
		{Org: "Hidden", Privacy: true}, // privacy records excluded
		{Org: ""},                      // empty orgs excluded
	})
	rows := s.TopOrgs(2)
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Key != "BuyDomains.com" || rows[0].Count != 3 {
		t.Errorf("top org: %+v", rows[0])
	}
	if rows[1].Key != "Acme" || rows[1].Count != 2 {
		t.Errorf("second org: %+v", rows[1])
	}
}
