// Package templatebased implements the paper's template-based baseline
// (§2.3): a parser built from one exact template per registrar, in the
// style of deft-whois, Ruby whois and WhoisParser. Records are first
// classified by registrar; if no template exists the parse fails with
// ErrNoTemplate (the "crisp failure signal"), and if the record's lines
// deviate from the stored template — a renamed title, a reordered field, a
// new boilerplate sentence — the parse fails with ErrMismatch. That
// fragility to minor format change is the point the paper demonstrates
// with deft-whois's 94% template coverage but near-total failure under
// drift.
package templatebased

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// ErrNoTemplate reports that the record's registrar has no template.
var ErrNoTemplate = errors.New("templatebased: no template for registrar")

// ErrMismatch reports that a line did not match the registrar's template.
var ErrMismatch = errors.New("templatebased: record deviates from template")

// template is the per-registrar line catalog. Titled lines are keyed on
// their exact *prefix* — the rendered title plus separator, byte for byte —
// because real template parsers anchor regexes on the literal "Title: "
// text; even a separator change ("Title : ") breaks them (§2.3).
type template struct {
	titleBlock map[string]labels.Block
	titleField map[string]labels.Field
	rawBlock   map[string]labels.Block // exact trimmed text -> block
	headers    map[string]labels.Block // exact trimmed header -> context block
}

// linePrefix extracts the literal title+separator prefix of a titled line.
func linePrefix(ln tokenize.Line) string { return prefixOf(ln.Raw, ln.Title, ln.Value) }

// prefixOf derives the title+separator prefix from the raw line text —
// the template key both Build and the compiled fast path (Match) use.
// Every return value is a substring of raw (or the already-materialized
// title), so key derivation on the hot matching path is allocation-free
// and needs no tokenize.Line.
func prefixOf(raw, title, value string) string {
	end := len(raw)
	for end > 0 && (raw[end-1] == ' ' || raw[end-1] == '\t') {
		end--
	}
	raw = raw[:end]
	if value == "" {
		return raw
	}
	if i := strings.LastIndex(raw, value); i >= 0 {
		return raw[:i]
	}
	return title
}

func newTemplate() *template {
	return &template{
		titleBlock: make(map[string]labels.Block),
		titleField: make(map[string]labels.Field),
		rawBlock:   make(map[string]labels.Block),
		headers:    make(map[string]labels.Block),
	}
}

// Parser holds one template per registrar.
type Parser struct {
	templates map[string]*template
	opts      tokenize.Options
}

// Build learns templates from labeled records keyed by their Registrar
// field (real template parsers key on the registrar WHOIS server extracted
// from the thin record; our LabeledRecord carries the same identity).
func Build(records []*labels.LabeledRecord, opts tokenize.Options) *Parser {
	p := &Parser{templates: make(map[string]*template), opts: opts}
	// Registrar keys repeat once per training record; intern them so the
	// template map, the compiled detection index, and the tiered router's
	// per-template state all share one string instance per registrar.
	intern := make(map[string]string)
	for _, rec := range records {
		reg, ok := intern[rec.Registrar]
		if !ok {
			reg = rec.Registrar
			intern[reg] = reg
		}
		t := p.templates[reg]
		if t == nil {
			t = newTemplate()
			p.templates[reg] = t
		}
		lines := tokenize.Tokenize(rec.Text, opts)
		if len(lines) != len(rec.Lines) {
			continue
		}
		for i, ln := range lines {
			lab := rec.Lines[i]
			trimmed := strings.TrimSpace(ln.Raw)
			switch {
			case ln.HasSep && ln.Value != "":
				t.titleBlock[linePrefix(ln)] = lab.Block
				t.titleField[linePrefix(ln)] = lab.Field
			case isHeader(ln):
				t.headers[trimmed] = lab.Block
			default:
				if lab.Block == labels.Null {
					t.rawBlock[trimmed] = lab.Block
				}
				// Bare instance-data lines are covered by header context.
			}
		}
	}
	return p
}

func isHeader(ln tokenize.Line) bool {
	trimmed := strings.TrimSpace(ln.Raw)
	if ln.HasSep && ln.Value == "" {
		return true
	}
	return strings.HasSuffix(trimmed, ":") && len(tokenize.Words(trimmed)) <= 7
}

// NumTemplates reports how many registrars have templates.
func (p *Parser) NumTemplates() int { return len(p.templates) }

// HasTemplate reports whether a registrar is covered.
func (p *Parser) HasTemplate(registrar string) bool {
	_, ok := p.templates[registrar]
	return ok
}

// Coverage returns the fraction of records whose registrar has a template
// (the §2.3 "94% of our test data comes from registrars ... represented by
// these templates" metric).
func (p *Parser) Coverage(records []*labels.LabeledRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	n := 0
	for _, rec := range records {
		if p.HasTemplate(rec.Registrar) {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// ParseBlocks labels a record using its registrar's template. Unlike the
// rule-based and statistical parsers it requires the registrar identity,
// exactly as real template parsers do, and it fails crisply.
func (p *Parser) ParseBlocks(registrar, text string) ([]tokenize.Line, []labels.Block, error) {
	t := p.templates[registrar]
	if t == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoTemplate, registrar)
	}
	lines := tokenize.Tokenize(text, p.opts)
	out := make([]labels.Block, len(lines))
	context := labels.Null
	haveContext := false
	for i, ln := range lines {
		trimmed := strings.TrimSpace(ln.Raw)
		for _, o := range ln.Obs {
			if o == tokenize.MarkNL {
				haveContext = false
			}
		}
		switch {
		case isHeader(ln):
			if b, ok := t.headers[trimmed]; ok {
				out[i] = b
				context, haveContext = b, true
				continue
			}
			if ln.HasSep {
				if b, ok := t.titleBlock[linePrefix(ln)]; ok {
					out[i] = b
					context, haveContext = b, true
					continue
				}
			}
			return lines, nil, fmt.Errorf("%w: unknown header %q", ErrMismatch, trimmed)
		case ln.HasSep:
			if b, ok := t.titleBlock[linePrefix(ln)]; ok {
				out[i] = b
				continue
			}
			return lines, nil, fmt.Errorf("%w: unknown title %q", ErrMismatch, ln.Title)
		default:
			if b, ok := t.rawBlock[trimmed]; ok {
				out[i] = b
				haveContext = false
				continue
			}
			if haveContext {
				out[i] = context
				continue
			}
			return lines, nil, fmt.Errorf("%w: unexpected line %q", ErrMismatch, trimmed)
		}
	}
	return lines, out, nil
}

// ParseFields assigns second-level labels using the template's exact title
// rules. Bare registrant lines cannot be distinguished by an exact
// template, so they are labeled other — a structural limitation of the
// approach.
func (p *Parser) ParseFields(registrar string, lines []tokenize.Line, blocks []labels.Block) ([]labels.Field, error) {
	t := p.templates[registrar]
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTemplate, registrar)
	}
	out := make([]labels.Field, len(lines))
	for i := range out {
		out[i] = labels.FieldOther
	}
	for i, ln := range lines {
		if blocks[i] != labels.Registrant || !ln.HasSep || ln.Value == "" {
			continue
		}
		if f, ok := t.titleField[linePrefix(ln)]; ok {
			out[i] = f
		}
	}
	return out, nil
}
