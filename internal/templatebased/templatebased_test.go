package templatebased

import (
	"errors"
	"testing"

	"repro/internal/labels"
	"repro/internal/synth"
	"repro/internal/tokenize"
)

func TestParseMatchesTrainingDistribution(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 600, Seed: 31})
	p := Build(recs[:400], tokenize.Options{})
	okDocs, covered := 0, 0
	var lineErr, lines int
	for _, rec := range recs[400:] {
		if !p.HasTemplate(rec.Registrar) {
			continue
		}
		covered++
		got, blocks, err := p.ParseBlocks(rec.Registrar, rec.Text)
		if err != nil {
			continue
		}
		okDocs++
		_ = got
		for i := range rec.Lines {
			lines++
			if blocks[i] != rec.Lines[i].Block {
				lineErr++
			}
		}
	}
	if covered == 0 {
		t.Fatal("no coverage at all")
	}
	if rate := float64(okDocs) / float64(covered); rate < 0.9 {
		t.Errorf("in-distribution success only %.3f", rate)
	}
	if lines > 0 && float64(lineErr)/float64(lines) > 0.01 {
		t.Errorf("line error %.4f on successfully parsed records", float64(lineErr)/float64(lines))
	}
}

func TestNoTemplateFailsCrisply(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 50, Seed: 32})
	p := Build(recs, tokenize.Options{})
	_, _, err := p.ParseBlocks("Unknown Registrar Ltd.", "Domain Name: x.com")
	if !errors.Is(err, ErrNoTemplate) {
		t.Errorf("got %v, want ErrNoTemplate", err)
	}
}

func TestDriftBreaksTemplates(t *testing.T) {
	// §2.3: minor format changes cause template parsers to fail on the
	// vast majority of records.
	snapshot := synth.GenerateLabeled(synth.Config{N: 800, Seed: 33})
	p := Build(snapshot, tokenize.Options{})
	drifted := synth.GenerateLabeled(synth.Config{N: 400, Seed: 34, DriftFraction: 1.0})
	fails := 0
	covered := 0
	for _, rec := range drifted {
		if !p.HasTemplate(rec.Registrar) {
			continue
		}
		covered++
		if _, _, err := p.ParseBlocks(rec.Registrar, rec.Text); err != nil {
			if !errors.Is(err, ErrMismatch) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	if covered == 0 {
		t.Fatal("no covered drifted records")
	}
	if rate := float64(fails) / float64(covered); rate < 0.5 {
		t.Errorf("only %.3f of drifted records failed; template fragility should dominate", rate)
	}
}

func TestCoverage(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 500, Seed: 35})
	p := Build(recs[:250], tokenize.Options{})
	cov := p.Coverage(recs[250:])
	if cov <= 0.5 || cov > 1.0 {
		t.Errorf("coverage %.3f out of plausible range", cov)
	}
	if p.Coverage(nil) != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestParseFieldsUsesTemplateTitles(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 300, Seed: 36})
	p := Build(recs, tokenize.Options{})
	// Find a record with titled registrant lines.
	for _, rec := range recs {
		lines, blocks, err := p.ParseBlocks(rec.Registrar, rec.Text)
		if err != nil {
			continue
		}
		fields, err := p.ParseFields(rec.Registrar, lines, blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rec.Lines {
			if rec.Lines[i].Block != labels.Registrant || !lines[i].HasSep || lines[i].Value == "" {
				continue
			}
			if blocks[i] == labels.Registrant && fields[i] != rec.Lines[i].Field {
				t.Errorf("record %s line %d: field %v, want %v",
					rec.Domain, i, fields[i], rec.Lines[i].Field)
			}
		}
		return // one thorough record is enough
	}
	t.Fatal("no record parsed cleanly")
}

func TestParseFieldsNoTemplate(t *testing.T) {
	p := Build(nil, tokenize.Options{})
	if _, err := p.ParseFields("nobody", nil, nil); !errors.Is(err, ErrNoTemplate) {
		t.Errorf("got %v, want ErrNoTemplate", err)
	}
}

func TestNumTemplatesGrowsWithRegistrars(t *testing.T) {
	recs := synth.GenerateLabeled(synth.Config{N: 400, Seed: 37})
	small := Build(recs[:40], tokenize.Options{})
	large := Build(recs, tokenize.Options{})
	if large.NumTemplates() < small.NumTemplates() {
		t.Errorf("template count shrank: %d -> %d", small.NumTemplates(), large.NumTemplates())
	}
}
