// The compiled fast path: the same per-registrar exact templates as
// Parser, rebuilt into a form a serving tier can afford to run on every
// request. Compile flattens Build's output into per-registrar match
// tables plus a registrar *detection* index (exact "Registrar: <name>"
// lines seen in training), and Match labels a record with substring
// operations only — no tokenize.Tokenize, no observation lists, no
// lattice. A hit costs a few map probes per line; a miss is a bare
// sentinel error. This is tier L0 of internal/tiered.
package templatebased

import (
	"sort"
	"strings"

	"repro/internal/labels"
	"repro/internal/tokenize"
)

// rule is the compiled action for one known line prefix: the block label,
// and the registrant field label applied when the line carries a value.
type rule struct {
	block labels.Block
	field labels.Field
}

// compiledTemplate is one registrar's flattened match tables.
type compiledTemplate struct {
	registrar string                  // interned registrar key
	title     map[string]rule         // title+separator prefix -> labels
	raw       map[string]labels.Block // exact trimmed bare line -> block
	headers   map[string]labels.Block // exact trimmed header -> context block
}

// Compiled is a set of compiled templates plus the registrar detection
// index. It is immutable after Compile and safe for concurrent Match.
type Compiled struct {
	templates map[string]*compiledTemplate
	// detect maps exact trimmed registrar-identity lines ("Registrar:
	// Foo, Inc.") to their template. Lines whose text appears under two
	// different registrars are ambiguous and removed.
	detect map[string]*compiledTemplate
	layout bool // whether blank-line NL markers reset header context
}

// Match is the result of a successful L0 template match. Lines carry Raw,
// Title, Value and HasSep but no Obs (observations exist only for the
// CRF); Blocks and Fields align with Lines exactly as Parser.ParseBlocks
// and Parser.ParseFields would produce them.
type Match struct {
	Registrar string
	Lines     []tokenize.Line
	Blocks    []labels.Block
	Fields    []labels.Field
	// Confidence is the fraction of retained lines matched by an exact
	// template entry (header, title prefix, or bare-line catalog). Lines
	// labeled only by header-context carry — where an exact template
	// cannot actually distinguish field content — dilute it, so
	// bare-heavy formats route to the CRF even when they technically
	// match.
	Confidence float64
}

// Compile builds the fast-path matcher from labeled records, using the
// same template induction as Build plus a registrar detection index.
// Records whose tokenization disagrees with their labels are skipped,
// mirroring Build.
func Compile(records []*labels.LabeledRecord, opts tokenize.Options) *Compiled {
	c := &Compiled{
		templates: make(map[string]*compiledTemplate),
		detect:    make(map[string]*compiledTemplate),
		layout:    !opts.DisableLayout,
	}
	ambiguous := make(map[string]bool)
	intern := make(map[string]string)
	for _, rec := range records {
		reg, ok := intern[rec.Registrar]
		if !ok {
			reg = rec.Registrar
			intern[reg] = reg
		}
		t := c.templates[reg]
		if t == nil {
			t = &compiledTemplate{
				registrar: reg,
				title:     make(map[string]rule),
				raw:       make(map[string]labels.Block),
				headers:   make(map[string]labels.Block),
			}
			c.templates[reg] = t
		}
		lines := tokenize.Tokenize(rec.Text, opts)
		if len(lines) != len(rec.Lines) {
			continue
		}
		for i, ln := range lines {
			lab := rec.Lines[i]
			trimmed := strings.TrimSpace(ln.Raw)
			switch {
			case ln.HasSep && ln.Value != "":
				t.title[linePrefix(ln)] = rule{block: lab.Block, field: lab.Field}
				// A line that literally names the registrar identifies
				// the template: index its exact text for detection.
				if ln.Value == rec.Registrar && !ambiguous[trimmed] {
					if prev, ok := c.detect[trimmed]; ok && prev != t {
						delete(c.detect, trimmed)
						ambiguous[trimmed] = true
					} else {
						c.detect[trimmed] = t
					}
				}
			case isHeader(ln):
				t.headers[trimmed] = lab.Block
			default:
				if lab.Block == labels.Null {
					t.raw[trimmed] = lab.Block
				}
			}
		}
	}
	return c
}

// NumTemplates reports how many registrars compiled.
func (c *Compiled) NumTemplates() int { return len(c.templates) }

// HasTemplate reports whether a registrar compiled a template.
func (c *Compiled) HasTemplate(registrar string) bool {
	_, ok := c.templates[registrar]
	return ok
}

// Registrars returns the compiled registrar keys, sorted — for status
// endpoints and the tiered router's per-template state.
func (c *Compiled) Registrars() []string {
	out := make([]string, 0, len(c.templates))
	for reg := range c.templates {
		out = append(out, reg)
	}
	sort.Strings(out)
	return out
}

// Detect scans the record text for an exact registrar-identity line and
// returns the owning registrar key (interned) plus the number of retained
// lines. It returns ("", n) when no template claims the record. The scan
// is allocation-free.
func (c *Compiled) Detect(text string) (string, int) {
	reg := ""
	n := 0
	for i := 0; i <= len(text); {
		j := strings.IndexByte(text[i:], '\n')
		var raw string
		if j < 0 {
			raw = text[i:]
			i = len(text) + 1
		} else {
			raw = text[i : i+j]
			i += j + 1
		}
		raw = strings.TrimRight(raw, "\r")
		if !tokenize.HasAlnum(raw) {
			continue
		}
		n++
		if reg == "" {
			if t, ok := c.detect[strings.TrimSpace(raw)]; ok {
				reg = t.registrar
			}
		}
	}
	return reg, n
}

// Match labels a record against its detected template. It returns
// ErrNoTemplate (bare, allocation-free) when no registrar-identity line is
// recognized, and ErrMismatch when any retained line deviates from the
// template — the same crisp failure semantics as Parser, minus the
// wrapped detail (the caller is a router, not a human).
//
// On success the Match's Lines/Blocks/Fields are exactly what
// Parser.ParseBlocks + Parser.ParseFields produce for the same record
// under the same tokenize.Options, except Lines[i].Obs is nil.
func (c *Compiled) Match(text string) (Match, error) {
	reg, n := c.Detect(text)
	if reg == "" {
		return Match{}, ErrNoTemplate
	}
	t := c.templates[reg]
	m := Match{
		Registrar: reg,
		Lines:     make([]tokenize.Line, 0, n),
		Blocks:    make([]labels.Block, 0, n),
		Fields:    make([]labels.Field, 0, n),
	}
	exact := 0
	context := labels.Null
	haveContext := false
	pendingNL := false
	for i := 0; i <= len(text); {
		j := strings.IndexByte(text[i:], '\n')
		var raw string
		if j < 0 {
			raw = text[i:]
			i = len(text) + 1
		} else {
			raw = text[i : i+j]
			i += j + 1
		}
		raw = strings.TrimRight(raw, "\r")
		if !tokenize.HasAlnum(raw) {
			pendingNL = true
			continue
		}
		trimmed := strings.TrimSpace(raw)
		title, value, hasSep := tokenize.SplitTitleValue(trimmed)
		if pendingNL {
			pendingNL = false
			if c.layout {
				haveContext = false
			}
		}
		isHdr := (hasSep && value == "") ||
			(strings.HasSuffix(trimmed, ":") && tokenize.CountWords(trimmed) <= 7)
		block := labels.Null
		field := labels.FieldOther
		switch {
		case isHdr:
			if b, ok := t.headers[trimmed]; ok {
				block = b
				context, haveContext = b, true
				exact++
				break
			}
			if hasSep {
				if r, ok := t.title[prefixOf(raw, title, value)]; ok {
					block = r.block
					if block == labels.Registrant && value != "" {
						field = r.field
					}
					context, haveContext = block, true
					exact++
					break
				}
			}
			return Match{}, ErrMismatch
		case hasSep:
			r, ok := t.title[prefixOf(raw, title, value)]
			if !ok {
				return Match{}, ErrMismatch
			}
			block = r.block
			if block == labels.Registrant && value != "" {
				field = r.field
			}
			exact++
		default:
			if b, ok := t.raw[trimmed]; ok {
				block = b
				haveContext = false
				exact++
				break
			}
			if !haveContext {
				return Match{}, ErrMismatch
			}
			block = context
		}
		m.Lines = append(m.Lines, tokenize.Line{Raw: raw, Title: title, Value: value, HasSep: hasSep})
		m.Blocks = append(m.Blocks, block)
		m.Fields = append(m.Fields, field)
	}
	if len(m.Lines) == 0 {
		return Match{}, ErrMismatch
	}
	m.Confidence = float64(exact) / float64(len(m.Lines))
	return m, nil
}
